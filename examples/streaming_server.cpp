// Streaming server simulation: the engine serving interleaved
// update/query traffic — the ROADMAP north-star workload in miniature.
//
// Four producer threads churn insert/remove updates over a power-law
// suite graph (hot edges get resubmitted and cancelled, exercising the
// coalescer) while four query threads read core numbers and k-core
// membership from epoch snapshots. At the end the maintained state is
// verified against a fresh decomposition.
//
//   $ ./examples/streaming_server
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "decomp/verify.h"
#include "engine/engine.h"
#include "gen/suite.h"
#include "graph/edge_list.h"
#include "support/rng.h"
#include "support/timer.h"
#include "sync/thread_team.h"

using namespace parcore;

int main() {
  constexpr int kProducers = 4;
  constexpr int kQueriers = 4;
  constexpr std::size_t kOpsPerProducer = 100000;

  // A Table-2 stand-in graph (skewed R-MAT, "orkut" row) at small scale.
  SuiteSpec spec;
  for (const SuiteSpec& s : table2_suite())
    if (s.family == SuiteFamily::kRmat) spec = s;
  SuiteGraph sg = build_suite_graph(spec, 0.1);
  std::vector<Edge> all = sg.edges;
  canonicalize_edges(all);
  std::vector<Edge> base(all.begin(),
                         all.begin() + static_cast<std::ptrdiff_t>(
                                           all.size() / 2));
  DynamicGraph graph = DynamicGraph::from_edges(sg.num_vertices, base);
  std::printf("graph: %s stand-in, %zu vertices, %zu base edges\n",
              spec.name.c_str(), graph.num_vertices(), graph.num_edges());

  ThreadTeam team(8);
  engine::StreamingEngine::Options opts;
  opts.workers = 4;
  opts.flush_threshold = 4096;
  opts.flush_interval_ms = 2.0;
  opts.adaptive = true;
  opts.target_flush_ms = 5.0;
  engine::StreamingEngine eng(graph, team, opts);
  eng.start();
  std::printf("engine started: epoch %llu, max core %d\n",
              static_cast<unsigned long long>(eng.epoch()),
              eng.snapshot()->max_core);

  WallTimer timer;

  // Producers: disjoint slices of the edge pool, hot-set churn.
  std::vector<std::thread> producers;
  const std::size_t slice = all.size() / kProducers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(100 + static_cast<std::uint64_t>(p));
      std::span<const Edge> universe(
          all.data() + static_cast<std::size_t>(p) * slice, slice);
      auto stream =
          gen_update_stream(universe, kOpsPerProducer, 0.45, 0.6, rng);
      for (const GraphUpdate& u : stream) eng.submit(u);
    });
  }

  // Queriers: point reads + membership scans against live snapshots.
  std::atomic<bool> stop_queries{false};
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> queriers;
  for (int q = 0; q < kQueriers; ++q) {
    queriers.emplace_back([&, q] {
      Rng rng(900 + static_cast<std::uint64_t>(q));
      std::uint64_t local = 0;
      while (!stop_queries.load(std::memory_order_relaxed)) {
        auto snap = eng.snapshot();
        const auto v =
            static_cast<VertexId>(rng.bounded(snap->num_vertices()));
        volatile CoreValue c = snap->core(v);
        (void)c;
        if (++local % 4096 == 0)  // occasional heavy query
          (void)snap->kcore_members(snap->max_core);
      }
      queries.fetch_add(local, std::memory_order_relaxed);
    });
  }

  for (auto& t : producers) t.join();
  eng.stop();
  stop_queries.store(true);
  for (auto& t : queriers) t.join();
  const double sec = timer.elapsed_ms() / 1000.0;

  const engine::EngineStats st = eng.stats();
  const auto snap = eng.snapshot();
  std::printf("\n-- served in %.2fs --\n", sec);
  std::printf("updates submitted   %llu (%.0f k/s)\n",
              static_cast<unsigned long long>(st.submitted),
              static_cast<double>(st.submitted) / sec / 1000.0);
  std::printf("queries served      %llu (%.0f k/s)\n",
              static_cast<unsigned long long>(queries.load()),
              static_cast<double>(queries.load()) / sec / 1000.0);
  std::printf("epochs (flushes)    %llu, final epoch %llu\n",
              static_cast<unsigned long long>(st.epochs),
              static_cast<unsigned long long>(snap->epoch));
  std::printf("applied             +%llu / -%llu edges\n",
              static_cast<unsigned long long>(st.applied_inserts),
              static_cast<unsigned long long>(st.applied_removes));
  std::printf("coalesced away      %llu pairs, %llu dups, %llu no-ops\n",
              static_cast<unsigned long long>(st.coalesce.annihilated_pairs),
              static_cast<unsigned long long>(st.coalesce.duplicates),
              static_cast<unsigned long long>(st.coalesce.noops));
  std::printf("flush latency       p50 %.2f ms, p99 %.2f ms\n",
              static_cast<double>(st.flush_us.percentile(0.5)) / 1000.0,
              static_cast<double>(st.flush_us.percentile(0.99)) / 1000.0);
  std::printf("final flush size    threshold %zu (adaptive)\n",
              eng.current_flush_threshold());
  std::printf("final graph         %zu edges, max core %d\n",
              graph.num_edges(), snap->max_core);

  std::string err;
  if (!verify_cores(graph, snap->materialize(), &err)) {
    std::printf("VERIFICATION FAILED: %s\n", err.c_str());
    return 1;
  }
  std::printf("verified: snapshot cores match a fresh decomposition\n");
  return 0;
}
