// Road-network incident simulation: roadNet-style graphs have tiny core
// numbers (max k = 3), and the 2-core is the redundant backbone — roads
// on no dead-end branch. Closing road segments (edge removals) erodes
// the backbone; reopening restores it. Core maintenance tracks this
// online instead of recomputing the decomposition after every incident.
#include <cstdio>
#include <vector>

#include "gen/generators.h"
#include "graph/edge_list.h"
#include "parallel/parallel_order.h"
#include "support/rng.h"
#include "support/timer.h"
#include "sync/thread_team.h"

using namespace parcore;

namespace {

std::size_t backbone_size(const ParallelOrderMaintainer& m, std::size_t n) {
  std::size_t count = 0;
  for (VertexId v = 0; v < n; ++v)
    if (m.core(v) >= 2) ++count;
  return count;
}

}  // namespace

int main() {
  Rng rng(31);
  const std::size_t side = 220;
  std::vector<Edge> roads = gen_grid(side, side, 0.95, 0.05, rng);
  DynamicGraph network = DynamicGraph::from_edges(side * side, roads);
  ThreadTeam team(8);
  ParallelOrderMaintainer maintainer(network, team);

  const std::size_t n = network.num_vertices();
  std::printf("road network: %zu junctions, %zu segments\n", n,
              network.num_edges());
  std::printf("initial 2-core backbone: %zu junctions (%.1f%%)\n",
              backbone_size(maintainer, n),
              100.0 * static_cast<double>(backbone_size(maintainer, n)) /
                  static_cast<double>(n));

  // Simulate waves of incidents: each wave closes a batch of random
  // segments; after two waves, crews reopen the earliest wave.
  std::vector<std::vector<Edge>> closed;
  for (int wave = 1; wave <= 6; ++wave) {
    auto batch = sample_edges(network, 800, rng);
    WallTimer t;
    maintainer.remove_batch(batch, 8);
    const double close_ms = t.elapsed_ms();
    closed.push_back(batch);
    std::printf(
        "wave %d: closed %4zu segments in %6.2f ms -> backbone %zu\n", wave,
        batch.size(), close_ms, backbone_size(maintainer, n));

    if (closed.size() >= 2) {
      auto reopen = closed.front();
      closed.erase(closed.begin());
      t.reset();
      maintainer.insert_batch(reopen, 8);
      const double open_ms = t.elapsed_ms();
      std::printf(
          "        reopened %4zu segments in %6.2f ms -> backbone %zu\n",
          reopen.size(), open_ms, backbone_size(maintainer, n));
    }
  }

  std::printf("final: %zu segments, backbone %zu junctions\n",
              network.num_edges(), backbone_size(maintainer, n));
  return 0;
}
