// Quickstart: build a graph, maintain core numbers through parallel
// edge insertions and removals, and verify against recomputation.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "decomp/verify.h"
#include "gen/generators.h"
#include "graph/dynamic_graph.h"
#include "parallel/parallel_order.h"
#include "support/rng.h"
#include "sync/thread_team.h"

using namespace parcore;

int main() {
  // 1. Build a graph (here: a random power-law graph; in your code,
  //    DynamicGraph::from_edges over any edge list).
  Rng rng(7);
  std::vector<Edge> edges = gen_rmat(14, 100000, RmatParams{}, rng);
  DynamicGraph graph = DynamicGraph::from_edges(1 << 14, edges);
  std::printf("graph: %zu vertices, %zu edges\n", graph.num_vertices(),
              graph.num_edges());

  // 2. Create the maintainer. Initialisation runs the linear-time BZ
  //    decomposition and builds the k-order.
  ThreadTeam team(8);
  ParallelOrderMaintainer maintainer(graph, team);
  std::printf("initial max core: %d\n", maintainer.state().max_core());

  // 3. Stream in a batch of new edges with 8 workers (OurI).
  std::vector<Edge> batch;
  while (batch.size() < 2000) {
    Edge e{static_cast<VertexId>(rng.bounded(graph.num_vertices())),
           static_cast<VertexId>(rng.bounded(graph.num_vertices()))};
    if (e.u != e.v) batch.push_back(e);
  }
  BatchResult ins = maintainer.insert_batch(batch, /*workers=*/8);
  std::printf("inserted %zu edges (%zu skipped as dups/self-loops)\n",
              ins.applied, ins.skipped);

  // 4. Query core numbers directly.
  VertexId sample = 42;
  std::printf("core(%u) = %d\n", sample, maintainer.core(sample));

  // 5. Remove the batch again (OurR) and verify correctness.
  BatchResult rem = maintainer.remove_batch(batch, /*workers=*/8);
  std::printf("removed %zu edges\n", rem.applied);

  std::string err;
  if (!verify_cores(graph, maintainer.cores(), &err)) {
    std::printf("VERIFICATION FAILED: %s\n", err.c_str());
    return 1;
  }
  std::printf("verified: maintained cores match recomputation\n");
  return 0;
}
