// core_tool: command-line core maintenance over edge-list files.
//
// Usage:
//   core_tool <graph.txt> [workers]
//
// Reads a SNAP-style edge list ("u v" per line, '#' comments), builds
// the graph, then executes commands from stdin:
//
//   insert <u> <v>        insert one edge
//   remove <u> <v>        remove one edge
//   batch-insert <file>   insert an edge-list file as one parallel batch
//   batch-remove <file>   remove an edge-list file as one parallel batch
//   core <v>              print a vertex's core number
//   top <k>               print the k highest-coreness vertices
//   stats                 graph + core summary
//   verify                recompute from scratch and compare
//   quit
//
// Example:
//   printf 'stats\ntop 5\nverify\nquit\n' | ./core_tool graph.txt 8
#include <cstdio>
#include <cstring>
#include <string>

#include "parcore.h"

using namespace parcore;

namespace {

void print_stats(const DynamicGraph& g, const ParallelOrderMaintainer& m) {
  CoreSummary s = summarize_cores(m.cores());
  std::printf("n=%zu m=%zu avg_deg=%.2f max_core=%d degeneracy_core=%zu\n",
              g.num_vertices(), g.num_edges(), g.average_degree(),
              s.max_core, s.degeneracy_core_size);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <graph.txt> [workers]\n", argv[0]);
    return 2;
  }
  const int workers = argc >= 3 ? std::atoi(argv[2]) : 8;

  EdgeListData data;
  try {
    data = load_edge_list(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::vector<Edge> edges;
  edges.reserve(data.edges.size());
  for (const TimestampedEdge& te : data.edges) edges.push_back(te.e);
  DynamicGraph graph = DynamicGraph::from_edges(data.num_vertices, edges);

  ThreadTeam team(workers);
  ParallelOrderMaintainer maintainer(graph, team);
  std::printf("loaded %s: ", argv[1]);
  print_stats(graph, maintainer);

  char line[512];
  while (std::fgets(line, sizeof line, stdin) != nullptr) {
    char cmd[32] = {0};
    unsigned long a = 0, b = 0;
    char arg[256] = {0};
    if (std::sscanf(line, "%31s", cmd) != 1) continue;

    if (std::strcmp(cmd, "quit") == 0) break;
    if (std::strcmp(cmd, "insert") == 0 &&
        std::sscanf(line, "%*s %lu %lu", &a, &b) == 2) {
      WallTimer t;
      bool ok = maintainer.insert_edge(static_cast<VertexId>(a),
                                       static_cast<VertexId>(b));
      std::printf("%s (%.3f ms)\n", ok ? "inserted" : "skipped",
                  t.elapsed_ms());
    } else if (std::strcmp(cmd, "remove") == 0 &&
               std::sscanf(line, "%*s %lu %lu", &a, &b) == 2) {
      WallTimer t;
      bool ok = maintainer.remove_edge(static_cast<VertexId>(a),
                                       static_cast<VertexId>(b));
      std::printf("%s (%.3f ms)\n", ok ? "removed" : "skipped",
                  t.elapsed_ms());
    } else if ((std::strcmp(cmd, "batch-insert") == 0 ||
                std::strcmp(cmd, "batch-remove") == 0) &&
               std::sscanf(line, "%*s %255s", arg) == 1) {
      try {
        EdgeListData batch_data = load_edge_list(arg);
        std::vector<Edge> batch;
        for (const TimestampedEdge& te : batch_data.edges)
          batch.push_back(te.e);
        WallTimer t;
        BatchResult r = std::strcmp(cmd, "batch-insert") == 0
                            ? maintainer.insert_batch(batch, workers)
                            : maintainer.remove_batch(batch, workers);
        std::printf("applied %zu, skipped %zu (%.2f ms, %d workers)\n",
                    r.applied, r.skipped, t.elapsed_ms(), workers);
      } catch (const std::exception& e) {
        std::printf("error: %s\n", e.what());
      }
    } else if (std::strcmp(cmd, "core") == 0 &&
               std::sscanf(line, "%*s %lu", &a) == 1) {
      if (a < graph.num_vertices())
        std::printf("core(%lu) = %d\n", a,
                    maintainer.core(static_cast<VertexId>(a)));
      else
        std::printf("vertex out of range\n");
    } else if (std::strcmp(cmd, "top") == 0 &&
               std::sscanf(line, "%*s %lu", &a) == 1) {
      auto cores = maintainer.cores();
      std::vector<VertexId> ids(cores.size());
      for (VertexId v = 0; v < ids.size(); ++v) ids[v] = v;
      const std::size_t count =
          std::min<std::size_t>(a, ids.size());
      std::partial_sort(ids.begin(),
                        ids.begin() + static_cast<std::ptrdiff_t>(count),
                        ids.end(), [&](VertexId x, VertexId y) {
                          return cores[x] > cores[y];
                        });
      for (std::size_t i = 0; i < count; ++i)
        std::printf("  %u: core %d\n", ids[i], cores[ids[i]]);
    } else if (std::strcmp(cmd, "stats") == 0) {
      print_stats(graph, maintainer);
    } else if (std::strcmp(cmd, "verify") == 0) {
      WallTimer t;
      std::string err;
      bool ok = verify_cores(graph, maintainer.cores(), &err);
      std::printf("%s (%.2f ms)%s%s\n", ok ? "OK" : "MISMATCH",
                  t.elapsed_ms(), ok ? "" : ": ", ok ? "" : err.c_str());
    } else {
      std::printf(
          "commands: insert u v | remove u v | batch-insert f | "
          "batch-remove f | core v | top k | stats | verify | quit\n");
    }
  }
  return 0;
}
