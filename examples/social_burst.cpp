// Social-network burst response (the paper's motivating scenario §1):
// when a burst of interactions arrives — e.g. rapidly spreading false
// information — the dense region must be re-identified immediately so
// the highest-coreness "super-spreader" accounts can be acted on.
//
// This example maintains cores over a preferential-attachment network,
// injects a burst of interactions around a few seed accounts, and
// compares (a) parallel maintenance vs (b) full recomputation latency
// for refreshing the top-coreness account list.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "decomp/bz.h"
#include "gen/generators.h"
#include "parallel/parallel_order.h"
#include "support/rng.h"
#include "support/timer.h"
#include "sync/thread_team.h"

using namespace parcore;

namespace {

std::vector<VertexId> top_coreness_accounts(
    const std::vector<CoreValue>& cores, std::size_t count) {
  std::vector<VertexId> ids(cores.size());
  for (VertexId v = 0; v < ids.size(); ++v) ids[v] = v;
  std::partial_sort(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(
                                                   count),
                    ids.end(), [&](VertexId a, VertexId b) {
                      return cores[a] > cores[b];
                    });
  ids.resize(count);
  return ids;
}

}  // namespace

int main() {
  Rng rng(1234);
  const std::size_t accounts = 1'000'000;
  std::vector<Edge> follows = gen_barabasi_albert(accounts, 6, rng);

  // Hold out the most recent slice of the interaction stream: that is
  // the "burst" that arrives while the monitoring system is live.
  const std::size_t burst_size = 25'000;
  std::vector<Edge> burst(follows.end() - burst_size, follows.end());
  follows.resize(follows.size() - burst_size);
  DynamicGraph network = DynamicGraph::from_edges(accounts, follows);
  std::printf("social network: %zu accounts, %zu interactions\n", accounts,
              network.num_edges());

  ThreadTeam team(8);
  ParallelOrderMaintainer maintainer(network, team);
  auto before = top_coreness_accounts(maintainer.cores(), 10);
  std::printf("top accounts before burst (by coreness):");
  for (VertexId v : before)
    std::printf(" %u(k=%d)", v, maintainer.core(v));
  std::printf("\n");

  std::printf("burst: %zu interactions arriving\n", burst.size());

  WallTimer t;
  BatchResult r = maintainer.insert_batch(burst, 8);
  const double maintain_ms = t.elapsed_ms();

  t.reset();
  Decomposition full = bz_decompose(network);
  const double recompute_ms = t.elapsed_ms();

  auto after = top_coreness_accounts(maintainer.cores(), 10);
  std::printf("top accounts after burst:");
  for (VertexId v : after)
    std::printf(" %u(k=%d)", v, maintainer.core(v));
  std::printf("\n");

  std::printf(
      "\nrefresh latency: maintenance %.2f ms (%zu edges applied) vs "
      "full recomputation %.2f ms (%.1fx)\n",
      maintain_ms, r.applied, recompute_ms,
      maintain_ms > 0 ? recompute_ms / maintain_ms : 0.0);

  // Sanity: maintained cores equal the fresh decomposition.
  bool ok = maintainer.cores() == full.core;
  std::printf("maintained cores match recomputation: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
