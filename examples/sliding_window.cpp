// Sliding-window maintenance over a temporal interaction stream: the
// standard streaming deployment of core maintenance. Each step inserts
// the newest edges and removes the ones that fell out of the window —
// both as parallel batches — and reports how the dense structure
// (max core, k-core population) drifts over time.
#include <cstdio>
#include <vector>

#include "gen/generators.h"
#include "parallel/parallel_order.h"
#include "support/rng.h"
#include "support/timer.h"
#include "sync/thread_team.h"

using namespace parcore;

int main() {
  Rng rng(777);
  const std::size_t n = 40000;
  std::vector<TimestampedEdge> stream = gen_temporal_rmat(15, 400000,
                                                          RmatParams{}, rng);
  std::vector<Edge> edges;
  edges.reserve(stream.size());
  for (const auto& te : stream) edges.push_back(te.e);
  (void)n;

  const std::size_t window = edges.size() / 2;
  const std::size_t step = window / 10;
  DynamicGraph graph = DynamicGraph::from_edges(
      1 << 15, std::span<const Edge>(edges.data(), window));
  ThreadTeam team(8);
  ParallelOrderMaintainer maintainer(graph, team);

  std::printf("temporal stream: %zu edges, window %zu, step %zu\n",
              edges.size(), window, step);
  std::printf("%6s %10s %10s %8s %12s %12s\n", "step", "insert_ms",
              "remove_ms", "max_k", "edges", "top-core size");

  std::size_t lo = 0, hi = window;
  int step_id = 0;
  while (hi + step <= edges.size()) {
    WallTimer ti;
    maintainer.insert_batch(
        std::span<const Edge>(edges.data() + hi, step), 8);
    const double insert_ms = ti.elapsed_ms();
    ti.reset();
    maintainer.remove_batch(std::span<const Edge>(edges.data() + lo, step),
                            8);
    const double remove_ms = ti.elapsed_ms();
    lo += step;
    hi += step;
    ++step_id;

    // Dense-structure summary for this window position.
    CoreValue maxk = 0;
    for (VertexId v = 0; v < graph.num_vertices(); ++v)
      maxk = std::max(maxk, maintainer.core(v));
    std::size_t top_core_size = 0;
    for (VertexId v = 0; v < graph.num_vertices(); ++v)
      if (maintainer.core(v) == maxk) ++top_core_size;

    std::printf("%6d %10.2f %10.2f %8d %12zu %12zu\n", step_id, insert_ms,
                remove_ms, maxk, graph.num_edges(), top_core_size);
  }
  std::printf("done: %d window steps maintained incrementally\n", step_id);
  return 0;
}
