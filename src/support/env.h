// Environment-variable knobs for benchmarks (scale, repetitions).
#pragma once

#include <string>

namespace parcore {

/// Returns the integer value of `name` or `fallback` when unset/invalid.
long env_int(const char* name, long fallback);

/// Returns the double value of `name` or `fallback` when unset/invalid.
double env_double(const char* name, double fallback);

/// True when `name` is set to a non-empty value other than "0"/"false".
bool env_flag(const char* name);

std::string env_str(const char* name, const std::string& fallback);

}  // namespace parcore
