// Environment-variable knobs for benchmarks (scale, repetitions).
#pragma once

#include <string>

namespace parcore {

/// Returns the integer value of `name` or `fallback` when unset/invalid.
long env_int(const char* name, long fallback);

/// Returns the double value of `name` or `fallback` when unset/invalid.
double env_double(const char* name, double fallback);

/// True when `name` is set to a non-empty value other than "0"/"false".
bool env_flag(const char* name);

/// True when `name` is set at all (even to "0"/"false"/empty). Use for
/// knobs whose mere presence selects an override, with the value read
/// separately via env_flag/env_int.
bool env_present(const char* name);

std::string env_str(const char* name, const std::string& fallback);

}  // namespace parcore
