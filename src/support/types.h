// Fundamental vocabulary types shared by every parcore module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace parcore {

/// Vertex identifier; graphs are addressed as [0, n).
using VertexId = std::uint32_t;

/// Core numbers are small non-negative integers; signed so that the
/// "empty" sentinel used by mcd (kMcdEmpty) is representable.
using CoreValue = std::int32_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Sentinel for an unknown / invalidated max-core degree (paper: mcd = ∅).
inline constexpr CoreValue kMcdEmpty = -1;

/// An undirected edge. Orientation is meaningless for graph membership;
/// the maintainers orient edges by k-order on the fly.
struct Edge {
  VertexId u{0};
  VertexId v{0};

  friend constexpr bool operator==(const Edge&, const Edge&) = default;
};

/// Returns the edge with endpoints ordered so u <= v.
constexpr Edge canonical(Edge e) {
  return e.u <= e.v ? e : Edge{e.v, e.u};
}

/// Packs a canonical edge into a 64-bit key for hashing/dedup.
constexpr std::uint64_t edge_key(Edge e) {
  const Edge c = canonical(e);
  return (static_cast<std::uint64_t>(c.u) << 32) | c.v;
}

struct EdgeHash {
  std::size_t operator()(const Edge& e) const noexcept {
    std::uint64_t k = edge_key(e);
    // SplitMix64 finalizer.
    k ^= k >> 30;
    k *= 0xbf58476d1ce4e5b9ULL;
    k ^= k >> 27;
    k *= 0x94d049bb133111ebULL;
    k ^= k >> 31;
    return static_cast<std::size_t>(k);
  }
};

/// Edge tagged with an event time; used by temporal graph streams.
struct TimestampedEdge {
  Edge e;
  std::uint64_t time{0};
};

/// A raw streaming update: insert or remove one edge. This is the unit
/// accepted by the ingest layer (src/engine) and produced by the
/// mixed-stream workload generators.
enum class UpdateKind : std::uint8_t { kInsert, kRemove };

struct GraphUpdate {
  Edge e;
  UpdateKind kind{UpdateKind::kInsert};

  friend constexpr bool operator==(const GraphUpdate&,
                                   const GraphUpdate&) = default;
};

}  // namespace parcore
