// Wall-clock timing and summary statistics for the bench harness.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

namespace parcore {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Whole microseconds; the unit of the observability phase timings.
  std::uint64_t elapsed_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Summary of repeated measurements; ci95 uses the normal approximation
/// (the paper reports means with 95% confidence intervals).
struct RunStats {
  double mean = 0.0;
  double stdev = 0.0;
  double ci95 = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;

  static RunStats from(const std::vector<double>& samples) {
    RunStats r;
    r.count = samples.size();
    if (samples.empty()) return r;
    double sum = 0.0;
    r.min = samples.front();
    r.max = samples.front();
    for (double s : samples) {
      sum += s;
      if (s < r.min) r.min = s;
      if (s > r.max) r.max = s;
    }
    r.mean = sum / static_cast<double>(samples.size());
    if (samples.size() > 1) {
      double ss = 0.0;
      for (double s : samples) ss += (s - r.mean) * (s - r.mean);
      r.stdev = std::sqrt(ss / static_cast<double>(samples.size() - 1));
      r.ci95 = 1.96 * r.stdev / std::sqrt(static_cast<double>(samples.size()));
    }
    return r;
  }
};

}  // namespace parcore
