// Deterministic, seedable random number generation (SplitMix64 seeding a
// xoshiro256**). Self-contained so experiments reproduce bit-for-bit
// across standard library implementations.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace parcore {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's method; bound > 0.
  std::uint64_t bounded(std::uint64_t bound) {
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double real() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return real() < p; }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(bounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent stream (e.g. one per worker).
  Rng split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace parcore
