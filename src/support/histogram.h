// Exact small-value histogram used to reproduce Fig. 1 (distribution of
// |V+| / |V*| sizes per edge operation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace parcore {

class SizeHistogram {
 public:
  explicit SizeHistogram(std::size_t max_exact = 4096)
      : counts_(max_exact + 1, 0) {}

  void record(std::size_t value) {
    if (value < counts_.size())
      ++counts_[value];
    else
      ++overflow_;
    total_ += 1;
    sum_ += value;
    if (value > max_seen_) max_seen_ = value;
  }

  void merge(const SizeHistogram& other);

  std::uint64_t total() const { return total_; }
  std::uint64_t count_at(std::size_t value) const {
    return value < counts_.size() ? counts_[value] : 0;
  }
  std::uint64_t overflow() const { return overflow_; }
  std::size_t max_seen() const { return max_seen_; }
  double mean() const {
    return total_ == 0 ? 0.0 : static_cast<double>(sum_) / total_;
  }

  /// Fraction of samples with value <= bound (paper: ">97% in [0,10]").
  double fraction_at_most(std::size_t bound) const;

  /// Smallest recorded value v such that P[X <= v] >= p (p in [0, 1]);
  /// an empty histogram returns 0. Exact while the target rank lands in
  /// the exact range [0, max_exact]; ranks that fall among the overflow
  /// samples are interpolated linearly by rank over
  /// (max_exact, max_seen()] — approximate, but monotone in p and equal
  /// to max_seen() only at the true maximum (p = 1). Used for the
  /// engine's p50/p99 flush latencies.
  std::size_t percentile(double p) const;

  /// Multi-line report with exponential buckets: 0, 1, 2, 3-4, 5-8, ...
  std::string bucket_report() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::size_t max_seen_ = 0;
};

}  // namespace parcore
