#include "support/rng.h"

// rng.h is header-only; this TU anchors the support library and keeps a
// single definition point if out-of-line helpers are added later.
