#include "support/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace parcore {

void SizeHistogram::merge(const SizeHistogram& other) {
  if (other.counts_.size() > counts_.size())
    counts_.resize(other.counts_.size(), 0);
  for (std::size_t i = 0; i < other.counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  overflow_ += other.overflow_;
  total_ += other.total_;
  sum_ += other.sum_;
  max_seen_ = std::max(max_seen_, other.max_seen_);
}

double SizeHistogram::fraction_at_most(std::size_t bound) const {
  if (total_ == 0) return 0.0;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i <= bound && i < counts_.size(); ++i)
    acc += counts_[i];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

std::size_t SizeHistogram::percentile(double p) const {
  if (total_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  auto target = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(total_)));
  if (target == 0) target = 1;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    if (acc >= target) return i;
  }
  // Target falls among the overflow samples, which all lie in
  // (counts_.size() - 1, max_seen_]. Their individual values are gone,
  // so interpolate linearly by rank across that range instead of
  // snapping every overflow percentile to the maximum (which made p50
  // and p99 indistinguishable once the exact range overflowed).
  const std::size_t bound = counts_.size() - 1;
  if (max_seen_ <= bound || overflow_ == 0) return max_seen_;
  const std::uint64_t rank = target - acc;  // 1-based within overflow
  return bound + static_cast<std::size_t>(
                     static_cast<double>(max_seen_ - bound) *
                     static_cast<double>(rank) /
                     static_cast<double>(overflow_));
}

std::string SizeHistogram::bucket_report() const {
  std::ostringstream os;
  std::size_t lo = 0, hi = 0;  // inclusive bucket bounds
  while (lo < counts_.size()) {
    std::uint64_t acc = 0;
    for (std::size_t i = lo; i <= hi && i < counts_.size(); ++i)
      acc += counts_[i];
    if (acc > 0) {
      if (lo == hi)
        os << "  " << lo;
      else
        os << "  " << lo << "-" << hi;
      os << ": " << acc << "\n";
    }
    lo = hi + 1;
    hi = lo == 1 ? 1 : lo * 2 - 1;
    if (hi < lo) break;  // overflow guard
  }
  if (overflow_ > 0)
    os << "  >" << counts_.size() - 1 << ": " << overflow_ << "\n";
  return os.str();
}

}  // namespace parcore
