// Insertion-ordered open-addressing set of vertex ids.
//
// The maintainers' per-worker sets (V*, V+, A_p, queue membership) are
// tiny for almost every operation (paper Fig. 1: |V+| <= 10 for >97% of
// edges) but must support O(1) insert/contains/erase plus iteration in
// insertion order (candidate promotion preserves k-order). A dense
// entries vector + power-of-two probe table gives all of that without
// touching the heap after warm-up.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "support/types.h"

namespace parcore {

class VertexSet {
 public:
  explicit VertexSet(std::size_t initial_capacity = 16) {
    std::size_t cap = 16;
    while (cap < initial_capacity * 2) cap <<= 1;
    slots_.assign(cap, kEmptySlot);
  }

  /// Inserts v; returns false if already present (and alive).
  bool insert(VertexId v) {
    maybe_grow();
    std::size_t idx = probe(v);
    if (idx != kNotFound) {
      Entry& e = entries_[idx];
      if (e.alive) return false;
      e.alive = true;  // revive a tombstoned entry; order = first insertion
      ++size_;
      return true;
    }
    std::size_t slot = find_slot(v);
    slots_[slot] = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(Entry{v, true});
    ++size_;
    return true;
  }

  bool contains(VertexId v) const {
    std::size_t idx = probe(v);
    return idx != kNotFound && entries_[idx].alive;
  }

  /// Removes v; returns false if not present.
  bool erase(VertexId v) {
    std::size_t idx = probe(v);
    if (idx == kNotFound || !entries_[idx].alive) return false;
    entries_[idx].alive = false;
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of vertices ever inserted (alive + erased); V+ style count.
  std::size_t total_inserted() const { return entries_.size(); }

  /// Visits alive members in insertion order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& e : entries_)
      if (e.alive) fn(e.v);
  }

  /// Visits every vertex ever inserted (alive or erased).
  template <typename Fn>
  void for_each_ever(Fn&& fn) const {
    for (const Entry& e : entries_) fn(e.v);
  }

  void clear() {
    if (entries_.empty()) return;
    entries_.clear();
    size_ = 0;
    slots_.assign(slots_.size(), kEmptySlot);
  }

 private:
  struct Entry {
    VertexId v;
    bool alive;
  };

  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;
  static constexpr std::size_t kNotFound = ~static_cast<std::size_t>(0);

  static std::uint64_t hash(VertexId v) {
    std::uint64_t k = v;
    k *= 0x9e3779b97f4a7c15ULL;
    k ^= k >> 32;
    return k;
  }

  std::size_t find_slot(VertexId v) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(v) & mask;
    while (slots_[i] != kEmptySlot) i = (i + 1) & mask;
    return i;
  }

  std::size_t probe(VertexId v) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(v) & mask;
    while (slots_[i] != kEmptySlot) {
      std::size_t idx = slots_[i];
      if (entries_[idx].v == v) return idx;
      i = (i + 1) & mask;
    }
    return kNotFound;
  }

  void maybe_grow() {
    if ((entries_.size() + 1) * 2 < slots_.size()) return;
    std::vector<std::uint32_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmptySlot);
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t idx = 0; idx < entries_.size(); ++idx) {
      std::size_t i = hash(entries_[idx].v) & mask;
      while (slots_[i] != kEmptySlot) i = (i + 1) & mask;
      slots_[i] = static_cast<std::uint32_t>(idx);
    }
  }

  std::vector<std::uint32_t> slots_;
  std::vector<Entry> entries_;
  std::size_t size_ = 0;
};

}  // namespace parcore
