#include "support/env.h"

#include <cstdlib>
#include <cstring>

namespace parcore {

long env_int(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  return end == v ? fallback : parsed;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  return end == v ? fallback : parsed;
}

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "false") != 0;
}

bool env_present(const char* name) { return std::getenv(name) != nullptr; }

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

}  // namespace parcore
