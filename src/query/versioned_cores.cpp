#include "query/versioned_cores.h"

#include <algorithm>
#include <cstring>

namespace parcore::query {

std::vector<CoreValue> CoreView::materialize() const {
  std::vector<CoreValue> out;
  if (table_ == nullptr) return out;
  out.resize(table_->n);
  std::size_t at = 0;
  for (const auto& page : table_->pages) {
    std::memcpy(out.data() + at, page->data(),
                page->size() * sizeof(CoreValue));
    at += page->size();
  }
  return out;
}

VersionedCoreIndex::VersionedCoreIndex(Options opts) {
  const std::size_t want =
      std::clamp(opts.page_size, kMinPageSize, kMaxPageSize);
  bits_ = 0;
  while ((std::size_t{1} << bits_) < want) ++bits_;
}

std::shared_ptr<CoreView::PageTable> VersionedCoreIndex::make_table(
    std::size_t n) const {
  auto table = std::make_shared<CoreView::PageTable>();
  table->n = n;
  table->bits = bits_;
  table->mask = static_cast<VertexId>((std::size_t{1} << bits_) - 1);
  table->pages.resize((n + (std::size_t{1} << bits_) - 1) >> bits_);
  return table;
}

}  // namespace parcore::query
