#include "query/versioned_cores.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"

namespace parcore::query {

namespace detail {

void record_publish_metrics(std::size_t pages_cloned, bool rebuild) {
  // Registered once; the statics keep the header templates out of the
  // registry's mutex on every publish.
  static obs::Counter* publishes =
      &obs::registry().counter("parcore_publishes_total");
  static obs::Counter* rebuilds =
      &obs::registry().counter("parcore_index_rebuilds_total");
  static obs::Histogram* pages =
      &obs::registry().histogram("parcore_publish_pages_cloned");
  (rebuild ? rebuilds : publishes)->inc();
  pages->record(pages_cloned);
}

}  // namespace detail

std::vector<CoreValue> CoreView::materialize() const {
  std::vector<CoreValue> out;
  if (table_ == nullptr) return out;
  out.resize(table_->n);
  std::size_t at = 0;
  for (const auto& page : table_->pages) {
    std::memcpy(out.data() + at, page->data(),
                page->size() * sizeof(CoreValue));
    at += page->size();
  }
  return out;
}

VersionedCoreIndex::VersionedCoreIndex(Options opts) {
  const std::size_t want =
      std::clamp(opts.page_size, kMinPageSize, kMaxPageSize);
  bits_ = 0;
  while ((std::size_t{1} << bits_) < want) ++bits_;
}

std::shared_ptr<CoreView::PageTable> VersionedCoreIndex::make_table(
    std::size_t n) const {
  auto table = std::make_shared<CoreView::PageTable>();
  table->n = n;
  table->bits = bits_;
  table->mask = static_cast<VertexId>((std::size_t{1} << bits_) - 1);
  table->pages.resize((n + (std::size_t{1} << bits_) - 1) >> bits_);
  return table;
}

}  // namespace parcore::query
