// Delta-versioned epoch snapshots of the core-number index (DESIGN.md
// §10, ISSUE 5).
//
// The streaming engine used to publish each epoch by deep-copying the
// whole core vector — O(n) per flush even for a 10-edge batch, exactly
// the locality the order-based maintainer works to preserve (per-update
// cost tracks |V*|, not n; see arXiv:2106.03824, arXiv:2201.07103).
// `VersionedCoreIndex` replaces that copy with a paged copy-on-write
// index: core numbers live in fixed-size pages held through refcounted
// `shared_ptr`s, and a publish clones only the pages containing
// vertices the maintainer actually changed, sharing every other page
// with the previous epoch. Publication is O(|dirty| + cloned pages +
// n/page_size directory entries); a reader pinning an epoch gets
// wait-free O(1) `core(v)` against immutable storage.
//
// Concurrency contract: `publish` / `rebuild` are called by ONE writer
// at a time (the engine holds its flush mutex); `CoreView`s are
// immutable once returned and may be read from any number of threads
// with no synchronisation whatsoever — there is nothing to wait on.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "support/types.h"

namespace parcore::query {

namespace detail {

/// Out-of-line metrics hook (obs handles live in versioned_cores.cpp so
/// the header templates stay free of the registry include): records one
/// publish/rebuild — pages cloned histogram + cumulative counters.
void record_publish_metrics(std::size_t pages_cloned, bool rebuild);

}  // namespace detail

/// Immutable paged view of all core numbers at one epoch boundary.
/// Copying a view is one refcount bump; the pages themselves are shared
/// across epochs and never mutated after publication.
class CoreView {
 public:
  CoreView() = default;

  /// Wait-free point read; 0 for out-of-range vertices (matching the
  /// engine's historical EngineSnapshot::core semantics).
  CoreValue core(VertexId v) const {
    if (table_ == nullptr || v >= table_->n) return 0;
    return (*table_->pages[v >> table_->bits])[v & table_->mask];
  }

  /// Number of vertices the view covers (0 for a default-constructed,
  /// never-published view).
  std::size_t size() const { return table_ ? table_->n : 0; }

  bool empty() const { return size() == 0; }

  /// Escape hatch for legacy callers that want the flat vector: an
  /// O(n) page-by-page copy. New code should query the view directly.
  std::vector<CoreValue> materialize() const;

  /// Identity of the page holding v (nullptr when out of range).
  /// Introspection for tests and debugging: two epochs share a page
  /// iff these pointers compare equal.
  const void* page_identity(VertexId v) const {
    if (table_ == nullptr || v >= table_->n) return nullptr;
    return table_->pages[v >> table_->bits].get();
  }

  std::size_t page_size() const {
    return table_ ? (std::size_t{1} << table_->bits) : 0;
  }
  std::size_t page_count() const { return table_ ? table_->pages.size() : 0; }

 private:
  friend class VersionedCoreIndex;

  using Page = std::vector<CoreValue>;
  struct PageTable {
    std::size_t n = 0;
    std::uint32_t bits = 0;  // page size = 1 << bits
    VertexId mask = 0;       // page offset mask = (1 << bits) - 1
    std::vector<std::shared_ptr<const Page>> pages;
  };

  explicit CoreView(std::shared_ptr<const PageTable> table)
      : table_(std::move(table)) {}

  std::shared_ptr<const PageTable> table_;
};

/// The single-writer builder of CoreViews. Owned by the publishing side
/// (the streaming engine); `rebuild` makes epoch 0 from scratch,
/// `publish` derives each subsequent epoch from the previous one by
/// cloning only the dirty pages.
class VersionedCoreIndex {
 public:
  struct Options {
    /// Cores per page; rounded up to a power of two in
    /// [kMinPageSize, kMaxPageSize]. Smaller pages clone less per
    /// changed vertex but grow the per-epoch directory copy.
    std::size_t page_size = 4096;
  };

  static constexpr std::size_t kMinPageSize = 64;
  static constexpr std::size_t kMaxPageSize = std::size_t{1} << 20;

  VersionedCoreIndex() : VersionedCoreIndex(Options{}) {}
  explicit VersionedCoreIndex(Options opts);

  /// Full O(n) build over `read(v)` for v in [0, n). Resets the epoch
  /// chain: nothing is shared with previously published views.
  template <typename ReadFn>
  CoreView rebuild(std::size_t n, ReadFn&& read) {
    auto table = make_table(n);
    for (std::size_t p = 0; p < table->pages.size(); ++p) {
      auto page = std::make_shared<CoreView::Page>(page_len(*table, p));
      const VertexId base = static_cast<VertexId>(p << table->bits);
      for (std::size_t i = 0; i < page->size(); ++i)
        (*page)[i] = read(static_cast<VertexId>(base + i));
      table->pages[p] = std::move(page);
    }
    last_pages_cloned_ = table->pages.size();
    detail::record_publish_metrics(last_pages_cloned_, /*rebuild=*/true);
    current_ = CoreView(std::move(table));
    return current_;
  }

  /// Copy-on-write publish: the returned view shares every page with
  /// the current one except those containing a vertex in `dirty`,
  /// which are cloned and re-read through `read(v)` for the dirty
  /// vertices only. Duplicate / out-of-range dirty entries are
  /// tolerated (deduplicated / ignored). Requires a prior rebuild.
  template <typename ReadFn>
  CoreView publish(std::span<const VertexId> dirty, ReadFn&& read) {
    if (dirty.empty()) {  // nothing changed: the epoch shares the view
      last_pages_cloned_ = 0;
      detail::record_publish_metrics(0, /*rebuild=*/false);
      return current_;
    }
    const CoreView::PageTable& cur = *current_.table_;
    auto next = std::make_shared<CoreView::PageTable>();
    next->n = cur.n;
    next->bits = cur.bits;
    next->mask = cur.mask;
    next->pages = cur.pages;  // O(n / page_size) refcount bumps

    ++mark_epoch_;
    if (mutable_pages_.size() < next->pages.size())
      mutable_pages_.resize(next->pages.size());
    if (page_mark_.size() < next->pages.size())
      page_mark_.assign(next->pages.size(), 0);

    std::size_t cloned = 0;
    for (VertexId v : dirty) {
      if (v >= next->n) continue;
      const std::size_t p = v >> next->bits;
      if (page_mark_[p] != mark_epoch_) {
        page_mark_[p] = mark_epoch_;
        auto fresh = std::make_shared<CoreView::Page>(*next->pages[p]);
        mutable_pages_[p] = fresh.get();
        next->pages[p] = std::move(fresh);
        ++cloned;
      }
      (*mutable_pages_[p])[v & next->mask] = read(v);
    }
    last_pages_cloned_ = cloned;
    detail::record_publish_metrics(cloned, /*rebuild=*/false);
    current_ = CoreView(std::move(next));
    return current_;
  }

  /// The most recently built view (empty before the first rebuild).
  const CoreView& current() const { return current_; }

  /// Pages cloned (rebuild: built) by the most recent publish/rebuild.
  std::size_t last_pages_cloned() const { return last_pages_cloned_; }

  std::size_t page_size() const { return std::size_t{1} << bits_; }

 private:
  std::shared_ptr<CoreView::PageTable> make_table(std::size_t n) const;
  static std::size_t page_len(const CoreView::PageTable& t, std::size_t p) {
    const std::size_t begin = p << t.bits;
    const std::size_t cap = std::size_t{1} << t.bits;
    return std::min(cap, t.n - begin);
  }

  std::uint32_t bits_ = 12;
  CoreView current_;
  std::size_t last_pages_cloned_ = 0;

  // Per-publish scratch: epoch-marked dirty-page dedup (no O(pages)
  // clear per publish) and the writable aliases of this publish's
  // cloned pages.
  std::vector<std::uint64_t> page_mark_;
  std::vector<CoreView::Page*> mutable_pages_;
  std::uint64_t mark_epoch_ = 0;
};

}  // namespace parcore::query
