// Parallel-Order core maintenance — the paper's contribution (§4):
// batches of edge insertions (Algorithms 5-7) and removals (Algorithm 8)
// processed by P workers over shared state, synchronised by per-vertex
// CAS locks. Only vertices in V+ (insert) / V* (remove) are ever locked.
//
// Key mechanics, mapped to the paper:
//  - endpoints are locked "together" with no hold-and-wait (lock_pair);
//  - insertion propagates in k-order through the versioned per-worker
//    priority queue (KOrderHeap), so locks are acquired in a globally
//    consistent order and no blocking cycle can form;
//  - the per-vertex status word s guards (core, OM position) reads
//    (Algorithm 6) and is bumped around every move;
//  - removal uses conditional locks (core == K) plus the t-status
//    protocol with CAS(t,1,3) redo to keep mcd consistent without
//    locking neighbours;
//  - insert and remove batches must not overlap (paper §4); the API
//    enforces this by running one batch at a time. Callers that face an
//    interleaved update stream should sit the streaming engine
//    (src/engine) in front of this class — its coalescer produces
//    exactly the disjoint batches required here.
//
// Deviations from the paper's pseudocode are listed in DESIGN.md §3.2.
#pragma once

#include <atomic>
#include <deque>
#include <span>
#include <vector>

#include "graph/dynamic_graph.h"
#include "maint/core_state.h"
#include "parallel/batch_plan.h"
#include "parallel/korder_heap.h"
#include "support/histogram.h"
#include "support/types.h"
#include "support/vertex_set.h"
#include "sync/annotations.h"
#include "sync/thread_team.h"

namespace parcore {

struct BatchResult {
  std::size_t applied = 0;  // edges actually inserted/removed
  std::size_t skipped = 0;  // self-loops, duplicates, missing edges
};

/// How a batch is split across workers (DESIGN.md §9):
///   kDynamic — edges claimed one at a time off a shared counter
///              (default; best when per-edge costs are skewed);
///   kStatic  — the paper's Algorithm 5 contiguous P-way split;
///   kPlan    — conflict-aware plan: level buckets, vertex-disjoint
///              waves, OM-sorted chunks with stealing (batch_plan.h).
enum class ScheduleMode { kDynamic, kStatic, kPlan };

class ParallelOrderMaintainer {
 public:
  struct Options {
    CoreState::Options state{};
    bool collect_stats = false;  // Fig. 1 histograms
    ScheduleMode schedule = ScheduleMode::kDynamic;
    PlanOptions plan{};  // used when schedule == kPlan
    /// Non-null: the constructor restores this saved (core, k-order)
    /// image instead of running bz_decompose — the durability recovery
    /// path (docs/DURABILITY.md). Read during construction only (the
    /// pointer is not retained); the image must match the graph or the
    /// constructor throws. rebuild() always re-decomposes from scratch.
    const SavedCoreOrder* restore = nullptr;
    /// > 0: rebuild() (and the non-restore constructor) runs the bulk
    /// parallel decomposition (decomp/parallel_peel.h, exact mode) with
    /// this many workers instead of sequential BZ — the cold-start
    /// path. 0 keeps the BZ peel. Both produce valid k-order instances;
    /// they just pick different (deterministic) ones.
    int init_workers = 0;
  };

  /// Mutates `g`; both `g` and `team` must outlive the maintainer.
  ParallelOrderMaintainer(DynamicGraph& g, ThreadTeam& team, Options opts);
  ParallelOrderMaintainer(DynamicGraph& g, ThreadTeam& team)
      : ParallelOrderMaintainer(g, team, Options()) {}

  /// (Re)initialises cores/k-order/dout/mcd from the current graph.
  void rebuild();

  /// Same, but overriding Options::init_workers for this call: > 0
  /// forces the bulk parallel decomposition with that many workers.
  /// The engine's self-healing repair uses it so the rebuild runs on
  /// the flush workers even when cold start was configured sequential.
  void rebuild(int init_workers);

  /// OurI: inserts a batch with `workers` parallel workers.
  BatchResult insert_batch(std::span<const Edge> edges, int workers);

  /// OurR: removes a batch with `workers` parallel workers.
  BatchResult remove_batch(std::span<const Edge> edges, int workers);

  /// Single-edge conveniences (run the same code path on worker 0).
  bool insert_edge(VertexId u, VertexId v);
  bool remove_edge(VertexId u, VertexId v);

  /// Vertex-level updates, simulated as edge batches (paper §3.2).
  /// detach_vertex removes every incident edge of v (v keeps its slot
  /// with core 0); attach_vertex connects v to `neighbors`. Both return
  /// the number of edges applied.
  std::size_t detach_vertex(VertexId v, int workers);
  std::size_t attach_vertex(VertexId v, std::span<const VertexId> neighbors,
                            int workers);

  CoreValue core(VertexId v) const {
    return state_.core(v).load(std::memory_order_relaxed);
  }
  std::vector<CoreValue> cores() const { return state_.cores_snapshot(); }

  CoreState& state() { return state_; }
  const CoreState& state() const { return state_; }
  DynamicGraph& graph() { return graph_; }

  /// Merged Fig.-1 histograms (valid when collect_stats is set).
  SizeHistogram insert_vplus_histogram() const;
  SizeHistogram insert_vstar_histogram() const;
  SizeHistogram remove_vstar_histogram() const;

  /// Plan of the most recent batch (zeroed at every batch start; stays
  /// zero unless schedule == kPlan). The engine aggregates these into
  /// EngineStats; `parcore_cli serve --plan` prints them per flush.
  const PlanStats& last_plan_stats() const { return last_plan_; }

  /// Wall-time decomposition of the most recent batch (zeroed at every
  /// batch start; valid at quiescence). `plan_us` is the kPlan build
  /// cost; `dispatch_us` is the wall time of the worker dispatch
  /// (team.run / plan execute — the batch op loops only; removal dout
  /// repair is outside it but inside the engine's apply phase);
  /// `busy_us` sums each worker's time inside its dispatch loop, so
  /// `workers * dispatch_us - busy_us` is the idle/straggler slack the
  /// flush trace reports (obs/trace.h).
  struct BatchTiming {
    std::uint64_t plan_us = 0;
    std::uint64_t dispatch_us = 0;
    std::uint64_t busy_us = 0;
    int workers = 0;
  };
  const BatchTiming& last_timing() const { return last_timing_; }

  /// Vertices whose core number changed during the most recent
  /// insert/remove batch (deduplicated union across workers; reset at
  /// every batch start). This is the maintainer's V* localisation
  /// handed to the publication layer: the engine's paged snapshot
  /// index clones only the pages these vertices live on
  /// (query/versioned_cores.h). Valid until the next batch; read at
  /// quiescence only.
  std::span<const VertexId> last_changed() const { return last_changed_; }

 private:
  // One cache line per worker: the per-edge hot fields (queue heads,
  // counters) of adjacent workers must not false-share.
  struct alignas(64) WorkerCtx {
    KOrderHeap queue;
    VertexSet vstar;
    VertexSet inr;
    VertexSet ap;
    std::deque<VertexId> rq;
    std::vector<VertexId> locked;
    std::vector<VertexId> touched;
    std::vector<VertexId> changed;  // cores promoted/demoted this batch
    std::size_t vplus_count = 0;
    SizeHistogram vplus_hist;
    SizeHistogram vstar_hist;
    SizeHistogram remove_vstar_hist;
  };

  // insert_one / finalize_insert / remove_one / lock_endpoints operate
  // on the per-vertex lock array (state_.lock(v)) under the paper's
  // protocol: endpoints locked together up front, the V* frontier held
  // locked across the whole traversal, released en masse at the end.
  // Clang's analysis cannot track dynamically indexed capabilities, so
  // these carry the no-analysis exemption; the discipline is enforced
  // by the invariant suite (all locks free at quiescence) instead
  // (docs/STATIC_ANALYSIS.md §exemptions).
  bool insert_one(WorkerCtx& ctx, Edge e) PARCORE_NO_THREAD_SAFETY_ANALYSIS;
  void insert_forward(WorkerCtx& ctx, VertexId w, CoreValue k);
  void insert_backward(WorkerCtx& ctx, VertexId w, CoreValue k,
                       OrderList& list);
  void adjust_candidates(WorkerCtx& ctx, VertexId y, CoreValue k);
  void finalize_insert(WorkerCtx& ctx, CoreValue k, OrderList& list)
      PARCORE_NO_THREAD_SAFETY_ANALYSIS;

  bool remove_one(WorkerCtx& ctx, Edge e) PARCORE_NO_THREAD_SAFETY_ANALYSIS;
  void check_mcd(VertexId x, VertexId propagating_from);
  bool demote_if_unsupported(WorkerCtx& ctx, VertexId x, CoreValue k);

  void repair_dout_after_removal(int workers);
  void collect_changed();

  /// Locks a and b together (no hold-and-wait; Alg. 7/8 line 1) and
  /// returns with both held — unbalanced by design, hence exempt.
  void lock_endpoints(VertexId a, VertexId b)
      PARCORE_NO_THREAD_SAFETY_ANALYSIS;

  template <typename Fn>
  BatchResult run_batch(std::span<const Edge> edges, int workers, Fn&& op);

  DynamicGraph& graph_;
  ThreadTeam& team_;
  Options opts_;
  CoreState state_;
  std::vector<WorkerCtx> ctxs_;
  BatchPlan plan_;
  PlanStats last_plan_;
  BatchTiming last_timing_;

  // Epoch-marked membership for deduplicating touched sets across
  // workers without an O(n) clear per batch; `repair_unique_` is the
  // deduplicated union, hoisted here so steady-state flushes reuse its
  // capacity instead of reallocating every removal batch.
  std::vector<std::uint32_t> mark_;
  std::vector<VertexId> repair_unique_;
  std::uint32_t epoch_ = 0;

  // Same epoch-marked dedup idiom for the changed-core union behind
  // last_changed(). Separate mark array: the touched/changed epochs
  // advance independently (run_batch vs remove_batch) and must not
  // poison each other's membership tests.
  std::vector<std::uint32_t> changed_mark_;
  std::vector<VertexId> last_changed_;
  std::uint32_t changed_epoch_ = 0;
};

}  // namespace parcore
