// Per-worker min-priority queue over the k-order (paper §5, Algorithms
// 9-11). Entries cache an OM label snapshot [Lt, Lb] plus the vertex
// status word s and are keyed by the snapshot; the whole queue is
// re-snapshotted ("update_version") whenever
//   - the O_k relabel version moved since the cache was built, or
//   - a dequeued vertex's status word changed (it was moved by another
//     worker), which invalidates the cached order.
// dequeue() returns the minimal vertex LOCKED with core == k (via the
// conditional lock of Algorithm 4), or kInvalidVertex when drained.
#pragma once

#include <cstdint>
#include <vector>

#include "maint/core_state.h"
#include "om/order_list.h"
#include "sync/annotations.h"
#include "support/types.h"
#include "support/vertex_set.h"

namespace parcore {

class KOrderHeap {
 public:
  /// Binds the queue to one operation's O_k list; clears all entries.
  void reset(OrderList* list, CoreState* state);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Algorithm 10: snapshot v's labels/status and add it (no-op if
  /// already queued). Never blocks.
  void enqueue(VertexId v);

  /// Algorithm 11: pops vertices in k-order; returns the first vertex
  /// successfully locked with core == k (caller owns the lock), or
  /// kInvalidVertex when the queue is exhausted. Returns while holding
  /// a dynamically chosen per-vertex lock — exempt from the analysis
  /// (docs/STATIC_ANALYSIS.md §exemptions).
  VertexId dequeue(CoreValue k) PARCORE_NO_THREAD_SAFETY_ANALYSIS;

  bool contains(VertexId v) const { return inq_.contains(v); }

 private:
  struct Entry {
    OmKey key;
    std::uint32_t s = 0;
    VertexId v = kInvalidVertex;
  };

  static bool later(const Entry& a, const Entry& b) { return b.key < a.key; }

  /// Algorithm 9: re-snapshot every entry at a quiescent O_k version.
  void update_version();

  void push(Entry e);
  Entry pop();

  std::vector<Entry> heap_;
  VertexSet inq_;
  OrderList* list_ = nullptr;
  CoreState* state_ = nullptr;
  std::uint64_t version_ = 0;
  bool version_valid_ = false;
};

}  // namespace parcore
