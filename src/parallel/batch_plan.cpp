#include "parallel/batch_plan.h"

#include <algorithm>
#include <limits>

#include "om/order_list.h"

namespace parcore {

namespace {

inline OmKey om_key_of(const CoreState& state, VertexId v) {
  const OmItem& item = state.item(v);
  OmKey key;
  const OmGroup* g = item.group.load(std::memory_order_acquire);
  if (g != nullptr) key.group_label = g->label.load(std::memory_order_relaxed);
  key.item_label = item.label.load(std::memory_order_relaxed);
  return key;
}

constexpr PlanSortKey kInvalidKey{std::numeric_limits<CoreValue>::max(),
                                  ~0ULL, ~0ULL};

}  // namespace

PlanSortKey plan_sort_key(const CoreState& state, Edge e) {
  const CoreValue cu = state.core(e.u).load(std::memory_order_relaxed);
  const CoreValue cv = state.core(e.v).load(std::memory_order_relaxed);
  // The operation lands in O_k of the endpoint with the lower core;
  // core ties break toward u without comparing OM positions — the key
  // is a locality heuristic, and resolving the tie exactly would cost a
  // second group-pointer chase (one more cache miss) per edge.
  const OmKey k = om_key_of(state, cv < cu ? e.v : e.u);
  return PlanSortKey{std::min(cu, cv), k.group_label, k.item_label};
}

void BatchPlan::build(std::span<const Edge> edges, const CoreState& state,
                      const PlanOptions& opts, bool locality_only) {
  const std::size_t m = edges.size();
  const std::size_t n = state.size();
  stats_ = PlanStats{};
  stats_.edges = m;
  order_.clear();
  waves_.clear();
  chunk_ = std::max<std::size_t>(1, opts.chunk_edges);
  if (m == 0) return;

  if (mark_.size() < n) {
    mark_.resize(n, 0);
    last_wave_.resize(n, 0);
  }
  if (++epoch_ == 0) {  // counter wrapped: marks are ambiguous, reset
    std::fill(mark_.begin(), mark_.end(), 0);
    epoch_ = 1;
  }

  // 1. Locality keys, packed with their source index. Invalid edges
  // (the worker op skips them without locking anything) sort last and
  // join the overflow wave.
  keyed_.resize(m);
  bool presorted = true;
  CoreValue max_level = 0;
  std::size_t invalid = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const Edge e = edges[i];
    if (e.u == e.v || e.u >= n || e.v >= n) {
      keyed_[i].first = kInvalidKey;
      ++invalid;
    } else {
      keyed_[i].first = plan_sort_key(state, e);
      max_level = std::max(max_level, keyed_[i].first.level);
    }
    keyed_[i].second = static_cast<std::uint32_t>(i);
    if (i > 0 && keyed_[i].first < keyed_[i - 1].first) presorted = false;
  }
  stats_.presorted = presorted;

  // 2. Bucket pass into (level, OM position) order. A comparison sort
  // over the whole batch is the planner's hottest step, so levels —
  // small dense integers — go through a stable counting scatter, and
  // only the per-level segments are comparison-sorted (the packed
  // source index tiebreaks equal keys, so the result is stable: equal
  // keys keep drain order and plans are deterministic for a fixed
  // input). The OM refinement is skipped in locality-only mode — there
  // the serial sweep gains more from level bucketing than the segment
  // sorts cost, but not from the finer OM order. Skipped entirely when
  // the producer (the engine's coalescer) already bucketed the batch.
  if (!presorted) {
    const auto levels = static_cast<std::size_t>(max_level) + 1;
    offsets_.assign(levels + 2, 0);  // slot levels+1 collects invalids
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t lv = keyed_[i].first == kInvalidKey
                                 ? levels
                                 : static_cast<std::size_t>(
                                       keyed_[i].first.level);
      ++offsets_[lv + 1];
    }
    for (std::size_t l = 0; l + 1 < offsets_.size(); ++l)
      offsets_[l + 1] += offsets_[l];
    scatter_.resize(m);
    {
      std::vector<std::size_t>& cur = counts_;
      cur.assign(offsets_.begin(), offsets_.end());
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t lv = keyed_[i].first == kInvalidKey
                                   ? levels
                                   : static_cast<std::size_t>(
                                         keyed_[i].first.level);
        scatter_[cur[lv]++] = keyed_[i];
      }
    }
    keyed_.swap(scatter_);
    if (!locality_only) {
      for (std::size_t l = 0; l <= levels; ++l)
        std::sort(
            keyed_.begin() + static_cast<std::ptrdiff_t>(offsets_[l]),
            keyed_.begin() + static_cast<std::ptrdiff_t>(offsets_[l + 1]));
    }
  }

  // Bucket count: distinct levels among valid edges, now contiguous.
  {
    CoreValue prev = -1;
    for (std::size_t pos = 0; pos + invalid < m; ++pos) {
      if (keyed_[pos].first.level != prev) {
        ++stats_.buckets;
        prev = keyed_[pos].first.level;
      }
    }
  }

  order_.resize(m);
  if (locality_only) {
    // Caller will dispatch with effective parallelism 1 (workers or
    // hardware threads): vertex-disjoint waves cannot pay — only the
    // bucketed order's cache locality can. Emit one wave holding the
    // bucket-sorted sequence and skip colouring + scatter entirely.
    stats_.waves = 1;
    stats_.locality_only = true;
    for (std::size_t pos = 0; pos < m; ++pos)
      order_[pos] = edges[keyed_[pos].second];
    waves_.push_back(WaveRange{0, m});
    return;
  }

  // 3. Greedy wave colouring in bucketed order: an edge goes one wave
  // past the last wave either endpoint occupies, so no wave sees a
  // vertex twice. Hot vertices climb one wave per incident edge and
  // spill into the overflow wave at max_waves.
  const std::int32_t overflow =
      std::max(1, opts.max_waves);  // wave ids 0..overflow
  wave_at_.resize(m);
  std::int32_t top_wave = -1;
  bool any_overflow = false;
  for (std::size_t pos = 0; pos < m; ++pos) {
    if (keyed_[pos].first == kInvalidKey) {
      wave_at_[pos] = overflow;
      any_overflow = true;
      continue;
    }
    const Edge e = edges[keyed_[pos].second];
    const std::int32_t wu =
        mark_[e.u] == epoch_ ? last_wave_[e.u] : std::int32_t{-1};
    const std::int32_t wv =
        mark_[e.v] == epoch_ ? last_wave_[e.v] : std::int32_t{-1};
    std::int32_t w = std::max(wu, wv) + 1;
    if (w >= overflow) {
      w = overflow;
      ++stats_.overflow_edges;
      any_overflow = true;
    } else {
      top_wave = std::max(top_wave, w);
    }
    mark_[e.u] = epoch_;
    last_wave_[e.u] = w;
    mark_[e.v] = epoch_;
    last_wave_[e.v] = w;
    wave_at_[pos] = w;
  }
  stats_.waves = static_cast<std::size_t>(top_wave + 1);

  // 4. Stable counting scatter into wave-major order; within a wave the
  // bucketed (level, OM) order survives, which is the locality the
  // chunked dispatch exploits.
  const std::size_t nw = static_cast<std::size_t>(overflow) + 1;
  offsets_.assign(nw + 1, 0);
  for (std::size_t pos = 0; pos < m; ++pos)
    ++offsets_[static_cast<std::size_t>(wave_at_[pos]) + 1];
  for (std::size_t w = 0; w < nw; ++w) offsets_[w + 1] += offsets_[w];

  waves_.reserve(stats_.waves + (any_overflow ? 1 : 0));
  for (std::size_t w = 0; w < nw; ++w)
    if (offsets_[w + 1] > offsets_[w])
      waves_.push_back(WaveRange{offsets_[w], offsets_[w + 1]});

  for (std::size_t pos = 0; pos < m; ++pos) {
    order_[offsets_[static_cast<std::size_t>(wave_at_[pos])]++] =
        edges[keyed_[pos].second];
  }
}

}  // namespace parcore
