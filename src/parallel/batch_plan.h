// Conflict-aware batch planning for parallel maintenance dispatch.
//
// Naive dispatch hands coalesced edges to workers one at a time off a
// single shared counter: arbitrary interleaving makes workers collide
// on shared endpoints, thrash lock_endpoints, and churn the same O_k
// (KOrderHeap re-snapshot storms). The planner pre-partitions a batch
// so workers operate on disjoint regions of the k-order instead:
//
//   1. bucket  — edges are grouped by affected level
//                k = min(core(u), core(v)), the O_k an operation lands
//                in, so a worker's consecutive edges stay in one list;
//   2. wave    — within the bucketed order, edges are split into
//                conflict-free waves: no two edges in a wave share a
//                vertex (greedy endpoint-occupancy colouring), so a
//                wave's endpoint locks are contention-free by
//                construction. Waves beyond `max_waves` (hub vertices
//                with more batch edges than waves) fall into a final
//                overflow wave that is NOT conflict-free — those edges
//                serialise on their hub's lock no matter the schedule;
//   3. sort    — each wave inherits the (level, OM position) order of
//                the bucket pass, so a worker's consecutive edges touch
//                adjacent OM groups (cache + relabel locality);
//   4. dispatch— workers sweep the waves in order, claiming each wave's
//                edges as cache-line-sized chunks from per-worker
//                cursors over a static chunk split, stealing other
//                workers' remainders — replacing the single hot `next`
//                counter of dynamic dispatch. There is NO barrier
//                between waves: a worker advances as soon as the
//                current wave is fully CLAIMED, so at most P-1 stale
//                in-flight chunks can overlap the next wave (a bounded
//                contention window, vs the unbounded collisions of
//                naive dispatch). A hard fence was measured to lose
//                badly when workers oversubscribe cores: every wave
//                then costs a full scheduling round-trip.
//
// Wave disjointness is a performance property, not a correctness one:
// the maintainer's per-vertex CAS locks stay in force, so a stale plan
// (cores moved between build and execute) degrades locality, never
// safety. Plans are built at batch quiescence on the dispatching
// thread; DESIGN.md §9 has the full picture.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "maint/core_state.h"
#include "support/timer.h"
#include "support/types.h"
#include "sync/thread_team.h"

namespace parcore {

struct PlanOptions {
  /// Conflict-free waves before edges spill into the overflow wave.
  /// A vertex with more than max_waves batch edges overflows. Waves are
  /// cheap (barrier-free dispatch; cost is one cursor row per wave), so
  /// the default is generous.
  int max_waves = 256;
  /// Edges per dispatch chunk (8 x 8-byte Edge = one cache line).
  std::size_t chunk_edges = 8;
};

struct PlanStats {
  std::size_t edges = 0;           // batch size planned
  std::size_t buckets = 0;         // distinct affected levels
  std::size_t waves = 0;           // conflict-free waves emitted
  std::size_t overflow_edges = 0;  // edges in the non-disjoint overflow wave
  bool presorted = false;          // input already in (level, OM) order
  bool locality_only = false;      // built for serial dispatch: bucket
                                   // order only, no wave colouring
  std::uint64_t steals = 0;        // chunks run by a non-owning worker
  std::uint64_t busy_us = 0;       // summed per-worker dispatch-loop time
                                   // (execute wall x workers minus this
                                   // is the idle/straggler slack)
};

/// Locality key of an edge operation: the affected level and the OM
/// position of the k-order-lower endpoint. Plain relaxed label reads —
/// valid at batch quiescence (plan build time, coalesce time); a racing
/// relabel would only perturb the sort, which is heuristic anyway.
struct PlanSortKey {
  CoreValue level = 0;
  std::uint64_t group_label = 0;
  std::uint64_t item_label = 0;

  friend constexpr auto operator<=>(const PlanSortKey&,
                                    const PlanSortKey&) = default;
};

PlanSortKey plan_sort_key(const CoreState& state, Edge e);

class BatchPlan {
 public:
  /// Plans `edges` against the current cores/k-order. Invalid edges
  /// (self-loops, out-of-range endpoints) are routed to the overflow
  /// wave — they must still reach the worker op to be counted as
  /// skipped. If the input already arrives in (level, OM) order (the
  /// engine's coalescer pre-buckets its batches), the sort is skipped —
  /// detection is a single O(m) scan.
  ///
  /// `locality_only` is for callers that will dispatch with effective
  /// parallelism 1 (one worker requested, or workers oversubscribe a
  /// single hardware thread): waves can't pay there, so the plan is
  /// just the bucket-sorted order in a single wave — colouring and
  /// scatter are skipped and the serial sweep keeps full cache
  /// locality (wave scatter deliberately interleaves a hot vertex's
  /// edges, which is exactly wrong for one executor).
  void build(std::span<const Edge> edges, const CoreState& state,
             const PlanOptions& opts, bool locality_only = false);

  /// Runs `op(worker, edge)` over the plan with `workers` threads of
  /// `team`: wave-by-wave, chunk-claimed, work-stolen (header comment).
  /// Returns the number of ops that returned true; records steals into
  /// stats(). Op must be safe to run concurrently on distinct workers.
  template <typename Op>
  std::size_t execute(ThreadTeam& team, int workers, Op&& op);

  const PlanStats& stats() const { return stats_; }

  std::size_t num_waves() const { return waves_.size(); }
  /// Edges of wave `i` in planned order (bucket-major, OM-sorted).
  std::span<const Edge> wave(std::size_t i) const {
    return std::span<const Edge>(order_.data() + waves_[i].begin,
                                 waves_[i].end - waves_[i].begin);
  }

 private:
  struct WaveRange {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  struct alignas(64) Cursor {
    std::atomic<std::size_t> next{0};
    std::size_t hi = 0;

    Cursor() = default;
    Cursor(const Cursor& o)  // vector resize only; never copied live
        : next(o.next.load(std::memory_order_relaxed)), hi(o.hi) {}
  };

  std::vector<Edge> order_;  // wave-major planned sequence
  std::vector<WaveRange> waves_;
  std::vector<Cursor> cursors_;  // (wave x worker) claim grid
  PlanStats stats_;
  std::size_t chunk_ = 8;

  // Reusable scratch: epoch-marked per-vertex wave occupancy (no O(n)
  // clear per batch) plus sort buffers, so steady-state planning stops
  // allocating once the high-water marks are reached. Keys are packed
  // with their source index so the sort never chases a second array.
  std::vector<std::uint32_t> mark_;
  std::vector<std::int32_t> last_wave_;
  std::uint32_t epoch_ = 0;
  std::vector<std::pair<PlanSortKey, std::uint32_t>> keyed_;
  std::vector<std::pair<PlanSortKey, std::uint32_t>> scatter_;
  std::vector<std::int32_t> wave_at_;  // wave id per sorted position
  std::vector<std::size_t> offsets_;
  std::vector<std::size_t> counts_;
};

template <typename Op>
std::size_t BatchPlan::execute(ThreadTeam& team, int workers, Op&& op) {
  if (order_.empty()) return 0;
  const int p = std::max(1, std::min(workers, team.max_workers()));
  if (p == 1 || order_.size() <= chunk_) {
    // Serial fast path: no cursors, no claiming.
    WallTimer busy;
    std::size_t done = 0;
    for (const Edge& e : order_)
      if (op(0, e)) ++done;
    stats_.busy_us += busy.elapsed_us();
    return done;
  }

  // One cursor row per (wave, worker), seeded up front so workers never
  // synchronise to hand cursors over: global chunk ids of the wave,
  // statically split P ways, each share claimable by thieves once its
  // owner falls behind. Cursors are cache-line sized so a claim never
  // invalidates a neighbour's hot line (the false-sharing fix a single
  // shared `next` counter cannot have).
  const auto up = static_cast<std::size_t>(p);
  cursors_.resize(waves_.size() * up);
  for (std::size_t w = 0; w < waves_.size(); ++w) {
    const WaveRange r = waves_[w];
    const std::size_t chunks = (r.end - r.begin + chunk_ - 1) / chunk_;
    for (std::size_t i = 0; i < up; ++i) {
      Cursor& c = cursors_[w * up + i];
      c.next.store(chunks * i / up, std::memory_order_relaxed);
      c.hi = chunks * (i + 1) / up;
    }
  }
  struct alignas(64) Totals {
    std::atomic<std::size_t> applied{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> busy_us{0};
  } totals;

  team.run(p, [&, this](int wk) {
    WallTimer busy;
    const auto self = static_cast<std::size_t>(wk);
    std::size_t done = 0;
    std::uint64_t steals = 0;
    for (std::size_t w = 0; w < waves_.size(); ++w) {
      const WaveRange r = waves_[w];
      Cursor* row = cursors_.data() + w * up;
      auto run_chunk = [&](std::size_t c) {
        const std::size_t lo = r.begin + c * chunk_;
        const std::size_t hi = std::min(lo + chunk_, r.end);
        for (std::size_t j = lo; j < hi; ++j)
          if (op(wk, order_[j])) ++done;
      };
      for (;;) {
        const std::size_t c =
            row[self].next.fetch_add(1, std::memory_order_relaxed);
        if (c >= row[self].hi) break;
        run_chunk(c);
      }
      for (std::size_t d = 1; d < up; ++d) {
        Cursor& victim = row[(self + d) % up];
        for (;;) {
          // Test before claiming so exhausted victims cost one load.
          if (victim.next.load(std::memory_order_relaxed) >= victim.hi) break;
          const std::size_t c =
              victim.next.fetch_add(1, std::memory_order_relaxed);
          if (c >= victim.hi) break;
          ++steals;
          run_chunk(c);
        }
      }
      // No barrier: every chunk of wave w is claimed (own share drained,
      // steal sweep found nothing), so advancing now overlaps at most
      // the P-1 chunks still in flight on slower workers — see the
      // header comment for why a hard fence loses.
    }
    totals.applied.fetch_add(done, std::memory_order_relaxed);
    totals.steals.fetch_add(steals, std::memory_order_relaxed);
    totals.busy_us.fetch_add(busy.elapsed_us(), std::memory_order_relaxed);
  });
  stats_.steals = totals.steals.load(std::memory_order_relaxed);
  stats_.busy_us += totals.busy_us.load(std::memory_order_relaxed);
  return totals.applied.load(std::memory_order_relaxed);
}

}  // namespace parcore
