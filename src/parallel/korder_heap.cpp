#include "parallel/korder_heap.h"

#include <algorithm>

#include "sync/backoff.h"

namespace parcore {

void KOrderHeap::reset(OrderList* list, CoreState* state) {
  list_ = list;
  state_ = state;
  heap_.clear();
  inq_.clear();
  version_valid_ = false;
}

void KOrderHeap::push(Entry e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), later);
}

KOrderHeap::Entry KOrderHeap::pop() {
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Entry e = heap_.back();
  heap_.pop_back();
  return e;
}

void KOrderHeap::enqueue(VertexId v) {
  if (!inq_.insert(v)) return;
  const std::uint64_t ver = list_->version_started();
  const std::uint32_t sv = state_->s(v).load(std::memory_order_acquire);
  Entry e{list_->snapshot_key(&state_->item(v)), sv, v};
  const bool was_empty = heap_.empty();
  push(e);
  if (was_empty && !version_valid_) {
    version_ = ver;
    version_valid_ = true;
  }
  // Algorithm 10 line 3: any inconsistency -> defer to update_version.
  if (ver != list_->version_started() || ver != version_ || (sv & 1u) != 0 ||
      sv != state_->s(v).load(std::memory_order_acquire))
    version_valid_ = false;
}

void KOrderHeap::update_version() {
  Backoff backoff;
  for (;;) {
    std::uint64_t ver = 0;
    if (!list_->quiescent_version(ver)) {  // O_k.cnt != 0: relabel running
      backoff.pause();
      continue;
    }
    bool clean = true;
    for (Entry& e : heap_) {
      // Per-entry stability loop (Algorithm 9 lines 4-7): the vertex
      // must not be mid-move while we snapshot it.
      for (;;) {
        const std::uint32_t sv =
            state_->s(e.v).load(std::memory_order_acquire);
        if ((sv & 1u) != 0) {
          backoff.pause();
          continue;
        }
        OmKey key = list_->snapshot_key(&state_->item(e.v));
        if (state_->s(e.v).load(std::memory_order_acquire) != sv) continue;
        e.key = key;
        e.s = sv;
        break;
      }
    }
    if (list_->version_started() != ver) {
      clean = false;  // a relabel raced the refresh
    }
    if (!clean) continue;
    std::make_heap(heap_.begin(), heap_.end(), later);
    version_ = ver;
    version_valid_ = true;
    return;
  }
}

VertexId KOrderHeap::dequeue(CoreValue k) {
  for (;;) {
    if (heap_.empty()) return kInvalidVertex;
    // Version Invariant (Definition 5.1): all cached keys must be from
    // the current O_k version.
    if (!version_valid_ || version_ != list_->version_started())
      update_version();

    const Entry e = heap_.front();
    const VertexId v = e.v;
    // Conditional lock with c = (v.core == k): stops waiting the moment
    // another worker promotes v past this level.
    if (!lock_if(state_->lock(v), [&] {
          return state_->core(v).load(std::memory_order_acquire) == k;
        })) {
      pop();
      inq_.erase(v);
      continue;
    }
    if (state_->s(v).load(std::memory_order_acquire) != e.s) {
      // v was moved since we cached it; our view of the order is stale.
      state_->lock(v).unlock();
      version_valid_ = false;
      continue;
    }
    pop();
    inq_.erase(v);
    return v;  // locked, core == k, minimal in k-order
  }
}

}  // namespace parcore
