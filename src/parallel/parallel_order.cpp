#include "parallel/parallel_order.h"

#include <algorithm>
#include <cassert>

#include "sync/backoff.h"

namespace parcore {

ParallelOrderMaintainer::ParallelOrderMaintainer(DynamicGraph& g,
                                                 ThreadTeam& team,
                                                 Options opts)
    : graph_(g), team_(team), opts_(opts) {
  ctxs_.resize(static_cast<std::size_t>(team_.max_workers()));
  if (opts_.restore != nullptr) {
    std::string err;
    if (!state_.initialize_from_order(graph_, *opts_.restore, opts_.state,
                                      &err))
      throw std::runtime_error("cannot restore saved core order: " + err);
    opts_.restore = nullptr;  // construction-time only; never dangles
    mark_.assign(graph_.num_vertices(), 0);
    epoch_ = 0;
    changed_mark_.assign(graph_.num_vertices(), 0);
    changed_epoch_ = 0;
    last_changed_.clear();
    return;
  }
  rebuild();
}

void ParallelOrderMaintainer::rebuild() { rebuild(opts_.init_workers); }

void ParallelOrderMaintainer::rebuild(int init_workers) {
  if (init_workers > 0)
    state_.initialize_parallel(graph_, team_, init_workers, opts_.state);
  else
    state_.initialize(graph_, opts_.state);
  mark_.assign(graph_.num_vertices(), 0);
  epoch_ = 0;
  changed_mark_.assign(graph_.num_vertices(), 0);
  changed_epoch_ = 0;
  last_changed_.clear();
}

void ParallelOrderMaintainer::lock_endpoints(VertexId a, VertexId b) {
  // "Lock u and v together if both are not locked" (Alg. 7/8 line 1):
  // hold one only while try-locking the other — no hold-and-wait, so
  // this step cannot join a blocking cycle.
  if (a > b) std::swap(a, b);
  lock_pair(state_.lock(a), state_.lock(b));
}

template <typename Fn>
BatchResult ParallelOrderMaintainer::run_batch(std::span<const Edge> edges,
                                               int workers, Fn&& op) {
  last_plan_ = PlanStats{};
  last_timing_ = BatchTiming{};
  ++changed_epoch_;
  last_changed_.clear();  // keeps capacity across steady-state batches
  for (auto& ctx : ctxs_) ctx.changed.clear();
  BatchResult r;
  // The shared counters get a cache line each: `applied` takes one
  // fetch_add per worker, but `next` is the per-edge hot word and must
  // not ping-pong with it (or with the stack frame around them).
  alignas(64) std::atomic<std::size_t> applied{0};
  alignas(64) std::atomic<std::size_t> next{0};
  alignas(64) std::atomic<std::uint64_t> busy_us{0};
  switch (opts_.schedule) {
    case ScheduleMode::kPlan: {
      // Effective parallelism: claimers beyond the team or the hardware
      // only add contention. When it degenerates to 1 the plan drops
      // wave colouring and becomes a pure locality schedule — the
      // dispatch then stays on the calling thread, skipping the team
      // wake-up entirely (measurably cheaper when workers oversubscribe
      // a small machine).
      const int effective = std::max(
          1, std::min({workers, team_.max_workers(),
                       ThreadTeam::hardware_workers()}));
      WallTimer build_timer;
      plan_.build(edges, state_, opts_.plan, /*locality_only=*/effective == 1);
      last_timing_.plan_us = build_timer.elapsed_us();
      WallTimer dispatch_timer;
      r.applied = plan_.execute(team_, effective, [&](int w, const Edge& e) {
        return op(ctxs_[static_cast<std::size_t>(w)], e);
      });
      last_timing_.dispatch_us = dispatch_timer.elapsed_us();
      last_plan_ = plan_.stats();
      last_timing_.busy_us = last_plan_.busy_us;
      last_timing_.workers = effective;
      r.skipped = edges.size() - r.applied;
      collect_changed();
      return r;
    }
    case ScheduleMode::kStatic: {
      // Paper Algorithm 5: split ΔE into P contiguous parts. P must
      // match what ThreadTeam::run will actually launch — a share
      // assigned past team capacity would silently never execute.
      const std::size_t p = static_cast<std::size_t>(
          std::max(1, std::min({workers, team_.max_workers(), 1024})));
      WallTimer dispatch_timer;
      team_.run(workers, [&](int w) {
        WallTimer busy;
        WorkerCtx& ctx = ctxs_[static_cast<std::size_t>(w)];
        const std::size_t base = edges.size() / p;
        const std::size_t extra = edges.size() % p;
        const auto uw = static_cast<std::size_t>(w);
        const std::size_t begin = uw * base + std::min(uw, extra);
        const std::size_t len = base + (uw < extra ? 1 : 0);
        std::size_t done = 0;
        for (std::size_t i = begin; i < begin + len; ++i)
          if (op(ctx, edges[i])) ++done;
        applied.fetch_add(done, std::memory_order_relaxed);
        busy_us.fetch_add(busy.elapsed_us(), std::memory_order_relaxed);
      });
      last_timing_.dispatch_us = dispatch_timer.elapsed_us();
      last_timing_.busy_us = busy_us.load(std::memory_order_relaxed);
      last_timing_.workers = static_cast<int>(p);
      break;
    }
    case ScheduleMode::kDynamic: {
      WallTimer dispatch_timer;
      team_.run(workers, [&](int w) {
        WallTimer busy;
        WorkerCtx& ctx = ctxs_[static_cast<std::size_t>(w)];
        std::size_t done = 0;
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= edges.size()) break;
          if (op(ctx, edges[i])) ++done;
        }
        applied.fetch_add(done, std::memory_order_relaxed);
        busy_us.fetch_add(busy.elapsed_us(), std::memory_order_relaxed);
      });
      last_timing_.dispatch_us = dispatch_timer.elapsed_us();
      last_timing_.busy_us = busy_us.load(std::memory_order_relaxed);
      last_timing_.workers =
          std::max(1, std::min(workers, team_.max_workers()));
      break;
    }
  }
  r.applied = applied.load(std::memory_order_relaxed);
  r.skipped = edges.size() - r.applied;
  collect_changed();
  return r;
}

void ParallelOrderMaintainer::collect_changed() {
  for (auto& ctx : ctxs_) {
    for (VertexId v : ctx.changed) {
      if (changed_mark_[v] != changed_epoch_) {
        changed_mark_[v] = changed_epoch_;
        last_changed_.push_back(v);
      }
    }
    ctx.changed.clear();
  }
}

// ===========================================================================
// Insertion (Algorithms 5, 7)
// ===========================================================================

BatchResult ParallelOrderMaintainer::insert_batch(std::span<const Edge> edges,
                                                  int workers) {
  // Each insertion raises cores by at most one, so the level directory
  // can be sized once, at quiescence.
  state_.levels().ensure_capacity(
      std::min(static_cast<std::size_t>(state_.max_core()) + edges.size(),
               graph_.num_vertices()) +
      2);
  return run_batch(edges, workers,
                   [this](WorkerCtx& ctx, Edge e) { return insert_one(ctx, e); });
}

bool ParallelOrderMaintainer::insert_one(WorkerCtx& ctx, Edge e) {
  VertexId u = e.u, v = e.v;
  const std::size_t n = graph_.num_vertices();
  if (u == v || u >= n || v >= n) return false;

  lock_endpoints(u, v);
  if (graph_.has_edge(u, v)) {
    state_.lock(u).unlock();
    state_.lock(v).unlock();
    return false;
  }
  // Orient u ≺ v; both endpoints are locked, so their positions are
  // stable (only a lock holder moves a vertex).
  if (state_.precedes_stable(v, u)) std::swap(u, v);
  const CoreValue k = state_.core(u).load(std::memory_order_relaxed);
  const CoreValue cv = state_.core(v).load(std::memory_order_relaxed);

  graph_.insert_edge_unchecked(u, v);
  state_.dout(u).fetch_add(1, std::memory_order_relaxed);
  if (cv >= k) state_.mcd_increment_unless_empty(u);
  if (k >= cv) state_.mcd_increment_unless_empty(v);
  state_.lock(v).unlock();

  if (state_.dout(u).load(std::memory_order_relaxed) <= k) {
    state_.lock(u).unlock();
    if (opts_.collect_stats) {
      ctx.vplus_hist.record(0);
      ctx.vstar_hist.record(0);
    }
    return true;
  }

  OrderList& list = state_.levels().get_or_create(k);
  ctx.queue.reset(&list, &state_);
  ctx.vstar.clear();
  ctx.locked.clear();
  ctx.vplus_count = 0;
  ctx.locked.push_back(u);

  VertexId w = u;
  while (w != kInvalidVertex) {
    // d*in(w) = |pre(w) ∩ V*| (Alg. 7 line 9). All V* members are locked
    // by this worker and precede w, so adjacency membership suffices.
    CoreValue d = 0;
    for (VertexId x : graph_.neighbors(w))
      if (ctx.vstar.contains(x)) ++d;
    state_.din(w) = d;

    if (d + state_.dout(w).load(std::memory_order_relaxed) > k) {
      insert_forward(ctx, w, k);
    } else if (d > 0) {
      insert_backward(ctx, w, k, list);
    } else {
      // Skip: w is not in V+; release it immediately. w is always the
      // most recently locked vertex.
      state_.din(w) = 0;
      state_.lock(w).unlock();
      ctx.locked.pop_back();
    }

    w = ctx.queue.dequeue(k);  // returns w locked with core == k
    if (w != kInvalidVertex) ctx.locked.push_back(w);
  }

  finalize_insert(ctx, k, list);
  return true;
}

void ParallelOrderMaintainer::insert_forward(WorkerCtx& ctx, VertexId w,
                                             CoreValue k) {
  ++ctx.vplus_count;
  ctx.vstar.insert(w);
  for (VertexId x : graph_.neighbors(w)) {
    if (state_.core(x).load(std::memory_order_acquire) != k) continue;
    if (ctx.vstar.contains(x)) continue;
    if (ctx.queue.contains(x)) continue;
    if (!state_.precedes_guarded(w, x)) continue;  // successors only
    ctx.queue.enqueue(x);
  }
}

void ParallelOrderMaintainer::adjust_candidates(WorkerCtx& ctx, VertexId y,
                                                CoreValue k) {
  // DoPre + DoPost in one scan: V* neighbours of y are all locked by
  // this worker, so their relative order to y is stable.
  for (VertexId x : graph_.neighbors(y)) {
    if (!ctx.vstar.contains(x)) continue;
    if (state_.precedes_stable(x, y)) {
      state_.dout(x).fetch_sub(1, std::memory_order_relaxed);
    } else if (state_.din(x) > 0) {
      state_.din(x) -= 1;
    } else {
      continue;
    }
    if (state_.din(x) + state_.dout(x).load(std::memory_order_relaxed) <= k &&
        ctx.inr.insert(x))
      ctx.rq.push_back(x);
  }
}

void ParallelOrderMaintainer::insert_backward(WorkerCtx& ctx, VertexId w,
                                              CoreValue k, OrderList& list) {
  ++ctx.vplus_count;
  OmItem* pre = &state_.item(w);
  ctx.rq.clear();
  ctx.inr.clear();
  adjust_candidates(ctx, w, k);  // origin: only the DoPre branch fires
  state_.dout(w).fetch_add(state_.din(w), std::memory_order_relaxed);
  state_.din(w) = 0;

  while (!ctx.rq.empty()) {
    const VertexId y = ctx.rq.front();
    ctx.rq.pop_front();
    ctx.vstar.erase(y);
    adjust_candidates(ctx, y, k);
    // Move y right after `pre` in O_k; s is odd while y's position is in
    // flux so Parallel-Order readers (Alg. 6) retry instead of tearing.
    state_.s(y).fetch_add(1, std::memory_order_acq_rel);
    list.remove(&state_.item(y));
    list.insert_after(pre, &state_.item(y));
    state_.s(y).fetch_add(1, std::memory_order_release);
    pre = &state_.item(y);
    state_.dout(y).fetch_add(state_.din(y), std::memory_order_relaxed);
    state_.din(y) = 0;
  }
}

void ParallelOrderMaintainer::finalize_insert(WorkerCtx& ctx, CoreValue k,
                                              OrderList& list) {
  if (!ctx.vstar.empty()) {
    OrderList& next = state_.levels().get_or_create(k + 1);
    OmItem* anchor = nullptr;
    ctx.vstar.for_each([&](VertexId c) {
      // Widened s-odd window: core and position change together so
      // Parallel-Order never observes a torn (core, label) pair
      // (DESIGN.md §3.2 item 3). The position moves BEFORE the core is
      // published: a worker whose conditional lock observes core = k+1
      // drops c from its queue assuming c is already ordered after its
      // own still-pending candidates — with head insertion that only
      // holds once c's item is physically in O_{k+1} (DESIGN.md §3.2
      // item 6; the paper's line 15/16 order has this race).
      state_.s(c).fetch_add(1, std::memory_order_acq_rel);
      state_.din(c) = 0;
      list.remove(&state_.item(c));
      if (anchor == nullptr)
        next.insert_head(&state_.item(c));
      else
        next.insert_after(anchor, &state_.item(c));
      state_.core(c).store(k + 1, std::memory_order_release);
      state_.s(c).fetch_add(1, std::memory_order_release);
      anchor = &state_.item(c);
      ctx.changed.push_back(c);

      // mcd: the promoted vertex's own value is stale; neighbours now at
      // the promoted level gain one >=-core neighbour.
      state_.mcd(c).store(kMcdEmpty, std::memory_order_relaxed);
      for (VertexId x : graph_.neighbors(c))
        if (state_.core(x).load(std::memory_order_acquire) == k + 1)
          state_.mcd_increment_unless_empty(x);
    });
    state_.raise_max_core(k + 1);
  }

  if (opts_.collect_stats) {
    ctx.vplus_hist.record(ctx.vplus_count);
    ctx.vstar_hist.record(ctx.vstar.size());
  }
  for (VertexId x : ctx.locked) state_.lock(x).unlock();
  ctx.locked.clear();
}

// ===========================================================================
// Removal (Algorithm 8)
// ===========================================================================

BatchResult ParallelOrderMaintainer::remove_batch(std::span<const Edge> edges,
                                                  int workers) {
  ++epoch_;
  for (auto& ctx : ctxs_) ctx.touched.clear();
  BatchResult r = run_batch(edges, workers, [this](WorkerCtx& ctx, Edge e) {
    return remove_one(ctx, e);
  });
  repair_dout_after_removal(workers);
  return r;
}

bool ParallelOrderMaintainer::remove_one(WorkerCtx& ctx, Edge e) {
  VertexId u = e.u, v = e.v;
  const std::size_t n = graph_.num_vertices();
  if (u == v || u >= n || v >= n) return false;

  lock_endpoints(u, v);
  if (!graph_.has_edge(u, v)) {
    state_.lock(u).unlock();
    state_.lock(v).unlock();
    return false;
  }
  const CoreValue cu = state_.core(u).load(std::memory_order_relaxed);
  const CoreValue cv = state_.core(v).load(std::memory_order_relaxed);
  const CoreValue k = std::min(cu, cv);

  // CheckMCD before the edge disappears so lazily recomputed values
  // still count the peer (Alg. 8 line 3).
  check_mcd(u, kInvalidVertex);
  check_mcd(v, kInvalidVertex);

  // dout of the k-order-lower endpoint drops with the edge.
  if (state_.precedes_stable(u, v))
    state_.dout(u).fetch_sub(1, std::memory_order_relaxed);
  else
    state_.dout(v).fetch_sub(1, std::memory_order_relaxed);
  graph_.remove_edge(u, v);

  ctx.vstar.clear();
  ctx.rq.clear();
  ctx.touched.push_back(u);
  ctx.touched.push_back(v);

  // Endpoint mcd drops only when the removed peer counted toward it
  // (paper guard corrected per DESIGN.md §3.2 item 1).
  bool keep_u = false, keep_v = false;
  if (cv >= cu) {
    state_.mcd(u).fetch_sub(1, std::memory_order_relaxed);
    keep_u = demote_if_unsupported(ctx, u, k);
  }
  if (cu >= cv) {
    state_.mcd(v).fetch_sub(1, std::memory_order_relaxed);
    keep_v = demote_if_unsupported(ctx, v, k);
  }
  if (!keep_u) state_.lock(u).unlock();
  if (!keep_v) state_.lock(v).unlock();

  while (!ctx.rq.empty()) {
    const VertexId w = ctx.rq.front();
    ctx.rq.pop_front();
    ctx.ap.clear();
    for (;;) {
      state_.t(w).fetch_sub(1, std::memory_order_acq_rel);  // 2 -> 1
      for (VertexId x : graph_.neighbors(w)) {
        if (ctx.ap.contains(x)) continue;
        if (state_.core(x).load(std::memory_order_acquire) != k) continue;
        if (!lock_if(state_.lock(x), [&] {
              return state_.core(x).load(std::memory_order_acquire) == k;
            }))
          continue;  // x was demoted concurrently; skip, no busy wait
        check_mcd(x, w);
        state_.mcd(x).fetch_sub(1, std::memory_order_relaxed);
        const bool kept = demote_if_unsupported(ctx, x, k);
        if (!kept) state_.lock(x).unlock();
        ctx.ap.insert(x);
        ctx.touched.push_back(x);
      }
      state_.t(w).fetch_sub(1, std::memory_order_acq_rel);  // 1 -> 0
      // CAS(t,1,3) by a neighbour's CheckMCD forces a redo (line 16);
      // A_p persists so already-visited neighbours are not re-counted.
      if (state_.t(w).load(std::memory_order_acquire) <= 0) break;
    }
  }

  // V* members were moved to O_{k-1} at demotion time; release them.
  if (opts_.collect_stats) ctx.remove_vstar_hist.record(ctx.vstar.size());
  ctx.vstar.for_each([&](VertexId w) {
    ctx.touched.push_back(w);
    state_.lock(w).unlock();
  });
  return true;
}

bool ParallelOrderMaintainer::demote_if_unsupported(WorkerCtx& ctx, VertexId x,
                                                    CoreValue k) {
  // Caller holds x's lock, has ensured mcd(x) is fresh and has applied
  // the decrement. Precondition: core(x) == k.
  if (state_.mcd(x).load(std::memory_order_relaxed) >= k) return false;
  // <t, core> must change together (Alg. 8 line 22): publishing t=2
  // before core=k-1 with release ordering gives readers who observe the
  // new core a guaranteed view of t > 0.
  state_.t(x).store(2, std::memory_order_relaxed);
  state_.core(x).store(k - 1, std::memory_order_release);
  state_.mcd(x).store(kMcdEmpty, std::memory_order_relaxed);
  ctx.vstar.insert(x);
  ctx.rq.push_back(x);
  ctx.changed.push_back(x);
  // Move x to the tail of O_{k-1} NOW rather than at operation end
  // (paper line 17): with per-demotion appends the global tail order
  // equals the global demotion order, which is what keeps
  // r(v) <= core(v) valid across workers — a vertex that settled
  // (t = 0) before another worker's demotion is also POSITIONED before
  // it, matching its exclusion from that worker's CheckMCD count.
  state_.levels().get_or_create(k).remove(&state_.item(x));
  state_.levels().get_or_create(k - 1).insert_tail(&state_.item(x));
  return true;
}

void ParallelOrderMaintainer::check_mcd(VertexId x, VertexId propagating_from) {
  // Algorithm 8 CheckMCD: recompute mcd(x) lock-free over x's neighbours.
  // x itself is locked by this worker, so core(x) and adj(x) are stable.
  if (state_.mcd(x).load(std::memory_order_relaxed) != kMcdEmpty) return;
  const CoreValue cx = state_.core(x).load(std::memory_order_relaxed);
  CoreValue m = 0;
  for (VertexId y : graph_.neighbors(x)) {
    // Consistent (core, t) snapshot: cores only decrease during the
    // removal phase, so a stable double-read of core brackets t.
    CoreValue cy;
    std::int32_t ty;
    for (;;) {
      cy = state_.core(y).load(std::memory_order_acquire);
      ty = state_.t(y).load(std::memory_order_acquire);
      if (state_.core(y).load(std::memory_order_acquire) == cy) break;
    }
    if (cy >= cx) {
      ++m;
      continue;
    }
    if (cy == cx - 1 && ty > 0) {
      // y was demoted but its propagation has not finished: count it —
      // its visit to x will apply the decrement. If y is mid-scan we
      // force a redo so case 3 of §4.2.2 cannot lose the update.
      ++m;
      if (y != propagating_from && ty == 1) {
        std::int32_t expected = 1;
        state_.t(y).compare_exchange_strong(expected, 3,
                                            std::memory_order_acq_rel);
      }
      if (state_.t(y).load(std::memory_order_acquire) == 0) --m;
    }
  }
  state_.mcd(x).store(m, std::memory_order_relaxed);
}

void ParallelOrderMaintainer::repair_dout_after_removal(int workers) {
  // Restore d+out exactness at batch quiescence (DESIGN.md §3.1): the
  // union of all touched sets covers every vertex whose successor set
  // can have changed.
  repair_unique_.clear();  // keeps capacity: steady-state flushes
                           // stop allocating here
  for (auto& ctx : ctxs_) {
    for (VertexId v : ctx.touched) {
      if (mark_[v] != epoch_) {
        mark_[v] = epoch_;
        repair_unique_.push_back(v);
      }
    }
    ctx.touched.clear();
  }
  if (repair_unique_.empty()) return;
  parallel_for(team_, workers, 0, repair_unique_.size(), [&](std::size_t i) {
    const VertexId v = repair_unique_[i];
    state_.dout(v).store(state_.compute_dout(graph_, v),
                         std::memory_order_relaxed);
  });
}

// ===========================================================================
// Single-edge conveniences and stats
// ===========================================================================

bool ParallelOrderMaintainer::insert_edge(VertexId u, VertexId v) {
  Edge e{u, v};
  BatchResult r = insert_batch(std::span<const Edge>(&e, 1), 1);
  return r.applied == 1;
}

bool ParallelOrderMaintainer::remove_edge(VertexId u, VertexId v) {
  Edge e{u, v};
  BatchResult r = remove_batch(std::span<const Edge>(&e, 1), 1);
  return r.applied == 1;
}

std::size_t ParallelOrderMaintainer::detach_vertex(VertexId v, int workers) {
  if (v >= graph_.num_vertices()) return 0;
  // Materialise the adjacency before mutating: remove_batch swap-erases
  // v's list, which invalidates the span (same rule as the old vector
  // layout; slab relocation adds no new hazard because removals never
  // relocate).
  const auto nbrs = graph_.neighbors(v);
  std::vector<Edge> edges;
  edges.reserve(nbrs.size());
  for (VertexId u : nbrs) edges.push_back(Edge{v, u});
  return remove_batch(edges, workers).applied;
}

std::size_t ParallelOrderMaintainer::attach_vertex(
    VertexId v, std::span<const VertexId> neighbors, int workers) {
  if (v >= graph_.num_vertices()) return 0;
  std::vector<Edge> edges;
  edges.reserve(neighbors.size());
  for (VertexId u : neighbors) edges.push_back(Edge{v, u});
  return insert_batch(edges, workers).applied;
}

SizeHistogram ParallelOrderMaintainer::insert_vplus_histogram() const {
  SizeHistogram h;
  for (const auto& ctx : ctxs_) h.merge(ctx.vplus_hist);
  return h;
}

SizeHistogram ParallelOrderMaintainer::insert_vstar_histogram() const {
  SizeHistogram h;
  for (const auto& ctx : ctxs_) h.merge(ctx.vstar_hist);
  return h;
}

SizeHistogram ParallelOrderMaintainer::remove_vstar_histogram() const {
  SizeHistogram h;
  for (const auto& ctx : ctxs_) h.merge(ctx.remove_vstar_hist);
  return h;
}

}  // namespace parcore
