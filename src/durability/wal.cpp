#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "durability/crash.h"
#include "durability/faults.h"
#include "io/checksum.h"
#include "io/io_error.h"

namespace parcore::durability {

using io::crc32;
using io::IoError;

namespace {

// A frame larger than this cannot have been written by us (it would be
// a multi-hundred-million-edge flush); treat it as corruption instead
// of letting a flipped length bit drive a giant allocation.
constexpr std::uint32_t kMaxFrameLen = 1u << 30;

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  out.push_back(static_cast<unsigned char>(v));
  out.push_back(static_cast<unsigned char>(v >> 8));
  out.push_back(static_cast<unsigned char>(v >> 16));
  out.push_back(static_cast<unsigned char>(v >> 24));
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

std::string at_offset(std::uint64_t off) {
  return " at offset " + std::to_string(off);
}

// write(2) the whole buffer, resuming on short writes / EINTR. A real
// crash can still leave a prefix on disk — exactly the torn tail the
// reader tolerates.
void write_all(int fd, const std::string& path, const unsigned char* data,
               std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ::ssize_t w = ::write(fd, data + done, len - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw IoError(path, 0,
                    std::string("write failed: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(w);
  }
}

void fsync_or_throw(int fd, const std::string& path) {
  if (::fsync(fd) != 0)
    throw IoError(path, 0,
                  std::string("fsync failed: ") + std::strerror(errno));
}

IoError injected(const std::string& path, const char* what, int err) {
  return IoError(path, 0, std::string(what) + " failed: " +
                              std::strerror(err) + " (injected)");
}

void encode_header(std::vector<unsigned char>& out, std::uint64_t base_epoch) {
  out.clear();
  out.insert(out.end(), {'P', 'W', 'A', 'L'});
  put_u32(out, kWalVersion);
  put_u64(out, base_epoch);
  out.insert(out.end(), 12, 0u);  // reserved
  put_u32(out, crc32(out.data(), out.size()));
}

void encode_frame(std::vector<unsigned char>& out, const WalRecord& rec) {
  out.clear();
  const std::size_t pairs = rec.removes.size() + rec.inserts.size();
  const std::size_t len = 16 + 8 * pairs;
  put_u32(out, static_cast<std::uint32_t>(len));
  put_u32(out, 0);  // crc backpatched below
  put_u64(out, rec.epoch);
  put_u32(out, static_cast<std::uint32_t>(rec.removes.size()));
  put_u32(out, static_cast<std::uint32_t>(rec.inserts.size()));
  for (const Edge& e : rec.removes) {
    put_u32(out, e.u);
    put_u32(out, e.v);
  }
  for (const Edge& e : rec.inserts) {
    put_u32(out, e.u);
    put_u32(out, e.v);
  }
  const std::uint32_t crc = crc32(out.data() + 8, len);
  out[4] = static_cast<unsigned char>(crc);
  out[5] = static_cast<unsigned char>(crc >> 8);
  out[6] = static_cast<unsigned char>(crc >> 16);
  out[7] = static_cast<unsigned char>(crc >> 24);
}

}  // namespace

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    sync_ = other.sync_;
    path_ = std::move(other.path_);
    frames_ = other.frames_;
    bytes_ = other.bytes_;
    fsyncs_ = other.fsyncs_;
    truncate_repairs_ = other.truncate_repairs_;
    buf_ = std::move(other.buf_);
  }
  return *this;
}

WalWriter WalWriter::create(const std::string& path, std::uint64_t base_epoch,
                            bool sync) {
  if (const int err = fail_point("wal-create"))
    throw injected(path, "create WAL", err);
  WalWriter w;
  w.fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (w.fd_ < 0)
    throw IoError(path, 0,
                  std::string("cannot create WAL: ") + std::strerror(errno));
  w.sync_ = sync;
  w.path_ = path;
  encode_header(w.buf_, base_epoch);
  write_all(w.fd_, path, w.buf_.data(), w.buf_.size());
  w.bytes_ += w.buf_.size();
  if (sync) {
    fsync_or_throw(w.fd_, path);
    ++w.fsyncs_;
  }
  return w;
}

void WalWriter::append(const WalRecord& rec) {
  if (fd_ < 0) throw IoError(path_, 0, "WAL writer is closed");
  const std::size_t pairs = rec.removes.size() + rec.inserts.size();
  if (pairs > (kMaxFrameLen - 16) / 8)
    throw IoError(path_, 0, "WAL record too large");
  encode_frame(buf_, rec);
  // bytes_ only advances on fully committed frames, so it IS the last
  // committed frame boundary — the offset the error path truncates
  // back to. (The header is counted into bytes_ at create.)
  const std::uint64_t committed = bytes_;
  try {
    if (crash_point_armed("wal-mid-append")) {
      // Stage the torn-tail artifact a real crash would leave: only the
      // first half of the frame reaches the file before the process
      // dies in the crash_point below.
      write_all(fd_, path_, buf_.data(), buf_.size() / 2);
    }
    crash_point("wal-mid-append");
    if (const int err = fail_point("wal-append"))
      throw injected(path_, "write WAL frame", err);
    if (fail_point_armed("wal-append-short")) {
      // Unlike wal-append this leaves a REAL interior torn frame, which
      // the catch below must truncate away for the file to stay
      // replayable after a retried append.
      write_all(fd_, path_, buf_.data(), buf_.size() / 2);
      const int err = fail_point("wal-append-short");
      throw injected(path_, "write WAL frame (short)",
                     err != 0 ? err : EIO);
    }
    write_all(fd_, path_, buf_.data(), buf_.size());
    crash_point("wal-pre-fsync");
    if (sync_) {
      if (const int err = fail_point("wal-fsync"))
        throw injected(path_, "fsync WAL", err);
      fsync_or_throw(fd_, path_);
      ++fsyncs_;
    }
    crash_point("wal-post-fsync");
  } catch (...) {
    // Roll the file back to the last committed frame boundary so a
    // retry (or a later successful append) cannot stack a fresh frame
    // on top of a torn one. If the rollback itself fails the file's
    // tail state is unknown — close the writer so every later append
    // fails fast and the engine degrades to memory-only.
    if (::ftruncate(fd_, static_cast<off_t>(committed)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(committed), SEEK_SET) < 0) {
      ::close(fd_);
      fd_ = -1;
    } else {
      ++truncate_repairs_;
    }
    throw;
  }
  frames_ += 1;
  bytes_ += buf_.size();
}

void WalWriter::sync() {
  if (fd_ < 0) return;
  fsync_or_throw(fd_, path_);
  ++fsyncs_;
}

void WalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

WalReadResult read_wal(const std::string& path) {
  struct File {
    std::FILE* f = nullptr;
    ~File() {
      if (f) std::fclose(f);
    }
  } file;
  file.f = std::fopen(path.c_str(), "rb");
  if (file.f == nullptr)
    throw IoError(path, 0,
                  std::string("cannot open WAL: ") + std::strerror(errno));

  WalReadResult out;
  unsigned char header[kWalHeaderBytes];
  const std::size_t got = std::fread(header, 1, sizeof header, file.f);
  if (got != sizeof header)
    throw IoError(path, 0, "truncated WAL header (" + std::to_string(got) +
                               " of 32 bytes)" + at_offset(0));
  if (std::memcmp(header, "PWAL", 4) != 0)
    throw IoError(path, 0, "bad WAL magic" + at_offset(0));
  const std::uint32_t version = get_u32(header + 4);
  if (version != kWalVersion)
    throw IoError(path, 0,
                  "unsupported WAL version " + std::to_string(version) +
                      at_offset(4));
  if (crc32(header, 28) != get_u32(header + 28))
    throw IoError(path, 0, "WAL header CRC mismatch" + at_offset(28));
  out.base_epoch = get_u64(header + 8);

  std::uint64_t off = kWalHeaderBytes;
  std::uint64_t prev_epoch = out.base_epoch;
  std::vector<unsigned char> buf;
  for (;;) {
    unsigned char pre[8];
    const std::size_t pre_got = std::fread(pre, 1, sizeof pre, file.f);
    if (pre_got == 0) break;  // clean end
    if (pre_got < sizeof pre) {
      out.torn_tail = true;
      out.torn_offset = off;
      break;
    }
    const std::uint32_t len = get_u32(pre);
    const std::uint32_t crc = get_u32(pre + 4);
    if (len < 16 || len > kMaxFrameLen || (len - 16) % 8 != 0)
      throw IoError(path, 0,
                    "impossible WAL frame length " + std::to_string(len) +
                        at_offset(off));
    buf.resize(len);
    const std::size_t body_got = std::fread(buf.data(), 1, len, file.f);
    if (body_got < len) {
      // Physically short final frame: the torn tail a crash mid-append
      // leaves. Anything before it is intact.
      out.torn_tail = true;
      out.torn_offset = off;
      break;
    }
    if (crc32(buf.data(), len) != crc)
      throw IoError(path, 0, "WAL frame CRC mismatch" + at_offset(off));
    WalRecord rec;
    rec.epoch = get_u64(buf.data());
    const std::uint32_t nr = get_u32(buf.data() + 8);
    const std::uint32_t ni = get_u32(buf.data() + 12);
    if (16 + 8ull * (static_cast<std::uint64_t>(nr) + ni) != len)
      throw IoError(path, 0,
                    "WAL frame counts disagree with length" + at_offset(off));
    if (rec.epoch <= prev_epoch)
      throw IoError(path, 0,
                    "WAL epoch " + std::to_string(rec.epoch) +
                        " not after " + std::to_string(prev_epoch) +
                        at_offset(off));
    prev_epoch = rec.epoch;
    const unsigned char* p = buf.data() + 16;
    rec.removes.reserve(nr);
    for (std::uint32_t i = 0; i < nr; ++i, p += 8)
      rec.removes.push_back(Edge{get_u32(p), get_u32(p + 4)});
    rec.inserts.reserve(ni);
    for (std::uint32_t i = 0; i < ni; ++i, p += 8)
      rec.inserts.push_back(Edge{get_u32(p), get_u32(p + 4)});
    out.records.push_back(std::move(rec));
    off += 8 + len;
  }
  return out;
}

}  // namespace parcore::durability
