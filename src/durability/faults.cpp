#include "durability/faults.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <atomic>

namespace parcore::durability {
namespace {

// Same read-the-environment-every-call policy as crash.cpp: fault
// points fire at flush cadence, and tests (in-process here, not
// fork-based) flip the variables between scenarios.
const char* fail_at() {
  const char* at = std::getenv("PARCORE_DURABILITY_FAIL_AT");
  return (at != nullptr && *at != '\0') ? at : nullptr;
}

int env_positive(const char* name, int fallback) {
  if (const char* raw = std::getenv(name)) {
    const int v = std::atoi(raw);
    if (v > 0) return v;
  }
  return fallback;
}

int fail_errno() {
  const char* raw = std::getenv("PARCORE_DURABILITY_FAIL_ERRNO");
  if (raw == nullptr || *raw == '\0') return ENOSPC;
  if (std::strcmp(raw, "enospc") == 0) return ENOSPC;
  if (std::strcmp(raw, "eio") == 0) return EIO;
  const int v = std::atoi(raw);
  return v > 0 ? v : ENOSPC;
}

// Hits of the armed point so far; one global counter is enough because
// at most one point name is armed per process (same as crash.cpp).
std::atomic<int> g_hits{0};

// Is hit number `hit` (1-based) inside the failing window?
bool hit_fails(int hit) {
  const int after = env_positive("PARCORE_DURABILITY_FAIL_AFTER", 1);
  if (hit < after) return false;
  const int count = env_positive("PARCORE_DURABILITY_FAIL_COUNT", 0);
  return count == 0 || hit < after + count;
}

}  // namespace

int fail_point(const char* name) {
  const char* at = fail_at();
  if (at == nullptr || std::strcmp(at, name) != 0) return 0;
  const int hit = g_hits.fetch_add(1, std::memory_order_relaxed) + 1;
  return hit_fails(hit) ? fail_errno() : 0;
}

bool fail_point_armed(const char* name) {
  const char* at = fail_at();
  if (at == nullptr || std::strcmp(at, name) != 0) return false;
  return hit_fails(g_hits.load(std::memory_order_relaxed) + 1);
}

void reset_fail_points_for_test() {
  g_hits.store(0, std::memory_order_relaxed);
}

}  // namespace parcore::durability
