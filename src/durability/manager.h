// Checkpoint + WAL lifecycle for the streaming engine
// (docs/DURABILITY.md). One manager owns one durability directory:
//
//   dir/checkpoint-<epoch>.pcg   v2 .pcg image (graph + core + k-order)
//   dir/wal-<epoch>.log          ops applied AFTER that checkpoint
//
// The pair with the highest epoch is the live generation; older
// generations are retained as fallbacks (Options::retain) and
// garbage-collected after each successful checkpoint.
//
// Checkpoint protocol (all at flush quiescent points, under the
// engine's flush lock):
//   1. write dir/checkpoint-<e>.pcg.tmp, fsync          [checkpoint-mid-write]
//   2. create dir/wal-<e>.log with its header, fsync    [checkpoint-pre-rename]
//   3. rename .tmp -> checkpoint-<e>.pcg, fsync dir     [checkpoint-post-rename]
//   4. retention: delete generations older than the newest `retain`
//
// The rename is the commit point. A crash before it leaves the previous
// generation intact (the orphan wal-<e>.log has no matching checkpoint
// and is ignored by recovery); a crash after it recovers from the new
// checkpoint with an empty WAL. Bracketed names are the crash-injection
// points (durability/crash.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "durability/wal.h"
#include "io/pcg.h"
#include "obs/metrics.h"

namespace parcore::durability {

/// dir/checkpoint-<epoch>.pcg
std::string checkpoint_path(const std::string& dir, std::uint64_t epoch);
/// dir/wal-<epoch>.log
std::string wal_path(const std::string& dir, std::uint64_t epoch);

/// Epochs of every checkpoint-<epoch>.pcg in `dir` (in-progress .tmp
/// files excluded), sorted ascending. Missing directory -> empty.
std::vector<std::uint64_t> list_checkpoint_epochs(const std::string& dir);

class Manager {
 public:
  struct Options {
    /// Durability directory; created if missing. Empty = disabled (the
    /// engine never constructs a Manager then).
    std::string dir;
    /// Flushes between periodic checkpoints; 0 = only the initial and
    /// shutdown checkpoints.
    std::size_t checkpoint_interval = 64;
    /// fsync checkpoints on write and the WAL after every append.
    /// Turning this off keeps crash-consistency of the FILE FORMAT
    /// (torn tails still recover) but an OS crash may lose the most
    /// recent flushes; a process crash loses nothing either way.
    bool fsync = true;
    /// Checkpoint generations kept (>= 1): the live one plus fallbacks.
    std::size_t retain = 2;
    /// Fault-tolerance policy, consumed by the ENGINE's durable-I/O
    /// wrapper (docs/ROBUSTNESS.md), carried here so one Options struct
    /// configures the whole durability surface.
    /// Retries per failed WAL/checkpoint operation before the engine
    /// degrades to memory-only mode.
    int max_retries = 3;
    /// Base backoff between retries; doubles per attempt.
    double retry_backoff_ms = 1.0;
    /// While degraded, attempt to re-arm durability (fresh full
    /// checkpoint) at most every this many ms; 0 disables re-arming.
    double rearm_interval_ms = 5000.0;
  };

  /// Validates options, creates the directory, and registers metrics.
  /// Refuses (IoError) a directory that already contains checkpoints:
  /// starting a fresh engine there would interleave two histories and
  /// stale higher-epoch generations would shadow the new run's.
  explicit Manager(Options opts);

  /// Writes the generation for `ck.epoch` via the protocol above and
  /// rotates the WAL to it. Called for the initial checkpoint (engine
  /// construction), on the periodic cadence, at stop(), and by the
  /// engine's re-arm path after degradation. Throws IoError on
  /// failure; when the failure happens before the rename commit the
  /// new generation's tmp/WAL files are removed and the manager stays
  /// usable on the previous generation (the engine's retry/degrade
  /// wrapper decides what happens next).
  void checkpoint(const io::PcgCheckpoint& ck);

  /// Appends one flush's coalesced ops to the live WAL and counts the
  /// flush toward the checkpoint cadence. Empty records still count as
  /// a flush but are not written.
  void log_flush(const WalRecord& rec);

  /// True when the periodic cadence has elapsed since the last
  /// checkpoint (and at least one flush was logged).
  bool checkpoint_due() const {
    return opts_.checkpoint_interval > 0 && dirty() &&
           flushes_since_checkpoint_ >= opts_.checkpoint_interval;
  }

  /// True when WAL frames were appended after the last checkpoint —
  /// stop() takes a final checkpoint iff this holds.
  bool dirty() const { return frames_since_checkpoint_ > 0; }

  std::uint64_t last_checkpoint_epoch() const {
    return last_checkpoint_epoch_;
  }

  /// Cumulative totals for EngineStats (monotonic, manager lifetime).
  struct Totals {
    std::uint64_t checkpoints = 0;
    std::uint64_t wal_frames = 0;
    std::uint64_t wal_bytes = 0;
    std::uint64_t wal_fsyncs = 0;
    /// Failed appends rolled back to the last committed frame boundary.
    std::uint64_t wal_truncate_repairs = 0;
  };
  const Totals& totals() const { return totals_; }

  const Options& options() const { return opts_; }

 private:
  void remove_generation(std::uint64_t epoch);

  Options opts_;
  WalWriter wal_;
  std::uint64_t last_checkpoint_epoch_ = 0;
  std::size_t flushes_since_checkpoint_ = 0;
  std::uint64_t frames_since_checkpoint_ = 0;
  Totals totals_;
  struct ObsHandles {
    obs::Counter* checkpoints = nullptr;
    obs::Counter* wal_frames = nullptr;
    obs::Counter* wal_bytes = nullptr;
    obs::Counter* wal_fsyncs = nullptr;
    obs::Counter* wal_truncate_repairs = nullptr;
    obs::Histogram* checkpoint_us = nullptr;
  };
  ObsHandles obs_;
};

}  // namespace parcore::durability
