// Crash-injection points for the durability test harness
// (docs/DURABILITY.md "crash matrix"). The WAL writer and checkpoint
// protocol call crash_point(name) at every durability-relevant
// boundary; when PARCORE_DURABILITY_CRASH_AT names that point, the
// process dies with _exit (no destructors, no flushing — the closest
// userspace approximation of a crash) on the Nth hit, where N comes
// from PARCORE_DURABILITY_CRASH_AFTER (default 1).
//
// Data already write()n to a file descriptor survives _exit — the page
// cache belongs to the kernel — so the points are placed to leave
// exactly the on-disk artifact a real crash at that boundary would:
// a half-written WAL frame, a complete-but-unsynced frame, a partial
// checkpoint tmp file, an unrenamed tmp, an uncleaned old generation.
#pragma once

#include <cstdint>

namespace parcore::durability {

/// Exit status used by injected crashes, distinguishable from ordinary
/// failures in the fork-based tests.
inline constexpr int kCrashExitStatus = 42;

/// Kill-point names accepted by PARCORE_DURABILITY_CRASH_AT:
///   wal-mid-append          half a WAL frame written, then die
///   wal-pre-fsync           full frame written, die before fdatasync
///   wal-post-fsync          die right after the group fsync
///   checkpoint-mid-write    die with a truncated checkpoint tmp file
///   checkpoint-pre-rename   tmp + fresh WAL durable, die before rename
///   checkpoint-post-rename  die after the rename commits, before the
///                           old generation is cleaned up
///
/// Calls _exit(kCrashExitStatus) when `name` matches the environment
/// and this is the configured hit; otherwise returns. Cheap when the
/// env var is unset (one getenv on first call, then a flag check).
void crash_point(const char* name);

/// True when PARCORE_DURABILITY_CRASH_AT equals `name` and the NEXT hit
/// of that point would crash — the WAL writer uses this to stage the
/// half-written-frame artifact before dying.
bool crash_point_armed(const char* name);

}  // namespace parcore::durability
