#include "durability/crash.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace parcore::durability {
namespace {

// Read the environment on every call rather than caching it: crash
// points fire at flush cadence (not per edge), and the fork-based
// recovery tests set PARCORE_DURABILITY_CRASH_AT in the child AFTER the
// parent process may already have run flushes.
const char* crash_at() {
  const char* at = std::getenv("PARCORE_DURABILITY_CRASH_AT");
  return (at != nullptr && *at != '\0') ? at : nullptr;
}

int crash_after() {
  if (const char* raw = std::getenv("PARCORE_DURABILITY_CRASH_AFTER")) {
    const int v = std::atoi(raw);
    if (v > 0) return v;
  }
  return 1;
}

// Hits of the configured point so far. A single global counter is
// enough: at most one point name is armed per process.
std::atomic<int> g_hits{0};

}  // namespace

void crash_point(const char* name) {
  const char* at = crash_at();
  if (at == nullptr || std::strcmp(at, name) != 0) return;
  const int after = crash_after();
  if (g_hits.fetch_add(1, std::memory_order_relaxed) + 1 < after) return;
  // stderr is unbuffered enough for the fork-based tests to see why a
  // child died when an assertion on the exit status fails.
  std::fprintf(stderr, "parcore: injected crash at %s (hit %d)\n", name,
               after);
  _exit(kCrashExitStatus);
}

bool crash_point_armed(const char* name) {
  const char* at = crash_at();
  if (at == nullptr || std::strcmp(at, name) != 0) return false;
  return g_hits.load(std::memory_order_relaxed) + 1 >= crash_after();
}

}  // namespace parcore::durability
