// Write-ahead log of applied temporal ops between checkpoints
// (docs/DURABILITY.md). One WAL file belongs to exactly one checkpoint
// generation: its 32-byte header names the checkpoint's epoch
// (`base_epoch`), and each frame carries the coalesced remove/insert
// batches of one engine flush, stamped with the epoch that flush
// published. Replaying the frames over the checkpoint image through the
// normal maintain path reproduces the engine state at the crash.
//
// Wire format (little-endian throughout):
//   header  "PWAL" | u32 version=1 | u64 base_epoch | 12 reserved zero
//           bytes | u32 crc32(first 28 bytes)                  = 32 B
//   frame   u32 len | u32 crc32(payload) | payload             = 8+len B
//   payload u64 epoch | u32 n_removes | u32 n_inserts |
//           n_removes * (u32 u, u32 v) | n_inserts * (u32 u, u32 v)
//           => len == 16 + 8 * (n_removes + n_inserts)
//
// Each frame is staged in one buffer and handed to write(2) in a
// single call, so a process crash leaves at most one PHYSICALLY SHORT
// frame at the tail — which replay tolerates (torn tail). A complete
// frame with a bad CRC, a structurally impossible length, or a
// non-monotonic epoch can only mean corruption, and replay fails
// closed with an IoError naming the file and byte offset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/types.h"

namespace parcore::durability {

inline constexpr std::uint32_t kWalVersion = 1;
inline constexpr std::size_t kWalHeaderBytes = 32;

/// One flush's worth of coalesced ops. Removes are replayed before
/// inserts, mirroring the engine's apply order.
struct WalRecord {
  std::uint64_t epoch = 0;
  std::vector<Edge> removes;
  std::vector<Edge> inserts;
};

/// Appender over a POSIX fd. Not thread-safe: the engine appends from
/// the flush path only, which is serialised by design.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter() { close(); }
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }
  WalWriter& operator=(WalWriter&& other) noexcept;

  /// Creates/truncates `path`, writes the header, and (when `sync`)
  /// fsyncs it. Throws IoError on any failure.
  static WalWriter create(const std::string& path, std::uint64_t base_epoch,
                          bool sync);

  /// Appends one frame and group-fsyncs it (when the writer was created
  /// with sync). Crash points: wal-mid-append (half the frame bytes are
  /// written before dying), wal-pre-fsync, wal-post-fsync. Fault
  /// points (durability/faults.h): wal-append, wal-append-short,
  /// wal-fsync.
  ///
  /// Exception safety: a frame either commits whole (counters advance,
  /// fd offset lands on the frame boundary) or not at all — on any
  /// write/fsync failure the file is ftruncate'd back to the last
  /// committed frame boundary before the IoError propagates, so a
  /// retried append cannot leave an interior torn frame. If even the
  /// truncate fails the writer closes itself; later appends throw.
  void append(const WalRecord& rec);

  void sync();
  void close();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  std::uint64_t frames_appended() const { return frames_; }
  std::uint64_t bytes_appended() const { return bytes_; }
  std::uint64_t fsyncs() const { return fsyncs_; }
  /// Failed appends rolled back with ftruncate (partial-write repairs).
  std::uint64_t truncate_repairs() const { return truncate_repairs_; }

 private:
  int fd_ = -1;
  bool sync_ = true;
  std::string path_;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t truncate_repairs_ = 0;
  std::vector<unsigned char> buf_;  // frame staging, capacity reused
};

/// Result of scanning a WAL file front to back.
struct WalReadResult {
  std::uint64_t base_epoch = 0;
  std::vector<WalRecord> records;
  /// True when the file ended inside a frame (crash mid-append); the
  /// short frame at `torn_offset` was discarded, everything before it
  /// is intact and returned.
  bool torn_tail = false;
  std::uint64_t torn_offset = 0;
};

/// Reads and validates `path`. Tolerates exactly one physically short
/// frame at EOF (reported via torn_tail); every other defect — bad
/// magic/version, header or frame CRC mismatch, impossible frame
/// length, out-of-order epochs, trailing garbage — throws IoError
/// naming the file and byte offset. Epochs must be strictly increasing
/// and greater than base_epoch.
WalReadResult read_wal(const std::string& path);

}  // namespace parcore::durability
