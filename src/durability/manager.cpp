#include "durability/manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "durability/crash.h"
#include "durability/faults.h"
#include "io/io_error.h"

namespace parcore::durability {

namespace fs = std::filesystem;
using io::IoError;

namespace {

constexpr const char* kCheckpointPrefix = "checkpoint-";
constexpr const char* kCheckpointSuffix = ".pcg";

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0)
    throw IoError(dir, 0,
                  std::string("cannot open directory for fsync: ") +
                      std::strerror(errno));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0)
    throw IoError(dir, 0,
                  std::string("directory fsync failed: ") +
                      std::strerror(errno));
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string checkpoint_path(const std::string& dir, std::uint64_t epoch) {
  return dir + "/" + kCheckpointPrefix + std::to_string(epoch) +
         kCheckpointSuffix;
}

std::string wal_path(const std::string& dir, std::uint64_t epoch) {
  return dir + "/wal-" + std::to_string(epoch) + ".log";
}

std::vector<std::uint64_t> list_checkpoint_epochs(const std::string& dir) {
  std::vector<std::uint64_t> epochs;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    const std::size_t prefix_len = std::strlen(kCheckpointPrefix);
    const std::size_t suffix_len = std::strlen(kCheckpointSuffix);
    if (name.size() <= prefix_len + suffix_len) continue;
    if (name.compare(0, prefix_len, kCheckpointPrefix) != 0) continue;
    if (name.compare(name.size() - suffix_len, suffix_len,
                     kCheckpointSuffix) != 0)
      continue;
    const std::string digits =
        name.substr(prefix_len, name.size() - prefix_len - suffix_len);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    char* end = nullptr;
    const unsigned long long e = std::strtoull(digits.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') continue;
    epochs.push_back(static_cast<std::uint64_t>(e));
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Manager::Manager(Options opts) : opts_(std::move(opts)) {
  if (opts_.dir.empty())
    throw IoError("", 0, "durability directory must not be empty");
  if (opts_.retain == 0) opts_.retain = 1;
  std::error_code ec;
  fs::create_directories(opts_.dir, ec);
  if (ec)
    throw IoError(opts_.dir, 0,
                  "cannot create durability directory: " + ec.message());
  if (!list_checkpoint_epochs(opts_.dir).empty())
    throw IoError(opts_.dir, 0,
                  "directory already contains checkpoints; refusing to start "
                  "a fresh engine over an existing history (use `parcore_cli "
                  "recover` or point at an empty directory)");
  obs::MetricsRegistry& reg = obs::registry();
  obs_.checkpoints = &reg.counter("parcore_checkpoints_total");
  obs_.wal_frames = &reg.counter("parcore_wal_frames_total");
  obs_.wal_bytes = &reg.counter("parcore_wal_bytes_total");
  obs_.wal_fsyncs = &reg.counter("parcore_wal_fsync_total");
  obs_.wal_truncate_repairs = &reg.counter("parcore_wal_truncate_repairs_total");
  obs_.checkpoint_us = &reg.histogram("parcore_checkpoint_us");
}

void Manager::checkpoint(const io::PcgCheckpoint& ck) {
  const std::uint64_t t0 = now_us();
  const std::string final_path = checkpoint_path(opts_.dir, ck.epoch);
  const std::string tmp_path = final_path + ".tmp";

  WalWriter next;
  bool renamed = false;
  try {
    // 1. Full image to a temp name; never visible to recovery scans.
    if (const int err = fail_point("checkpoint-write"))
      throw IoError(tmp_path, 0,
                    std::string("write checkpoint failed: ") +
                        std::strerror(err) + " (injected)");
    io::save_pcg_checkpoint(tmp_path, ck, opts_.fsync);
    if (crash_point_armed("checkpoint-mid-write")) {
      // Stage the artifact of dying mid-write: a half-length tmp file.
      std::error_code ec;
      const std::uintmax_t size = fs::file_size(tmp_path, ec);
      if (!ec) {
        if (::truncate(tmp_path.c_str(), static_cast<::off_t>(size / 2)) !=
            0) {
          // Staging failure must not mask the injection; die anyway.
        }
      }
    }
    crash_point("checkpoint-mid-write");

    // 2. The new generation's WAL, durable BEFORE the commit point so a
    // visible checkpoint always has its (possibly empty) WAL beside it.
    next = WalWriter::create(wal_path(opts_.dir, ck.epoch), ck.epoch,
                             opts_.fsync);
    totals_.wal_bytes += next.bytes_appended();
    totals_.wal_fsyncs += next.fsyncs();
    obs_.wal_bytes->add(next.bytes_appended());
    obs_.wal_fsyncs->add(next.fsyncs());
    crash_point("checkpoint-pre-rename");

    // 3. Commit point.
    if (const int err = fail_point("checkpoint-rename"))
      throw IoError(final_path, 0,
                    std::string("checkpoint rename failed: ") +
                        std::strerror(err) + " (injected)");
    if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0)
      throw IoError(final_path, 0,
                    std::string("checkpoint rename failed: ") +
                        std::strerror(errno));
    renamed = true;
    if (opts_.fsync) fsync_dir(opts_.dir);
    crash_point("checkpoint-post-rename");
  } catch (...) {
    if (!renamed) {
      // Nothing committed: remove this generation's partial artifacts
      // so the directory stays exactly the previous generation, and
      // keep appending to the still-open previous WAL. (After a
      // successful rename the new generation is valid on disk even if
      // the directory fsync failed — leave it for recovery to pick.)
      next.close();
      std::error_code ec;
      fs::remove(tmp_path, ec);
      fs::remove(wal_path(opts_.dir, ck.epoch), ec);
    }
    throw;
  }

  wal_ = std::move(next);  // closes the previous WAL fd
  last_checkpoint_epoch_ = ck.epoch;
  flushes_since_checkpoint_ = 0;
  frames_since_checkpoint_ = 0;
  ++totals_.checkpoints;
  obs_.checkpoints->inc();
  obs_.checkpoint_us->record(now_us() - t0);

  // 4. Retention: keep the newest `retain` generations.
  std::vector<std::uint64_t> epochs = list_checkpoint_epochs(opts_.dir);
  if (epochs.size() > opts_.retain) {
    for (std::size_t i = 0; i + opts_.retain < epochs.size(); ++i)
      remove_generation(epochs[i]);
  }
}

void Manager::log_flush(const WalRecord& rec) {
  if (!wal_.is_open())
    throw IoError(opts_.dir, 0,
                  "log_flush before the initial checkpoint opened a WAL");
  if (rec.removes.empty() && rec.inserts.empty()) {
    ++flushes_since_checkpoint_;
    return;
  }
  const std::uint64_t b0 = wal_.bytes_appended();
  const std::uint64_t f0 = wal_.fsyncs();
  const std::uint64_t tr0 = wal_.truncate_repairs();
  try {
    wal_.append(rec);
  } catch (...) {
    // The append rolled the file back (or closed the writer); surface
    // the repair in the totals, then let the engine's retry/degrade
    // wrapper handle the error. The flush is NOT counted toward the
    // checkpoint cadence so a retried append doesn't double-count it.
    const std::uint64_t repairs = wal_.truncate_repairs() - tr0;
    totals_.wal_truncate_repairs += repairs;
    obs_.wal_truncate_repairs->add(repairs);
    throw;
  }
  ++flushes_since_checkpoint_;
  ++frames_since_checkpoint_;
  ++totals_.wal_frames;
  totals_.wal_bytes += wal_.bytes_appended() - b0;
  totals_.wal_fsyncs += wal_.fsyncs() - f0;
  obs_.wal_frames->inc();
  obs_.wal_bytes->add(wal_.bytes_appended() - b0);
  obs_.wal_fsyncs->add(wal_.fsyncs() - f0);
}

void Manager::remove_generation(std::uint64_t epoch) {
  std::error_code ec;
  fs::remove(checkpoint_path(opts_.dir, epoch), ec);
  fs::remove(wal_path(opts_.dir, epoch), ec);
  fs::remove(checkpoint_path(opts_.dir, epoch) + ".tmp", ec);
}

}  // namespace parcore::durability
