// Crash recovery (docs/DURABILITY.md): rebuild a maintainer from the
// newest valid checkpoint generation plus its WAL tail.
//
//   1. Scan the directory for checkpoint-<epoch>.pcg, newest first.
//      A checkpoint that fails to load (torn tmp never renames, but
//      media corruption happens) is skipped and the next-older one is
//      tried; the skips are reported in the result.
//   2. Restore the maintainer from the checkpoint's saved (core,
//      k-order) image — no bz_decompose on the recovery path.
//   3. Replay the matching wal-<epoch>.log through the NORMAL maintain
//      path (remove_batch then insert_batch per frame, exactly the
//      engine's apply order). A torn final frame is discarded; any
//      other WAL defect fails closed with IoError — a WAL that lies
//      about applied ops must never silently yield a wrong core index.
//   4. Differentially verify the recovered cores against a fresh
//      decomposition of the replayed graph (skippable for speed). The
//      oracle defaults to the parallel exact peel (decomp/
//      parallel_peel.h) — same accept/reject behavior as BZ, minus the
//      sequential bottleneck on big graphs; `approx` is the fast tier
//      (capped h-index upper bound) for when even that is too slow.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/dynamic_graph.h"
#include "parallel/parallel_order.h"
#include "sync/thread_team.h"

namespace parcore::durability {

/// Which oracle the differential verify (step 4) runs.
///   kBz       — sequential BZ peel (the PR 7 behavior).
///   kParallel — parallel exact peel on `workers` threads; identical
///               core numbers, identical accept/reject decisions.
///   kApprox   — capped h-index iteration: if it converges the compare
///               is exact; if the cap stops it first the recovered
///               cores are only checked against the upper bound
///               (soundness screen, not a proof of equality).
enum class VerifyAlgo { kBz, kParallel, kApprox };

struct RecoveryOptions {
  std::string dir;
  int workers = 4;
  /// Differentially verify recovered cores against a fresh
  /// decomposition (algorithm per verify_algo).
  bool verify = true;
  /// Maintainer options for the recovered instance (the restore image
  /// is supplied by recovery; Options::restore is overwritten).
  ParallelOrderMaintainer::Options maintainer{};
  VerifyAlgo verify_algo = VerifyAlgo::kParallel;
};

struct RecoveryResult {
  std::uint64_t checkpoint_epoch = 0;  // generation recovered from
  std::uint64_t final_epoch = 0;       // after WAL replay
  std::size_t checkpoints_skipped = 0; // newer-but-unloadable generations
  std::size_t frames_replayed = 0;
  std::size_t edges_replayed = 0;      // ops across all replayed frames
  bool torn_tail = false;              // WAL ended inside a frame
  bool verified = false;               // differential cross-check ran + passed
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  CoreValue max_core = 0;
  double verify_ms = 0.0;              // step-4 wall time (0 when skipped)
  const char* verify_algo = "";        // "bz" | "parallel" | "approx"
  /// False only for a kApprox verify whose round cap fired: the check
  /// degraded to the upper-bound screen (see VerifyAlgo).
  bool verify_exact = true;
};

/// The step-4 oracle, exposed for direct differential testing: computes
/// a fresh decomposition of `g` with `algo` and compares `cores`
/// against it. kBz and kParallel must agree exactly; kApprox accepts
/// any `cores` elementwise <= its (possibly capped) bound.
struct VerifyOutcome {
  bool passed = false;
  std::size_t mismatches = 0;
  double ms = 0.0;
  bool exact = true;          // compare was equality, not bound-only
  const char* algo = "";
  std::string first_mismatch;  // diagnostic for the throw message
};
VerifyOutcome verify_recovered_cores(const DynamicGraph& g,
                                     const std::vector<CoreValue>& cores,
                                     VerifyAlgo algo, ThreadTeam& team,
                                     int workers);

/// Rebuilds `graph` (overwritten) and returns a maintainer over it
/// positioned at the recovered state. `graph` and `team` must outlive
/// the returned maintainer. Throws io::IoError on corruption that
/// cannot be attributed to a torn tail, std::runtime_error when no
/// loadable checkpoint exists or the differential verify fails.
std::unique_ptr<ParallelOrderMaintainer> recover(
    const RecoveryOptions& opts, DynamicGraph& graph, ThreadTeam& team,
    RecoveryResult* result = nullptr);

}  // namespace parcore::durability
