#include "durability/recovery.h"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "decomp/bz.h"
#include "decomp/parallel_peel.h"
#include "durability/manager.h"
#include "durability/wal.h"
#include "io/io_error.h"
#include "io/pcg.h"
#include "maint/core_state.h"
#include "support/timer.h"

namespace parcore::durability {

using io::IoError;

VerifyOutcome verify_recovered_cores(const DynamicGraph& g,
                                     const std::vector<CoreValue>& cores,
                                     VerifyAlgo algo, ThreadTeam& team,
                                     int workers) {
  VerifyOutcome out;
  WallTimer timer;
  std::vector<CoreValue> truth;
  switch (algo) {
    case VerifyAlgo::kBz:
      out.algo = "bz";
      truth = bz_decompose(g).core;
      break;
    case VerifyAlgo::kParallel: {
      out.algo = "parallel";
      DecomposeOptions d;
      d.workers = workers;
      d.mode = DecomposeMode::kExact;
      truth = parallel_decompose(g, team, d).core;
      break;
    }
    case VerifyAlgo::kApprox: {
      out.algo = "approx";
      DecomposeOptions d;
      d.workers = workers;
      d.mode = DecomposeMode::kApprox;
      // A generous cap: ER/power-law graphs converge in a few dozen
      // rounds; adversarial paths would need O(n), which is exactly
      // what this tier exists to avoid.
      d.max_rounds = 64;
      const BulkDecomposition bd = parallel_decompose(g, team, d);
      out.exact = bd.exact;
      truth = bd.core;
      break;
    }
  }

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const bool bad = out.exact ? cores[v] != truth[v] : cores[v] > truth[v];
    if (!bad) continue;
    if (out.mismatches == 0)
      out.first_mismatch =
          "core(" + std::to_string(v) + ") = " + std::to_string(cores[v]) +
          " but " + out.algo + (out.exact ? " decomposition says "
                                          : " upper bound is ") +
          std::to_string(truth[v]);
    ++out.mismatches;
  }
  out.passed = out.mismatches == 0;
  out.ms = timer.elapsed_ms();
  return out;
}

std::unique_ptr<ParallelOrderMaintainer> recover(const RecoveryOptions& opts,
                                                 DynamicGraph& graph,
                                                 ThreadTeam& team,
                                                 RecoveryResult* result) {
  RecoveryResult res;

  // 1. Newest loadable checkpoint wins; unloadable ones (a crashed
  // write never renames, so these are media damage, not protocol holes)
  // fall back to the previous generation.
  const std::vector<std::uint64_t> epochs = list_checkpoint_epochs(opts.dir);
  if (epochs.empty())
    throw std::runtime_error("no checkpoints found in " + opts.dir);
  io::PcgCheckpoint ck;
  bool loaded = false;
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    try {
      ck = io::load_pcg_checkpoint(checkpoint_path(opts.dir, *it));
      loaded = true;
      break;
    } catch (const IoError&) {
      ++res.checkpoints_skipped;
    }
  }
  if (!loaded)
    throw std::runtime_error("no loadable checkpoint in " + opts.dir + " (" +
                             std::to_string(res.checkpoints_skipped) +
                             " damaged)");
  res.checkpoint_epoch = ck.epoch;
  res.final_epoch = ck.epoch;

  // 2. Restore the maintainer from the image — the saved k-order stands
  // in for the bz peel order, so no decomposition runs here.
  graph = DynamicGraph::from_edges(
      static_cast<std::size_t>(ck.num_vertices), ck.edges);
  SavedCoreOrder saved;
  saved.core = std::move(ck.core);
  saved.order = std::move(ck.order);
  ParallelOrderMaintainer::Options mopts = opts.maintainer;
  mopts.restore = &saved;
  auto maintainer =
      std::make_unique<ParallelOrderMaintainer>(graph, team, mopts);

  // 3. WAL tail through the normal maintain path. The WAL must belong
  // to this checkpoint; a missing file means the generation committed
  // and crashed before any flush was logged — nothing to replay — but a
  // base-epoch mismatch is corruption.
  const std::string wal = wal_path(opts.dir, ck.epoch);
  WalReadResult tail;
  bool have_wal = true;
  try {
    tail = read_wal(wal);
  } catch (const IoError& e) {
    if (std::string(e.what()).find("cannot open WAL") != std::string::npos)
      have_wal = false;
    else
      throw;  // structural corruption: fail closed, no fallback
  }
  if (have_wal) {
    if (tail.base_epoch != ck.epoch)
      throw IoError(wal, 0,
                    "WAL base epoch " + std::to_string(tail.base_epoch) +
                        " does not match checkpoint epoch " +
                        std::to_string(ck.epoch));
    res.torn_tail = tail.torn_tail;
    const int workers = opts.workers > 0 ? opts.workers : 1;
    for (const WalRecord& rec : tail.records) {
      if (!rec.removes.empty())
        maintainer->remove_batch(rec.removes, workers);
      if (!rec.inserts.empty())
        maintainer->insert_batch(rec.inserts, workers);
      ++res.frames_replayed;
      res.edges_replayed += rec.removes.size() + rec.inserts.size();
      res.final_epoch = rec.epoch;
    }
  }

  res.num_vertices = graph.num_vertices();
  res.num_edges = graph.num_edges();
  res.max_core = maintainer->state().max_core();

  // 4. Differential oracle: a fresh decomposition of the replayed graph
  // must agree with every recovered core number. Defaults to the
  // parallel exact peel — identical accept/reject behavior to the BZ
  // oracle, parallel wall time.
  if (opts.verify) {
    const int workers = opts.workers > 0 ? opts.workers : 1;
    const VerifyOutcome vo = verify_recovered_cores(
        graph, maintainer->cores(), opts.verify_algo, team, workers);
    res.verify_ms = vo.ms;
    res.verify_algo = vo.algo;
    res.verify_exact = vo.exact;
    if (!vo.passed)
      throw std::runtime_error(
          "recovery verification failed (" + std::string(vo.algo) + ", " +
          std::to_string(vo.mismatches) + " mismatches): " +
          vo.first_mismatch);
    res.verified = true;
  }

  if (result != nullptr) *result = res;
  return maintainer;
}

}  // namespace parcore::durability
