// I/O fault-injection points for the robustness test harness
// (docs/ROBUSTNESS.md). Error-returning sibling of the crash kill
// points in durability/crash.h: where crash_point(name) kills the
// process to test recovery, fail_point(name) makes the surrounding
// syscall FAIL (throw io::IoError with an injected errno) to test that
// the serving path survives — retries transient errors, truncates torn
// frames, degrades to memory-only under persistent failure — instead
// of terminating.
//
// Environment:
//   PARCORE_DURABILITY_FAIL_AT     point name to arm (see list below)
//   PARCORE_DURABILITY_FAIL_AFTER  Nth hit that starts failing (default 1)
//   PARCORE_DURABILITY_FAIL_COUNT  consecutive failing hits; 0 = every
//                                  hit from AFTER on fails (persistent;
//                                  default). 1 models a transient blip
//                                  the retry loop should absorb.
//   PARCORE_DURABILITY_FAIL_ERRNO  "enospc" (default), "eio", or a
//                                  numeric errno value
#pragma once

namespace parcore::durability {

/// Fail-point names accepted by PARCORE_DURABILITY_FAIL_AT:
///   wal-append         frame write fails before any byte reaches disk
///   wal-append-short   half the frame reaches the file, then the write
///                      fails (exercises truncate-to-last-good-frame)
///   wal-fsync          the per-flush group fsync fails
///   wal-create         creating the next WAL segment fails
///   checkpoint-write   writing the checkpoint tmp file fails
///   checkpoint-rename  the atomic rename commit fails
///
/// Returns the errno to inject when `name` is armed and this hit is in
/// the failing window, 0 otherwise. Each call counts as one hit of the
/// armed point. Cheap when the env var is unset (one getenv per call,
/// same policy as crash_point — the fault points fire at flush cadence,
/// not per edge).
int fail_point(const char* name);

/// True when the NEXT hit of `name` would fail — the WAL writer uses
/// this to stage the half-written frame before throwing.
bool fail_point_armed(const char* name);

/// Test-only: reset the hit counter so in-process tests can arm
/// several scenarios in sequence (the fork-based crash tests never
/// need this — each child process starts at zero).
void reset_fail_points_for_test();

}  // namespace parcore::durability
