#include "graph/edge_list.h"

#include <cstdio>
#include <stdexcept>
#include <unordered_set>

#include "io/graph_reader.h"

namespace parcore {

EdgeListData load_edge_list(const std::string& path) {
  // Thin shim over the io/ reader (DESIGN.md §7): same compaction
  // semantics as the original loader, but malformed lines now raise
  // io::IoError with file:line context instead of being skipped into a
  // silently-smaller (or empty) graph. Filtering stays off — historical
  // callers canonicalize_edges() themselves.
  io::ReadOptions opts;
  opts.format = io::GraphFormat::kEdgeList;
  opts.filter = false;
  io::GraphData loaded = io::read_graph(path, opts);

  EdgeListData data;
  data.num_vertices = loaded.num_vertices;
  data.edges = std::move(loaded.edges);
  data.has_timestamps = loaded.has_timestamps;
  return data;
}

void save_edge_list(const std::string& path, const EdgeListData& data) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("cannot write edge list: " + path);
  for (const TimestampedEdge& te : data.edges) {
    if (data.has_timestamps)
      std::fprintf(f, "%u %u %llu\n", te.e.u, te.e.v,
                   static_cast<unsigned long long>(te.time));
    else
      std::fprintf(f, "%u %u\n", te.e.u, te.e.v);
  }
  std::fclose(f);
}

std::size_t canonicalize_edges(std::vector<Edge>& edges) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges.size() * 2);
  std::size_t out = 0, dropped = 0;
  for (const Edge& e : edges) {
    if (e.u == e.v || !seen.insert(edge_key(e)).second) {
      ++dropped;
      continue;
    }
    edges[out++] = e;
  }
  edges.resize(out);
  return dropped;
}

std::vector<Edge> sample_edges(const DynamicGraph& g, std::size_t count,
                               Rng& rng) {
  std::vector<Edge> all = g.edges();
  if (count >= all.size()) return all;
  // Partial Fisher-Yates: draw `count` distinct positions.
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t j = i + static_cast<std::size_t>(rng.bounded(all.size() - i));
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  return all;
}

std::vector<std::vector<Edge>> split_batches(const std::vector<Edge>& edges,
                                             std::size_t parts) {
  if (parts == 0) parts = 1;
  std::vector<std::vector<Edge>> out(parts);
  const std::size_t base = edges.size() / parts;
  const std::size_t extra = edges.size() % parts;
  std::size_t pos = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    std::size_t len = base + (p < extra ? 1 : 0);
    out[p].assign(edges.begin() + pos, edges.begin() + pos + len);
    pos += len;
  }
  return out;
}

}  // namespace parcore
