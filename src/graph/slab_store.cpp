#include "graph/slab_store.h"

#include <algorithm>
#include <bit>

#include "obs/metrics.h"

namespace parcore {

namespace {

// Process-wide arena gauges (docs/OBSERVABILITY.md): reservations are
// monotonic per store but stores come and go, so the gauges track the
// deltas of every live SlabStore combined. Registered on first use.
obs::Gauge& arena_reserved_gauge() {
  static obs::Gauge* g = &obs::registry().gauge("parcore_arena_reserved_bytes");
  return *g;
}
obs::Gauge& arena_chunks_gauge() {
  static obs::Gauge* g = &obs::registry().gauge("parcore_arena_chunks");
  return *g;
}

}  // namespace

SlabStore::SlabStore() : SlabStore(Options()) {}

SlabStore::SlabStore(Options opts) : opts_(opts) {
  // Every slab must fit its chunk; clamp tiny test chunks up to one
  // minimum slab so the carving loop always makes progress.
  if (opts_.chunk_bytes < class_bytes(0)) opts_.chunk_bytes = class_bytes(0);
  if (opts_.shards == 0) opts_.shards = 1;
  max_chunk_class_ = 0;
  while (max_chunk_class_ + 1 < kMaxClasses &&
         class_bytes(max_chunk_class_ + 1) <= opts_.chunk_bytes)
    ++max_chunk_class_;
  num_shards_ = opts_.shards;
  shards_ = std::make_unique<Shard[]>(num_shards_);
}

SlabStore::~SlabStore() {
  if (shards_ == nullptr) return;  // moved-from
  std::int64_t reserved = 0, chunks = 0;
  for (std::size_t i = 0; i < num_shards_; ++i) {
    // Uncontended at destruction; the guard keeps the accesses visibly
    // inside the discipline rather than leaning on the analysis'
    // constructor/destructor exemption.
    SpinGuard g(shards_[i].lock);
    reserved += static_cast<std::int64_t>(shards_[i].reserved_bytes);
    chunks += static_cast<std::int64_t>(shards_[i].chunk_count +
                                        shards_[i].jumbo_count);
  }
  if (reserved != 0) arena_reserved_gauge().add(-reserved);
  if (chunks != 0) arena_chunks_gauge().add(-chunks);
}

std::size_t SlabStore::size_class(std::size_t min_entries) {
  if (min_entries <= kMinSlabEntries) return 0;
  const std::size_t rounded = std::bit_ceil(min_entries);
  return static_cast<std::size_t>(
      std::countr_zero(rounded / kMinSlabEntries));
}

VertexId* SlabStore::allocate(std::size_t cls, std::size_t shard_hint) {
  const std::size_t bytes = class_bytes(cls);
  Shard& s = shards_[shard_hint % num_shards_];
  std::byte* out = nullptr;
  std::int64_t grew_bytes = 0;  // gauge deltas, applied after the guard
  {
    SpinGuard g(s.lock);
    if (FreeNode* node = s.free_lists[cls]) {
      s.free_lists[cls] = node->next;
      s.freelist_bytes -= bytes;
      return reinterpret_cast<VertexId*>(node);
    }
    if (cls <= max_chunk_class_) {
      if (s.bump_left < bytes) {
        // The chunk remainder is abandoned (counted as reserved slack).
        // Chunks grow geometrically toward the chunk_bytes ceiling;
        // every slab here is <= chunk_bytes so the fresh chunk always
        // fits it.
        std::size_t size =
            s.next_chunk_bytes != 0
                ? s.next_chunk_bytes
                : std::min(opts_.chunk_bytes, kInitialChunkBytes);
        if (size < bytes) size = bytes;
        s.next_chunk_bytes = std::min(size * 4, opts_.chunk_bytes);
        auto chunk = std::make_unique<std::byte[]>(size);
        s.bump = chunk.get();
        s.bump_left = size;
        s.blocks.push_back(std::move(chunk));
        s.reserved_bytes += size;
        ++s.chunk_count;
        grew_bytes = static_cast<std::int64_t>(size);
      }
      out = s.bump;
      s.bump += bytes;
      s.bump_left -= bytes;
    } else {
      auto jumbo = std::make_unique<std::byte[]>(bytes);
      out = jumbo.get();
      s.blocks.push_back(std::move(jumbo));
      s.reserved_bytes += bytes;
      ++s.jumbo_count;
      grew_bytes = static_cast<std::int64_t>(bytes);
    }
  }
  if (grew_bytes != 0) {
    arena_reserved_gauge().add(grew_bytes);
    arena_chunks_gauge().add(1);
  }
  return reinterpret_cast<VertexId*>(out);
}

void SlabStore::deallocate(VertexId* slab, std::size_t cls,
                           std::size_t shard_hint) {
  // Slabs are >= 32 bytes and 8-byte aligned (all class sizes are
  // multiples of 32 carved from max_align chunks), so the intrusive
  // free-list node fits in place.
  auto* node = reinterpret_cast<FreeNode*>(slab);
  Shard& s = shards_[shard_hint % num_shards_];
  SpinGuard g(s.lock);
  node->next = s.free_lists[cls];
  s.free_lists[cls] = node;
  s.freelist_bytes += class_bytes(cls);
}

SlabStoreStats SlabStore::stats() const {
  SlabStoreStats out;
  for (std::size_t i = 0; i < num_shards_; ++i) {
    const Shard& s = shards_[i];
    SpinGuard g(s.lock);
    out.reserved_bytes += s.reserved_bytes;
    out.freelist_bytes += s.freelist_bytes;
    out.chunk_count += s.chunk_count;
    out.jumbo_count += s.jumbo_count;
  }
  return out;
}

}  // namespace parcore
