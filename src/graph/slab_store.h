// Arena-backed slab allocator for adjacency storage (DESIGN.md §8).
//
// Adjacency arrays are carved from large memory chunks as power-of-two
// "slabs" (size classes 8, 16, 32, ... VertexId entries). Freed slabs
// are recycled through per-shard, per-class intrusive free lists, so a
// steady-state update stream allocates no new memory at all: an edge
// removal's swap-erase never frees, and an insert that grows a vertex
// returns the old slab to the free list the next grower pops from.
//
// Concurrency: allocate/deallocate are thread-safe behind one spinlock
// per shard. Callers pass a shard hint (the vertex id) so concurrent
// workers growing different vertices spread across shards instead of
// contending on one global allocator — the allocator contention that
// vector<vector> suffered under P mutating workers (ISSUE 3).
//
// Slabs larger than one chunk ("jumbo": hub vertices) get a dedicated
// block registered in the shard; on free it enters the same class free
// list and is reused, never returned to the OS before destruction.
//
// Memory is only ever released wholesale, when the store is destroyed.
// This is deliberate: a slab popped from a free list may be handed to
// another vertex while a stale reader still holds a span into it, but
// the DynamicGraph locking contract (readers hold the vertex lock)
// already forbids that, and never unmapping keeps even a buggy stale
// read from faulting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/types.h"
#include "sync/annotations.h"
#include "sync/spinlock.h"

namespace parcore {

struct SlabStoreStats {
  std::size_t reserved_bytes = 0;  // chunk + jumbo memory held
  std::size_t freelist_bytes = 0;  // recycled slabs awaiting reuse
  std::size_t chunk_count = 0;
  std::size_t jumbo_count = 0;
};

class SlabStore {
 public:
  struct Options {
    // Chunk ceiling balances bump-allocation batching against tail
    // waste: every shard's last chunk is partially unused, so the
    // worst-case slack is shards * chunk_bytes regardless of graph
    // size. 256 KB keeps that under ~2 MB while a billion-edge arena
    // still needs only tens of thousands of chunks.
    std::size_t chunk_bytes = 1u << 18;
    std::size_t shards = 8;  // free-list shards
  };

  /// First chunk of a shard (when chunk_bytes allows); chunk sizes then
  /// grow 4x up to chunk_bytes, so a small graph doesn't pay
  /// shards * chunk_bytes of footprint floor while a large one still
  /// ends up with a handful of big chunks.
  static constexpr std::size_t kInitialChunkBytes = 4096;

  /// Smallest slab: 8 entries (32 bytes), the first out-of-line step
  /// after the 4-entry inline header.
  static constexpr std::size_t kMinSlabEntries = 8;
  static constexpr std::size_t kMaxClasses = 32;

  SlabStore();  // default Options
  explicit SlabStore(Options opts);
  /// Releases every chunk and retracts this store's share of the
  /// process-wide arena gauges (parcore_arena_* in obs/metrics.h).
  ~SlabStore();

  SlabStore(const SlabStore&) = delete;
  SlabStore& operator=(const SlabStore&) = delete;
  SlabStore(SlabStore&&) noexcept = default;
  SlabStore& operator=(SlabStore&&) noexcept = default;

  /// Smallest class whose slab holds at least `min_entries` entries.
  static std::size_t size_class(std::size_t min_entries);
  static constexpr std::size_t class_entries(std::size_t cls) {
    return kMinSlabEntries << cls;
  }
  static constexpr std::size_t class_bytes(std::size_t cls) {
    return class_entries(cls) * sizeof(VertexId);
  }

  /// Returns an uninitialised slab of class_entries(cls) entries.
  /// Thread-safe; `shard_hint` (typically the vertex id) selects the
  /// free-list shard.
  VertexId* allocate(std::size_t cls, std::size_t shard_hint);

  /// Recycles a slab previously returned by allocate() for `cls`.
  void deallocate(VertexId* slab, std::size_t cls, std::size_t shard_hint);

  SlabStoreStats stats() const;
  const Options& options() const { return opts_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  // alignas(64): shards are indexed by thread; without the padding,
  // neighbouring shards share a cache line and every bump-pointer
  // update ping-pongs the line between allocating threads.
  struct alignas(64) Shard {
    mutable Spinlock lock;
    // chunks + jumbos
    std::vector<std::unique_ptr<std::byte[]>> blocks PARCORE_GUARDED_BY(lock);
    // next free byte of the current chunk
    std::byte* bump PARCORE_GUARDED_BY(lock) = nullptr;
    // bytes remaining in the current chunk
    std::size_t bump_left PARCORE_GUARDED_BY(lock) = 0;
    // geometric schedule (0 = unset)
    std::size_t next_chunk_bytes PARCORE_GUARDED_BY(lock) = 0;
    FreeNode* free_lists[kMaxClasses] PARCORE_GUARDED_BY(lock) = {};
    std::size_t reserved_bytes PARCORE_GUARDED_BY(lock) = 0;
    std::size_t freelist_bytes PARCORE_GUARDED_BY(lock) = 0;
    std::size_t chunk_count PARCORE_GUARDED_BY(lock) = 0;
    std::size_t jumbo_count PARCORE_GUARDED_BY(lock) = 0;
  };

  Options opts_;
  std::size_t max_chunk_class_ = 0;  // largest class carved from chunks
  std::size_t num_shards_ = 1;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace parcore
