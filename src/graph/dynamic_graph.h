// Dynamic undirected graph over a fixed-capacity vertex set.
//
// Adjacency is stored as flat arrays per vertex ("our method uses
// arrays to store edges", paper §6.3) — removal scans the adjacency
// list, which is exactly the O(deg) cost the paper attributes to OurR
// versus the tree-based JE storage.
//
// Storage layout (DESIGN.md §8): one 32-byte VertexRec per vertex in a
// contiguous header array. Degrees <= 4 live inline in the record; a
// larger adjacency lives in a power-of-two slab carved from the
// arena-backed SlabStore (graph/slab_store.h). Growth doubles the
// capacity by relocating into the next size class under the vertex
// lock; removal swap-erases in place and never shrinks, so the
// steady-state insert/remove hot path performs no allocation at all.
//
// Thread-safety contract (unchanged from the vector<vector> layout):
// DynamicGraph performs no per-vertex synchronisation. The maintainers
// mutate an edge (u,v) only while holding the vertex locks of BOTH u
// and v, and read adj(w) — including the span from neighbors() — only
// while holding w's lock (or at quiescence), which makes all accesses,
// including grow-relocations, race-free by construction. Slab
// allocation itself is internally sharded and thread-safe.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/slab_store.h"
#include "support/types.h"

namespace parcore {

/// Memory accounting for the adjacency storage (surfaced by
/// `parcore_cli stats`, the engine stats, and bench_storage).
struct GraphMemoryStats {
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  std::size_t header_bytes = 0;         // VertexRec array
  std::size_t arena_reserved_bytes = 0; // chunks + jumbos held by the store
  std::size_t slab_used_bytes = 0;      // degree entries living out of line
  std::size_t slab_capacity_bytes = 0;  // capacity of live slabs
  std::size_t freelist_bytes = 0;       // recycled slabs awaiting reuse
  std::size_t inline_vertices = 0;      // adjacency resident in the header
  std::size_t chunk_count = 0;

  /// Total heap footprint of the adjacency structure.
  std::size_t total_bytes() const { return header_bytes + arena_reserved_bytes; }
  /// Fraction of vertices whose adjacency needs no slab at all.
  double inline_fraction() const {
    return num_vertices == 0
               ? 0.0
               : static_cast<double>(inline_vertices) /
                     static_cast<double>(num_vertices);
  }
  /// Fraction of reserved arena bytes not holding live degree entries
  /// (size-class rounding + free lists + abandoned chunk tails).
  double slack_fraction() const {
    return arena_reserved_bytes == 0
               ? 0.0
               : 1.0 - static_cast<double>(slab_used_bytes) /
                           static_cast<double>(arena_reserved_bytes);
  }
};

class DynamicGraph {
 public:
  /// Degree at which adjacency spills from the header into a slab.
  static constexpr std::uint32_t kInlineDegree = 4;

  DynamicGraph() : DynamicGraph(0) {}
  explicit DynamicGraph(std::size_t n, SlabStore::Options store_opts = {});

  // Copy/move are explicit because of the atomic edge counter; they are
  // only meaningful at quiescence (no concurrent mutators). Copying
  // rebuilds compactly: exact-class slabs laid out linearly in a fresh
  // arena, dropping accumulated growth slack — this is what makes the
  // engine's epoch graph snapshots a linear arena fill rather than n
  // heap allocations.
  DynamicGraph(const DynamicGraph& other);
  DynamicGraph& operator=(const DynamicGraph& other);
  DynamicGraph(DynamicGraph&& other) noexcept;
  DynamicGraph& operator=(DynamicGraph&& other) noexcept;

  /// Builds a graph from an edge list, dropping self-loops and duplicate
  /// edges (paper §6.2 preprocessing). Exact-degree preallocation: one
  /// counting pass sizes every vertex before any adjacency is written,
  /// so the build performs no relocations.
  static DynamicGraph from_edges(std::size_t n, std::span<const Edge> edges,
                                 SlabStore::Options store_opts = {});

  std::size_t num_vertices() const { return verts_.size(); }
  std::size_t num_edges() const {
    return num_edges_.load(std::memory_order_relaxed);
  }

  /// Grows the vertex set to at least n vertices (no-op if smaller).
  /// Quiescent only: resizing may reallocate the whole header array,
  /// which invalidates neighbors() spans of inline (degree <= 4)
  /// vertices — a hazard the old vector<vector> layout did not have.
  void add_vertices(std::size_t n) {
    if (n > verts_.size()) verts_.resize(n);
  }

  std::span<const VertexId> neighbors(VertexId u) const {
    const VertexRec& r = verts_[u];
    return {r.slab != nullptr ? r.slab : r.inline_storage, r.degree};
  }

  std::size_t degree(VertexId u) const { return verts_[u].degree; }

  /// Scans the smaller-degree endpoint, so hub vertices cost O(min deg)
  /// on the locked insert path.
  bool has_edge(VertexId u, VertexId v) const;

  /// Inserts (u,v); returns false for self-loops and existing edges.
  bool insert_edge(VertexId u, VertexId v);

  /// Removes (u,v); returns false if absent. Order within the adjacency
  /// arrays is not preserved (swap-erase).
  bool remove_edge(VertexId u, VertexId v);

  /// Insert without the existence check — caller has already verified
  /// absence (used under vertex locks where has_edge was just called).
  void insert_edge_unchecked(VertexId u, VertexId v);

  /// Pre-sizes u's adjacency for at least `capacity` entries (rounded to
  /// inline or the next slab class). Quiescent or u-locked only; used by
  /// bulk loaders so the fill phase never relocates.
  void reserve_degree(VertexId u, std::size_t capacity);

  std::size_t max_degree() const;
  double average_degree() const {  // paper Table 2 definition: m / n
    return verts_.empty() ? 0.0
                          : static_cast<double>(num_edges()) /
                                static_cast<double>(verts_.size());
  }

  /// All edges with u < v, in adjacency order.
  std::vector<Edge> edges() const;

  /// Adjacency-storage accounting. The per-vertex scan is O(n); the
  /// arena counters are O(shards). Quiescent only.
  GraphMemoryStats memory_stats() const;

 private:
  struct VertexRec {
    std::uint32_t degree = 0;
    std::uint32_t capacity = kInlineDegree;
    VertexId* slab = nullptr;  // nullptr → adjacency in inline_storage
    VertexId inline_storage[kInlineDegree];
  };
  static_assert(sizeof(VertexRec) == 32, "two vertex headers per cache line");

  static VertexId* data(VertexRec& r) {
    return r.slab != nullptr ? r.slab : r.inline_storage;
  }
  static const VertexId* data(const VertexRec& r) {
    return r.slab != nullptr ? r.slab : r.inline_storage;
  }

  void append(VertexId u, VertexId v);
  bool erase_from(VertexId u, VertexId x);
  void grow(VertexId u, std::size_t min_capacity);
  void assign_compact_from(const DynamicGraph& other);

  std::vector<VertexRec> verts_;
  SlabStore store_;
  // Adjacency slabs are guarded by the maintainers' vertex locks; the
  // shared edge counter is touched by all workers, so it is atomic.
  std::atomic<std::size_t> num_edges_{0};
};

}  // namespace parcore
