// Dynamic undirected graph over a fixed-capacity vertex set.
//
// Adjacency is stored as plain arrays per vertex ("our method uses
// arrays to store edges", paper §6.3) — removal scans the adjacency
// list, which is exactly the O(deg) cost the paper attributes to OurR
// versus the tree-based JE storage.
//
// Thread-safety contract: DynamicGraph itself performs no
// synchronisation. The maintainers mutate an edge (u,v) only while
// holding the vertex locks of BOTH u and v, and read adj(w) only while
// holding w's lock (or at quiescence), which makes all accesses
// race-free by construction.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

#include "support/types.h"

namespace parcore {

class DynamicGraph {
 public:
  DynamicGraph() = default;
  explicit DynamicGraph(std::size_t n) : adj_(n) {}

  // Copy/move are explicit because of the atomic edge counter; they are
  // only meaningful at quiescence (no concurrent mutators).
  DynamicGraph(const DynamicGraph& other)
      : adj_(other.adj_), num_edges_(other.num_edges()) {}
  DynamicGraph& operator=(const DynamicGraph& other) {
    adj_ = other.adj_;
    num_edges_.store(other.num_edges(), std::memory_order_relaxed);
    return *this;
  }
  DynamicGraph(DynamicGraph&& other) noexcept
      : adj_(std::move(other.adj_)), num_edges_(other.num_edges()) {
    other.num_edges_.store(0, std::memory_order_relaxed);
  }
  DynamicGraph& operator=(DynamicGraph&& other) noexcept {
    adj_ = std::move(other.adj_);
    num_edges_.store(other.num_edges(), std::memory_order_relaxed);
    other.num_edges_.store(0, std::memory_order_relaxed);
    return *this;
  }

  /// Builds a graph from an edge list, dropping self-loops and duplicate
  /// edges (paper §6.2 preprocessing).
  static DynamicGraph from_edges(std::size_t n, std::span<const Edge> edges);

  std::size_t num_vertices() const { return adj_.size(); }
  std::size_t num_edges() const {
    return num_edges_.load(std::memory_order_relaxed);
  }

  /// Grows the vertex set to at least n vertices (no-op if smaller).
  void add_vertices(std::size_t n) {
    if (n > adj_.size()) adj_.resize(n);
  }

  std::span<const VertexId> neighbors(VertexId u) const {
    return {adj_[u].data(), adj_[u].size()};
  }

  std::size_t degree(VertexId u) const { return adj_[u].size(); }

  bool has_edge(VertexId u, VertexId v) const;

  /// Inserts (u,v); returns false for self-loops and existing edges.
  bool insert_edge(VertexId u, VertexId v);

  /// Removes (u,v); returns false if absent. Order within the adjacency
  /// arrays is not preserved (swap-erase).
  bool remove_edge(VertexId u, VertexId v);

  /// Insert without the existence check — caller has already verified
  /// absence (used under vertex locks where has_edge was just called).
  void insert_edge_unchecked(VertexId u, VertexId v);

  std::size_t max_degree() const;
  double average_degree() const {  // paper Table 2 definition: m / n
    return adj_.empty() ? 0.0
                        : static_cast<double>(num_edges()) /
                              static_cast<double>(adj_.size());
  }

  /// All edges with u < v, in adjacency order.
  std::vector<Edge> edges() const;

 private:
  static bool erase_from(std::vector<VertexId>& list, VertexId x);

  std::vector<std::vector<VertexId>> adj_;
  // Adjacency lists are guarded by the maintainers' vertex locks; the
  // shared edge counter is touched by all workers, so it is atomic.
  std::atomic<std::size_t> num_edges_{0};
};

}  // namespace parcore
