// Edge-list IO and batch preparation utilities.
//
// File format: SNAP-style whitespace-separated "u v" (optionally
// "u v timestamp") per line; lines starting with '#' or '%' are
// comments. Vertices are arbitrary non-negative integers and are
// compacted to [0, n).
#pragma once

#include <string>
#include <vector>

#include "graph/dynamic_graph.h"
#include "support/rng.h"
#include "support/types.h"

namespace parcore {

struct EdgeListData {
  std::size_t num_vertices = 0;
  std::vector<TimestampedEdge> edges;  // time == 0 when absent
  bool has_timestamps = false;
};

/// Loads an edge list via the io/ reader (see io/graph_reader.h for
/// format options and statistics); throws io::IoError — a
/// std::runtime_error carrying "file:line:" context — on IO failure or
/// any malformed line.
EdgeListData load_edge_list(const std::string& path);

/// Writes "u v [time]" lines.
void save_edge_list(const std::string& path, const EdgeListData& data);

/// Drops self-loops and duplicates (keeping first occurrence), preserving
/// order. Returns number of edges removed.
std::size_t canonicalize_edges(std::vector<Edge>& edges);

/// Samples `count` distinct edges of `g` uniformly at random (the paper's
/// "randomly select 100,000 edges" protocol). count is clamped to m.
std::vector<Edge> sample_edges(const DynamicGraph& g, std::size_t count,
                               Rng& rng);

/// Splits `edges` into `parts` nearly equal contiguous batches.
std::vector<std::vector<Edge>> split_batches(const std::vector<Edge>& edges,
                                             std::size_t parts);

}  // namespace parcore
