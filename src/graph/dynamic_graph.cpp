#include "graph/dynamic_graph.h"

#include <algorithm>
#include <cstring>

namespace parcore {

DynamicGraph::DynamicGraph(std::size_t n, SlabStore::Options store_opts)
    : verts_(n), store_(store_opts) {}

DynamicGraph::DynamicGraph(const DynamicGraph& other)
    : verts_(), store_(other.store_.options()) {
  assign_compact_from(other);
}

DynamicGraph& DynamicGraph::operator=(const DynamicGraph& other) {
  if (this == &other) return *this;
  // Rebuild into a fresh arena: the old one holds live slab pointers
  // and can only be released wholesale.
  store_ = SlabStore(other.store_.options());
  verts_.clear();
  assign_compact_from(other);
  return *this;
}

DynamicGraph::DynamicGraph(DynamicGraph&& other) noexcept
    : verts_(std::move(other.verts_)),
      store_(std::move(other.store_)),
      num_edges_(other.num_edges()) {
  other.verts_.clear();
  other.num_edges_.store(0, std::memory_order_relaxed);
}

DynamicGraph& DynamicGraph::operator=(DynamicGraph&& other) noexcept {
  verts_ = std::move(other.verts_);
  store_ = std::move(other.store_);
  num_edges_.store(other.num_edges(), std::memory_order_relaxed);
  other.verts_.clear();
  other.num_edges_.store(0, std::memory_order_relaxed);
  return *this;
}

void DynamicGraph::assign_compact_from(const DynamicGraph& other) {
  verts_.resize(other.verts_.size());
  for (VertexId u = 0; u < other.verts_.size(); ++u) {
    const VertexRec& src = other.verts_[u];
    VertexRec& dst = verts_[u];
    dst.degree = src.degree;
    if (src.degree <= kInlineDegree) {
      dst.capacity = kInlineDegree;
      dst.slab = nullptr;
      std::memcpy(dst.inline_storage, data(src),
                  src.degree * sizeof(VertexId));
    } else {
      // Exact-class slab: successive allocations bump linearly through
      // fresh chunks, so the copy is a sequential arena fill.
      const std::size_t cls = SlabStore::size_class(src.degree);
      dst.slab = store_.allocate(cls, u);
      dst.capacity = static_cast<std::uint32_t>(SlabStore::class_entries(cls));
      std::memcpy(dst.slab, src.slab, src.degree * sizeof(VertexId));
    }
  }
  num_edges_.store(other.num_edges(), std::memory_order_relaxed);
}

DynamicGraph DynamicGraph::from_edges(std::size_t n,
                                      std::span<const Edge> edges,
                                      SlabStore::Options store_opts) {
  DynamicGraph g(n, store_opts);
  // Pass 1: exact degree count (duplicates still included — they only
  // over-reserve within one size class and are dropped below).
  std::vector<std::uint32_t> deg(n, 0);
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    if (e.u >= n || e.v >= n) continue;
    ++deg[e.u];
    ++deg[e.v];
  }
  for (VertexId v = 0; v < n; ++v) g.reserve_degree(v, deg[v]);

  // Pass 2: fill (no relocation possible), then sort+unique each list.
  // O(m log d), avoiding the per-edge has_edge scan.
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    if (e.u >= n || e.v >= n) continue;
    g.append(e.u, e.v);
    g.append(e.v, e.u);
  }
  std::size_t degree_sum = 0;
  for (VertexId v = 0; v < n; ++v) {
    VertexRec& r = g.verts_[v];
    VertexId* p = data(r);
    std::sort(p, p + r.degree);
    r.degree = static_cast<std::uint32_t>(std::unique(p, p + r.degree) - p);
    degree_sum += r.degree;
  }
  g.num_edges_.store(degree_sum / 2, std::memory_order_relaxed);
  return g;
}

void DynamicGraph::reserve_degree(VertexId u, std::size_t capacity) {
  if (capacity > verts_[u].capacity) grow(u, capacity);
}

void DynamicGraph::grow(VertexId u, std::size_t min_capacity) {
  VertexRec& r = verts_[u];
  const std::size_t cls = SlabStore::size_class(min_capacity);
  VertexId* slab = store_.allocate(cls, u);
  std::memcpy(slab, data(r), r.degree * sizeof(VertexId));
  if (r.slab != nullptr)
    store_.deallocate(r.slab, SlabStore::size_class(r.capacity), u);
  r.slab = slab;
  r.capacity = static_cast<std::uint32_t>(SlabStore::class_entries(cls));
}

void DynamicGraph::append(VertexId u, VertexId v) {
  VertexRec& r = verts_[u];
  if (r.degree == r.capacity) grow(u, r.degree + 1);
  data(r)[r.degree++] = v;
}

bool DynamicGraph::has_edge(VertexId u, VertexId v) const {
  if (u == v || u >= verts_.size() || v >= verts_.size()) return false;
  // Scan the smaller-degree endpoint.
  if (verts_[u].degree > verts_[v].degree) std::swap(u, v);
  const auto list = neighbors(u);
  return std::find(list.begin(), list.end(), v) != list.end();
}

bool DynamicGraph::insert_edge(VertexId u, VertexId v) {
  if (u == v || u >= verts_.size() || v >= verts_.size()) return false;
  if (has_edge(u, v)) return false;
  insert_edge_unchecked(u, v);
  return true;
}

void DynamicGraph::insert_edge_unchecked(VertexId u, VertexId v) {
  append(u, v);
  append(v, u);
  num_edges_.fetch_add(1, std::memory_order_relaxed);
}

bool DynamicGraph::erase_from(VertexId u, VertexId x) {
  VertexRec& r = verts_[u];
  VertexId* p = data(r);
  VertexId* end = p + r.degree;
  VertexId* it = std::find(p, end, x);
  if (it == end) return false;
  *it = end[-1];
  --r.degree;
  return true;
}

bool DynamicGraph::remove_edge(VertexId u, VertexId v) {
  if (u == v || u >= verts_.size() || v >= verts_.size()) return false;
  if (!erase_from(u, v)) return false;
  erase_from(v, u);
  num_edges_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

std::size_t DynamicGraph::max_degree() const {
  std::size_t best = 0;
  for (const VertexRec& r : verts_) best = std::max<std::size_t>(best, r.degree);
  return best;
}

std::vector<Edge> DynamicGraph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (VertexId u = 0; u < verts_.size(); ++u)
    for (VertexId v : neighbors(u))
      if (u < v) out.push_back(Edge{u, v});
  return out;
}

GraphMemoryStats DynamicGraph::memory_stats() const {
  GraphMemoryStats out;
  out.num_vertices = verts_.size();
  out.num_edges = num_edges();
  out.header_bytes = verts_.capacity() * sizeof(VertexRec);
  for (const VertexRec& r : verts_) {
    if (r.slab == nullptr) {
      ++out.inline_vertices;
    } else {
      out.slab_used_bytes += r.degree * sizeof(VertexId);
      out.slab_capacity_bytes += r.capacity * sizeof(VertexId);
    }
  }
  const SlabStoreStats arena = store_.stats();
  out.arena_reserved_bytes = arena.reserved_bytes;
  out.freelist_bytes = arena.freelist_bytes;
  out.chunk_count = arena.chunk_count + arena.jumbo_count;
  return out;
}

}  // namespace parcore
