#include "graph/dynamic_graph.h"

#include <algorithm>

namespace parcore {

DynamicGraph DynamicGraph::from_edges(std::size_t n,
                                      std::span<const Edge> edges) {
  DynamicGraph g(n);
  // Bulk build: collect, then sort+unique each adjacency list. This is
  // O(m log d) and avoids the per-edge has_edge scan.
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    if (e.u >= n || e.v >= n) continue;
    g.adj_[e.u].push_back(e.v);
    g.adj_[e.v].push_back(e.u);
  }
  std::size_t degree_sum = 0;
  for (auto& list : g.adj_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    degree_sum += list.size();
  }
  g.num_edges_.store(degree_sum / 2, std::memory_order_relaxed);
  return g;
}

bool DynamicGraph::has_edge(VertexId u, VertexId v) const {
  if (u == v || u >= adj_.size() || v >= adj_.size()) return false;
  // Scan the smaller adjacency list.
  const auto& list = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const VertexId needle = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::find(list.begin(), list.end(), needle) != list.end();
}

bool DynamicGraph::insert_edge(VertexId u, VertexId v) {
  if (u == v || u >= adj_.size() || v >= adj_.size()) return false;
  if (has_edge(u, v)) return false;
  insert_edge_unchecked(u, v);
  return true;
}

void DynamicGraph::insert_edge_unchecked(VertexId u, VertexId v) {
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  num_edges_.fetch_add(1, std::memory_order_relaxed);
}

bool DynamicGraph::erase_from(std::vector<VertexId>& list, VertexId x) {
  auto it = std::find(list.begin(), list.end(), x);
  if (it == list.end()) return false;
  *it = list.back();
  list.pop_back();
  return true;
}

bool DynamicGraph::remove_edge(VertexId u, VertexId v) {
  if (u == v || u >= adj_.size() || v >= adj_.size()) return false;
  if (!erase_from(adj_[u], v)) return false;
  erase_from(adj_[v], u);
  num_edges_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

std::size_t DynamicGraph::max_degree() const {
  std::size_t best = 0;
  for (const auto& list : adj_) best = std::max(best, list.size());
  return best;
}

std::vector<Edge> DynamicGraph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (VertexId u = 0; u < adj_.size(); ++u)
    for (VertexId v : adj_[u])
      if (u < v) out.push_back(Edge{u, v});
  return out;
}

}  // namespace parcore
