#include "baseline/je.h"

#include <algorithm>
#include <map>

#include "decomp/bz.h"
#include "obs/metrics.h"

namespace parcore {

// ===========================================================================
// JeGraph
// ===========================================================================

void JeGraph::build(const DynamicGraph& g) {
  const std::size_t n = g.num_vertices();
  n_ = n;
  adj_ = std::make_unique<AdjList[]>(n);
  num_edges_.store(0, std::memory_order_relaxed);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    AdjList& list = adj_[v];
    list.capacity = static_cast<std::uint32_t>(nbrs.size());
    list.slots = std::make_unique<std::atomic<VertexId>[]>(list.capacity);
    for (std::uint32_t i = 0; i < nbrs.size(); ++i)
      list.slots[i].store(nbrs[i], std::memory_order_relaxed);
    list.size.store(list.capacity, std::memory_order_relaxed);
    list.live.store(list.capacity, std::memory_order_relaxed);
  }
  num_edges_.store(g.num_edges(), std::memory_order_relaxed);
}

void JeGraph::reserve_for(std::span<const Edge> edges) {
  std::vector<std::uint32_t> extra(n_, 0);
  for (const Edge& e : edges) {
    if (e.u == e.v || e.u >= n_ || e.v >= n_) continue;
    ++extra[e.u];
    ++extra[e.v];
  }
  for (VertexId v = 0; v < n_; ++v) {
    AdjList& list = adj_[v];
    const std::uint32_t need =
        list.size.load(std::memory_order_relaxed) + extra[v];
    if (need <= list.capacity) continue;
    auto fresh = std::make_unique<std::atomic<VertexId>[]>(need);
    const std::uint32_t size = list.size.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < size; ++i)
      fresh[i].store(list.slots[i].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    list.slots = std::move(fresh);
    list.capacity = need;
  }
}

void JeGraph::compact() {
  for (VertexId v = 0; v < n_; ++v) {
    AdjList& list = adj_[v];
    const std::uint32_t size = list.size.load(std::memory_order_relaxed);
    std::uint32_t out = 0;
    for (std::uint32_t i = 0; i < size; ++i) {
      const VertexId x = list.slots[i].load(std::memory_order_relaxed);
      if (x != kInvalidVertex)
        list.slots[out++].store(x, std::memory_order_relaxed);
    }
    list.size.store(out, std::memory_order_relaxed);
    list.live.store(out, std::memory_order_relaxed);
  }
}

bool JeGraph::has_edge(VertexId u, VertexId v) const {
  if (u == v || u >= n_ || v >= n_) return false;
  const VertexId base = live_degree(u) <= live_degree(v) ? u : v;
  const VertexId needle = base == u ? v : u;
  bool found = false;
  for_each_neighbor(base, [&](VertexId x) {
    if (x == needle) found = true;
  });
  return found;
}

void JeGraph::append_edge(VertexId u, VertexId v) {
  for (VertexId a : {u, v}) {
    const VertexId b = a == u ? v : u;
    AdjList& list = adj_[a];
    {
      SpinGuard g(list.append_lock);
      const std::uint32_t idx = list.size.load(std::memory_order_relaxed);
      // reserve_for must have been called with this batch.
      if (idx >= list.capacity) std::abort();
      list.slots[idx].store(b, std::memory_order_relaxed);
      list.size.store(idx + 1, std::memory_order_release);
    }
    list.live.fetch_add(1, std::memory_order_relaxed);
  }
  num_edges_.fetch_add(1, std::memory_order_relaxed);
}

bool JeGraph::tombstone_in(VertexId u, VertexId v) {
  AdjList& list = adj_[u];
  const std::uint32_t size = list.size.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < size; ++i) {
    if (list.slots[i].load(std::memory_order_relaxed) == v) {
      list.slots[i].store(kInvalidVertex, std::memory_order_relaxed);
      list.live.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool JeGraph::tombstone_edge(VertexId u, VertexId v) {
  if (u == v || u >= n_ || v >= n_) return false;
  if (!tombstone_in(u, v)) return false;
  tombstone_in(v, u);
  num_edges_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

// ===========================================================================
// JeMaintainer
// ===========================================================================

void JeMaintainer::Ctx::ensure(std::size_t n) {
  if (visit_mark.size() < n) {
    visit_mark.assign(n, 0);
    evict_mark.assign(n, 0);
    vstar_mark.assign(n, 0);
    cd.assign(n, 0);
    epoch = 0;
  }
}

void JeMaintainer::Ctx::begin_op() {
  ++epoch;
  if (epoch == 0) {  // wrapped: wipe marks
    std::fill(visit_mark.begin(), visit_mark.end(), 0);
    std::fill(evict_mark.begin(), evict_mark.end(), 0);
    std::fill(vstar_mark.begin(), vstar_mark.end(), 0);
    epoch = 1;
  }
  stack.clear();
  estack.clear();
  visited_list.clear();
  vstar.clear();
}

JeMaintainer::JeMaintainer(const DynamicGraph& g, ThreadTeam& team,
                           Options opts)
    : team_(team), opts_(opts) {
  ctxs_.resize(static_cast<std::size_t>(team_.max_workers()));
  rebuild(g);
}

void JeMaintainer::rebuild(const DynamicGraph& g) {
  n_ = g.num_vertices();
  graph_.build(g);
  core_ = std::make_unique<std::atomic<CoreValue>[]>(n_);
  mcd_ = std::make_unique<std::atomic<CoreValue>[]>(n_);
  Decomposition d = bz_decompose(g);
  max_core_ = d.max_core;
  for (VertexId v = 0; v < n_; ++v)
    core_[v].store(d.core[v], std::memory_order_relaxed);
  for (VertexId v = 0; v < n_; ++v) {
    CoreValue m = 0;
    for (VertexId u : g.neighbors(v))
      if (d.core[u] >= d.core[v]) ++m;
    mcd_[v].store(m, std::memory_order_relaxed);
  }
  for (auto& ctx : ctxs_) ctx.ensure(n_);
  level_lock_count_ = 0;
  ensure_level_locks(static_cast<std::size_t>(max_core_) + 3);
}

std::vector<CoreValue> JeMaintainer::cores() const {
  std::vector<CoreValue> out(n_);
  for (VertexId v = 0; v < n_; ++v)
    out[v] = core_[v].load(std::memory_order_relaxed);
  return out;
}

void JeMaintainer::ensure_level_locks(std::size_t count) {
  if (count <= level_lock_count_) return;
  level_locks_ = std::make_unique<Spinlock[]>(count);
  level_lock_count_ = count;
}

CoreValue JeMaintainer::pcd(const Ctx& ctx, VertexId w, CoreValue k) const {
  CoreValue value = 0;
  graph_.for_each_neighbor(w, [&](VertexId x) {
    const CoreValue cx = core_[x].load(std::memory_order_acquire);
    if (cx > k || (cx == k && !ctx.evicted(x) &&
                   mcd_[x].load(std::memory_order_relaxed) > k))
      ++value;
  });
  return value;
}

CoreValue JeMaintainer::recompute_mcd(VertexId w) const {
  const CoreValue cw = core_[w].load(std::memory_order_relaxed);
  CoreValue m = 0;
  graph_.for_each_neighbor(w, [&](VertexId x) {
    if (core_[x].load(std::memory_order_relaxed) >= cw) ++m;
  });
  return m;
}

bool JeMaintainer::traversal_insert(Ctx& ctx, Edge e, CoreValue k) {
  const VertexId u = e.u, v = e.v;
  if (graph_.has_edge(u, v)) return false;
  const CoreValue cu = core_[u].load(std::memory_order_relaxed);
  const CoreValue cv = core_[v].load(std::memory_order_relaxed);
  graph_.append_edge(u, v);
  // Only the (<=)-core endpoint gains a >=-core neighbour; that endpoint
  // is at level k, which this worker has locked.
  if (cv >= cu) mcd_[u].fetch_add(1, std::memory_order_relaxed);
  if (cu >= cv) mcd_[v].fetch_add(1, std::memory_order_relaxed);

  ctx.begin_op();
  const VertexId root = cu <= cv ? u : v;
  auto visit = [&](VertexId x) {
    ctx.visit_mark[x] = ctx.epoch;
    ctx.cd[x] = pcd(ctx, x, k);
    ctx.stack.push_back(x);
    ctx.visited_list.push_back(x);
  };
  visit(root);

  // Iterative eviction cascade: decrement cd of visited neighbours and
  // cascade anything dropping to <= k (deep chains occur on the
  // uniform-core graphs, so no recursion).
  auto evict_from = [&](VertexId w0) {
    ctx.evict_mark[w0] = ctx.epoch;
    ctx.estack.push_back(w0);
    while (!ctx.estack.empty()) {
      const VertexId w = ctx.estack.back();
      ctx.estack.pop_back();
      graph_.for_each_neighbor(w, [&](VertexId x) {
        if (core_[x].load(std::memory_order_relaxed) != k) return;
        if (!ctx.visited(x) || ctx.evicted(x)) return;
        if (--ctx.cd[x] <= k) {
          ctx.evict_mark[x] = ctx.epoch;
          ctx.estack.push_back(x);
        }
      });
    }
  };

  while (!ctx.stack.empty()) {
    const VertexId w = ctx.stack.back();
    ctx.stack.pop_back();
    if (ctx.evicted(w)) continue;
    if (ctx.cd[w] > k) {
      graph_.for_each_neighbor(w, [&](VertexId x) {
        if (core_[x].load(std::memory_order_relaxed) != k) return;
        if (ctx.visited(x)) return;
        if (mcd_[x].load(std::memory_order_relaxed) <= k) return;
        visit(x);
      });
    } else {
      evict_from(w);
    }
  }

  // V* = visited \ evicted. Cores first, so mcd recomputation and the
  // neighbour increments both see the final levels.
  bool any = false;
  for (VertexId w : ctx.visited_list) {
    if (ctx.evicted(w)) continue;
    core_[w].store(k + 1, std::memory_order_release);
    any = true;
  }
  if (any) {
    for (VertexId w : ctx.visited_list) {
      if (ctx.evicted(w)) continue;
      mcd_[w].store(recompute_mcd(w), std::memory_order_relaxed);
      graph_.for_each_neighbor(w, [&](VertexId x) {
        if (core_[x].load(std::memory_order_relaxed) != k + 1) return;
        if (ctx.visited(x) && !ctx.evicted(x)) return;  // recomputed exactly
        mcd_[x].fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  return true;
}

bool JeMaintainer::traversal_remove(Ctx& ctx, Edge e, CoreValue k) {
  const VertexId u = e.u, v = e.v;
  if (!graph_.tombstone_edge(u, v)) return false;
  const CoreValue cu = core_[u].load(std::memory_order_relaxed);
  const CoreValue cv = core_[v].load(std::memory_order_relaxed);
  if (cv >= cu) mcd_[u].fetch_sub(1, std::memory_order_relaxed);
  if (cu >= cv) mcd_[v].fetch_sub(1, std::memory_order_relaxed);

  ctx.begin_op();
  auto consider = [&](VertexId w) {
    if (core_[w].load(std::memory_order_relaxed) == k && !ctx.in_vstar(w) &&
        mcd_[w].load(std::memory_order_relaxed) < k) {
      ctx.vstar_mark[w] = ctx.epoch;
      ctx.vstar.push_back(w);
      ctx.stack.push_back(w);
    }
  };
  consider(u);
  consider(v);
  while (!ctx.stack.empty()) {
    const VertexId w = ctx.stack.back();
    ctx.stack.pop_back();
    graph_.for_each_neighbor(w, [&](VertexId x) {
      if (core_[x].load(std::memory_order_relaxed) != k) return;
      if (ctx.in_vstar(x)) return;
      mcd_[x].fetch_sub(1, std::memory_order_relaxed);
      consider(x);
    });
  }
  // Demote at the end (Algorithm 3 semantics), then repair mcd.
  for (VertexId w : ctx.vstar)
    core_[w].store(k - 1, std::memory_order_release);
  for (VertexId w : ctx.vstar)
    mcd_[w].store(recompute_mcd(w), std::memory_order_relaxed);
  return true;
}

template <bool kInsert>
std::size_t JeMaintainer::run_rounds(std::span<const Edge> edges,
                                     int workers) {
  std::vector<Edge> pending;
  pending.reserve(edges.size());
  for (const Edge& e : edges) {
    if (e.u == e.v || e.u >= n_ || e.v >= n_) continue;
    pending.push_back(e);
  }

  std::size_t applied = 0;
  int round = 0;
  while (!pending.empty()) {
    ++round;
    // Preprocessing: group edges by current level ("join edge sets").
    std::map<CoreValue, std::vector<Edge>> groups;
    for (const Edge& e : pending) {
      const CoreValue k =
          std::min(core_[e.u].load(std::memory_order_relaxed),
                   core_[e.v].load(std::memory_order_relaxed));
      // A removal at level 0 is impossible: a core-0 endpoint is
      // isolated, so the edge cannot exist any more.
      if (!kInsert && k == 0) continue;
      groups[k].push_back(e);
    }
    if (groups.empty()) break;
    // Insertion can push the max level one up per round.
    CoreValue top = groups.rbegin()->first;
    ensure_level_locks(static_cast<std::size_t>(top) + 3);

    std::vector<std::pair<CoreValue, std::vector<Edge>*>> work;
    work.reserve(groups.size());
    for (auto& [k, list] : groups) work.emplace_back(k, &list);

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    const bool sequential_fallback = round > opts_.max_rounds;
    const int round_workers = sequential_fallback ? 1 : workers;
    // The fallback silently serialises convergence-tail rounds; count
    // each one so a workload stuck past max_rounds is visible in the
    // registry instead of just "JE got slow".
    if (sequential_fallback) {
      static obs::Counter& fallbacks =
          obs::registry().counter("parcore_je_sequential_fallbacks");
      fallbacks.add(1);
    }
    team_.run(round_workers, [&](int wid) {
      Ctx& ctx = ctxs_[static_cast<std::size_t>(wid)];
      std::size_t local_done = 0;
      for (;;) {
        const std::size_t gi = next.fetch_add(1, std::memory_order_relaxed);
        if (gi >= work.size()) break;
        const CoreValue k = work[gi].first;
        std::vector<Edge>& group = *work[gi].second;
        // Ordered level-pair locks: insert touches {k, k+1}, removal
        // {k-1, k}; acquiring ascending prevents deadlock.
        const CoreValue lo = kInsert ? k : k - 1;
        const CoreValue hi = kInsert ? k + 1 : k;
        SpinGuard glo(level_locks_[static_cast<std::size_t>(lo)]);
        SpinGuard ghi(level_locks_[static_cast<std::size_t>(hi)]);
        for (const Edge& e : group) {
          const CoreValue know =
              std::min(core_[e.u].load(std::memory_order_relaxed),
                       core_[e.v].load(std::memory_order_relaxed));
          if (know != k) {
            ctx.residual.push_back(e);  // level moved; defer to next round
            continue;
          }
          const bool ok = kInsert ? traversal_insert(ctx, e, k)
                                  : traversal_remove(ctx, e, k);
          if (ok) ++local_done;
        }
      }
      done.fetch_add(local_done, std::memory_order_relaxed);
    });
    applied += done.load(std::memory_order_relaxed);

    pending.clear();
    for (auto& ctx : ctxs_) {
      pending.insert(pending.end(), ctx.residual.begin(), ctx.residual.end());
      ctx.residual.clear();
    }
    if (kInsert) {
      CoreValue mx = max_core_;
      for (auto& [k, list] : groups) mx = std::max(mx, k + 1);
      max_core_ = mx;
    }
  }
  return applied;
}

std::size_t JeMaintainer::insert_batch(std::span<const Edge> edges,
                                       int workers) {
  graph_.compact();
  graph_.reserve_for(edges);
  return run_rounds<true>(edges, workers);
}

std::size_t JeMaintainer::remove_batch(std::span<const Edge> edges,
                                       int workers) {
  graph_.compact();
  return run_rounds<false>(edges, workers);
}

bool JeMaintainer::insert_edge(VertexId u, VertexId v) {
  Edge e{u, v};
  return insert_batch(std::span<const Edge>(&e, 1), 1) == 1;
}

bool JeMaintainer::remove_edge(VertexId u, VertexId v) {
  Edge e{u, v};
  return remove_batch(std::span<const Edge>(&e, 1), 1) == 1;
}

}  // namespace parcore
