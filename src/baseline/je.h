// JE baseline: join-edge-set style parallel core maintenance after Hua
// et al. [22] — the comparison system of the paper's evaluation (JEI /
// JER). Hua et al.'s source is not available; this is a
// faithful-in-behaviour substitute (DESIGN.md §3.1):
//
//   - the batch is preprocessed into per-core-level edge groups (the
//     "join edge sets");
//   - each group is processed sequentially by a single worker running
//     the Traversal algorithm [18, 20] (mcd + on-the-fly pcd);
//   - workers run concurrently only across levels, holding ordered
//     level-pair locks ({K, K+1} for insertion, {K-1, K} for removal),
//     which confines every write of a level-K operation to the locked
//     levels; reads elsewhere are monotone threshold tests;
//   - edges whose level changed before processing are deferred to the
//     next round.
//
// This preserves exactly the property the paper measures: when all
// vertices share one core number (e.g. the BA graph), JEI/JER collapse
// to sequential execution, while preprocessing adds batch-proportional
// overhead.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/dynamic_graph.h"
#include "support/types.h"
#include "sync/spinlock.h"
#include "sync/thread_team.h"

namespace parcore {

/// Adjacency storage that tolerates concurrent readers during appends
/// and tombstone removals (JE workers at non-adjacent levels touch
/// shared vertices): slots are atomics, sizes publish with release, and
/// removal tombstones instead of compacting, so a reader never misses an
/// unrelated neighbour mid-scan. compact() reclaims tombstones at
/// quiescence.
class JeGraph {
 public:
  void build(const DynamicGraph& g);

  /// Grows per-vertex capacity to absorb `edges` (the preprocessing
  /// pass). Quiescent only.
  void reserve_for(std::span<const Edge> edges);

  /// Reclaims tombstones. Quiescent only.
  void compact();

  std::size_t num_vertices() const { return n_; }
  std::size_t num_edges() const {
    return num_edges_.load(std::memory_order_relaxed);
  }

  bool has_edge(VertexId u, VertexId v) const;
  void append_edge(VertexId u, VertexId v);      // capacity must suffice
  bool tombstone_edge(VertexId u, VertexId v);   // false if absent

  std::size_t live_degree(VertexId u) const {
    return adj_[u].live.load(std::memory_order_relaxed);
  }

  template <typename Fn>
  void for_each_neighbor(VertexId u, Fn&& fn) const {
    const AdjList& list = adj_[u];
    const std::uint32_t size = list.size.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < size; ++i) {
      const VertexId x = list.slots[i].load(std::memory_order_relaxed);
      if (x != kInvalidVertex) fn(x);
    }
  }

 private:
  struct AdjList {
    std::unique_ptr<std::atomic<VertexId>[]> slots;
    std::atomic<std::uint32_t> size{0};
    std::atomic<std::uint32_t> live{0};
    std::uint32_t capacity = 0;
    Spinlock append_lock;
  };

  bool tombstone_in(VertexId u, VertexId v);

  // AdjList is pinned (atomics + lock), so storage is a fixed array.
  std::unique_ptr<AdjList[]> adj_;
  std::size_t n_ = 0;
  std::atomic<std::size_t> num_edges_{0};
};

class JeMaintainer {
 public:
  struct Options {
    /// Cap on rounds before falling back to sequential processing of the
    /// remainder (defensive; classification converges in practice).
    int max_rounds = 1000;
  };

  /// Copies `g` into the internal JeGraph; `g` itself is not mutated.
  JeMaintainer(const DynamicGraph& g, ThreadTeam& team, Options opts);
  JeMaintainer(const DynamicGraph& g, ThreadTeam& team)
      : JeMaintainer(g, team, Options()) {}

  void rebuild(const DynamicGraph& g);

  /// JEI / JER.
  std::size_t insert_batch(std::span<const Edge> edges, int workers);
  std::size_t remove_batch(std::span<const Edge> edges, int workers);

  bool insert_edge(VertexId u, VertexId v);
  bool remove_edge(VertexId u, VertexId v);

  CoreValue core(VertexId v) const {
    return core_[v].load(std::memory_order_relaxed);
  }
  std::vector<CoreValue> cores() const;

  const JeGraph& graph() const { return graph_; }

 private:
  struct Ctx {
    std::vector<std::uint32_t> visit_mark;
    std::vector<std::uint32_t> evict_mark;
    std::vector<std::uint32_t> vstar_mark;
    std::vector<CoreValue> cd;
    std::uint32_t epoch = 0;
    std::vector<VertexId> stack;
    std::vector<VertexId> estack;        // eviction cascade worklist
    std::vector<VertexId> visited_list;  // insertion: visit order
    std::vector<VertexId> vstar;
    std::vector<Edge> residual;

    void ensure(std::size_t n);
    void begin_op();
    bool visited(VertexId v) const { return visit_mark[v] == epoch; }
    bool evicted(VertexId v) const { return evict_mark[v] == epoch; }
    bool in_vstar(VertexId v) const { return vstar_mark[v] == epoch; }
  };

  bool traversal_insert(Ctx& ctx, Edge e, CoreValue k);
  bool traversal_remove(Ctx& ctx, Edge e, CoreValue k);
  /// Purecore degree: neighbours that can still end in the (k+1)-core.
  /// Vertices already evicted in this traversal are excluded — their
  /// eviction happened before `w` was visited, so the cascade will not
  /// compensate for them.
  CoreValue pcd(const Ctx& ctx, VertexId w, CoreValue k) const;
  CoreValue recompute_mcd(VertexId w) const;
  void ensure_level_locks(std::size_t count);

  template <bool kInsert>
  std::size_t run_rounds(std::span<const Edge> edges, int workers);

  ThreadTeam& team_;
  Options opts_;
  JeGraph graph_;
  std::unique_ptr<std::atomic<CoreValue>[]> core_;
  std::unique_ptr<std::atomic<CoreValue>[]> mcd_;
  std::size_t n_ = 0;
  CoreValue max_core_ = 0;

  std::unique_ptr<Spinlock[]> level_locks_;
  std::size_t level_lock_count_ = 0;
  std::vector<Ctx> ctxs_;
};

}  // namespace parcore
