// Independent correctness oracles for core numbers and k-orders.
#pragma once

#include <string>
#include <vector>

#include "graph/dynamic_graph.h"
#include "support/types.h"

namespace parcore {

/// Core numbers by definition-level iterative peeling — deliberately a
/// different implementation from bz_decompose, used as the differential
/// testing oracle.
std::vector<CoreValue> brute_force_cores(const DynamicGraph& g);

/// True iff `cores` equals a fresh brute-force decomposition.
bool verify_cores(const DynamicGraph& g, const std::vector<CoreValue>& cores,
                  std::string* error = nullptr);

/// Necessary condition for any valid k-order (see DESIGN.md §5): with
/// correct cores, every vertex v must satisfy
///   |{u in adj(v) : v precedes u}| <= core(v).
/// `rank` maps vertex -> global order position.
bool verify_korder_bound(const DynamicGraph& g,
                         const std::vector<CoreValue>& cores,
                         const std::vector<std::size_t>& rank,
                         std::string* error = nullptr);

}  // namespace parcore
