// BZ core decomposition (paper Algorithm 1, Batagelj–Zaveršnik): linear
// O(n + m) bucket peeling producing both core numbers and the peel
// order, which *defines* the k-order the maintainers start from
// (Definition 3.5).
#pragma once

#include <vector>

#include "graph/dynamic_graph.h"
#include "support/rng.h"
#include "support/types.h"

namespace parcore {

struct Decomposition {
  std::vector<CoreValue> core;
  /// Vertices in peel order (a valid k-order instance: non-decreasing
  /// core numbers; within one core value, BZ dequeue order).
  std::vector<VertexId> peel_order;
  CoreValue max_core = 0;
};

/// Classic array-based BZ: buckets by current degree, vertices initially
/// sorted by degree, O(n + m). Ties resolve toward small initial degree
/// ("small degree first", the strategy the paper selects in §3.3.1).
Decomposition bz_decompose(const DynamicGraph& g);

/// Tie-break strategies for dequeuing equal-degree vertices (§3.3.1).
enum class PeelTie { kSmallDegreeFirst, kLargeDegreeFirst, kRandom };

/// Heap-based BZ variant with an explicit tie policy; O(m log n). Used by
/// the tie-policy ablation; produces the same core numbers, different
/// k-order instances.
Decomposition bz_decompose_with_policy(const DynamicGraph& g, PeelTie policy,
                                       Rng* rng = nullptr);

}  // namespace parcore
