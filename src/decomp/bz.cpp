#include "decomp/bz.h"

#include <algorithm>
#include <queue>
#include <tuple>

namespace parcore {

Decomposition bz_decompose(const DynamicGraph& g) {
  const std::size_t n = g.num_vertices();
  Decomposition d;
  d.core.assign(n, 0);
  d.peel_order.reserve(n);
  if (n == 0) return d;

  std::vector<std::uint32_t> deg(n);
  std::size_t max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = static_cast<std::uint32_t>(g.degree(v));
    max_deg = std::max<std::size_t>(max_deg, deg[v]);
  }

  // Counting sort of vertices by degree. bin[d] = start of bucket d.
  std::vector<std::size_t> bin(max_deg + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[deg[v]];
  std::size_t start = 0;
  for (std::size_t dd = 0; dd <= max_deg; ++dd) {
    std::size_t count = bin[dd];
    bin[dd] = start;
    start += count;
  }

  std::vector<VertexId> vert(n);
  std::vector<std::size_t> pos(n);
  for (VertexId v = 0; v < n; ++v) {
    pos[v] = bin[deg[v]]++;
    vert[pos[v]] = v;
  }
  for (std::size_t dd = max_deg; dd >= 1; --dd) bin[dd] = bin[dd - 1];
  bin[0] = 0;

  // Peel in place; vert becomes the peel order.
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = vert[i];
    d.core[v] = static_cast<CoreValue>(deg[v]);
    if (d.core[v] > d.max_core) d.max_core = d.core[v];
    for (VertexId u : g.neighbors(v)) {
      if (deg[u] > deg[v]) {
        // Swap u with the first vertex of its bucket, then shrink bucket.
        const std::size_t du = deg[u];
        const std::size_t pu = pos[u];
        const std::size_t pw = bin[du];
        const VertexId w = vert[pw];
        if (u != w) {
          std::swap(vert[pu], vert[pw]);
          pos[u] = pw;
          pos[w] = pu;
        }
        ++bin[du];
        --deg[u];
      }
    }
  }
  d.peel_order = std::move(vert);
  return d;
}

Decomposition bz_decompose_with_policy(const DynamicGraph& g, PeelTie policy,
                                       Rng* rng) {
  const std::size_t n = g.num_vertices();
  Decomposition d;
  d.core.assign(n, 0);
  d.peel_order.reserve(n);
  if (n == 0) return d;

  Rng local_rng(0xc0ffee);
  if (rng == nullptr) rng = &local_rng;

  std::vector<std::uint32_t> deg(n);
  std::vector<std::uint64_t> tie(n);
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = static_cast<std::uint32_t>(g.degree(v));
    switch (policy) {
      case PeelTie::kSmallDegreeFirst:
        tie[v] = deg[v];
        break;
      case PeelTie::kLargeDegreeFirst:
        tie[v] = ~static_cast<std::uint64_t>(deg[v]);
        break;
      case PeelTie::kRandom:
        tie[v] = rng->next();
        break;
    }
  }

  // Lazy-deletion min-heap keyed by (current degree, tie, vertex).
  using Key = std::tuple<std::uint32_t, std::uint64_t, VertexId>;
  std::priority_queue<Key, std::vector<Key>, std::greater<Key>> heap;
  for (VertexId v = 0; v < n; ++v) heap.emplace(deg[v], tie[v], v);

  std::vector<bool> peeled(n, false);
  CoreValue level = 0;
  while (!heap.empty()) {
    auto [dd, tt, v] = heap.top();
    heap.pop();
    if (peeled[v] || dd != deg[v]) continue;  // stale entry
    peeled[v] = true;
    level = std::max(level, static_cast<CoreValue>(dd));
    d.core[v] = level;
    d.peel_order.push_back(v);
    for (VertexId u : g.neighbors(v)) {
      if (!peeled[u] && deg[u] > deg[v]) {
        --deg[u];
        heap.emplace(deg[u], tie[u], u);
      }
    }
  }
  d.max_core = level;
  return d;
}

}  // namespace parcore
