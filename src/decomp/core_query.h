// Queries over a core decomposition: k-core membership, connected
// k-subcores (Definition 3.3 — the traversal scope of the classic
// algorithms), degeneracy ordering and core-number distributions.
// These are the downstream consumers the paper's applications (§1)
// rely on: dense-region extraction, super-spreader identification,
// hierarchy inspection.
//
// Each query takes the core numbers either as a flat
// `std::vector<CoreValue>` (static decompositions) or as a
// `query::CoreView` (the engine's paged epoch snapshots,
// query/versioned_cores.h). Both overloads run the same template
// underneath, so results are bit-identical — the differential suite in
// tests/query_view_test.cpp holds them to that.
//
// Robustness contract: the core source and the graph may disagree in
// size (e.g. a held snapshot's cores paired with a newer graph).
// Graph-walking queries treat a vertex outside EITHER domain as
// out of scope instead of reading out of bounds.
#pragma once

#include <vector>

#include "graph/dynamic_graph.h"
#include "query/versioned_cores.h"
#include "support/types.h"

namespace parcore {

/// Vertices with core number >= k (members of the k-core).
std::vector<VertexId> k_core_members(const std::vector<CoreValue>& cores,
                                     CoreValue k);
std::vector<VertexId> k_core_members(const query::CoreView& cores,
                                     CoreValue k);

/// The maximal core value and its vertex count. Empty input yields the
/// empty summary — `histogram` is empty (NOT `{0}`), so a 0-vertex
/// input is distinguishable from a graph whose vertices all have
/// core 0.
struct CoreSummary {
  CoreValue max_core = 0;
  std::size_t degeneracy_core_size = 0;  // |{v : core(v) == max_core}|
  std::vector<std::size_t> histogram;    // count per core value
};
CoreSummary summarize_cores(const std::vector<CoreValue>& cores);
CoreSummary summarize_cores(const query::CoreView& cores);

/// The k-subcore containing u (Definition 3.3): the maximal connected
/// set of vertices with core number == core(u) reachable from u.
/// Returns empty if u is outside the graph or the core source.
std::vector<VertexId> subcore_of(const DynamicGraph& g,
                                 const std::vector<CoreValue>& cores,
                                 VertexId u);
std::vector<VertexId> subcore_of(const DynamicGraph& g,
                                 const query::CoreView& cores, VertexId u);

/// All k-subcores of the graph, as (representative-sorted) vertex lists.
std::vector<std::vector<VertexId>> all_subcores(
    const DynamicGraph& g, const std::vector<CoreValue>& cores);
std::vector<std::vector<VertexId>> all_subcores(const DynamicGraph& g,
                                                const query::CoreView& cores);

/// A degeneracy ordering (reverse of any valid peel order restricted to
/// ties by core): vertices sorted by (core, id). Greedy colouring along
/// this order uses at most degeneracy+1 colours — a cheap sanity anchor
/// used by tests.
std::vector<VertexId> degeneracy_order(const std::vector<CoreValue>& cores);

/// Induced subgraph of the k-core, with vertex ids compacted; `mapping`
/// (optional) receives old-id -> new-id (kInvalidVertex if dropped).
DynamicGraph k_core_subgraph(const DynamicGraph& g,
                             const std::vector<CoreValue>& cores, CoreValue k,
                             std::vector<VertexId>* mapping = nullptr);
DynamicGraph k_core_subgraph(const DynamicGraph& g,
                             const query::CoreView& cores, CoreValue k,
                             std::vector<VertexId>* mapping = nullptr);

/// Greedy colouring along the reverse degeneracy order — the classic
/// application of core decomposition: uses at most degeneracy+1
/// (= max core + 1) colours. Returns per-vertex colours in
/// [0, colours_used).
struct Coloring {
  std::vector<std::uint32_t> color;
  std::uint32_t colors_used = 0;
};
Coloring degeneracy_coloring(const DynamicGraph& g,
                             const std::vector<CoreValue>& cores);

}  // namespace parcore
