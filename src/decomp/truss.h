// Static k-truss decomposition. The paper's conclusion (§7) singles out
// k-truss maintenance as the next target for the parallel order-based
// methodology; this module provides the static decomposition substrate
// (edge trussness via support peeling) plus a brute-force oracle.
//
// Definitions: the k-truss is the maximal subgraph in which every edge
// participates in at least k-2 triangles; the trussness of an edge is
// the largest k for which it is in the k-truss (>= 2 for every edge).
#pragma once

#include <unordered_map>
#include <vector>

#include "graph/dynamic_graph.h"
#include "support/types.h"

namespace parcore {

struct TrussDecomposition {
  std::vector<Edge> edges;           // canonical (u < v)
  std::vector<CoreValue> trussness;  // parallel to edges
  CoreValue max_truss = 0;           // 0 for an empty graph

  /// Trussness of a specific edge, or 0 if absent.
  CoreValue of(Edge e) const;

  std::unordered_map<std::uint64_t, std::size_t> index;  // edge_key -> idx
};

/// Bucket-peeling truss decomposition: O(sum of deg(u)*deg(v) over
/// edges) support counting + linear peeling.
TrussDecomposition truss_decompose(const DynamicGraph& g);

/// Brute-force oracle: iteratively deletes edges with support < k-2 per
/// k level. For tests only.
TrussDecomposition brute_force_truss(const DynamicGraph& g);

}  // namespace parcore
