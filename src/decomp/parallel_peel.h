// Parallel bulk core decomposition (DESIGN.md §12): the multi-threaded
// cold-start path that replaces sequential BZ on engine construction,
// crash recovery verification and `parcore_cli decompose`.
//
// Two modes:
//   kExact  — level-synchronous frontier peeling (ParK/PKC family, like
//             decomp/park.h) that ADDITIONALLY records the peel order:
//             vertices are appended frontier by frontier — (level,
//             sub-round, vertex id) — which is a valid k-order instance
//             (proof sketch in DESIGN.md §12.2). Core numbers are
//             bit-identical to bz_decompose; the order is deterministic
//             across worker counts and schedules, so differential tests
//             and restarts see one canonical result.
//   kApprox — h-index iterative convergence (Lü et al.; the practical
//             cousin of the (2+ε)-approximate scheme in Liu et al.,
//             arXiv:2106.03824): core(v) starts at degree(v) and is
//             repeatedly replaced by H(cores of neighbours) until
//             fixpoint. Values decrease monotonically and every round
//             stays a SOUND UPPER BOUND on the true coreness; the
//             uncapped fixpoint equals it exactly. A round cap
//             (max_rounds) buys a fast bound for huge graphs — exact
//             maintenance or a later exact pass trues it up. Jacobi
//             iteration (reads previous round's array only) keeps the
//             result deterministic under parallelism. No order is
//             produced (approx values admit no k-order).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/dynamic_graph.h"
#include "support/types.h"
#include "sync/thread_team.h"

namespace parcore {

enum class DecomposeMode { kExact, kApprox };

struct DecomposeOptions {
  int workers = 4;
  DecomposeMode mode = DecomposeMode::kExact;
  /// kApprox only: maximum h-index rounds. 0 = iterate to fixpoint
  /// (exact coreness); N > 0 stops after N rounds with an upper bound.
  int max_rounds = 0;
};

struct BulkDecomposition {
  std::vector<CoreValue> core;
  /// kExact: a valid k-order instance (non-decreasing core numbers,
  /// dout(v) <= core(v) along it) — feedable to
  /// CoreState::initialize_from_order. Empty in kApprox mode.
  std::vector<VertexId> order;
  CoreValue max_core = 0;
  /// kExact: frontier sub-rounds executed; kApprox: h-index rounds.
  std::size_t rounds = 0;
  /// True when `core` is the exact coreness: always for kExact, and for
  /// kApprox when the iteration reached its fixpoint within max_rounds.
  bool exact = true;
};

/// Decomposes `g` on `team` with opts.workers (clamped to the team).
/// Deterministic for a given (graph, mode, max_rounds) regardless of
/// worker count.
BulkDecomposition parallel_decompose(const DynamicGraph& g, ThreadTeam& team,
                                     const DecomposeOptions& opts);

}  // namespace parcore
