#include "decomp/park.h"

#include <atomic>
#include <memory>

namespace parcore {

std::vector<CoreValue> park_decompose(const DynamicGraph& g, ThreadTeam& team,
                                      int workers) {
  const std::size_t n = g.num_vertices();
  std::vector<CoreValue> core(n, 0);
  if (n == 0) return core;

  auto deg = std::make_unique<std::atomic<std::int64_t>[]>(n);
  for (VertexId v = 0; v < n; ++v)
    deg[v].store(static_cast<std::int64_t>(g.degree(v)),
                 std::memory_order_relaxed);

  std::atomic<std::size_t> processed{0};
  std::vector<VertexId> frontier;
  frontier.reserve(n);
  std::vector<std::vector<VertexId>> local_next(
      static_cast<std::size_t>(team.max_workers()));

  CoreValue level = 0;
  while (processed.load(std::memory_order_relaxed) < n) {
    // Build the level's initial frontier: all unprocessed v with
    // deg <= level. (deg is set to -1 once claimed.)
    frontier.clear();
    for (VertexId v = 0; v < n; ++v) {
      const std::int64_t dv = deg[v].load(std::memory_order_relaxed);
      if (dv >= 0 && dv <= level) frontier.push_back(v);
    }

    while (!frontier.empty()) {
      std::atomic<std::size_t> next_index{0};
      team.run(workers, [&](int w) {
        auto& next = local_next[static_cast<std::size_t>(w)];
        next.clear();
        for (;;) {
          const std::size_t i =
              next_index.fetch_add(1, std::memory_order_relaxed);
          if (i >= frontier.size()) break;
          const VertexId v = frontier[i];
          // Claim v: deg -> -1. May race with nothing (v appears once in
          // the frontier), but guard anyway for the scan/cascade overlap.
          std::int64_t dv = deg[v].load(std::memory_order_relaxed);
          if (dv < 0) continue;
          if (!deg[v].compare_exchange_strong(dv, -1,
                                              std::memory_order_acq_rel))
            continue;
          core[v] = level;
          processed.fetch_add(1, std::memory_order_relaxed);
          for (VertexId u : g.neighbors(v)) {
            // Decrement deg[u] unless it is already <= level or claimed.
            std::int64_t du = deg[u].load(std::memory_order_relaxed);
            for (;;) {
              if (du <= level) break;  // claimed (-1) or already peelable
              if (deg[u].compare_exchange_weak(du, du - 1,
                                               std::memory_order_acq_rel)) {
                if (du - 1 == level) next.push_back(u);
                break;
              }
            }
          }
        }
      });
      frontier.clear();
      for (auto& next : local_next) {
        frontier.insert(frontier.end(), next.begin(), next.end());
        next.clear();
      }
    }
    ++level;
  }
  return core;
}

}  // namespace parcore
