// ParK / PKC-style parallel static core decomposition (paper §2.1,
// Dasari et al. / Kabir & Madduri): level-synchronous peeling with
// atomic degree decrements. Used to initialise large graphs faster than
// sequential BZ and as a decomposition ablation. Produces core numbers
// only (no deterministic peel order).
#pragma once

#include <vector>

#include "graph/dynamic_graph.h"
#include "support/types.h"
#include "sync/thread_team.h"

namespace parcore {

std::vector<CoreValue> park_decompose(const DynamicGraph& g, ThreadTeam& team,
                                      int workers);

}  // namespace parcore
