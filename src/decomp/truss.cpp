#include "decomp/truss.h"

#include <algorithm>

namespace parcore {
namespace {

/// Sorted adjacency snapshot for fast triangle enumeration.
std::vector<std::vector<VertexId>> sorted_adjacency(const DynamicGraph& g) {
  std::vector<std::vector<VertexId>> adj(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto nbrs = g.neighbors(v);
    adj[v].assign(nbrs.begin(), nbrs.end());
    std::sort(adj[v].begin(), adj[v].end());
  }
  return adj;
}

/// Calls fn(w) for every common neighbour w of u and v.
template <typename Fn>
void for_common_neighbors(const std::vector<std::vector<VertexId>>& adj,
                          VertexId u, VertexId v, Fn&& fn) {
  const auto& a = adj[u];
  const auto& b = adj[v];
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      fn(a[i]);
      ++i;
      ++j;
    }
  }
}

}  // namespace

CoreValue TrussDecomposition::of(Edge e) const {
  auto it = index.find(edge_key(e));
  return it == index.end() ? 0 : trussness[it->second];
}

TrussDecomposition truss_decompose(const DynamicGraph& g) {
  TrussDecomposition d;
  d.edges = g.edges();
  const std::size_t m = d.edges.size();
  d.trussness.assign(m, 2);
  d.index.reserve(2 * m);
  for (std::size_t i = 0; i < m; ++i) d.index[edge_key(d.edges[i])] = i;
  if (m == 0) return d;

  auto adj = sorted_adjacency(g);

  // Support (triangle count) per edge.
  std::vector<std::int64_t> support(m, 0);
  std::int64_t max_support = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const Edge e = d.edges[i];
    std::int64_t s = 0;
    for_common_neighbors(adj, e.u, e.v, [&](VertexId) { ++s; });
    support[i] = s;
    max_support = std::max(max_support, s);
  }

  // Bucket sort edges by support and peel in increasing order.
  std::vector<std::size_t> bin(static_cast<std::size_t>(max_support) + 2, 0);
  for (std::size_t i = 0; i < m; ++i)
    ++bin[static_cast<std::size_t>(support[i])];
  std::size_t start = 0;
  for (std::size_t s = 0; s < bin.size(); ++s) {
    const std::size_t count = bin[s];
    bin[s] = start;
    start += count;
  }
  std::vector<std::size_t> order(m);  // edge indices sorted by support
  std::vector<std::size_t> pos(m);
  for (std::size_t i = 0; i < m; ++i) {
    pos[i] = bin[static_cast<std::size_t>(support[i])]++;
    order[pos[i]] = i;
  }
  for (std::size_t s = bin.size() - 1; s >= 1; --s) bin[s] = bin[s - 1];
  bin[0] = 0;

  std::vector<bool> peeled(m, false);
  auto lower_support = [&](std::size_t idx, std::int64_t floor_s) {
    // Move edge idx one support bucket down (not below floor_s).
    if (support[idx] <= floor_s) return;
    const auto s = static_cast<std::size_t>(support[idx]);
    const std::size_t first = bin[s];
    const std::size_t other = order[first];
    if (other != idx) {
      std::swap(order[first], order[pos[idx]]);
      std::swap(pos[other], pos[idx]);
    }
    ++bin[s];
    --support[idx];
  };

  CoreValue level = 2;
  for (std::size_t p = 0; p < m; ++p) {
    const std::size_t i = order[p];
    level = std::max<CoreValue>(level,
                                static_cast<CoreValue>(support[i]) + 2);
    d.trussness[i] = level;
    peeled[i] = true;
    const Edge e = d.edges[i];
    const std::int64_t floor_s = support[i];
    for_common_neighbors(adj, e.u, e.v, [&](VertexId w) {
      auto uw = d.index.find(edge_key(Edge{e.u, w}));
      auto vw = d.index.find(edge_key(Edge{e.v, w}));
      if (uw == d.index.end() || vw == d.index.end()) return;
      if (peeled[uw->second] || peeled[vw->second]) return;
      lower_support(uw->second, floor_s);
      lower_support(vw->second, floor_s);
    });
  }
  d.max_truss = level;
  return d;
}

TrussDecomposition brute_force_truss(const DynamicGraph& g) {
  TrussDecomposition d;
  d.edges = g.edges();
  const std::size_t m = d.edges.size();
  d.trussness.assign(m, 2);
  d.index.reserve(2 * m);
  for (std::size_t i = 0; i < m; ++i) d.index[edge_key(d.edges[i])] = i;
  if (m == 0) return d;

  // For k = 3, 4, ...: repeatedly delete edges with < k-2 triangles in
  // the surviving subgraph; survivors have trussness >= k.
  std::vector<bool> alive(m, true);
  // Compact arena copy (DESIGN.md §8): the peeling scratch graph starts
  // with exact-class slabs and zero slack.
  DynamicGraph work = g;
  auto adj = sorted_adjacency(work);
  for (CoreValue k = 3;; ++k) {
    bool changed = true;
    bool any_alive = false;
    while (changed) {
      changed = false;
      adj = sorted_adjacency(work);
      for (std::size_t i = 0; i < m; ++i) {
        if (!alive[i]) continue;
        const Edge e = d.edges[i];
        std::int64_t s = 0;
        for_common_neighbors(adj, e.u, e.v, [&](VertexId) { ++s; });
        if (s < k - 2) {
          alive[i] = false;
          work.remove_edge(e.u, e.v);
          changed = true;
        }
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (alive[i]) {
        d.trussness[i] = k;
        any_alive = true;
      }
    }
    if (!any_alive) break;
  }
  for (CoreValue t : d.trussness) d.max_truss = std::max(d.max_truss, t);
  return d;
}

}  // namespace parcore
