#include "decomp/core_query.h"

#include <algorithm>
#include <deque>

namespace parcore {

std::vector<VertexId> k_core_members(const std::vector<CoreValue>& cores,
                                     CoreValue k) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < cores.size(); ++v)
    if (cores[v] >= k) out.push_back(v);
  return out;
}

CoreSummary summarize_cores(const std::vector<CoreValue>& cores) {
  CoreSummary s;
  for (CoreValue c : cores) s.max_core = std::max(s.max_core, c);
  s.histogram.assign(static_cast<std::size_t>(s.max_core) + 1, 0);
  for (CoreValue c : cores) ++s.histogram[static_cast<std::size_t>(c)];
  s.degeneracy_core_size =
      s.histogram[static_cast<std::size_t>(s.max_core)];
  return s;
}

std::vector<VertexId> subcore_of(const DynamicGraph& g,
                                 const std::vector<CoreValue>& cores,
                                 VertexId u) {
  std::vector<VertexId> out;
  if (u >= g.num_vertices()) return out;
  const CoreValue k = cores[u];
  std::vector<bool> seen(g.num_vertices(), false);
  std::deque<VertexId> queue{u};
  seen[u] = true;
  while (!queue.empty()) {
    const VertexId w = queue.front();
    queue.pop_front();
    out.push_back(w);
    for (VertexId x : g.neighbors(w)) {
      if (!seen[x] && cores[x] == k) {
        seen[x] = true;
        queue.push_back(x);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<VertexId>> all_subcores(
    const DynamicGraph& g, const std::vector<CoreValue>& cores) {
  std::vector<std::vector<VertexId>> out;
  std::vector<bool> seen(g.num_vertices(), false);
  std::deque<VertexId> queue;
  for (VertexId root = 0; root < g.num_vertices(); ++root) {
    if (seen[root]) continue;
    const CoreValue k = cores[root];
    seen[root] = true;
    queue.clear();
    queue.push_back(root);
    std::vector<VertexId> comp;
    while (!queue.empty()) {
      const VertexId w = queue.front();
      queue.pop_front();
      comp.push_back(w);
      for (VertexId x : g.neighbors(w)) {
        if (!seen[x] && cores[x] == k) {
          seen[x] = true;
          queue.push_back(x);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    out.push_back(std::move(comp));
  }
  return out;
}

std::vector<VertexId> degeneracy_order(const std::vector<CoreValue>& cores) {
  std::vector<VertexId> order(cores.size());
  for (VertexId v = 0; v < cores.size(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return cores[a] < cores[b];
  });
  return order;
}

Coloring degeneracy_coloring(const DynamicGraph& g,
                             const std::vector<CoreValue>& cores) {
  Coloring result;
  const std::size_t n = g.num_vertices();
  result.color.assign(n, 0);
  if (n == 0) return result;

  // Colour in REVERSE degeneracy order: when v is coloured, at most
  // core(v) <= degeneracy of its neighbours are already coloured.
  std::vector<VertexId> order = degeneracy_order(cores);
  std::vector<bool> colored(n, false);
  std::vector<std::uint32_t> used;  // scratch: colours seen at v
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const VertexId v = *it;
    used.clear();
    for (VertexId u : g.neighbors(v))
      if (colored[u]) used.push_back(result.color[u]);
    std::sort(used.begin(), used.end());
    std::uint32_t c = 0;
    for (std::uint32_t taken : used) {
      if (taken > c) break;
      if (taken == c) ++c;
    }
    result.color[v] = c;
    colored[v] = true;
    result.colors_used = std::max(result.colors_used, c + 1);
  }
  return result;
}

DynamicGraph k_core_subgraph(const DynamicGraph& g,
                             const std::vector<CoreValue>& cores, CoreValue k,
                             std::vector<VertexId>* mapping) {
  std::vector<VertexId> map(g.num_vertices(), kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (cores[v] >= k) map[v] = next++;
  std::vector<Edge> edges;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (map[v] == kInvalidVertex) continue;
    for (VertexId u : g.neighbors(v))
      if (v < u && map[u] != kInvalidVertex)
        edges.push_back(Edge{map[v], map[u]});
  }
  DynamicGraph sub = DynamicGraph::from_edges(next, edges);
  if (mapping != nullptr) *mapping = std::move(map);
  return sub;
}

}  // namespace parcore
