#include "decomp/core_query.h"

#include <algorithm>
#include <deque>

namespace parcore {

namespace {

// Uniform read adapter over the two core sources. Every public
// overload pair dispatches into one template below, which is what
// makes vector and CoreView results bit-identical by construction.
struct VecCores {
  const std::vector<CoreValue>& c;
  std::size_t size() const { return c.size(); }
  CoreValue at(VertexId v) const { return c[v]; }
};
struct ViewCores {
  const query::CoreView& v;
  std::size_t size() const { return v.size(); }
  CoreValue at(VertexId x) const { return v.core(x); }
};

template <typename Cores>
std::vector<VertexId> k_core_members_impl(const Cores& cores, CoreValue k) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < cores.size(); ++v)
    if (cores.at(v) >= k) out.push_back(v);
  return out;
}

template <typename Cores>
CoreSummary summarize_cores_impl(const Cores& cores) {
  CoreSummary s;
  // Empty input: return the empty summary as-is (empty histogram). The
  // old code allocated histogram = {0} here, making a 0-vertex input
  // indistinguishable from an all-core-0 graph.
  if (cores.size() == 0) return s;
  for (VertexId v = 0; v < cores.size(); ++v)
    s.max_core = std::max(s.max_core, cores.at(v));
  s.histogram.assign(static_cast<std::size_t>(s.max_core) + 1, 0);
  for (VertexId v = 0; v < cores.size(); ++v)
    ++s.histogram[static_cast<std::size_t>(cores.at(v))];
  s.degeneracy_core_size =
      s.histogram[static_cast<std::size_t>(s.max_core)];
  return s;
}

// Graph walks index the core source with graph-derived ids, so the
// traversal domain is the intersection of both: vertices past either
// bound are out of scope, never an out-of-bounds read (ISSUE 5: a
// snapshot core vector paired with a newer/older graph).
template <typename Cores>
std::size_t walk_limit(const DynamicGraph& g, const Cores& cores) {
  return std::min(static_cast<std::size_t>(g.num_vertices()), cores.size());
}

template <typename Cores>
std::vector<VertexId> subcore_of_impl(const DynamicGraph& g,
                                      const Cores& cores, VertexId u) {
  std::vector<VertexId> out;
  const std::size_t limit = walk_limit(g, cores);
  if (u >= limit) return out;
  const CoreValue k = cores.at(u);
  std::vector<bool> seen(limit, false);
  std::deque<VertexId> queue{u};
  seen[u] = true;
  while (!queue.empty()) {
    const VertexId w = queue.front();
    queue.pop_front();
    out.push_back(w);
    for (VertexId x : g.neighbors(w)) {
      if (x >= limit) continue;
      if (!seen[x] && cores.at(x) == k) {
        seen[x] = true;
        queue.push_back(x);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

template <typename Cores>
std::vector<std::vector<VertexId>> all_subcores_impl(const DynamicGraph& g,
                                                     const Cores& cores) {
  std::vector<std::vector<VertexId>> out;
  const std::size_t limit = walk_limit(g, cores);
  std::vector<bool> seen(limit, false);
  std::deque<VertexId> queue;
  for (VertexId root = 0; root < limit; ++root) {
    if (seen[root]) continue;
    const CoreValue k = cores.at(root);
    seen[root] = true;
    queue.clear();
    queue.push_back(root);
    std::vector<VertexId> comp;
    while (!queue.empty()) {
      const VertexId w = queue.front();
      queue.pop_front();
      comp.push_back(w);
      for (VertexId x : g.neighbors(w)) {
        if (x >= limit) continue;
        if (!seen[x] && cores.at(x) == k) {
          seen[x] = true;
          queue.push_back(x);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    out.push_back(std::move(comp));
  }
  return out;
}

template <typename Cores>
DynamicGraph k_core_subgraph_impl(const DynamicGraph& g, const Cores& cores,
                                  CoreValue k,
                                  std::vector<VertexId>* mapping) {
  const std::size_t limit = walk_limit(g, cores);
  std::vector<VertexId> map(g.num_vertices(), kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < limit; ++v)
    if (cores.at(v) >= k) map[v] = next++;
  std::vector<Edge> edges;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (map[v] == kInvalidVertex) continue;
    for (VertexId u : g.neighbors(v))
      if (v < u && u < g.num_vertices() && map[u] != kInvalidVertex)
        edges.push_back(Edge{map[v], map[u]});
  }
  DynamicGraph sub = DynamicGraph::from_edges(next, edges);
  if (mapping != nullptr) *mapping = std::move(map);
  return sub;
}

}  // namespace

std::vector<VertexId> k_core_members(const std::vector<CoreValue>& cores,
                                     CoreValue k) {
  return k_core_members_impl(VecCores{cores}, k);
}
std::vector<VertexId> k_core_members(const query::CoreView& cores,
                                     CoreValue k) {
  return k_core_members_impl(ViewCores{cores}, k);
}

CoreSummary summarize_cores(const std::vector<CoreValue>& cores) {
  return summarize_cores_impl(VecCores{cores});
}
CoreSummary summarize_cores(const query::CoreView& cores) {
  return summarize_cores_impl(ViewCores{cores});
}

std::vector<VertexId> subcore_of(const DynamicGraph& g,
                                 const std::vector<CoreValue>& cores,
                                 VertexId u) {
  return subcore_of_impl(g, VecCores{cores}, u);
}
std::vector<VertexId> subcore_of(const DynamicGraph& g,
                                 const query::CoreView& cores, VertexId u) {
  return subcore_of_impl(g, ViewCores{cores}, u);
}

std::vector<std::vector<VertexId>> all_subcores(
    const DynamicGraph& g, const std::vector<CoreValue>& cores) {
  return all_subcores_impl(g, VecCores{cores});
}
std::vector<std::vector<VertexId>> all_subcores(const DynamicGraph& g,
                                                const query::CoreView& cores) {
  return all_subcores_impl(g, ViewCores{cores});
}

DynamicGraph k_core_subgraph(const DynamicGraph& g,
                             const std::vector<CoreValue>& cores, CoreValue k,
                             std::vector<VertexId>* mapping) {
  return k_core_subgraph_impl(g, VecCores{cores}, k, mapping);
}
DynamicGraph k_core_subgraph(const DynamicGraph& g,
                             const query::CoreView& cores, CoreValue k,
                             std::vector<VertexId>* mapping) {
  return k_core_subgraph_impl(g, ViewCores{cores}, k, mapping);
}

std::vector<VertexId> degeneracy_order(const std::vector<CoreValue>& cores) {
  std::vector<VertexId> order(cores.size());
  for (VertexId v = 0; v < cores.size(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return cores[a] < cores[b];
  });
  return order;
}

Coloring degeneracy_coloring(const DynamicGraph& g,
                             const std::vector<CoreValue>& cores) {
  Coloring result;
  const std::size_t n = g.num_vertices();
  result.color.assign(n, 0);
  if (n == 0) return result;

  // Colour in REVERSE degeneracy order: when v is coloured, at most
  // core(v) <= degeneracy of its neighbours are already coloured.
  std::vector<VertexId> order = degeneracy_order(cores);
  std::vector<bool> colored(n, false);
  std::vector<std::uint32_t> used;  // scratch: colours seen at v
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const VertexId v = *it;
    used.clear();
    for (VertexId u : g.neighbors(v))
      if (colored[u]) used.push_back(result.color[u]);
    std::sort(used.begin(), used.end());
    std::uint32_t c = 0;
    for (std::uint32_t taken : used) {
      if (taken > c) break;
      if (taken == c) ++c;
    }
    result.color[v] = c;
    colored[v] = true;
    result.colors_used = std::max(result.colors_used, c + 1);
  }
  return result;
}

}  // namespace parcore
