#include "decomp/parallel_peel.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

namespace parcore {

namespace {

// Single-worker specialization of exact_peel: the identical algorithm
// (same frontiers, same sub-round structure, same order) with plain
// loads/stores instead of atomics and no team dispatch. One thread
// never races, so every `lock`-prefixed RMW and barrier in the generic
// path is pure overhead — dropping them is what lets the peel beat
// BZ's bucket maintenance (which pays 3-4 random writes per decrement
// to keep pos/vert/bin coherent; the frontier peel writes only deg).
BulkDecomposition exact_peel_seq(const DynamicGraph& g) {
  BulkDecomposition out;
  const std::size_t n = g.num_vertices();
  out.core.assign(n, 0);
  if (n == 0) return out;
  out.order.reserve(n);

  std::vector<std::int64_t> deg(n);
  for (std::size_t v = 0; v < n; ++v)
    deg[v] = static_cast<std::int64_t>(g.degree(v));

  std::vector<VertexId> frontier, next;
  frontier.reserve(256);
  next.reserve(256);

  std::size_t processed = 0;
  CoreValue level = 0;
  while (processed < n) {
    frontier.clear();
    for (std::size_t v = 0; v < n; ++v)
      if (deg[v] >= 0 && deg[v] <= level)
        frontier.push_back(static_cast<VertexId>(v));

    while (!frontier.empty()) {
      out.order.insert(out.order.end(), frontier.begin(), frontier.end());
      processed += frontier.size();
      ++out.rounds;
      next.clear();
      for (const VertexId v : frontier) {
        deg[v] = -1;
        out.core[v] = level;
        for (VertexId u : g.neighbors(v)) {
          const std::int64_t du = deg[u];
          if (du <= level) continue;  // claimed (-1) or already peelable
          deg[u] = du - 1;
          if (du - 1 == level) next.push_back(u);
        }
      }
      frontier.swap(next);
      std::sort(frontier.begin(), frontier.end());
    }
    ++level;
  }
  out.max_core = level > 0 ? level - 1 : 0;
  return out;
}

// Exact mode: level-synchronous frontier peeling (park.h's scheme) that
// also records the peel order. Vertices are appended to `order` one
// frontier at a time — (level, sub-round, id) — before the frontier is
// processed. Frontier membership is deterministic regardless of worker
// count: the set of degree decrements inside one sub-round is fixed by
// the frontier (a barrier separates sub-rounds), so the set of vertices
// whose degree lands exactly on `level` is fixed too; sorting each
// frontier by id then pins the sequence completely.
BulkDecomposition exact_peel(const DynamicGraph& g, ThreadTeam& team,
                             int workers) {
  BulkDecomposition out;
  const std::size_t n = g.num_vertices();
  out.core.assign(n, 0);
  if (n == 0) return out;
  out.order.reserve(n);

  auto deg = std::make_unique<std::atomic<std::int64_t>[]>(n);
  parallel_for(team, workers, 0, n, [&](std::size_t v) {
    deg[v].store(static_cast<std::int64_t>(g.degree(v)),
                 std::memory_order_relaxed);
  });

  // Per-worker buffers: `local_scan` collects the level's initial
  // frontier from contiguous id stripes (concatenating them in worker
  // order keeps the frontier id-sorted with no sort); `local_next`
  // collects cascade discoveries (merged + sorted before the next
  // sub-round).
  const auto max_workers = static_cast<std::size_t>(team.max_workers());
  std::vector<std::vector<VertexId>> local_scan(max_workers);
  std::vector<std::vector<VertexId>> local_next(max_workers);
  std::vector<VertexId> frontier;
  frontier.reserve(256);

  std::size_t processed = 0;
  CoreValue level = 0;
  while (processed < n) {
    // Initial frontier: all unprocessed v with deg <= level (deg is -1
    // once claimed). Striped scan, stripes concatenated in id order.
    const std::size_t stripe =
        (n + static_cast<std::size_t>(workers) - 1) /
        static_cast<std::size_t>(workers);
    team.run(workers, [&](int w) {
      auto& local = local_scan[static_cast<std::size_t>(w)];
      local.clear();
      const std::size_t begin = static_cast<std::size_t>(w) * stripe;
      const std::size_t end = std::min(n, begin + stripe);
      for (std::size_t v = begin; v < end; ++v) {
        const std::int64_t dv = deg[v].load(std::memory_order_relaxed);
        if (dv >= 0 && dv <= level)
          local.push_back(static_cast<VertexId>(v));
      }
    });
    frontier.clear();
    for (int w = 0; w < workers; ++w) {
      auto& local = local_scan[static_cast<std::size_t>(w)];
      frontier.insert(frontier.end(), local.begin(), local.end());
      local.clear();
    }

    while (!frontier.empty()) {
      // The whole frontier is claimed this sub-round; its id-sorted
      // sequence is the next run of the peel order.
      out.order.insert(out.order.end(), frontier.begin(), frontier.end());
      processed += frontier.size();
      ++out.rounds;

      std::atomic<std::size_t> next_index{0};
      team.run(workers, [&](int w) {
        auto& next = local_next[static_cast<std::size_t>(w)];
        for (;;) {
          const std::size_t i =
              next_index.fetch_add(1, std::memory_order_relaxed);
          if (i >= frontier.size()) break;
          const VertexId v = frontier[i];
          // Claim v (deg -> -1). Every vertex enters exactly one
          // frontier, so the CAS cannot lose; guard anyway.
          std::int64_t dv = deg[v].load(std::memory_order_relaxed);
          if (dv < 0) continue;
          if (!deg[v].compare_exchange_strong(dv, -1,
                                              std::memory_order_acq_rel))
            continue;
          out.core[v] = level;
          for (VertexId u : g.neighbors(v)) {
            // Decrement deg[u] unless already <= level or claimed.
            std::int64_t du = deg[u].load(std::memory_order_relaxed);
            for (;;) {
              if (du <= level) break;  // claimed (-1) or already peelable
              if (deg[u].compare_exchange_weak(du, du - 1,
                                               std::memory_order_acq_rel)) {
                if (du - 1 == level) next.push_back(u);
                break;
              }
            }
          }
        }
      });
      frontier.clear();
      for (auto& next : local_next) {
        frontier.insert(frontier.end(), next.begin(), next.end());
        next.clear();
      }
      std::sort(frontier.begin(), frontier.end());
    }
    ++level;
  }
  out.max_core = level > 0 ? level - 1 : 0;
  return out;
}

// Approx mode: Jacobi h-index iteration. next[v] = H({cur[u]}) reads
// only the previous round's array, so the result is independent of
// worker interleaving; values decrease monotonically and stay upper
// bounds on the coreness at every round.
BulkDecomposition hindex_iterate(const DynamicGraph& g, ThreadTeam& team,
                                 int workers, int max_rounds) {
  BulkDecomposition out;
  const std::size_t n = g.num_vertices();
  out.core.assign(n, 0);
  out.exact = true;
  if (n == 0) return out;

  std::vector<CoreValue> cur(n), next(n);
  for (VertexId v = 0; v < n; ++v)
    cur[v] = static_cast<CoreValue>(g.degree(v));

  // Per-worker counting scratch for the O(d) h-index: values are
  // clamped at d, counted into [0, d], then swept downward until the
  // cumulative count of >=h values reaches h.
  const auto max_workers = static_cast<std::size_t>(team.max_workers());
  std::vector<std::vector<std::uint32_t>> scratch(max_workers);

  constexpr std::size_t kGrain = 512;
  bool changed = true;
  while (changed && (max_rounds <= 0 ||
                     out.rounds < static_cast<std::size_t>(max_rounds))) {
    std::atomic<bool> any{false};
    std::atomic<std::size_t> chunk{0};
    team.run(workers, [&](int w) {
      auto& count = scratch[static_cast<std::size_t>(w)];
      bool local_any = false;
      for (;;) {
        const std::size_t c = chunk.fetch_add(1, std::memory_order_relaxed);
        const std::size_t begin = c * kGrain;
        if (begin >= n) break;
        const std::size_t end = std::min(n, begin + kGrain);
        for (std::size_t v = begin; v < end; ++v) {
          const auto d = static_cast<std::size_t>(g.degree(v));
          if (count.size() < d + 1) count.resize(d + 1);
          std::fill(count.begin(), count.begin() + d + 1, 0u);
          for (VertexId u : g.neighbors(v)) {
            const auto cv = static_cast<std::size_t>(
                std::min(cur[u], static_cast<CoreValue>(d)));
            ++count[cv];
          }
          std::uint32_t acc = 0;
          CoreValue h = 0;
          for (std::size_t k = d; k > 0; --k) {
            acc += count[k];
            if (acc >= k) {
              h = static_cast<CoreValue>(k);
              break;
            }
          }
          next[v] = h;
          local_any |= (h != cur[v]);
        }
      }
      if (local_any) any.store(true, std::memory_order_relaxed);
    });
    ++out.rounds;
    changed = any.load(std::memory_order_relaxed);
    cur.swap(next);
  }
  // Stopped on the round cap with changes still pending: the values are
  // a sound upper bound, not the fixpoint.
  out.exact = !changed;
  out.core = std::move(cur);
  for (VertexId v = 0; v < n; ++v)
    out.max_core = std::max(out.max_core, out.core[v]);
  return out;
}

}  // namespace

BulkDecomposition parallel_decompose(const DynamicGraph& g, ThreadTeam& team,
                                     const DecomposeOptions& opts) {
  // Clamp to the team AND the machine: threads beyond the hardware only
  // timeshare, so every extra worker adds atomic/barrier cost and buys
  // zero parallelism. The result is worker-count independent (see
  // exact_peel), so the clamp changes cost only, never output.
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  const int workers =
      std::max(1, std::min({opts.workers, team.max_workers(), hw}));
  if (opts.mode == DecomposeMode::kExact)
    return workers == 1 ? exact_peel_seq(g) : exact_peel(g, team, workers);
  return hindex_iterate(g, team, workers, opts.max_rounds);
}

}  // namespace parcore
