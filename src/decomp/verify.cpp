#include "decomp/verify.h"

#include <deque>
#include <sstream>

namespace parcore {

std::vector<CoreValue> brute_force_cores(const DynamicGraph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<CoreValue> core(n, 0);
  std::vector<std::int64_t> deg(n);
  std::vector<bool> alive(n, true);
  std::size_t remaining = n;
  for (VertexId v = 0; v < n; ++v) deg[v] = static_cast<std::int64_t>(g.degree(v));

  CoreValue k = 0;
  std::deque<VertexId> queue;
  while (remaining > 0) {
    for (VertexId v = 0; v < n; ++v)
      if (alive[v] && deg[v] <= k) queue.push_back(v);
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      if (!alive[v]) continue;
      alive[v] = false;
      core[v] = k;
      --remaining;
      for (VertexId u : g.neighbors(v)) {
        if (alive[u] && --deg[u] <= k) queue.push_back(u);
      }
    }
    ++k;
  }
  return core;
}

bool verify_cores(const DynamicGraph& g, const std::vector<CoreValue>& cores,
                  std::string* error) {
  const std::vector<CoreValue> truth = brute_force_cores(g);
  if (cores.size() != truth.size()) {
    if (error) *error = "core vector size mismatch";
    return false;
  }
  for (VertexId v = 0; v < truth.size(); ++v) {
    if (cores[v] != truth[v]) {
      if (error) {
        std::ostringstream os;
        os << "vertex " << v << ": core " << cores[v] << ", expected "
           << truth[v];
        *error = os.str();
      }
      return false;
    }
  }
  return true;
}

bool verify_korder_bound(const DynamicGraph& g,
                         const std::vector<CoreValue>& cores,
                         const std::vector<std::size_t>& rank,
                         std::string* error) {
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::int64_t after = 0;
    for (VertexId u : g.neighbors(v))
      if (rank[v] < rank[u]) ++after;
    if (after > cores[v]) {
      if (error) {
        std::ostringstream os;
        os << "vertex " << v << ": " << after
           << " neighbours after it in k-order but core is " << cores[v];
        *error = os.str();
      }
      return false;
    }
  }
  return true;
}

}  // namespace parcore
