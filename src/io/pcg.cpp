#include "io/pcg.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include <unistd.h>

#include "io/checksum.h"
#include "io/io_error.h"

namespace parcore::io {

namespace {

// Header layout (40 bytes, little-endian):
//   bytes 0-3   magic "PCG1"
//   bytes 4-7   u32 version (1 = graph cache, 2 = checkpoint)
//   bytes 8-11  u32 flags (bit 0: timestamps present; v2 writes 0)
//   bytes 12-15 u32 reserved (0)
//   bytes 16-23 u64 num_vertices
//   bytes 24-31 u64 num_edges
//   bytes 32-39 u64 reserved (0)
// v1 payload: num_edges x (u32 u, u32 v), then num_edges x u64
// timestamps when bit 0 of flags is set.
// v2 payload: self-describing sections, each framed as
//   u32 tag, u32 reserved (0), u64 payload_len, payload, u32 crc32(payload)
// with exactly one each of META (u64 epoch, u64 reserved), EDGE
// (num_edges x u32 pair), CORE (num_vertices x i32) and ORDR
// (num_vertices x u32), in any order, and nothing after the last.
constexpr std::uint32_t kFlagTimestamps = 1u;
constexpr std::size_t kHeaderBytes = 40;
constexpr std::size_t kSectionHeaderBytes = 16;  // tag + reserved + len

constexpr std::uint32_t fourcc(const char (&s)[5]) {
  return static_cast<std::uint32_t>(s[0]) |
         static_cast<std::uint32_t>(s[1]) << 8 |
         static_cast<std::uint32_t>(s[2]) << 16 |
         static_cast<std::uint32_t>(s[3]) << 24;
}
constexpr std::uint32_t kSecMeta = fourcc("META");
constexpr std::uint32_t kSecEdge = fourcc("EDGE");
constexpr std::uint32_t kSecCore = fourcc("CORE");
constexpr std::uint32_t kSecOrdr = fourcc("ORDR");

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::string tag_name(std::uint32_t tag) {
  char s[5] = {static_cast<char>(tag & 0xff),
               static_cast<char>((tag >> 8) & 0xff),
               static_cast<char>((tag >> 16) & 0xff),
               static_cast<char>((tag >> 24) & 0xff), '\0'};
  for (char& c : s)
    if (c != '\0' && (c < 0x20 || c > 0x7e)) c = '?';
  return std::string(s);
}

std::string at_offset(std::uint64_t off) {
  return " at offset " + std::to_string(off);
}

void write_all(const File& f, const std::string& path, const void* data,
               std::size_t len, const char* what) {
  if (len > 0 && std::fwrite(data, 1, len, f.get()) != len)
    throw IoError(path, 0, std::string("write failed (") + what + ")");
}

/// Writes one framed v2 section: header, payload, payload CRC.
void write_section(const File& f, const std::string& path, std::uint32_t tag,
                   const void* payload, std::uint64_t len) {
  unsigned char head[kSectionHeaderBytes] = {};
  put_u32(head, tag);
  put_u64(head + 8, len);
  const std::string name = tag_name(tag);
  write_all(f, path, head, sizeof head, name.c_str());
  write_all(f, path, payload, static_cast<std::size_t>(len), name.c_str());
  unsigned char crc[4];
  put_u32(crc, crc32(payload, static_cast<std::size_t>(len)));
  write_all(f, path, crc, sizeof crc, name.c_str());
}

GraphData load_pcg_v1(const File& f, const std::string& path,
                      const unsigned char* header);
PcgCheckpoint load_pcg_v2(const File& f, const std::string& path,
                          const unsigned char* header);

}  // namespace

void save_pcg(const std::string& path, const GraphData& data) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) throw IoError(path, 0, "cannot open for writing");

  unsigned char header[kHeaderBytes] = {};
  std::memcpy(header, kPcgMagic, 4);
  put_u32(header + 4, kPcgVersion);
  put_u32(header + 8, data.has_timestamps ? kFlagTimestamps : 0);
  put_u64(header + 16, data.num_vertices);
  put_u64(header + 24, data.edges.size());
  if (std::fwrite(header, 1, kHeaderBytes, f.get()) != kHeaderBytes)
    throw IoError(path, 0, "write failed (header)");

  for (const TimestampedEdge& te : data.edges) {
    unsigned char rec[8];
    put_u32(rec, te.e.u);
    put_u32(rec + 4, te.e.v);
    if (std::fwrite(rec, 1, sizeof rec, f.get()) != sizeof rec)
      throw IoError(path, 0, "write failed (edges)");
  }
  if (data.has_timestamps) {
    for (const TimestampedEdge& te : data.edges) {
      unsigned char rec[8];
      put_u64(rec, te.time);
      if (std::fwrite(rec, 1, sizeof rec, f.get()) != sizeof rec)
        throw IoError(path, 0, "write failed (timestamps)");
    }
  }
  if (std::fflush(f.get()) != 0) throw IoError(path, 0, "flush failed");
}

GraphData load_pcg(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) throw IoError(path, 0, "cannot open for reading");

  unsigned char header[kHeaderBytes];
  if (std::fread(header, 1, kHeaderBytes, f.get()) != kHeaderBytes)
    throw IoError(path, 0, "truncated header (not a .pcg file?)");
  if (std::memcmp(header, kPcgMagic, 4) != 0)
    throw IoError(path, 0, "bad magic (not a .pcg file)");
  const std::uint32_t version = get_u32(header + 4);
  if (version == kPcgVersion) return load_pcg_v1(f, path, header);
  if (version == kPcgCheckpointVersion) {
    // A checkpoint degrades to its graph image: every dataset-driven
    // command accepts one as input (core/order sections still CRC-check).
    PcgCheckpoint ck = load_pcg_v2(f, path, header);
    GraphData data;
    data.num_vertices = ck.num_vertices;
    data.edges.reserve(ck.edges.size());
    for (const Edge& e : ck.edges) data.edges.push_back({e, 0});
    data.stats.data_lines = data.edges.size();
    data.stats.memory_footprint_bytes =
        data.edges.capacity() * sizeof(TimestampedEdge);
    return data;
  }
  throw IoError(path, 0,
                "unsupported .pcg version " + std::to_string(version) +
                    " (this build reads versions " +
                    std::to_string(kPcgVersion) + " and " +
                    std::to_string(kPcgCheckpointVersion) + ")");
}

namespace {

GraphData load_pcg_v1(const File& f, const std::string& path,
                      const unsigned char* header) {
  const std::uint32_t flags = get_u32(header + 8);
  if ((flags & ~kFlagTimestamps) != 0)
    throw IoError(path, 0, "unknown flag bits set");

  GraphData data;
  data.num_vertices = get_u64(header + 16);
  data.has_timestamps = (flags & kFlagTimestamps) != 0;
  const std::uint64_t num_edges = get_u64(header + 24);
  if (data.num_vertices > kInvalidVertex)
    throw IoError(path, 0, "num_vertices overflows the VertexId space");

  data.edges.resize(num_edges);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    unsigned char rec[8];
    if (std::fread(rec, 1, sizeof rec, f.get()) != sizeof rec)
      throw IoError(path, 0,
                    "truncated edge section (edge " + std::to_string(i) +
                        " of " + std::to_string(num_edges) + ")");
    TimestampedEdge& te = data.edges[i];
    te.e = Edge{get_u32(rec), get_u32(rec + 4)};
    if (te.e.u >= data.num_vertices || te.e.v >= data.num_vertices)
      throw IoError(path, 0,
                    "edge " + std::to_string(i) +
                        " references a vertex out of range");
  }
  if (data.has_timestamps) {
    for (std::uint64_t i = 0; i < num_edges; ++i) {
      unsigned char rec[8];
      if (std::fread(rec, 1, sizeof rec, f.get()) != sizeof rec)
        throw IoError(path, 0, "truncated timestamp section");
      data.edges[i].time = get_u64(rec);
    }
  }
  unsigned char extra;
  if (std::fread(&extra, 1, 1, f.get()) == 1)
    throw IoError(path, 0, "trailing bytes after declared payload");
  data.stats.data_lines = data.edges.size();
  // The edge array was sized exactly from the header in one pass; the
  // footprint it reports is therefore the minimum for this dataset.
  data.stats.memory_footprint_bytes =
      data.edges.capacity() * sizeof(TimestampedEdge);
  return data;
}

/// Reads one v2 section frame at `off` (the current file position),
/// CRC-checks the payload, and returns it. Every failure names the file
/// and the byte offset of the damage.
std::vector<unsigned char> read_section(const File& f, const std::string& path,
                                        std::uint64_t& off,
                                        std::uint32_t& tag_out) {
  unsigned char head[kSectionHeaderBytes];
  const std::size_t got = std::fread(head, 1, sizeof head, f.get());
  if (got != sizeof head)
    throw IoError(path, 0, "truncated section header" + at_offset(off));
  tag_out = get_u32(head);
  const std::uint64_t len = get_u64(head + 8);
  if (get_u32(head + 4) != 0)
    throw IoError(path, 0, "corrupt section header (reserved bits set)" +
                               at_offset(off));
  // 1 GiB sanity cap: a flipped length bit must not drive a huge
  // allocation before the CRC gets a chance to reject the section.
  if (len > (1ull << 30))
    throw IoError(path, 0,
                  "section " + tag_name(tag_out) + " declares implausible " +
                      std::to_string(len) + " bytes" + at_offset(off));
  std::vector<unsigned char> payload(static_cast<std::size_t>(len));
  if (len > 0 &&
      std::fread(payload.data(), 1, payload.size(), f.get()) != payload.size())
    throw IoError(path, 0,
                  "truncated section " + tag_name(tag_out) + at_offset(off));
  unsigned char crc_raw[4];
  if (std::fread(crc_raw, 1, sizeof crc_raw, f.get()) != sizeof crc_raw)
    throw IoError(path, 0,
                  "truncated section " + tag_name(tag_out) + at_offset(off));
  const std::uint32_t want = get_u32(crc_raw);
  const std::uint32_t have = crc32(payload.data(), payload.size());
  if (want != have)
    throw IoError(path, 0,
                  "section " + tag_name(tag_out) + " CRC mismatch" +
                      at_offset(off) + " (stored " + std::to_string(want) +
                      ", computed " + std::to_string(have) + ")");
  off += kSectionHeaderBytes + len + 4;
  return payload;
}

PcgCheckpoint load_pcg_v2(const File& f, const std::string& path,
                          const unsigned char* header) {
  if (get_u32(header + 8) != 0)
    throw IoError(path, 0, "unknown flag bits set");
  PcgCheckpoint ck;
  ck.num_vertices = get_u64(header + 16);
  const std::uint64_t num_edges = get_u64(header + 24);
  if (ck.num_vertices > kInvalidVertex)
    throw IoError(path, 0, "num_vertices overflows the VertexId space");

  bool seen_meta = false, seen_edge = false, seen_core = false,
       seen_ordr = false;
  std::uint64_t off = kHeaderBytes;
  for (;;) {
    // Peek for a clean EOF exactly at a section boundary.
    const int c = std::fgetc(f.get());
    if (c == EOF) break;
    std::ungetc(c, f.get());

    const std::uint64_t section_off = off;
    std::uint32_t tag = 0;
    const std::vector<unsigned char> payload = read_section(f, path, off, tag);
    auto expect_len = [&](std::uint64_t want, const char* what) {
      if (payload.size() != want)
        throw IoError(path, 0,
                      "section " + tag_name(tag) + " holds " +
                          std::to_string(payload.size()) + " bytes, expected " +
                          std::to_string(want) + " (" + what + ")" +
                          at_offset(section_off));
    };
    auto expect_once = [&](bool& seen) {
      if (seen)
        throw IoError(path, 0,
                      "duplicate section " + tag_name(tag) +
                          at_offset(section_off));
      seen = true;
    };
    if (tag == kSecMeta) {
      expect_once(seen_meta);
      expect_len(16, "epoch + reserved");
      ck.epoch = get_u64(payload.data());
    } else if (tag == kSecEdge) {
      expect_once(seen_edge);
      expect_len(num_edges * 8, "8 bytes per edge");
      ck.edges.resize(static_cast<std::size_t>(num_edges));
      for (std::uint64_t i = 0; i < num_edges; ++i) {
        const unsigned char* rec = payload.data() + i * 8;
        const Edge e{get_u32(rec), get_u32(rec + 4)};
        if (e.u >= ck.num_vertices || e.v >= ck.num_vertices || e.u == e.v)
          throw IoError(path, 0,
                        "edge " + std::to_string(i) +
                            " is degenerate or out of range" +
                            at_offset(section_off));
        ck.edges[static_cast<std::size_t>(i)] = e;
      }
    } else if (tag == kSecCore) {
      expect_once(seen_core);
      expect_len(ck.num_vertices * 4, "4 bytes per vertex");
      ck.core.resize(static_cast<std::size_t>(ck.num_vertices));
      for (std::uint64_t v = 0; v < ck.num_vertices; ++v) {
        const std::int32_t k =
            static_cast<std::int32_t>(get_u32(payload.data() + v * 4));
        if (k < 0)
          throw IoError(path, 0,
                        "vertex " + std::to_string(v) + " has negative core" +
                            at_offset(section_off));
        ck.core[static_cast<std::size_t>(v)] = k;
      }
    } else if (tag == kSecOrdr) {
      expect_once(seen_ordr);
      expect_len(ck.num_vertices * 4, "4 bytes per vertex");
      ck.order.resize(static_cast<std::size_t>(ck.num_vertices));
      for (std::uint64_t i = 0; i < ck.num_vertices; ++i) {
        const VertexId v = get_u32(payload.data() + i * 4);
        if (v >= ck.num_vertices)
          throw IoError(path, 0,
                        "order entry " + std::to_string(i) + " out of range" +
                            at_offset(section_off));
        ck.order[static_cast<std::size_t>(i)] = v;
      }
    } else {
      throw IoError(path, 0,
                    "unknown section '" + tag_name(tag) + "'" +
                        at_offset(section_off));
    }
  }
  auto require = [&](bool seen, const char* name) {
    if (!seen)
      throw IoError(path, 0,
                    std::string("missing section ") + name + at_offset(off));
  };
  require(seen_meta, "META");
  require(seen_edge, "EDGE");
  require(seen_core, "CORE");
  require(seen_ordr, "ORDR");
  return ck;
}

}  // namespace

void save_pcg_checkpoint(const std::string& path, const PcgCheckpoint& ck,
                         bool sync) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) throw IoError(path, 0, "cannot open for writing");

  unsigned char header[kHeaderBytes] = {};
  std::memcpy(header, kPcgMagic, 4);
  put_u32(header + 4, kPcgCheckpointVersion);
  put_u64(header + 16, ck.num_vertices);
  put_u64(header + 24, ck.edges.size());
  write_all(f, path, header, sizeof header, "header");

  std::vector<unsigned char> buf;
  buf.resize(16);
  put_u64(buf.data(), ck.epoch);
  put_u64(buf.data() + 8, 0);
  write_section(f, path, kSecMeta, buf.data(), buf.size());

  buf.resize(ck.edges.size() * 8);
  for (std::size_t i = 0; i < ck.edges.size(); ++i) {
    put_u32(buf.data() + i * 8, ck.edges[i].u);
    put_u32(buf.data() + i * 8 + 4, ck.edges[i].v);
  }
  write_section(f, path, kSecEdge, buf.data(), buf.size());

  buf.resize(ck.core.size() * 4);
  for (std::size_t v = 0; v < ck.core.size(); ++v)
    put_u32(buf.data() + v * 4, static_cast<std::uint32_t>(ck.core[v]));
  write_section(f, path, kSecCore, buf.data(), buf.size());

  buf.resize(ck.order.size() * 4);
  for (std::size_t i = 0; i < ck.order.size(); ++i)
    put_u32(buf.data() + i * 4, ck.order[i]);
  write_section(f, path, kSecOrdr, buf.data(), buf.size());

  if (std::fflush(f.get()) != 0) throw IoError(path, 0, "flush failed");
  if (sync && ::fsync(fileno(f.get())) != 0)
    throw IoError(path, 0, "fsync failed");
}

PcgCheckpoint load_pcg_checkpoint(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) throw IoError(path, 0, "cannot open for reading");
  unsigned char header[kHeaderBytes];
  if (std::fread(header, 1, kHeaderBytes, f.get()) != kHeaderBytes)
    throw IoError(path, 0, "truncated header (not a .pcg checkpoint?)");
  if (std::memcmp(header, kPcgMagic, 4) != 0)
    throw IoError(path, 0, "bad magic (not a .pcg file)");
  const std::uint32_t version = get_u32(header + 4);
  if (version != kPcgCheckpointVersion)
    throw IoError(path, 0,
                  ".pcg version " + std::to_string(version) +
                      " is not a checkpoint (expected version " +
                      std::to_string(kPcgCheckpointVersion) + ")");
  return load_pcg_v2(f, path, header);
}

}  // namespace parcore::io
