#include "io/pcg.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "io/io_error.h"

namespace parcore::io {

namespace {

// Header layout (40 bytes, little-endian):
//   bytes 0-3   magic "PCG1"
//   bytes 4-7   u32 version
//   bytes 8-11  u32 flags (bit 0: timestamps present)
//   bytes 12-15 u32 reserved (0)
//   bytes 16-23 u64 num_vertices
//   bytes 24-31 u64 num_edges
//   bytes 32-39 u64 reserved (0)
// Payload: num_edges x (u32 u, u32 v), then num_edges x u64 timestamps
// when bit 0 of flags is set.
constexpr std::uint32_t kFlagTimestamps = 1u;
constexpr std::size_t kHeaderBytes = 40;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void save_pcg(const std::string& path, const GraphData& data) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) throw IoError(path, 0, "cannot open for writing");

  unsigned char header[kHeaderBytes] = {};
  std::memcpy(header, kPcgMagic, 4);
  put_u32(header + 4, kPcgVersion);
  put_u32(header + 8, data.has_timestamps ? kFlagTimestamps : 0);
  put_u64(header + 16, data.num_vertices);
  put_u64(header + 24, data.edges.size());
  if (std::fwrite(header, 1, kHeaderBytes, f.get()) != kHeaderBytes)
    throw IoError(path, 0, "write failed (header)");

  for (const TimestampedEdge& te : data.edges) {
    unsigned char rec[8];
    put_u32(rec, te.e.u);
    put_u32(rec + 4, te.e.v);
    if (std::fwrite(rec, 1, sizeof rec, f.get()) != sizeof rec)
      throw IoError(path, 0, "write failed (edges)");
  }
  if (data.has_timestamps) {
    for (const TimestampedEdge& te : data.edges) {
      unsigned char rec[8];
      put_u64(rec, te.time);
      if (std::fwrite(rec, 1, sizeof rec, f.get()) != sizeof rec)
        throw IoError(path, 0, "write failed (timestamps)");
    }
  }
  if (std::fflush(f.get()) != 0) throw IoError(path, 0, "flush failed");
}

GraphData load_pcg(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) throw IoError(path, 0, "cannot open for reading");

  unsigned char header[kHeaderBytes];
  if (std::fread(header, 1, kHeaderBytes, f.get()) != kHeaderBytes)
    throw IoError(path, 0, "truncated header (not a .pcg file?)");
  if (std::memcmp(header, kPcgMagic, 4) != 0)
    throw IoError(path, 0, "bad magic (not a .pcg file)");
  const std::uint32_t version = get_u32(header + 4);
  if (version != kPcgVersion)
    throw IoError(path, 0,
                  "unsupported .pcg version " + std::to_string(version) +
                      " (this build reads version " +
                      std::to_string(kPcgVersion) + ")");
  const std::uint32_t flags = get_u32(header + 8);
  if ((flags & ~kFlagTimestamps) != 0)
    throw IoError(path, 0, "unknown flag bits set");

  GraphData data;
  data.num_vertices = get_u64(header + 16);
  data.has_timestamps = (flags & kFlagTimestamps) != 0;
  const std::uint64_t num_edges = get_u64(header + 24);
  if (data.num_vertices > kInvalidVertex)
    throw IoError(path, 0, "num_vertices overflows the VertexId space");

  data.edges.resize(num_edges);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    unsigned char rec[8];
    if (std::fread(rec, 1, sizeof rec, f.get()) != sizeof rec)
      throw IoError(path, 0,
                    "truncated edge section (edge " + std::to_string(i) +
                        " of " + std::to_string(num_edges) + ")");
    TimestampedEdge& te = data.edges[i];
    te.e = Edge{get_u32(rec), get_u32(rec + 4)};
    if (te.e.u >= data.num_vertices || te.e.v >= data.num_vertices)
      throw IoError(path, 0,
                    "edge " + std::to_string(i) +
                        " references a vertex out of range");
  }
  if (data.has_timestamps) {
    for (std::uint64_t i = 0; i < num_edges; ++i) {
      unsigned char rec[8];
      if (std::fread(rec, 1, sizeof rec, f.get()) != sizeof rec)
        throw IoError(path, 0, "truncated timestamp section");
      data.edges[i].time = get_u64(rec);
    }
  }
  unsigned char extra;
  if (std::fread(&extra, 1, 1, f.get()) == 1)
    throw IoError(path, 0, "trailing bytes after declared payload");
  data.stats.data_lines = data.edges.size();
  // The edge array was sized exactly from the header in one pass; the
  // footprint it reports is therefore the minimum for this dataset.
  data.stats.memory_footprint_bytes =
      data.edges.capacity() * sizeof(TimestampedEdge);
  return data;
}

}  // namespace parcore::io
