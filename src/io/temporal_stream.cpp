#include "io/temporal_stream.h"

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "io/io_error.h"
#include "io/line_reader.h"
#include "io/tokens.h"

namespace parcore::io {

TemporalStream read_temporal_stream(const std::string& path,
                                    const TemporalReadOptions& opts) {
  LineReader in(path);
  TemporalStream stream;
  std::unordered_map<std::uint64_t, VertexId> remap;
  std::uint64_t max_raw = 0;
  bool any = false;

  auto intern = [&](std::uint64_t raw) -> VertexId {
    any = true;
    if (opts.compact_ids) {
      auto [it, inserted] =
          remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
      if (inserted) {
        if (remap.size() > kInvalidVertex)
          throw IoError(path, in.line_number(),
                        "more distinct vertices than VertexId can address");
        stream.original_ids.push_back(raw);
      }
      return it->second;
    }
    if (raw >= kInvalidVertex)
      throw IoError(path, in.line_number(),
                    "vertex id " + std::to_string(raw) +
                        " overflows the 32-bit VertexId space");
    if (raw > max_raw) max_raw = raw;
    return static_cast<VertexId>(raw);
  };

  std::string line, err;
  std::uint64_t prev_time = 0;
  bool have_prev = false;
  while (in.next(line)) {
    const char* p = skip_ws(line.c_str());
    if (*p == '#' || *p == '%' || *p == '\0') continue;

    UpdateKind kind = UpdateKind::kInsert;
    if (*p == '+' || *p == '-') {
      kind = *p == '-' ? UpdateKind::kRemove : UpdateKind::kInsert;
      ++p;
      if (*p != ' ' && *p != '\t')
        throw IoError(path, in.line_number(),
                      "op sign must be a separate token ('+ u v' / '- u v')");
    }
    std::uint64_t a = 0, b = 0, t = 0;
    if (!parse_u64(p, a, err) || !parse_u64(p, b, err))
      throw IoError(path, in.line_number(), err);
    if (!at_line_end(p)) {
      // As in graph_reader: "u v t", or KONECT's "u v weight t" where
      // the weight column is skipped unparsed.
      const char* probe = p;
      skip_token(probe);
      if (!at_line_end(probe)) skip_token(p);
      if (!parse_u64(p, t, err)) throw IoError(path, in.line_number(), err);
    }
    if (have_prev && t < prev_time) {
      stream.monotone = false;
      if (opts.require_monotone)
        throw IoError(path, in.line_number(),
                      "timestamp " + std::to_string(t) +
                          " decreases below " + std::to_string(prev_time));
    }
    prev_time = t;
    have_prev = true;

    TimedUpdate op;
    op.u.e = Edge{intern(a), intern(b)};
    op.u.kind = kind;
    op.time = t;
    stream.ops.push_back(op);
  }
  stream.num_vertices = opts.compact_ids
                            ? remap.size()
                            : (any ? static_cast<std::size_t>(max_raw) + 1 : 0);
  return stream;
}

void save_temporal_stream(const std::string& path,
                          std::span<const TimedUpdate> ops) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw IoError(path, 0, "cannot open for writing");
  for (const TimedUpdate& op : ops) {
    std::fprintf(f, "%c %u %u %llu\n",
                 op.u.kind == UpdateKind::kRemove ? '-' : '+', op.u.e.u,
                 op.u.e.v, static_cast<unsigned long long>(op.time));
  }
  if (std::fclose(f) != 0) throw IoError(path, 0, "write failed");
}

std::vector<Edge> replay_final_edges(std::span<const TimedUpdate> ops) {
  std::unordered_map<std::uint64_t, Edge> live;
  for (const TimedUpdate& op : ops) {
    if (op.u.e.u == op.u.e.v) continue;  // self-loops never materialise
    if (op.u.kind == UpdateKind::kInsert)
      live.emplace(edge_key(op.u.e), canonical(op.u.e));
    else
      live.erase(edge_key(op.u.e));
  }
  std::vector<Edge> edges;
  edges.reserve(live.size());
  for (const auto& [key, e] : live) edges.push_back(e);
  return edges;
}

}  // namespace parcore::io
