#include "io/graph_reader.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "io/io_error.h"
#include "io/line_reader.h"
#include "io/pcg.h"
#include "io/tokens.h"

namespace parcore::io {

namespace {

std::string strip_gz(const std::string& path) {
  if (path.size() > 3 && path.compare(path.size() - 3, 3, ".gz") == 0)
    return path.substr(0, path.size() - 3);
  return path;
}

bool has_ext(const std::string& path, const char* ext) {
  const std::string base = strip_gz(path);
  const std::size_t n = std::string(ext).size();
  return base.size() > n && base.compare(base.size() - n, n, ext) == 0;
}

/// Interns raw 64-bit file ids into the compact [0, n) VertexId space;
/// in verbatim mode ids pass through but are bounds-checked against the
/// VertexId width.
class IdMap {
 public:
  explicit IdMap(bool compact) : compact_(compact) {}

  VertexId intern(std::uint64_t raw, const LineReader& src) {
    if (compact_) {
      auto [it, inserted] =
          remap_.try_emplace(raw, static_cast<VertexId>(remap_.size()));
      if (inserted) {
        if (remap_.size() > kInvalidVertex)
          throw IoError(src.path(), src.line_number(),
                        "more distinct vertices than VertexId can address");
        original_.push_back(raw);
      }
      return it->second;
    }
    if (raw >= kInvalidVertex)
      throw IoError(src.path(), src.line_number(),
                    "vertex id " + std::to_string(raw) +
                        " overflows the 32-bit VertexId space "
                        "(use id compaction)");
    max_raw_ = std::max(max_raw_, raw);
    return static_cast<VertexId>(raw);
  }

  std::size_t num_vertices(bool any_edges) const {
    if (compact_) return remap_.size();
    return any_edges ? static_cast<std::size_t>(max_raw_) + 1 : 0;
  }

  std::vector<std::uint64_t> take_original_ids() { return std::move(original_); }

 private:
  bool compact_;
  std::unordered_map<std::uint64_t, VertexId> remap_;
  std::vector<std::uint64_t> original_;
  std::uint64_t max_raw_ = 0;
};

struct EdgeFilter {
  explicit EdgeFilter(bool enabled) : enabled_(enabled) {}

  /// True when the edge should be kept; counts drops in `stats`.
  bool admit(Edge e, ReadStats& stats) {
    if (!enabled_) return true;
    if (e.u == e.v) {
      ++stats.self_loops;
      return false;
    }
    if (!seen_.insert(edge_key(e)).second) {
      ++stats.duplicates;
      return false;
    }
    return true;
  }

 private:
  bool enabled_;
  std::unordered_set<std::uint64_t> seen_;
};

GraphData read_edge_list(const std::string& path, const ReadOptions& opts) {
  LineReader in(path);
  GraphData data;
  IdMap ids(opts.compact_ids);
  EdgeFilter filter(opts.filter);

  std::string line, err;
  while (in.next(line)) {
    const char* p = skip_ws(line.c_str());
    if (*p == '#' || *p == '%' || *p == '\0') {
      ++data.stats.comments;
      continue;
    }
    ++data.stats.data_lines;
    std::uint64_t a = 0, b = 0, t = 0;
    if (!parse_u64(p, a, err) || !parse_u64(p, b, err))
      throw IoError(path, in.line_number(), err);
    bool timed = false;
    if (!at_line_end(p)) {
      // 3 columns: "u v time" (SNAP temporal). 4+ columns: KONECT's
      // "u v weight time" — the weight may be signed or fractional and
      // is skipped unparsed; columns past the timestamp are ignored.
      const char* probe = p;
      skip_token(probe);
      if (!at_line_end(probe)) skip_token(p);
      if (!parse_u64(p, t, err)) throw IoError(path, in.line_number(), err);
      timed = true;
    }
    TimestampedEdge te;
    te.e = Edge{ids.intern(a, in), ids.intern(b, in)};
    te.time = t;
    if (timed) data.has_timestamps = true;
    if (filter.admit(te.e, data.stats)) data.edges.push_back(te);
  }
  data.num_vertices = ids.num_vertices(data.stats.data_lines > 0);
  data.original_ids = ids.take_original_ids();
  return data;
}

GraphData read_matrix_market(const std::string& path,
                             const ReadOptions& opts) {
  LineReader in(path);
  GraphData data;
  IdMap ids(opts.compact_ids);
  EdgeFilter filter(opts.filter);

  std::string line, err;
  if (!in.next(line))
    throw IoError(path, 1, "empty file (expected %%MatrixMarket banner)");
  std::string lower = line;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower.rfind("%%matrixmarket", 0) != 0)
    throw IoError(path, 1, "missing %%MatrixMarket banner");
  if (lower.find("coordinate") == std::string::npos)
    throw IoError(path, 1,
                  "only 'coordinate' (sparse) MatrixMarket is supported");

  // Skip '%' comments up to the "rows cols nnz" dimension line.
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  bool have_dims = false;
  while (!have_dims) {
    if (!in.next(line))
      throw IoError(path, in.line_number(),
                    "truncated header: no dimension line");
    const char* p = skip_ws(line.c_str());
    if (*p == '%' || *p == '\0') {
      ++data.stats.comments;
      continue;
    }
    if (!parse_u64(p, rows, err) || !parse_u64(p, cols, err) ||
        !parse_u64(p, nnz, err))
      throw IoError(path, in.line_number(), "bad dimension line: " + err);
    if (rows != cols)
      throw IoError(path, in.line_number(),
                    "rectangular matrix (" + std::to_string(rows) + " x " +
                        std::to_string(cols) +
                        "): rows and columns are different vertex spaces, "
                        "not an undirected graph");
    have_dims = true;
  }

  while (in.next(line)) {
    const char* p = skip_ws(line.c_str());
    if (*p == '%' || *p == '\0') {
      ++data.stats.comments;
      continue;
    }
    ++data.stats.data_lines;
    if (data.stats.data_lines > nnz)
      throw IoError(path, in.line_number(),
                    "more entries than the declared nnz (" +
                        std::to_string(nnz) + ")");
    std::uint64_t i = 0, j = 0;
    if (!parse_u64(p, i, err) || !parse_u64(p, j, err))
      throw IoError(path, in.line_number(), err);
    // The optional numeric value is ignored (pattern matrices have none).
    if (i == 0 || j == 0)
      throw IoError(path, in.line_number(),
                    "MatrixMarket ids are 1-based; got 0");
    if (i > rows || j > cols)
      throw IoError(path, in.line_number(),
                    "entry (" + std::to_string(i) + ", " + std::to_string(j) +
                        ") exceeds declared dimensions");
    // Intern 0-based so verbatim mode yields [0, n) directly.
    TimestampedEdge te;
    te.e = Edge{ids.intern(i - 1, in), ids.intern(j - 1, in)};
    if (filter.admit(te.e, data.stats)) data.edges.push_back(te);
  }
  if (data.stats.data_lines < nnz)
    throw IoError(path, in.line_number(),
                  "truncated: declared nnz " + std::to_string(nnz) +
                      " but found " + std::to_string(data.stats.data_lines) +
                      " entries");
  data.num_vertices = ids.num_vertices(data.stats.data_lines > 0);
  data.original_ids = ids.take_original_ids();
  return data;
}

}  // namespace

GraphFormat detect_format(const std::string& path) {
  if (has_ext(path, ".pcg")) return GraphFormat::kPcg;
  if (has_ext(path, ".mtx")) return GraphFormat::kMatrixMarket;
  return GraphFormat::kEdgeList;
}

GraphData read_graph(const std::string& path, const ReadOptions& opts) {
  GraphFormat format =
      opts.format == GraphFormat::kAuto ? detect_format(path) : opts.format;
  GraphData data;
  switch (format) {
    case GraphFormat::kEdgeList:
      data = read_edge_list(path, opts);
      break;
    case GraphFormat::kMatrixMarket:
      data = read_matrix_market(path, opts);
      break;
    case GraphFormat::kPcg:
      data = load_pcg(path);
      break;
    case GraphFormat::kAuto:
      throw IoError(path, 0, "unreachable format");
  }
  data.stats.memory_footprint_bytes =
      data.edges.capacity() * sizeof(TimestampedEdge) +
      data.original_ids.capacity() * sizeof(std::uint64_t);
  return data;
}

DynamicGraph to_dynamic_graph(const GraphData& data) {
  // from_edges preallocates every vertex to its exact degree in one
  // counting pass, so .pcg loads (and every other format) build the
  // adjacency with zero slab relocations.
  std::vector<Edge> edges = static_edges(data);
  return DynamicGraph::from_edges(data.num_vertices, edges);
}

std::vector<Edge> static_edges(const GraphData& data) {
  std::vector<Edge> edges;
  edges.reserve(data.edges.size());
  for (const TimestampedEdge& te : data.edges) edges.push_back(te.e);
  return edges;
}

}  // namespace parcore::io
