// Buffered line source for the text readers (DESIGN.md §7): hides the
// storage transport (plain file, or gzip when built with zlib — see
// PARCORE_WITH_ZLIB in CMakeLists.txt) behind a next()-per-line
// interface that strips CRLF and tracks 1-based line numbers for error
// context. zlib's gzopen reads uncompressed files transparently, so a
// zlib build needs no format switch; a non-zlib build detects the gzip
// magic and fails with a rebuild hint instead of parsing garbage.
#pragma once

#include <cstddef>
#include <string>

namespace parcore::io {

class LineReader {
 public:
  /// Opens `path`; throws IoError when the file cannot be opened or is
  /// gzip-compressed in a build without zlib.
  explicit LineReader(const std::string& path);
  ~LineReader();

  LineReader(const LineReader&) = delete;
  LineReader& operator=(const LineReader&) = delete;

  /// Fills `line` with the next line (without its '\n' / "\r\n");
  /// returns false at end of input. Throws IoError on a read error.
  /// A final line without a trailing newline is still returned.
  bool next(std::string& line);

  /// 1-based number of the line most recently returned by next().
  std::size_t line_number() const { return line_; }

  const std::string& path() const { return path_; }

 private:
  void refill();

  std::string path_;
  void* handle_ = nullptr;  // gzFile or std::FILE*, depending on build
  std::string buf_;         // undelivered bytes
  std::size_t pos_ = 0;     // read cursor into buf_
  bool eof_ = false;
  std::size_t line_ = 0;
};

}  // namespace parcore::io
