// Temporal update-stream reader (DESIGN.md §7, format spec in
// docs/FORMATS.md): parses "[+|-] u v [t]" lines into the timestamped
// insert/remove ops that drive the StreamingEngine and the sliding-
// window maintain workloads. A bare "u v [t]" line is an insert, so any
// SNAP/KONECT temporal edge list is already a valid insert-only stream.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/types.h"

namespace parcore::io {

struct TimedUpdate {
  GraphUpdate u;
  std::uint64_t time = 0;
};

struct TemporalReadOptions {
  bool compact_ids = true;      // as in ReadOptions (graph_reader.h)
  bool require_monotone = false;  // throw when timestamps decrease
};

struct TemporalStream {
  std::size_t num_vertices = 0;
  std::vector<TimedUpdate> ops;  // file order
  bool monotone = true;          // timestamps never decreased
  std::vector<std::uint64_t> original_ids;  // as in GraphData
};

/// Loads a temporal stream; throws IoError on malformed input (and on
/// non-monotone timestamps when require_monotone is set).
TemporalStream read_temporal_stream(const std::string& path,
                                    const TemporalReadOptions& opts = {});

/// Writes ops back out in the "[+|-] u v t" text form.
void save_temporal_stream(const std::string& path,
                          std::span<const TimedUpdate> ops);

/// The edge set live after replaying `ops` in order (insert adds,
/// remove erases, redundant ops are no-ops) — the reference final graph
/// the engine's result is checked against.
std::vector<Edge> replay_final_edges(std::span<const TimedUpdate> ops);

}  // namespace parcore::io
