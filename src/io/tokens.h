// Shared token scanning for the text readers (DESIGN.md §7). Strict by
// design: ids must be plain non-negative decimal integers — a '-' sign,
// letters, or a value past 2^64-1 are parse errors, never silent wraps
// (strtoull would happily accept "-3" as a huge unsigned).
#pragma once

#include <cstdint>
#include <string>

namespace parcore::io {

inline const char* skip_ws(const char* p) {
  while (*p == ' ' || *p == '\t') ++p;
  return p;
}

inline bool at_line_end(const char* p) {
  return *skip_ws(p) == '\0';
}

/// Advances p past one whitespace-delimited token of any form (used to
/// skip KONECT weight columns); returns false when the line is out of
/// tokens.
inline bool skip_token(const char*& p) {
  p = skip_ws(p);
  if (*p == '\0') return false;
  while (*p != '\0' && *p != ' ' && *p != '\t') ++p;
  return true;
}

/// Parses one decimal u64 token at *p, advancing p past it. Returns
/// false (with a human-readable reason in `err`) on a missing token,
/// non-digit characters, or overflow.
inline bool parse_u64(const char*& p, std::uint64_t& out, std::string& err) {
  p = skip_ws(p);
  if (*p == '\0') {
    err = "missing field";
    return false;
  }
  if (*p == '-') {
    err = "negative vertex id or timestamp";
    return false;
  }
  if (*p < '0' || *p > '9') {
    err = std::string("non-numeric token starting at '") + *p + "'";
    return false;
  }
  std::uint64_t v = 0;
  while (*p >= '0' && *p <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      err = "integer overflows 64 bits";
      return false;
    }
    v = v * 10 + digit;
    ++p;
  }
  if (*p != '\0' && *p != ' ' && *p != '\t') {
    err = std::string("non-numeric token (unexpected '") + *p + "')";
    return false;
  }
  out = v;
  return true;
}

}  // namespace parcore::io
