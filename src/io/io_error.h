// Error type for the dataset I/O layer (DESIGN.md §7): every parse or
// read failure carries the offending path and, when meaningful, the
// 1-based line number, so callers can print "file:line: what" and a
// malformed dataset never silently degrades into an empty graph.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace parcore::io {

class IoError : public std::runtime_error {
 public:
  /// line == 0 means "no line context" (open failures, binary files).
  IoError(std::string path, std::size_t line, const std::string& what)
      : std::runtime_error(line > 0
                               ? path + ":" + std::to_string(line) + ": " + what
                               : path + ": " + what),
        path_(std::move(path)),
        line_(line) {}

  const std::string& path() const { return path_; }
  std::size_t line() const { return line_; }

 private:
  std::string path_;
  std::size_t line_;
};

}  // namespace parcore::io
