// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over byte buffers, used
// to protect every durability artifact: checkpoint sections and WAL
// records both carry a CRC so recovery can tell a torn write from
// structural corruption without trusting lengths alone. Table-based
// software implementation — the durability layer must not depend on the
// optional zlib build.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace parcore::io {

namespace detail {

inline std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace detail

/// Incremental form: pass the previous return value as `seed` to extend
/// a running checksum across multiple buffers. The default seed is the
/// standard initial state.
inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  static const std::array<std::uint32_t, 256> table = detail::make_crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i)
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

}  // namespace parcore::io
