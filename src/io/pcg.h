// The `.pcg` binary graph cache (DESIGN.md §7, format spec in
// docs/FORMATS.md): a parsed-once image of a text dataset so large
// graphs skip tokenising on every run. Fixed little-endian layout —
// magic "PCG1", a versioned header, u32 endpoint pairs, then u64
// timestamps when present. Loading validates magic, version, declared
// counts against the actual byte length, and endpoint bounds, throwing
// IoError rather than trusting a truncated or corrupt cache.
#pragma once

#include <cstdint>
#include <string>

#include "io/graph_reader.h"

namespace parcore::io {

inline constexpr char kPcgMagic[4] = {'P', 'C', 'G', '1'};
inline constexpr std::uint32_t kPcgVersion = 1;

/// Writes `data` as a `.pcg` cache; throws IoError on write failure.
/// Only the edge image is cached: original_ids and read stats are not
/// stored (ids in a cache are already compacted).
void save_pcg(const std::string& path, const GraphData& data);

/// Loads a `.pcg` cache; throws IoError on malformed input.
GraphData load_pcg(const std::string& path);

}  // namespace parcore::io
