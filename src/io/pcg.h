// The `.pcg` binary graph cache (DESIGN.md §7, format spec in
// docs/FORMATS.md): a parsed-once image of a text dataset so large
// graphs skip tokenising on every run. Fixed little-endian layout —
// magic "PCG1", a versioned header, u32 endpoint pairs, then u64
// timestamps when present. Loading validates magic, version, declared
// counts against the actual byte length, and endpoint bounds, throwing
// IoError rather than trusting a truncated or corrupt cache.
//
// Version 2 is the durability checkpoint extension (docs/DURABILITY.md):
// the same 40-byte header followed by self-describing CRC-protected
// sections — EDGE (the graph), CORE (per-vertex core numbers), ORDR
// (the global k-order permutation) and META (checkpoint epoch). A v2
// file read through load_pcg() degrades gracefully to its graph image,
// so every dataset-driven command accepts a checkpoint as input.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/graph_reader.h"
#include "support/types.h"

namespace parcore::io {

inline constexpr char kPcgMagic[4] = {'P', 'C', 'G', '1'};
inline constexpr std::uint32_t kPcgVersion = 1;
inline constexpr std::uint32_t kPcgCheckpointVersion = 2;

/// Writes `data` as a `.pcg` cache; throws IoError on write failure.
/// Only the edge image is cached: original_ids and read stats are not
/// stored (ids in a cache are already compacted).
void save_pcg(const std::string& path, const GraphData& data);

/// Loads a `.pcg` cache (v1 or v2); throws IoError on malformed input.
/// A v2 checkpoint loads as its EDGE section (core/order are dropped).
GraphData load_pcg(const std::string& path);

/// A format-v2 checkpoint image: the quiescent graph plus the serialized
/// core index and OM order the maintainer needs to restore without
/// re-running bz_decompose. `order` is the global k-order — the
/// concatenation of the per-level order lists, ascending by level, so
/// core values along it are non-decreasing.
struct PcgCheckpoint {
  std::uint64_t epoch = 0;
  std::uint64_t num_vertices = 0;
  std::vector<Edge> edges;      // canonical u < v pairs
  std::vector<CoreValue> core;  // one per vertex
  std::vector<VertexId> order;  // permutation of [0, num_vertices)
};

/// Writes a v2 checkpoint. `sync` additionally fsyncs the file before
/// close (the durability layer's atomic-rename protocol requires the
/// payload durable before the rename commits it). Throws IoError.
void save_pcg_checkpoint(const std::string& path, const PcgCheckpoint& ck,
                         bool sync);

/// Loads a v2 checkpoint, CRC-checking every section. Fails closed with
/// an IoError naming the file and byte offset on any truncation, CRC
/// mismatch, bad magic/version, unknown section or trailing bytes —
/// recovery then falls back to an older checkpoint rather than trusting
/// a damaged one.
PcgCheckpoint load_pcg_checkpoint(const std::string& path);

}  // namespace parcore::io
