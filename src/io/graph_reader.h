// Real-dataset graph reader (DESIGN.md §7): turns an on-disk graph —
// SNAP-style edge list, MatrixMarket coordinate file, or the `.pcg`
// binary cache — into the compacted, self-loop-free edge set the rest
// of the library consumes. Format specifics and accepted edge cases are
// specified in docs/FORMATS.md; every malformed input is rejected with
// an IoError carrying file:line context.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dynamic_graph.h"
#include "support/types.h"

namespace parcore::io {

enum class GraphFormat {
  kAuto,          // by extension: .mtx → MatrixMarket, .pcg → binary cache,
                  // anything else (after stripping .gz) → edge list
  kEdgeList,      // "u v [t]" per line, '#'/'%' comments
  kMatrixMarket,  // "%%MatrixMarket" banner, dimension line, 1-based ids
  kPcg,           // parcore binary cache (io/pcg.h)
};

struct ReadStats {
  std::size_t data_lines = 0;  // non-comment, non-blank lines parsed
  std::size_t comments = 0;    // comment + blank lines
  std::size_t self_loops = 0;  // dropped (when filtering)
  std::size_t duplicates = 0;  // dropped (when filtering)
  /// Heap bytes held by the parsed GraphData (edge array + id map);
  /// filled by read_graph. The materialised adjacency footprint is
  /// separate: DynamicGraph::memory_stats() on the built graph.
  std::size_t memory_footprint_bytes = 0;
};

/// A parsed dataset. With the default options, `edges` is self-loop- and
/// duplicate-free and endpoints are compacted to [0, num_vertices) in
/// first-appearance order; `original_ids[c]` maps a compacted id back to
/// the raw id in the file (empty when compaction is off or for `.pcg`,
/// which stores already-compacted ids).
struct GraphData {
  std::size_t num_vertices = 0;
  std::vector<TimestampedEdge> edges;  // time == 0 when absent
  bool has_timestamps = false;
  std::vector<std::uint64_t> original_ids;
  ReadStats stats;
};

struct ReadOptions {
  GraphFormat format = GraphFormat::kAuto;
  bool filter = true;       // drop self-loops and duplicate edges
  bool compact_ids = true;  // remap raw ids to [0, n); off: ids used
                            // verbatim (MatrixMarket shifted to 0-based)
                            // and must fit VertexId
};

/// Extension-based detection used by GraphFormat::kAuto.
GraphFormat detect_format(const std::string& path);

/// Loads a graph in any supported format; throws IoError on failure.
GraphData read_graph(const std::string& path, const ReadOptions& opts = {});

/// Materialises the adjacency structure (drops duplicate/self-loop edges
/// the reader was asked to keep).
DynamicGraph to_dynamic_graph(const GraphData& data);

/// The edge set without timestamps, in file order.
std::vector<Edge> static_edges(const GraphData& data);

}  // namespace parcore::io
