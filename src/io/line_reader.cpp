#include "io/line_reader.h"

#include <cstdio>
#include <cstring>

#include "io/io_error.h"

#ifdef PARCORE_HAVE_ZLIB
#include <zlib.h>
#endif

namespace parcore::io {

namespace {
constexpr std::size_t kChunk = 1u << 16;
}  // namespace

LineReader::LineReader(const std::string& path) : path_(path) {
#ifdef PARCORE_HAVE_ZLIB
  // gzopen reads uncompressed files transparently, so one handle type
  // serves both plain and .gz inputs.
  gzFile f = gzopen(path.c_str(), "rb");
  if (f == nullptr) throw IoError(path, 0, "cannot open for reading");
  gzbuffer(f, kChunk);
  handle_ = f;
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw IoError(path, 0, "cannot open for reading");
  int c0 = std::fgetc(f);
  int c1 = std::fgetc(f);
  if (c0 == 0x1f && c1 == 0x8b) {
    std::fclose(f);
    throw IoError(path, 0,
                  "gzip-compressed input, but parcore was built without "
                  "zlib (reconfigure with -DPARCORE_WITH_ZLIB=ON)");
  }
  std::rewind(f);
  handle_ = f;
#endif
}

LineReader::~LineReader() {
  if (handle_ == nullptr) return;
#ifdef PARCORE_HAVE_ZLIB
  gzclose(static_cast<gzFile>(handle_));
#else
  std::fclose(static_cast<std::FILE*>(handle_));
#endif
}

void LineReader::refill() {
  if (eof_) return;
  // Compact delivered bytes before growing the buffer.
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  const std::size_t old = buf_.size();
  buf_.resize(old + kChunk);
#ifdef PARCORE_HAVE_ZLIB
  gzFile f = static_cast<gzFile>(handle_);
  int got = gzread(f, buf_.data() + old, static_cast<unsigned>(kChunk));
  if (got < 0) {
    int errnum = 0;
    const char* msg = gzerror(f, &errnum);
    throw IoError(path_, line_ + 1,
                  std::string("read error: ") +
                      (msg != nullptr && *msg != '\0' ? msg : "gzread failed"));
  }
  buf_.resize(old + static_cast<std::size_t>(got));
  if (got == 0) eof_ = true;
#else
  std::FILE* f = static_cast<std::FILE*>(handle_);
  std::size_t got = std::fread(buf_.data() + old, 1, kChunk, f);
  buf_.resize(old + got);
  if (got < kChunk) {
    if (std::ferror(f) != 0) throw IoError(path_, line_ + 1, "read error");
    eof_ = true;
  }
#endif
}

bool LineReader::next(std::string& line) {
  while (true) {
    const char* base = buf_.data() + pos_;
    const std::size_t avail = buf_.size() - pos_;
    const char* nl = static_cast<const char*>(std::memchr(base, '\n', avail));
    if (nl != nullptr) {
      std::size_t len = static_cast<std::size_t>(nl - base);
      if (len > 0 && base[len - 1] == '\r') --len;  // CRLF tolerance
      line.assign(base, len);
      pos_ += static_cast<std::size_t>(nl - base) + 1;
      ++line_;
      return true;
    }
    if (eof_) {
      if (avail == 0) return false;
      std::size_t len = avail;
      if (base[len - 1] == '\r') --len;
      line.assign(base, len);  // final line without trailing newline
      pos_ = buf_.size();
      ++line_;
      return true;
    }
    refill();
  }
}

}  // namespace parcore::io
