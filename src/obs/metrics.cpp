#include "obs/metrics.h"

#include "support/env.h"

namespace parcore::obs {

namespace {

bool env_says_off() {
  // Via support/env: parcore_lint.py forbids raw getenv outside that
  // module (and the durability fault shims).
  const std::string v = env_str("PARCORE_OBS", "");
  if (v.empty()) return false;  // default: on
  return v == "0" || v == "off" || v == "false" || v == "OFF";
}

// -1 = uninitialised, 0 = off, 1 = on.
std::atomic<int> g_enabled{-1};

}  // namespace

bool enabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = env_says_off() ? 0 : 1;
    // A racing first call computes the same value; last store wins.
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void set_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace detail {

std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace detail

std::uint64_t Histogram::Snapshot::quantile_upper(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto target = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (target == 0) target = 1;
  std::uint64_t acc = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    acc += counts[b];
    if (acc >= target) return bucket_upper(b);
  }
  return bucket_upper(kBuckets - 1);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexGuard lk(mu_);
  return counters_.get_or_create(name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexGuard lk(mu_);
  return gauges_.get_or_create(name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  MutexGuard lk(mu_);
  return histograms_.get_or_create(name);
}

void MetricsRegistry::collect(std::vector<CounterRow>& counters,
                              std::vector<GaugeRow>& gauges,
                              std::vector<HistogramRow>& histograms) const {
  MutexGuard lk(mu_);
  counters.clear();
  gauges.clear();
  histograms.clear();
  counters.reserve(counters_.entries.size());
  for (const auto& [name, m] : counters_.entries)
    counters.push_back({name, m->value()});
  gauges.reserve(gauges_.entries.size());
  for (const auto& [name, m] : gauges_.entries)
    gauges.push_back({name, m->value()});
  histograms.reserve(histograms_.entries.size());
  for (const auto& [name, m] : histograms_.entries)
    histograms.push_back({name, m->snapshot()});
}

MetricsRegistry& registry() {
  static MetricsRegistry* global = new MetricsRegistry();  // never destroyed:
  // library layers record from arbitrary threads during static teardown
  return *global;
}

}  // namespace parcore::obs
