#include "obs/export.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <sstream>

namespace parcore::obs {

namespace {

void append_metric_line(std::string& out, const std::string& name,
                        const std::string& labels, std::uint64_t v) {
  out += name;
  out += labels;
  out += ' ';
  out += std::to_string(v);
  out += '\n';
}

}  // namespace

std::string prometheus_text(const MetricsRegistry& reg) {
  std::vector<MetricsRegistry::CounterRow> counters;
  std::vector<MetricsRegistry::GaugeRow> gauges;
  std::vector<MetricsRegistry::HistogramRow> histograms;
  reg.collect(counters, gauges, histograms);

  std::string out;
  for (const auto& c : counters) {
    out += "# TYPE " + c.name + " counter\n";
    append_metric_line(out, c.name, "", c.value);
  }
  for (const auto& g : gauges) {
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name;
    out += ' ';
    out += std::to_string(g.value);
    out += '\n';
  }
  for (const auto& h : histograms) {
    out += "# TYPE " + h.name + " histogram\n";
    std::uint64_t acc = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      acc += h.snap.counts[b];
      // Skip interior empty buckets but always keep +Inf; cumulative
      // counts stay correct because acc carries across skips.
      if (h.snap.counts[b] == 0 && b + 1 < Histogram::kBuckets) continue;
      const std::string le =
          b + 1 < Histogram::kBuckets
              ? std::to_string(Histogram::bucket_upper(b))
              : std::string("+Inf");
      append_metric_line(out, h.name + "_bucket", "{le=\"" + le + "\"}", acc);
    }
    append_metric_line(out, h.name + "_sum", "", h.snap.sum);
    append_metric_line(out, h.name + "_count", "", h.snap.count);
  }
  return out;
}

std::string human_summary(const MetricsRegistry& reg) {
  std::vector<MetricsRegistry::CounterRow> counters;
  std::vector<MetricsRegistry::GaugeRow> gauges;
  std::vector<MetricsRegistry::HistogramRow> histograms;
  reg.collect(counters, gauges, histograms);

  std::ostringstream os;
  if (!counters.empty() || !gauges.empty()) {
    os << "metrics:\n";
    for (const auto& c : counters)
      os << "  " << c.name << " = " << c.value << "\n";
    for (const auto& g : gauges)
      os << "  " << g.name << " = " << g.value << "\n";
  }
  if (!histograms.empty()) {
    os << "histograms (count / mean / ~p50 / ~p99):\n";
    for (const auto& h : histograms) {
      char mean[32];
      std::snprintf(mean, sizeof mean, "%.1f", h.snap.mean());
      os << "  " << h.name << " = " << h.snap.count << " / " << mean
         << " / <=" << h.snap.quantile_upper(0.5) << " / <="
         << h.snap.quantile_upper(0.99) << "\n";
    }
  }
  return os.str();
}

std::string trace_json_line(const FlushSpan& s) {
  std::string out = "{";
  auto field = [&out](const char* k, std::uint64_t v, bool first = false) {
    if (!first) out += ',';
    out += '"';
    out += k;
    out += "\":";
    out += std::to_string(v);
  };
  field("epoch", s.epoch, true);
  field("raw", s.raw);
  field("inserts", s.inserts);
  field("removes", s.removes);
  field("pages_cloned", s.pages_cloned);
  field("repair_us", s.repair_us);
  field("drain_us", s.drain_us);
  field("coalesce_us", s.coalesce_us);
  field("wal_us", s.wal_us);
  field("plan_us", s.plan_us);
  field("apply_us", s.apply_us);
  field("om_compact_us", s.om_compact_us);
  field("publish_us", s.publish_us);
  field("checkpoint_us", s.checkpoint_us);
  field("flush_us", s.flush_us);
  field("workers", s.workers);
  field("worker_busy_us", s.worker_busy_us);
  field("worker_idle_us", s.worker_idle_us);
  field("steal_chunks", s.steal_chunks);
  out += '}';
  return out;
}

// ---------------------------------------------------------------- HTTP

bool MetricsHttpServer::start(int port, Supplier metrics, Supplier summary) {
  if (listen_fd_ >= 0) return false;  // already running
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 8) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);

  listen_fd_ = fd;
  metrics_ = std::move(metrics);
  summary_ = std::move(summary);
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void MetricsHttpServer::stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void MetricsHttpServer::serve_loop() {
  for (;;) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // 100 ms poll so stop() is observed promptly without pipes/signals.
    const int r = ::poll(&pfd, 1, 100);
    if (stop_.load(std::memory_order_relaxed)) return;
    if (r <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;

    char buf[2048];
    const ssize_t got = ::recv(client, buf, sizeof buf - 1, 0);
    std::string body, status = "200 OK";
    if (got > 0) {
      buf[got] = '\0';
      // "GET <path> HTTP/1.x" — everything else is a 404/400.
      const char* path_begin = std::strchr(buf, ' ');
      const char* path_end =
          path_begin != nullptr ? std::strchr(path_begin + 1, ' ') : nullptr;
      std::string path = path_end != nullptr
                             ? std::string(path_begin + 1, path_end)
                             : std::string();
      if (path == "/metrics" || path == "/") {
        body = metrics_ ? metrics_() : "";
      } else if (path == "/summary") {
        body = summary_ ? summary_() : "";
      } else {
        status = "404 Not Found";
        body = "unknown path (try /metrics or /summary)\n";
      }
    } else {
      status = "400 Bad Request";
    }
    std::string resp = "HTTP/1.1 " + status +
                       "\r\nContent-Type: text/plain; version=0.0.4"
                       "\r\nConnection: close\r\nContent-Length: " +
                       std::to_string(body.size()) + "\r\n\r\n" + body;
    std::size_t off = 0;
    while (off < resp.size()) {
      const ssize_t n = ::send(client, resp.data() + off, resp.size() - off, 0);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::close(client);
  }
}

std::string http_fetch(const std::string& host, int port,
                       const std::string& path, std::string* error) {
  auto fail = [error](const char* what) -> std::string {
    if (error != nullptr) *error = what;
    return "";
  };
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string resolved =
      (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return fail("host must be an IPv4 address (or localhost)");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return fail("connect failed (is `serve --metrics-port` running?)");
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + resolved +
                          "\r\nConnection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      return fail("send failed");
    }
    off += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t header_end = resp.find("\r\n\r\n");
  if (header_end == std::string::npos) return fail("malformed HTTP response");
  return resp.substr(header_end + 4);
}

}  // namespace parcore::obs
