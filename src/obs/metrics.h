// Low-overhead metrics registry — the observability substrate (ISSUE 6).
//
// Three metric kinds, all safe to record from any thread with no lock:
//   - Counter:   monotonic; per-thread sharded cells (one cache line
//                each) so P producers incrementing the same counter
//                never contend on one atomic. Reads aggregate shards.
//   - Gauge:     a settable signed value (epoch, threshold, bytes).
//                Written by one owner at a time; a single atomic.
//   - Histogram: fixed power-of-two buckets (value -> bit_width(value)),
//                per-thread sharded like counters. Approximate
//                quantiles come from the cumulative bucket counts.
//
// Two kill switches:
//   - compile time: -DPARCORE_OBS_OFF (CMake -DPARCORE_OBS=OFF) turns
//     every record call into a no-op the optimizer deletes entirely;
//   - runtime: the PARCORE_OBS environment variable ("off"/"0"/"false"
//     disables; anything else, or unset, enables). Disabled recording
//     is one relaxed atomic load and a predicted branch.
//
// Handles returned by MetricsRegistry are stable for the registry's
// lifetime — register once (cache the reference), record forever.
// `registry()` is the process-global instance every library layer
// reports into; tests construct private registries.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sync/annotations.h"
#include "sync/mutex.h"

namespace parcore::obs {

#ifdef PARCORE_OBS_OFF
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Runtime gate (PARCORE_OBS env var, cached on first call).
bool enabled();
/// Overrides the gate (benchmarks measuring obs-on vs obs-off cells).
void set_enabled(bool on);

namespace detail {

inline constexpr std::size_t kShards = 16;

/// Stable per-thread shard index in [0, kShards): threads are assigned
/// round-robin on first use, so up to kShards concurrent recorders
/// never share a cell.
std::size_t shard_index();

}  // namespace detail

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta) {
    if (!kCompiledIn || !enabled()) return;
    cells_[detail::shard_index()].v.fetch_add(delta,
                                              std::memory_order_relaxed);
  }
  void inc() { add(1); }

  /// Sum over all shards. Concurrent adds may or may not be included
  /// (each shard is read once, relaxed) — monotonic, never torn.
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, detail::kShards> cells_{};
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) {
    if (!kCompiledIn || !enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    if (!kCompiledIn || !enabled()) return;
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: bucket b holds values with bit_width == b,
/// i.e. bucket 0 is {0}, bucket b covers [2^(b-1), 2^b - 1]. The last
/// bucket absorbs everything >= 2^(kBuckets-2) (the +Inf bucket).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value) {
    if (!kCompiledIn || !enabled()) return;
    Shard& s = shards_[detail::shard_index()];
    s.counts[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  static std::size_t bucket_of(std::uint64_t value) {
    const auto b = static_cast<std::size_t>(std::bit_width(value));
    return b < kBuckets ? b : kBuckets - 1;
  }

  /// Inclusive upper bound of bucket b (2^b - 1); the last bucket is
  /// unbounded and reports UINT64_MAX.
  static std::uint64_t bucket_upper(std::size_t b) {
    if (b + 1 >= kBuckets) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << b) - 1;
  }

  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Upper bound of the bucket containing quantile q (0 for empty).
    std::uint64_t quantile_upper(double q) const;
  };

  /// Aggregates all shards; concurrent records may straddle the scan
  /// (count/sum are consistent per shard, approximate across shards).
  Snapshot snapshot() const {
    Snapshot out;
    for (const Shard& s : shards_) {
      for (std::size_t b = 0; b < kBuckets; ++b) {
        const std::uint64_t c = s.counts[b].load(std::memory_order_relaxed);
        out.counts[b] += c;
        out.count += c;
      }
      out.sum += s.sum.load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kBuckets> counts{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, detail::kShards> shards_{};
};

/// Named metric families. Registration (first lookup of a name) takes a
/// mutex; recording through a returned handle never does. Handles stay
/// valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  struct CounterRow {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeRow {
    std::string name;
    std::int64_t value;
  };
  struct HistogramRow {
    std::string name;
    Histogram::Snapshot snap;
  };

  /// Point-in-time read of every registered metric, each list in
  /// registration order (stable export ordering).
  void collect(std::vector<CounterRow>& counters, std::vector<GaugeRow>& gauges,
               std::vector<HistogramRow>& histograms) const;

 private:
  template <typename T>
  struct Family {
    std::vector<std::pair<std::string, std::unique_ptr<T>>> entries;
    T& get_or_create(std::string_view name) {
      for (auto& [n, m] : entries)
        if (n == name) return *m;
      entries.emplace_back(std::string(name), std::make_unique<T>());
      return *entries.back().second;
    }
  };

  mutable Mutex mu_;
  Family<Counter> counters_ PARCORE_GUARDED_BY(mu_);
  Family<Gauge> gauges_ PARCORE_GUARDED_BY(mu_);
  Family<Histogram> histograms_ PARCORE_GUARDED_BY(mu_);
};

/// The process-global registry every parcore layer reports into.
MetricsRegistry& registry();

}  // namespace parcore::obs
