// Exporters over the metrics registry and the flush trace:
//   - prometheus_text: Prometheus text exposition (counters, gauges,
//     cumulative histogram buckets) for scrapers;
//   - human_summary:   the operator-facing grouped summary. serve,
//     stats --live and the bench drivers all render through this one
//     code path;
//   - trace_json_line: one flush span as a single JSON line (the
//     --trace-out / JSONL schema, docs/OBSERVABILITY.md);
//   - MetricsHttpServer / http_fetch: a minimal loopback HTTP 1.1
//     GET endpoint pair ("/metrics" exposition, "/summary" human text)
//     behind `parcore_cli serve --metrics-port` and `stats --live`.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace parcore::obs {

std::string prometheus_text(const MetricsRegistry& reg);

std::string human_summary(const MetricsRegistry& reg);

std::string trace_json_line(const FlushSpan& span);

/// Minimal single-threaded HTTP server bound to 127.0.0.1. Each GET is
/// answered from the supplier registered for its path; unknown paths
/// get 404. Connections are serial (scrape endpoints see one client).
class MetricsHttpServer {
 public:
  using Supplier = std::function<std::string()>;

  MetricsHttpServer() = default;
  ~MetricsHttpServer() { stop(); }
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Serves "/metrics" from `metrics` and "/summary" from `summary`.
  /// `port` 0 binds an ephemeral port (read it back with port()).
  /// Returns false (with no thread spawned) if the socket setup fails.
  bool start(int port, Supplier metrics, Supplier summary);
  void stop();

  bool running() const { return listen_fd_ >= 0; }
  int port() const { return port_; }

 private:
  void serve_loop();

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  Supplier metrics_;
  Supplier summary_;
};

/// Blocking loopback HTTP GET; returns the response body, or "" on any
/// connection/protocol failure (diagnostic goes to *error if non-null).
std::string http_fetch(const std::string& host, int port,
                       const std::string& path, std::string* error = nullptr);

}  // namespace parcore::obs
