// Structured per-flush spans: one record per engine flush with the
// nested phase timings (drain / coalesce / wal / plan / apply /
// om-compact / publish / checkpoint), batch composition, COW publish
// cost and worker busy/steal/
// idle attribution. The engine keeps the most recent spans in a fixed
// ring (`FlushTrace`) and can additionally stream every span as a JSON
// line (`--trace-out`; schema in docs/OBSERVABILITY.md).
//
// The ring is deliberately simple: one spinlock held for a struct copy,
// written once per flush (ms-scale cadence) and drained by readers via
// snapshot(). It is NOT gated on obs::enabled() — capacity bounds the
// footprint and the copy is nanoseconds next to a flush.
#pragma once

#include <cstdint>
#include <vector>

#include "sync/annotations.h"
#include "sync/spinlock.h"

namespace parcore::obs {

struct FlushSpan {
  std::uint64_t epoch = 0;

  // Batch composition.
  std::uint64_t raw = 0;       // updates drained from the ingest buffer
  std::uint64_t inserts = 0;   // coalesced insert batch size
  std::uint64_t removes = 0;   // coalesced remove batch size
  std::uint64_t pages_cloned = 0;  // COW pages cloned by the publish

  // Phase wall times, microseconds. The nine phases partition the
  // flush window: they sum to flush_us up to integer rounding (the
  // acceptance bound is 10%; see docs/OBSERVABILITY.md "trace schema").
  // wal_us and checkpoint_us stay 0 unless durability is enabled;
  // repair_us stays 0 unless this flush ran a self-healing rebuild.
  std::uint64_t repair_us = 0;     // self-healing rebuild (runs pre-drain)
  std::uint64_t drain_us = 0;
  std::uint64_t coalesce_us = 0;
  std::uint64_t wal_us = 0;        // WAL append + group fsync (durability)
  std::uint64_t plan_us = 0;       // batch-plan build (kPlan mode; else 0)
  std::uint64_t apply_us = 0;      // maintainer batches minus plan build
  std::uint64_t om_compact_us = 0; // quiescent OM compaction + mem sample
  std::uint64_t publish_us = 0;    // COW publish + snapshot wrap
  std::uint64_t checkpoint_us = 0; // periodic checkpoint (durability)
  std::uint64_t flush_us = 0;      // whole flush wall time

  // Worker attribution for the apply phase, summed over this flush's
  // batch dispatches: busy is time inside the dispatch loops, idle is
  // workers * dispatch wall - busy (waiting on the team, exhausted
  // cursors, straggler tails), steals counts chunks run by a non-owner.
  std::uint32_t workers = 0;
  std::uint64_t worker_busy_us = 0;
  std::uint64_t worker_idle_us = 0;
  std::uint64_t steal_chunks = 0;
};

/// Fixed-capacity ring of the most recent flush spans.
class FlushTrace {
 public:
  explicit FlushTrace(std::size_t capacity = 1024)
      : cap_(capacity == 0 ? 1 : capacity) {
    ring_.resize(cap_);
  }

  void record(const FlushSpan& span) {
    SpinGuard g(mu_);
    ring_[static_cast<std::size_t>(seq_ % cap_)] = span;
    ++seq_;
  }

  /// The retained spans, oldest first (at most capacity()).
  std::vector<FlushSpan> snapshot() const {
    std::vector<FlushSpan> out;
    // Allocate before taking the lock: growing the vector inside the
    // critical section would stall writers (the engine's flush path)
    // behind a heap allocation.
    out.reserve(cap_);
    SpinGuard g(mu_);
    const std::uint64_t kept = seq_ < cap_ ? seq_ : cap_;
    for (std::uint64_t i = seq_ - kept; i < seq_; ++i)
      out.push_back(ring_[static_cast<std::size_t>(i % cap_)]);
    return out;
  }

  std::size_t capacity() const { return cap_; }

  /// Spans recorded since construction (>= capacity() once wrapped).
  std::uint64_t recorded() const {
    SpinGuard g(mu_);
    return seq_;
  }

 private:
  mutable Spinlock mu_;
  std::vector<FlushSpan> ring_ PARCORE_GUARDED_BY(mu_);
  std::size_t cap_;
  std::uint64_t seq_ PARCORE_GUARDED_BY(mu_) = 0;
};

}  // namespace parcore::obs
