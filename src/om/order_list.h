// Parallel Order-Maintenance (OM) data structure (paper §3.4, after
// Dietz–Sleator / Bender et al., parallelised as in the authors'
// companion paper arXiv:2208.07800).
//
// One OrderList holds the k-order O_k of all vertices with core number
// k, as a two-level structure:
//
//   top    : singly-linked list of Groups, each with a uint64 label;
//   bottom : items doubly-linked *within* their group, each with a
//            uint64 label. Order(x, y) = (group label, item label)
//            lexicographic.
//
// Concurrency design:
//   - Order is lock-free: labels are read under a per-list seq-lock
//     (relabel_started_/relabel_finished_ counters). Only relabels
//     (bottom redistribution, splits, top-label rebalance walks) bump
//     the counters; plain inserts/deletes do not invalidate readers.
//     The counters double as the O_k.ver / O_k.cnt of Algorithm 9.
//   - Insert/Delete lock the target group. Multi-group operations
//     (split, rebalance walk, empty-group absorption) acquire group
//     locks strictly forward along the list, so no two operations can
//     deadlock.
//   - Item links never cross group boundaries, so an operation on group
//     g writes only g-owned state.
//   - Emptied groups are quarantined, never freed while the structure
//     is live (lock-free readers may still hold pointers); compact()
//     reclaims them at quiescence.
//
// Items are owned by the caller (one OmItem per vertex, reused as the
// vertex moves between core levels).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "support/types.h"
#include "sync/annotations.h"
#include "sync/spinlock.h"

namespace parcore {

class OrderList;

struct OmGroup;

/// One element of an ordered list. POD-with-atomics; owned externally.
struct OmItem {
  std::atomic<std::uint64_t> label{0};
  std::atomic<OmGroup*> group{nullptr};
  OmItem* prev = nullptr;  // within-group links, guarded by group lock
  OmItem* next = nullptr;
  VertexId vertex = kInvalidVertex;

  bool linked() const {
    return group.load(std::memory_order_acquire) != nullptr;
  }
};

struct OmGroup {
  std::atomic<std::uint64_t> label{0};
  OmGroup* next = nullptr;  // guarded by this group's lock
  OmItem* first = nullptr;
  OmItem* last = nullptr;
  std::uint32_t count = 0;
  Spinlock lock;
  OrderList* owner = nullptr;
};

/// Lexicographic position key; snapshot of (group label, item label).
struct OmKey {
  std::uint64_t group_label = 0;
  std::uint64_t item_label = 0;

  friend constexpr auto operator<=>(const OmKey&, const OmKey&) = default;
};

class OrderList {
 public:
  /// `level` is the core value k this list represents (used for the
  /// cross-list ordering fallback); `group_capacity` is the split
  /// threshold (paper: Theta(log N); tests use tiny values to force
  /// relabels).
  explicit OrderList(CoreValue level, std::uint32_t group_capacity = 64);
  ~OrderList();

  OrderList(const OrderList&) = delete;
  OrderList& operator=(const OrderList&) = delete;

  CoreValue level() const { return level_; }

  // -- mutations (thread-safe) ------------------------------------------

  /// Inserts `item` immediately after `x`; x must be linked in this list
  /// (or be the head anchor). item must be unlinked.
  void insert_after(OmItem* x, OmItem* item);

  /// Inserts `item` at the very beginning (Algorithm 7 line 16).
  void insert_head(OmItem* item) { insert_after(&head_anchor_, item); }

  /// Inserts `item` at the very end (Algorithm 8 line 17).
  void insert_tail(OmItem* item) { insert_before(&tail_anchor_, item); }

  /// Unlinks `item` from this list; its label/group become stale but the
  /// group memory stays valid for concurrent readers. (Exempt from the
  /// analysis: releases the lock lock_group_of acquired — see the note
  /// on the private walk routines below.)
  void remove(OmItem* item) PARCORE_NO_THREAD_SAFETY_ANALYSIS;

  // -- queries (lock-free) ----------------------------------------------

  /// True iff a precedes b. When both items are in the same list this is
  /// the label comparison; when the caller raced a level move, falls
  /// back to comparing list levels (= core numbers), which is the global
  /// k-order. Callers that need a stable answer guard with the vertex
  /// status protocol (Algorithm 6).
  static bool precedes(const OmItem* a, const OmItem* b);

  /// Consistent (group,item) label snapshot of an item in this list.
  OmKey snapshot_key(const OmItem* item) const;

  /// Version counter (O_k.ver): bumped at start and end of each relabel.
  std::uint64_t version_started() const {
    return relabel_started_.load(std::memory_order_acquire);
  }
  /// True with ver filled iff no relabel is in flight (O_k.cnt == 0).
  bool quiescent_version(std::uint64_t& ver) const;

  /// Number of live items (excluding anchors).
  std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }

  // -- maintenance / testing --------------------------------------------

  /// Reclaims quarantined groups and absorbs empty ones. NOT thread-safe;
  /// call only at quiescence (the engine runs it between flushes).
  /// Returns the number of groups freed.
  std::size_t compact();

  /// Structural validation for tests; fills `error` on failure.
  bool validate(std::string* error = nullptr) const;

  /// Items in order, excluding anchors (quiescent only).
  std::vector<VertexId> to_vector() const;

  std::uint64_t relabel_count() const {
    return relabel_started_.load(std::memory_order_relaxed);
  }

 private:
  friend struct OmGroup;

  static constexpr std::uint64_t kTopMax = 1ULL << 62;
  static constexpr std::uint64_t kBottomMax = 1ULL << 62;

  // The five routines below move lock ownership across dynamically
  // chosen groups (lock_group_of returns its result LOCKED,
  // insert_between releases a caller-held lock, relabel_or_split /
  // make_top_room_after walk group locks strictly forward). Clang's
  // analysis has no alias tracking for `g->lock` as g is reassigned, so
  // they carry PARCORE_NO_THREAD_SAFETY_ANALYSIS; the manual discipline
  // in force is the forward-only acquisition order documented at the
  // top of this file (docs/STATIC_ANALYSIS.md §exemptions).

  void insert_before(OmItem* z, OmItem* item);
  /// Shared insert core: places item between (pred, succ) inside g where
  /// either may be null (group boundary). Caller holds g's lock; this
  /// routine releases it.
  void insert_between(OmGroup* g, OmItem* pred, OmItem* succ, OmItem* item)
      PARCORE_NO_THREAD_SAFETY_ANALYSIS;

  /// Locks the group currently containing x (retrying across moves).
  OmGroup* lock_group_of(const OmItem* x) PARCORE_NO_THREAD_SAFETY_ANALYSIS;

  /// Redistributes bottom labels of g, splitting first when over
  /// capacity; bumps the relabel counters. Caller holds g's lock and
  /// retains it on return; the new group (if any) is returned LOCKED.
  OmGroup* relabel_or_split(OmGroup* g) PARCORE_NO_THREAD_SAFETY_ANALYSIS;

  /// Makes top-label space after g (rebalance walk of §3.4); returns the
  /// label for a new group to be inserted right after g. Caller holds
  /// g's lock; called inside a relabel window.
  std::uint64_t make_top_room_after(OmGroup* g)
      PARCORE_NO_THREAD_SAFETY_ANALYSIS;

  void bump_start() {
    relabel_started_.fetch_add(1, std::memory_order_acq_rel);
  }
  void bump_finish() {
    relabel_finished_.fetch_add(1, std::memory_order_release);
  }

  void quarantine(OmGroup* g);

  CoreValue level_;
  std::uint32_t capacity_;

  OmGroup* first_group_;  // never unlinked: holds the head anchor
  OmItem head_anchor_;
  OmItem tail_anchor_;

  std::atomic<std::uint64_t> relabel_started_{0};
  std::atomic<std::uint64_t> relabel_finished_{0};
  std::atomic<std::size_t> size_{0};

  Spinlock quarantine_lock_;
  std::vector<OmGroup*> quarantine_ PARCORE_GUARDED_BY(quarantine_lock_);
};

}  // namespace parcore
