#include "om/order_list.h"

#include <cassert>
#include <cstdlib>
#include <sstream>

#include "sync/backoff.h"

namespace parcore {
namespace {

/// Label spacing used when extending the list at the tail: keeps
/// trailing appends from exponentially halving the remaining top-label
/// space (supports ~2^30 trailing group creations before rebalancing).
constexpr std::uint64_t kTrailingGap = 1ULL << 32;

}  // namespace

OrderList::OrderList(CoreValue level, std::uint32_t group_capacity)
    : level_(level), capacity_(group_capacity < 2 ? 2 : group_capacity) {
  first_group_ = new OmGroup;
  first_group_->label.store(1ULL << 31, std::memory_order_relaxed);
  first_group_->owner = this;

  head_anchor_.label.store(kBottomMax / 4, std::memory_order_relaxed);
  tail_anchor_.label.store(3 * (kBottomMax / 4), std::memory_order_relaxed);
  head_anchor_.group.store(first_group_, std::memory_order_relaxed);
  tail_anchor_.group.store(first_group_, std::memory_order_relaxed);
  head_anchor_.next = &tail_anchor_;
  tail_anchor_.prev = &head_anchor_;
  first_group_->first = &head_anchor_;
  first_group_->last = &tail_anchor_;
  first_group_->count = 2;
}

OrderList::~OrderList() {
  OmGroup* g = first_group_;
  while (g != nullptr) {
    OmGroup* next = g->next;
    delete g;
    g = next;
  }
  SpinGuard q(quarantine_lock_);
  for (OmGroup* qg : quarantine_) delete qg;
}

void OrderList::quarantine(OmGroup* g) {
  SpinGuard q(quarantine_lock_);
  quarantine_.push_back(g);
}

OmGroup* OrderList::lock_group_of(const OmItem* x) {
  Backoff backoff;
  for (;;) {
    OmGroup* g = x->group.load(std::memory_order_acquire);
    if (g != nullptr) {
      g->lock.lock();
      if (x->group.load(std::memory_order_relaxed) == g) return g;
      g->lock.unlock();
    }
    backoff.pause();
  }
}

void OrderList::insert_after(OmItem* x, OmItem* item) {
  assert(!item->linked());
  OmGroup* g = lock_group_of(x);
  insert_between(g, x, x->next, item);
}

void OrderList::insert_before(OmItem* z, OmItem* item) {
  assert(!item->linked());
  OmGroup* g = lock_group_of(z);
  insert_between(g, z->prev, z, item);
}

void OrderList::insert_between(OmGroup* g, OmItem* pred, OmItem* succ,
                               OmItem* item) {
  for (;;) {
    const std::uint64_t lo =
        pred ? pred->label.load(std::memory_order_relaxed) : 0;
    const std::uint64_t hi =
        succ ? succ->label.load(std::memory_order_relaxed) : kBottomMax;
    if (hi - lo >= 2) {
      item->label.store(lo + (hi - lo) / 2, std::memory_order_relaxed);
      item->prev = pred;
      item->next = succ;
      item->group.store(g, std::memory_order_release);
      if (pred)
        pred->next = item;
      else
        g->first = item;
      if (succ)
        succ->prev = item;
      else
        g->last = item;
      ++g->count;
      size_.fetch_add(1, std::memory_order_relaxed);
      if (g->count > capacity_) {
        OmGroup* g2 = relabel_or_split(g);
        if (g2) g2->lock.unlock();
      }
      g->lock.unlock();
      return;
    }

    // No label space between pred and succ: relabel (and possibly split)
    // g, then re-resolve which side of a potential split we target.
    OmGroup* g2 = relabel_or_split(g);
    OmItem* ref = pred ? pred : succ;
    OmGroup* target = ref->group.load(std::memory_order_relaxed);
    if (g2) {
      if (target == g2) {
        g->lock.unlock();
        g = g2;
      } else {
        g2->lock.unlock();
      }
    }
    if (pred)
      succ = pred->next;
    else
      pred = succ->prev;
  }
}

void OrderList::remove(OmItem* item) {
  OmGroup* g = lock_group_of(item);
  if (item->prev)
    item->prev->next = item->next;
  else
    g->first = item->next;
  if (item->next)
    item->next->prev = item->prev;
  else
    g->last = item->prev;
  --g->count;
  item->group.store(nullptr, std::memory_order_release);
  item->prev = nullptr;
  item->next = nullptr;
  size_.fetch_sub(1, std::memory_order_relaxed);
  g->lock.unlock();
}

OmGroup* OrderList::relabel_or_split(OmGroup* g) {
  bump_start();
  OmGroup* g2 = nullptr;
  if (g->count > capacity_) {
    // Acquire a top label for the new group that will take the trailing
    // half of g.
    std::uint64_t label2;
    const std::uint64_t gl = g->label.load(std::memory_order_relaxed);
    OmGroup* next = g->next;
    if (next == nullptr) {
      const std::uint64_t span = kTopMax - gl;
      label2 = span > 2 * kTrailingGap ? gl + kTrailingGap : gl + span / 2;
      if (label2 <= gl) {
        std::abort();  // top label space exhausted (unreachable at 2^62)
      }
    } else {
      next->lock.lock();
      const std::uint64_t nl = next->label.load(std::memory_order_relaxed);
      next->lock.unlock();
      label2 = nl - gl >= 2 ? gl + (nl - gl) / 2 : make_top_room_after(g);
    }

    g2 = new OmGroup;
    g2->label.store(label2, std::memory_order_relaxed);
    g2->owner = this;
    g2->lock.lock();

    std::uint32_t keep = g->count / 2;
    if (keep == 0) keep = 1;
    OmItem* cut = g->first;
    for (std::uint32_t i = 1; i < keep; ++i) cut = cut->next;
    OmItem* moved = cut->next;
    g2->first = moved;
    g2->last = g->last;
    g->last = cut;
    cut->next = nullptr;
    if (moved) moved->prev = nullptr;
    g2->count = g->count - keep;
    g->count = keep;
    for (OmItem* it = moved; it != nullptr; it = it->next)
      it->group.store(g2, std::memory_order_release);
    g2->next = g->next;
    g->next = g2;

    // Redistribute bottom labels of the new group.
    std::uint64_t spacing = kBottomMax / (g2->count + 1);
    std::uint64_t label = 0;
    for (OmItem* it = g2->first; it != nullptr; it = it->next) {
      label += spacing;
      it->label.store(label, std::memory_order_relaxed);
    }
  }

  // Redistribute bottom labels of g.
  if (g->count > 0) {
    std::uint64_t spacing = kBottomMax / (g->count + 1);
    std::uint64_t label = 0;
    for (OmItem* it = g->first; it != nullptr; it = it->next) {
      label += spacing;
      it->label.store(label, std::memory_order_relaxed);
    }
  }
  bump_finish();
  return g2;
}

std::uint64_t OrderList::make_top_room_after(OmGroup* g) {
  // Rebalance walk (paper §3.4): traverse successors until the label gap
  // exceeds j^2 (j = traversed group count), then respace the walked
  // groups inside that gap, reserving the first slot for the caller.
  // Group locks are taken strictly forward; empty groups encountered
  // along the way are absorbed.
  const std::uint64_t base = g->label.load(std::memory_order_relaxed);
  std::vector<OmGroup*> walked;
  std::uint64_t j = 1;
  std::uint64_t limit = kTopMax;
  OmGroup* cur = g;
  for (;;) {
    OmGroup* nxt = cur->next;
    if (nxt == nullptr) {
      limit = kTopMax;
      break;
    }
    nxt->lock.lock();
    if (nxt->count == 0) {
      cur->next = nxt->next;
      nxt->lock.unlock();
      quarantine(nxt);
      continue;
    }
    ++j;
    if (nxt->label.load(std::memory_order_relaxed) - base > j * j) {
      limit = nxt->label.load(std::memory_order_relaxed);
      nxt->lock.unlock();
      break;
    }
    walked.push_back(nxt);
    cur = nxt;
  }

  const std::uint64_t span = limit - base;
  const std::uint64_t slots = static_cast<std::uint64_t>(walked.size()) + 2;
  std::uint64_t gap = span / slots;
  if (gap == 0) {
    // Degenerate: fall back to unit spacing; span > walked.size() + 1
    // is guaranteed by the j^2 walk condition.
    gap = 1;
  }
  const std::uint64_t slot = base + gap;
  std::uint64_t assign = slot;
  for (OmGroup* w : walked) {
    assign += gap;
    w->label.store(assign, std::memory_order_relaxed);
    w->lock.unlock();
  }
  return slot;
}

bool OrderList::precedes(const OmItem* a, const OmItem* b) {
  Backoff backoff;
  for (;;) {
    OmGroup* ga = a->group.load(std::memory_order_acquire);
    OmGroup* gb = b->group.load(std::memory_order_acquire);
    if (ga == nullptr || gb == nullptr) {
      backoff.pause();  // item mid-move; the mover finishes promptly
      continue;
    }
    OrderList* la = ga->owner;
    OrderList* lb = gb->owner;
    if (la != lb) {
      // Caller raced a level move; order by core level (global k-order).
      const CoreValue lvl_a = la->level_;
      const CoreValue lvl_b = lb->level_;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (a->group.load(std::memory_order_relaxed) != ga ||
          b->group.load(std::memory_order_relaxed) != gb)
        continue;
      return lvl_a < lvl_b;
    }
    const std::uint64_t fin =
        la->relabel_finished_.load(std::memory_order_acquire);
    const std::uint64_t sta =
        la->relabel_started_.load(std::memory_order_acquire);
    if (sta != fin) {
      backoff.pause();
      continue;
    }
    const std::uint64_t gla = ga->label.load(std::memory_order_relaxed);
    const std::uint64_t glb = gb->label.load(std::memory_order_relaxed);
    const std::uint64_t ila = a->label.load(std::memory_order_relaxed);
    const std::uint64_t ilb = b->label.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (la->relabel_started_.load(std::memory_order_relaxed) != sta ||
        a->group.load(std::memory_order_relaxed) != ga ||
        b->group.load(std::memory_order_relaxed) != gb)
      continue;
    if (ga != gb) return gla < glb;
    return ila < ilb;
  }
}

OmKey OrderList::snapshot_key(const OmItem* item) const {
  Backoff backoff;
  for (;;) {
    OmGroup* g = item->group.load(std::memory_order_acquire);
    if (g == nullptr) {
      backoff.pause();
      continue;
    }
    const std::uint64_t fin =
        relabel_finished_.load(std::memory_order_acquire);
    const std::uint64_t sta = relabel_started_.load(std::memory_order_acquire);
    if (sta != fin) {
      backoff.pause();
      continue;
    }
    OmKey key{g->label.load(std::memory_order_relaxed),
              item->label.load(std::memory_order_relaxed)};
    std::atomic_thread_fence(std::memory_order_acquire);
    if (relabel_started_.load(std::memory_order_relaxed) != sta ||
        item->group.load(std::memory_order_relaxed) != g)
      continue;
    return key;
  }
}

bool OrderList::quiescent_version(std::uint64_t& ver) const {
  const std::uint64_t fin = relabel_finished_.load(std::memory_order_acquire);
  const std::uint64_t sta = relabel_started_.load(std::memory_order_acquire);
  ver = sta;
  return sta == fin;
}

std::size_t OrderList::compact() {
  // Quiescent-only: absorb empty groups and reclaim the quarantine.
  std::size_t reclaimed = 0;
  OmGroup* g = first_group_;
  while (g != nullptr) {
    OmGroup* nxt = g->next;
    if (nxt != nullptr && nxt->count == 0) {
      g->next = nxt->next;
      delete nxt;
      ++reclaimed;
      continue;
    }
    g = nxt;
  }
  // Quiescent, but the guard keeps the quarantine accesses inside the
  // machine-checked discipline (and costs one uncontended CAS).
  SpinGuard q(quarantine_lock_);
  reclaimed += quarantine_.size();
  for (OmGroup* qg : quarantine_) delete qg;
  quarantine_.clear();
  return reclaimed;
}

bool OrderList::validate(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error) *error = "O_" + std::to_string(level_) + ": " + msg;
    return false;
  };

  std::uint64_t prev_group_label = 0;
  bool first_group_seen = false;
  std::size_t items = 0;
  bool saw_head = false, saw_tail = false;

  for (OmGroup* g = first_group_; g != nullptr; g = g->next) {
    const std::uint64_t gl = g->label.load(std::memory_order_relaxed);
    if (first_group_seen && gl <= prev_group_label)
      return fail("group labels not strictly increasing");
    first_group_seen = true;
    prev_group_label = gl;
    if (g->owner != this) return fail("group owner mismatch");

    std::uint32_t count = 0;
    std::uint64_t prev_label = 0;
    bool any = false;
    for (OmItem* it = g->first; it != nullptr; it = it->next) {
      if (it->group.load(std::memory_order_relaxed) != g)
        return fail("item group pointer mismatch");
      const std::uint64_t il = it->label.load(std::memory_order_relaxed);
      if (any && il <= prev_label)
        return fail("item labels not strictly increasing");
      any = true;
      prev_label = il;
      if (it->next && it->next->prev != it) return fail("broken item links");
      if (it == &head_anchor_) saw_head = true;
      if (it == &tail_anchor_) saw_tail = true;
      ++count;
    }
    if (count != g->count) return fail("group count mismatch");
    if ((g->first == nullptr) != (g->count == 0))
      return fail("first/count inconsistent");
    if (g->first && g->first->prev != nullptr)
      return fail("first item has prev");
    if (g->last && g->last->next != nullptr) return fail("last item has next");
    items += count;
  }
  if (!saw_head || !saw_tail) return fail("anchors missing");
  if (items != size_.load(std::memory_order_relaxed) + 2)
    return fail("size mismatch");

  // Head anchor must be globally first, tail anchor globally last.
  if (first_group_->first != &head_anchor_)
    return fail("head anchor not first");
  OmGroup* last_group = first_group_;
  while (last_group->next != nullptr) last_group = last_group->next;
  // The tail anchor may be followed only by empty groups.
  OmGroup* tg = tail_anchor_.group.load(std::memory_order_relaxed);
  if (tg->last != &tail_anchor_) return fail("tail anchor not last in group");
  for (OmGroup* g = tg->next; g != nullptr; g = g->next)
    if (g->count != 0) return fail("items after tail anchor");
  return true;
}

std::vector<VertexId> OrderList::to_vector() const {
  std::vector<VertexId> out;
  out.reserve(size());
  for (OmGroup* g = first_group_; g != nullptr; g = g->next)
    for (OmItem* it = g->first; it != nullptr; it = it->next)
      if (it != &head_anchor_ && it != &tail_anchor_)
        out.push_back(it->vertex);
  return out;
}

}  // namespace parcore
