// CAS-based spin locks and the paper's lock idioms:
//   - Spinlock: busy-wait lock built on compare_exchange (paper §3.5);
//   - SpinGuard: RAII scope over a Spinlock (scoped capability);
//   - lock_if:  conditional lock, Algorithm 4 — acquires only while a
//     predicate holds and never blocks on a lock whose condition failed;
//   - lock_pair: acquires two locks "together" with no hold-and-wait, so
//     the initial endpoint locking of Algorithms 7/8 cannot deadlock;
//   - TicketLock: FIFO alternative used by the lock ablation bench.
//
// Everything here is capability-annotated (sync/annotations.h) so the
// discipline these comments describe is machine-checked under
// `clang -Wthread-safety`; see docs/STATIC_ANALYSIS.md.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "sync/annotations.h"
#include "sync/backoff.h"
#include "sync/mutex.h"  // AdoptLock tag, shared with MutexGuard

namespace parcore {

class PARCORE_CAPABILITY("spinlock") Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  bool try_lock() PARCORE_TRY_ACQUIRE(true) { return try_lock_impl(); }

  void lock() PARCORE_ACQUIRE() {
    Backoff backoff;
    while (!try_lock_impl()) backoff.pause();
  }

  void unlock() PARCORE_RELEASE() {
    // Releasing a lock nobody holds is always a discipline bug (e.g. a
    // double-unlock on a conditional keep/release path).
    assert(flag_.load(std::memory_order_relaxed) != 0 &&
           "Spinlock::unlock() of an unheld lock");
    flag_.store(0, std::memory_order_release);
  }

  bool is_locked() const {
    return flag_.load(std::memory_order_relaxed) != 0;
  }

 private:
  // The raw acquisition, deliberately unannotated: lock()'s retry loop
  // calls it without confusing the analysis' lock-set join.
  bool try_lock_impl() {
    // Cheap relaxed load first: avoids cache-line ping-pong under
    // contention (test-and-test-and-set).
    if (flag_.load(std::memory_order_relaxed) != 0) return false;
    std::uint32_t expected = 0;
    return flag_.compare_exchange_strong(expected, 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  std::atomic<std::uint32_t> flag_{0};
};

/// RAII scope over a Spinlock: the std::lock_guard shape the annotation
/// sweep converts bare lock()/unlock() pairs to. The adopt form serves
/// the try-lock idiom:
///
///   if (mu_.try_lock()) {
///     SpinGuard g(mu_, kAdoptLock);
///     ...
///   }
class PARCORE_SCOPED_CAPABILITY SpinGuard {
 public:
  explicit SpinGuard(Spinlock& lock) PARCORE_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  /// Adopts a capability the caller already holds (e.g. via try_lock).
  SpinGuard(Spinlock& lock, AdoptLock) PARCORE_REQUIRES(lock) : lock_(lock) {}
  ~SpinGuard() PARCORE_RELEASE() { lock_.unlock(); }

  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  Spinlock& lock_;
};

/// Algorithm 4: Lock(x) with condition c. Busy-waits while c holds and
/// the lock is taken; returns false as soon as c is observed false
/// (either before acquiring or right after — in which case the lock is
/// released again). Returns true with the lock held and c true — the
/// TRY_ACQUIRE contract: callers own `lock` exactly when this returned
/// true, and the analysis checks their release paths against that.
template <typename Cond>
bool lock_if(Spinlock& lock, Cond&& cond) PARCORE_TRY_ACQUIRE(true, lock) {
  Backoff backoff;
  while (cond()) {
    if (lock.try_lock()) {
      if (cond()) return true;
      lock.unlock();
      return false;
    }
    backoff.pause();
  }
  return false;
}

/// Acquires both locks with no hold-and-wait: holds `a` only while
/// *try*-locking `b`, releasing `a` on failure. Waiting happens with no
/// lock held, so this step can never participate in a deadlock cycle
/// (paper §4.1.2 "lock u and v together at the same time"). Annotated
/// ACQUIRE(a, b): on return the caller holds both.
inline void lock_pair(Spinlock& a, Spinlock& b) PARCORE_ACQUIRE(a, b) {
  Backoff backoff;
  for (;;) {
    a.lock();
    if (b.try_lock()) return;
    a.unlock();
    backoff.pause();
  }
}

/// FIFO ticket lock; only used for the lock-primitive ablation bench.
class PARCORE_CAPABILITY("ticketlock") TicketLock {
 public:
  TicketLock() = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;
  TicketLock(TicketLock&&) = delete;
  TicketLock& operator=(TicketLock&&) = delete;

  void lock() PARCORE_ACQUIRE() {
    const std::uint32_t my = next_.fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    while (serving_.load(std::memory_order_acquire) != my) backoff.pause();
  }

  void unlock() PARCORE_RELEASE() {
    serving_.fetch_add(1, std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> next_{0};
  std::atomic<std::uint32_t> serving_{0};
};

}  // namespace parcore
