// CAS-based spin locks and the paper's lock idioms:
//   - Spinlock: busy-wait lock built on compare_exchange (paper §3.5);
//   - lock_if:  conditional lock, Algorithm 4 — acquires only while a
//     predicate holds and never blocks on a lock whose condition failed;
//   - lock_pair: acquires two locks "together" with no hold-and-wait, so
//     the initial endpoint locking of Algorithms 7/8 cannot deadlock;
//   - TicketLock: FIFO alternative used by the lock ablation bench.
#pragma once

#include <atomic>
#include <cstdint>

#include "sync/backoff.h"

namespace parcore {

class Spinlock {
 public:
  Spinlock() = default;
  Spinlock(const Spinlock&) = delete;
  Spinlock& operator=(const Spinlock&) = delete;

  bool try_lock() {
    // Cheap relaxed load first: avoids cache-line ping-pong under
    // contention (test-and-test-and-set).
    if (flag_.load(std::memory_order_relaxed) != 0) return false;
    std::uint32_t expected = 0;
    return flag_.compare_exchange_strong(expected, 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void lock() {
    Backoff backoff;
    while (!try_lock()) backoff.pause();
  }

  void unlock() { flag_.store(0, std::memory_order_release); }

  bool is_locked() const {
    return flag_.load(std::memory_order_relaxed) != 0;
  }

 private:
  std::atomic<std::uint32_t> flag_{0};
};

/// Algorithm 4: Lock(x) with condition c. Busy-waits while c holds and
/// the lock is taken; returns false as soon as c is observed false
/// (either before acquiring or right after — in which case the lock is
/// released again). Returns true with the lock held and c true.
template <typename Cond>
bool lock_if(Spinlock& lock, Cond&& cond) {
  Backoff backoff;
  while (cond()) {
    if (lock.try_lock()) {
      if (cond()) return true;
      lock.unlock();
      return false;
    }
    backoff.pause();
  }
  return false;
}

/// Acquires both locks with no hold-and-wait: holds `a` only while
/// *try*-locking `b`, releasing `a` on failure. Waiting happens with no
/// lock held, so this step can never participate in a deadlock cycle
/// (paper §4.1.2 "lock u and v together at the same time").
inline void lock_pair(Spinlock& a, Spinlock& b) {
  Backoff backoff;
  for (;;) {
    a.lock();
    if (b.try_lock()) return;
    a.unlock();
    backoff.pause();
  }
}

/// FIFO ticket lock; only used for the lock-primitive ablation bench.
class TicketLock {
 public:
  void lock() {
    const std::uint32_t my = next_.fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    while (serving_.load(std::memory_order_acquire) != my) backoff.pause();
  }

  void unlock() {
    serving_.fetch_add(1, std::memory_order_release);
  }

 private:
  std::atomic<std::uint32_t> next_{0};
  std::atomic<std::uint32_t> serving_{0};
};

}  // namespace parcore
