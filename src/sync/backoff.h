// CPU-friendly busy-wait primitives.
#pragma once

#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace parcore {

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Exponential backoff that eventually yields the time slice, keeping the
/// locks "weakly fair" (paper §3.5) even when oversubscribed.
class Backoff {
 public:
  void pause() {
    if (spins_ < kMaxSpins) {
      for (int i = 0; i < spins_; ++i) cpu_pause();
      spins_ <<= 1;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() { spins_ = 1; }

 private:
  static constexpr int kMaxSpins = 1 << 10;
  int spins_ = 1;
};

}  // namespace parcore
