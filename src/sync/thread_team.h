// A persistent worker pool with fork-join semantics: run(P, fn) wakes P
// workers, each executes fn(worker_index), and run returns when all are
// done. Persistent threads keep per-batch dispatch overhead far below
// the millisecond-scale measurements of the evaluation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sync/annotations.h"
#include "sync/mutex.h"

namespace parcore {

class ThreadTeam {
 public:
  /// Creates a team able to serve up to `max_workers` concurrent workers
  /// (defaults to hardware concurrency).
  explicit ThreadTeam(int max_workers = 0);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  /// Runs fn(worker) for worker in [0, workers); blocks until all done.
  /// `workers` is clamped to [1, max_workers()]. Worker 0 runs on the
  /// calling thread so run(1, fn) has no cross-thread hop.
  void run(int workers, const std::function<void(int)>& fn);

  int max_workers() const { return static_cast<int>(threads_.size()) + 1; }

  static int hardware_workers();

 private:
  void worker_loop(int index);

  std::vector<std::thread> threads_;
  Mutex mu_;
  CondVar start_cv_;
  CondVar done_cv_;
  const std::function<void(int)>* task_ PARCORE_GUARDED_BY(mu_) = nullptr;
  std::uint64_t generation_ PARCORE_GUARDED_BY(mu_) = 0;
  // workers participating in the current generation
  int active_ PARCORE_GUARDED_BY(mu_) = 0;
  // workers not yet finished
  int remaining_ PARCORE_GUARDED_BY(mu_) = 0;
  bool shutdown_ PARCORE_GUARDED_BY(mu_) = false;
};

/// Dynamic-chunk parallel for over [begin, end).
void parallel_for(ThreadTeam& team, int workers, std::size_t begin,
                  std::size_t end, const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 256);

}  // namespace parcore
