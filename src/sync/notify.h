// Shutdown-aware sleep/wake channel for background service threads.
//
// The engine's scheduler thread blocks on a Notifier between flushes:
// producers `notify()` when the ingest buffer crosses the size
// threshold, and the wait times out at the flush interval so buffered
// updates never go stale. A stop request wins over both. This is a
// plain mutex + condition variable — the scheduler sleeps for
// milliseconds at a time, so the spin-based primitives in spinlock.h
// are the wrong tool here.
#pragma once

#include <chrono>

#include "sync/annotations.h"
#include "sync/mutex.h"

namespace parcore {

class Notifier {
 public:
  /// Wakes one waiter (cheap; callable from any producer thread).
  void notify() {
    {
      MutexGuard lk(mu_);
      signalled_ = true;
    }
    cv_.notify_one();
  }

  /// Wakes every waiter. Used where several threads can block on one
  /// channel (backpressured producers waiting for a drain); a lone
  /// notify() would wake one and leave the rest for the timeout.
  void notify_all() {
    {
      MutexGuard lk(mu_);
      signalled_ = true;
    }
    cv_.notify_all();
  }

  /// Re-arms after a stop (and clears any stale signal) so the channel
  /// can serve a restarted service thread. Call only while no thread is
  /// waiting.
  void reset() {
    MutexGuard lk(mu_);
    stop_ = false;
    signalled_ = false;
  }

  /// Requests shutdown; all current and future waits return immediately.
  void request_stop() {
    {
      MutexGuard lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
  }

  bool stop_requested() const {
    MutexGuard lk(mu_);
    return stop_;
  }

  /// Blocks until notified, stopped, or `timeout` elapses. Returns true
  /// when woken by notify() or stop (i.e. there is something to do right
  /// now), false on a plain timeout. Consumes the pending signal.
  template <typename Rep, typename Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexGuard lk(mu_);
    // Explicit predicate loop (not a wait(lambda)): the analysis treats
    // lambda bodies as lock-free contexts, while here every read of the
    // guarded flags happens visibly under mu_.
    while (!signalled_ && !stop_) {
      if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) break;
    }
    const bool signalled = signalled_ || stop_;
    signalled_ = false;
    return signalled;
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  bool signalled_ PARCORE_GUARDED_BY(mu_) = false;
  bool stop_ PARCORE_GUARDED_BY(mu_) = false;
};

}  // namespace parcore
