#include "sync/thread_team.h"

#include <algorithm>
#include <atomic>

namespace parcore {

int ThreadTeam::hardware_workers() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 4 : static_cast<int>(hc);
}

ThreadTeam::ThreadTeam(int max_workers) {
  if (max_workers <= 0) max_workers = hardware_workers();
  const int helpers = std::max(0, max_workers - 1);
  threads_.reserve(static_cast<std::size_t>(helpers));
  for (int i = 0; i < helpers; ++i)
    threads_.emplace_back([this, i] { worker_loop(i + 1); });
}

ThreadTeam::~ThreadTeam() {
  {
    MutexGuard g(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadTeam::worker_loop(int index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* task = nullptr;
    {
      MutexGuard g(mu_);
      while (!shutdown_ && !(generation_ != seen && index < active_))
        start_cv_.wait(mu_);
      if (shutdown_) return;
      seen = generation_;
      task = task_;
    }
    (*task)(index);
    {
      MutexGuard g(mu_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadTeam::run(int workers, const std::function<void(int)>& fn) {
  workers = std::clamp(workers, 1, max_workers());
  if (workers == 1) {
    fn(0);
    return;
  }
  {
    MutexGuard g(mu_);
    task_ = &fn;
    active_ = workers;
    remaining_ = workers - 1;  // helpers; worker 0 is this thread
    ++generation_;
  }
  start_cv_.notify_all();
  fn(0);
  {
    MutexGuard g(mu_);
    while (remaining_ != 0) done_cv_.wait(mu_);
    task_ = nullptr;
    active_ = 0;
  }
}

void parallel_for(ThreadTeam& team, int workers, std::size_t begin,
                  std::size_t end, const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  std::atomic<std::size_t> next{begin};
  team.run(workers, [&](int) {
    for (;;) {
      const std::size_t lo = next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) return;
      const std::size_t hi = std::min(end, lo + grain);
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }
  });
}

}  // namespace parcore
