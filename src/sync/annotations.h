// Clang Thread Safety Analysis attribute macros (no-ops elsewhere).
//
// These wrap the capability-based TSA vocabulary so the lock discipline
// the paper hand-enforces — conditional `lock_if` (Algorithm 4),
// no-hold-and-wait `lock_pair` (§4.1.2), per-structure guard fields —
// becomes a compile-time property under `clang -Wthread-safety`.
// docs/STATIC_ANALYSIS.md is the project-level guide: what each macro
// means, how to read an analysis error, and when an exemption
// (PARCORE_NO_THREAD_SAFETY_ANALYSIS) is legitimate.
//
// Vocabulary map (clang attribute -> macro):
//   capability(x)              PARCORE_CAPABILITY(x)      lock types
//   scoped_lockable            PARCORE_SCOPED_CAPABILITY  RAII guards
//   guarded_by(l)              PARCORE_GUARDED_BY(l)      data fields
//   pt_guarded_by(l)           PARCORE_PT_GUARDED_BY(l)   pointee data
//   requires_capability(l...)  PARCORE_REQUIRES(l...)     caller holds l
//   acquire_capability(l...)   PARCORE_ACQUIRE(l...)      fn acquires l
//   release_capability(l...)   PARCORE_RELEASE(l...)      fn releases l
//   try_acquire_capability     PARCORE_TRY_ACQUIRE(b,l..) conditional
//   locks_excluded(l...)       PARCORE_EXCLUDES(l...)     caller must NOT hold
//   assert_capability(l)       PARCORE_ASSERT_CAPABILITY(l)
//   lock_returned(l)           PARCORE_RETURN_CAPABILITY(l)
//   acquired_before/after      PARCORE_ACQUIRED_{BEFORE,AFTER}(l...)
//   no_thread_safety_analysis  PARCORE_NO_THREAD_SAFETY_ANALYSIS
//
// The analysis is purely syntactic — no alias tracking — so code that
// re-points a lock expression (hand-over-hand group walks in
// om/order_list.cpp, per-vertex lock arrays in src/parallel) carries
// PARCORE_NO_THREAD_SAFETY_ANALYSIS plus a comment naming the manual
// discipline that is in force. tools/parcore_lint.py budgets those
// exemptions.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define PARCORE_TSA(x) __attribute__((x))
#else
#define PARCORE_TSA(x)  // no-op: GCC/MSVC parse the code, clang checks it
#endif

#define PARCORE_CAPABILITY(x) PARCORE_TSA(capability(x))
#define PARCORE_SCOPED_CAPABILITY PARCORE_TSA(scoped_lockable)
#define PARCORE_GUARDED_BY(x) PARCORE_TSA(guarded_by(x))
#define PARCORE_PT_GUARDED_BY(x) PARCORE_TSA(pt_guarded_by(x))
#define PARCORE_ACQUIRED_BEFORE(...) PARCORE_TSA(acquired_before(__VA_ARGS__))
#define PARCORE_ACQUIRED_AFTER(...) PARCORE_TSA(acquired_after(__VA_ARGS__))
#define PARCORE_REQUIRES(...) PARCORE_TSA(requires_capability(__VA_ARGS__))
#define PARCORE_REQUIRES_SHARED(...) \
  PARCORE_TSA(requires_shared_capability(__VA_ARGS__))
#define PARCORE_ACQUIRE(...) PARCORE_TSA(acquire_capability(__VA_ARGS__))
#define PARCORE_ACQUIRE_SHARED(...) \
  PARCORE_TSA(acquire_shared_capability(__VA_ARGS__))
#define PARCORE_RELEASE(...) PARCORE_TSA(release_capability(__VA_ARGS__))
#define PARCORE_RELEASE_SHARED(...) \
  PARCORE_TSA(release_shared_capability(__VA_ARGS__))
#define PARCORE_TRY_ACQUIRE(...) \
  PARCORE_TSA(try_acquire_capability(__VA_ARGS__))
#define PARCORE_EXCLUDES(...) PARCORE_TSA(locks_excluded(__VA_ARGS__))
#define PARCORE_ASSERT_CAPABILITY(x) PARCORE_TSA(assert_capability(x))
#define PARCORE_RETURN_CAPABILITY(x) PARCORE_TSA(lock_returned(x))
#define PARCORE_NO_THREAD_SAFETY_ANALYSIS \
  PARCORE_TSA(no_thread_safety_analysis)
