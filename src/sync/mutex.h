// Capability-annotated wrappers over std::mutex / condition variables.
//
// libstdc++'s std::mutex carries no thread-safety attributes, so code
// guarded by one is invisible to clang's analysis. Mutex is a drop-in
// replacement that declares itself a capability; MutexGuard is the RAII
// scope (std::lock_guard equivalent, plus an adopt form for the
// try-lock idiom); CondVar wraps std::condition_variable_any so waits
// can be expressed directly against a Mutex while the capability stays
// held across the wait in the analysis' eyes.
//
// Try-lock idiom (see StreamingEngine::stats): scoped try-locks join
// poorly in older clangs, so the supported shape is
//
//   if (mu_.try_lock()) {
//     MutexGuard lk(mu_, kAdoptLock);  // takes over the held capability
//     ...
//   }
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "sync/annotations.h"

namespace parcore {

/// Tag type selecting the adopt-an-already-held-lock guard constructors
/// (our std::adopt_lock: the capability must be held on entry and the
/// guard takes over releasing it).
struct AdoptLock {
  explicit AdoptLock() = default;
};
inline constexpr AdoptLock kAdoptLock{};

class PARCORE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PARCORE_ACQUIRE() { mu_.lock(); }
  bool try_lock() PARCORE_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() PARCORE_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// std::lock_guard over a Mutex, visible to the analysis.
class PARCORE_SCOPED_CAPABILITY MutexGuard {
 public:
  explicit MutexGuard(Mutex& mu) PARCORE_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  /// Adopts a capability the caller already holds (e.g. via try_lock).
  MutexGuard(Mutex& mu, AdoptLock) PARCORE_REQUIRES(mu) : mu_(mu) {}
  ~MutexGuard() PARCORE_RELEASE() { mu_.unlock(); }

  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with Mutex. Waits REQUIRE the mutex: it is
/// held on entry, released for the duration of the block, and re-held
/// on return — exactly the contract the annotation states, since the
/// intermediate unlock/lock happen inside the (unannotated) standard
/// library. Callers loop on their predicate explicitly rather than
/// passing a lambda: TSA analyses lambda bodies as lock-free functions,
/// so a predicate reading guarded fields would falsely warn.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(Mutex& mu) PARCORE_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          std::chrono::duration<Rep, Period> timeout)
      PARCORE_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mu,
                            std::chrono::time_point<Clock, Duration> deadline)
      PARCORE_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace parcore
