// Umbrella header: the public API of parcore.
//
//   DynamicGraph            mutable undirected graph
//   generators / suite      synthetic workloads (ER, BA, R-MAT, grid,
//                           temporal streams; Table-2 stand-ins)
//   bz_decompose / park_decompose / truss_decompose
//                           static decompositions
//   core_query              k-core extraction, subcores, degeneracy
//   SeqOrderMaintainer      sequential Simplified-Order maintenance
//   TraversalMaintainer     sequential Traversal maintenance (baseline)
//   ParallelOrderMaintainer the paper's contribution (OurI / OurR)
//   JeMaintainer            join-edge-set parallel baseline (JEI / JER)
//   engine::StreamingEngine concurrent ingest + batch coalescing +
//                           epoch-snapshot queries (the service core)
//   io::read_graph / io::read_temporal_stream / io::save_pcg
//                           real-dataset loading (SNAP / MatrixMarket /
//                           .pcg cache / temporal streams)
//
// See README.md for a quickstart and DESIGN.md for the architecture.
#pragma once

#include "baseline/je.h"
#include "decomp/bz.h"
#include "decomp/core_query.h"
#include "decomp/park.h"
#include "decomp/truss.h"
#include "decomp/verify.h"
#include "engine/coalesce.h"
#include "engine/engine.h"
#include "engine/ingest.h"
#include "gen/generators.h"
#include "gen/stream_adapter.h"
#include "gen/suite.h"
#include "graph/dynamic_graph.h"
#include "graph/edge_list.h"
#include "io/graph_reader.h"
#include "io/pcg.h"
#include "io/temporal_stream.h"
#include "maint/seq_order.h"
#include "maint/traversal.h"
#include "parallel/parallel_order.h"
#include "support/rng.h"
#include "support/timer.h"
#include "sync/thread_team.h"
