// Sharded multi-producer ingest buffer for raw graph updates.
//
// Producers append to one of S spinlock-guarded shards; the single
// consumer (the engine's scheduler thread) drains all shards at flush
// time. Sharding keeps producers from serialising on one lock; each
// producer thread is pinned to a shard chosen from its thread id, so
// the updates of ONE producer stay FIFO within a shard. Cross-producer
// interleaving is arbitrary — exactly the guarantee a concurrent
// submit API can give, and all the coalescer needs (it serialises
// racing updates to the same edge in drain order).
//
// Admission control (docs/ROBUSTNESS.md): an optional cap bounds the
// buffered count, with three overload policies for pushes that arrive
// at the cap. The at-cap probe is the size fetch_add itself (which
// serializes), so kShed holds the cap exactly; kBlock re-inserts after
// its wait without re-probing and can overshoot by at most one update
// per concurrent producer; kDegrade admits at the cap by design. A
// bounded overshoot is all an OOM guard needs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/types.h"
#include "sync/annotations.h"
#include "sync/notify.h"
#include "sync/spinlock.h"

namespace parcore::engine {

/// What happens to a push that finds the buffer at its cap.
enum class OverloadPolicy {
  /// Producer backpressure: block (bounded waits on a drain-notified
  /// channel) until occupancy drops below the cap or close() is called.
  kBlock,
  /// Load shedding: reject the NEWEST update (this one); the caller
  /// sees accepted == false and can retry, back off, or drop.
  kShed,
  /// Accept, but first force-coalesce the producer's own shard
  /// (per-edge last-op-wins, survivor order preserved) to shed the
  /// OLDEST redundant ops. Bounds memory on duplicate-heavy streams;
  /// an all-distinct stream degrades to unbounded admission.
  kDegrade,
};

/// Outcome of one push.
struct PushResult {
  /// Buffered count just before this push (threshold-crossing
  /// detection). For a shed push: the occupancy that caused the shed.
  std::size_t prev = 0;
  /// False iff the update was rejected (kShed at cap).
  bool accepted = true;
  /// Wall time this push spent blocked (kBlock at cap).
  std::uint64_t blocked_us = 0;
};

class IngestQueue {
 public:
  struct Options {
    /// Rounded up to a power of two.
    std::size_t shards = 16;
    /// Max buffered updates; 0 = unbounded (no admission checks).
    std::size_t cap = 0;
    OverloadPolicy policy = OverloadPolicy::kBlock;
    /// Non-null: notified once per push that finds the queue at its
    /// cap, BEFORE the policy acts — the engine points this at its
    /// scheduler so the drain a blocking producer is about to wait on
    /// is already on its way. Slow-path only: the uncapped/uncontended
    /// push never touches it (the <=2% admission-overhead gate is why
    /// this lives here and not as an extra check in submit()).
    Notifier* overflow = nullptr;
  };

  explicit IngestQueue(Options opts);
  /// Unbounded queue with `shards` shards (legacy shape).
  explicit IngestQueue(std::size_t shards = 16)
      : IngestQueue(Options{shards, 0, OverloadPolicy::kBlock}) {}

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Appends one update; callable concurrently from any thread. With a
  /// cap configured, applies the overload policy first (may block,
  /// reject, or compact — see PushResult). kBlock requires a live
  /// consumer calling drain(), else blocked producers only return once
  /// close() is called.
  PushResult push(const GraphUpdate& u);

  /// Moves every buffered update into `out` (appending) and empties the
  /// shards. Single-consumer: callers must serialise drains themselves.
  /// Returns the number of updates drained. Wakes blocked producers.
  std::size_t drain(std::vector<GraphUpdate>& out);

  /// Releases blocked producers and disables the cap (shutdown path:
  /// stragglers must not deadlock against a scheduler that already
  /// stopped draining). Idempotent; open() re-arms after a restart.
  void close();
  void open();
  bool closed() const { return closed_.load(std::memory_order_relaxed); }

  /// Buffered update count. Exact with quiescent producers, otherwise a
  /// lower bound that lags pushes by at most the in-flight ones — good
  /// enough for flush-threshold checks.
  std::size_t approx_size() const {
    return size_.load(std::memory_order_relaxed);
  }

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t cap() const { return cap_; }
  OverloadPolicy policy() const { return policy_; }

  /// Cumulative admission outcomes (relaxed reads; maintained only on
  /// the overload slow paths, so an uncontended push stays as cheap as
  /// the unbounded queue's).
  struct AdmissionStats {
    std::uint64_t shed = 0;        // pushes rejected (kShed)
    std::uint64_t block_waits = 0; // pushes that had to block (kBlock)
    std::uint64_t blocked_us = 0;  // total producer wall time blocked
    std::uint64_t compacted = 0;   // ops removed by kDegrade compaction
  };
  AdmissionStats admission() const {
    return AdmissionStats{shed_.load(std::memory_order_relaxed),
                          block_waits_.load(std::memory_order_relaxed),
                          blocked_us_.load(std::memory_order_relaxed),
                          compacted_.load(std::memory_order_relaxed)};
  }

 private:
  // One cache line per shard header so producers on different shards
  // never ping-pong a line (the vectors' heap blocks are disjoint).
  struct alignas(64) Shard {
    Spinlock lock;
    std::vector<GraphUpdate> buf PARCORE_GUARDED_BY(lock);
    // kDegrade amortization: survivors of the last compaction. The next
    // compaction is skipped until the shard has roughly doubled past
    // this floor, so an all-distinct stream pays O(1) amortized per
    // push instead of O(size) — at the price of at most 2x floor + O(1)
    // extra occupancy per shard.
    std::size_t compact_floor PARCORE_GUARDED_BY(lock) = 0;
  };

  Shard& shard_for_this_thread();
  /// Overload slow path, entered lock-free: push() already retracted
  /// the speculative insert (kShed/kBlock) or left it admitted
  /// (kDegrade) under the same lock hold that inserted it — that one
  /// hold is what makes shed exact: a drain can never deliver an update
  /// whose push reported accepted == false. r.prev carries the
  /// fetch_add probe that tripped the cap.
  PushResult push_at_cap(Shard& s, const GraphUpdate& u, PushResult r);
  /// Per-edge last-op-wins over one shard, survivors keeping their
  /// relative order. Returns ops removed; adjusts size_.
  std::size_t compact_shard(Shard& s);

  std::vector<Shard> shards_;
  std::size_t mask_ = 0;
  std::size_t cap_ = 0;
  OverloadPolicy policy_ = OverloadPolicy::kBlock;
  Notifier* overflow_ = nullptr;
  std::atomic<std::size_t> size_{0};
  std::atomic<bool> closed_{false};
  Notifier drained_;  // kBlock producers wait here; drain()/close() wake

  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> block_waits_{0};
  std::atomic<std::uint64_t> blocked_us_{0};
  std::atomic<std::uint64_t> compacted_{0};
};

}  // namespace parcore::engine
