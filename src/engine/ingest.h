// Sharded multi-producer ingest buffer for raw graph updates.
//
// Producers append to one of S spinlock-guarded shards; the single
// consumer (the engine's scheduler thread) drains all shards at flush
// time. Sharding keeps producers from serialising on one lock; each
// producer thread is pinned to a shard chosen from its thread id, so
// the updates of ONE producer stay FIFO within a shard. Cross-producer
// interleaving is arbitrary — exactly the guarantee a concurrent
// submit API can give, and all the coalescer needs (it serialises
// racing updates to the same edge in drain order).
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "support/types.h"
#include "sync/spinlock.h"

namespace parcore::engine {

class IngestQueue {
 public:
  /// `shards` is rounded up to a power of two (default 16).
  explicit IngestQueue(std::size_t shards = 16);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Appends one update; callable concurrently from any thread.
  /// Returns the buffered count just before this push, so callers can
  /// detect threshold crossings without re-reading the counter.
  std::size_t push(const GraphUpdate& u);

  /// Moves every buffered update into `out` (appending) and empties the
  /// shards. Single-consumer: callers must serialise drains themselves.
  /// Returns the number of updates drained.
  std::size_t drain(std::vector<GraphUpdate>& out);

  /// Buffered update count. Exact with quiescent producers, otherwise a
  /// lower bound that lags pushes by at most the in-flight ones — good
  /// enough for flush-threshold checks.
  std::size_t approx_size() const {
    return size_.load(std::memory_order_relaxed);
  }

  std::size_t shard_count() const { return shards_.size(); }

 private:
  // One cache line per shard header so producers on different shards
  // never ping-pong a line (the vectors' heap blocks are disjoint).
  struct alignas(64) Shard {
    Spinlock lock;
    std::vector<GraphUpdate> buf;
  };

  Shard& shard_for_this_thread();

  std::vector<Shard> shards_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> size_{0};
};

}  // namespace parcore::engine
