// The streaming update engine: a continuously running service core
// wrapped around ParallelOrderMaintainer.
//
// Three layers (DESIGN.md §6):
//   1. ingest   — any number of producer threads submit interleaved
//                 insert/remove updates into a sharded buffer
//                 (engine/ingest.h); submission never blocks on graph
//                 maintenance.
//   2. schedule — one background scheduler thread drains the buffer
//                 when it crosses a size threshold or a staleness
//                 deadline, coalesces the drain (engine/coalesce.h)
//                 into the disjoint batches the maintainer requires,
//                 and applies them on a ThreadTeam. An adaptive policy
//                 steers the size threshold toward a target flush
//                 latency.
//   3. query    — readers get epoch snapshots: an immutable paged
//                 CoreView (query/versioned_cores.h) published after
//                 each flush. Publication is copy-on-write — only the
//                 pages holding vertices the maintainer changed are
//                 cloned, so publishing costs O(|V*| + dirty pages),
//                 not O(n). Queries never wait on graph maintenance
//                 (only on a spinlock held for a pointer copy) and
//                 always see a state that existed at some epoch
//                 boundary — never a half-applied batch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <functional>

#include "durability/manager.h"
#include "engine/coalesce.h"
#include "engine/ingest.h"
#include "graph/dynamic_graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_order.h"
#include "query/versioned_cores.h"
#include "support/histogram.h"
#include "support/timer.h"
#include "support/types.h"
#include "sync/annotations.h"
#include "sync/mutex.h"
#include "sync/notify.h"
#include "sync/spinlock.h"
#include "sync/thread_team.h"

namespace parcore::engine {

/// Immutable view of the maintained state at one epoch boundary.
/// Epoch 0 is the initial decomposition; epoch e > 0 is after e flushes.
/// Core numbers live in `view`, a paged copy-on-write index: epochs
/// share every page the flush did not touch, so holding many snapshots
/// costs memory proportional to what actually changed between them.
struct EngineSnapshot {
  std::uint64_t epoch = 0;
  /// Wait-free O(1) core(v) reads; immutable for this snapshot's
  /// lifetime. The ported core_query overloads (decomp/core_query.h)
  /// run directly against it.
  query::CoreView view;
  CoreValue max_core = 0;
  std::size_t num_edges = 0;
  /// Deep copy of the graph at this epoch; null unless
  /// Options::snapshot_graph is set. The copy compacts into a fresh
  /// arena (a linear slab fill, not n per-vertex allocations), taken at
  /// flush quiescence, so readers get a fully consistent structure.
  std::shared_ptr<const DynamicGraph> graph;

  CoreValue core(VertexId v) const { return view.core(v); }
  std::size_t num_vertices() const { return view.size(); }
  bool in_kcore(VertexId v, CoreValue k) const { return core(v) >= k; }

  /// Legacy escape hatch: the flat core vector, copied O(n) from the
  /// pages. New code should query `view` directly.
  std::vector<CoreValue> materialize() const { return view.materialize(); }

  /// All vertices with core >= k (the k-core's vertex set).
  std::vector<VertexId> kcore_members(CoreValue k) const;
};

/// Cumulative counters since engine construction. `flush_us` /
/// `batch_sizes` are merged across flushes; percentiles come from
/// SizeHistogram::percentile.
///
/// Epoch/stats consistency: `epochs` is the epoch of the snapshot the
/// stats describe, and a flush updates stats BEFORE swapping the new
/// snapshot in. A reader that grabs `snapshot()` and then `stats()` is
/// therefore guaranteed `stats().epochs >= snapshot()->epoch` — stats
/// can run ahead of the snapshot it saw, never behind it.
/// Outcome of one submit(), surfaced so callers can react to admission
/// control (docs/ROBUSTNESS.md): with the kShed policy at cap the
/// update was NOT enqueued and `accepted` is false — retry, back off,
/// or drop. With kBlock, `blocked_us` is the backpressure wait this
/// submit absorbed. Existing callers that ignore the result keep the
/// pre-admission behaviour (block policy default).
struct SubmitResult {
  bool accepted = true;
  std::uint64_t blocked_us = 0;
};

struct EngineStats {
  std::uint64_t epochs = 0;  // epoch described by these stats
  std::uint64_t submitted = 0;
  std::uint64_t applied_inserts = 0;
  std::uint64_t applied_removes = 0;
  std::uint64_t skipped = 0;  // maintainer-reported (should stay 0: the
                              // coalescer pre-filters no-ops)
  std::uint64_t om_compactions = 0;        // quiescent compact_all() runs
  std::uint64_t om_groups_reclaimed = 0;   // OM groups freed by them
  /// Conflict-aware dispatch accounting, summed over every planned
  /// batch (insert and remove batches plan separately). All zero unless
  /// Options::maintainer.schedule == ScheduleMode::kPlan.
  struct PlanAggregate {
    std::uint64_t batches = 0;         // planned batches executed
    std::uint64_t buckets = 0;         // summed distinct affected levels
    std::uint64_t waves = 0;           // summed conflict-free waves
    std::uint64_t overflow_edges = 0;  // edges past max_waves (hubs)
    std::uint64_t presorted = 0;       // batches where the coalescer's
                                       // pre-bucketing skipped the sort
    std::uint64_t steals = 0;          // chunks run by a non-owner
  };
  PlanAggregate plan;
  /// Per-phase wall time summed over every flush, microseconds. The
  /// nine phases partition each flush window (obs/trace.h FlushSpan),
  /// so their sums track `flush_us`'s total up to per-flush rounding.
  /// wal_us / checkpoint_us stay 0 unless durability is enabled.
  struct PhaseTotals {
    std::uint64_t drain_us = 0;
    std::uint64_t coalesce_us = 0;
    std::uint64_t wal_us = 0;
    std::uint64_t plan_us = 0;
    std::uint64_t apply_us = 0;
    std::uint64_t om_compact_us = 0;
    std::uint64_t publish_us = 0;
    std::uint64_t checkpoint_us = 0;
    /// Self-healing rebuilds (stays 0 unless the re-verifier found a
    /// mismatch and the next flush re-decomposed from scratch).
    std::uint64_t repair_us = 0;
    /// Worker attribution of the apply dispatches (trace.h semantics).
    std::uint64_t worker_busy_us = 0;
    std::uint64_t worker_idle_us = 0;
  };
  PhaseTotals phases;
  /// Durability accounting (checkpoints written, WAL frames/bytes/
  /// fsyncs); all zero unless Options::durability.dir is set.
  durability::Manager::Totals durability;
  /// Adjacency-storage footprint. The sample is an O(n) scan, so it is
  /// NOT refreshed on every flush. Staleness rule: the sample is retaken
  /// (a) at every OM compaction, (b) at stop(), and (c) lazily by
  /// stats() itself whenever the sample is older than
  /// Options::memory_refresh_epochs epochs AND no flush is running
  /// (stats() try-locks the flush mutex; it never blocks a flush or
  /// another reader to refresh). `memory_epoch` records the epoch the
  /// sample was taken at, so readers can judge residual staleness —
  /// bounded by max(memory_refresh_epochs, epochs between stats calls).
  GraphMemoryStats memory;
  std::uint64_t memory_epoch = 0;
  CoalesceStats coalesce;
  /// Copy-on-write snapshot publication: pages cloned across all
  /// epochs (epoch 0's full build counts all pages) and per-epoch
  /// publish wall time. publish_us is the number the paged index
  /// keeps O(|V*|): it must track batch size, not n.
  std::uint64_t snapshot_pages_cloned = 0;
  /// Constructor wall time, microseconds: initial decomposition +
  /// epoch-0 publish (+ initial checkpoint when durability is on). Also
  /// recorded into the registry histogram `parcore_engine_init_us`, so
  /// the shared summary renderer reports the cold-start cost.
  std::uint64_t engine_init_us = 0;
  /// Background re-verifier accounting (Options::reverify_interval_ms):
  /// full off-thread recomputes completed, and vertices whose live
  /// CoreView core disagreed with the recompute (must stay 0 — any
  /// mismatch is a maintenance bug caught in production).
  std::uint64_t verify_runs = 0;
  std::uint64_t verify_mismatches = 0;
  /// Self-healing (docs/ROBUSTNESS.md): full state rebuilds triggered
  /// by re-verifier mismatches, and whether queries are currently
  /// quarantined to the last verified snapshot while a repair is
  /// pending.
  std::uint64_t repairs = 0;
  bool quarantined = false;
  /// Admission control (Options::ingest_cap); all zero when unbounded.
  IngestQueue::AdmissionStats admission;
  /// Flush-lag overload detector: whether the engine currently
  /// considers itself overloaded (backlog after a flush still >= the
  /// flush threshold; cleared below half), and how many flushes ended
  /// in that state.
  bool overloaded = false;
  std::uint64_t overload_flushes = 0;
  /// Durable-I/O fault tolerance: retried WAL/checkpoint operations
  /// that eventually succeeded, degradations to memory-only mode,
  /// successful re-arms, and the current degraded flag (true = WAL and
  /// checkpoints are disarmed; recovery is possible only up to the
  /// last durable generation).
  std::uint64_t durability_retries = 0;
  std::uint64_t durability_rearms = 0;
  bool durability_degraded = false;
  std::uint64_t durability_degraded_epoch = 0;
  SizeHistogram publish_us{1u << 14};  // per-epoch publish time, µs
  // Exact-bucket sizes bound the per-engine footprint (~0.5 MB) and the
  // stats() copy cost: flushes beyond 65.5 ms land in the overflow
  // bucket, where percentile() degrades to max_seen.
  SizeHistogram flush_us{1u << 16};    // per-flush wall time, microseconds
  SizeHistogram batch_sizes{1u << 12}; // raw updates per flush
};

class StreamingEngine {
 public:
  struct Options {
    std::size_t shards = 16;          // ingest buffer shards
    std::size_t flush_threshold = 8192;  // buffered updates per flush
    double flush_interval_ms = 10.0;  // max staleness of buffered updates
    int workers = 4;                  // maintainer workers per flush
    /// Admission control (docs/ROBUSTNESS.md): bound the ingest buffer
    /// at this many updates (0 = unbounded) and resolve at-cap submits
    /// with `overload`. The effective flush threshold is clamped to the
    /// cap so a full buffer always triggers a flush. The cap is a soft
    /// bound: racing producers can overshoot by at most one update
    /// each. (PARCORE_ENGINE_INGEST_CAP / PARCORE_ENGINE_OVERLOAD.)
    std::size_t ingest_cap = 0;
    OverloadPolicy overload = OverloadPolicy::kBlock;
    /// Adaptive batch policy: scale flush_threshold so that a flush
    /// takes about target_flush_ms, clamped to [min,max]_threshold.
    bool adaptive = false;
    double target_flush_ms = 20.0;
    std::size_t min_threshold = 256;
    std::size_t max_threshold = 1u << 20;
    /// Every N flushes, reclaim quarantined OM groups at quiescence
    /// (OrderList::compact over all levels). 0 disables compaction —
    /// quarantined groups then leak for the engine's lifetime.
    std::size_t om_compact_interval = 64;
    /// Publish a deep graph copy with every epoch snapshot (compact
    /// arena copy; costs one arena fill per flush).
    bool snapshot_graph = false;
    /// Cores per copy-on-write snapshot page (rounded to a power of
    /// two in [64, 1M]). Smaller pages clone fewer bytes per changed
    /// vertex; larger pages shrink the per-epoch directory copy.
    std::size_t snapshot_page = 4096;
    /// Refresh the O(n) memory sample from stats() when it is older
    /// than this many epochs (and no flush is running). 0 disables the
    /// lazy refresh; compaction/stop() refreshes still happen.
    std::size_t memory_refresh_epochs = 16;
    /// Flush spans retained by trace() (obs/trace.h ring).
    std::size_t trace_capacity = 1024;
    /// Invoked under the flush lock with each completed flush's span —
    /// the --trace-out JSONL sink. Keep it cheap; it runs on the
    /// scheduler thread inside the flush window.
    std::function<void(const obs::FlushSpan&)> span_sink;
    /// > 0 spawns a reporter thread alongside the scheduler that writes
    /// the metrics summary (obs::human_summary of the global registry)
    /// to stderr every interval. 0 disables it.
    double report_interval_ms = 0.0;
    /// > 0 spawns a background re-verifier alongside the scheduler:
    /// every interval it copies the graph at a flush boundary, runs a
    /// full parallel exact decomposition off-thread (own ThreadTeam —
    /// never contends with flush dispatch) and compares against the
    /// live CoreView of the same epoch, reporting runs/mismatches/
    /// timing as parcore_verify_* through the metrics registry. 0
    /// disables it. (`serve --reverify MS` / PARCORE_SERVE_REVERIFY_MS.)
    double reverify_interval_ms = 0.0;
    /// Durability (docs/DURABILITY.md): a non-empty `durability.dir`
    /// enables epoch checkpointing + the op WAL. The constructor writes
    /// the initial checkpoint (epoch 0), every flush appends its
    /// coalesced ops to the WAL before applying them, a checkpoint is
    /// taken every `durability.checkpoint_interval` flushes at the
    /// flush quiescent point, and stop() takes a final checkpoint when
    /// frames were logged since the last one. The directory must not
    /// already contain checkpoints (the constructor throws io::IoError:
    /// a stale higher-epoch generation would shadow this run's).
    durability::Manager::Options durability{};
    ParallelOrderMaintainer::Options maintainer{};
  };

  /// Takes over `g` for its lifetime: after construction the graph must
  /// only be mutated through the engine. `g` and `team` must outlive it.
  /// The constructor runs the initial decomposition and publishes
  /// epoch 0; call start() to spawn the scheduler thread.
  StreamingEngine(DynamicGraph& g, ThreadTeam& team, Options opts);
  StreamingEngine(DynamicGraph& g, ThreadTeam& team)
      : StreamingEngine(g, team, Options()) {}
  ~StreamingEngine();

  StreamingEngine(const StreamingEngine&) = delete;
  StreamingEngine& operator=(const StreamingEngine&) = delete;

  /// Spawns the background scheduler. No-op if already running;
  /// start/stop may cycle (stop then start spawns a fresh scheduler).
  void start();

  /// Drains and applies everything still buffered, then joins the
  /// scheduler. Producers must have stopped submitting. Idempotent;
  /// also run by the destructor.
  void stop();

  // ----------------------------------------------------------- ingest
  /// Thread-safe; callable from any producer thread. Non-blocking
  /// (beyond a shard spinlock) unless Options::ingest_cap is set with
  /// the kBlock policy, in which case an at-cap submit waits for a
  /// drain (SubmitResult::blocked_us). With kShed the update can be
  /// rejected — check SubmitResult::accepted. Out-of-range endpoints
  /// are accepted here and rejected (counted) at coalesce time.
  SubmitResult submit(const GraphUpdate& u);
  SubmitResult submit_insert(VertexId u, VertexId v) {
    return submit(GraphUpdate{Edge{u, v}, UpdateKind::kInsert});
  }
  SubmitResult submit_remove(VertexId u, VertexId v) {
    return submit(GraphUpdate{Edge{u, v}, UpdateKind::kRemove});
  }

  /// Synchronously drains + applies on the calling thread (the same
  /// path the scheduler takes; serialised with it). Returns the epoch
  /// published by this flush. Useful for tests and single-threaded use
  /// without start().
  std::uint64_t flush_now();

  // ------------------------------------------------------------ query
  /// The latest published snapshot; never null. O(1): hands out a
  /// reference to the shared immutable state.
  std::shared_ptr<const EngineSnapshot> snapshot() const;

  /// Convenience point reads against the latest snapshot.
  CoreValue core(VertexId v) const { return snapshot()->core(v); }
  std::uint64_t epoch() const { return snapshot()->epoch; }

  EngineStats stats() const;

  /// Ring of the most recent flush spans (per-phase timings, worker
  /// attribution); see obs/trace.h. Always recorded, obs gate or not.
  const obs::FlushTrace& trace() const { return trace_; }

  /// Current adaptive threshold (== Options::flush_threshold when the
  /// adaptive policy is off).
  std::size_t current_flush_threshold() const {
    return threshold_.load(std::memory_order_relaxed);
  }

  DynamicGraph& graph() { return graph_; }
  ParallelOrderMaintainer& maintainer() { return maintainer_; }

  /// One synchronous re-verification pass on the calling thread — the
  /// exact body the background re-verifier runs per interval: copy the
  /// graph at a flush boundary, recompute the full decomposition, diff
  /// against the live CoreView; on mismatch quarantine queries to the
  /// last verified snapshot and request a repair at the next flush.
  /// Returns the mismatch count (0 = clean). Works without start().
  std::size_t run_reverify_once();

  /// True while queries are pinned to the last verified snapshot
  /// because a mismatch was detected and the repair has not run yet.
  bool quarantined() const {
    return quarantined_.load(std::memory_order_relaxed);
  }

  /// TEST ONLY: overwrite the maintained core values of `vertices`
  /// (adding `delta` to each) in both the maintainer state and the
  /// published snapshot, simulating the silent state corruption the
  /// re-verifier + repair path exists to catch. Takes the flush lock.
  void corrupt_cores_for_test(const std::vector<VertexId>& vertices,
                              CoreValue delta);

 private:
  void scheduler_loop();
  void reporter_loop();
  void reverifier_loop();
  std::uint64_t flush_locked() PARCORE_REQUIRES(flush_mu_);
  /// Runs `op` (a durability call) with bounded retry/backoff; on
  /// persistent io::IoError degrades the engine to memory-only mode
  /// instead of letting the error escape the flush path. Returns false
  /// iff degraded.
  bool durable_io(const std::function<void()>& op, const char* what)
      PARCORE_REQUIRES(flush_mu_);
  /// Re-arm attempt: while degraded, periodically try a full fresh
  /// checkpoint; success resumes WAL logging.
  void try_rearm_durability(std::uint64_t epoch) PARCORE_REQUIRES(flush_mu_);
  /// Wraps an already-published view into the snapshot for `epoch`,
  /// adding max core / edge count / the optional graph copy. Does NOT
  /// swap it in — the caller updates stats first, then swaps, so
  /// readers never see an epoch whose stats lag it.
  std::shared_ptr<EngineSnapshot> build_snapshot(std::uint64_t epoch,
                                                 query::CoreView view)
      PARCORE_REQUIRES(flush_mu_);
  void adapt_threshold(double flush_ms, std::size_t raw);
  /// Full durable image of the current state (the graph walk and
  /// save_order need the quiescence the flush lock provides).
  io::PcgCheckpoint make_checkpoint(std::uint64_t epoch)
      PARCORE_REQUIRES(flush_mu_);

  DynamicGraph& graph_;
  Options opts_;
  // Declared before maintainer_ so construction order starts the clock
  // before the initial decomposition — engine_init_us measures the
  // whole cold start, which is exactly what the parallel init path is
  // supposed to shrink.
  WallTimer init_timer_;
  ParallelOrderMaintainer maintainer_;
  IngestQueue queue_;
  Notifier notifier_;
  // Checkpoint/WAL lifecycle; null unless Options::durability.dir is
  // set. Touched only under flush_mu_ (WAL appends and checkpoints are
  // part of the flush window by design).
  std::unique_ptr<durability::Manager> durability_ PARCORE_GUARDED_BY(flush_mu_);

  std::thread scheduler_;
  std::thread reporter_;
  Notifier reporter_notifier_;
  std::thread reverifier_;
  Notifier reverify_notifier_;
  bool running_ = false;

  // Serialises flushes (scheduler vs flush_now) — the maintainer runs
  // one batch at a time by contract. Mutable: stats() try-locks it for
  // the lazy memory refresh (never blocks; see EngineStats::memory).
  mutable Mutex flush_mu_;
  std::atomic<std::size_t> threshold_;
  std::size_t flushes_since_compact_ PARCORE_GUARDED_BY(flush_mu_) = 0;

  // Paged COW snapshot publication state; single-writer under
  // flush_mu_ (the constructor runs before any reader exists).
  query::VersionedCoreIndex index_ PARCORE_GUARDED_BY(flush_mu_);
  // Per-flush changed-vertex union.
  std::vector<VertexId> dirty_ PARCORE_GUARDED_BY(flush_mu_);
  std::uint64_t published_epoch_ PARCORE_GUARDED_BY(flush_mu_) = 0;

  // Snapshot publication: writers swap the pointer under snap_mu_,
  // readers copy the shared_ptr under the same spinlock (held for the
  // refcount bump only). While quarantined_, snapshot() serves
  // verified_snap_ (the newest snapshot a re-verify pass confirmed)
  // instead of snap_.
  mutable Spinlock snap_mu_;
  std::shared_ptr<const EngineSnapshot> snap_ PARCORE_GUARDED_BY(snap_mu_);
  std::shared_ptr<const EngineSnapshot> verified_snap_
      PARCORE_GUARDED_BY(snap_mu_);

  // Self-healing state (docs/ROBUSTNESS.md): the re-verifier sets both
  // flags on mismatch; the next flush performs the rebuild, clears
  // them, and re-verifies the snapshot it publishes.
  std::atomic<bool> quarantined_{false};
  std::atomic<bool> repair_requested_{false};

  // Durable-I/O fault tolerance (guarded by flush_mu_, like
  // durability_ itself). While degraded the Manager stays alive but
  // unused; try_rearm_durability() attempts a fresh full checkpoint on
  // the rearm_interval_ms cadence.
  bool durability_degraded_ PARCORE_GUARDED_BY(flush_mu_) = false;
  std::uint64_t degraded_epoch_ PARCORE_GUARDED_BY(flush_mu_) = 0;
  std::chrono::steady_clock::time_point last_rearm_attempt_
      PARCORE_GUARDED_BY(flush_mu_){};

  // Overload detector state (scheduler/flush thread only).
  bool overloaded_ PARCORE_GUARDED_BY(flush_mu_) = false;
  // Last-exported admission totals, so per-flush obs updates add
  // deltas instead of re-adding cumulative counts.
  IngestQueue::AdmissionStats admission_exported_ PARCORE_GUARDED_BY(flush_mu_){};

  // Stats: counters written only by the flushing thread under
  // flush_mu_, read under stats_mu_ by stats().
  mutable Mutex stats_mu_;
  // stats() refreshes `memory` lazily.
  mutable EngineStats stats_ PARCORE_GUARDED_BY(stats_mu_);
  std::atomic<std::uint64_t> submitted_{0};

  // Observability: the per-flush span ring plus cached handles into the
  // process-global metrics registry (registered once at construction;
  // recording through them is lock-free and gated on obs::enabled()).
  obs::FlushTrace trace_;
  struct ObsHandles {
    obs::Counter* submitted = nullptr;
    obs::Counter* flushes = nullptr;
    obs::Counter* inserts_applied = nullptr;
    obs::Counter* removes_applied = nullptr;
    obs::Counter* pages_cloned = nullptr;
    obs::Counter* om_reclaimed = nullptr;
    obs::Counter* worker_busy_us = nullptr;
    obs::Counter* worker_idle_us = nullptr;
    obs::Counter* steal_chunks = nullptr;
    obs::Gauge* epoch = nullptr;
    obs::Gauge* threshold = nullptr;
    obs::Histogram* flush_us = nullptr;
    obs::Histogram* batch_size = nullptr;
    obs::Histogram* publish_us = nullptr;
    obs::Histogram* engine_init_us = nullptr;
    obs::Counter* verify_runs = nullptr;
    obs::Counter* verify_mismatches = nullptr;
    obs::Histogram* verify_us = nullptr;
    obs::Gauge* overloaded = nullptr;
    obs::Counter* admission_shed = nullptr;
    obs::Counter* admission_blocked_us = nullptr;
    obs::Counter* admission_compacted = nullptr;
    obs::Counter* repairs = nullptr;
    obs::Gauge* quarantined = nullptr;
    obs::Gauge* durability_degraded = nullptr;
    obs::Counter* durability_retries = nullptr;
    obs::Counter* durability_rearms = nullptr;
  };
  ObsHandles obs_;
};

/// `base` with every flush-policy knob overridable from the environment
/// (PARCORE_ENGINE_* variables; full table in docs/CONFIG.md). Used by
/// parcore_cli and the examples so deployments tune the engine without
/// a rebuild.
StreamingEngine::Options options_from_env(
    StreamingEngine::Options base = StreamingEngine::Options());

}  // namespace parcore::engine
