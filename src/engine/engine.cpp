#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "decomp/core_query.h"
#include "decomp/parallel_peel.h"
#include "io/io_error.h"
#include "obs/export.h"
#include "support/env.h"
#include "support/timer.h"

namespace parcore::engine {

std::vector<VertexId> EngineSnapshot::kcore_members(CoreValue k) const {
  return k_core_members(view, k);
}

StreamingEngine::StreamingEngine(DynamicGraph& g, ThreadTeam& team,
                                 Options opts)
    : graph_(g),
      opts_(opts),
      maintainer_(g, team, opts.maintainer),
      // &notifier_ outlives queue_ (both members, queue_ declared
      // first); the queue only stores the pointer here.
      queue_(IngestQueue::Options{opts.shards, opts.ingest_cap,
                                  opts.overload, &notifier_}),
      // A cap below the flush threshold would leave a full buffer that
      // never crosses the threshold: clamp so at-cap always flushes.
      threshold_(std::max<std::size_t>(
          1, opts.ingest_cap > 0
                 ? std::min(opts.flush_threshold, opts.ingest_cap)
                 : opts.flush_threshold)),
      index_(query::VersionedCoreIndex::Options{opts.snapshot_page}),
      trace_(opts.trace_capacity) {
  // Register into the global metrics registry once; the cached handles
  // make every later record a lock-free sharded add (obs/metrics.h).
  obs::MetricsRegistry& reg = obs::registry();
  obs_.submitted = &reg.counter("parcore_updates_submitted_total");
  obs_.flushes = &reg.counter("parcore_flushes_total");
  obs_.inserts_applied = &reg.counter("parcore_inserts_applied_total");
  obs_.removes_applied = &reg.counter("parcore_removes_applied_total");
  obs_.pages_cloned = &reg.counter("parcore_snapshot_pages_cloned_total");
  obs_.om_reclaimed = &reg.counter("parcore_om_groups_reclaimed_total");
  obs_.worker_busy_us = &reg.counter("parcore_worker_busy_us_total");
  obs_.worker_idle_us = &reg.counter("parcore_worker_idle_us_total");
  obs_.steal_chunks = &reg.counter("parcore_steal_chunks_total");
  obs_.epoch = &reg.gauge("parcore_epoch");
  obs_.threshold = &reg.gauge("parcore_flush_threshold");
  obs_.flush_us = &reg.histogram("parcore_flush_us");
  obs_.batch_size = &reg.histogram("parcore_flush_batch_size");
  obs_.publish_us = &reg.histogram("parcore_publish_us");
  obs_.engine_init_us = &reg.histogram("parcore_engine_init_us");
  if (opts_.reverify_interval_ms > 0.0) {
    obs_.verify_runs = &reg.counter("parcore_verify_runs_total");
    obs_.verify_mismatches = &reg.counter("parcore_verify_mismatches_total");
    obs_.verify_us = &reg.histogram("parcore_verify_us");
  }
  obs_.overloaded = &reg.gauge("parcore_overloaded");
  obs_.admission_shed = &reg.counter("parcore_admission_shed_total");
  obs_.admission_blocked_us =
      &reg.counter("parcore_admission_blocked_us_total");
  obs_.admission_compacted =
      &reg.counter("parcore_admission_compacted_total");
  obs_.repairs = &reg.counter("parcore_repairs_total");
  obs_.quarantined = &reg.gauge("parcore_quarantined");
  obs_.durability_degraded = &reg.gauge("parcore_durability_degraded");
  obs_.durability_retries = &reg.counter("parcore_durability_retries_total");
  obs_.durability_rearms = &reg.counter("parcore_durability_rearms_total");

  // Epoch 0: the initial decomposition, the index's one full O(n)
  // build. Every later epoch is a COW delta on top of it.
  query::CoreView view = index_.rebuild(
      graph_.num_vertices(), [this](VertexId v) { return maintainer_.core(v); });
  stats_.snapshot_pages_cloned += index_.last_pages_cloned();
  obs_.pages_cloned->add(index_.last_pages_cloned());
  auto snap = build_snapshot(0, std::move(view));
  {
    SpinGuard g(snap_mu_);
    snap_ = std::move(snap);
  }
  stats_.memory = graph_.memory_stats();
  stats_.memory_epoch = 0;
  obs_.threshold->set(static_cast<std::int64_t>(
      threshold_.load(std::memory_order_relaxed)));

  // Durability: the initial checkpoint IS epoch 0 — recovery always has
  // a base image, and the first WAL generation opens beside it. The
  // Manager constructor still throws on CONFIG errors (non-empty
  // checkpoint directory); only the I/O of the checkpoint itself goes
  // through the retry/degrade wrapper, so a full disk at startup gives
  // a serving (memory-only) engine, not a dead one.
  if (!opts_.durability.dir.empty()) {
    durability_ = std::make_unique<durability::Manager>(opts_.durability);
    durable_io([&] { durability_->checkpoint(make_checkpoint(0)); },
               "initial checkpoint");
    MutexGuard lk(stats_mu_);
    stats_.durability = durability_->totals();
  }

  // Cold-start cost, end to end: initial decomposition (sequential BZ
  // or the parallel peel, per Options::maintainer.init_workers) through
  // epoch-0 publish and the initial checkpoint. init_timer_ is declared
  // before maintainer_ precisely so this covers the decomposition.
  stats_.engine_init_us = init_timer_.elapsed_us();
  obs_.engine_init_us->record(stats_.engine_init_us);
}

StreamingEngine::~StreamingEngine() { stop(); }

void StreamingEngine::start() {
  if (running_) return;
  notifier_.reset();  // clear a previous stop(): start/stop can cycle
  reporter_notifier_.reset();
  reverify_notifier_.reset();
  queue_.open();  // re-arm the admission cap after a previous stop()
  running_ = true;
  scheduler_ = std::thread([this] { scheduler_loop(); });
  if (opts_.report_interval_ms > 0.0)
    reporter_ = std::thread([this] { reporter_loop(); });
  if (opts_.reverify_interval_ms > 0.0)
    reverifier_ = std::thread([this] { reverifier_loop(); });
}

void StreamingEngine::stop() {
  // Release any producer still blocked on the admission cap BEFORE
  // joining the scheduler: once draining stops, a blocked producer
  // would otherwise wait forever. (Producers are contractually done by
  // now, but a straggler must deadlock-proof into a plain accept.)
  queue_.close();
  if (running_) {
    notifier_.request_stop();
    reporter_notifier_.request_stop();
    reverify_notifier_.request_stop();
    scheduler_.join();
    if (reporter_.joinable()) reporter_.join();
    if (reverifier_.joinable()) reverifier_.join();
    running_ = false;
  }
  // Final drain on the caller's thread: catches updates submitted after
  // the scheduler observed the stop request, serves engines that were
  // never start()ed, and runs a still-pending repair.
  if (queue_.approx_size() > 0 ||
      repair_requested_.load(std::memory_order_relaxed))
    flush_now();
  // Quiescent now (scheduler joined, producers done): refresh the
  // memory sample so post-run stats reflect the final graph even when
  // the run was shorter than om_compact_interval.
  {
    MutexGuard lk(flush_mu_);
    // Shutdown checkpoint: anything logged since the last periodic one
    // becomes part of a fresh generation, so a clean stop never needs
    // WAL replay on the next recover. Skipped while degraded — the
    // whole point of memory-only mode is that durable I/O stopped
    // working; stats().durability_degraded reports it.
    if (durability_ && !durability_degraded_ && durability_->dirty()) {
      durable_io(
          [&] { durability_->checkpoint(make_checkpoint(published_epoch_)); },
          "shutdown checkpoint");
      MutexGuard lk2(stats_mu_);
      stats_.durability = durability_->totals();
    }
    const GraphMemoryStats mem = graph_.memory_stats();
    MutexGuard lk2(stats_mu_);
    stats_.memory = mem;
    stats_.memory_epoch = stats_.epochs;
  }
}

SubmitResult StreamingEngine::submit(const GraphUpdate& u) {
  // At-cap handling lives inside the queue (its overflow notifier
  // points at the scheduler), so this path is identical for capped and
  // uncapped engines.
  const PushResult pushed = queue_.push(u);
  if (!pushed.accepted) return SubmitResult{false, 0};
  const std::size_t prev = pushed.prev;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  // No obs record here: submit is the producer hot path and even a
  // sharded relaxed inc costs measurable throughput (the <=2% CI
  // overhead gate caught it). The submitted counter is fed from the
  // drained count once per flush instead, so the exported total lags
  // the true one by at most the buffered backlog.
  // Wake the scheduler only on the threshold CROSSING, not on every
  // push above it — otherwise all producers serialise on the notifier
  // mutex for the whole duration of a flush. Backlog that accumulates
  // while a flush is running re-crosses after the drain (the counter
  // restarts near zero), and the interval timeout covers the rest.
  const std::size_t threshold = threshold_.load(std::memory_order_relaxed);
  if (prev < threshold && prev + 1 >= threshold) notifier_.notify();
  return SubmitResult{true, pushed.blocked_us};
}

void StreamingEngine::scheduler_loop() {
  const auto interval = std::chrono::duration<double, std::milli>(
      opts_.flush_interval_ms);
  for (;;) {
    notifier_.wait_for(interval);
    const bool stopping = notifier_.stop_requested();
    // A pending repair flushes even an empty buffer: the rebuild runs
    // at the next quiescent point whether or not producers are active.
    if (queue_.approx_size() > 0 ||
        repair_requested_.load(std::memory_order_relaxed)) {
      MutexGuard lk(flush_mu_);
      flush_locked();
    }
    if (stopping) return;
  }
}

void StreamingEngine::reporter_loop() {
  const auto interval =
      std::chrono::duration<double, std::milli>(opts_.report_interval_ms);
  for (;;) {
    reporter_notifier_.wait_for(interval);
    if (reporter_notifier_.stop_requested()) return;
    const std::string summary = obs::human_summary(obs::registry());
    // One write, unbuffered target: interleaves sanely with other
    // stderr traffic and costs nothing when the registry is empty.
    if (!summary.empty())
      std::fprintf(stderr, "[parcore obs] epoch=%llu\n%s",
                   static_cast<unsigned long long>(epoch()), summary.c_str());
  }
}

void StreamingEngine::reverifier_loop() {
  const auto interval =
      std::chrono::duration<double, std::milli>(opts_.reverify_interval_ms);
  for (;;) {
    reverify_notifier_.wait_for(interval);
    if (reverify_notifier_.stop_requested()) return;
    run_reverify_once();
  }
}

std::size_t StreamingEngine::run_reverify_once() {
  // Private team: ThreadTeam::run is single-dispatcher, and the flush
  // path owns the engine's team — the re-verifier must never contend
  // for it (that would stall flushes for the length of a full
  // decomposition, the opposite of "background").
  const int workers = std::max(1, opts_.workers);
  ThreadTeam team(workers);

  // A consistent (graph, snapshot) pair: the graph only mutates under
  // flush_mu_ and every flush publishes before releasing it, so a
  // copy taken under the lock matches the latest snapshot exactly.
  // Deliberately reads snap_, not snapshot(): the verifier must judge
  // the LIVE state even while queries are quarantined to an older one.
  std::unique_ptr<DynamicGraph> copy;
  std::shared_ptr<const EngineSnapshot> at;
  {
    MutexGuard lk(flush_mu_);
    copy = std::make_unique<DynamicGraph>(graph_);
    SpinGuard g(snap_mu_);
    at = snap_;
  }

  WallTimer timer;
  DecomposeOptions dopts;
  dopts.workers = workers;
  dopts.mode = DecomposeMode::kExact;
  const BulkDecomposition truth = parallel_decompose(*copy, team, dopts);
  std::size_t mismatches = 0;
  const std::size_t n = std::min<std::size_t>(truth.core.size(),
                                              at->num_vertices());
  for (VertexId v = 0; v < n; ++v)
    if (at->core(v) != truth.core[v]) ++mismatches;
  const std::uint64_t us = timer.elapsed_us();

  if (obs_.verify_runs != nullptr) {
    obs_.verify_runs->add(1);
    obs_.verify_mismatches->add(mismatches);
    obs_.verify_us->record(us);
  }
  if (mismatches == 0) {
    // Clean pass: this snapshot becomes the quarantine fallback the
    // next mismatch pins queries to.
    SpinGuard g(snap_mu_);
    verified_snap_ = at;
  } else {
    std::fprintf(stderr,
                 "[parcore verify] epoch=%llu: %zu cores diverge from "
                 "full recompute — quarantining queries to last verified "
                 "epoch, repair scheduled\n",
                 static_cast<unsigned long long>(at->epoch), mismatches);
    quarantined_.store(true, std::memory_order_relaxed);
    repair_requested_.store(true, std::memory_order_relaxed);
    obs_.quarantined->set(1);
    // Wake the scheduler so the repair flush runs promptly even with
    // idle producers.
    notifier_.notify();
  }
  MutexGuard lk(stats_mu_);
  ++stats_.verify_runs;
  stats_.verify_mismatches += mismatches;
  stats_.quarantined = quarantined_.load(std::memory_order_relaxed);
  return mismatches;
}

std::uint64_t StreamingEngine::flush_now() {
  MutexGuard lk(flush_mu_);
  return flush_locked();
}

std::uint64_t StreamingEngine::flush_locked() {
  // One cumulative clock segments the flush into the six trace phases:
  // consecutive elapsed_us() marks partition the window exactly, so the
  // span's phases sum to its flush_us up to integer rounding
  // (obs/trace.h FlushSpan).
  WallTimer timer;
  obs::FlushSpan span;

  // Self-healing: a re-verifier mismatch requested a rebuild. Run it
  // FIRST, on the quiescent pre-drain state — this flush's batch then
  // applies incrementally on top of a freshly correct base, and the
  // publish below re-clones every page so the live view sheds the
  // corruption in the same epoch.
  const bool repaired = repair_requested_.exchange(false);
  if (repaired) {
    maintainer_.rebuild(std::max(1, opts_.workers));
    span.repair_us = timer.elapsed_us();
  }
  const std::uint64_t t_repair = timer.elapsed_us();

  std::vector<GraphUpdate> raw;
  queue_.drain(raw);
  const std::uint64_t t_drain = timer.elapsed_us();

  // Plan mode: have the coalescer emit pre-bucketed batches (sorted by
  // the planner's locality key) so planning cost is amortised into the
  // drain — BatchPlan::build detects the order and skips its sort.
  const bool planned =
      opts_.maintainer.schedule == ScheduleMode::kPlan;
  CoalescedBatch batch =
      coalesce(raw, graph_, planned ? &maintainer_.state() : nullptr);
  const std::uint64_t t_coalesce = timer.elapsed_us();

  // Write-ahead: the coalesced ops are durable (group-fsync'd) BEFORE
  // any of them mutate the graph, stamped with the epoch this flush
  // will publish. Recovery replays exactly these batches in exactly
  // this order (removes first). The append goes through the
  // retry/degrade wrapper: an injected or real I/O error never escapes
  // the flush path — after max_retries the engine disarms durability
  // and keeps serving from memory.
  if (durability_ && !durability_degraded_) {
    durability::WalRecord rec;
    rec.epoch = published_epoch_ + 1;
    rec.removes = batch.removes;
    rec.inserts = batch.inserts;
    durable_io([&] { durability_->log_flush(rec); }, "wal append");
  }
  const std::uint64_t t_wal = timer.elapsed_us();

  BatchResult ins, rem;
  EngineStats::PlanAggregate plan_delta;
  auto absorb_plan = [&] {
    const PlanStats& p = maintainer_.last_plan_stats();
    if (p.edges == 0) return;
    ++plan_delta.batches;
    plan_delta.buckets += p.buckets;
    plan_delta.waves += p.waves;
    plan_delta.overflow_edges += p.overflow_edges;
    plan_delta.presorted += p.presorted ? 1 : 0;
    plan_delta.steals += p.steals;
  };
  // Worker attribution, accumulated across the (up to two) maintainer
  // calls of this flush: busy straight from the workers' own clocks,
  // idle as the dispatch wall each worker sat through minus its busy
  // share (clamped: the two clock sets can disagree by microseconds).
  auto absorb_timing = [&] {
    const ParallelOrderMaintainer::BatchTiming& t = maintainer_.last_timing();
    span.plan_us += t.plan_us;
    span.worker_busy_us += t.busy_us;
    const std::uint64_t wall =
        static_cast<std::uint64_t>(t.workers) * t.dispatch_us;
    span.worker_idle_us += wall > t.busy_us ? wall - t.busy_us : 0;
    span.workers = std::max(span.workers, static_cast<std::uint32_t>(
                                              std::max(t.workers, 0)));
  };
  // Disjoint by construction, so the two sequential maintainer calls
  // are exactly the paper's non-overlapping batch protocol. Removes run
  // first so a flush never makes the graph transiently denser than its
  // final state. `dirty_` accumulates the union of both batches'
  // changed-core sets — the exact page set the COW publish must clone
  // (a vertex demoted then re-promoted appears twice; the index dedups
  // pages and re-reads the final value).
  dirty_.clear();
  auto absorb_changed = [&] {
    const std::span<const VertexId> changed = maintainer_.last_changed();
    dirty_.insert(dirty_.end(), changed.begin(), changed.end());
  };
  if (!batch.removes.empty()) {
    rem = maintainer_.remove_batch(batch.removes, opts_.workers);
    absorb_plan();
    absorb_timing();
    absorb_changed();
  }
  if (!batch.inserts.empty()) {
    ins = maintainer_.insert_batch(batch.inserts, opts_.workers);
    absorb_plan();
    absorb_timing();
    absorb_changed();
  }
  const std::uint64_t t_apply = timer.elapsed_us();

  // Quiescent point: the batch is fully applied and no worker holds OM
  // pointers, so quarantined order-list groups can be reclaimed.
  std::size_t om_reclaimed = 0;
  bool om_compacted = false;
  if (opts_.om_compact_interval > 0 &&
      ++flushes_since_compact_ >= opts_.om_compact_interval) {
    flushes_since_compact_ = 0;
    om_reclaimed = maintainer_.state().levels().compact_all();
    om_compacted = true;
  }
  // The memory sample is an O(n) vertex scan: take it only on the
  // compaction cadence (same quiescence) so it bills to the om-compact
  // phase, and before stats_mu_ so readers never block on the scan.
  GraphMemoryStats mem_sample;
  if (om_compacted) mem_sample = graph_.memory_stats();
  const std::uint64_t t_compact = timer.elapsed_us();

  const std::uint64_t epoch = ++published_epoch_;
  // Time the COW publish alone: publish_us is the O(|V*| + dirty pages)
  // claim under measurement, so the optional O(n+m) graph copy inside
  // build_snapshot must not pollute it. A repair invalidates every
  // page (the rebuild rewrote all cores), so it publishes via a full
  // index rebuild instead of the dirty-page delta.
  WallTimer publish_timer;
  query::CoreView view =
      repaired ? index_.rebuild(graph_.num_vertices(),
                                [this](VertexId v) {
                                  return maintainer_.core(v);
                                })
               : index_.publish(dirty_, [this](VertexId v) {
                   return maintainer_.core(v);
                 });
  const double publish_ms = publish_timer.elapsed_ms();
  auto snap = build_snapshot(epoch, std::move(view));
  const std::uint64_t t_publish = timer.elapsed_us();

  // Periodic checkpoint at the flush quiescent point: the batch is
  // fully applied, published, and no worker is running — exactly the
  // state the checkpoint must capture. Rotating the WAL here keeps the
  // invariant that wal-<e>.log holds only frames with epochs > e.
  // While degraded, this slot instead hosts the periodic re-arm
  // attempt (a fresh full checkpoint; success resumes WAL logging).
  if (durability_ && !durability_degraded_ && durability_->checkpoint_due())
    durable_io([&] { durability_->checkpoint(make_checkpoint(epoch)); },
               "periodic checkpoint");
  else if (durability_ && durability_degraded_)
    try_rearm_durability(epoch);
  const std::uint64_t t_checkpoint = timer.elapsed_us();

  const double flush_ms = timer.elapsed_ms();

  // Finalise the span: phases are consecutive deltas of the one clock,
  // except plan/apply — the maintainer reports its own plan-build cost,
  // carved out of the batch window it ran in.
  span.epoch = epoch;
  span.raw = raw.size();
  span.inserts = batch.inserts.size();
  span.removes = batch.removes.size();
  span.pages_cloned = index_.last_pages_cloned();
  span.drain_us = t_drain - t_repair;
  span.coalesce_us = t_coalesce - t_drain;
  span.wal_us = t_wal - t_coalesce;
  const std::uint64_t batch_window = t_apply - t_wal;
  span.apply_us =
      batch_window > span.plan_us ? batch_window - span.plan_us : 0;
  span.om_compact_us = t_compact - t_apply;
  span.publish_us = t_publish - t_compact;
  span.checkpoint_us = t_checkpoint - t_publish;
  span.flush_us = static_cast<std::uint64_t>(flush_ms * 1000.0);
  span.steal_chunks = plan_delta.steals;

  // Flush-lag overload detector: a backlog that already exceeds the
  // flush threshold the moment a flush completes means producers are
  // outrunning the drain — a whole new flush is due immediately.
  // Hysteresis (clear below half the threshold) keeps the gauge from
  // flapping at the boundary.
  const std::size_t backlog = queue_.approx_size();
  const std::size_t threshold_now =
      threshold_.load(std::memory_order_relaxed);
  if (!overloaded_ && backlog >= threshold_now)
    overloaded_ = true;
  else if (overloaded_ && backlog * 2 < threshold_now)
    overloaded_ = false;
  const IngestQueue::AdmissionStats adm = queue_.admission();

  {
    MutexGuard lk(stats_mu_);
    stats_.epochs = epoch;
    stats_.applied_inserts += ins.applied;
    stats_.applied_removes += rem.applied;
    stats_.skipped += ins.skipped + rem.skipped;
    if (om_compacted) {
      ++stats_.om_compactions;
      stats_.om_groups_reclaimed += om_reclaimed;
      stats_.memory = mem_sample;
      stats_.memory_epoch = epoch;
    }
    stats_.coalesce += batch.stats;
    stats_.plan.batches += plan_delta.batches;
    stats_.plan.buckets += plan_delta.buckets;
    stats_.plan.waves += plan_delta.waves;
    stats_.plan.overflow_edges += plan_delta.overflow_edges;
    stats_.plan.presorted += plan_delta.presorted;
    stats_.plan.steals += plan_delta.steals;
    stats_.phases.drain_us += span.drain_us;
    stats_.phases.coalesce_us += span.coalesce_us;
    stats_.phases.wal_us += span.wal_us;
    stats_.phases.plan_us += span.plan_us;
    stats_.phases.apply_us += span.apply_us;
    stats_.phases.om_compact_us += span.om_compact_us;
    stats_.phases.publish_us += span.publish_us;
    stats_.phases.checkpoint_us += span.checkpoint_us;
    stats_.phases.repair_us += span.repair_us;
    stats_.phases.worker_busy_us += span.worker_busy_us;
    stats_.phases.worker_idle_us += span.worker_idle_us;
    if (repaired) ++stats_.repairs;
    stats_.quarantined =
        repaired ? false : quarantined_.load(std::memory_order_relaxed);
    stats_.admission = adm;
    stats_.overloaded = overloaded_;
    if (overloaded_) ++stats_.overload_flushes;
    if (durability_) stats_.durability = durability_->totals();
    stats_.snapshot_pages_cloned += index_.last_pages_cloned();
    stats_.publish_us.record(static_cast<std::size_t>(publish_ms * 1000.0));
    stats_.flush_us.record(static_cast<std::size_t>(flush_ms * 1000.0));
    stats_.batch_sizes.record(raw.size());
  }
  // Swap the snapshot in only AFTER its stats are published: a reader
  // that grabs snapshot() then stats() can never observe epoch e paired
  // with stats from e-1 (the pre-ISSUE-5 snapshot/stats tear).
  {
    SpinGuard g(snap_mu_);
    // A repaired snapshot was just recomputed from scratch: it is by
    // construction verified, so it both lifts the quarantine and
    // becomes the new fallback for the next mismatch.
    if (repaired) verified_snap_ = snap;
    snap_ = std::move(snap);
  }
  if (repaired) {
    quarantined_.store(false, std::memory_order_relaxed);
    obs_.quarantined->set(0);
    obs_.repairs->add(1);
  }
  if (opts_.adaptive) adapt_threshold(flush_ms, raw.size());

  // Observability last, off the reader-visible locks: the span ring,
  // the optional JSONL sink, and the global registry.
  trace_.record(span);
  if (opts_.span_sink) opts_.span_sink(span);
  obs_.flushes->inc();
  obs_.submitted->add(span.raw);  // per-flush, not per-submit (hot path)
  obs_.inserts_applied->add(ins.applied);
  obs_.removes_applied->add(rem.applied);
  obs_.pages_cloned->add(span.pages_cloned);
  obs_.om_reclaimed->add(om_reclaimed);
  obs_.worker_busy_us->add(span.worker_busy_us);
  obs_.worker_idle_us->add(span.worker_idle_us);
  obs_.steal_chunks->add(span.steal_chunks);
  obs_.epoch->set(static_cast<std::int64_t>(epoch));
  obs_.threshold->set(static_cast<std::int64_t>(
      threshold_.load(std::memory_order_relaxed)));
  obs_.flush_us->record(span.flush_us);
  obs_.batch_size->record(span.raw);
  obs_.publish_us->record(static_cast<std::uint64_t>(publish_ms * 1000.0));
  obs_.overloaded->set(overloaded_ ? 1 : 0);
  // Admission counters are maintained by the queue; export per-flush
  // deltas so the registry totals stay monotonic and cumulative.
  obs_.admission_shed->add(adm.shed - admission_exported_.shed);
  obs_.admission_blocked_us->add(adm.blocked_us -
                                 admission_exported_.blocked_us);
  obs_.admission_compacted->add(adm.compacted -
                                admission_exported_.compacted);
  admission_exported_ = adm;
  return epoch;
}

bool StreamingEngine::durable_io(const std::function<void()>& op,
                                 const char* what) {
  const durability::Manager::Options& d = opts_.durability;
  const int max_retries = std::max(0, d.max_retries);
  for (int attempt = 0;; ++attempt) {
    try {
      op();
      if (attempt > 0) {
        obs_.durability_retries->add(static_cast<std::uint64_t>(attempt));
        MutexGuard lk(stats_mu_);
        stats_.durability_retries += static_cast<std::uint64_t>(attempt);
      }
      return true;
    } catch (const io::IoError& e) {
      if (attempt >= max_retries) {
        // Persistent failure: disarm durability instead of letting the
        // error terminate the serving path. The Manager object stays
        // alive (its directory may come back — ENOSPC clears, the
        // mount heals) and try_rearm_durability() probes it on a
        // timer.
        durability_degraded_ = true;
        degraded_epoch_ = published_epoch_;
        last_rearm_attempt_ = std::chrono::steady_clock::now();
        obs_.durability_degraded->set(1);
        std::fprintf(stderr,
                     "[parcore durability] %s failed after %d attempts "
                     "(%s) — degrading to memory-only mode at epoch %llu\n",
                     what, attempt + 1, e.what(),
                     static_cast<unsigned long long>(published_epoch_));
        MutexGuard lk(stats_mu_);
        stats_.durability_retries += static_cast<std::uint64_t>(attempt);
        stats_.durability_degraded = true;
        stats_.durability_degraded_epoch = published_epoch_;
        return false;
      }
      // Bounded exponential backoff: transient blips (EINTR-ish
      // hiccups, a momentarily full disk) usually clear within a few
      // ms, and the flush path can afford short stalls far better than
      // losing durability.
      const double backoff_ms =
          std::max(0.0, d.retry_backoff_ms) * static_cast<double>(1 << attempt);
      if (backoff_ms > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
    }
  }
}

void StreamingEngine::try_rearm_durability(std::uint64_t epoch) {
  const double interval_ms = opts_.durability.rearm_interval_ms;
  if (interval_ms <= 0.0) return;
  const auto now = std::chrono::steady_clock::now();
  const double since_ms =
      std::chrono::duration<double, std::milli>(now - last_rearm_attempt_)
          .count();
  if (since_ms < interval_ms) return;
  last_rearm_attempt_ = now;
  try {
    // A FULL checkpoint, not a WAL resume: frames were dropped while
    // degraded, so the only consistent durable state is a fresh image
    // of the current epoch (which also rotates in a fresh WAL).
    durability_->checkpoint(make_checkpoint(epoch));
  } catch (const io::IoError&) {
    return;  // still broken; next attempt after the interval
  }
  durability_degraded_ = false;
  obs_.durability_degraded->set(0);
  obs_.durability_rearms->add(1);
  std::fprintf(stderr,
               "[parcore durability] re-armed at epoch %llu (fresh "
               "checkpoint generation)\n",
               static_cast<unsigned long long>(epoch));
  MutexGuard lk(stats_mu_);
  ++stats_.durability_rearms;
  stats_.durability_degraded = false;
  stats_.durability = durability_->totals();
}

void StreamingEngine::corrupt_cores_for_test(
    const std::vector<VertexId>& vertices, CoreValue delta) {
  MutexGuard lk(flush_mu_);
  for (VertexId v : vertices) {
    std::atomic<CoreValue>& c = maintainer_.state().core(v);
    c.store(static_cast<CoreValue>(c.load(std::memory_order_relaxed) + delta),
            std::memory_order_relaxed);
  }
  // Republish the touched pages at the SAME epoch so the live view
  // carries the corruption too — exactly what a maintenance bug would
  // leave behind: state and view agreeing with each other and both
  // wrong versus the graph.
  query::CoreView view = index_.publish(
      vertices, [this](VertexId v) { return maintainer_.core(v); });
  auto snap = build_snapshot(published_epoch_, std::move(view));
  SpinGuard g(snap_mu_);
  snap_ = std::move(snap);
}

io::PcgCheckpoint StreamingEngine::make_checkpoint(std::uint64_t epoch) {
  io::PcgCheckpoint ck;
  ck.epoch = epoch;
  ck.num_vertices = graph_.num_vertices();
  ck.edges = graph_.edges();
  SavedCoreOrder saved = maintainer_.state().save_order();
  ck.core = std::move(saved.core);
  ck.order = std::move(saved.order);
  return ck;
}

std::shared_ptr<EngineSnapshot> StreamingEngine::build_snapshot(
    std::uint64_t epoch, query::CoreView view) {
  auto snap = std::make_shared<EngineSnapshot>();
  snap->epoch = epoch;
  snap->view = std::move(view);
  snap->max_core = maintainer_.state().max_core();
  snap->num_edges = graph_.num_edges();
  // Called at quiescence only (constructor / under flush_mu_ after the
  // batch), so the copy — a compact arena fill — sees a stable graph.
  if (opts_.snapshot_graph)
    snap->graph = std::make_shared<const DynamicGraph>(graph_);
  return snap;
}

void StreamingEngine::adapt_threshold(double flush_ms, std::size_t raw) {
  if (raw == 0 || flush_ms <= 0.0) return;
  // One multiplicative step per flush toward the latency target;
  // damped (sqrt) so a single outlier flush cannot swing the threshold
  // by more than ~2x.
  const double ratio = opts_.target_flush_ms / flush_ms;
  const double step = std::clamp(std::sqrt(ratio), 0.5, 2.0);
  const auto cur = threshold_.load(std::memory_order_relaxed);
  const auto next = static_cast<std::size_t>(
      std::clamp(static_cast<double>(cur) * step,
                 static_cast<double>(opts_.min_threshold),
                 static_cast<double>(opts_.max_threshold)));
  threshold_.store(next, std::memory_order_relaxed);
}

std::shared_ptr<const EngineSnapshot> StreamingEngine::snapshot() const {
  SpinGuard g(snap_mu_);
  // While quarantined, queries are pinned to the last VERIFIED epoch:
  // a snapshot known wrong must not be served while the repair flush is
  // in flight (docs/ROBUSTNESS.md). The repair publishes a fresh
  // verified snapshot and lifts the pin.
  return quarantined_.load(std::memory_order_relaxed) && verified_snap_
             ? verified_snap_
             : snap_;
}

EngineStats StreamingEngine::stats() const {
  // Lazy memory refresh (staleness rule documented at
  // EngineStats::memory): only when the sample is older than the
  // configured epoch budget AND the flush lock is free — a running
  // flush is never blocked, and the O(n) scan runs outside stats_mu_ so
  // concurrent readers are never blocked either.
  if (opts_.memory_refresh_epochs > 0) {
    // Adopt-guard try-lock idiom (sync/mutex.h): the analysis tracks
    // the acquisition through try_lock() and the release through the
    // adopting guard's destructor.
    if (flush_mu_.try_lock()) {
      MutexGuard fl(flush_mu_, kAdoptLock);
      bool stale = false;
      {
        MutexGuard lk(stats_mu_);
        stale = stats_.epochs - stats_.memory_epoch >=
                opts_.memory_refresh_epochs;
      }
      if (stale) {
        const GraphMemoryStats mem = graph_.memory_stats();
        MutexGuard lk(stats_mu_);
        stats_.memory = mem;
        stats_.memory_epoch = stats_.epochs;
      }
    }
  }
  MutexGuard lk(stats_mu_);
  EngineStats s = stats_;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  // Live rather than flush-latest: a shed/blocked producer shows up in
  // stats() immediately, not only after the next flush exports deltas.
  s.admission = queue_.admission();
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  return s;
}

StreamingEngine::Options options_from_env(StreamingEngine::Options base) {
  base.shards = static_cast<std::size_t>(env_int(
      "PARCORE_ENGINE_SHARDS", static_cast<long>(base.shards)));
  base.flush_threshold = static_cast<std::size_t>(env_int(
      "PARCORE_ENGINE_FLUSH_THRESHOLD",
      static_cast<long>(base.flush_threshold)));
  base.flush_interval_ms =
      env_double("PARCORE_ENGINE_FLUSH_INTERVAL_MS", base.flush_interval_ms);
  base.workers = static_cast<int>(
      env_int("PARCORE_ENGINE_WORKERS", base.workers));
  // Admission control (docs/ROBUSTNESS.md).
  base.ingest_cap = static_cast<std::size_t>(std::max(
      env_int("PARCORE_ENGINE_INGEST_CAP",
              static_cast<long>(base.ingest_cap)),
      0L));
  {
    const std::string policy = env_str(
        "PARCORE_ENGINE_OVERLOAD",
        base.overload == OverloadPolicy::kShed      ? "shed"
        : base.overload == OverloadPolicy::kDegrade ? "degrade"
                                                    : "block");
    if (policy == "shed")
      base.overload = OverloadPolicy::kShed;
    else if (policy == "degrade")
      base.overload = OverloadPolicy::kDegrade;
    else if (policy == "block")
      base.overload = OverloadPolicy::kBlock;
  }
  if (env_present("PARCORE_ENGINE_ADAPTIVE"))
    base.adaptive = env_flag("PARCORE_ENGINE_ADAPTIVE");
  base.target_flush_ms =
      env_double("PARCORE_ENGINE_TARGET_FLUSH_MS", base.target_flush_ms);
  base.min_threshold = static_cast<std::size_t>(env_int(
      "PARCORE_ENGINE_MIN_THRESHOLD", static_cast<long>(base.min_threshold)));
  base.max_threshold = static_cast<std::size_t>(env_int(
      "PARCORE_ENGINE_MAX_THRESHOLD", static_cast<long>(base.max_threshold)));
  base.om_compact_interval = static_cast<std::size_t>(
      env_int("PARCORE_ENGINE_OM_COMPACT_INTERVAL",
              static_cast<long>(base.om_compact_interval)));
  if (env_present("PARCORE_ENGINE_SNAPSHOT_GRAPH"))
    base.snapshot_graph = env_flag("PARCORE_ENGINE_SNAPSHOT_GRAPH");
  base.memory_refresh_epochs = static_cast<std::size_t>(std::max(
      env_int("PARCORE_ENGINE_MEMORY_REFRESH",
              static_cast<long>(base.memory_refresh_epochs)),
      0L));
  base.trace_capacity = static_cast<std::size_t>(std::clamp(
      env_int("PARCORE_OBS_TRACE_CAP",
              static_cast<long>(base.trace_capacity)),
      1L, 1L << 20));
  base.report_interval_ms = std::max(
      env_double("PARCORE_OBS_REPORT_MS", base.report_interval_ms), 0.0);
  base.reverify_interval_ms = std::max(
      env_double("PARCORE_SERVE_REVERIFY_MS", base.reverify_interval_ms),
      0.0);
  // Cold start: > 0 runs the initial decomposition through the bulk
  // parallel peel with this many workers (docs/CONFIG.md).
  base.maintainer.init_workers = static_cast<int>(std::clamp(
      env_int("PARCORE_DECOMPOSE_WORKERS",
              static_cast<long>(base.maintainer.init_workers)),
      0L, 1024L));
  // The index clamps to [64, 1M] and rounds up to a power of two.
  base.snapshot_page = static_cast<std::size_t>(std::max(
      env_int("PARCORE_ENGINE_SNAPSHOT_PAGE",
              static_cast<long>(base.snapshot_page)),
      1L));
  if (env_present("PARCORE_ENGINE_PLAN"))
    base.maintainer.schedule = env_flag("PARCORE_ENGINE_PLAN")
                                   ? ScheduleMode::kPlan
                                   : ScheduleMode::kDynamic;
  // Clamped: a stray negative/huge value would otherwise silently
  // degrade every planned batch (e.g. a chunk size cast to ~SIZE_MAX
  // forces the serial fast path).
  base.maintainer.plan.max_waves = static_cast<int>(std::clamp(
      env_int("PARCORE_ENGINE_PLAN_MAX_WAVES",
              static_cast<long>(base.maintainer.plan.max_waves)),
      1L, 1L << 20));
  base.maintainer.plan.chunk_edges = static_cast<std::size_t>(std::clamp(
      env_int("PARCORE_ENGINE_PLAN_CHUNK",
              static_cast<long>(base.maintainer.plan.chunk_edges)),
      1L, 4096L));
  // Durability knobs (docs/CONFIG.md, docs/DURABILITY.md).
  base.durability.dir = env_str("PARCORE_WAL_DIR", base.durability.dir);
  base.durability.checkpoint_interval = static_cast<std::size_t>(std::max(
      env_int("PARCORE_WAL_CHECKPOINT_INTERVAL",
              static_cast<long>(base.durability.checkpoint_interval)),
      0L));
  if (env_present("PARCORE_WAL_FSYNC"))
    base.durability.fsync = env_flag("PARCORE_WAL_FSYNC");
  base.durability.retain = static_cast<std::size_t>(std::max(
      env_int("PARCORE_WAL_RETAIN",
              static_cast<long>(base.durability.retain)),
      1L));
  // Durable-I/O fault tolerance (docs/ROBUSTNESS.md).
  base.durability.max_retries = static_cast<int>(std::clamp(
      env_int("PARCORE_WAL_RETRIES",
              static_cast<long>(base.durability.max_retries)),
      0L, 100L));
  base.durability.retry_backoff_ms = std::max(
      env_double("PARCORE_WAL_RETRY_BACKOFF_MS",
                 base.durability.retry_backoff_ms),
      0.0);
  base.durability.rearm_interval_ms = std::max(
      env_double("PARCORE_WAL_REARM_MS", base.durability.rearm_interval_ms),
      0.0);
  return base;
}

}  // namespace parcore::engine
