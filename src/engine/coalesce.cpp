#include "engine/coalesce.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "parallel/batch_plan.h"

namespace parcore::engine {

namespace {

struct KeyInfo {
  std::uint32_t inserts = 0;
  std::uint32_t removes = 0;
  UpdateKind last{UpdateKind::kInsert};
};

/// Sorts `edges` into the batch planner's (level, OM position) order.
/// Keys are precomputed so the comparator stays branch-cheap (sorting
/// with per-compare atomic label reads would dominate the drain).
void sort_by_plan_key(std::vector<Edge>& edges, const CoreState& state) {
  if (edges.size() < 2) return;
  std::vector<std::pair<PlanSortKey, Edge>> keyed;
  keyed.reserve(edges.size());
  for (const Edge& e : edges) keyed.emplace_back(plan_sort_key(state, e), e);
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (std::size_t i = 0; i < edges.size(); ++i) edges[i] = keyed[i].second;
}

}  // namespace

CoalescedBatch coalesce(std::span<const GraphUpdate> updates,
                        const DynamicGraph& g, const CoreState* order_hint) {
  CoalescedBatch out;
  out.stats.raw = updates.size();

  const auto n = static_cast<VertexId>(g.num_vertices());
  std::unordered_map<std::uint64_t, KeyInfo> keys;
  keys.reserve(updates.size());
  // First-seen order of keys, so emitted batches are deterministic for a
  // fixed drain order (helps tests and replay debugging).
  std::vector<std::uint64_t> order;
  order.reserve(updates.size());

  for (const GraphUpdate& u : updates) {
    if (u.e.u == u.e.v || u.e.u >= n || u.e.v >= n) {
      ++out.stats.rejected;
      continue;
    }
    auto [it, fresh] = keys.try_emplace(edge_key(u.e));
    if (fresh) order.push_back(it->first);
    KeyInfo& info = it->second;
    if (u.kind == UpdateKind::kInsert)
      ++info.inserts;
    else
      ++info.removes;
    info.last = u.kind;
  }

  for (std::uint64_t key : order) {
    const KeyInfo& info = keys.find(key)->second;
    // The last op is the winner; the c-1 earlier ops are redundant.
    // Among those, opposing kinds annihilate in pairs and the rest are
    // duplicates, so per key: c = 1 + 2*pairs + duplicates.
    std::uint32_t ins = info.inserts, rem = info.removes;
    if (info.last == UpdateKind::kInsert)
      --ins;
    else
      --rem;
    const auto pairs = static_cast<std::size_t>(std::min(ins, rem));
    out.stats.annihilated_pairs += pairs;
    out.stats.duplicates += ins + rem - 2 * pairs;

    const Edge e{static_cast<VertexId>(key >> 32),
                 static_cast<VertexId>(key & 0xffffffffu)};
    const bool present = g.has_edge(e.u, e.v);
    const bool want_present = info.last == UpdateKind::kInsert;
    if (want_present == present) {
      ++out.stats.noops;
      continue;
    }
    if (want_present)
      out.inserts.push_back(e);
    else
      out.removes.push_back(e);
  }
  if (order_hint != nullptr) {
    // Removes apply first, so their keys are computed against exactly
    // the state the planner will see. The insert batch's keys only
    // stay fresh when there are no removes to shift cores first —
    // otherwise the planner would detect the drift and re-sort anyway,
    // making a pre-sort here wasted work.
    sort_by_plan_key(out.removes, *order_hint);
    if (out.removes.empty()) sort_by_plan_key(out.inserts, *order_hint);
  }
  return out;
}

}  // namespace parcore::engine
