#include "engine/coalesce.h"

#include <unordered_map>

namespace parcore::engine {

namespace {

struct KeyInfo {
  std::uint32_t inserts = 0;
  std::uint32_t removes = 0;
  UpdateKind last{UpdateKind::kInsert};
};

}  // namespace

CoalescedBatch coalesce(std::span<const GraphUpdate> updates,
                        const DynamicGraph& g) {
  CoalescedBatch out;
  out.stats.raw = updates.size();

  const auto n = static_cast<VertexId>(g.num_vertices());
  std::unordered_map<std::uint64_t, KeyInfo> keys;
  keys.reserve(updates.size());
  // First-seen order of keys, so emitted batches are deterministic for a
  // fixed drain order (helps tests and replay debugging).
  std::vector<std::uint64_t> order;
  order.reserve(updates.size());

  for (const GraphUpdate& u : updates) {
    if (u.e.u == u.e.v || u.e.u >= n || u.e.v >= n) {
      ++out.stats.rejected;
      continue;
    }
    auto [it, fresh] = keys.try_emplace(edge_key(u.e));
    if (fresh) order.push_back(it->first);
    KeyInfo& info = it->second;
    if (u.kind == UpdateKind::kInsert)
      ++info.inserts;
    else
      ++info.removes;
    info.last = u.kind;
  }

  for (std::uint64_t key : order) {
    const KeyInfo& info = keys.find(key)->second;
    // The last op is the winner; the c-1 earlier ops are redundant.
    // Among those, opposing kinds annihilate in pairs and the rest are
    // duplicates, so per key: c = 1 + 2*pairs + duplicates.
    std::uint32_t ins = info.inserts, rem = info.removes;
    if (info.last == UpdateKind::kInsert)
      --ins;
    else
      --rem;
    const auto pairs = static_cast<std::size_t>(std::min(ins, rem));
    out.stats.annihilated_pairs += pairs;
    out.stats.duplicates += ins + rem - 2 * pairs;

    const Edge e{static_cast<VertexId>(key >> 32),
                 static_cast<VertexId>(key & 0xffffffffu)};
    const bool present = g.has_edge(e.u, e.v);
    const bool want_present = info.last == UpdateKind::kInsert;
    if (want_present == present) {
      ++out.stats.noops;
      continue;
    }
    if (want_present)
      out.inserts.push_back(e);
    else
      out.removes.push_back(e);
  }
  return out;
}

}  // namespace parcore::engine
