// Turns a drained stream of raw interleaved updates into the two
// disjoint batches ParallelOrderMaintainer requires.
//
// Per canonical edge, the drain order serialises all racing updates and
// the LAST operation decides the edge's desired final state; everything
// before it is redundant. Opposing redundant ops annihilate in pairs
// (insert+remove of the same edge), same-kind redundant ops are
// duplicates. The surviving op is emitted only if it actually changes
// membership against the current graph — a remove of an absent edge or
// an insert of a present one is a no-op the maintainer never sees.
//
// Emitted guarantees (the maintainer's §4 preconditions):
//   - each edge appears at most once across BOTH output batches, so the
//     insert and remove batches are disjoint;
//   - every emitted insert is absent from `g`, every emitted remove is
//     present in `g` (valid while only the flushing thread mutates g).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/dynamic_graph.h"
#include "support/types.h"

namespace parcore {
class CoreState;
}

namespace parcore::engine {

/// Exact accounting: every raw update falls in exactly one bucket, so
///   raw == rejected + 2*annihilated_pairs + duplicates + noops
///          + |inserts| + |removes|.
struct CoalesceStats {
  std::size_t raw = 0;                // updates examined
  std::size_t annihilated_pairs = 0;  // opposing insert/remove pairs
  std::size_t duplicates = 0;         // redundant resubmissions
  std::size_t noops = 0;              // winners that matched g already
  std::size_t rejected = 0;           // self-loops, out-of-range vertices

  CoalesceStats& operator+=(const CoalesceStats& o) {
    raw += o.raw;
    annihilated_pairs += o.annihilated_pairs;
    duplicates += o.duplicates;
    noops += o.noops;
    rejected += o.rejected;
    return *this;
  }
};

struct CoalescedBatch {
  std::vector<Edge> inserts;
  std::vector<Edge> removes;
  CoalesceStats stats;
};

/// Coalesces `updates` (in drain order) against the current membership
/// of `g`. Read-only on `g`; the caller must guarantee no concurrent
/// mutation of `g` until the batch has been applied.
///
/// When `order_hint` is non-null the emitted batches are additionally
/// sorted by the batch planner's locality key — affected level
/// k = min(core(u), core(v)), then the OM position of the k-order-lower
/// endpoint (parallel/batch_plan.h) — so BatchPlan::build detects a
/// presorted input and skips its own sort: planning cost is amortised
/// into the drain. The hint is read at flush quiescence. Removes apply
/// first, so they are always pre-sorted; the insert batch is only
/// pre-sorted when the flush carries no removes (otherwise its keys
/// would go stale the moment the removes land and the planner would
/// re-sort anyway).
CoalescedBatch coalesce(std::span<const GraphUpdate> updates,
                        const DynamicGraph& g,
                        const CoreState* order_hint = nullptr);

}  // namespace parcore::engine
