#include "engine/ingest.h"

#include <functional>
#include <thread>

namespace parcore::engine {

namespace {

std::size_t round_up_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

IngestQueue::IngestQueue(std::size_t shards) {
  const std::size_t count = round_up_pow2(shards == 0 ? 1 : shards);
  shards_ = std::vector<Shard>(count);
  mask_ = count - 1;
}

IngestQueue::Shard& IngestQueue::shard_for_this_thread() {
  // Hash the thread id once per thread; consecutive ids land on
  // different shards. thread_local so the pin survives across pushes
  // (per-producer FIFO within a shard).
  thread_local const std::size_t tid_hash =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[tid_hash & mask_];
}

std::size_t IngestQueue::push(const GraphUpdate& u) {
  Shard& s = shard_for_this_thread();
  s.lock.lock();
  s.buf.push_back(u);
  // Counted inside the critical section: once drain() can observe the
  // update (it takes this lock), its increment has landed, so the
  // drain-side fetch_sub can never underflow the counter.
  const std::size_t prev = size_.fetch_add(1, std::memory_order_relaxed);
  s.lock.unlock();
  return prev;
}

std::size_t IngestQueue::drain(std::vector<GraphUpdate>& out) {
  std::size_t drained = 0;
  std::vector<GraphUpdate> grabbed;
  for (Shard& s : shards_) {
    grabbed.clear();
    // Swap under the lock, splice outside it: producers stall only for
    // the O(1) swap, not for the copy into `out`.
    s.lock.lock();
    grabbed.swap(s.buf);
    s.lock.unlock();
    drained += grabbed.size();
    out.insert(out.end(), grabbed.begin(), grabbed.end());
  }
  size_.fetch_sub(drained, std::memory_order_relaxed);
  return drained;
}

}  // namespace parcore::engine
