#include "engine/ingest.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>
#include <unordered_set>

namespace parcore::engine {

namespace {

std::size_t round_up_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

IngestQueue::IngestQueue(Options opts)
    : cap_(opts.cap), policy_(opts.policy), overflow_(opts.overflow) {
  const std::size_t count = round_up_pow2(opts.shards == 0 ? 1 : opts.shards);
  shards_ = std::vector<Shard>(count);
  mask_ = count - 1;
}

IngestQueue::Shard& IngestQueue::shard_for_this_thread() {
  // Hash the thread id once per thread; consecutive ids land on
  // different shards. thread_local so the pin survives across pushes
  // (per-producer FIFO within a shard).
  thread_local const std::size_t tid_hash =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[tid_hash & mask_];
}

std::size_t IngestQueue::compact_shard(Shard& s) {
  SpinGuard g(s.lock);
  const std::size_t before = s.buf.size();
  // Amortization guard: don't re-scan until the shard has roughly
  // doubled past the last compaction's survivor count. Without it an
  // all-distinct stream at the cap would pay a futile O(size) scan per
  // push (observed as a ~500x throughput collapse in bench_overload).
  if (before < s.compact_floor * 2 + 16) return 0;
  if (before > 1) {
    // Walk back to front keeping only each edge's LAST op, then restore
    // order. Dropping an edge's earlier ops cannot change what the
    // coalescer computes from the drained stream: only the drain-order
    // last op of an edge decides its outcome, and survivors keep their
    // relative order (per-producer FIFO included).
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(before);
    std::vector<GraphUpdate> kept;
    kept.reserve(before);
    for (std::size_t i = before; i-- > 0;) {
      if (seen.insert(edge_key(s.buf[i].e)).second) kept.push_back(s.buf[i]);
    }
    std::reverse(kept.begin(), kept.end());
    s.buf.swap(kept);
  }
  s.compact_floor = s.buf.size();
  const std::size_t removed = before - s.buf.size();
  if (removed > 0) size_.fetch_sub(removed, std::memory_order_relaxed);
  return removed;
}

PushResult IngestQueue::push(const GraphUpdate& u) {
  PushResult r;
  Shard& s = shard_for_this_thread();
  bool at_cap = false;
  {
    SpinGuard g(s.lock);
    s.buf.push_back(u);
    // Counted inside the critical section: once drain() can observe the
    // update (it takes this lock), its increment has landed, so the
    // drain-side fetch_sub can never underflow the counter.
    r.prev = size_.fetch_add(1, std::memory_order_relaxed);
    // Optimistic admission: the fetch_add the unbounded path already
    // pays doubles as the at-cap probe, so an under-cap push costs one
    // register compare over the unbounded queue. (A separate pre-push
    // size_ load re-contends the hottest cache line before its own RMW
    // and measurably taxed admission-on throughput — the <=2% gate is
    // why the probe is the RMW itself.) kShed/kBlock retract the
    // speculative insert under this same lock hold, so a drain can
    // never deliver an update whose push will report accepted == false.
    at_cap = cap_ > 0 && r.prev >= cap_ &&
             !closed_.load(std::memory_order_relaxed);
    if (at_cap && policy_ != OverloadPolicy::kDegrade) {
      s.buf.pop_back();
      size_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  if (at_cap) return push_at_cap(s, u, r);
  return r;
}

PushResult IngestQueue::push_at_cap(Shard& s, const GraphUpdate& u,
                                    PushResult r) {
  // Poke the consumer before the policy acts: a blocking producer
  // wants the drain it is about to wait on already scheduled.
  if (overflow_ != nullptr) overflow_->notify();
  switch (policy_) {
    case OverloadPolicy::kShed:
      r.accepted = false;
      shed_.fetch_add(1, std::memory_order_relaxed);
      return r;
    case OverloadPolicy::kBlock: {
      block_waits_.fetch_add(1, std::memory_order_relaxed);
      const auto t0 = std::chrono::steady_clock::now();
      while (size_.load(std::memory_order_relaxed) >= cap_ &&
             !closed_.load(std::memory_order_relaxed)) {
        // Bounded waits, re-armed by drain(): the condition is
        // re-checked on every wake, so a missed notify costs at most
        // one timeout, never a hang.
        drained_.wait_for(std::chrono::microseconds(500));
      }
      r.blocked_us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      blocked_us_.fetch_add(r.blocked_us, std::memory_order_relaxed);
      // Land the update for real; no re-check, so racing producers can
      // overshoot the cap by at most one each after a wake.
      {
        SpinGuard g(s.lock);
        s.buf.push_back(u);
        r.prev = size_.fetch_add(1, std::memory_order_relaxed);
      }
      return r;
    }
    case OverloadPolicy::kDegrade: {
      // The update stays admitted (with nothing left to compact the cap
      // has to yield, or a distinct-edge burst would deadlock producers
      // that were promised admission); shed the oldest redundant ops
      // from this shard instead.
      const std::size_t removed = compact_shard(s);
      if (removed > 0)
        compacted_.fetch_add(removed, std::memory_order_relaxed);
      return r;
    }
  }
  return r;  // unreachable; placates -Wreturn-type
}

std::size_t IngestQueue::drain(std::vector<GraphUpdate>& out) {
  std::size_t drained = 0;
  std::vector<GraphUpdate> grabbed;
  for (Shard& s : shards_) {
    grabbed.clear();
    // Swap under the lock, splice outside it: producers stall only for
    // the O(1) swap, not for the copy into `out`.
    {
      SpinGuard g(s.lock);
      grabbed.swap(s.buf);
      s.compact_floor = 0;
    }
    drained += grabbed.size();
    out.insert(out.end(), grabbed.begin(), grabbed.end());
  }
  size_.fetch_sub(drained, std::memory_order_relaxed);
  if (cap_ > 0 && drained > 0) drained_.notify_all();
  return drained;
}

void IngestQueue::close() {
  closed_.store(true, std::memory_order_relaxed);
  if (cap_ > 0) drained_.notify_all();
}

void IngestQueue::open() {
  closed_.store(false, std::memory_order_relaxed);
}

}  // namespace parcore::engine
