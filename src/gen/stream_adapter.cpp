#include "gen/stream_adapter.h"

#include <deque>

namespace parcore {

std::vector<GraphUpdate> updates_from_temporal(
    std::span<const TimestampedEdge> stream) {
  std::vector<GraphUpdate> ops;
  ops.reserve(stream.size());
  for (const TimestampedEdge& te : stream)
    ops.push_back(GraphUpdate{te.e, UpdateKind::kInsert});
  return ops;
}

std::vector<GraphUpdate> sliding_window_updates(std::span<const Edge> stream,
                                                std::size_t window) {
  std::vector<GraphUpdate> ops;
  ops.reserve(window == 0 ? stream.size() : 2 * stream.size());
  std::deque<Edge> live;
  for (const Edge& e : stream) {
    ops.push_back(GraphUpdate{e, UpdateKind::kInsert});
    if (window == 0) continue;
    live.push_back(e);
    if (live.size() > window) {
      ops.push_back(GraphUpdate{live.front(), UpdateKind::kRemove});
      live.pop_front();
    }
  }
  return ops;
}

std::vector<std::vector<GraphUpdate>> partition_updates_by_edge(
    std::span<const GraphUpdate> ops, std::size_t parts) {
  if (parts == 0) parts = 1;
  std::vector<std::vector<GraphUpdate>> out(parts);
  for (const GraphUpdate& op : ops) {
    // EdgeHash is canonical-key based, so (u,v) and (v,u) land together.
    out[EdgeHash{}(op.e) % parts].push_back(op);
  }
  return out;
}

}  // namespace parcore
