// Synthetic graph generators covering the evaluation graph families of
// the paper (§6.2): Erdős–Rényi (ER), Barabási–Albert (BA), R-MAT, a
// perturbed 2-D grid (road-network stand-in), and temporal streams.
// All generators are deterministic given the Rng seed and emit
// self-loop-free, duplicate-free undirected edges.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/rng.h"
#include "support/types.h"

namespace parcore {

/// G(n, m): m distinct uniform random edges.
std::vector<Edge> gen_erdos_renyi(std::size_t n, std::size_t m, Rng& rng);

/// Preferential attachment: each new vertex attaches `k` edges to
/// existing vertices chosen proportionally to degree. Produces the
/// paper's pathological single-core-value graph when k divides evenly.
std::vector<Edge> gen_barabasi_albert(std::size_t n, std::size_t k, Rng& rng);

struct RmatParams {
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
};

/// R-MAT over 2^scale vertices aiming for m distinct edges (slightly
/// fewer if duplicates/self-loops dominate after max attempts).
std::vector<Edge> gen_rmat(unsigned scale, std::size_t m, RmatParams p,
                           Rng& rng);

/// rows x cols grid where each lattice edge survives with `keep_prob`
/// and diagonals appear with `diag_prob`; road-network stand-in (max
/// core <= 3 like roadNet-CA).
std::vector<Edge> gen_grid(std::size_t rows, std::size_t cols,
                           double keep_prob, double diag_prob, Rng& rng);

/// Temporal preferential-attachment stream: edges carry strictly
/// increasing timestamps, modelling KONECT temporal graphs where a batch
/// is a contiguous time range.
std::vector<TimestampedEdge> gen_temporal_ba(std::size_t n, std::size_t k,
                                             Rng& rng);

/// Temporal R-MAT stream (timestamps = arrival order).
std::vector<TimestampedEdge> gen_temporal_rmat(unsigned scale, std::size_t m,
                                               RmatParams p, Rng& rng);

/// Interleaved insert/remove update stream over an edge universe, the
/// workload shape served by the streaming engine (src/engine). Each op
/// picks an edge from `universe` — with probability `hot_fraction` from
/// a small hot subset, so duplicate submissions and insert/remove pairs
/// of the same edge (annihilation fodder for the coalescer) occur
/// naturally — and is a removal with probability `remove_fraction`.
std::vector<GraphUpdate> gen_update_stream(std::span<const Edge> universe,
                                           std::size_t ops,
                                           double remove_fraction,
                                           double hot_fraction, Rng& rng);

/// Complete graph on n vertices (test helper; core = n-1 everywhere).
std::vector<Edge> gen_clique(std::size_t n);

/// Cycle on n vertices (core = 2 everywhere).
std::vector<Edge> gen_cycle(std::size_t n);

/// Star with n-1 leaves (core = 1 everywhere).
std::vector<Edge> gen_star(std::size_t n);

}  // namespace parcore
