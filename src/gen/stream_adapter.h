// Adapters between on-disk datasets (src/io) and the GraphUpdate
// streams the engine and maintainers consume (DESIGN.md §7). These are
// pure reshaping functions: no RNG, no I/O — given the same input they
// produce the same update sequence, which is what makes file-driven
// runs reproducible end to end.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/types.h"

namespace parcore {

/// Every temporal edge as an insert, in stream order.
std::vector<GraphUpdate> updates_from_temporal(
    std::span<const TimestampedEdge> stream);

/// Sliding-window replay over a (deduplicated) edge sequence: each step
/// inserts the next edge and, once more than `window` edges are live,
/// removes the oldest — the KONECT-style "most recent W edges" workload.
/// window == 0 means unbounded (inserts only).
std::vector<GraphUpdate> sliding_window_updates(std::span<const Edge> stream,
                                                std::size_t window);

/// Splits `ops` into `parts` producer streams by canonical edge key,
/// preserving each edge's op order inside one stream. Producers pinned
/// to distinct ingest shards may then race freely: ops on one edge stay
/// ordered, ops on different edges commute for final membership, so the
/// final graph is deterministic regardless of scheduling.
std::vector<std::vector<GraphUpdate>> partition_updates_by_edge(
    std::span<const GraphUpdate> ops, std::size_t parts);

}  // namespace parcore
