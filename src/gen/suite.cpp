#include "gen/suite.h"

#include <cmath>

#include "gen/generators.h"

namespace parcore {
namespace {

SuiteSpec rmat_spec(std::string name, std::size_t n, std::size_t m,
                    RmatParams p, std::size_t pn, std::size_t pm, double pad,
                    int pk) {
  SuiteSpec s;
  s.name = std::move(name);
  s.family = SuiteFamily::kRmat;
  s.n = n;
  s.m = m;
  s.rmat = p;
  s.paper_n = pn;
  s.paper_m = pm;
  s.paper_avgdeg = pad;
  s.paper_maxk = pk;
  return s;
}

unsigned scale_to_rmat_bits(std::size_t n) {
  unsigned bits = 1;
  while ((static_cast<std::size_t>(1) << bits) < n) ++bits;
  return bits;
}

}  // namespace

std::vector<SuiteSpec> table2_suite() {
  std::vector<SuiteSpec> suite;

  // Heavy-tailed social / hyperlink graphs -> R-MAT with matched skew.
  suite.push_back(rmat_spec("livej", 120'000, 1'700'000,
                            RmatParams{0.57, 0.19, 0.19}, 4'847'571,
                            68'993'773, 14.23, 372));
  {
    SuiteSpec s;  // patent: sparse citation graph -> ER
    s.name = "patent";
    s.family = SuiteFamily::kEr;
    s.n = 200'000;
    s.m = 550'000;
    s.paper_n = 6'009'555;
    s.paper_m = 16'518'948;
    s.paper_avgdeg = 2.75;
    s.paper_maxk = 64;
    suite.push_back(s);
  }
  suite.push_back(rmat_spec("wikitalk", 150'000, 315'000,
                            RmatParams{0.65, 0.15, 0.15}, 2'394'385,
                            5'021'410, 2.10, 131));
  {
    SuiteSpec s;  // roadNet-CA -> perturbed grid
    s.name = "roadNet-CA";
    s.family = SuiteFamily::kGrid;
    s.n = 200'704;  // 448 x 448
    s.m = 0;        // determined by keep/diag probabilities
    s.grid_keep = 0.93;
    s.grid_diag = 0.06;
    s.paper_n = 1'971'281;
    s.paper_m = 5'533'214;
    s.paper_avgdeg = 2.81;
    s.paper_maxk = 3;
    s.batch_factor = 0.5;
    suite.push_back(s);
  }
  suite.push_back(rmat_spec("dbpedia", 180'000, 630'000,
                            RmatParams{0.6, 0.17, 0.17}, 3'966'925,
                            13'820'853, 3.48, 20));
  suite.push_back(rmat_spec("baidu", 130'000, 1'080'000,
                            RmatParams{0.57, 0.19, 0.19}, 2'141'301,
                            17'794'839, 8.31, 78));
  suite.push_back(rmat_spec("pokec", 100'000, 1'870'000,
                            RmatParams{0.45, 0.22, 0.22}, 1'632'804,
                            30'622'564, 18.75, 47));
  suite.push_back(rmat_spec("wiki-talk-en", 150'000, 1'250'000,
                            RmatParams{0.62, 0.17, 0.17}, 2'987'536,
                            24'981'163, 8.36, 210));
  suite.push_back(rmat_spec("wiki-links-en", 200'000, 2'300'000,
                            RmatParams{0.57, 0.19, 0.19}, 5'710'993,
                            130'160'392, 22.79, 821));

  {
    SuiteSpec s;  // ER synthetic row (paper: n=1M, m=8M, AvgDeg 8)
    s.name = "ER";
    s.family = SuiteFamily::kEr;
    s.n = 100'000;
    s.m = 800'000;
    s.paper_n = 1'000'000;
    s.paper_m = 8'000'000;
    s.paper_avgdeg = 8.0;
    s.paper_maxk = 11;
    s.batch_factor = 0.5;
    suite.push_back(s);
  }
  {
    SuiteSpec s;  // BA synthetic row: THE pathological JE case (one core)
    s.name = "BA";
    s.family = SuiteFamily::kBa;
    s.n = 100'000;
    s.m = 800'000;
    s.ba_k = 8;
    s.paper_n = 1'000'000;
    s.paper_m = 8'000'000;
    s.paper_avgdeg = 8.0;
    s.paper_maxk = 8;
    s.batch_factor = 0.25;
    suite.push_back(s);
  }
  suite.push_back(rmat_spec("RMAT", 131'072, 800'000,
                            RmatParams{0.57, 0.19, 0.19}, 1'000'000,
                            8'000'000, 8.0, 237));

  // Temporal graphs -> temporal BA / R-MAT streams.
  {
    SuiteSpec s;
    s.name = "DBLP";
    s.family = SuiteFamily::kTemporalBa;
    s.n = 90'000;
    s.m = 0;
    s.ba_k = 16;
    s.temporal = true;
    s.paper_n = 1'824'701;
    s.paper_m = 29'487'744;
    s.paper_avgdeg = 16.17;
    s.paper_maxk = 286;
    suite.push_back(s);
  }
  {
    SuiteSpec s;
    s.name = "flickr";
    s.family = SuiteFamily::kTemporalRmat;
    s.n = 115'000;
    s.m = 1'650'000;
    s.rmat = RmatParams{0.57, 0.19, 0.19};
    s.temporal = true;
    s.paper_n = 2'302'926;
    s.paper_m = 33'140'017;
    s.paper_avgdeg = 14.41;
    s.paper_maxk = 600;
    suite.push_back(s);
  }
  {
    SuiteSpec s;
    s.name = "StackOverflow";
    s.family = SuiteFamily::kTemporalRmat;
    s.n = 130'000;
    s.m = 1'500'000;
    s.rmat = RmatParams{0.52, 0.21, 0.21};
    s.temporal = true;
    s.paper_n = 2'601'977;
    s.paper_m = 63'497'050;
    s.paper_avgdeg = 24.41;
    s.paper_maxk = 198;
    suite.push_back(s);
  }
  {
    SuiteSpec s;
    s.name = "wiki-edits-sh";
    s.family = SuiteFamily::kTemporalBa;
    s.n = 230'000;
    s.m = 0;
    s.ba_k = 9;
    s.temporal = true;
    s.paper_n = 4'589'850;
    s.paper_m = 40'578'944;
    s.paper_avgdeg = 8.84;
    s.paper_maxk = 47;
    suite.push_back(s);
  }
  return suite;
}

std::vector<SuiteSpec> scalability_suite() {
  std::vector<SuiteSpec> out;
  for (const SuiteSpec& s : table2_suite())
    if (s.name == "livej" || s.name == "baidu" || s.name == "dbpedia" ||
        s.name == "roadNet-CA")
      out.push_back(s);
  return out;
}

SuiteGraph build_suite_graph(const SuiteSpec& spec, double scale,
                             std::uint64_t seed) {
  // Per-graph deterministic seed derived from the name.
  std::uint64_t h = seed;
  for (char c : spec.name) h = h * 1099511628211ULL + static_cast<unsigned>(c);
  Rng rng(h);

  SuiteGraph sg;
  sg.spec = spec;
  const auto sn = static_cast<std::size_t>(
      std::max(16.0, std::round(static_cast<double>(spec.n) * scale)));
  const auto sm = static_cast<std::size_t>(
      std::round(static_cast<double>(spec.m) * scale));

  switch (spec.family) {
    case SuiteFamily::kRmat: {
      unsigned bits = scale_to_rmat_bits(sn);
      sg.edges = gen_rmat(bits, sm, spec.rmat, rng);
      sg.num_vertices = static_cast<std::size_t>(1) << bits;
      break;
    }
    case SuiteFamily::kEr:
      sg.edges = gen_erdos_renyi(sn, sm, rng);
      sg.num_vertices = sn;
      break;
    case SuiteFamily::kGrid: {
      auto side = static_cast<std::size_t>(std::sqrt(
          static_cast<double>(sn)));
      sg.edges = gen_grid(side, side, spec.grid_keep, spec.grid_diag, rng);
      sg.num_vertices = side * side;
      break;
    }
    case SuiteFamily::kBa:
      sg.edges = gen_barabasi_albert(sn, spec.ba_k, rng);
      sg.num_vertices = sn;
      break;
    case SuiteFamily::kTemporalBa:
      sg.temporal = gen_temporal_ba(sn, spec.ba_k, rng);
      sg.num_vertices = sn;
      break;
    case SuiteFamily::kTemporalRmat: {
      unsigned bits = scale_to_rmat_bits(sn);
      sg.temporal = gen_temporal_rmat(bits, sm, spec.rmat, rng);
      sg.num_vertices = static_cast<std::size_t>(1) << bits;
      break;
    }
  }
  return sg;
}

DynamicGraph to_graph(const SuiteGraph& sg) {
  if (!sg.temporal.empty()) {
    std::vector<Edge> edges;
    edges.reserve(sg.temporal.size());
    for (const TimestampedEdge& te : sg.temporal) edges.push_back(te.e);
    return DynamicGraph::from_edges(sg.num_vertices, edges);
  }
  return DynamicGraph::from_edges(sg.num_vertices, sg.edges);
}

}  // namespace parcore
