#include "gen/generators.h"

#include <algorithm>
#include <unordered_set>

namespace parcore {
namespace {

/// Tracks distinct undirected edges during generation.
class EdgeDedup {
 public:
  explicit EdgeDedup(std::size_t expected) { seen_.reserve(expected * 2); }

  bool add(VertexId u, VertexId v) {
    if (u == v) return false;
    return seen_.insert(edge_key(Edge{u, v})).second;
  }

 private:
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace

std::vector<Edge> gen_erdos_renyi(std::size_t n, std::size_t m, Rng& rng) {
  std::vector<Edge> edges;
  edges.reserve(m);
  EdgeDedup dedup(m);
  const std::size_t max_edges = n * (n - 1) / 2;
  m = std::min(m, max_edges);
  while (edges.size() < m) {
    VertexId u = static_cast<VertexId>(rng.bounded(n));
    VertexId v = static_cast<VertexId>(rng.bounded(n));
    if (dedup.add(u, v)) edges.push_back(Edge{u, v});
  }
  return edges;
}

std::vector<Edge> gen_barabasi_albert(std::size_t n, std::size_t k, Rng& rng) {
  // Standard "repeated endpoints" implementation: targets are drawn from
  // a pool that contains every endpoint of every prior edge, which is
  // exactly degree-proportional sampling.
  std::vector<Edge> edges;
  if (n < 2 || k == 0) return edges;
  k = std::min(k, n - 1);
  edges.reserve(n * k);
  EdgeDedup dedup(n * k);
  std::vector<VertexId> pool;
  pool.reserve(2 * n * k);

  // Seed: a (k+1)-clique so early vertices have enough targets.
  const std::size_t seed = std::min(n, k + 1);
  for (VertexId u = 0; u < seed; ++u)
    for (VertexId v = u + 1; v < seed; ++v) {
      if (dedup.add(u, v)) {
        edges.push_back(Edge{u, v});
        pool.push_back(u);
        pool.push_back(v);
      }
    }

  for (VertexId u = static_cast<VertexId>(seed); u < n; ++u) {
    std::size_t attached = 0;
    std::size_t attempts = 0;
    while (attached < k && attempts < 32 * k) {
      ++attempts;
      VertexId v = pool[rng.bounded(pool.size())];
      if (dedup.add(u, v)) {
        edges.push_back(Edge{u, v});
        pool.push_back(u);
        pool.push_back(v);
        ++attached;
      }
    }
  }
  return edges;
}

std::vector<Edge> gen_rmat(unsigned scale, std::size_t m, RmatParams p,
                           Rng& rng) {
  const std::size_t n = static_cast<std::size_t>(1) << scale;
  std::vector<Edge> edges;
  edges.reserve(m);
  EdgeDedup dedup(m);
  const double ab = p.a + p.b;
  const double abc = p.a + p.b + p.c;
  std::size_t attempts = 0;
  const std::size_t max_attempts = m * 16;
  while (edges.size() < m && attempts < max_attempts) {
    ++attempts;
    std::size_t u = 0, v = 0;
    for (unsigned bit = 0; bit < scale; ++bit) {
      const double r = rng.real();
      u <<= 1;
      v <<= 1;
      if (r < p.a) {
        // top-left quadrant
      } else if (r < ab) {
        v |= 1;
      } else if (r < abc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (dedup.add(static_cast<VertexId>(u), static_cast<VertexId>(v)))
      edges.push_back(
          Edge{static_cast<VertexId>(u), static_cast<VertexId>(v)});
  }
  (void)n;
  return edges;
}

std::vector<Edge> gen_grid(std::size_t rows, std::size_t cols,
                           double keep_prob, double diag_prob, Rng& rng) {
  std::vector<Edge> edges;
  edges.reserve(rows * cols * 2);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols && rng.chance(keep_prob))
        edges.push_back(Edge{id(r, c), id(r, c + 1)});
      if (r + 1 < rows && rng.chance(keep_prob))
        edges.push_back(Edge{id(r, c), id(r + 1, c)});
      if (r + 1 < rows && c + 1 < cols && rng.chance(diag_prob))
        edges.push_back(Edge{id(r, c), id(r + 1, c + 1)});
    }
  return edges;
}

std::vector<TimestampedEdge> gen_temporal_ba(std::size_t n, std::size_t k,
                                             Rng& rng) {
  std::vector<Edge> base = gen_barabasi_albert(n, k, rng);
  std::vector<TimestampedEdge> out;
  out.reserve(base.size());
  std::uint64_t t = 0;
  for (const Edge& e : base) {
    t += 1 + rng.bounded(3);  // strictly increasing, jittered
    out.push_back(TimestampedEdge{e, t});
  }
  return out;
}

std::vector<TimestampedEdge> gen_temporal_rmat(unsigned scale, std::size_t m,
                                               RmatParams p, Rng& rng) {
  std::vector<Edge> base = gen_rmat(scale, m, p, rng);
  std::vector<TimestampedEdge> out;
  out.reserve(base.size());
  std::uint64_t t = 0;
  for (const Edge& e : base) {
    t += 1 + rng.bounded(3);
    out.push_back(TimestampedEdge{e, t});
  }
  return out;
}

std::vector<GraphUpdate> gen_update_stream(std::span<const Edge> universe,
                                           std::size_t ops,
                                           double remove_fraction,
                                           double hot_fraction, Rng& rng) {
  std::vector<GraphUpdate> stream;
  if (universe.empty()) return stream;
  stream.reserve(ops);
  // The hot subset is a contiguous prefix: ~1/64 of the universe, at
  // least one edge. Sampling it with probability hot_fraction yields
  // repeated edges at a rate far above the birthday bound, which is
  // what exercises dedup and annihilation downstream.
  const std::size_t hot = std::max<std::size_t>(1, universe.size() / 64);
  for (std::size_t i = 0; i < ops; ++i) {
    const std::size_t idx = rng.chance(hot_fraction)
                                ? rng.bounded(hot)
                                : rng.bounded(universe.size());
    const UpdateKind kind = rng.chance(remove_fraction) ? UpdateKind::kRemove
                                                        : UpdateKind::kInsert;
    stream.push_back(GraphUpdate{universe[idx], kind});
  }
  return stream;
}

std::vector<Edge> gen_clique(std::size_t n) {
  std::vector<Edge> edges;
  edges.reserve(n * (n - 1) / 2);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) edges.push_back(Edge{u, v});
  return edges;
}

std::vector<Edge> gen_cycle(std::size_t n) {
  std::vector<Edge> edges;
  if (n < 3) return edges;
  edges.reserve(n);
  for (VertexId u = 0; u < n; ++u)
    edges.push_back(Edge{u, static_cast<VertexId>((u + 1) % n)});
  return edges;
}

std::vector<Edge> gen_star(std::size_t n) {
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (VertexId v = 1; v < n; ++v) edges.push_back(Edge{0, v});
  return edges;
}

}  // namespace parcore
