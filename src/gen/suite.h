// The 16-graph evaluation suite mirroring Table 2 of the paper.
//
// The original evaluation uses SNAP/KONECT graphs that are unavailable
// offline; each row is replaced by a generated stand-in from the same
// structural family, scaled down so the whole evaluation runs in
// minutes (see DESIGN.md §4). `scale` multiplies vertex/edge counts
// (1.0 = the library's laptop-scale default, ~10-30x below the paper).
#pragma once

#include <string>
#include <vector>

#include "gen/generators.h"
#include "graph/dynamic_graph.h"
#include "support/rng.h"
#include "support/types.h"

namespace parcore {

enum class SuiteFamily {
  kRmat,      // skewed power-law (social / hyperlink networks)
  kEr,        // uniform sparse (patent-like)
  kGrid,      // road network
  kBa,        // preferential attachment (single core value)
  kTemporalBa,
  kTemporalRmat,
};

struct SuiteSpec {
  std::string name;         // paper graph this stands in for
  SuiteFamily family;
  std::size_t n;            // vertex budget at scale 1.0
  std::size_t m;            // edge budget at scale 1.0
  RmatParams rmat{};        // for RMAT families
  std::size_t ba_k = 8;     // for BA families
  double grid_keep = 0.93;  // for grid
  double grid_diag = 0.05;
  bool temporal = false;
  /// Paper's reported statistics for side-by-side reporting.
  std::size_t paper_n = 0;
  std::size_t paper_m = 0;
  double paper_avgdeg = 0.0;
  int paper_maxk = 0;
  /// Batch-size multiplier for pathological baselines (JE traversals on
  /// uniform-core graphs are O(n) per edge).
  double batch_factor = 1.0;
};

struct SuiteGraph {
  SuiteSpec spec;
  std::size_t num_vertices = 0;
  std::vector<Edge> edges;                    // static graphs
  std::vector<TimestampedEdge> temporal;      // temporal graphs
};

/// The 16 Table-2 rows.
std::vector<SuiteSpec> table2_suite();

/// A small subset used by the fig5/fig6 experiments
/// (livej, baidu, dbpedia, roadNet-CA stand-ins).
std::vector<SuiteSpec> scalability_suite();

/// Generates a suite graph deterministically from its name.
SuiteGraph build_suite_graph(const SuiteSpec& spec, double scale,
                             std::uint64_t seed = 0x5eed);

/// Materialises the static DynamicGraph (temporal edges included).
DynamicGraph to_graph(const SuiteGraph& sg);

}  // namespace parcore
