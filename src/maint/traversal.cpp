#include "maint/traversal.h"

#include <algorithm>
#include <sstream>

#include "decomp/bz.h"

namespace parcore {

TraversalMaintainer::TraversalMaintainer(DynamicGraph& g, Options opts)
    : graph_(g), opts_(opts) {
  rebuild();
}

void TraversalMaintainer::rebuild() {
  const std::size_t n = graph_.num_vertices();
  Decomposition d = bz_decompose(graph_);
  core_ = std::move(d.core);
  mcd_.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    CoreValue m = 0;
    for (VertexId u : graph_.neighbors(v))
      if (core_[u] >= core_[v]) ++m;
    mcd_[v] = m;
  }
  visit_mark_.assign(n, 0);
  evict_mark_.assign(n, 0);
  vstar_mark_.assign(n, 0);
  cd_.assign(n, 0);
  epoch_ = 0;
}

void TraversalMaintainer::begin_op() {
  ++epoch_;
  if (epoch_ == 0) {
    std::fill(visit_mark_.begin(), visit_mark_.end(), 0);
    std::fill(evict_mark_.begin(), evict_mark_.end(), 0);
    std::fill(vstar_mark_.begin(), vstar_mark_.end(), 0);
    epoch_ = 1;
  }
  stack_.clear();
  estack_.clear();
  visited_list_.clear();
  vstar_.clear();
}

CoreValue TraversalMaintainer::pcd(VertexId w, CoreValue k) const {
  CoreValue value = 0;
  for (VertexId x : graph_.neighbors(w)) {
    if (core_[x] > k || (core_[x] == k && !evicted(x) && mcd_[x] > k))
      ++value;
  }
  return value;
}

bool TraversalMaintainer::insert_edge(VertexId u, VertexId v) {
  const std::size_t n = graph_.num_vertices();
  if (u == v || u >= n || v >= n) return false;
  if (!graph_.insert_edge(u, v)) return false;
  const CoreValue cu = core_[u], cv = core_[v];
  const CoreValue k = std::min(cu, cv);
  if (cv >= cu) ++mcd_[u];
  if (cu >= cv) ++mcd_[v];

  begin_op();
  const VertexId root = cu <= cv ? u : v;
  auto visit = [&](VertexId x) {
    visit_mark_[x] = epoch_;
    cd_[x] = pcd(x, k);
    stack_.push_back(x);
    visited_list_.push_back(x);
  };
  visit(root);

  auto evict_from = [&](VertexId w0) {
    evict_mark_[w0] = epoch_;
    estack_.push_back(w0);
    while (!estack_.empty()) {
      const VertexId w = estack_.back();
      estack_.pop_back();
      for (VertexId x : graph_.neighbors(w)) {
        if (core_[x] != k || !visited(x) || evicted(x)) continue;
        if (--cd_[x] <= k) {
          evict_mark_[x] = epoch_;
          estack_.push_back(x);
        }
      }
    }
  };

  while (!stack_.empty()) {
    const VertexId w = stack_.back();
    stack_.pop_back();
    if (evicted(w)) continue;
    if (cd_[w] > k) {
      for (VertexId x : graph_.neighbors(w)) {
        if (core_[x] != k || visited(x) || mcd_[x] <= k) continue;
        visit(x);
      }
    } else {
      evict_from(w);
    }
  }

  // Promote V* = visited \ evicted; repair mcd afterwards with final
  // core values in place.
  std::size_t promoted = 0;
  for (VertexId w : visited_list_) {
    if (evicted(w)) continue;
    core_[w] = k + 1;
    ++promoted;
  }
  if (promoted > 0) {
    for (VertexId w : visited_list_) {
      if (evicted(w)) continue;
      CoreValue m = 0;
      for (VertexId x : graph_.neighbors(w))
        if (core_[x] >= k + 1) ++m;
      mcd_[w] = m;
      for (VertexId x : graph_.neighbors(w)) {
        if (core_[x] != k + 1) continue;
        if (visit_mark_[x] == epoch_ && !evicted(x)) continue;  // in V*
        ++mcd_[x];
      }
    }
  }
  if (opts_.collect_stats) {
    vplus_hist_.record(visited_list_.size());
    vstar_hist_.record(promoted);
  }
  return true;
}

bool TraversalMaintainer::remove_edge(VertexId u, VertexId v) {
  if (!graph_.remove_edge(u, v)) return false;
  const CoreValue cu = core_[u], cv = core_[v];
  const CoreValue k = std::min(cu, cv);
  if (cv >= cu) --mcd_[u];
  if (cu >= cv) --mcd_[v];

  begin_op();
  auto consider = [&](VertexId w) {
    if (core_[w] == k && !in_vstar(w) && mcd_[w] < k) {
      vstar_mark_[w] = epoch_;
      vstar_.push_back(w);
      stack_.push_back(w);
    }
  };
  consider(u);
  consider(v);
  while (!stack_.empty()) {
    const VertexId w = stack_.back();
    stack_.pop_back();
    for (VertexId x : graph_.neighbors(w)) {
      if (core_[x] != k || in_vstar(x)) continue;
      --mcd_[x];
      consider(x);
    }
  }
  for (VertexId w : vstar_) core_[w] = k - 1;
  for (VertexId w : vstar_) {
    CoreValue m = 0;
    for (VertexId x : graph_.neighbors(w))
      if (core_[x] >= k - 1) ++m;
    mcd_[w] = m;
  }
  if (opts_.collect_stats) remove_vstar_hist_.record(vstar_.size());
  return true;
}

std::size_t TraversalMaintainer::insert_batch(std::span<const Edge> edges) {
  std::size_t applied = 0;
  for (const Edge& e : edges)
    if (insert_edge(e.u, e.v)) ++applied;
  return applied;
}

std::size_t TraversalMaintainer::remove_batch(std::span<const Edge> edges) {
  std::size_t applied = 0;
  for (const Edge& e : edges)
    if (remove_edge(e.u, e.v)) ++applied;
  return applied;
}

bool TraversalMaintainer::check_mcd(std::string* error) const {
  for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
    CoreValue m = 0;
    for (VertexId u : graph_.neighbors(v))
      if (core_[u] >= core_[v]) ++m;
    if (m != mcd_[v]) {
      if (error) {
        std::ostringstream os;
        os << "vertex " << v << ": mcd " << mcd_[v] << " != actual " << m;
        *error = os.str();
      }
      return false;
    }
  }
  return true;
}

}  // namespace parcore
