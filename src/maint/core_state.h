// Shared per-vertex maintenance state (paper §4: core, d+out, d*in, mcd,
// status s, status t, one lock and one OM item per vertex) plus the
// directory of per-level k-order lists. Used by both the sequential
// Simplified-Order maintainer and the Parallel-Order maintainer.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "decomp/bz.h"
#include "graph/dynamic_graph.h"
#include "om/order_list.h"
#include "support/types.h"
#include "sync/annotations.h"
#include "sync/mutex.h"
#include "sync/spinlock.h"
#include "sync/thread_team.h"

namespace parcore {

/// Directory of O_k lists. Reads are lock-free; creation is mutex-
/// guarded; capacity growth happens only at quiescence (batch start).
class LevelDirectory {
 public:
  void configure(std::uint32_t group_capacity) {
    group_capacity_ = group_capacity;
  }

  /// Grows slot capacity to at least `cap` levels. Quiescent only.
  void ensure_capacity(std::size_t cap);

  std::size_t capacity() const { return slots_.size(); }

  OrderList* get(CoreValue k) const {
    const auto idx = static_cast<std::size_t>(k);
    return idx < slots_.size() ? slots_[idx].load(std::memory_order_acquire)
                               : nullptr;
  }

  /// Returns O_k, creating it on first use. k must be < capacity().
  OrderList& get_or_create(CoreValue k);

  /// Destroys all lists (items become dangling; reinitialise after).
  void clear();

  /// OrderList::compact() over every live list: reclaims quarantined OM
  /// groups and absorbs empty ones. Quiescent only (no batch running,
  /// no lock-free readers in flight); the streaming engine calls this
  /// between flushes. Returns the total number of groups freed.
  std::size_t compact_all();

 private:
  std::uint32_t group_capacity_ = 64;
  // Published pointers: reads are lock-free (acquire loads), so slots_
  // itself is NOT guarded — only slot creation and the backing storage
  // serialise on create_mu_. ensure_capacity()/clear() are quiescent-
  // only by contract (no concurrent readers in flight).
  std::vector<std::atomic<OrderList*>> slots_;
  Mutex create_mu_;
  std::deque<OrderList> storage_ PARCORE_GUARDED_BY(create_mu_);
};

/// A serializable image of the order-based state: per-vertex core
/// numbers plus the global k-order (the per-level order lists
/// concatenated ascending by level, so core values along `order` are
/// non-decreasing). This is exactly what a durability checkpoint stores
/// (io/pcg.h PcgCheckpoint) — restoring it rebuilds dout/mcd from the
/// order alone, skipping bz_decompose entirely.
struct SavedCoreOrder {
  std::vector<CoreValue> core;
  std::vector<VertexId> order;
};

/// SoA vertex state. All cross-thread fields are atomics; `din` is only
/// touched by the lock holder of its vertex.
class CoreState {
 public:
  struct Options {
    std::uint32_t om_group_capacity = 64;
  };

  void initialize(const DynamicGraph& g, const Options& opts);
  void initialize(const DynamicGraph& g) { initialize(g, Options()); }

  /// initialize(), but the cold-start decomposition runs multi-threaded
  /// (decomp/parallel_peel.h, exact mode) and the dout/mcd rebuild is
  /// parallelised over `team`. The parallel peel's (level, sub-round,
  /// id) order is a valid k-order instance (DESIGN.md §12.2), so the
  /// resulting state passes the same invariant suite as the BZ path —
  /// it is just a different (deterministic) k-order pick. `workers` is
  /// clamped to the team.
  void initialize_parallel(const DynamicGraph& g, ThreadTeam& team,
                           int workers, const Options& opts);

  /// Rebuilds the full state from a saved (core, k-order) pair instead
  /// of running bz_decompose: O_k lists are filled by appending in the
  /// saved order, dout comes from the order ranks and mcd from the
  /// saved cores. Validates shape (sizes, permutation, non-decreasing
  /// cores along the order) and the structural invariants dout <= core
  /// and mcd >= core; on violation returns false with a diagnostic in
  /// `error` and leaves the state unusable (re-initialize before use).
  /// Whether the saved cores are CORRECT for `g` is not (and cannot
  /// cheaply be) checked here — recovery differentially verifies
  /// against bz_decompose instead.
  bool initialize_from_order(const DynamicGraph& g, const SavedCoreOrder& saved,
                             const Options& opts, std::string* error);

  /// The serializable image of the current state (quiescent only).
  SavedCoreOrder save_order() const;

  std::size_t size() const { return n_; }

  // Per-vertex fields -----------------------------------------------------
  std::atomic<CoreValue>& core(VertexId v) { return core_[v]; }
  const std::atomic<CoreValue>& core(VertexId v) const { return core_[v]; }
  std::atomic<CoreValue>& dout(VertexId v) { return dout_[v]; }
  std::atomic<CoreValue>& mcd(VertexId v) { return mcd_[v]; }
  std::atomic<std::int32_t>& t(VertexId v) { return t_[v]; }
  std::atomic<std::uint32_t>& s(VertexId v) { return s_[v]; }
  CoreValue& din(VertexId v) { return din_[v]; }
  Spinlock& lock(VertexId v) { return locks_[v]; }
  OmItem& item(VertexId v) { return items_[v]; }
  const OmItem& item(VertexId v) const { return items_[v]; }

  LevelDirectory& levels() { return levels_; }
  CoreValue max_core() const {
    return max_core_.load(std::memory_order_relaxed);
  }
  void raise_max_core(CoreValue k);

  std::vector<CoreValue> cores_snapshot() const;

  // Shared helpers ---------------------------------------------------------

  /// Global k-order test at quiescence or with both vertices locked by
  /// the caller: compares core numbers, then OM labels.
  bool precedes_stable(VertexId a, VertexId b) const;

  /// Algorithm 6: Parallel-Order — k-order test validated by the vertex
  /// status words; safe against concurrent level moves.
  bool precedes_guarded(VertexId a, VertexId b) const;

  /// |{u in adj(v) : v precedes u}| — the defining value of d+out.
  CoreValue compute_dout(const DynamicGraph& g, VertexId v) const;

  /// |{u in adj(v) : core(u) >= core(v)}| — the defining value of mcd.
  CoreValue compute_mcd(const DynamicGraph& g, VertexId v) const;

  /// mcd(v) += 1 unless currently empty (CAS; safe against concurrent
  /// invalidation during the insert phase).
  void mcd_increment_unless_empty(VertexId v);

  /// Full invariant suite (DESIGN.md §5): order-list validity, level
  /// membership, dout exactness, k-order bound, mcd empty-or-exact,
  /// din == 0, t == 0, all locks free. Quiescent only.
  bool check_invariants(const DynamicGraph& g, std::string* error = nullptr,
                        bool check_cores = false) const;

 private:
  void allocate(std::size_t n);

  std::size_t n_ = 0;
  std::unique_ptr<std::atomic<CoreValue>[]> core_;
  std::unique_ptr<std::atomic<CoreValue>[]> dout_;
  std::unique_ptr<std::atomic<CoreValue>[]> mcd_;
  std::unique_ptr<std::atomic<std::int32_t>[]> t_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> s_;
  std::vector<CoreValue> din_;
  std::unique_ptr<Spinlock[]> locks_;
  std::unique_ptr<OmItem[]> items_;
  LevelDirectory levels_;
  std::atomic<CoreValue> max_core_{0};
};

}  // namespace parcore
