#include "maint/seq_order.h"

#include <algorithm>
#include <cassert>

namespace parcore {

SeqOrderMaintainer::SeqOrderMaintainer(DynamicGraph& g, Options opts)
    : graph_(g), opts_(opts) {
  rebuild();
}

void SeqOrderMaintainer::rebuild() { state_.initialize(graph_, opts_.state); }

// --------------------------------------------------------------------------
// Min-heap over cached OM keys. Sequentially, cached keys only go stale
// when a relabel rewrites labels; we refresh the whole heap whenever the
// list's version counter moved (same strategy as the parallel queue).
// --------------------------------------------------------------------------

void SeqOrderMaintainer::heap_push(HeapEntry e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) {
                   return b.key < a.key;  // min-heap
                 });
}

SeqOrderMaintainer::HeapEntry SeqOrderMaintainer::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const HeapEntry& a, const HeapEntry& b) {
                  return b.key < a.key;
                });
  HeapEntry e = heap_.back();
  heap_.pop_back();
  return e;
}

void SeqOrderMaintainer::enqueue(VertexId x, OrderList& list) {
  if (!inq_.insert(x)) return;
  heap_push(HeapEntry{list.snapshot_key(&state_.item(x)), x});
}

VertexId SeqOrderMaintainer::dequeue(OrderList& list) {
  if (heap_.empty()) return kInvalidVertex;
  const std::uint64_t ver = list.version_started();
  if (!heap_version_valid_ || ver != heap_version_) {
    for (HeapEntry& e : heap_)
      e.key = list.snapshot_key(&state_.item(e.v));
    std::make_heap(heap_.begin(), heap_.end(),
                   [](const HeapEntry& a, const HeapEntry& b) {
                     return b.key < a.key;
                   });
    heap_version_ = ver;
    heap_version_valid_ = true;
  }
  return heap_pop().v;
}

// --------------------------------------------------------------------------
// Insertion (Algorithm 2)
// --------------------------------------------------------------------------

bool SeqOrderMaintainer::insert_edge(VertexId u, VertexId v) {
  const std::size_t n = graph_.num_vertices();
  if (u == v || u >= n || v >= n) return false;
  if (graph_.has_edge(u, v)) return false;
  if (state_.precedes_stable(v, u)) std::swap(u, v);  // ensure u ≺ v

  const CoreValue K = state_.core(u).load(std::memory_order_relaxed);
  const CoreValue cv = state_.core(v).load(std::memory_order_relaxed);
  graph_.insert_edge_unchecked(u, v);
  state_.dout(u).fetch_add(1, std::memory_order_relaxed);
  // mcd bookkeeping for the new edge (Definition 3.8).
  if (cv >= K) state_.mcd_increment_unless_empty(u);
  if (K >= cv) state_.mcd_increment_unless_empty(v);

  if (state_.dout(u).load(std::memory_order_relaxed) <= K) {
    if (opts_.collect_stats) {
      vplus_hist_.record(0);
      vstar_hist_.record(0);
    }
    return true;
  }

  state_.levels().ensure_capacity(
      static_cast<std::size_t>(state_.max_core()) + 2);
  OrderList& list = *state_.levels().get(K);

  vstar_.clear();
  inq_.clear();
  heap_.clear();
  heap_version_valid_ = false;
  vplus_count_ = 0;

  VertexId w = u;
  while (w != kInvalidVertex) {
    // d*in(w) = |pre(w) ∩ V*| — V* members all precede w, so membership
    // in V* among neighbours is exactly the predecessor count.
    CoreValue d = 0;
    for (VertexId x : graph_.neighbors(w))
      if (vstar_.contains(x)) ++d;
    state_.din(w) = d;

    if (d + state_.dout(w).load(std::memory_order_relaxed) > K) {
      forward(w, K, list);
    } else if (d > 0) {
      backward(w, K, list);
    } else {
      state_.din(w) = 0;  // skipped: not part of V+
    }
    w = dequeue(list);
  }

  // Promote V* to core K+1, moving items to the head of O_{K+1} while
  // preserving their relative k-order (Algorithm 2 line 10).
  OrderList& next = state_.levels().get_or_create(K + 1);
  OmItem* anchor = nullptr;
  vstar_.for_each([&](VertexId c) {
    state_.core(c).store(K + 1, std::memory_order_relaxed);
    state_.din(c) = 0;
    list.remove(&state_.item(c));
    if (anchor == nullptr)
      next.insert_head(&state_.item(c));
    else
      next.insert_after(anchor, &state_.item(c));
    anchor = &state_.item(c);
    state_.mcd(c).store(kMcdEmpty, std::memory_order_relaxed);
    for (VertexId x : graph_.neighbors(c))
      if (state_.core(x).load(std::memory_order_relaxed) == K + 1)
        state_.mcd_increment_unless_empty(x);
  });
  if (!vstar_.empty()) state_.raise_max_core(K + 1);

  if (opts_.collect_stats) {
    vplus_hist_.record(vplus_count_);
    vstar_hist_.record(vstar_.size());
  }
  return true;
}

void SeqOrderMaintainer::forward(VertexId w, CoreValue k, OrderList& list) {
  ++vplus_count_;
  vstar_.insert(w);
  for (VertexId x : graph_.neighbors(w)) {
    if (state_.core(x).load(std::memory_order_relaxed) != k) continue;
    if (vstar_.contains(x)) continue;
    if (!state_.precedes_stable(w, x)) continue;  // successors only
    enqueue(x, list);
  }
}

void SeqOrderMaintainer::adjust_candidates(VertexId y, CoreValue k) {
  // DoPre: V* predecessors of y lose a remaining successor.
  // DoPost: V* successors of y lose a candidate predecessor.
  for (VertexId x : graph_.neighbors(y)) {
    if (!vstar_.contains(x)) continue;
    if (state_.precedes_stable(x, y)) {
      state_.dout(x).fetch_sub(1, std::memory_order_relaxed);
    } else if (state_.din(x) > 0) {
      state_.din(x) -= 1;
    } else {
      continue;
    }
    if (state_.din(x) +
            state_.dout(x).load(std::memory_order_relaxed) <=
        k) {
      if (inr_.insert(x)) rq_.push_back(x);
    }
  }
}

void SeqOrderMaintainer::backward(VertexId w, CoreValue k, OrderList& list) {
  ++vplus_count_;
  OmItem* pre = &state_.item(w);
  rq_.clear();
  inr_.clear();
  adjust_candidates(w, k);  // origin: only the DoPre branch can fire
  state_.dout(w).fetch_add(state_.din(w), std::memory_order_relaxed);
  state_.din(w) = 0;

  while (!rq_.empty()) {
    const VertexId y = rq_.front();
    rq_.pop_front();
    vstar_.erase(y);
    adjust_candidates(y, k);
    list.remove(&state_.item(y));
    list.insert_after(pre, &state_.item(y));
    pre = &state_.item(y);
    state_.dout(y).fetch_add(state_.din(y), std::memory_order_relaxed);
    state_.din(y) = 0;
  }
}

// --------------------------------------------------------------------------
// Removal (Algorithm 3)
// --------------------------------------------------------------------------

void SeqOrderMaintainer::ensure_mcd(VertexId v) {
  if (state_.mcd(v).load(std::memory_order_relaxed) == kMcdEmpty)
    state_.mcd(v).store(state_.compute_mcd(graph_, v),
                        std::memory_order_relaxed);
}

void SeqOrderMaintainer::do_mcd_remove(VertexId x, CoreValue k) {
  ensure_mcd(x);
  const CoreValue m =
      state_.mcd(x).load(std::memory_order_relaxed) - 1;
  state_.mcd(x).store(m, std::memory_order_relaxed);
  if (m < k && state_.core(x).load(std::memory_order_relaxed) == k &&
      !vstar_.contains(x)) {
    vstar_.insert(x);
    rq_.push_back(x);
  }
}

bool SeqOrderMaintainer::remove_edge(VertexId u, VertexId v) {
  if (!graph_.has_edge(u, v)) return false;
  const CoreValue cu = state_.core(u).load(std::memory_order_relaxed);
  const CoreValue cv = state_.core(v).load(std::memory_order_relaxed);
  const CoreValue K = std::min(cu, cv);

  ensure_mcd(u);
  ensure_mcd(v);
  // The edge still exists here; dout of the k-order-lower endpoint drops.
  if (state_.precedes_stable(u, v))
    state_.dout(u).fetch_sub(1, std::memory_order_relaxed);
  else
    state_.dout(v).fetch_sub(1, std::memory_order_relaxed);
  graph_.remove_edge(u, v);

  vstar_.clear();
  rq_.clear();
  touched_.clear();
  touched_.insert(u);
  touched_.insert(v);

  // Endpoint mcd updates (Algorithm 3 line 2): the endpoint loses a
  // >=-core neighbour only when the removed peer's core was >= its own.
  if (cv >= cu) do_mcd_remove(u, K);
  if (cu >= cv) do_mcd_remove(v, K);

  while (!rq_.empty()) {
    const VertexId w = rq_.front();
    rq_.pop_front();
    for (VertexId x : graph_.neighbors(w)) {
      if (state_.core(x).load(std::memory_order_relaxed) != K) continue;
      if (vstar_.contains(x)) continue;
      do_mcd_remove(x, K);
      touched_.insert(x);
    }
  }

  if (!vstar_.empty()) {
    OrderList& list = *state_.levels().get(K);
    OrderList& lower = state_.levels().get_or_create(K - 1);
    vstar_.for_each([&](VertexId w) {
      state_.core(w).store(K - 1, std::memory_order_relaxed);
      state_.mcd(w).store(kMcdEmpty, std::memory_order_relaxed);
      list.remove(&state_.item(w));
      lower.insert_tail(&state_.item(w));
    });
  }
  repair_dout();

  if (opts_.collect_stats) remove_vstar_hist_.record(vstar_.size());
  return true;
}

void SeqOrderMaintainer::repair_dout() {
  // Restore d+out exactness after demotions (DESIGN.md §3.1): recompute
  // for every touched vertex once levels/positions are final.
  vstar_.for_each([&](VertexId w) { touched_.insert(w); });
  touched_.for_each([&](VertexId x) {
    state_.dout(x).store(state_.compute_dout(graph_, x),
                         std::memory_order_relaxed);
  });
}

std::size_t SeqOrderMaintainer::insert_batch(std::span<const Edge> edges) {
  std::size_t applied = 0;
  for (const Edge& e : edges)
    if (insert_edge(e.u, e.v)) ++applied;
  return applied;
}

std::size_t SeqOrderMaintainer::remove_batch(std::span<const Edge> edges) {
  std::size_t applied = 0;
  for (const Edge& e : edges)
    if (remove_edge(e.u, e.v)) ++applied;
  return applied;
}

}  // namespace parcore
