// Sequential Simplified-Order core maintenance (paper §3.3, Algorithms
// 2 and 3, after Guo & Sekerinski [16] / Zhang et al. [17]).
//
// This is the single-threaded foundation the Parallel-Order algorithm
// builds on, kept as an independent implementation: it serves as the
// 1-worker ablation ("sequential Order") and as a second oracle next to
// brute-force recomputation in the differential tests.
#pragma once

#include <deque>
#include <vector>

#include "graph/dynamic_graph.h"
#include "maint/core_state.h"
#include "om/order_list.h"
#include "support/histogram.h"
#include "support/types.h"
#include "support/vertex_set.h"

namespace parcore {

class SeqOrderMaintainer {
 public:
  struct Options {
    CoreState::Options state{};
    bool collect_stats = false;  // Fig. 1 histograms
  };

  /// The maintainer mutates `g` as edges are inserted/removed; `g` must
  /// outlive the maintainer.
  SeqOrderMaintainer(DynamicGraph& g, Options opts);
  explicit SeqOrderMaintainer(DynamicGraph& g)
      : SeqOrderMaintainer(g, Options()) {}

  /// (Re)initialises cores, k-order, dout, mcd from the current graph.
  void rebuild();

  /// Inserts one edge and maintains cores/k-order. Returns false for
  /// self-loops, out-of-range vertices and existing edges.
  bool insert_edge(VertexId u, VertexId v);

  /// Removes one edge and maintains cores/k-order. Returns false if the
  /// edge is absent.
  bool remove_edge(VertexId u, VertexId v);

  std::size_t insert_batch(std::span<const Edge> edges);
  std::size_t remove_batch(std::span<const Edge> edges);

  CoreValue core(VertexId v) const {
    return state_.core(v).load(std::memory_order_relaxed);
  }
  std::vector<CoreValue> cores() const { return state_.cores_snapshot(); }

  CoreState& state() { return state_; }
  const CoreState& state() const { return state_; }
  DynamicGraph& graph() { return graph_; }

  const SizeHistogram& insert_vplus_histogram() const { return vplus_hist_; }
  const SizeHistogram& insert_vstar_histogram() const { return vstar_hist_; }
  const SizeHistogram& remove_vstar_histogram() const {
    return remove_vstar_hist_;
  }

 private:
  struct HeapEntry {
    OmKey key;
    VertexId v;
  };

  // -- insertion helpers (Algorithm 2) -----------------------------------
  void forward(VertexId w, CoreValue k, OrderList& list);
  void backward(VertexId w, CoreValue k, OrderList& list);
  /// DoPre + DoPost in one adjacency scan (both filter on V*).
  void adjust_candidates(VertexId y, CoreValue k);
  void enqueue(VertexId x, OrderList& list);
  VertexId dequeue(OrderList& list);
  void heap_push(HeapEntry e);
  HeapEntry heap_pop();

  // -- removal helpers (Algorithm 3) --------------------------------------
  void ensure_mcd(VertexId v);
  void do_mcd_remove(VertexId x, CoreValue k);

  void repair_dout();

  DynamicGraph& graph_;
  Options opts_;
  CoreState state_;

  // Per-operation scratch (reused across operations).
  VertexSet vstar_;
  VertexSet inq_;
  VertexSet inr_;
  VertexSet touched_;
  std::vector<HeapEntry> heap_;
  std::uint64_t heap_version_ = 0;
  bool heap_version_valid_ = false;
  std::deque<VertexId> rq_;
  std::size_t vplus_count_ = 0;

  SizeHistogram vplus_hist_;
  SizeHistogram vstar_hist_;
  SizeHistogram remove_vstar_hist_;
};

}  // namespace parcore
