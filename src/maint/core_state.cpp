#include "maint/core_state.h"

#include <algorithm>
#include <sstream>

#include "decomp/parallel_peel.h"
#include "decomp/verify.h"
#include "sync/backoff.h"

namespace parcore {

void LevelDirectory::ensure_capacity(std::size_t cap) {
  if (cap <= slots_.size()) return;
  cap = std::max(cap, slots_.size() * 2);
  std::vector<std::atomic<OrderList*>> fresh(cap);
  for (std::size_t i = 0; i < slots_.size(); ++i)
    fresh[i].store(slots_[i].load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  slots_ = std::move(fresh);
}

OrderList& LevelDirectory::get_or_create(CoreValue k) {
  const auto idx = static_cast<std::size_t>(k);
  OrderList* list = slots_[idx].load(std::memory_order_acquire);
  if (list != nullptr) return *list;
  MutexGuard g(create_mu_);
  list = slots_[idx].load(std::memory_order_relaxed);
  if (list == nullptr) {
    storage_.emplace_back(k, group_capacity_);
    list = &storage_.back();
    slots_[idx].store(list, std::memory_order_release);
  }
  return *list;
}

void LevelDirectory::clear() {
  // Quiescent by contract; the guard keeps storage_ inside the
  // machine-checked discipline.
  MutexGuard g(create_mu_);
  slots_.clear();
  storage_.clear();
}

std::size_t LevelDirectory::compact_all() {
  std::size_t reclaimed = 0;
  for (auto& slot : slots_)
    if (OrderList* list = slot.load(std::memory_order_acquire))
      reclaimed += list->compact();
  return reclaimed;
}

void CoreState::allocate(std::size_t n) {
  n_ = n;
  core_ = std::make_unique<std::atomic<CoreValue>[]>(n_);
  dout_ = std::make_unique<std::atomic<CoreValue>[]>(n_);
  mcd_ = std::make_unique<std::atomic<CoreValue>[]>(n_);
  t_ = std::make_unique<std::atomic<std::int32_t>[]>(n_);
  s_ = std::make_unique<std::atomic<std::uint32_t>[]>(n_);
  din_.assign(n_, 0);
  locks_ = std::make_unique<Spinlock[]>(n_);
  items_ = std::make_unique<OmItem[]>(n_);
}

void CoreState::initialize(const DynamicGraph& g, const Options& opts) {
  allocate(g.num_vertices());

  Decomposition d = bz_decompose(g);
  max_core_.store(d.max_core, std::memory_order_relaxed);

  levels_.clear();
  levels_.configure(opts.om_group_capacity);
  levels_.ensure_capacity(static_cast<std::size_t>(d.max_core) + 2);

  std::vector<std::size_t> rank(n_);
  for (std::size_t i = 0; i < d.peel_order.size(); ++i)
    rank[d.peel_order[i]] = i;

  for (VertexId v = 0; v < n_; ++v) {
    core_[v].store(d.core[v], std::memory_order_relaxed);
    t_[v].store(0, std::memory_order_relaxed);
    s_[v].store(0, std::memory_order_relaxed);
    items_[v].vertex = v;
  }

  // Build O_k lists by appending in peel order (core values along the
  // peel order are non-decreasing, so each list receives its vertices in
  // k-order).
  for (VertexId v : d.peel_order) {
    OrderList& list = levels_.get_or_create(d.core[v]);
    list.insert_tail(&items_[v]);
  }

  // d+out(v) = # neighbours peeled after v; mcd(v) per Definition 3.8.
  for (VertexId v = 0; v < n_; ++v) {
    CoreValue out = 0, m = 0;
    for (VertexId u : g.neighbors(v)) {
      if (rank[u] > rank[v]) ++out;
      if (d.core[u] >= d.core[v]) ++m;
    }
    dout_[v].store(out, std::memory_order_relaxed);
    mcd_[v].store(m, std::memory_order_relaxed);
  }
}

void CoreState::initialize_parallel(const DynamicGraph& g, ThreadTeam& team,
                                    int workers, const Options& opts) {
  allocate(g.num_vertices());

  DecomposeOptions dopts;
  dopts.workers = workers;
  dopts.mode = DecomposeMode::kExact;
  BulkDecomposition d = parallel_decompose(g, team, dopts);
  max_core_.store(d.max_core, std::memory_order_relaxed);

  levels_.clear();
  levels_.configure(opts.om_group_capacity);
  levels_.ensure_capacity(static_cast<std::size_t>(d.max_core) + 2);

  std::vector<std::size_t> rank(n_);
  for (std::size_t i = 0; i < d.order.size(); ++i) rank[d.order[i]] = i;

  parallel_for(team, workers, 0, n_, [&](std::size_t i) {
    const auto v = static_cast<VertexId>(i);
    core_[v].store(d.core[v], std::memory_order_relaxed);
    t_[v].store(0, std::memory_order_relaxed);
    s_[v].store(0, std::memory_order_relaxed);
    items_[v].vertex = v;
  });

  // The O_k appends mutate shared OM groups; they stay sequential (the
  // peel order is already level-ascending, so each list receives its
  // vertices in k-order, exactly like the BZ path).
  for (VertexId v : d.order) {
    OrderList& list = levels_.get_or_create(d.core[v]);
    list.insert_tail(&items_[v]);
  }

  // d+out / mcd are per-vertex reductions over read-only state; the
  // O(m) pass is the second-largest cold-start cost after the peel.
  parallel_for(team, workers, 0, n_, [&](std::size_t i) {
    const auto v = static_cast<VertexId>(i);
    CoreValue out = 0, m = 0;
    for (VertexId u : g.neighbors(v)) {
      if (rank[u] > rank[v]) ++out;
      if (d.core[u] >= d.core[v]) ++m;
    }
    dout_[v].store(out, std::memory_order_relaxed);
    mcd_[v].store(m, std::memory_order_relaxed);
  });
}

bool CoreState::initialize_from_order(const DynamicGraph& g,
                                      const SavedCoreOrder& saved,
                                      const Options& opts,
                                      std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  const std::size_t n = g.num_vertices();
  if (saved.core.size() != n || saved.order.size() != n)
    return fail("saved state sized for " + std::to_string(saved.core.size()) +
                "/" + std::to_string(saved.order.size()) +
                " vertices, graph has " + std::to_string(n));

  allocate(n);
  for (VertexId v = 0; v < n_; ++v) {
    t_[v].store(0, std::memory_order_relaxed);
    s_[v].store(0, std::memory_order_relaxed);
    items_[v].vertex = v;
  }

  // The order must be a permutation with non-decreasing cores along it
  // (a level-ascending concatenation); appending in saved order then
  // reproduces each O_k exactly.
  std::vector<std::size_t> rank(n_);
  std::vector<bool> seen(n_, false);
  CoreValue prev = 0;
  for (std::size_t i = 0; i < saved.order.size(); ++i) {
    const VertexId v = saved.order[i];
    if (v >= n_ || seen[v])
      return fail("order is not a permutation (entry " + std::to_string(i) +
                  ")");
    seen[v] = true;
    rank[v] = i;
    const CoreValue k = saved.core[v];
    if (k < 0 || k < prev)
      return fail("cores along the saved order decrease at entry " +
                  std::to_string(i));
    prev = k;
  }
  const CoreValue maxk = n_ > 0 ? saved.core[saved.order.back()] : 0;
  max_core_.store(maxk, std::memory_order_relaxed);

  levels_.clear();
  levels_.configure(opts.om_group_capacity);
  levels_.ensure_capacity(static_cast<std::size_t>(maxk) + 2);
  for (VertexId v : saved.order) {
    core_[v].store(saved.core[v], std::memory_order_relaxed);
    levels_.get_or_create(saved.core[v]).insert_tail(&items_[v]);
  }

  // dout from the restored ranks, mcd from the restored cores — the same
  // definitions initialize() computes from the peel order. The k-order
  // bound dout <= core and the coreness lower bound mcd >= core must
  // hold for any valid saved state; violating either means the file
  // (though CRC-clean) does not describe this graph.
  for (VertexId v = 0; v < n_; ++v) {
    CoreValue out = 0, m = 0;
    for (VertexId u : g.neighbors(v)) {
      if (rank[u] > rank[v]) ++out;
      if (saved.core[u] >= saved.core[v]) ++m;
    }
    if (out > saved.core[v])
      return fail("vertex " + std::to_string(v) + " violates the k-order " +
                  "bound (dout " + std::to_string(out) + " > core " +
                  std::to_string(saved.core[v]) + ")");
    if (m < saved.core[v])
      return fail("vertex " + std::to_string(v) + " has mcd " +
                  std::to_string(m) + " < core " +
                  std::to_string(saved.core[v]));
    dout_[v].store(out, std::memory_order_relaxed);
    mcd_[v].store(m, std::memory_order_relaxed);
  }
  return true;
}

SavedCoreOrder CoreState::save_order() const {
  SavedCoreOrder out;
  out.core = cores_snapshot();
  out.order.reserve(n_);
  for (std::size_t k = 0; k < levels_.capacity(); ++k) {
    const OrderList* list = levels_.get(static_cast<CoreValue>(k));
    if (list == nullptr) continue;
    const std::vector<VertexId> level = list->to_vector();
    out.order.insert(out.order.end(), level.begin(), level.end());
  }
  return out;
}

void CoreState::raise_max_core(CoreValue k) {
  CoreValue cur = max_core_.load(std::memory_order_relaxed);
  while (cur < k &&
         !max_core_.compare_exchange_weak(cur, k, std::memory_order_relaxed)) {
  }
}

std::vector<CoreValue> CoreState::cores_snapshot() const {
  std::vector<CoreValue> out(n_);
  for (VertexId v = 0; v < n_; ++v)
    out[v] = core_[v].load(std::memory_order_relaxed);
  return out;
}

bool CoreState::precedes_stable(VertexId a, VertexId b) const {
  const CoreValue ca = core_[a].load(std::memory_order_acquire);
  const CoreValue cb = core_[b].load(std::memory_order_acquire);
  if (ca != cb) return ca < cb;
  return OrderList::precedes(&items_[a], &items_[b]);
}

bool CoreState::precedes_guarded(VertexId a, VertexId b) const {
  Backoff backoff;
  for (;;) {
    std::uint32_t sa, sb;
    for (;;) {
      sa = s_[a].load(std::memory_order_acquire);
      sb = s_[b].load(std::memory_order_acquire);
      if ((sa & 1u) == 0 && (sb & 1u) == 0) break;
      backoff.pause();
    }
    const CoreValue ca = core_[a].load(std::memory_order_acquire);
    const CoreValue cb = core_[b].load(std::memory_order_acquire);
    const bool r =
        ca != cb ? ca < cb : OrderList::precedes(&items_[a], &items_[b]);
    if (s_[a].load(std::memory_order_acquire) == sa &&
        s_[b].load(std::memory_order_acquire) == sb)
      return r;
  }
}

CoreValue CoreState::compute_dout(const DynamicGraph& g, VertexId v) const {
  CoreValue out = 0;
  for (VertexId u : g.neighbors(v))
    if (precedes_stable(v, u)) ++out;
  return out;
}

CoreValue CoreState::compute_mcd(const DynamicGraph& g, VertexId v) const {
  const CoreValue cv = core_[v].load(std::memory_order_relaxed);
  CoreValue m = 0;
  for (VertexId u : g.neighbors(v))
    if (core_[u].load(std::memory_order_relaxed) >= cv) ++m;
  return m;
}

void CoreState::mcd_increment_unless_empty(VertexId v) {
  CoreValue cur = mcd_[v].load(std::memory_order_relaxed);
  while (cur != kMcdEmpty) {
    if (mcd_[v].compare_exchange_weak(cur, cur + 1,
                                      std::memory_order_relaxed))
      return;
  }
}

bool CoreState::check_invariants(const DynamicGraph& g, std::string* error,
                                 bool check_cores) const {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };

  // 1. Per-list structural validity + membership / rank construction.
  std::vector<std::size_t> rank(n_, 0);
  std::vector<bool> seen(n_, false);
  std::size_t position = 0;
  const CoreValue maxk = max_core();
  for (CoreValue k = 0; k <= maxk; ++k) {
    const OrderList* list = levels_.get(k);
    if (list == nullptr) continue;
    std::string om_err;
    if (!list->validate(&om_err)) return fail("order list invalid: " + om_err);
    for (VertexId v : list->to_vector()) {
      if (seen[v]) return fail("vertex appears in two order lists");
      seen[v] = true;
      if (core_[v].load(std::memory_order_relaxed) != k) {
        std::ostringstream os;
        os << "vertex " << v << " in O_" << k << " but core is "
           << core_[v].load(std::memory_order_relaxed);
        return fail(os.str());
      }
      rank[v] = position++;
    }
  }
  for (VertexId v = 0; v < n_; ++v)
    if (!seen[v]) {
      std::ostringstream os;
      os << "vertex " << v << " missing from all order lists (core "
         << core_[v].load(std::memory_order_relaxed) << ", max level "
         << maxk << ")";
      return fail(os.str());
    }

  // 2. Per-vertex field invariants.
  for (VertexId v = 0; v < n_; ++v) {
    if (din_[v] != 0) return fail("din not reset");
    if (t_[v].load(std::memory_order_relaxed) != 0)
      return fail("t status not reset");
    if ((s_[v].load(std::memory_order_relaxed) & 1u) != 0)
      return fail("s status odd at quiescence");
    if (locks_[v].is_locked()) return fail("vertex lock held at quiescence");

    const CoreValue expected_dout = compute_dout(g, v);
    if (dout_[v].load(std::memory_order_relaxed) != expected_dout) {
      std::ostringstream os;
      os << "vertex " << v << ": dout "
         << dout_[v].load(std::memory_order_relaxed) << " != actual "
         << expected_dout;
      return fail(os.str());
    }
    const CoreValue m = mcd_[v].load(std::memory_order_relaxed);
    if (m != kMcdEmpty && m != compute_mcd(g, v)) {
      std::ostringstream os;
      os << "vertex " << v << ": mcd " << m << " != actual "
         << compute_mcd(g, v);
      return fail(os.str());
    }
  }

  // 3. Valid-k-order bound.
  std::vector<CoreValue> cores = cores_snapshot();
  std::string korder_err;
  if (!verify_korder_bound(g, cores, rank, &korder_err))
    return fail("k-order bound: " + korder_err);

  // 4. Optional full core recomputation.
  if (check_cores) {
    std::string core_err;
    if (!verify_cores(g, cores, &core_err))
      return fail("core numbers: " + core_err);
  }
  return true;
}

}  // namespace parcore
