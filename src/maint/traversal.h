// Sequential Traversal core maintenance (Sariyüce et al. [18, 20]) — the
// algorithm every prior parallel approach builds on, and the foundation
// of the JE baseline. Standalone single-threaded implementation over
// DynamicGraph, used as:
//   - the "Traversal" row of the paper's related-work comparison,
//   - a third independent oracle in the differential tests,
//   - the per-edge engine reference for baseline/je.cpp.
//
// Insertion: DFS from the lower endpoint through the K-subcore, pruned
// by mcd (pcd computed on the fly), with an eviction cascade on cd
// (§3.3 of the paper summarises the method). Removal: the mcd cascade
// of Algorithm 3 without k-order maintenance. mcd is maintained eagerly
// across operations.
#pragma once

#include <span>
#include <vector>

#include "graph/dynamic_graph.h"
#include "support/histogram.h"
#include "support/types.h"

namespace parcore {

class TraversalMaintainer {
 public:
  struct Options {
    bool collect_stats = false;  // |V+| / |V*| histograms
  };

  TraversalMaintainer(DynamicGraph& g, Options opts);
  explicit TraversalMaintainer(DynamicGraph& g)
      : TraversalMaintainer(g, Options()) {}

  /// (Re)initialises cores and mcd from the current graph.
  void rebuild();

  bool insert_edge(VertexId u, VertexId v);
  bool remove_edge(VertexId u, VertexId v);

  std::size_t insert_batch(std::span<const Edge> edges);
  std::size_t remove_batch(std::span<const Edge> edges);

  CoreValue core(VertexId v) const { return core_[v]; }
  const std::vector<CoreValue>& cores() const { return core_; }
  CoreValue mcd(VertexId v) const { return mcd_[v]; }
  DynamicGraph& graph() { return graph_; }

  /// Exact mcd invariant check (testing).
  bool check_mcd(std::string* error = nullptr) const;

  const SizeHistogram& insert_vplus_histogram() const { return vplus_hist_; }
  const SizeHistogram& insert_vstar_histogram() const { return vstar_hist_; }
  const SizeHistogram& remove_vstar_histogram() const {
    return remove_vstar_hist_;
  }

 private:
  CoreValue pcd(VertexId w, CoreValue k) const;
  void begin_op();
  bool visited(VertexId v) const { return visit_mark_[v] == epoch_; }
  bool evicted(VertexId v) const { return evict_mark_[v] == epoch_; }
  bool in_vstar(VertexId v) const { return vstar_mark_[v] == epoch_; }

  DynamicGraph& graph_;
  Options opts_;
  std::vector<CoreValue> core_;
  std::vector<CoreValue> mcd_;

  // Epoch-marked per-operation scratch.
  std::vector<std::uint32_t> visit_mark_;
  std::vector<std::uint32_t> evict_mark_;
  std::vector<std::uint32_t> vstar_mark_;
  std::vector<CoreValue> cd_;
  std::uint32_t epoch_ = 0;
  std::vector<VertexId> stack_;
  std::vector<VertexId> estack_;
  std::vector<VertexId> visited_list_;
  std::vector<VertexId> vstar_;

  SizeHistogram vplus_hist_;
  SizeHistogram vstar_hist_;
  SizeHistogram remove_vstar_hist_;
};

}  // namespace parcore
