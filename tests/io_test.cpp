// Dataset I/O layer + parcore_cli (DESIGN.md §7): fixture parsing,
// edge-list <-> .pcg round trips, malformed-input rejection with
// file:line context, temporal-stream ordering, stream adapters, and an
// in-process CLI smoke test whose `serve` result is checked against
// bz_decompose (the check runs inside the serve command).
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <unordered_map>

#include <gtest/gtest.h>

#include "cli.h"
#include "decomp/bz.h"
#include "gen/stream_adapter.h"
#include "graph/edge_list.h"
#include "io/graph_reader.h"
#include "io/io_error.h"
#include "io/pcg.h"
#include "io/temporal_stream.h"

#ifdef PARCORE_HAVE_ZLIB
#include <zlib.h>
#endif

namespace parcore {
namespace {

std::string fixture(const std::string& name) {
  return std::string(PARCORE_FIXTURE_DIR) + "/" + name;
}

std::string write_tmp(const std::string& name, const std::string& content) {
  const std::string path = testing::TempDir() + "/io_" + name;
  std::ofstream f(path, std::ios::binary);
  f << content;
  EXPECT_TRUE(f.good());
  return path;
}

/// EXPECT that `fn` throws an IoError whose message contains `frag`.
template <typename Fn>
void expect_io_error(Fn&& fn, const std::string& frag) {
  try {
    fn();
    FAIL() << "expected IoError containing '" << frag << "'";
  } catch (const io::IoError& e) {
    EXPECT_NE(std::string(e.what()).find(frag), std::string::npos)
        << "got: " << e.what();
  }
}

// ------------------------------------------------------------- edge lists

TEST(GraphReader, SnapFixtureFiltersAndCompacts) {
  io::GraphData data = io::read_graph(fixture("toy.txt"));
  EXPECT_EQ(data.num_vertices, 12u);
  EXPECT_EQ(data.edges.size(), 18u);
  EXPECT_FALSE(data.has_timestamps);
  EXPECT_EQ(data.stats.self_loops, 1u);
  EXPECT_EQ(data.stats.duplicates, 2u);
  EXPECT_GE(data.stats.memory_footprint_bytes,
            data.edges.size() * sizeof(TimestampedEdge));
  // Compaction is first-appearance order; raw ids are preserved.
  ASSERT_EQ(data.original_ids.size(), 12u);
  EXPECT_EQ(data.original_ids[0], 100u);
  EXPECT_EQ(data.original_ids[11], 300u);

  const Decomposition d = bz_decompose(io::to_dynamic_graph(data));
  EXPECT_EQ(d.max_core, 4);  // the K5
}

TEST(GraphReader, MatrixMarketParses) {
  io::GraphData data = io::read_graph(fixture("toy.mtx"));
  EXPECT_EQ(data.num_vertices, 6u);
  EXPECT_EQ(data.edges.size(), 8u);
  const Decomposition d = bz_decompose(io::to_dynamic_graph(data));
  EXPECT_EQ(d.max_core, 3);  // the K4
}

TEST(GraphReader, CrlfAndMissingFinalNewline) {
  const std::string path =
      write_tmp("crlf.txt", "# c\r\n1 2\r\n2 3\r\n3 1");
  io::GraphData data = io::read_graph(path);
  EXPECT_EQ(data.edges.size(), 3u);
  EXPECT_EQ(data.num_vertices, 3u);
  std::remove(path.c_str());
}

TEST(GraphReader, ThreeColumnTimestamps) {
  const std::string path = write_tmp("cols3.txt", "1 2 77\n2 3\n");
  io::GraphData data = io::read_graph(path);
  ASSERT_EQ(data.edges.size(), 2u);
  EXPECT_TRUE(data.has_timestamps);
  EXPECT_EQ(data.edges[0].time, 77u);
  EXPECT_EQ(data.edges[1].time, 0u);
  std::remove(path.c_str());
}

TEST(GraphReader, KonectFourColumnWeightThenTimestamp) {
  // KONECT: "u v weight time" — the weight may be signed or fractional
  // and must be skipped; the fourth column is the timestamp.
  const std::string path = write_tmp(
      "cols4.txt", "1 2 -1 1348785677\n2 3 0.5 1348785678 trailing\n");
  io::GraphData data = io::read_graph(path);
  ASSERT_EQ(data.edges.size(), 2u);
  EXPECT_TRUE(data.has_timestamps);
  EXPECT_EQ(data.edges[0].time, 1348785677u);
  EXPECT_EQ(data.edges[1].time, 1348785678u);
  std::remove(path.c_str());
}

TEST(GraphReader, RejectsNonNumericWithLineContext) {
  const std::string path = write_tmp("bad_token.txt", "1 2\n1 z\n");
  expect_io_error([&] { io::read_graph(path); }, ":2:");
  std::remove(path.c_str());
}

TEST(GraphReader, RejectsNegativeIds) {
  const std::string path = write_tmp("bad_neg.txt", "1 -2\n");
  expect_io_error([&] { io::read_graph(path); }, "negative");
  std::remove(path.c_str());
}

TEST(GraphReader, RejectsOverflowingIds) {
  const std::string path =
      write_tmp("bad_overflow.txt", "1 99999999999999999999999\n");
  expect_io_error([&] { io::read_graph(path); }, "overflows 64 bits");
  std::remove(path.c_str());
}

TEST(GraphReader, RejectsMissingField) {
  const std::string path = write_tmp("bad_short.txt", "1 2\n42\n");
  expect_io_error([&] { io::read_graph(path); }, "missing field");
  std::remove(path.c_str());
}

TEST(GraphReader, VerbatimModeBoundsChecksIds) {
  const std::string path = write_tmp("bad_wide.txt", "0 4294967295\n");
  io::ReadOptions opts;
  opts.compact_ids = false;
  expect_io_error([&] { io::read_graph(path, opts); }, "VertexId");
  // The same file is fine with compaction.
  EXPECT_EQ(io::read_graph(path).num_vertices, 2u);
  std::remove(path.c_str());
}

TEST(GraphReader, MatrixMarketRejectsMissingBanner) {
  const std::string path = write_tmp("bad_banner.mtx", "3 3 1\n1 2\n");
  expect_io_error([&] { io::read_graph(path); }, "banner");
  std::remove(path.c_str());
}

TEST(GraphReader, MatrixMarketRejectsTruncatedEntries) {
  const std::string path = write_tmp(
      "bad_trunc.mtx",
      "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n2 3\n");
  expect_io_error([&] { io::read_graph(path); }, "truncated");
  std::remove(path.c_str());
}

TEST(GraphReader, MatrixMarketRejectsRectangular) {
  const std::string path = write_tmp(
      "bad_rect.mtx",
      "%%MatrixMarket matrix coordinate pattern general\n3 4 2\n1 1\n2 3\n");
  expect_io_error([&] { io::read_graph(path); }, "rectangular");
  std::remove(path.c_str());
}

TEST(GraphReader, MatrixMarketRejectsZeroBasedIds) {
  const std::string path = write_tmp(
      "bad_zero.mtx",
      "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n0 2\n");
  expect_io_error([&] { io::read_graph(path); }, "1-based");
  std::remove(path.c_str());
}

TEST(GraphReader, LegacyLoaderReportsContext) {
  // The edge_list.h shim must surface the same file:line diagnostics.
  const std::string path = write_tmp("bad_legacy.txt", "1 2\nx y\n");
  try {
    load_edge_list(path);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos);
  }
  std::remove(path.c_str());
}

#ifdef PARCORE_HAVE_ZLIB
TEST(GraphReader, ReadsGzipTransparently) {
  const std::string path = testing::TempDir() + "/io_gz.txt.gz";
  gzFile f = gzopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  gzputs(f, "# gz fixture\n1 2\n2 3\n");
  gzclose(f);
  io::GraphData data = io::read_graph(path);
  EXPECT_EQ(data.edges.size(), 2u);
  std::remove(path.c_str());
}
#endif

// ------------------------------------------------------------------- .pcg

TEST(Pcg, RoundTripsEdgeListFixture) {
  io::GraphData data = io::read_graph(fixture("toy.txt"));
  const std::string path = testing::TempDir() + "/io_toy.pcg";
  io::save_pcg(path, data);
  io::GraphData loaded = io::read_graph(path);  // auto-detected by extension
  EXPECT_EQ(loaded.num_vertices, data.num_vertices);
  ASSERT_EQ(loaded.edges.size(), data.edges.size());
  for (std::size_t i = 0; i < data.edges.size(); ++i) {
    EXPECT_EQ(loaded.edges[i].e, data.edges[i].e);
    EXPECT_EQ(loaded.edges[i].time, data.edges[i].time);
  }
  EXPECT_EQ(loaded.has_timestamps, data.has_timestamps);
  std::remove(path.c_str());
}

TEST(Pcg, RoundTripsTimestamps) {
  io::GraphData data;
  data.num_vertices = 3;
  data.has_timestamps = true;
  data.edges = {{{0, 1}, 100}, {{1, 2}, 200}};
  const std::string path = testing::TempDir() + "/io_times.pcg";
  io::save_pcg(path, data);
  io::GraphData loaded = io::load_pcg(path);
  ASSERT_EQ(loaded.edges.size(), 2u);
  EXPECT_EQ(loaded.edges[1].time, 200u);
  std::remove(path.c_str());
}

TEST(Pcg, RejectsBadMagicAndTruncation) {
  const std::string not_pcg = write_tmp("bad_magic.pcg", "this is text\n");
  expect_io_error([&] { io::load_pcg(not_pcg); }, "magic");
  std::remove(not_pcg.c_str());

  const std::string stub = write_tmp("bad_header.pcg", "PCG1");
  expect_io_error([&] { io::load_pcg(stub); }, "truncated header");
  std::remove(stub.c_str());
}

TEST(Pcg, RejectsTruncatedEdgeSection) {
  io::GraphData data;
  data.num_vertices = 4;
  data.edges = {{{0, 1}, 0}, {{1, 2}, 0}, {{2, 3}, 0}};
  const std::string path = testing::TempDir() + "/io_trunc.pcg";
  io::save_pcg(path, data);
  // Chop the last edge record off.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), len - 5), 0);
  std::fclose(f);
  expect_io_error([&] { io::load_pcg(path); }, "truncated edge section");
  std::remove(path.c_str());
}

TEST(Pcg, RejectsUnsupportedVersion) {
  io::GraphData data;
  data.num_vertices = 2;
  data.edges = {{{0, 1}, 0}};
  const std::string path = testing::TempDir() + "/io_version.pcg";
  io::save_pcg(path, data);
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 4, SEEK_SET);  // version field
  const unsigned char v99[4] = {99, 0, 0, 0};
  std::fwrite(v99, 1, 4, f);
  std::fclose(f);
  expect_io_error([&] { io::load_pcg(path); }, "version 99");
  std::remove(path.c_str());
}

TEST(Pcg, RejectsOutOfRangeEndpoints) {
  io::GraphData data;
  data.num_vertices = 2;
  data.edges = {{{0, 7}, 0}};  // endpoint 7 >= n
  const std::string path = testing::TempDir() + "/io_range.pcg";
  io::save_pcg(path, data);
  expect_io_error([&] { io::load_pcg(path); }, "out of range");
  std::remove(path.c_str());
}

TEST(Pcg, CheckpointRoundTripsAndDegradesToGraph) {
  io::PcgCheckpoint ck;
  ck.epoch = 42;
  ck.num_vertices = 4;
  ck.edges = {{0, 1}, {1, 2}, {2, 3}};
  ck.core = {1, 1, 1, 1};
  ck.order = {3, 2, 1, 0};
  const std::string path = testing::TempDir() + "/io_ckpt.pcg";
  io::save_pcg_checkpoint(path, ck, /*sync=*/false);

  // Strict v2 loader round-trips everything.
  io::PcgCheckpoint back = io::load_pcg_checkpoint(path);
  EXPECT_EQ(back.epoch, 42u);
  EXPECT_EQ(back.num_vertices, 4u);
  EXPECT_EQ(back.edges, ck.edges);
  EXPECT_EQ(back.core, ck.core);
  EXPECT_EQ(back.order, ck.order);

  // The generic loader degrades a v2 checkpoint to its graph image, so
  // `decompose --input checkpoint-N.pcg` and friends keep working.
  io::GraphData data = io::load_pcg(path);
  EXPECT_EQ(data.num_vertices, 4u);
  ASSERT_EQ(data.edges.size(), 3u);
  EXPECT_EQ(data.edges[1].e, (Edge{1, 2}));
  EXPECT_FALSE(data.has_timestamps);

  // And the strict loader refuses a v1 graph cache.
  io::GraphData v1;
  v1.num_vertices = 2;
  v1.edges = {{{0, 1}, 0}};
  const std::string v1path = testing::TempDir() + "/io_ckpt_v1.pcg";
  io::save_pcg(v1path, v1);
  expect_io_error([&] { io::load_pcg_checkpoint(v1path); }, "version");
  std::remove(v1path.c_str());
  std::remove(path.c_str());
}

// --------------------------------------------------------------- temporal

TEST(Temporal, FixturePreservesOrderAndKinds) {
  io::TemporalStream s = io::read_temporal_stream(fixture("toy_temporal.txt"));
  EXPECT_EQ(s.num_vertices, 10u);
  ASSERT_EQ(s.ops.size(), 41u);
  EXPECT_TRUE(s.monotone);
  EXPECT_EQ(s.ops.front().u.kind, UpdateKind::kInsert);
  EXPECT_EQ(s.ops.front().time, 10u);
  std::size_t removes = 0;
  std::uint64_t prev = 0;
  for (const io::TimedUpdate& op : s.ops) {
    if (op.u.kind == UpdateKind::kRemove) ++removes;
    EXPECT_GE(op.time, prev);
    prev = op.time;
  }
  EXPECT_EQ(removes, 10u);
}

TEST(Temporal, NonMonotoneFlaggedAndOptionallyRejected) {
  const std::string path = write_tmp("nonmono.txt", "1 2 5\n2 3 4\n");
  io::TemporalStream s = io::read_temporal_stream(path);
  EXPECT_FALSE(s.monotone);
  io::TemporalReadOptions strict;
  strict.require_monotone = true;
  expect_io_error([&] { io::read_temporal_stream(path, strict); },
                  "decreases");
  std::remove(path.c_str());
}

TEST(Temporal, SignMustBeSeparateToken) {
  const std::string path = write_tmp("sign.txt", "+1 2\n");
  expect_io_error([&] { io::read_temporal_stream(path); }, "separate token");
  std::remove(path.c_str());
}

TEST(Temporal, SaveLoadRoundTripAndReplay) {
  std::vector<io::TimedUpdate> ops = {
      {{{0, 1}, UpdateKind::kInsert}, 1},
      {{{1, 2}, UpdateKind::kInsert}, 2},
      {{{0, 1}, UpdateKind::kRemove}, 3},
      {{{2, 0}, UpdateKind::kInsert}, 4},
      {{{3, 3}, UpdateKind::kInsert}, 5},  // self-loop never materialises
  };
  const std::string path = testing::TempDir() + "/io_temporal_rt.txt";
  io::save_temporal_stream(path, ops);
  io::TemporalStream loaded = io::read_temporal_stream(path);
  ASSERT_EQ(loaded.ops.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(loaded.ops[i].u.kind, ops[i].u.kind);
    EXPECT_EQ(loaded.ops[i].time, ops[i].time);
  }
  std::vector<Edge> live = io::replay_final_edges(ops);
  ASSERT_EQ(live.size(), 2u);  // (1,2) and (0,2)
  for (const Edge& e : live) EXPECT_NE(edge_key(e), edge_key(Edge{0, 1}));
  std::remove(path.c_str());
}

// ---------------------------------------------------------- stream adapters

TEST(StreamAdapter, SlidingWindowEmitsOldestRemovals) {
  const std::vector<Edge> stream = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}};
  const std::vector<GraphUpdate> ops =
      sliding_window_updates(stream, /*window=*/3);
  ASSERT_EQ(ops.size(), 7u);  // 5 inserts + 2 removes
  EXPECT_EQ(ops[3].kind, UpdateKind::kInsert);   // insert (3,4)...
  EXPECT_EQ(ops[4].kind, UpdateKind::kRemove);   // ...evicts (0,1)
  EXPECT_EQ(edge_key(ops[4].e), edge_key(Edge{0, 1}));
  EXPECT_EQ(edge_key(ops[6].e), edge_key(Edge{1, 2}));
}

TEST(StreamAdapter, PartitionKeepsPerEdgeOrder) {
  std::vector<GraphUpdate> ops;
  for (int round = 0; round < 8; ++round)
    for (VertexId v = 0; v < 6; ++v)
      ops.push_back(GraphUpdate{Edge{v, static_cast<VertexId>(v + 1)},
                                round % 2 == 0 ? UpdateKind::kInsert
                                               : UpdateKind::kRemove});
  const auto parts = partition_updates_by_edge(ops, 4);
  ASSERT_EQ(parts.size(), 4u);
  std::size_t total = 0;
  for (const auto& part : parts) {
    total += part.size();
    // Within a part, ops on one edge must alternate insert/remove in
    // submission order; and one edge never appears in two parts.
    for (const auto& other : parts) {
      if (&other == &part) continue;
      for (const GraphUpdate& a : part)
        for (const GraphUpdate& b : other)
          EXPECT_NE(edge_key(a.e), edge_key(b.e));
    }
    std::unordered_map<std::uint64_t, UpdateKind> last;
    for (const GraphUpdate& u : part) {
      auto it = last.find(edge_key(u.e));
      if (it != last.end()) EXPECT_NE(it->second, u.kind);
      last[edge_key(u.e)] = u.kind;
    }
  }
  EXPECT_EQ(total, ops.size());
}

// -------------------------------------------------------------- CLI smoke

TEST(Cli, ServeFixtureMatchesBzDecompose) {
  // serve verifies its final snapshot against bz_decompose of the
  // replayed graph internally and exits nonzero on mismatch.
  EXPECT_EQ(cli::cli_main({"serve", "--input", fixture("toy_temporal.txt"),
                           "--producers", "4"}),
            0);
}

TEST(Cli, MaintainFixtureVerifies) {
  EXPECT_EQ(cli::cli_main({"maintain", "--input", fixture("toy.txt"),
                           "--window", "10", "--batch", "4", "--verify"}),
            0);
}

TEST(Cli, StatsPrintsMemoryFootprint) {
  EXPECT_EQ(cli::cli_main({"stats", "--input", fixture("toy.txt")}), 0);
  EXPECT_EQ(cli::cli_main({"stats"}), 2);  // missing --input
}

TEST(Cli, DecomposeAndConvertRoundTrip) {
  const std::string pcg = testing::TempDir() + "/io_cli_toy.pcg";
  EXPECT_EQ(cli::cli_main({"convert", "--input", fixture("toy.txt"),
                           "--output", pcg}),
            0);
  EXPECT_EQ(cli::cli_main({"decompose", "--input", pcg, "--top", "3"}), 0);
  std::remove(pcg.c_str());
}

TEST(Cli, UsageErrors) {
  EXPECT_EQ(cli::cli_main({"no-such-command"}), 2);
  EXPECT_EQ(cli::cli_main({"serve"}), 2);             // missing --input
  EXPECT_EQ(cli::cli_main({"serve", "--bogus"}), 2);  // unknown option
  EXPECT_EQ(cli::cli_main({"help"}), 0);
  EXPECT_EQ(cli::cli_main({"serve", "--help"}), 0);
  EXPECT_EQ(cli::cli_main(
                {"decompose", "--input", "/nonexistent/parcore.txt"}),
            1);
}

TEST(Cli, EverySubcommandRejectsUnknownOptionsWithExit2) {
  // The strict-option contract holds for every subcommand, including
  // the newer ones: an unknown option is a usage error (2), never a
  // silent ignore or a runtime failure (1).
  for (const char* cmd :
       {"decompose", "convert", "maintain", "serve", "recover", "bench",
        "stats"}) {
    EXPECT_EQ(cli::cli_main({cmd, "--definitely-not-an-option", "x"}), 2)
        << cmd;
    EXPECT_EQ(cli::cli_main({cmd, "--help"}), 0) << cmd;
  }
}

TEST(Cli, HelpIsStrictAboutItsArguments) {
  // `help <command>` prints that command's usage (exit 0); anything it
  // cannot resolve is a usage error — the pre-durability CLI ignored
  // extra help arguments and returned 0.
  for (const char* cmd :
       {"decompose", "convert", "maintain", "serve", "recover", "bench",
        "stats"}) {
    EXPECT_EQ(cli::cli_main({"help", cmd}), 0) << cmd;
  }
  EXPECT_EQ(cli::cli_main({"help", "no-such-command"}), 2);
  EXPECT_EQ(cli::cli_main({"help", "--bogus"}), 2);
  EXPECT_EQ(cli::cli_main({"help", "serve", "extra"}), 2);
}

TEST(Cli, RecoverUsageAndMissingDir) {
  EXPECT_EQ(cli::cli_main({"recover"}), 2);  // missing --dir
  EXPECT_EQ(cli::cli_main({"recover", "--workers", "abc", "--dir", "x"}), 2);
  // An empty/nonexistent directory is a runtime failure, not usage.
  EXPECT_EQ(cli::cli_main({"recover", "--dir",
                           testing::TempDir() + "/io_no_such_ckpt_dir"}),
            1);
}

TEST(Cli, MalformedOptionValuesAreUsageErrors) {
  // A typo'd value must not silently run on the default.
  const std::string input = fixture("toy_temporal.txt");
  EXPECT_EQ(cli::cli_main({"serve", "--input", input, "--producers", "abc"}),
            2);
  EXPECT_EQ(cli::cli_main({"serve", "--input", input, "--producers", "10x"}),
            2);
  EXPECT_EQ(cli::cli_main({"maintain", "--input", fixture("toy.txt"),
                           "--window", "-3"}),
            2);
}

#ifdef PARCORE_HAVE_ZLIB
TEST(Cli, ConvertGzOutputIsRealGzip) {
  const std::string path = testing::TempDir() + "/io_cli_out.txt.gz";
  EXPECT_EQ(cli::cli_main({"convert", "--input", fixture("toy.txt"),
                           "--output", path}),
            0);
  // Must carry the gzip magic, not plain text under a .gz name.
  std::ifstream f(path, std::ios::binary);
  unsigned char magic[2] = {0, 0};
  f.read(reinterpret_cast<char*>(magic), 2);
  EXPECT_EQ(magic[0], 0x1f);
  EXPECT_EQ(magic[1], 0x8b);
  io::GraphData back = io::read_graph(path);
  EXPECT_EQ(back.edges.size(), 18u);
  std::remove(path.c_str());
}
#endif

TEST(Cli, ConvertRejectsGzippedPcg) {
  EXPECT_EQ(cli::cli_main({"convert", "--input", fixture("toy.txt"),
                           "--output", testing::TempDir() + "/x.pcg.gz"}),
            2);
}

}  // namespace
}  // namespace parcore
