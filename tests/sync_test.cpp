#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "sync/mutex.h"
#include "sync/notify.h"
#include "sync/spinlock.h"
#include "sync/thread_team.h"

namespace parcore {
namespace {

TEST(Spinlock, MutualExclusionCounter) {
  Spinlock lock;
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 80000);
}

TEST(Spinlock, TryLockFailsWhenHeld) {
  Spinlock lock;
  ASSERT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  EXPECT_TRUE(lock.is_locked());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(ConditionalLock, AcquiresWhenConditionHolds) {
  Spinlock lock;
  bool cond = true;
  EXPECT_TRUE(lock_if(lock, [&] { return cond; }));
  EXPECT_TRUE(lock.is_locked());
  lock.unlock();
}

TEST(ConditionalLock, FailsFastWhenConditionFalse) {
  Spinlock lock;
  EXPECT_FALSE(lock_if(lock, [] { return false; }));
  EXPECT_FALSE(lock.is_locked());
}

TEST(ConditionalLock, ReleasesWhenConditionDropsAfterAcquire) {
  // The condition is re-checked after the CAS (Algorithm 4 line 3);
  // simulate a condition that turns false exactly once acquired.
  Spinlock lock;
  int calls = 0;
  EXPECT_FALSE(lock_if(lock, [&] { return ++calls == 1; }));
  EXPECT_FALSE(lock.is_locked());
}

TEST(SpinGuard, ReleasesOnScopeExit) {
  Spinlock lock;
  {
    SpinGuard g(lock);
    EXPECT_TRUE(lock.is_locked());
  }
  EXPECT_FALSE(lock.is_locked());
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinGuard, AdoptsTryLockedCapability) {
  // The sanctioned try-lock idiom: probe with try_lock(), hand the
  // held capability to an adopting guard (sync/mutex.h).
  Spinlock lock;
  ASSERT_TRUE(lock.try_lock());
  {
    SpinGuard g(lock, kAdoptLock);
    EXPECT_TRUE(lock.is_locked());
  }
  EXPECT_FALSE(lock.is_locked());
}

TEST(SpinGuard, MutualExclusionCounter) {
  Spinlock lock;
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        SpinGuard g(lock);
        ++counter;
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 80000);
}

TEST(MutexGuard, ReleasesOnScopeExitAndAdopts) {
  Mutex mu;
  {
    MutexGuard g(mu);
  }
  ASSERT_TRUE(mu.try_lock());
  {
    MutexGuard g(mu, kAdoptLock);  // releases in its destructor
  }
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(CondVar, ExplicitPredicateLoopWakes) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexGuard g(mu);
    while (!ready) cv.wait(mu);
  });
  {
    MutexGuard g(mu);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
}

TEST(ConditionalLock, ConditionFlipBetweenProbeAndRecheckLeavesLockFree) {
  // The edge lock_if exists for: the condition held when the wait
  // began, the CAS succeeded, and the re-check under the lock sees the
  // condition gone (another thread moved the vertex). lock_if must
  // report failure AND leave the lock released — a leaked hold here
  // deadlocks the next locker. Flip the condition exactly at the
  // re-check call (call 2: first call is the pre-wait probe, second is
  // the post-acquire validation).
  Spinlock lock;
  int calls = 0;
  EXPECT_FALSE(lock_if(lock, [&] { return ++calls != 2; }));
  EXPECT_EQ(calls, 2);
  EXPECT_FALSE(lock.is_locked());
  // The lock must be immediately reusable.
  EXPECT_TRUE(lock_if(lock, [] { return true; }));
  lock.unlock();
}

TEST(ConditionalLock, StopsWaitingWhenConditionChanges) {
  // A thread busy-waits on a held lock; the condition flipping to false
  // must end the wait even though the lock stays held.
  Spinlock lock;
  lock.lock();
  std::atomic<bool> cond{true};
  std::atomic<bool> result{true};
  std::thread waiter([&] {
    result = lock_if(lock, [&] { return cond.load(); });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cond = false;
  waiter.join();
  EXPECT_FALSE(result.load());
  lock.unlock();
}

TEST(PairLock, AcquiresBothUnderContention) {
  // Two threads repeatedly pair-lock the same two locks in opposite
  // argument orders — hold-and-wait would deadlock here.
  Spinlock a, b;
  long counter = 0;
  std::thread t1([&] {
    for (int i = 0; i < 20000; ++i) {
      lock_pair(a, b);
      ++counter;
      b.unlock();
      a.unlock();
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < 20000; ++i) {
      lock_pair(b, a);
      ++counter;
      a.unlock();
      b.unlock();
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(counter, 40000);
}

TEST(PairLock, LivelockFreedomUnderRandomPairContention) {
  // Livelock smoke for lock_pair's retry loop: 8 threads hammer random
  // (often overlapping, often reversed) pairs from a small lock pool.
  // The acquire-one/try-the-other protocol must keep making global
  // progress — the test completing at all (within the suite timeout)
  // is the property; the counter cross-checks mutual exclusion.
  constexpr int kLocks = 4;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  Spinlock locks[kLocks];
  long counters[kLocks] = {};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(t));
      std::uniform_int_distribution<int> pick(0, kLocks - 1);
      for (int i = 0; i < kIters; ++i) {
        const int a = pick(rng);
        int b = pick(rng);
        while (b == a) b = pick(rng);
        lock_pair(locks[a], locks[b]);
        ++counters[a];
        ++counters[b];
        locks[b].unlock();
        locks[a].unlock();
      }
    });
  for (auto& th : threads) th.join();
  long total = 0;
  for (long c : counters) total += c;
  EXPECT_EQ(total, static_cast<long>(kThreads) * kIters * 2);
}

TEST(Notifier, WaitForReturnsSignalledAndTimesOutClean) {
  Notifier n;
  // Pre-signalled: returns true immediately and consumes the signal.
  n.notify();
  EXPECT_TRUE(n.wait_for(std::chrono::duration<double, std::milli>(50.0)));
  // Nothing pending: times out false.
  EXPECT_FALSE(n.wait_for(std::chrono::duration<double, std::milli>(1.0)));
  // Stop requested: wakes true without a notify.
  n.request_stop();
  EXPECT_TRUE(n.wait_for(std::chrono::duration<double, std::milli>(50.0)));
}

TEST(TicketLock, MutualExclusion) {
  TicketLock lock;
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(ThreadTeam, RunsRequestedWorkerCount) {
  ThreadTeam team(8);
  std::atomic<int> ran{0};
  std::vector<std::atomic<bool>> hit(8);
  team.run(8, [&](int w) {
    hit[static_cast<std::size_t>(w)] = true;
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 8);
  for (auto& h : hit) EXPECT_TRUE(h.load());
}

TEST(ThreadTeam, SingleWorkerRunsInline) {
  ThreadTeam team(4);
  std::thread::id id;
  team.run(1, [&](int) { id = std::this_thread::get_id(); });
  EXPECT_EQ(id, std::this_thread::get_id());
}

TEST(ThreadTeam, ClampsToMaxWorkers) {
  ThreadTeam team(2);
  std::atomic<int> ran{0};
  team.run(64, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadTeam, ReusableAcrossRuns) {
  ThreadTeam team(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> ran{0};
    team.run(4, [&](int) { ran.fetch_add(1); });
    ASSERT_EQ(ran.load(), 4);
  }
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  ThreadTeam team(8);
  std::vector<std::atomic<int>> hits(10000);
  parallel_for(team, 8, 0, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); }, 16);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadTeam team(4);
  std::atomic<int> ran{0};
  parallel_for(team, 4, 10, 10, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 0);
}

}  // namespace
}  // namespace parcore
