// Shared helpers for parcore tests: graph construction, differential
// oracles and randomized workloads.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "decomp/verify.h"
#include "graph/dynamic_graph.h"
#include "support/rng.h"
#include "support/types.h"

namespace parcore::test {

inline DynamicGraph make_graph(std::size_t n,
                               std::initializer_list<Edge> edges) {
  std::vector<Edge> v(edges);
  return DynamicGraph::from_edges(n, v);
}

/// Expects `cores` to match a brute-force decomposition of g.
inline void expect_cores_match(const DynamicGraph& g,
                               const std::vector<CoreValue>& cores,
                               const std::string& context) {
  std::string err;
  ASSERT_TRUE(verify_cores(g, cores, &err)) << context << ": " << err;
}

/// Random-graph families used by the parameterized differential sweeps.
enum class Family { kEr, kBa, kRmat, kClique, kPath, kStar };

inline const char* family_name(Family f) {
  switch (f) {
    case Family::kEr: return "er";
    case Family::kBa: return "ba";
    case Family::kRmat: return "rmat";
    case Family::kClique: return "clique";
    case Family::kPath: return "path";
    case Family::kStar: return "star";
  }
  return "?";
}

std::vector<Edge> family_edges(Family f, std::size_t n, Rng& rng);

/// Splits the edge set of a random graph into (base, batch): the batch
/// is removed from the initial graph and used for insertion/removal
/// experiments (the paper's protocol).
struct Workload {
  std::size_t n = 0;
  std::vector<Edge> base;
  std::vector<Edge> batch;
};

Workload make_workload(Family f, std::size_t n, double batch_fraction,
                       std::uint64_t seed);

}  // namespace parcore::test
