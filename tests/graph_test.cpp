#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "graph/dynamic_graph.h"
#include "graph/edge_list.h"
#include "support/rng.h"
#include "test_util.h"

namespace parcore {
namespace {

TEST(DynamicGraph, InsertAndQuery) {
  DynamicGraph g(4);
  EXPECT_TRUE(g.insert_edge(0, 1));
  EXPECT_TRUE(g.insert_edge(1, 2));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(DynamicGraph, RejectsSelfLoopsAndDuplicates) {
  DynamicGraph g(3);
  EXPECT_FALSE(g.insert_edge(1, 1));
  EXPECT_TRUE(g.insert_edge(0, 1));
  EXPECT_FALSE(g.insert_edge(0, 1));
  EXPECT_FALSE(g.insert_edge(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(DynamicGraph, RejectsOutOfRange) {
  DynamicGraph g(3);
  EXPECT_FALSE(g.insert_edge(0, 3));
  EXPECT_FALSE(g.insert_edge(7, 8));
}

TEST(DynamicGraph, RemoveEdge) {
  DynamicGraph g(3);
  g.insert_edge(0, 1);
  g.insert_edge(1, 2);
  EXPECT_TRUE(g.remove_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(DynamicGraph, FromEdgesDeduplicates) {
  std::vector<Edge> edges{{0, 1}, {1, 0}, {1, 1}, {1, 2}, {0, 1}};
  DynamicGraph g = DynamicGraph::from_edges(3, edges);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(DynamicGraph, EdgesRoundTrip) {
  auto g = test::make_graph(5, {{0, 1}, {1, 2}, {3, 4}, {0, 4}});
  auto edges = g.edges();
  EXPECT_EQ(edges.size(), 4u);
  for (const Edge& e : edges) {
    EXPECT_LT(e.u, e.v);
    EXPECT_TRUE(g.has_edge(e.u, e.v));
  }
}

TEST(DynamicGraph, DegreeStatistics) {
  auto g = test::make_graph(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 3.0 / 4.0);  // m / n per Table 2
}

TEST(DynamicGraph, AddVerticesGrows) {
  DynamicGraph g(2);
  g.add_vertices(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_TRUE(g.insert_edge(3, 4));
  g.add_vertices(3);  // shrink request ignored
  EXPECT_EQ(g.num_vertices(), 5u);
}

TEST(EdgeList, CanonicalizeDropsBadEdges) {
  std::vector<Edge> edges{{0, 1}, {1, 0}, {2, 2}, {3, 4}, {0, 1}};
  EXPECT_EQ(canonicalize_edges(edges), 3u);
  EXPECT_EQ(edges.size(), 2u);
}

TEST(EdgeList, SampleEdgesDistinctAndPresent) {
  Rng rng(3);
  std::vector<Edge> base;
  for (VertexId v = 0; v + 1 < 100; ++v)
    base.push_back(Edge{v, static_cast<VertexId>(v + 1)});
  DynamicGraph g = DynamicGraph::from_edges(100, base);
  auto sample = sample_edges(g, 25, rng);
  EXPECT_EQ(sample.size(), 25u);
  std::set<std::uint64_t> keys;
  for (const Edge& e : sample) {
    EXPECT_TRUE(g.has_edge(e.u, e.v));
    EXPECT_TRUE(keys.insert(edge_key(e)).second);
  }
}

TEST(EdgeList, SampleClampsToEdgeCount) {
  Rng rng(3);
  auto g = test::make_graph(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(sample_edges(g, 100, rng).size(), 2u);
}

TEST(EdgeList, SplitBatchesEven) {
  std::vector<Edge> edges(10, Edge{0, 1});
  auto parts = split_batches(edges, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].size() + parts[1].size() + parts[2].size(), 10u);
  EXPECT_EQ(parts[0].size(), 4u);
}

TEST(EdgeList, FileRoundTrip) {
  EdgeListData data;
  data.num_vertices = 4;
  data.has_timestamps = true;
  data.edges = {{{0, 1}, 10}, {{1, 2}, 20}, {{2, 3}, 30}};
  const std::string path = testing::TempDir() + "/parcore_edges.txt";
  save_edge_list(path, data);
  EdgeListData loaded = load_edge_list(path);
  ASSERT_EQ(loaded.edges.size(), 3u);
  EXPECT_TRUE(loaded.has_timestamps);
  EXPECT_EQ(loaded.edges[1].time, 20u);
  std::remove(path.c_str());
}

TEST(EdgeList, LoadSkipsComments) {
  const std::string path = testing::TempDir() + "/parcore_comments.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("# comment\n% other\n10 20\n30 40\n", f);
  std::fclose(f);
  EdgeListData loaded = load_edge_list(path);
  EXPECT_EQ(loaded.edges.size(), 2u);
  EXPECT_EQ(loaded.num_vertices, 4u);  // compacted ids
  EXPECT_FALSE(loaded.has_timestamps);
  std::remove(path.c_str());
}

TEST(EdgeList, LoadMissingFileThrows) {
  EXPECT_THROW(load_edge_list("/nonexistent/parcore.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace parcore
