// Differential tests for the standalone sequential Traversal maintainer.
#include <gtest/gtest.h>

#include <tuple>

#include "gen/generators.h"
#include "maint/seq_order.h"
#include "maint/traversal.h"
#include "test_util.h"

namespace parcore {
namespace {

using test::Family;

TEST(TraversalInsert, TriangleCompletion) {
  auto g = test::make_graph(3, {{0, 1}, {1, 2}});
  TraversalMaintainer m(g);
  ASSERT_TRUE(m.insert_edge(0, 2));
  EXPECT_EQ(m.core(0), 2);
  EXPECT_EQ(m.core(1), 2);
  EXPECT_EQ(m.core(2), 2);
  std::string err;
  EXPECT_TRUE(m.check_mcd(&err)) << err;
}

TEST(TraversalInsert, RejectsBadEdges) {
  auto g = test::make_graph(3, {{0, 1}});
  TraversalMaintainer m(g);
  EXPECT_FALSE(m.insert_edge(0, 0));
  EXPECT_FALSE(m.insert_edge(0, 1));
  EXPECT_FALSE(m.insert_edge(0, 7));
}

TEST(TraversalRemove, TriangleBreak) {
  auto g = test::make_graph(3, {{0, 1}, {1, 2}, {0, 2}});
  TraversalMaintainer m(g);
  ASSERT_TRUE(m.remove_edge(1, 2));
  EXPECT_EQ(m.core(0), 1);
  EXPECT_EQ(m.core(1), 1);
  EXPECT_EQ(m.core(2), 1);
  std::string err;
  EXPECT_TRUE(m.check_mcd(&err)) << err;
}

TEST(TraversalRemove, MissingEdgeRejected) {
  auto g = test::make_graph(3, {{0, 1}});
  TraversalMaintainer m(g);
  EXPECT_FALSE(m.remove_edge(1, 2));
}

class TraversalSweep
    : public ::testing::TestWithParam<std::tuple<Family, std::uint64_t>> {};

TEST_P(TraversalSweep, InsertRemoveAgainstBruteForce) {
  auto [family, seed] = GetParam();
  test::Workload w = test::make_workload(family, 250, 0.3, seed);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  TraversalMaintainer m(g);
  for (std::size_t i = 0; i < w.batch.size(); ++i) {
    ASSERT_TRUE(m.insert_edge(w.batch[i].u, w.batch[i].v));
    if (i % 11 == 0)
      test::expect_cores_match(g, m.cores(), "insert " + std::to_string(i));
  }
  test::expect_cores_match(g, m.cores(), "insert end");
  std::string err;
  ASSERT_TRUE(m.check_mcd(&err)) << err;

  Rng rng(seed * 3 + 1);
  auto batch = w.batch;
  rng.shuffle(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(m.remove_edge(batch[i].u, batch[i].v));
    if (i % 11 == 0)
      test::expect_cores_match(g, m.cores(), "remove " + std::to_string(i));
  }
  test::expect_cores_match(g, m.cores(), "remove end");
  ASSERT_TRUE(m.check_mcd(&err)) << err;
}

INSTANTIATE_TEST_SUITE_P(
    Families, TraversalSweep,
    ::testing::Combine(::testing::Values(Family::kEr, Family::kBa,
                                         Family::kRmat, Family::kClique,
                                         Family::kStar),
                       ::testing::Values(4u, 5u)),
    [](const auto& info) {
      return std::string(test::family_name(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(TraversalVsOrder, SameCoresLargerVPlus) {
  // The paper's core claim about the sequential algorithms: both are
  // correct, but Traversal touches a larger V+ than Order.
  test::Workload w = test::make_workload(Family::kBa, 500, 0.25, 77);
  auto g1 = DynamicGraph::from_edges(w.n, w.base);
  auto g2 = DynamicGraph::from_edges(w.n, w.base);
  TraversalMaintainer::Options topts;
  topts.collect_stats = true;
  TraversalMaintainer trav(g1, topts);
  SeqOrderMaintainer::Options oopts;
  oopts.collect_stats = true;
  SeqOrderMaintainer order(g2, oopts);

  trav.insert_batch(w.batch);
  order.insert_batch(w.batch);
  EXPECT_EQ(trav.cores(), order.cores());
  // Identical V* by definition; Traversal's search scope is at least as
  // large on average (usually much larger).
  EXPECT_NEAR(trav.insert_vstar_histogram().mean(),
              order.insert_vstar_histogram().mean(), 1e-9);
  EXPECT_GE(trav.insert_vplus_histogram().mean() + 1e-9,
            order.insert_vplus_histogram().mean());
}

TEST(TraversalStats, HistogramsCover) {
  test::Workload w = test::make_workload(Family::kRmat, 300, 0.2, 9);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  TraversalMaintainer::Options opts;
  opts.collect_stats = true;
  TraversalMaintainer m(g, opts);
  m.insert_batch(w.batch);
  m.remove_batch(w.batch);
  EXPECT_EQ(m.insert_vplus_histogram().total(), w.batch.size());
  EXPECT_EQ(m.remove_vstar_histogram().total(), w.batch.size());
}

}  // namespace
}  // namespace parcore
