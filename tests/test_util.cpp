#include "test_util.h"

#include "gen/generators.h"
#include "graph/edge_list.h"

namespace parcore::test {

std::vector<Edge> family_edges(Family f, std::size_t n, Rng& rng) {
  switch (f) {
    case Family::kEr:
      return gen_erdos_renyi(n, n * 4, rng);
    case Family::kBa:
      return gen_barabasi_albert(n, 4, rng);
    case Family::kRmat: {
      unsigned bits = 1;
      while ((std::size_t{1} << bits) < n) ++bits;
      return gen_rmat(bits, n * 4, RmatParams{}, rng);
    }
    case Family::kClique:
      return gen_clique(std::min<std::size_t>(n, 40));
    case Family::kPath: {
      std::vector<Edge> e;
      for (VertexId v = 0; v + 1 < n; ++v)
        e.push_back(Edge{v, static_cast<VertexId>(v + 1)});
      return e;
    }
    case Family::kStar:
      return gen_star(n);
  }
  return {};
}

Workload make_workload(Family f, std::size_t n, double batch_fraction,
                       std::uint64_t seed) {
  Rng rng(seed);
  Workload w;
  std::vector<Edge> edges = family_edges(f, n, rng);
  canonicalize_edges(edges);
  rng.shuffle(edges);
  // Vertex universe: at least n (rmat may exceed it).
  std::size_t max_v = n;
  for (const Edge& e : edges)
    max_v = std::max<std::size_t>(max_v, std::max(e.u, e.v) + 1);
  w.n = max_v;
  const std::size_t cut =
      static_cast<std::size_t>(static_cast<double>(edges.size()) *
                               batch_fraction);
  w.batch.assign(edges.begin(), edges.begin() + cut);
  w.base.assign(edges.begin() + cut, edges.end());
  return w;
}

}  // namespace parcore::test
