// Storage-layer tests for the slab-pooled adjacency layout (ISSUE 3):
// SlabStore unit coverage plus a randomized differential fuzz of
// DynamicGraph against a std::set<canonical Edge> reference model,
// run under both tiny and default arena chunk sizes so the chunk-roll
// and jumbo paths are both exercised.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/slab_store.h"
#include "support/rng.h"
#include "test_util.h"

namespace parcore {
namespace {

TEST(SlabStore, SizeClassMapping) {
  EXPECT_EQ(SlabStore::size_class(0), 0u);
  EXPECT_EQ(SlabStore::size_class(1), 0u);
  EXPECT_EQ(SlabStore::size_class(8), 0u);
  EXPECT_EQ(SlabStore::size_class(9), 1u);
  EXPECT_EQ(SlabStore::size_class(16), 1u);
  EXPECT_EQ(SlabStore::size_class(17), 2u);
  EXPECT_EQ(SlabStore::size_class(1024), 7u);
  EXPECT_EQ(SlabStore::class_entries(0), 8u);
  EXPECT_EQ(SlabStore::class_entries(3), 64u);
  for (std::size_t d : {5u, 12u, 100u, 5000u})
    EXPECT_GE(SlabStore::class_entries(SlabStore::size_class(d)), d);
}

TEST(SlabStore, FreeListRecyclesExactSlab) {
  SlabStore store;
  VertexId* a = store.allocate(2, 7);
  store.deallocate(a, 2, 7);
  // Same shard + same class → the free list hands the slab back.
  EXPECT_EQ(store.allocate(2, 7), a);
  // A different class must not reuse it.
  EXPECT_NE(store.allocate(1, 7), static_cast<void*>(a));
}

TEST(SlabStore, ChunkRollAndStats) {
  SlabStore::Options opts;
  opts.chunk_bytes = 128;  // 4 slabs of class 0 per chunk
  opts.shards = 1;
  SlabStore store(opts);
  for (int i = 0; i < 9; ++i) store.allocate(0, 0);
  const SlabStoreStats s = store.stats();
  EXPECT_EQ(s.chunk_count, 3u);  // 9 slabs x 32 B across 128 B chunks
  EXPECT_EQ(s.reserved_bytes, 3u * 128u);
  EXPECT_EQ(s.freelist_bytes, 0u);
}

TEST(SlabStore, JumboBeyondChunkCapacity) {
  SlabStore::Options opts;
  opts.chunk_bytes = 256;  // max chunk class: 64 entries
  opts.shards = 1;
  SlabStore store(opts);
  const std::size_t cls = SlabStore::size_class(1000);  // 1024 entries
  VertexId* big = store.allocate(cls, 0);
  big[999] = 42;  // full extent writable
  SlabStoreStats s = store.stats();
  EXPECT_EQ(s.jumbo_count, 1u);
  EXPECT_GE(s.reserved_bytes, 1024u * sizeof(VertexId));
  store.deallocate(big, cls, 0);
  EXPECT_EQ(store.stats().freelist_bytes, 1024u * sizeof(VertexId));
  EXPECT_EQ(store.allocate(cls, 0), big);  // recycled, not re-newed
}

TEST(DynamicGraph, InlineToSlabTransition) {
  DynamicGraph g(10);
  // Degree 4 fits the inline header.
  for (VertexId v = 1; v <= 4; ++v) EXPECT_TRUE(g.insert_edge(0, v));
  GraphMemoryStats m = g.memory_stats();
  EXPECT_EQ(m.inline_vertices, 10u);
  EXPECT_EQ(m.arena_reserved_bytes, 0u);
  // Degree 5 spills vertex 0 into a slab; neighbors survive the move.
  EXPECT_TRUE(g.insert_edge(0, 5));
  m = g.memory_stats();
  EXPECT_EQ(m.inline_vertices, 9u);
  EXPECT_GT(m.arena_reserved_bytes, 0u);
  auto nbrs = g.neighbors(0);
  std::vector<VertexId> got(nbrs.begin(), nbrs.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<VertexId>{1, 2, 3, 4, 5}));
  EXPECT_EQ(g.degree(0), 5u);
}

TEST(DynamicGraph, ReserveDegreePreventsRelocation) {
  DynamicGraph g(3);
  g.reserve_degree(0, 100);
  const VertexId* before = g.neighbors(0).data();
  g.add_vertices(3);
  for (VertexId v = 1; v < 3; ++v) g.insert_edge(0, v);
  EXPECT_EQ(g.neighbors(0).data(), before);  // no grow happened
}

TEST(DynamicGraph, CopyCompactsSlack) {
  // Grown incrementally, vertex capacities double past their need; the
  // copy re-lays them out in exact classes.
  DynamicGraph g(64);
  for (VertexId u = 0; u < 64; ++u)
    for (VertexId v = u + 1; v < 64; ++v) g.insert_edge(u, v);
  const GraphMemoryStats grown = g.memory_stats();

  DynamicGraph copy(g);
  EXPECT_EQ(copy.num_edges(), g.num_edges());
  EXPECT_EQ(copy.edges(), g.edges());
  const GraphMemoryStats compact = copy.memory_stats();
  EXPECT_LE(compact.slab_capacity_bytes, grown.slab_capacity_bytes);
  EXPECT_EQ(compact.freelist_bytes, 0u);

  // Copy-assignment over an existing graph rebuilds the arena too.
  DynamicGraph assigned(1);
  assigned = g;
  EXPECT_EQ(assigned.edges(), g.edges());
}

TEST(DynamicGraph, MoveKeepsSlabsValid) {
  DynamicGraph g(16);
  for (VertexId v = 1; v < 16; ++v) g.insert_edge(0, v);
  const std::vector<Edge> before = g.edges();
  DynamicGraph moved(std::move(g));
  EXPECT_EQ(moved.edges(), before);
  EXPECT_EQ(moved.degree(0), 15u);
  DynamicGraph target(1);
  target = std::move(moved);
  EXPECT_EQ(target.edges(), before);
}

TEST(DynamicGraph, FromEdgesMatchesIncrementalBuild) {
  Rng rng(0xfeed);
  std::vector<Edge> edges;
  const std::size_t n = 300;
  for (int i = 0; i < 2000; ++i)
    edges.push_back(Edge{static_cast<VertexId>(rng.next() % n),
                         static_cast<VertexId>(rng.next() % n)});
  DynamicGraph bulk = DynamicGraph::from_edges(n, edges);
  DynamicGraph inc(n);
  for (const Edge& e : edges) inc.insert_edge(e.u, e.v);
  EXPECT_EQ(bulk.num_edges(), inc.num_edges());
  std::vector<Edge> be = bulk.edges(), ie = inc.edges();
  auto key = [](const Edge& a, const Edge& b) {
    return edge_key(a) < edge_key(b);
  };
  std::sort(be.begin(), be.end(), key);
  std::sort(ie.begin(), ie.end(), key);
  EXPECT_EQ(be, ie);
}

TEST(DynamicGraph, HubHasEdgeScansSmallEndpoint) {
  // Correctness guard for the smaller-degree scan: a hub with a large
  // adjacency vs leaves of degree 1, probed in both argument orders.
  const std::size_t n = 4000;
  DynamicGraph g(n);
  for (VertexId v = 1; v < n; ++v) g.insert_edge(0, v);
  EXPECT_TRUE(g.has_edge(0, 1234));
  EXPECT_TRUE(g.has_edge(1234, 0));
  EXPECT_FALSE(g.has_edge(1234, 4321 % n));
  EXPECT_FALSE(g.insert_edge(0, 1234));  // duplicate via the hub path
  EXPECT_EQ(g.num_edges(), n - 1);
}

// ------------------------------------------------------------------ fuzz

void fuzz_against_reference(SlabStore::Options store_opts,
                            std::uint64_t seed) {
  const std::size_t n = 180;  // small universe → heavy edge churn
  const int kOps = 50000;
  DynamicGraph g(n, store_opts);
  std::set<std::uint64_t> ref;  // canonical edge keys
  Rng rng(seed);

  for (int op = 0; op < kOps; ++op) {
    const auto u = static_cast<VertexId>(rng.next() % n);
    const auto v = static_cast<VertexId>(rng.next() % n);
    const Edge e = canonical(Edge{u, v});
    const std::uint64_t key = edge_key(e);
    switch (rng.next() % 3) {
      case 0: {  // insert
        const bool want = u != v && ref.find(key) == ref.end();
        ASSERT_EQ(g.insert_edge(u, v), want) << "op " << op;
        if (want) ref.insert(key);
        break;
      }
      case 1: {  // remove
        const bool want = ref.erase(key) > 0;
        ASSERT_EQ(g.remove_edge(u, v), want) << "op " << op;
        break;
      }
      default: {  // membership probe, both orders
        const bool want = ref.find(key) != ref.end();
        ASSERT_EQ(g.has_edge(u, v), want) << "op " << op;
        ASSERT_EQ(g.has_edge(v, u), want) << "op " << op;
        break;
      }
    }
    ASSERT_EQ(g.num_edges(), ref.size()) << "op " << op;
  }

  // Full structural audit at the end: exact edge set and degrees.
  std::vector<Edge> got = g.edges();
  ASSERT_EQ(got.size(), ref.size());
  for (const Edge& e : got) ASSERT_TRUE(ref.count(edge_key(e)) > 0);
  std::size_t degree_sum = 0;
  for (VertexId v = 0; v < n; ++v) degree_sum += g.degree(v);
  ASSERT_EQ(degree_sum, 2 * ref.size());

  const GraphMemoryStats m = g.memory_stats();
  EXPECT_GE(m.slab_capacity_bytes, m.slab_used_bytes);
  EXPECT_GE(m.arena_reserved_bytes,
            m.slab_capacity_bytes + m.freelist_bytes);
}

TEST(SlabStoreFuzz, SmallChunks) {
  SlabStore::Options opts;
  opts.chunk_bytes = 256;  // constant chunk rolls + jumbo slabs
  opts.shards = 2;
  fuzz_against_reference(opts, 0x51ab5);
}

TEST(SlabStoreFuzz, DefaultChunks) {
  fuzz_against_reference(SlabStore::Options(), 0xb16c4);
}

}  // namespace
}  // namespace parcore
