// Durability tests (docs/DURABILITY.md): WAL round-trips, saved-order
// restore, clean-shutdown recovery, and the fork-based crash matrix —
// a child process runs the engine with an injected kill point
// (PARCORE_DURABILITY_CRASH_AT, durability/crash.h), dies with
// _exit(42), and the parent recovers the directory and differentially
// verifies the result against bz_decompose.
//
// Under TSan these forks need TSAN_OPTIONS=die_after_fork=0 (the CI
// tsan job sets it).
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "decomp/bz.h"
#include "durability/crash.h"
#include "durability/manager.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "engine/engine.h"
#include "io/io_error.h"
#include "test_util.h"

namespace parcore {
namespace {

namespace fs = std::filesystem;
using durability::RecoveryOptions;
using durability::RecoveryResult;
using durability::WalReadResult;
using durability::WalRecord;
using durability::WalWriter;

std::string fresh_dir(const std::string& name) {
  std::string d = ::testing::TempDir() + "parcore-recovery-" + name;
  fs::remove_all(d);
  return d;
}

// ---------------------------------------------------------------- WAL

TEST(Wal, WriterReaderRoundTrip) {
  const std::string path = fresh_dir("wal-roundtrip");
  WalWriter w = WalWriter::create(path, /*base_epoch=*/7, /*sync=*/true);
  WalRecord a{8, {{0, 1}}, {{2, 3}, {4, 5}}};
  WalRecord b{9, {}, {{6, 7}}};
  WalRecord c{12, {{8, 9}, {10, 11}}, {}};  // epochs may skip, not repeat
  w.append(a);
  w.append(b);
  w.append(c);
  EXPECT_EQ(w.frames_appended(), 3u);
  EXPECT_GE(w.fsyncs(), 3u);
  w.close();

  WalReadResult r = durability::read_wal(path);
  EXPECT_EQ(r.base_epoch, 7u);
  EXPECT_FALSE(r.torn_tail);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].epoch, 8u);
  ASSERT_EQ(r.records[0].removes.size(), 1u);
  EXPECT_TRUE(r.records[0].removes[0] == (Edge{0, 1}));
  ASSERT_EQ(r.records[0].inserts.size(), 2u);
  EXPECT_TRUE(r.records[0].inserts[1] == (Edge{4, 5}));
  EXPECT_EQ(r.records[1].epoch, 9u);
  EXPECT_TRUE(r.records[1].removes.empty());
  EXPECT_EQ(r.records[2].epoch, 12u);
  EXPECT_TRUE(r.records[2].inserts.empty());
}

TEST(Wal, TornTailIsToleratedAndLocated) {
  const std::string path = fresh_dir("wal-torn");
  WalWriter w = WalWriter::create(path, 0, true);
  w.append(WalRecord{1, {}, {{0, 1}, {1, 2}}});
  w.append(WalRecord{2, {}, {{2, 3}}});
  w.close();

  // Frame 1 = 8 + (16 + 2*8) = 40 bytes after the 32-byte header.
  const std::uint64_t frame2_offset = 32 + 40;
  const std::uintmax_t full = fs::file_size(path);
  ASSERT_GT(full, frame2_offset);
  fs::resize_file(path, full - 5);  // cut into frame 2's payload

  WalReadResult r = durability::read_wal(path);
  EXPECT_TRUE(r.torn_tail);
  EXPECT_EQ(r.torn_offset, frame2_offset);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].epoch, 1u);

  // Cutting into the length prefix itself is also just a torn tail.
  fs::resize_file(path, frame2_offset + 3);
  WalReadResult r2 = durability::read_wal(path);
  EXPECT_TRUE(r2.torn_tail);
  EXPECT_EQ(r2.records.size(), 1u);
}

TEST(Wal, EmptyWalIsACleanEnd) {
  const std::string path = fresh_dir("wal-empty");
  WalWriter w = WalWriter::create(path, 5, true);
  w.close();
  WalReadResult r = durability::read_wal(path);
  EXPECT_EQ(r.base_epoch, 5u);
  EXPECT_TRUE(r.records.empty());
  EXPECT_FALSE(r.torn_tail);
}

// ------------------------------------------------- saved-order restore

TEST(Restore, RoundTripMatchesFreshStateAndStaysMaintainable) {
  test::Workload wl = test::make_workload(test::Family::kEr, 60, 0.3, 17);
  DynamicGraph g1 = DynamicGraph::from_edges(wl.n, wl.base);
  ThreadTeam team(4);
  ParallelOrderMaintainer fresh(g1, team);
  SavedCoreOrder saved = fresh.state().save_order();

  DynamicGraph g2 = DynamicGraph::from_edges(wl.n, wl.base);
  ParallelOrderMaintainer::Options opts;
  opts.restore = &saved;
  ParallelOrderMaintainer restored(g2, team, opts);
  for (VertexId v = 0; v < wl.n; ++v)
    ASSERT_EQ(restored.core(v), fresh.core(v)) << "vertex " << v;

  // The restored state must be maintainable, not just readable.
  restored.insert_batch(wl.batch, 4);
  test::expect_cores_match(g2, restored.cores(), "post-restore insert");
  restored.remove_batch(wl.batch, 4);
  test::expect_cores_match(g2, restored.cores(), "post-restore remove");
}

TEST(Restore, RejectsCorruptImages) {
  // Clique (core 4) plus a path tail (core 1) so levels differ.
  DynamicGraph g = test::make_graph(
      8, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3},
          {2, 4}, {3, 4}, {4, 5}, {5, 6}, {6, 7}});
  ThreadTeam team(2);
  ParallelOrderMaintainer m(g, team);
  const SavedCoreOrder good = m.state().save_order();
  ASSERT_GT(good.core[good.order.front()], 0u);
  ASSERT_NE(good.core[good.order.front()], good.core[good.order.back()]);

  auto expect_rejected = [&](SavedCoreOrder bad, const char* what) {
    ParallelOrderMaintainer::Options opts;
    opts.restore = &bad;
    DynamicGraph copy = g;
    EXPECT_THROW(ParallelOrderMaintainer(copy, team, opts),
                 std::runtime_error)
        << what;
  };

  SavedCoreOrder swapped = good;  // breaks non-decreasing cores
  std::swap(swapped.order.front(), swapped.order.back());
  expect_rejected(std::move(swapped), "swapped order");

  SavedCoreOrder dup = good;  // not a permutation
  dup.order[1] = dup.order[0];
  expect_rejected(std::move(dup), "duplicate vertex");

  SavedCoreOrder short_core = good;
  short_core.core.pop_back();
  expect_rejected(std::move(short_core), "short core vector");

  SavedCoreOrder short_order = good;
  short_order.order.pop_back();
  expect_rejected(std::move(short_order), "short order vector");
}

// ---------------------------------------------------- engine + recover

// Deterministic crash workload: K16's 120 edges, 40 as the base graph
// and six flush batches of 10 inserts each. Every batch is non-empty
// and disjoint, so flush k appends exactly WAL frame k with epoch k.
struct CrashWorkload {
  std::size_t n = 16;
  std::vector<Edge> base;
  std::vector<std::vector<Edge>> flushes;
};

CrashWorkload crash_workload() {
  CrashWorkload w;
  std::vector<Edge> all;
  for (VertexId u = 0; u < 16; ++u)
    for (VertexId v = u + 1; v < 16; ++v) all.push_back(Edge{u, v});
  w.base.assign(all.begin(), all.begin() + 40);
  for (int b = 0; b < 6; ++b)
    w.flushes.emplace_back(all.begin() + 40 + b * 10,
                           all.begin() + 50 + b * 10);
  return w;
}

// Runs the engine workload in THIS process; only call after fork(). The
// injected crash point is expected to _exit(42) part-way through; if
// the workload completes, exits 0 so the parent can flag the missing
// crash.
[[noreturn]] void run_crash_child(const std::string& dir, const char* point,
                                  int after, std::size_t interval) {
  ::setenv("PARCORE_DURABILITY_CRASH_AT", point, 1);
  ::setenv("PARCORE_DURABILITY_CRASH_AFTER", std::to_string(after).c_str(),
           1);
  CrashWorkload w = crash_workload();
  DynamicGraph g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(2);
  engine::StreamingEngine::Options opts;
  opts.workers = 2;
  opts.durability.dir = dir;
  opts.durability.checkpoint_interval = interval;
  engine::StreamingEngine eng(g, team, opts);
  for (const std::vector<Edge>& batch : w.flushes) {
    for (const Edge& e : batch) eng.submit_insert(e.u, e.v);
    eng.flush_now();
  }
  eng.stop();
  ::_exit(0);
}

struct CrashCase {
  const char* point;
  int after;                  // PARCORE_DURABILITY_CRASH_AFTER
  std::size_t interval;       // checkpoint_interval (0 = initial only)
  std::uint64_t expect_ck;    // checkpoint generation recovered from
  std::size_t expect_frames;  // WAL frames replayed
  bool expect_torn;
};

// The full kill-point matrix. The three wal-* points arm the 3rd WAL
// append; the checkpoint-* points arm the PERIODIC checkpoint at flush
// 4 (after=2: hit 1 is the initial epoch-0 checkpoint). In every case
// exactly `expect_ck + expect_frames` of the six flushes survive.
const CrashCase kCrashMatrix[] = {
    // Half of frame 3 reaches the file: torn tail, flushes 1-2 survive.
    {"wal-mid-append", 3, 0, 0, 2, true},
    // Frame 3 fully written but not yet fsynced: a PROCESS crash loses
    // nothing (the page cache survives _exit), so flush 3 survives.
    {"wal-pre-fsync", 3, 0, 0, 3, false},
    // Crash after the group fsync: flush 3 durably survives.
    {"wal-post-fsync", 3, 0, 0, 3, false},
    // Checkpoint 4 dies with a half-written .tmp: never renamed, so
    // recovery uses generation 0 + all four logged frames.
    {"checkpoint-mid-write", 2, 4, 0, 4, false},
    // Checkpoint 4 dies after creating wal-4.log but before the rename:
    // the orphan WAL has no checkpoint and is ignored.
    {"checkpoint-pre-rename", 2, 4, 0, 4, false},
    // Crash just after the rename commit point: recovery starts from
    // generation 4, whose WAL is still empty.
    {"checkpoint-post-rename", 2, 4, 4, 0, false},
};

class CrashMatrix : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashMatrix, RecoversToTheLastDurableFlushBoundary) {
  const CrashCase c = GetParam();
  const std::string dir =
      fresh_dir(std::string("crash-") + c.point + "-" +
                std::to_string(c.after));

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) run_crash_child(dir, c.point, c.after, c.interval);

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child did not exit cleanly";
  ASSERT_EQ(WEXITSTATUS(status), durability::kCrashExitStatus)
      << "injected crash at " << c.point << " never fired";

  RecoveryOptions opts;
  opts.dir = dir;
  opts.workers = 2;
  opts.verify = true;
  DynamicGraph recovered_graph(1);
  ThreadTeam team(2);
  RecoveryResult res;
  std::unique_ptr<ParallelOrderMaintainer> m =
      durability::recover(opts, recovered_graph, team, &res);
  ASSERT_NE(m, nullptr);

  EXPECT_EQ(res.checkpoint_epoch, c.expect_ck);
  EXPECT_EQ(res.frames_replayed, c.expect_frames);
  EXPECT_EQ(res.final_epoch, c.expect_ck + c.expect_frames);
  EXPECT_EQ(res.torn_tail, c.expect_torn);
  EXPECT_EQ(res.checkpoints_skipped, 0u);
  EXPECT_TRUE(res.verified);

  // Independently rebuild the expected state: base + the batches of
  // every flush at or before the recovered boundary.
  CrashWorkload w = crash_workload();
  const std::size_t boundary =
      static_cast<std::size_t>(res.final_epoch);
  ASSERT_LE(boundary, w.flushes.size());
  std::vector<Edge> edges = w.base;
  for (std::size_t i = 0; i < boundary; ++i)
    edges.insert(edges.end(), w.flushes[i].begin(), w.flushes[i].end());
  DynamicGraph expect_g = DynamicGraph::from_edges(w.n, edges);
  EXPECT_EQ(recovered_graph.num_edges(), expect_g.num_edges());
  Decomposition expect = bz_decompose(expect_g);
  for (VertexId v = 0; v < w.n; ++v)
    EXPECT_EQ(m->core(v), expect.core[v]) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(
    AllKillPoints, CrashMatrix, ::testing::ValuesIn(kCrashMatrix),
    [](const ::testing::TestParamInfo<CrashCase>& info) {
      std::string name = info.param.point;
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

TEST(Recovery, CleanShutdownRecoversWithNothingToReplay) {
  const std::string dir = fresh_dir("clean-shutdown");
  CrashWorkload w = crash_workload();
  {
    DynamicGraph g = DynamicGraph::from_edges(w.n, w.base);
    ThreadTeam team(2);
    engine::StreamingEngine::Options opts;
    opts.workers = 2;
    opts.durability.dir = dir;
    opts.durability.checkpoint_interval = 0;  // initial + shutdown only
    engine::StreamingEngine eng(g, team, opts);
    for (const std::vector<Edge>& batch : w.flushes) {
      for (const Edge& e : batch) eng.submit_insert(e.u, e.v);
      eng.flush_now();
    }
    eng.stop();
    engine::EngineStats stats = eng.stats();
    EXPECT_EQ(stats.durability.checkpoints, 2u);  // epoch 0 + shutdown
    EXPECT_EQ(stats.durability.wal_frames, w.flushes.size());
  }

  RecoveryOptions opts;
  opts.dir = dir;
  opts.workers = 2;
  DynamicGraph g(1);
  ThreadTeam team(2);
  RecoveryResult res;
  auto m = durability::recover(opts, g, team, &res);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(res.checkpoint_epoch, w.flushes.size());
  EXPECT_EQ(res.frames_replayed, 0u);
  EXPECT_FALSE(res.torn_tail);
  EXPECT_TRUE(res.verified);
  test::expect_cores_match(g, m->cores(), "clean shutdown");
}

// The verify oracle is pluggable (ISSUE 8): BZ and the parallel exact
// peel must make the SAME accept/reject decision on every directory —
// they compute the same core numbers, so step 4 sees the same diff.
TEST(Recovery, VerifyAlgoParityOnCleanCheckpoint) {
  const std::string dir = fresh_dir("verify-parity-clean");
  CrashWorkload w = crash_workload();
  {
    DynamicGraph g = DynamicGraph::from_edges(w.n, w.base);
    ThreadTeam team(2);
    engine::StreamingEngine::Options opts;
    opts.workers = 2;
    opts.durability.dir = dir;
    opts.durability.checkpoint_interval = 0;
    engine::StreamingEngine eng(g, team, opts);
    for (const std::vector<Edge>& batch : w.flushes) {
      for (const Edge& e : batch) eng.submit_insert(e.u, e.v);
      eng.flush_now();
    }
    eng.stop();
  }

  std::vector<CoreValue> first_cores;
  const struct {
    durability::VerifyAlgo algo;
    const char* name;
  } cases[] = {{durability::VerifyAlgo::kBz, "bz"},
               {durability::VerifyAlgo::kParallel, "parallel"},
               {durability::VerifyAlgo::kApprox, "approx"}};
  for (const auto& c : cases) {
    RecoveryOptions opts;
    opts.dir = dir;
    opts.workers = 2;
    opts.verify_algo = c.algo;
    DynamicGraph g(1);
    ThreadTeam team(2);
    RecoveryResult res;
    auto m = durability::recover(opts, g, team, &res);
    ASSERT_NE(m, nullptr) << c.name;
    EXPECT_TRUE(res.verified) << c.name;
    EXPECT_STREQ(res.verify_algo, c.name);
    EXPECT_GE(res.verify_ms, 0.0);
    if (first_cores.empty())
      first_cores = m->cores();
    else
      EXPECT_EQ(m->cores(), first_cores) << c.name;
  }
}

TEST(Recovery, VerifyAlgoParityOnCorruptedCheckpoints) {
  const std::string dir = fresh_dir("verify-parity-corrupt");
  CrashWorkload w = crash_workload();
  {
    DynamicGraph g = DynamicGraph::from_edges(w.n, w.base);
    ThreadTeam team(2);
    engine::StreamingEngine::Options opts;
    opts.workers = 2;
    opts.durability.dir = dir;
    opts.durability.checkpoint_interval = 0;
    engine::StreamingEngine eng(g, team, opts);
    for (const std::vector<Edge>& batch : w.flushes) {
      for (const Edge& e : batch) eng.submit_insert(e.u, e.v);
      eng.flush_now();
    }
    eng.stop();
  }

  // Trash the payload of every checkpoint generation. Recovery must
  // fail closed — and it must be the SAME decision whichever verify
  // oracle was requested (the failure precedes step 4 here; the
  // doctored-core verify decision itself is unit-tested in
  // bulk_decompose_test via verify_recovered_cores).
  for (const fs::directory_entry& ent : fs::directory_iterator(dir)) {
    const std::string name = ent.path().filename().string();
    if (name.rfind("checkpoint-", 0) != 0) continue;
    std::fstream f(ent.path(), std::ios::in | std::ios::out |
                                   std::ios::binary);
    ASSERT_TRUE(f.is_open()) << name;
    f.seekp(16);
    const char junk[8] = {'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X'};
    f.write(junk, sizeof junk);
  }

  for (auto algo :
       {durability::VerifyAlgo::kBz, durability::VerifyAlgo::kParallel}) {
    RecoveryOptions opts;
    opts.dir = dir;
    opts.workers = 2;
    opts.verify_algo = algo;
    DynamicGraph g(1);
    ThreadTeam team(2);
    EXPECT_THROW(durability::recover(opts, g, team), std::runtime_error);
  }
}

TEST(Recovery, EmptyDirectoryFailsClosed) {
  const std::string dir = fresh_dir("no-checkpoints");
  fs::create_directories(dir);
  RecoveryOptions opts;
  opts.dir = dir;
  DynamicGraph g(1);
  ThreadTeam team(2);
  EXPECT_THROW(durability::recover(opts, g, team), std::runtime_error);
}

TEST(Recovery, RefusesToStartAFreshEngineOverHistory) {
  const std::string dir = fresh_dir("refuse-reuse");
  CrashWorkload w = crash_workload();
  DynamicGraph g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(2);
  engine::StreamingEngine::Options opts;
  opts.durability.dir = dir;
  { engine::StreamingEngine eng(g, team, opts); }
  DynamicGraph g2 = DynamicGraph::from_edges(w.n, w.base);
  EXPECT_THROW(engine::StreamingEngine(g2, team, opts), io::IoError);
}

// TSan coverage: checkpoints (graph walk + save_order at quiescence)
// racing concurrent snapshot()/stats() readers. checkpoint_interval=1
// checkpoints after every flush while readers hammer the query side.
TEST(Recovery, CheckpointRacesSnapshotAndStatsReaders) {
  const std::string dir = fresh_dir("tear-race");
  CrashWorkload w = crash_workload();
  DynamicGraph g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(4);
  engine::StreamingEngine::Options opts;
  opts.workers = 2;
  opts.durability.dir = dir;
  opts.durability.checkpoint_interval = 1;
  engine::StreamingEngine eng(g, team, opts);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sink{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::uint64_t acc = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = eng.snapshot();
        acc += snap->core(0) + snap->epoch;
        engine::EngineStats st = eng.stats();
        acc += st.durability.checkpoints + st.phases.checkpoint_us;
      }
      sink.fetch_add(acc, std::memory_order_relaxed);
    });
  }
  for (const std::vector<Edge>& batch : w.flushes) {
    for (const Edge& e : batch) eng.submit_insert(e.u, e.v);
    eng.flush_now();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  eng.stop();
  EXPECT_GE(eng.stats().durability.checkpoints, w.flushes.size());

  DynamicGraph rg(1);
  ThreadTeam rteam(2);
  RecoveryResult res;
  auto m = durability::recover(RecoveryOptions{dir, 2, true, {}}, rg, rteam,
                               &res);
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(res.verified);
  test::expect_cores_match(rg, m->cores(), "post-race recover");
}

}  // namespace
}  // namespace parcore
