// Defensive-behaviour tests: malformed inputs, degenerate graphs, and
// batches designed to hit skip paths everywhere.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "baseline/je.h"
#include "decomp/bz.h"
#include "durability/faults.h"
#include "durability/manager.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "engine/engine.h"
#include "gen/generators.h"
#include "io/checksum.h"
#include "io/io_error.h"
#include "io/pcg.h"
#include "maint/seq_order.h"
#include "maint/traversal.h"
#include "parallel/parallel_order.h"
#include "test_util.h"

namespace parcore {
namespace {

using test::Family;

TEST(FailureInjection, EmptyBatches) {
  auto g = test::make_graph(4, {{0, 1}, {1, 2}});
  ThreadTeam team(4);
  ParallelOrderMaintainer m(g, team);
  std::vector<Edge> empty;
  BatchResult ri = m.insert_batch(empty, 4);
  BatchResult rr = m.remove_batch(empty, 4);
  EXPECT_EQ(ri.applied, 0u);
  EXPECT_EQ(rr.applied, 0u);
  test::expect_cores_match(g, m.cores(), "empty");
}

TEST(FailureInjection, AllInvalidEdgesBatch) {
  auto g = test::make_graph(4, {{0, 1}, {1, 2}});
  ThreadTeam team(4);
  ParallelOrderMaintainer m(g, team);
  std::vector<Edge> bad{{0, 0}, {1, 1}, {9, 10}, {0, 99}, {0, 1}};
  BatchResult r = m.insert_batch(bad, 4);
  EXPECT_EQ(r.applied, 0u);
  EXPECT_EQ(r.skipped, bad.size());
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(g, &err)) << err;
}

TEST(FailureInjection, RemoveBatchOfAbsentEdges) {
  auto g = test::make_graph(4, {{0, 1}});
  ThreadTeam team(4);
  ParallelOrderMaintainer m(g, team);
  std::vector<Edge> absent{{2, 3}, {0, 2}, {1, 3}, {0, 0}};
  BatchResult r = m.remove_batch(absent, 4);
  EXPECT_EQ(r.applied, 0u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(FailureInjection, BatchEntirelyDuplicatesOfOneEdge) {
  // Maximal same-pair contention: every worker fights for one edge.
  auto g = test::make_graph(4, {{0, 1}, {1, 2}});
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team);
  std::vector<Edge> dup(500, Edge{2, 3});
  BatchResult r = m.insert_batch(dup, 8);
  EXPECT_EQ(r.applied, 1u);
  EXPECT_EQ(r.skipped, 499u);
  test::expect_cores_match(g, m.cores(), "dup flood");
  BatchResult rr = m.remove_batch(dup, 8);
  EXPECT_EQ(rr.applied, 1u);
}

TEST(FailureInjection, SingleVertexAndEmptyGraphs) {
  DynamicGraph g1(1);
  ThreadTeam team(2);
  ParallelOrderMaintainer m1(g1, team);
  EXPECT_EQ(m1.core(0), 0);
  EXPECT_FALSE(m1.insert_edge(0, 0));

  DynamicGraph g0(0);
  ParallelOrderMaintainer m0(g0, team);
  std::vector<Edge> batch{{0, 1}};
  EXPECT_EQ(m0.insert_batch(batch, 2).applied, 0u);
}

TEST(FailureInjection, TwoVertexGraphLifecycle) {
  DynamicGraph g(2);
  ThreadTeam team(2);
  ParallelOrderMaintainer m(g, team);
  EXPECT_TRUE(m.insert_edge(0, 1));
  EXPECT_EQ(m.core(0), 1);
  EXPECT_TRUE(m.remove_edge(0, 1));
  EXPECT_EQ(m.core(0), 0);
  EXPECT_FALSE(m.remove_edge(0, 1));
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(g, &err)) << err;
}

TEST(FailureInjection, SequentialMaintainersRejectConsistently) {
  auto g1 = test::make_graph(3, {{0, 1}});
  auto g2 = test::make_graph(3, {{0, 1}});
  SeqOrderMaintainer seq(g1);
  TraversalMaintainer trav(g2);
  for (auto [u, v] : {std::pair<VertexId, VertexId>{0, 0},
                      {0, 1},    // duplicate
                      {0, 9},    // out of range
                      {7, 8}}) {
    EXPECT_EQ(seq.insert_edge(u, v), trav.insert_edge(u, v))
        << u << "," << v;
  }
}

TEST(FailureInjection, JeRejectsMalformedBatch) {
  auto g = test::make_graph(4, {{0, 1}, {1, 2}});
  ThreadTeam team(4);
  JeMaintainer m(g, team);
  std::vector<Edge> bad{{0, 0}, {9, 10}, {0, 1}, {2, 3}};
  EXPECT_EQ(m.insert_batch(bad, 4), 1u);  // only (2,3); (0,1) is a dup
  EXPECT_EQ(m.remove_batch(bad, 4), 2u);  // removes (0,1) and (2,3)
}

TEST(FailureInjection, RemoveEverythingTwice) {
  Rng rng(3);
  auto edges = gen_erdos_renyi(100, 300, rng);
  auto g = DynamicGraph::from_edges(100, edges);
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team);
  EXPECT_EQ(m.remove_batch(edges, 8).applied, edges.size());
  EXPECT_EQ(m.remove_batch(edges, 8).applied, 0u);
  for (VertexId v = 0; v < 100; ++v) EXPECT_EQ(m.core(v), 0);
  // And build it all back.
  EXPECT_EQ(m.insert_batch(edges, 8).applied, edges.size());
  test::expect_cores_match(g, m.cores(), "rebuilt");
}

TEST(FailureInjection, InterleavedDupAndValidEdges) {
  test::Workload w = test::make_workload(Family::kEr, 200, 0.3, 7);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team);
  // Triple every batch edge so workers race on duplicates constantly.
  std::vector<Edge> tripled;
  for (const Edge& e : w.batch) {
    tripled.push_back(e);
    tripled.push_back(Edge{e.v, e.u});
    tripled.push_back(e);
  }
  BatchResult r = m.insert_batch(tripled, 8);
  EXPECT_EQ(r.applied, w.batch.size());
  test::expect_cores_match(g, m.cores(), "tripled");
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(g, &err)) << err;
}

TEST(FailureInjection, MaxCoreGrowthThroughRepeatedCliques) {
  // Drive the level directory through repeated growth: build cliques of
  // increasing size on the same vertex set.
  DynamicGraph g(24);
  ThreadTeam team(4);
  ParallelOrderMaintainer m(g, team);
  for (std::size_t size = 3; size <= 24; size += 3) {
    std::vector<Edge> batch;
    for (VertexId u = 0; u < size; ++u)
      for (VertexId v = u + 1; v < size; ++v)
        if (!g.has_edge(u, v)) batch.push_back(Edge{u, v});
    m.insert_batch(batch, 4);
    test::expect_cores_match(g, m.cores(),
                             "clique " + std::to_string(size));
  }
  EXPECT_EQ(m.core(0), 23);
}

// ------------------------------------------------ durability corruption
//
// The WAL reader and checkpoint loader must fail CLOSED on anything
// that cannot be explained by a crash mid-append: a durability layer
// that guesses at corrupt bytes silently yields a wrong core index.
// Torn tails (the one artifact a crash legitimately leaves) must be
// tolerated, never thrown.

namespace fs = std::filesystem;

std::string fuzz_path(const std::string& name) {
  std::string p = ::testing::TempDir() + "parcore-fuzz-" + name;
  fs::remove_all(p);
  return p;
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Expects `fn` to throw io::IoError whose message contains `frag`.
template <typename Fn>
void expect_io_error(Fn fn, const std::string& frag, const char* context) {
  try {
    fn();
    FAIL() << context << ": expected IoError containing \"" << frag << "\"";
  } catch (const io::IoError& e) {
    EXPECT_NE(std::string(e.what()).find(frag), std::string::npos)
        << context << ": IoError message \"" << e.what()
        << "\" lacks \"" << frag << "\"";
  }
}

/// A WAL with three one-insert frames: header 32 B, frames of 32 B each
/// at offsets 32, 64, 96; total 128 B.
std::string three_frame_wal(const std::string& name) {
  const std::string path = fuzz_path(name);
  durability::WalWriter w = durability::WalWriter::create(path, 0, true);
  w.append(durability::WalRecord{1, {}, {{0, 1}}});
  w.append(durability::WalRecord{2, {}, {{1, 2}}});
  w.append(durability::WalRecord{3, {}, {{2, 3}}});
  w.close();
  return path;
}

TEST(DurabilityFuzz, WalEveryTruncationIsTornOrCleanNeverWrong) {
  const std::string path = three_frame_wal("wal-truncate");
  const std::vector<unsigned char> full = slurp(path);
  ASSERT_EQ(full.size(), 128u);
  // Cutting inside the header can only mean corruption.
  for (std::size_t cut : {0u, 1u, 17u, 31u}) {
    spit(path, {full.begin(), full.begin() + cut});
    expect_io_error([&] { durability::read_wal(path); }, "",
                    ("header cut " + std::to_string(cut)).c_str());
  }
  // Every cut past the header is a torn tail or a clean end: frames
  // before the cut are returned intact, nothing throws.
  for (std::size_t cut = 32; cut <= full.size(); ++cut) {
    spit(path, {full.begin(), full.begin() + cut});
    durability::WalReadResult r = durability::read_wal(path);
    const std::size_t complete = (cut - 32) / 32;
    const bool torn = (cut - 32) % 32 != 0;
    EXPECT_EQ(r.records.size(), complete) << "cut " << cut;
    EXPECT_EQ(r.torn_tail, torn) << "cut " << cut;
    if (torn) EXPECT_EQ(r.torn_offset, 32 + complete * 32) << "cut " << cut;
    for (std::size_t i = 0; i < r.records.size(); ++i)
      EXPECT_EQ(r.records[i].epoch, i + 1) << "cut " << cut;
  }
}

TEST(DurabilityFuzz, WalHeaderDefectsFailClosed) {
  const std::string path = three_frame_wal("wal-header");
  const std::vector<unsigned char> full = slurp(path);

  std::vector<unsigned char> bad = full;  // magic
  bad[0] ^= 0xFF;
  spit(path, bad);
  expect_io_error([&] { durability::read_wal(path); }, path, "bad magic");

  bad = full;  // base_epoch byte under the header CRC
  bad[10] ^= 0x01;
  spit(path, bad);
  expect_io_error([&] { durability::read_wal(path); }, "offset",
                  "flipped base_epoch");

  bad = full;  // reserved bytes are CRC'd too
  bad[20] ^= 0x40;
  spit(path, bad);
  expect_io_error([&] { durability::read_wal(path); }, "offset",
                  "flipped reserved byte");

  // A version bump with a RE-FORGED valid CRC must still be refused.
  bad = full;
  bad[4] = 99;
  const std::uint32_t crc = io::crc32(bad.data(), 28);
  bad[28] = static_cast<unsigned char>(crc);
  bad[29] = static_cast<unsigned char>(crc >> 8);
  bad[30] = static_cast<unsigned char>(crc >> 16);
  bad[31] = static_cast<unsigned char>(crc >> 24);
  spit(path, bad);
  expect_io_error([&] { durability::read_wal(path); }, "version",
                  "forged version");
}

TEST(DurabilityFuzz, WalFrameDefectsFailClosedWithOffset) {
  const std::string path = three_frame_wal("wal-frame");
  const std::vector<unsigned char> full = slurp(path);

  // Bit-flip one payload byte of frame 2 (offset 64): its CRC catches
  // it and the error names the frame's byte offset.
  std::vector<unsigned char> bad = full;
  bad[64 + 8 + 3] ^= 0x10;
  spit(path, bad);
  expect_io_error([&] { durability::read_wal(path); }, "offset 64",
                  "payload bit flip");

  // Flip the stored CRC itself.
  bad = full;
  bad[32 + 4] ^= 0x01;
  spit(path, bad);
  expect_io_error([&] { durability::read_wal(path); }, "offset 32",
                  "crc bit flip");

  // Impossible lengths: not 16 + 8k, and absurdly huge. Both precede
  // any body read, so even a length that points past EOF fails closed.
  bad = full;
  bad[96] = 20;  // (20 - 16) % 8 != 0
  spit(path, bad);
  expect_io_error([&] { durability::read_wal(path); }, "length",
                  "misaligned length");

  bad = full;
  bad[96] = 0xFF;  // len = 0xFFFFFFFF > 1 GiB cap
  bad[97] = 0xFF;
  bad[98] = 0xFF;
  bad[99] = 0xFF;
  spit(path, bad);
  expect_io_error([&] { durability::read_wal(path); }, "length",
                  "huge length");

  // >= 8 bytes of trailing garbage parses as a frame prefix with an
  // absurd length — corruption, not a torn tail.
  bad = full;
  bad.insert(bad.end(), 12, 0xFF);
  spit(path, bad);
  expect_io_error([&] { durability::read_wal(path); }, "length",
                  "trailing garbage");
}

TEST(DurabilityFuzz, WalEpochOrderIsEnforced) {
  // The writer does not police epochs (the engine owns that invariant);
  // the reader must.
  const std::string path = fuzz_path("wal-epoch-regress");
  {
    durability::WalWriter w = durability::WalWriter::create(path, 0, true);
    w.append(durability::WalRecord{5, {}, {{0, 1}}});
    w.append(durability::WalRecord{5, {}, {{1, 2}}});
    w.close();
  }
  expect_io_error([&] { durability::read_wal(path); }, "not after",
                  "repeated epoch");

  const std::string path2 = fuzz_path("wal-epoch-base");
  {
    durability::WalWriter w = durability::WalWriter::create(path2, 7, true);
    w.append(durability::WalRecord{7, {}, {{0, 1}}});
    w.close();
  }
  expect_io_error([&] { durability::read_wal(path2); }, "not after",
                  "epoch equals base");
}

TEST(DurabilityFuzz, CheckpointBitFlipsAndTruncationsFailClosed) {
  const std::string path = fuzz_path("ckpt-flip") + ".pcg";
  io::PcgCheckpoint ck;
  ck.epoch = 9;
  ck.num_vertices = 6;
  ck.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}};
  ck.core = {2, 2, 2, 2, 2, 2};
  ck.order = {0, 1, 2, 3, 4, 5};
  io::save_pcg_checkpoint(path, ck, false);
  const std::vector<unsigned char> full = slurp(path);
  ASSERT_GT(full.size(), 32u);

  // A single flipped bit anywhere must be caught by a section CRC (or
  // the magic/length checks) — sample offsets across the whole file.
  for (std::size_t off :
       {std::size_t{0}, std::size_t{5}, full.size() / 4, full.size() / 2,
        3 * full.size() / 4, full.size() - 1}) {
    std::vector<unsigned char> bad = full;
    bad[off] ^= 0x08;
    spit(path, bad);
    EXPECT_THROW(io::load_pcg_checkpoint(path), io::IoError)
        << "flip at " << off;
  }

  // Truncations at any depth fail closed — a checkpoint has no torn
  // tail concession (the atomic rename means a visible checkpoint was
  // written completely).
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, full.size() / 2,
                          full.size() - 1}) {
    spit(path, {full.begin(), full.begin() + cut});
    EXPECT_THROW(io::load_pcg_checkpoint(path), io::IoError)
        << "cut " << cut;
  }

  spit(path, full);
  io::PcgCheckpoint back = io::load_pcg_checkpoint(path);  // still intact
  EXPECT_EQ(back.epoch, 9u);
  EXPECT_EQ(back.edges.size(), 6u);
}

TEST(DurabilityFuzz, RecoverFallsBackToOlderGenerationOnCorruption) {
  const std::string dir = fuzz_path("ckpt-fallback");
  test::Workload wl = test::make_workload(test::Family::kEr, 40, 0.5, 23);
  {
    DynamicGraph g = DynamicGraph::from_edges(wl.n, wl.base);
    ThreadTeam team(2);
    engine::StreamingEngine::Options opts;
    opts.workers = 2;
    opts.durability.dir = dir;
    opts.durability.checkpoint_interval = 2;
    opts.durability.retain = 4;
    engine::StreamingEngine eng(g, team, opts);
    // Four flushes -> periodic checkpoints at epochs 2 and 4; no
    // shutdown checkpoint (nothing logged after epoch 4's).
    for (std::size_t i = 0; i < 4; ++i) {
      const std::size_t lo = i * wl.batch.size() / 4;
      const std::size_t hi = (i + 1) * wl.batch.size() / 4;
      for (std::size_t j = lo; j < hi; ++j)
        eng.submit_insert(wl.batch[j].u, wl.batch[j].v);
      eng.flush_now();
    }
    eng.stop();
  }
  ASSERT_EQ(durability::list_checkpoint_epochs(dir),
            (std::vector<std::uint64_t>{0, 2, 4}));

  // Corrupt the newest generation's checkpoint; recovery must skip it
  // and replay generation 2's WAL to the same final epoch.
  const std::string newest = durability::checkpoint_path(dir, 4);
  std::vector<unsigned char> bytes = slurp(newest);
  bytes[bytes.size() / 2] ^= 0x20;
  spit(newest, bytes);

  DynamicGraph g(1);
  ThreadTeam team(2);
  durability::RecoveryResult res;
  durability::RecoveryOptions opts;
  opts.dir = dir;
  opts.workers = 2;
  auto m = durability::recover(opts, g, team, &res);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(res.checkpoints_skipped, 1u);
  EXPECT_EQ(res.checkpoint_epoch, 2u);
  EXPECT_EQ(res.final_epoch, 4u);
  EXPECT_EQ(res.frames_replayed, 2u);
  EXPECT_TRUE(res.verified);
  test::expect_cores_match(g, m->cores(), "fallback generation");
}

// ------------------------------------------- durable-I/O fault points
//
// In-process fault injection (durability/faults.h): the armed syscall
// THROWS io::IoError instead of killing the process, and the engine's
// durable-I/O wrapper must absorb it — retry transient blips, truncate
// torn frames, degrade to memory-only under persistent failure — while
// the served cores stay differentially correct throughout.

/// Arms one fail point for the current scope and clears it (plus the
/// global hit counter) on exit, so tests can't leak faults into each
/// other.
struct FaultGuard {
  explicit FaultGuard(const char* at, int after = 1, int count = 0) {
    ::setenv("PARCORE_DURABILITY_FAIL_AT", at, 1);
    ::setenv("PARCORE_DURABILITY_FAIL_AFTER", std::to_string(after).c_str(),
             1);
    ::setenv("PARCORE_DURABILITY_FAIL_COUNT", std::to_string(count).c_str(),
             1);
    durability::reset_fail_points_for_test();
  }
  ~FaultGuard() { clear(); }
  static void clear() {
    ::unsetenv("PARCORE_DURABILITY_FAIL_AT");
    ::unsetenv("PARCORE_DURABILITY_FAIL_AFTER");
    ::unsetenv("PARCORE_DURABILITY_FAIL_COUNT");
    ::unsetenv("PARCORE_DURABILITY_FAIL_ERRNO");
    durability::reset_fail_points_for_test();
  }
};

std::string fault_dir(const std::string& name) {
  std::string d = ::testing::TempDir() + "parcore-fault-" + name;
  std::filesystem::remove_all(d);
  return d;
}

/// K16 edges split into a base graph plus six disjoint flush batches —
/// every flush logs one non-empty WAL frame.
struct FaultWorkload {
  std::size_t n = 16;
  std::vector<Edge> base;
  std::vector<std::vector<Edge>> flushes;
};

FaultWorkload fault_workload() {
  FaultWorkload w;
  std::vector<Edge> all;
  for (VertexId u = 0; u < 16; ++u)
    for (VertexId v = u + 1; v < 16; ++v) all.push_back(Edge{u, v});
  w.base.assign(all.begin(), all.begin() + 40);
  for (int b = 0; b < 6; ++b)
    w.flushes.emplace_back(all.begin() + 40 + b * 10,
                           all.begin() + 50 + b * 10);
  return w;
}

/// Runs the six-flush workload against `dir` with fast retries and
/// differentially verifies the SERVED cores against bz_decompose of
/// the full final graph — the engine must keep serving correct results
/// no matter what the durable path did. Returns the closing stats.
engine::EngineStats run_fault_workload(const std::string& dir,
                                       std::size_t checkpoint_interval = 0,
                                       double rearm_interval_ms = 0.0) {
  FaultWorkload w = fault_workload();
  DynamicGraph g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(2);
  engine::StreamingEngine::Options opts;
  opts.workers = 2;
  opts.durability.dir = dir;
  opts.durability.checkpoint_interval = checkpoint_interval;
  opts.durability.retry_backoff_ms = 0.0;  // keep the retry loop fast
  opts.durability.rearm_interval_ms = rearm_interval_ms;
  engine::StreamingEngine eng(g, team, opts);
  for (const std::vector<Edge>& batch : w.flushes) {
    for (const Edge& e : batch) eng.submit_insert(e.u, e.v);
    eng.flush_now();
  }
  const engine::EngineStats stats = eng.stats();
  auto snap = eng.snapshot();
  eng.stop();

  const Decomposition expect = bz_decompose(g);
  const std::vector<CoreValue> got = snap->materialize();
  EXPECT_EQ(got.size(), expect.core.size());
  for (VertexId v = 0; v < static_cast<VertexId>(w.n); ++v)
    EXPECT_EQ(got[v], expect.core[v]) << "served core diverged, vertex " << v;
  return stats;
}

TEST(DurableIoFaults, PersistentWalFailuresDegradeButKeepServing) {
  // Every WAL-side point, armed persistently: the retry budget is
  // exhausted, the engine degrades to memory-only, and serving
  // continues differentially correct. The engine must never terminate.
  for (const char* point : {"wal-append", "wal-append-short", "wal-fsync"}) {
    const std::string dir = fault_dir(std::string("persistent-") + point);
    FaultGuard guard(point, /*after=*/1, /*count=*/0);
    const engine::EngineStats stats = run_fault_workload(dir);
    EXPECT_TRUE(stats.durability_degraded) << point;
    EXPECT_GE(stats.durability_retries, 3u) << point;
    FaultGuard::clear();

    // The rollback path leaves no torn frame behind: the directory
    // still recovers cleanly to the pre-failure boundary.
    DynamicGraph rg(1);
    ThreadTeam rteam(2);
    durability::RecoveryResult res;
    durability::RecoveryOptions ropts;
    ropts.dir = dir;
    ropts.workers = 2;
    auto m = durability::recover(ropts, rg, rteam, &res);
    ASSERT_NE(m, nullptr) << point;
    EXPECT_FALSE(res.torn_tail) << point;
    EXPECT_TRUE(res.verified) << point;
    test::expect_cores_match(rg, m->cores(),
                             std::string("recover after ") + point);
  }
}

TEST(DurableIoFaults, PersistentCheckpointFailuresDegradeButKeepServing) {
  // Checkpoint-side points, armed on the first PERIODIC checkpoint
  // (hit 1 is the initial epoch-0 checkpoint, which must commit so the
  // run has a durable base generation).
  for (const char* point :
       {"wal-create", "checkpoint-write", "checkpoint-rename"}) {
    const std::string dir = fault_dir(std::string("persistent-") + point);
    FaultGuard guard(point, /*after=*/2, /*count=*/0);
    const engine::EngineStats stats =
        run_fault_workload(dir, /*checkpoint_interval=*/2);
    EXPECT_TRUE(stats.durability_degraded) << point;
    EXPECT_GE(stats.durability_retries, 3u) << point;
    FaultGuard::clear();

    // The failed generation's tmp/WAL leftovers were cleaned up (or the
    // rename never happened), so recovery lands on the last good
    // generation without skipping damage.
    DynamicGraph rg(1);
    ThreadTeam rteam(2);
    durability::RecoveryResult res;
    durability::RecoveryOptions ropts;
    ropts.dir = dir;
    ropts.workers = 2;
    auto m = durability::recover(ropts, rg, rteam, &res);
    ASSERT_NE(m, nullptr) << point;
    EXPECT_EQ(res.checkpoints_skipped, 0u) << point;
    EXPECT_TRUE(res.verified) << point;
    test::expect_cores_match(rg, m->cores(),
                             std::string("recover after ") + point);
  }
}

TEST(DurableIoFaults, TransientWalBlipIsAbsorbedByRetry) {
  // COUNT=1 models one ENOSPC blip: the first append attempt fails,
  // the retry lands, and the run stays fully durable end to end.
  const std::string dir = fault_dir("transient-append");
  FaultGuard guard("wal-append", /*after=*/1, /*count=*/1);
  const engine::EngineStats stats = run_fault_workload(dir);
  EXPECT_FALSE(stats.durability_degraded);
  EXPECT_GE(stats.durability_retries, 1u);
  FaultGuard::clear();

  // Nothing was lost: recovery reproduces the complete final graph.
  FaultWorkload w = fault_workload();
  DynamicGraph rg(1);
  ThreadTeam rteam(2);
  durability::RecoveryResult res;
  durability::RecoveryOptions ropts;
  ropts.dir = dir;
  ropts.workers = 2;
  auto m = durability::recover(ropts, rg, rteam, &res);
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(rg.num_edges(), 40u + 6u * 10u);
}

TEST(DurableIoFaults, ShortWriteTruncatesTornFrameThenRetrySucceeds) {
  // The injected short write leaves half a frame in the file; the
  // writer must ftruncate back to the last committed boundary before
  // the retry appends, so the WAL never accumulates garbage between
  // frames (which replay would reject as corruption, not a torn tail).
  const std::string dir = fault_dir("short-write");
  FaultGuard guard("wal-append-short", /*after=*/1, /*count=*/1);
  const engine::EngineStats stats = run_fault_workload(dir);
  EXPECT_FALSE(stats.durability_degraded);
  EXPECT_GE(stats.durability_retries, 1u);
  EXPECT_GE(stats.durability.wal_truncate_repairs, 1u);
  FaultGuard::clear();

  DynamicGraph rg(1);
  ThreadTeam rteam(2);
  durability::RecoveryResult res;
  durability::RecoveryOptions ropts;
  ropts.dir = dir;
  ropts.workers = 2;
  auto m = durability::recover(ropts, rg, rteam, &res);
  ASSERT_NE(m, nullptr);
  EXPECT_FALSE(res.torn_tail);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(rg.num_edges(), 40u + 6u * 10u);  // fully durable run
}

TEST(DurableIoFaults, DegradedEngineReArmsOnceTheFaultClears) {
  // Persistent failure degrades the engine mid-run; clearing the fault
  // lets the timer-based re-arm take a fresh full checkpoint and turn
  // durability back on without a restart.
  const std::string dir = fault_dir("rearm");
  FaultWorkload w = fault_workload();
  DynamicGraph g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(2);
  engine::StreamingEngine::Options opts;
  opts.workers = 2;
  opts.durability.dir = dir;
  opts.durability.retry_backoff_ms = 0.0;
  opts.durability.rearm_interval_ms = 1.0;
  engine::StreamingEngine eng(g, team, opts);

  {
    FaultGuard guard("wal-append", /*after=*/1, /*count=*/0);
    for (const Edge& e : w.flushes[0]) eng.submit_insert(e.u, e.v);
    eng.flush_now();
    // The 1ms re-arm interval can elapse inside this very flush on a
    // loaded machine, in which case the end-of-flush probe (a fresh
    // checkpoint, which the wal-append fault does not touch) has
    // already re-armed by the time we look. Either observation proves
    // the engine degraded instead of terminating.
    const engine::EngineStats mid = eng.stats();
    EXPECT_TRUE(mid.durability_degraded || mid.durability_rearms >= 1);
    EXPECT_GE(mid.durability_retries, 3u);
  }  // fault cleared here

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  for (std::size_t b = 1; b < w.flushes.size(); ++b) {
    for (const Edge& e : w.flushes[b]) eng.submit_insert(e.u, e.v);
    eng.flush_now();
  }
  const engine::EngineStats stats = eng.stats();
  EXPECT_FALSE(stats.durability_degraded);
  EXPECT_GE(stats.durability_rearms, 1u);
  eng.stop();

  // The re-armed generation plus its WAL tail reproduce the complete
  // final graph: nothing after the re-arm point was lost.
  DynamicGraph rg(1);
  ThreadTeam rteam(2);
  durability::RecoveryResult res;
  durability::RecoveryOptions ropts;
  ropts.dir = dir;
  ropts.workers = 2;
  auto m = durability::recover(ropts, rg, rteam, &res);
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(rg.num_edges(), 40u + 6u * 10u);
  test::expect_cores_match(rg, m->cores(), "recover after re-arm");
}

}  // namespace
}  // namespace parcore
