// Defensive-behaviour tests: malformed inputs, degenerate graphs, and
// batches designed to hit skip paths everywhere.
#include <gtest/gtest.h>

#include "baseline/je.h"
#include "gen/generators.h"
#include "maint/seq_order.h"
#include "maint/traversal.h"
#include "parallel/parallel_order.h"
#include "test_util.h"

namespace parcore {
namespace {

using test::Family;

TEST(FailureInjection, EmptyBatches) {
  auto g = test::make_graph(4, {{0, 1}, {1, 2}});
  ThreadTeam team(4);
  ParallelOrderMaintainer m(g, team);
  std::vector<Edge> empty;
  BatchResult ri = m.insert_batch(empty, 4);
  BatchResult rr = m.remove_batch(empty, 4);
  EXPECT_EQ(ri.applied, 0u);
  EXPECT_EQ(rr.applied, 0u);
  test::expect_cores_match(g, m.cores(), "empty");
}

TEST(FailureInjection, AllInvalidEdgesBatch) {
  auto g = test::make_graph(4, {{0, 1}, {1, 2}});
  ThreadTeam team(4);
  ParallelOrderMaintainer m(g, team);
  std::vector<Edge> bad{{0, 0}, {1, 1}, {9, 10}, {0, 99}, {0, 1}};
  BatchResult r = m.insert_batch(bad, 4);
  EXPECT_EQ(r.applied, 0u);
  EXPECT_EQ(r.skipped, bad.size());
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(g, &err)) << err;
}

TEST(FailureInjection, RemoveBatchOfAbsentEdges) {
  auto g = test::make_graph(4, {{0, 1}});
  ThreadTeam team(4);
  ParallelOrderMaintainer m(g, team);
  std::vector<Edge> absent{{2, 3}, {0, 2}, {1, 3}, {0, 0}};
  BatchResult r = m.remove_batch(absent, 4);
  EXPECT_EQ(r.applied, 0u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(FailureInjection, BatchEntirelyDuplicatesOfOneEdge) {
  // Maximal same-pair contention: every worker fights for one edge.
  auto g = test::make_graph(4, {{0, 1}, {1, 2}});
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team);
  std::vector<Edge> dup(500, Edge{2, 3});
  BatchResult r = m.insert_batch(dup, 8);
  EXPECT_EQ(r.applied, 1u);
  EXPECT_EQ(r.skipped, 499u);
  test::expect_cores_match(g, m.cores(), "dup flood");
  BatchResult rr = m.remove_batch(dup, 8);
  EXPECT_EQ(rr.applied, 1u);
}

TEST(FailureInjection, SingleVertexAndEmptyGraphs) {
  DynamicGraph g1(1);
  ThreadTeam team(2);
  ParallelOrderMaintainer m1(g1, team);
  EXPECT_EQ(m1.core(0), 0);
  EXPECT_FALSE(m1.insert_edge(0, 0));

  DynamicGraph g0(0);
  ParallelOrderMaintainer m0(g0, team);
  std::vector<Edge> batch{{0, 1}};
  EXPECT_EQ(m0.insert_batch(batch, 2).applied, 0u);
}

TEST(FailureInjection, TwoVertexGraphLifecycle) {
  DynamicGraph g(2);
  ThreadTeam team(2);
  ParallelOrderMaintainer m(g, team);
  EXPECT_TRUE(m.insert_edge(0, 1));
  EXPECT_EQ(m.core(0), 1);
  EXPECT_TRUE(m.remove_edge(0, 1));
  EXPECT_EQ(m.core(0), 0);
  EXPECT_FALSE(m.remove_edge(0, 1));
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(g, &err)) << err;
}

TEST(FailureInjection, SequentialMaintainersRejectConsistently) {
  auto g1 = test::make_graph(3, {{0, 1}});
  auto g2 = test::make_graph(3, {{0, 1}});
  SeqOrderMaintainer seq(g1);
  TraversalMaintainer trav(g2);
  for (auto [u, v] : {std::pair<VertexId, VertexId>{0, 0},
                      {0, 1},    // duplicate
                      {0, 9},    // out of range
                      {7, 8}}) {
    EXPECT_EQ(seq.insert_edge(u, v), trav.insert_edge(u, v))
        << u << "," << v;
  }
}

TEST(FailureInjection, JeRejectsMalformedBatch) {
  auto g = test::make_graph(4, {{0, 1}, {1, 2}});
  ThreadTeam team(4);
  JeMaintainer m(g, team);
  std::vector<Edge> bad{{0, 0}, {9, 10}, {0, 1}, {2, 3}};
  EXPECT_EQ(m.insert_batch(bad, 4), 1u);  // only (2,3); (0,1) is a dup
  EXPECT_EQ(m.remove_batch(bad, 4), 2u);  // removes (0,1) and (2,3)
}

TEST(FailureInjection, RemoveEverythingTwice) {
  Rng rng(3);
  auto edges = gen_erdos_renyi(100, 300, rng);
  auto g = DynamicGraph::from_edges(100, edges);
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team);
  EXPECT_EQ(m.remove_batch(edges, 8).applied, edges.size());
  EXPECT_EQ(m.remove_batch(edges, 8).applied, 0u);
  for (VertexId v = 0; v < 100; ++v) EXPECT_EQ(m.core(v), 0);
  // And build it all back.
  EXPECT_EQ(m.insert_batch(edges, 8).applied, edges.size());
  test::expect_cores_match(g, m.cores(), "rebuilt");
}

TEST(FailureInjection, InterleavedDupAndValidEdges) {
  test::Workload w = test::make_workload(Family::kEr, 200, 0.3, 7);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team);
  // Triple every batch edge so workers race on duplicates constantly.
  std::vector<Edge> tripled;
  for (const Edge& e : w.batch) {
    tripled.push_back(e);
    tripled.push_back(Edge{e.v, e.u});
    tripled.push_back(e);
  }
  BatchResult r = m.insert_batch(tripled, 8);
  EXPECT_EQ(r.applied, w.batch.size());
  test::expect_cores_match(g, m.cores(), "tripled");
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(g, &err)) << err;
}

TEST(FailureInjection, MaxCoreGrowthThroughRepeatedCliques) {
  // Drive the level directory through repeated growth: build cliques of
  // increasing size on the same vertex set.
  DynamicGraph g(24);
  ThreadTeam team(4);
  ParallelOrderMaintainer m(g, team);
  for (std::size_t size = 3; size <= 24; size += 3) {
    std::vector<Edge> batch;
    for (VertexId u = 0; u < size; ++u)
      for (VertexId v = u + 1; v < size; ++v)
        if (!g.has_edge(u, v)) batch.push_back(Edge{u, v});
    m.insert_batch(batch, 4);
    test::expect_cores_match(g, m.cores(),
                             "clique " + std::to_string(size));
  }
  EXPECT_EQ(m.core(0), 23);
}

}  // namespace
}  // namespace parcore
