// Vertex-level update APIs (paper §3.2: vertex insertion/removal as
// edge-batch sequences).
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "parallel/parallel_order.h"
#include "test_util.h"

namespace parcore {
namespace {

using test::Family;

TEST(VertexOps, DetachIsolatesVertex) {
  auto g = test::make_graph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  ThreadTeam team(2);
  ParallelOrderMaintainer m(g, team);
  EXPECT_EQ(m.detach_vertex(2, 2), 3u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(m.core(2), 0);
  test::expect_cores_match(g, m.cores(), "detach");
}

TEST(VertexOps, DetachOutOfRangeIsNoop) {
  auto g = test::make_graph(3, {{0, 1}});
  ThreadTeam team(2);
  ParallelOrderMaintainer m(g, team);
  EXPECT_EQ(m.detach_vertex(17, 2), 0u);
}

TEST(VertexOps, DetachIsolatedVertexIsNoop) {
  auto g = test::make_graph(3, {{0, 1}});
  ThreadTeam team(2);
  ParallelOrderMaintainer m(g, team);
  EXPECT_EQ(m.detach_vertex(2, 2), 0u);
  EXPECT_EQ(m.core(2), 0);
}

TEST(VertexOps, AttachJoinsCommunity) {
  // Vertex 4 starts isolated; attaching it to a triangle makes it core 2
  // only if it gets >= 2 edges into the 2-core.
  auto g = test::make_graph(5, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  ThreadTeam team(2);
  ParallelOrderMaintainer m(g, team);
  std::vector<VertexId> nbrs{0, 1, 2};
  EXPECT_EQ(m.attach_vertex(4, nbrs, 2), 3u);
  EXPECT_EQ(m.core(4), 3);  // K4 now
  test::expect_cores_match(g, m.cores(), "attach");
}

TEST(VertexOps, AttachSkipsSelfAndDuplicates) {
  auto g = test::make_graph(4, {{0, 1}, {2, 3}});
  ThreadTeam team(2);
  ParallelOrderMaintainer m(g, team);
  std::vector<VertexId> nbrs{0, 0, 2, 2};
  EXPECT_EQ(m.attach_vertex(0, nbrs, 2), 1u);  // only (0,2) applies
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(VertexOps, DetachThenReattachRestoresCores) {
  test::Workload w = test::make_workload(Family::kRmat, 300, 0.0, 42);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(4);
  ParallelOrderMaintainer m(g, team);
  auto before = m.cores();

  const VertexId target = 5;
  std::vector<VertexId> saved(g.neighbors(target).begin(),
                              g.neighbors(target).end());
  const std::size_t removed = m.detach_vertex(target, 4);
  EXPECT_EQ(removed, saved.size());
  EXPECT_EQ(m.core(target), 0);
  test::expect_cores_match(g, m.cores(), "after detach");

  EXPECT_EQ(m.attach_vertex(target, saved, 4), saved.size());
  EXPECT_EQ(m.cores(), before);
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(g, &err)) << err;
}

TEST(VertexOps, HubRemovalCascades) {
  // Removing the hub of a wheel graph drops the rim from core 3 to 2.
  std::vector<Edge> edges = gen_cycle(8);
  for (VertexId v = 0; v < 8; ++v) edges.push_back(Edge{8, v});
  auto g = DynamicGraph::from_edges(9, edges);
  ThreadTeam team(4);
  ParallelOrderMaintainer m(g, team);
  ASSERT_EQ(m.core(8), 3);
  ASSERT_EQ(m.core(0), 3);
  EXPECT_EQ(m.detach_vertex(8, 4), 8u);
  EXPECT_EQ(m.core(8), 0);
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(m.core(v), 2);
  test::expect_cores_match(g, m.cores(), "wheel");
}

}  // namespace
}  // namespace parcore
