// Admission-control semantics of the bounded ingest queue: FIFO and
// accounting invariants carried over from the unbounded queue, plus the
// cap/policy behaviours (shed / block / degrade) under racing
// producers, and the engine-level differential check that a shed run's
// accepted subset still decomposes correctly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "decomp/bz.h"
#include "engine/engine.h"
#include "engine/ingest.h"
#include "gen/stream_adapter.h"
#include "graph/dynamic_graph.h"
#include "test_util.h"

namespace parcore {
namespace {

using engine::IngestQueue;
using engine::OverloadPolicy;
using engine::PushResult;
using engine::StreamingEngine;

GraphUpdate ins(VertexId u, VertexId v) {
  return GraphUpdate{Edge{u, v}, UpdateKind::kInsert};
}
GraphUpdate rem(VertexId u, VertexId v) {
  return GraphUpdate{Edge{u, v}, UpdateKind::kRemove};
}

IngestQueue::Options bounded(std::size_t cap, OverloadPolicy p,
                             std::size_t shards = 8) {
  IngestQueue::Options o;
  o.shards = shards;
  o.cap = cap;
  o.policy = p;
  return o;
}

// ------------------------------------------------- unbounded invariants

TEST(IngestCap, UncontendedBoundedQueueBehavesLikeUnbounded) {
  // Below the cap every policy is the fast path: FIFO per producer,
  // exact size accounting, drain empties.
  IngestQueue q(bounded(10000, OverloadPolicy::kBlock));
  for (VertexId i = 0; i < 1000; ++i) {
    const PushResult r = q.push(ins(i, i + 1));
    EXPECT_TRUE(r.accepted);
    EXPECT_EQ(r.prev, static_cast<std::size_t>(i));
    EXPECT_EQ(r.blocked_us, 0u);
  }
  EXPECT_EQ(q.approx_size(), 1000u);
  std::vector<GraphUpdate> out;
  EXPECT_EQ(q.drain(out), 1000u);
  ASSERT_EQ(out.size(), 1000u);
  for (VertexId i = 0; i < 1000; ++i) EXPECT_EQ(out[i].e.u, i);
  EXPECT_EQ(q.approx_size(), 0u);
  out.clear();
  EXPECT_EQ(q.drain(out), 0u);
  const auto adm = q.admission();
  EXPECT_EQ(adm.shed, 0u);
  EXPECT_EQ(adm.block_waits, 0u);
  EXPECT_EQ(adm.compacted, 0u);
}

// --------------------------------------------------------------- shed

TEST(IngestCap, ShedRejectsAtCapAndAccountsExactly) {
  IngestQueue q(bounded(16, OverloadPolicy::kShed));
  std::size_t accepted = 0, shed = 0;
  for (VertexId i = 0; i < 100; ++i) {
    if (q.push(ins(i, i + 1)).accepted)
      ++accepted;
    else
      ++shed;
  }
  // Single producer: the cap is exact, not just soft.
  EXPECT_EQ(accepted, 16u);
  EXPECT_EQ(shed, 84u);
  EXPECT_EQ(q.admission().shed, 84u);
  std::vector<GraphUpdate> out;
  EXPECT_EQ(q.drain(out), accepted);
  // The queue drained below the cap, so pushes are admitted again.
  EXPECT_TRUE(q.push(ins(0, 1)).accepted);
}

TEST(IngestCap, ShedUnderRacingProducersLosesOnlyWhatItReports) {
  constexpr int kThreads = 8, kPer = 4000;
  constexpr std::size_t kCap = 64;
  IngestQueue q(bounded(kCap, OverloadPolicy::kShed));
  std::atomic<std::size_t> accepted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&q, &accepted, t] {
      std::size_t mine = 0;
      for (int i = 0; i < kPer; ++i)
        if (q.push(ins(static_cast<VertexId>(t),
                       static_cast<VertexId>(i + 100)))
                .accepted)
          ++mine;
      accepted.fetch_add(mine);
    });
  for (auto& th : threads) th.join();
  // No consumer ran, so everything accepted is still buffered: the cap
  // is a soft bound with overshoot at most one per racing producer.
  std::vector<GraphUpdate> out;
  const std::size_t drained = q.drain(out);
  EXPECT_EQ(drained, accepted.load());
  EXPECT_LE(drained, kCap + kThreads);
  EXPECT_EQ(accepted.load() + q.admission().shed,
            static_cast<std::size_t>(kThreads) * kPer);
}

// -------------------------------------------------------------- block

TEST(IngestCap, BlockParksProducerUntilDrain) {
  IngestQueue q(bounded(8, OverloadPolicy::kBlock));
  for (VertexId i = 0; i < 8; ++i) q.push(ins(i, i + 1));

  std::atomic<bool> done{false};
  PushResult blocked{};
  std::thread producer([&q, &done, &blocked] {
    blocked = q.push(ins(100, 101));
    done.store(true);
  });
  // The producer must be parked: the queue is at cap and nothing has
  // drained. Give it long enough that a broken non-blocking push would
  // certainly have finished.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(done.load());

  std::vector<GraphUpdate> out;
  EXPECT_EQ(q.drain(out), 8u);
  producer.join();
  EXPECT_TRUE(done.load());
  EXPECT_TRUE(blocked.accepted);
  EXPECT_GT(blocked.blocked_us, 0u);
  const auto adm = q.admission();
  EXPECT_GE(adm.block_waits, 1u);
  EXPECT_GT(adm.blocked_us, 0u);
  out.clear();
  EXPECT_EQ(q.drain(out), 1u);  // the formerly blocked push landed
}

TEST(IngestCap, CloseReleasesBlockedProducers) {
  IngestQueue q(bounded(4, OverloadPolicy::kBlock));
  for (VertexId i = 0; i < 4; ++i) q.push(ins(i, i + 1));
  std::thread producer([&q] {
    // Admitted despite the cap: close() disables admission so shutdown
    // stragglers cannot deadlock against a stopped scheduler.
    EXPECT_TRUE(q.push(ins(50, 51)).accepted);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  std::vector<GraphUpdate> out;
  EXPECT_EQ(q.drain(out), 5u);
  q.open();
  EXPECT_FALSE(q.closed());
}

TEST(IngestCap, BlockWithConsumerDeliversEverything) {
  constexpr int kThreads = 8, kPer = 3000;
  IngestQueue q(bounded(32, OverloadPolicy::kBlock));
  std::atomic<int> running{kThreads};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&q, &running, t] {
      for (int i = 0; i < kPer; ++i)
        EXPECT_TRUE(q.push(ins(static_cast<VertexId>(t),
                               static_cast<VertexId>(i + 100)))
                        .accepted);
      running.fetch_sub(1);
    });
  std::vector<GraphUpdate> out;
  while (running.load() > 0) q.drain(out);
  for (auto& th : threads) th.join();
  q.drain(out);
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kThreads) * kPer);
  EXPECT_EQ(q.admission().shed, 0u);
}

// ------------------------------------------------------------ degrade

TEST(IngestCap, DegradeCompactionKeepsLastOpPerEdge) {
  // Single producer, duplicate-heavy: alternate insert/remove on a
  // small edge set far past the cap. Compaction must keep exactly the
  // last op of each edge, in order.
  IngestQueue q(bounded(8, OverloadPolicy::kDegrade, 1));
  constexpr VertexId kEdges = 6;
  constexpr int kRounds = 500;
  for (int r = 0; r < kRounds; ++r)
    for (VertexId e = 0; e < kEdges; ++e) {
      const bool insert = (r + e) % 2 == 0;
      EXPECT_TRUE(
          (insert ? q.push(ins(e, e + 100)) : q.push(rem(e, e + 100)))
              .accepted);
    }
  // Everything redundant was compacted away up to the amortization
  // floor: the shard re-compacts once it doubles past the survivor
  // count, so occupancy stays within 2x distinct + O(1).
  EXPECT_LE(q.approx_size(), 2u * kEdges + 17);
  EXPECT_GT(q.admission().compacted, 0u);
  std::vector<GraphUpdate> out;
  q.drain(out);
  std::unordered_map<VertexId, UpdateKind> last;
  for (const GraphUpdate& u : out) last[u.e.u] = u.kind;
  ASSERT_EQ(last.size(), static_cast<std::size_t>(kEdges));
  for (VertexId e = 0; e < kEdges; ++e) {
    // Final round is r = kRounds - 1 (odd): edge e last saw an insert
    // iff (kRounds - 1 + e) is even.
    const bool expect_insert = (kRounds - 1 + e) % 2 == 0;
    EXPECT_EQ(last[e] == UpdateKind::kInsert, expect_insert) << "edge " << e;
  }
}

TEST(IngestCap, DegradeUnderRacingProducersBoundsDuplicateHeavyStreams) {
  // 8 producers, disjoint edge sets, duplicate-heavy. No consumer runs,
  // yet occupancy stays near the number of distinct edges because every
  // at-cap push first compacts its own shard.
  constexpr int kThreads = 8, kPer = 8, kRounds = 2000;
  constexpr std::size_t kCap = 64;
  IngestQueue q(bounded(kCap, OverloadPolicy::kDegrade));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&q, t] {
      const VertexId base = static_cast<VertexId>(t) * 1000;
      for (int r = 0; r < kRounds; ++r)
        for (int e = 0; e < kPer; ++e) {
          const VertexId u = base + static_cast<VertexId>(e);
          const bool insert = (r + e) % 2 == 0;
          EXPECT_TRUE((insert ? q.push(ins(u, u + 100))
                              : q.push(rem(u, u + 100)))
                          .accepted);
        }
    });
  for (auto& th : threads) th.join();
  const std::size_t distinct = static_cast<std::size_t>(kThreads) * kPer;
  // Occupancy bound, not exactness: compaction is amortized (a shard
  // re-compacts after doubling past its survivor floor), duplicates
  // accumulate freely while the queue dips under its cap, and a
  // producer that finishes during such a dip leaves its shard's dups
  // for no one to compact. The ceiling is still a small constant
  // multiple of the distinct count — far below the 128k ops pushed.
  EXPECT_LE(q.approx_size(), 2 * distinct + 16 * 8 + kCap + 2 * kThreads);
  EXPECT_GT(q.admission().compacted, 0u);
  EXPECT_EQ(q.admission().shed, 0u);

  // Per-producer last-op-wins survives compaction: edges are disjoint
  // across producers, so each edge's expected final op is determined by
  // its own producer's (FIFO) stream.
  std::vector<GraphUpdate> out;
  q.drain(out);
  std::unordered_map<VertexId, UpdateKind> last;
  for (const GraphUpdate& u : out) last[u.e.u] = u.kind;
  ASSERT_EQ(last.size(), distinct);
  for (int t = 0; t < kThreads; ++t)
    for (int e = 0; e < kPer; ++e) {
      const VertexId u = static_cast<VertexId>(t) * 1000 +
                         static_cast<VertexId>(e);
      const bool expect_insert = (kRounds - 1 + e) % 2 == 0;
      EXPECT_EQ(last[u] == UpdateKind::kInsert, expect_insert)
          << "producer " << t << " edge " << e;
    }
}

// --------------------------------------- engine-level shed differential

TEST(IngestCap, EngineShedAcceptedSubsetIsDifferentiallyCorrect) {
  // Overdrive a tiny engine with shed admission, record exactly which
  // submits were accepted, and check the served cores against a fresh
  // bz_decompose of the accepted subset's replay. Streams are
  // partitioned by edge, so each edge's op order lives inside one
  // producer and the accepted-subset graph is deterministic
  // (per-producer FIFO + drain-order coalescing).
  constexpr std::size_t kN = 64;
  constexpr int kProducers = 4;
  std::vector<GraphUpdate> ops;
  Rng rng(0xadu);
  for (int i = 0; i < 20000; ++i) {
    const VertexId u = static_cast<VertexId>(rng.bounded(kN));
    VertexId v = static_cast<VertexId>(rng.bounded(kN));
    if (u == v) v = (v + 1) % kN;
    ops.push_back(rng.bounded(4) == 0 ? rem(u, v) : ins(u, v));
  }
  const auto streams =
      partition_updates_by_edge(ops, static_cast<std::size_t>(kProducers));

  StreamingEngine::Options opts;
  opts.workers = 2;
  opts.flush_threshold = 64;
  opts.ingest_cap = 128;
  opts.overload = OverloadPolicy::kShed;
  DynamicGraph g(kN);
  ThreadTeam team(4);
  StreamingEngine eng(g, team, opts);
  eng.start();

  std::vector<std::vector<GraphUpdate>> accepted(streams.size());
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < streams.size(); ++t)
    threads.emplace_back([&eng, &streams, &accepted, t] {
      for (const GraphUpdate& u : streams[t])
        if (eng.submit(u).accepted) accepted[t].push_back(u);
    });
  for (auto& th : threads) th.join();
  eng.stop();

  // Replay the accepted subset per producer; disjoint edge ownership
  // makes the union order-independent across producers.
  std::unordered_set<std::uint64_t> edges;
  for (const auto& s : accepted)
    for (const GraphUpdate& u : s) {
      if (u.kind == UpdateKind::kInsert)
        edges.insert(edge_key(u.e));
      else
        edges.erase(edge_key(u.e));
    }
  std::vector<Edge> final_edges;
  for (const auto& s : accepted)
    for (const GraphUpdate& u : s)
      if (edges.count(edge_key(u.e)) != 0) {
        final_edges.push_back(canonical(u.e));
        edges.erase(edge_key(u.e));
      }
  DynamicGraph fresh = DynamicGraph::from_edges(kN, final_edges);
  const Decomposition expect = bz_decompose(fresh);
  auto snap = eng.snapshot();
  ASSERT_EQ(fresh.num_edges(), g.num_edges());
  const std::vector<CoreValue> got = snap->materialize();
  for (VertexId v = 0; v < static_cast<VertexId>(kN); ++v)
    ASSERT_EQ(got[v], expect.core[v]) << "vertex " << v;

  const auto adm = eng.stats().admission;
  EXPECT_GT(adm.shed, 0u) << "test should actually overload the engine";
}

}  // namespace
}  // namespace parcore
