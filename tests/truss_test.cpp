#include <gtest/gtest.h>

#include <tuple>

#include "decomp/truss.h"
#include "gen/generators.h"
#include "test_util.h"

namespace parcore {
namespace {

using test::Family;

TEST(Truss, TriangleIsThreeTruss) {
  auto g = test::make_graph(3, {{0, 1}, {1, 2}, {0, 2}});
  TrussDecomposition d = truss_decompose(g);
  EXPECT_EQ(d.max_truss, 3);
  for (CoreValue t : d.trussness) EXPECT_EQ(t, 3);
}

TEST(Truss, TreeIsTwoTruss) {
  auto g = test::make_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  TrussDecomposition d = truss_decompose(g);
  EXPECT_EQ(d.max_truss, 2);
  for (CoreValue t : d.trussness) EXPECT_EQ(t, 2);
}

TEST(Truss, CliqueIsNTruss) {
  auto g = DynamicGraph::from_edges(6, gen_clique(6));
  TrussDecomposition d = truss_decompose(g);
  EXPECT_EQ(d.max_truss, 6);  // K_n is an n-truss
  for (CoreValue t : d.trussness) EXPECT_EQ(t, 6);
}

TEST(Truss, MixedStructure) {
  // Clique K4 on {0..3} plus a pendant triangle {3,4,5}.
  auto g = test::make_graph(
      6, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
          {3, 4}, {4, 5}, {3, 5}});
  TrussDecomposition d = truss_decompose(g);
  EXPECT_EQ(d.of(Edge{0, 1}), 4);
  EXPECT_EQ(d.of(Edge{2, 3}), 4);
  EXPECT_EQ(d.of(Edge{3, 4}), 3);
  EXPECT_EQ(d.of(Edge{4, 5}), 3);
  EXPECT_EQ(d.of(Edge{0, 5}), 0);  // absent edge
  EXPECT_EQ(d.max_truss, 4);
}

TEST(Truss, EmptyGraph) {
  DynamicGraph g(4);
  TrussDecomposition d = truss_decompose(g);
  EXPECT_EQ(d.max_truss, 0);
  EXPECT_TRUE(d.edges.empty());
}

class TrussSweep
    : public ::testing::TestWithParam<std::tuple<Family, std::uint64_t>> {};

TEST_P(TrussSweep, MatchesBruteForce) {
  auto [family, seed] = GetParam();
  Rng rng(seed);
  auto edges = test::family_edges(family, 80, rng);
  std::size_t max_v = 80;
  for (const Edge& e : edges)
    max_v = std::max<std::size_t>(max_v, std::max(e.u, e.v) + 1);
  auto g = DynamicGraph::from_edges(max_v, edges);
  TrussDecomposition fast = truss_decompose(g);
  TrussDecomposition slow = brute_force_truss(g);
  ASSERT_EQ(fast.edges.size(), slow.edges.size());
  for (const Edge& e : fast.edges)
    EXPECT_EQ(fast.of(e), slow.of(e))
        << "edge " << e.u << "-" << e.v;
}

INSTANTIATE_TEST_SUITE_P(
    Families, TrussSweep,
    ::testing::Combine(::testing::Values(Family::kEr, Family::kBa,
                                         Family::kRmat, Family::kClique),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return std::string(test::family_name(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Truss, TrussnessBoundedByCorePlusOne) {
  // Theory: truss(e) <= min(core(u), core(v)) + 1 for e = (u,v).
  Rng rng(11);
  auto g = DynamicGraph::from_edges(300, gen_rmat(9, 1200, RmatParams{}, rng));
  TrussDecomposition d = truss_decompose(g);
  auto cores = brute_force_cores(g);
  for (std::size_t i = 0; i < d.edges.size(); ++i) {
    const Edge e = d.edges[i];
    EXPECT_LE(d.trussness[i], std::min(cores[e.u], cores[e.v]) + 1);
  }
}

}  // namespace
}  // namespace parcore
