// Differential + stress tests for Parallel-Order edge insertion (OurI).
#include <gtest/gtest.h>

#include <tuple>

#include "gen/generators.h"
#include "graph/edge_list.h"
#include "maint/seq_order.h"
#include "parallel/parallel_order.h"
#include "test_util.h"

namespace parcore {
namespace {

using test::Family;

void expect_state_ok(ParallelOrderMaintainer& m, const std::string& ctx) {
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(m.graph(), &err)) << ctx << ": "
                                                           << err;
}

TEST(ParallelInsert, SingleEdgeBehavesLikeSequential) {
  auto g = test::make_graph(3, {{0, 1}, {1, 2}});
  ThreadTeam team(2);
  ParallelOrderMaintainer m(g, team);
  ASSERT_TRUE(m.insert_edge(0, 2));
  EXPECT_EQ(m.core(0), 2);
  EXPECT_EQ(m.core(1), 2);
  EXPECT_EQ(m.core(2), 2);
  expect_state_ok(m, "triangle");
}

TEST(ParallelInsert, RejectsBadAndDuplicateEdges) {
  auto g = test::make_graph(3, {{0, 1}});
  ThreadTeam team(2);
  ParallelOrderMaintainer m(g, team);
  EXPECT_FALSE(m.insert_edge(0, 0));
  EXPECT_FALSE(m.insert_edge(0, 1));
  EXPECT_FALSE(m.insert_edge(5, 6));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(ParallelInsert, DuplicatesWithinBatchAppliedOnce) {
  auto g = test::make_graph(4, {{0, 1}});
  ThreadTeam team(4);
  ParallelOrderMaintainer m(g, team);
  std::vector<Edge> batch{{1, 2}, {2, 1}, {1, 2}, {2, 3}, {3, 2}};
  BatchResult r = m.insert_batch(batch, 4);
  EXPECT_EQ(r.applied, 2u);
  EXPECT_EQ(r.skipped, 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  test::expect_cores_match(g, m.cores(), "dups");
}

TEST(ParallelInsert, RaisesMaxCoreLevel) {
  // Completing a clique pushes cores past the initial max level.
  DynamicGraph g(6);
  auto edges = gen_clique(6);
  ThreadTeam team(4);
  ParallelOrderMaintainer m(g, team);
  BatchResult r = m.insert_batch(edges, 4);
  EXPECT_EQ(r.applied, edges.size());
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(m.core(v), 5);
  expect_state_ok(m, "clique-from-empty");
}

class ParallelInsertSweep
    : public ::testing::TestWithParam<std::tuple<Family, int, std::uint64_t>> {
};

TEST_P(ParallelInsertSweep, BatchMatchesBruteForce) {
  auto [family, workers, seed] = GetParam();
  test::Workload w = test::make_workload(family, 500, 0.3, seed);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(workers);
  ParallelOrderMaintainer m(g, team);
  BatchResult r = m.insert_batch(w.batch, workers);
  EXPECT_EQ(r.applied, w.batch.size());
  test::expect_cores_match(g, m.cores(), "parallel insert");
  expect_state_ok(m, "parallel insert");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelInsertSweep,
    ::testing::Combine(::testing::Values(Family::kEr, Family::kBa,
                                         Family::kRmat, Family::kPath),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1u, 2u)),
    [](const auto& info) {
      return std::string(test::family_name(std::get<0>(info.param))) + "_w" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(ParallelInsert, AgreesWithSequentialOrderMaintainer) {
  test::Workload w = test::make_workload(Family::kRmat, 400, 0.25, 99);
  auto g1 = DynamicGraph::from_edges(w.n, w.base);
  auto g2 = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(4);
  ParallelOrderMaintainer par(g1, team);
  SeqOrderMaintainer seq(g2);
  par.insert_batch(w.batch, 4);
  seq.insert_batch(w.batch);
  EXPECT_EQ(par.cores(), seq.cores());
}

TEST(ParallelInsert, SameSubcoreContention) {
  // A single dense subcore: every insertion lands in the same k-order
  // list, maximising lock contention along one O_k (the case prior
  // parallel algorithms cannot parallelise at all).
  Rng rng(123);
  auto base = gen_barabasi_albert(400, 4, rng);
  auto g = DynamicGraph::from_edges(400, base);
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team);
  std::vector<Edge> batch;
  for (int i = 0; batch.size() < 300 && i < 20000; ++i) {
    Edge e{static_cast<VertexId>(rng.bounded(400)),
           static_cast<VertexId>(rng.bounded(400))};
    if (e.u != e.v && !g.has_edge(e.u, e.v)) {
      bool dup = false;
      for (const Edge& x : batch)
        if (edge_key(x) == edge_key(e)) dup = true;
      if (!dup) batch.push_back(e);
    }
  }
  BatchResult r = m.insert_batch(batch, 8);
  EXPECT_EQ(r.applied, batch.size());
  test::expect_cores_match(g, m.cores(), "contention");
  expect_state_ok(m, "contention");
}

TEST(ParallelInsert, StaticPartitionMatches) {
  test::Workload w = test::make_workload(Family::kEr, 400, 0.3, 7);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(4);
  ParallelOrderMaintainer::Options opts;
  opts.schedule = ScheduleMode::kStatic;  // paper's Algorithm 5 partitioning
  ParallelOrderMaintainer m(g, team, opts);
  m.insert_batch(w.batch, 4);
  test::expect_cores_match(g, m.cores(), "static partition");
}

TEST(ParallelInsert, CollectStatsHistogramsCover) {
  test::Workload w = test::make_workload(Family::kBa, 300, 0.2, 11);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(4);
  ParallelOrderMaintainer::Options opts;
  opts.collect_stats = true;
  ParallelOrderMaintainer m(g, team, opts);
  m.insert_batch(w.batch, 4);
  EXPECT_EQ(m.insert_vplus_histogram().total(), w.batch.size());
  EXPECT_EQ(m.insert_vstar_histogram().total(), w.batch.size());
}

TEST(ParallelInsert, RepeatedBatchesStayConsistent) {
  test::Workload w = test::make_workload(Family::kRmat, 600, 0.4, 31);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team);
  auto parts = split_batches(w.batch, 4);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    m.insert_batch(parts[i], 8);
    test::expect_cores_match(g, m.cores(), "chunk " + std::to_string(i));
    expect_state_ok(m, "chunk " + std::to_string(i));
  }
}

}  // namespace
}  // namespace parcore
