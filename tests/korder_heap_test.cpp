#include <gtest/gtest.h>

#include "maint/core_state.h"
#include "parallel/korder_heap.h"
#include "test_util.h"

namespace parcore {
namespace {

/// Builds a path graph: all vertices core 1, O_1 = peel order.
class KOrderHeapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = test::make_graph(8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
                              {5, 6}, {6, 7}});
    state_.initialize(g_);
    list_ = state_.levels().get(1);
    ASSERT_NE(list_, nullptr);
  }

  DynamicGraph g_;
  CoreState state_;
  OrderList* list_ = nullptr;
};

TEST_F(KOrderHeapTest, DequeueFollowsKOrder) {
  KOrderHeap q;
  q.reset(list_, &state_);
  // Enqueue in scrambled order; dequeue must follow O_1.
  std::vector<VertexId> scrambled{5, 1, 7, 3};
  for (VertexId v : scrambled) q.enqueue(v);
  std::vector<VertexId> order;
  for (;;) {
    VertexId v = q.dequeue(1);
    if (v == kInvalidVertex) break;
    order.push_back(v);
    state_.lock(v).unlock();
  }
  ASSERT_EQ(order.size(), 4u);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_TRUE(state_.precedes_stable(order[i - 1], order[i]));
}

TEST_F(KOrderHeapTest, DuplicateEnqueueIgnored) {
  KOrderHeap q;
  q.reset(list_, &state_);
  q.enqueue(3);
  q.enqueue(3);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.contains(3));
  VertexId v = q.dequeue(1);
  EXPECT_EQ(v, 3u);
  state_.lock(v).unlock();
  EXPECT_EQ(q.dequeue(1), kInvalidVertex);
}

TEST_F(KOrderHeapTest, SkipsVerticesWithWrongCore) {
  KOrderHeap q;
  q.reset(list_, &state_);
  q.enqueue(2);
  q.enqueue(4);
  // Simulate another worker promoting 2 past this level.
  state_.core(2).store(2, std::memory_order_release);
  VertexId v = q.dequeue(1);
  EXPECT_EQ(v, 4u);
  state_.lock(v).unlock();
  state_.core(2).store(1, std::memory_order_release);
}

TEST_F(KOrderHeapTest, RefreshesAfterStatusBump) {
  // The path's k-order is peeled from both ends: 0,7,1,6,2,5,3,4.
  ASSERT_TRUE(state_.precedes_stable(2, 4));
  KOrderHeap q;
  q.reset(list_, &state_);
  q.enqueue(2);
  q.enqueue(4);
  // Simulate a concurrent move of 2 to AFTER 4 (the last position).
  state_.s(2).fetch_add(1);
  list_->remove(&state_.item(2));
  list_->insert_after(&state_.item(4), &state_.item(2));
  state_.s(2).fetch_add(1);
  ASSERT_TRUE(state_.precedes_stable(4, 2));
  // Dequeue must observe the NEW order: 4 first, then 2.
  VertexId first = q.dequeue(1);
  ASSERT_NE(first, kInvalidVertex);
  state_.lock(first).unlock();
  VertexId second = q.dequeue(1);
  ASSERT_NE(second, kInvalidVertex);
  state_.lock(second).unlock();
  EXPECT_EQ(first, 4u);
  EXPECT_EQ(second, 2u);
}

TEST_F(KOrderHeapTest, RefreshesAfterRelabel) {
  // k-order: 0,7,1,6,2,5,3,4 -> 6 precedes 2.
  ASSERT_TRUE(state_.precedes_stable(6, 2));
  KOrderHeap q;
  q.reset(list_, &state_);
  q.enqueue(6);
  q.enqueue(2);
  // Force relabels by hammering one insertion point with fresh items.
  auto extra = std::make_unique<OmItem[]>(512);
  const std::uint64_t before = list_->relabel_count();
  for (std::size_t i = 0; i < 512; ++i) {
    extra[i].vertex = kInvalidVertex;
    list_->insert_after(&state_.item(0), &extra[i]);
  }
  EXPECT_GT(list_->relabel_count(), before);
  VertexId first = q.dequeue(1);
  ASSERT_EQ(first, 6u);
  state_.lock(first).unlock();
  VertexId second = q.dequeue(1);
  ASSERT_EQ(second, 2u);
  state_.lock(second).unlock();
}

TEST_F(KOrderHeapTest, DequeueReturnsLockedVertex) {
  KOrderHeap q;
  q.reset(list_, &state_);
  q.enqueue(5);
  VertexId v = q.dequeue(1);
  ASSERT_EQ(v, 5u);
  EXPECT_TRUE(state_.lock(5).is_locked());
  state_.lock(5).unlock();
}

TEST_F(KOrderHeapTest, ResetClearsState) {
  KOrderHeap q;
  q.reset(list_, &state_);
  q.enqueue(1);
  q.reset(list_, &state_);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.contains(1));
  EXPECT_EQ(q.dequeue(1), kInvalidVertex);
}

}  // namespace
}  // namespace parcore
