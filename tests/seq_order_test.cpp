// Differential tests for the sequential Simplified-Order maintainer.
#include <gtest/gtest.h>

#include <tuple>

#include "gen/generators.h"
#include "graph/edge_list.h"
#include "maint/seq_order.h"
#include "test_util.h"

namespace parcore {
namespace {

using test::Family;

void expect_state_ok(SeqOrderMaintainer& m, const std::string& ctx) {
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(m.graph(), &err)) << ctx << ": "
                                                           << err;
}

TEST(SeqOrderInsert, TriangleCompletionRaisesCore) {
  auto g = test::make_graph(3, {{0, 1}, {1, 2}});
  SeqOrderMaintainer m(g);
  EXPECT_EQ(m.core(0), 1);
  ASSERT_TRUE(m.insert_edge(0, 2));
  EXPECT_EQ(m.core(0), 2);
  EXPECT_EQ(m.core(1), 2);
  EXPECT_EQ(m.core(2), 2);
  expect_state_ok(m, "triangle");
}

TEST(SeqOrderInsert, PaperFigure2Example) {
  // Figure 2(a): v (core 1) attached to a 2-core of u1..u5; inserting
  // e1=(v,u2), e2=(u2,u3), e3=(u1,u4) lifts everything as in Fig. 2(c).
  // Vertex ids: v=0, u1..u5 = 1..5. Initial edges form the DAG of Fig 2a:
  auto g = test::make_graph(
      6, {{0, 1}, {1, 2}, {1, 3}, {2, 4}, {3, 4}, {3, 5}, {4, 5}, {1, 5}});
  SeqOrderMaintainer m(g);
  ASSERT_EQ(m.core(0), 1);
  for (VertexId u = 1; u <= 5; ++u) ASSERT_EQ(m.core(u), 2) << u;

  ASSERT_TRUE(m.insert_edge(0, 2));  // e1: v-u2 -> v.core 1 -> 2
  EXPECT_EQ(m.core(0), 2);
  ASSERT_TRUE(m.insert_edge(2, 3));  // e2: u2-u3 -> no core change yet
  test::expect_cores_match(m.graph(), m.cores(), "after e2");
  ASSERT_TRUE(m.insert_edge(1, 4));  // e3: u1-u4 -> u1..u5 reach core 3
  test::expect_cores_match(m.graph(), m.cores(), "after e3");
  expect_state_ok(m, "figure2");
}

TEST(SeqOrderInsert, RejectsBadEdges) {
  auto g = test::make_graph(3, {{0, 1}});
  SeqOrderMaintainer m(g);
  EXPECT_FALSE(m.insert_edge(0, 0));
  EXPECT_FALSE(m.insert_edge(0, 1));
  EXPECT_FALSE(m.insert_edge(0, 9));
  EXPECT_EQ(m.graph().num_edges(), 1u);
}

TEST(SeqOrderInsert, IsolatedVertexGainsEdge) {
  auto g = test::make_graph(4, {{0, 1}});
  SeqOrderMaintainer m(g);
  ASSERT_TRUE(m.insert_edge(2, 3));
  EXPECT_EQ(m.core(2), 1);
  EXPECT_EQ(m.core(3), 1);
  expect_state_ok(m, "isolated");
}

TEST(SeqOrderInsert, GrowCliqueEdgeByEdge) {
  DynamicGraph g(8);
  SeqOrderMaintainer m(g);
  for (VertexId u = 0; u < 8; ++u)
    for (VertexId v = u + 1; v < 8; ++v) {
      ASSERT_TRUE(m.insert_edge(u, v));
      test::expect_cores_match(m.graph(), m.cores(),
                               "clique edge " + std::to_string(u) + "-" +
                                   std::to_string(v));
    }
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(m.core(v), 7);
  expect_state_ok(m, "clique");
}

TEST(SeqOrderRemove, TriangleEdgeDropsCore) {
  auto g = test::make_graph(3, {{0, 1}, {1, 2}, {0, 2}});
  SeqOrderMaintainer m(g);
  ASSERT_TRUE(m.remove_edge(0, 2));
  EXPECT_EQ(m.core(0), 1);
  EXPECT_EQ(m.core(1), 1);
  EXPECT_EQ(m.core(2), 1);
  expect_state_ok(m, "triangle-remove");
}

TEST(SeqOrderRemove, PaperFigure3Example) {
  // Figure 3(a): v (core 2) + u1..u5 (core 3); removing e1=(v,u2),
  // e2=(u2,u3), e3=(u1,u4) drops all cores by one.
  // Build: u1..u5 = 1..5 nearly complete (3-core), v=0 with two edges.
  auto g = test::make_graph(6, {{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 5},
                                {3, 4}, {4, 5}, {1, 5}, {0, 2}, {0, 3}});
  SeqOrderMaintainer m(g);
  ASSERT_EQ(m.core(0), 2);
  for (VertexId u = 1; u <= 5; ++u) ASSERT_EQ(m.core(u), 3) << u;

  ASSERT_TRUE(m.remove_edge(0, 2));  // e1: v drops to 1
  test::expect_cores_match(m.graph(), m.cores(), "after e1");
  ASSERT_TRUE(m.remove_edge(2, 3));  // e2: u1..u5 drop to 2
  test::expect_cores_match(m.graph(), m.cores(), "after e2");
  ASSERT_TRUE(m.remove_edge(1, 4));  // e3: no further change
  test::expect_cores_match(m.graph(), m.cores(), "after e3");
  expect_state_ok(m, "figure3");
}

TEST(SeqOrderRemove, MissingEdgeRejected) {
  auto g = test::make_graph(3, {{0, 1}});
  SeqOrderMaintainer m(g);
  EXPECT_FALSE(m.remove_edge(1, 2));
  EXPECT_FALSE(m.remove_edge(0, 0));
}

TEST(SeqOrderRemove, DrainGraphToEmpty) {
  Rng rng(21);
  auto edges = gen_erdos_renyi(60, 200, rng);
  auto g = DynamicGraph::from_edges(60, edges);
  SeqOrderMaintainer m(g);
  for (const Edge& e : edges) {
    ASSERT_TRUE(m.remove_edge(e.u, e.v));
  }
  EXPECT_EQ(g.num_edges(), 0u);
  for (VertexId v = 0; v < 60; ++v) EXPECT_EQ(m.core(v), 0);
  expect_state_ok(m, "drained");
}

TEST(SeqOrderMixed, InsertThenRemoveRestoresCores) {
  test::Workload w = test::make_workload(Family::kEr, 300, 0.2, 77);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  SeqOrderMaintainer m(g);
  auto before = m.cores();
  EXPECT_EQ(m.insert_batch(w.batch), w.batch.size());
  test::expect_cores_match(g, m.cores(), "after insert batch");
  EXPECT_EQ(m.remove_batch(w.batch), w.batch.size());
  EXPECT_EQ(m.cores(), before);
  expect_state_ok(m, "roundtrip");
}

class SeqDifferentialTest
    : public ::testing::TestWithParam<std::tuple<Family, std::uint64_t>> {};

TEST_P(SeqDifferentialTest, RandomOpsAgainstBruteForce) {
  auto [family, seed] = GetParam();
  test::Workload w = test::make_workload(family, 220, 0.3, seed);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  SeqOrderMaintainer m(g);

  // Insert the batch one edge at a time, verifying after each.
  for (std::size_t i = 0; i < w.batch.size(); ++i) {
    ASSERT_TRUE(m.insert_edge(w.batch[i].u, w.batch[i].v));
    if (i % 7 == 0)
      test::expect_cores_match(g, m.cores(),
                               "insert #" + std::to_string(i));
  }
  test::expect_cores_match(g, m.cores(), "insert end");
  expect_state_ok(m, "insert end");

  // Remove them in a shuffled order.
  Rng rng(seed ^ 0xbeef);
  auto batch = w.batch;
  rng.shuffle(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(m.remove_edge(batch[i].u, batch[i].v));
    if (i % 7 == 0)
      test::expect_cores_match(g, m.cores(),
                               "remove #" + std::to_string(i));
  }
  test::expect_cores_match(g, m.cores(), "remove end");
  expect_state_ok(m, "remove end");
}

INSTANTIATE_TEST_SUITE_P(
    Families, SeqDifferentialTest,
    ::testing::Combine(::testing::Values(Family::kEr, Family::kBa,
                                         Family::kRmat, Family::kClique,
                                         Family::kPath),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return std::string(test::family_name(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SeqOrderStats, HistogramsPopulated) {
  test::Workload w = test::make_workload(Family::kBa, 200, 0.2, 5);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  SeqOrderMaintainer::Options opts;
  opts.collect_stats = true;
  SeqOrderMaintainer m(g, opts);
  m.insert_batch(w.batch);
  m.remove_batch(w.batch);
  EXPECT_EQ(m.insert_vplus_histogram().total(), w.batch.size());
  EXPECT_EQ(m.insert_vstar_histogram().total(), w.batch.size());
  EXPECT_EQ(m.remove_vstar_histogram().total(), w.batch.size());
  // V* <= V+ on average.
  EXPECT_LE(m.insert_vstar_histogram().mean(),
            m.insert_vplus_histogram().mean() + 1e-9);
}

}  // namespace
}  // namespace parcore
