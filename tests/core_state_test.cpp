#include <gtest/gtest.h>

#include <thread>

#include "gen/generators.h"
#include "maint/core_state.h"
#include "test_util.h"

namespace parcore {
namespace {

using test::Family;

TEST(LevelDirectory, CreateAndGet) {
  LevelDirectory dir;
  dir.configure(8);
  dir.ensure_capacity(10);
  EXPECT_EQ(dir.get(3), nullptr);
  OrderList& l3 = dir.get_or_create(3);
  EXPECT_EQ(dir.get(3), &l3);
  EXPECT_EQ(l3.level(), 3);
  EXPECT_EQ(&dir.get_or_create(3), &l3);  // idempotent
}

TEST(LevelDirectory, EnsureCapacityPreservesLists) {
  LevelDirectory dir;
  dir.configure(8);
  dir.ensure_capacity(4);
  OrderList* l1 = &dir.get_or_create(1);
  dir.ensure_capacity(100);
  EXPECT_EQ(dir.get(1), l1);
  EXPECT_GE(dir.capacity(), 100u);
  EXPECT_EQ(dir.get(99), nullptr);
}

TEST(LevelDirectory, ConcurrentGetOrCreate) {
  LevelDirectory dir;
  dir.configure(8);
  dir.ensure_capacity(64);
  std::vector<std::thread> threads;
  std::vector<OrderList*> results(8);
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] = &dir.get_or_create(7);
    });
  for (auto& th : threads) th.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(results[0], results[t]);
}

TEST(CoreState, InitializeBuildsConsistentState) {
  for (Family f : {Family::kEr, Family::kBa, Family::kRmat, Family::kPath,
                   Family::kStar, Family::kClique}) {
    Rng rng(3);
    auto edges = test::family_edges(f, 150, rng);
    std::size_t max_v = 150;
    for (const Edge& e : edges)
      max_v = std::max<std::size_t>(max_v, std::max(e.u, e.v) + 1);
    auto g = DynamicGraph::from_edges(max_v, edges);
    CoreState st;
    st.initialize(g);
    std::string err;
    EXPECT_TRUE(st.check_invariants(g, &err, /*check_cores=*/true))
        << test::family_name(f) << ": " << err;
  }
}

TEST(CoreState, PrecedesIsStrictTotalOrderPerLevel) {
  auto g = test::make_graph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  CoreState st;
  st.initialize(g);
  for (VertexId a = 0; a < 6; ++a)
    for (VertexId b = 0; b < 6; ++b) {
      if (a == b) continue;
      EXPECT_NE(st.precedes_stable(a, b), st.precedes_stable(b, a))
          << a << " vs " << b;
      EXPECT_EQ(st.precedes_stable(a, b), st.precedes_guarded(a, b));
    }
}

TEST(CoreState, PrecedesRespectsCoreLevels) {
  // Triangle (core 2) + tail (core 1): every tail vertex precedes every
  // triangle vertex.
  auto g = test::make_graph(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  CoreState st;
  st.initialize(g);
  for (VertexId low : {3u, 4u})
    for (VertexId high : {0u, 1u, 2u}) {
      EXPECT_TRUE(st.precedes_stable(low, high));
      EXPECT_FALSE(st.precedes_stable(high, low));
    }
}

TEST(CoreState, ComputeDoutMatchesStoredAfterInit) {
  Rng rng(5);
  auto g = DynamicGraph::from_edges(200, gen_erdos_renyi(200, 700, rng));
  CoreState st;
  st.initialize(g);
  for (VertexId v = 0; v < 200; ++v)
    EXPECT_EQ(st.dout(v).load(), st.compute_dout(g, v)) << v;
}

TEST(CoreState, ComputeMcdMatchesStoredAfterInit) {
  Rng rng(6);
  auto g = DynamicGraph::from_edges(200, gen_barabasi_albert(200, 3, rng));
  CoreState st;
  st.initialize(g);
  for (VertexId v = 0; v < 200; ++v)
    EXPECT_EQ(st.mcd(v).load(), st.compute_mcd(g, v)) << v;
}

TEST(CoreState, McdIncrementSkipsEmpty) {
  auto g = test::make_graph(3, {{0, 1}, {1, 2}});
  CoreState st;
  st.initialize(g);
  st.mcd(0).store(kMcdEmpty);
  st.mcd_increment_unless_empty(0);
  EXPECT_EQ(st.mcd(0).load(), kMcdEmpty);
  st.mcd(1).store(3);
  st.mcd_increment_unless_empty(1);
  EXPECT_EQ(st.mcd(1).load(), 4);
}

TEST(CoreState, GuardedPrecedesWaitsForEvenStatus) {
  auto g = test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  CoreState st;
  st.initialize(g);
  // Make vertex 1's status odd; a reader must block until it is even.
  st.s(1).fetch_add(1);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    bool r = st.precedes_guarded(0, 1);
    (void)r;
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());
  st.s(1).fetch_add(1);  // even again
  reader.join();
  EXPECT_TRUE(done.load());
}

TEST(CoreState, RaiseMaxCoreIsMonotonicCasMax) {
  auto g = test::make_graph(3, {{0, 1}});
  CoreState st;
  st.initialize(g);
  const CoreValue base = st.max_core();
  st.raise_max_core(base + 5);
  EXPECT_EQ(st.max_core(), base + 5);
  st.raise_max_core(base + 2);  // lower: no effect
  EXPECT_EQ(st.max_core(), base + 5);
}

TEST(CoreState, CheckInvariantsDetectsBadDout) {
  auto g = test::make_graph(3, {{0, 1}, {1, 2}});
  CoreState st;
  st.initialize(g);
  st.dout(1).store(99);
  std::string err;
  EXPECT_FALSE(st.check_invariants(g, &err));
  EXPECT_NE(err.find("dout"), std::string::npos);
}

TEST(CoreState, CheckInvariantsDetectsHeldLock) {
  auto g = test::make_graph(3, {{0, 1}, {1, 2}});
  CoreState st;
  st.initialize(g);
  st.lock(2).lock();
  std::string err;
  EXPECT_FALSE(st.check_invariants(g, &err));
  st.lock(2).unlock();
  EXPECT_TRUE(st.check_invariants(g, &err)) << err;
}

}  // namespace
}  // namespace parcore
