// ISSUE 5: the paged copy-on-write core index (query/versioned_cores.h)
// and the CoreView-ported query surface. Three layers:
//   1. VersionedCoreIndex mechanics — full rebuild, dirty-page-only
//      cloning, page sharing across epochs, immutability of held views;
//   2. engine integration — publication cost (pages cloned) tracking
//      the batch, not n;
//   3. the differential contract — every ported core_query function is
//      bit-identical on a CoreView vs the materialized vector across
//      randomized insert/remove epochs, and both match ground truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "decomp/bz.h"
#include "decomp/core_query.h"
#include "engine/engine.h"
#include "gen/generators.h"
#include "graph/edge_list.h"
#include "query/versioned_cores.h"
#include "test_util.h"

namespace parcore {
namespace {

using engine::StreamingEngine;
using query::CoreView;
using query::VersionedCoreIndex;

// ------------------------------------------------- index mechanics

TEST(VersionedCoreIndex, RebuildMatchesSource) {
  const std::size_t n = 10000;
  VersionedCoreIndex index(VersionedCoreIndex::Options{256});
  CoreView view =
      index.rebuild(n, [](VertexId v) { return static_cast<CoreValue>(v % 7); });
  ASSERT_EQ(view.size(), n);
  EXPECT_EQ(view.page_size(), 256u);
  EXPECT_EQ(view.page_count(), (n + 255) / 256);
  EXPECT_EQ(index.last_pages_cloned(), view.page_count());
  for (VertexId v = 0; v < n; ++v)
    ASSERT_EQ(view.core(v), static_cast<CoreValue>(v % 7)) << v;
  // Out-of-range reads are 0, not UB (engine snapshot semantics).
  EXPECT_EQ(view.core(static_cast<VertexId>(n)), 0);
  EXPECT_EQ(view.core(kInvalidVertex), 0);
  const std::vector<CoreValue> flat = view.materialize();
  ASSERT_EQ(flat.size(), n);
  for (VertexId v = 0; v < n; ++v) ASSERT_EQ(flat[v], view.core(v));
}

TEST(VersionedCoreIndex, PublishClonesOnlyDirtyPages) {
  const std::size_t n = 1000;  // 4 pages of 256 (last one partial)
  std::vector<CoreValue> source(n, 1);
  VersionedCoreIndex index(VersionedCoreIndex::Options{256});
  CoreView before = index.rebuild(n, [&](VertexId v) { return source[v]; });

  source[5] = 9;    // page 0
  source[600] = 9;  // page 2
  const std::vector<VertexId> dirty{5, 600};
  CoreView after = index.publish(dirty, [&](VertexId v) { return source[v]; });

  EXPECT_EQ(index.last_pages_cloned(), 2u);
  // Dirty pages were cloned; clean pages are shared with the old epoch.
  EXPECT_NE(after.page_identity(5), before.page_identity(5));
  EXPECT_NE(after.page_identity(600), before.page_identity(600));
  EXPECT_EQ(after.page_identity(300), before.page_identity(300));  // page 1
  EXPECT_EQ(after.page_identity(900), before.page_identity(900));  // page 3
  // New values visible in the new view only; the held view is frozen.
  EXPECT_EQ(after.core(5), 9);
  EXPECT_EQ(after.core(600), 9);
  EXPECT_EQ(before.core(5), 1);
  EXPECT_EQ(before.core(600), 1);
  // Untouched entries on a cloned page carried over.
  EXPECT_EQ(after.core(6), 1);
  EXPECT_EQ(after.core(601), 1);
}

TEST(VersionedCoreIndex, EmptyDirtySharesTheWholeView) {
  VersionedCoreIndex index(VersionedCoreIndex::Options{64});
  CoreView a = index.rebuild(300, [](VertexId) { return 2; });
  CoreView b = index.publish({}, [](VertexId) { return 3; });
  EXPECT_EQ(index.last_pages_cloned(), 0u);
  for (VertexId v = 0; v < 300; ++v) ASSERT_EQ(b.core(v), 2);
  EXPECT_EQ(a.page_identity(0), b.page_identity(0));
}

TEST(VersionedCoreIndex, DuplicateAndOutOfRangeDirtyTolerated) {
  std::vector<CoreValue> source(200, 0);
  VersionedCoreIndex index(VersionedCoreIndex::Options{64});
  index.rebuild(source.size(), [&](VertexId v) { return source[v]; });
  source[10] = 5;
  const std::vector<VertexId> dirty{10, 10, 10, 5000, kInvalidVertex};
  CoreView view = index.publish(dirty, [&](VertexId v) { return source[v]; });
  EXPECT_EQ(index.last_pages_cloned(), 1u);
  EXPECT_EQ(view.core(10), 5);
  EXPECT_EQ(view.size(), 200u);
}

TEST(VersionedCoreIndex, PageSizeClampsAndRoundsToPowerOfTwo) {
  VersionedCoreIndex a(VersionedCoreIndex::Options{1000});
  EXPECT_EQ(a.page_size(), 1024u);
  VersionedCoreIndex b(VersionedCoreIndex::Options{1});
  EXPECT_EQ(b.page_size(), VersionedCoreIndex::kMinPageSize);
  VersionedCoreIndex c(VersionedCoreIndex::Options{std::size_t{1} << 30});
  EXPECT_EQ(c.page_size(), VersionedCoreIndex::kMaxPageSize);
}

TEST(VersionedCoreIndex, ZeroVertices) {
  VersionedCoreIndex index;
  CoreView view = index.rebuild(0, [](VertexId) { return 0; });
  EXPECT_EQ(view.size(), 0u);
  EXPECT_TRUE(view.empty());
  EXPECT_TRUE(view.materialize().empty());
  EXPECT_EQ(view.core(0), 0);
  CoreView next = index.publish({}, [](VertexId) { return 0; });
  EXPECT_EQ(next.size(), 0u);
}

// --------------------------------------------- engine integration

// The reason the index exists: publication must cost pages-touched,
// not n. A one-edge flush on a 100k-vertex graph may clone at most the
// pages its |V*| lives on — never the whole directory again.
TEST(QueryView, PublicationCostTracksBatchNotN) {
  const std::size_t n = 100000;
  // Path graph: every vertex core 1; closing one triangle promotes
  // exactly 3 vertices (one snapshot page).
  std::vector<Edge> path;
  path.reserve(n - 1);
  for (VertexId v = 0; v + 1 < n; ++v) path.push_back(Edge{v, v + 1});
  auto g = DynamicGraph::from_edges(n, path);
  ThreadTeam team(2);
  StreamingEngine::Options opts;  // default 4096-core pages
  StreamingEngine eng(g, team, opts);

  const std::uint64_t full_build = eng.stats().snapshot_pages_cloned;
  EXPECT_EQ(full_build, (n + 4095) / 4096);  // epoch 0 builds every page

  eng.submit_insert(0, 2);  // triangle 0-1-2: cores {0,1,2} -> 2
  eng.flush_now();
  const std::uint64_t after = eng.stats().snapshot_pages_cloned;
  EXPECT_EQ(after - full_build, 1u);  // all three promotions on page 0
  EXPECT_EQ(eng.snapshot()->view.core(1), 2);
  EXPECT_EQ(eng.snapshot()->view.core(50000), 1);

  // A flush that changes nothing (duplicate insert) clones nothing.
  eng.submit_insert(0, 2);
  eng.flush_now();
  EXPECT_EQ(eng.stats().snapshot_pages_cloned, after);
}

TEST(QueryView, HeldEpochsStayImmutableAndSharePages) {
  test::Workload w = test::make_workload(test::Family::kRmat, 2000, 0.3, 91);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(2);
  StreamingEngine::Options opts;
  opts.snapshot_page = 64;  // force many pages at this n
  StreamingEngine eng(g, team, opts);

  auto held = eng.snapshot();
  const std::vector<CoreValue> held_copy = held->materialize();

  // A small flush: only the touched pages may be cloned, the rest must
  // be shared with the held epoch.
  const std::size_t small = std::min<std::size_t>(w.batch.size(), 48);
  for (std::size_t i = 0; i < small; ++i)
    eng.submit_insert(w.batch[i].u, w.batch[i].v);
  eng.flush_now();
  auto latest = eng.snapshot();

  // The held epoch is frozen even though later epochs share its clean
  // pages in place.
  EXPECT_EQ(held->materialize(), held_copy);
  std::size_t shared = 0;
  for (VertexId v = 0; v < w.n; v += 64)
    if (latest->view.page_identity(v) == held->view.page_identity(v))
      ++shared;
  EXPECT_GT(shared, 0u) << "no page sharing between epochs at all";
  test::expect_cores_match(g, latest->materialize(), "latest epoch");
}

// ------------------------------------------------ differential suite

void expect_summary_eq(const CoreSummary& a, const CoreSummary& b,
                       const char* context) {
  EXPECT_EQ(a.max_core, b.max_core) << context;
  EXPECT_EQ(a.degeneracy_core_size, b.degeneracy_core_size) << context;
  EXPECT_EQ(a.histogram, b.histogram) << context;
}

// Every ported core_query function must return bit-identical results on
// the CoreView vs the materialized flat vector, across randomized
// insert/remove epochs — and both must match a fresh decomposition of
// the epoch's graph snapshot.
TEST(QueryView, PortedQueriesBitIdenticalOnViewAndVector) {
  Rng rng(133);
  const std::size_t n = 500;
  auto candidates = gen_erdos_renyi(n, 2000, rng);
  canonicalize_edges(candidates);
  auto g = DynamicGraph::from_edges(
      n, std::span<const Edge>(candidates.data(), candidates.size() / 2));
  ThreadTeam team(2);
  StreamingEngine::Options opts;
  opts.snapshot_page = 64;  // multiple pages, partial tail page
  opts.snapshot_graph = true;
  opts.workers = 2;
  StreamingEngine eng(g, team, opts);

  Rng prng(57);
  auto stream = gen_update_stream(candidates, 6000, 0.45, 0.6, prng);
  const std::size_t chunk = 500;

  for (std::size_t at = 0; at < stream.size(); at += chunk) {
    const std::size_t hi = std::min(stream.size(), at + chunk);
    for (std::size_t i = at; i < hi; ++i) eng.submit(stream[i]);
    eng.flush_now();

    auto snap = eng.snapshot();
    const CoreView& view = snap->view;
    const std::vector<CoreValue> vec = snap->materialize();
    ASSERT_EQ(vec.size(), n);

    // Ground truth: the epoch's own graph copy, freshly decomposed.
    ASSERT_NE(snap->graph, nullptr);
    const Decomposition fresh = bz_decompose(*snap->graph);
    ASSERT_EQ(vec, fresh.core) << "epoch " << snap->epoch;

    expect_summary_eq(summarize_cores(view), summarize_cores(vec),
                      "summarize_cores");
    const CoreSummary summary = summarize_cores(vec);
    for (CoreValue k = 0; k <= summary.max_core + 1; ++k)
      ASSERT_EQ(k_core_members(view, k), k_core_members(vec, k))
          << "k_core_members k=" << k;
    for (VertexId u = 0; u < n; u += 37)
      ASSERT_EQ(subcore_of(*snap->graph, view, u),
                subcore_of(*snap->graph, vec, u))
          << "subcore_of u=" << u;
    ASSERT_EQ(all_subcores(*snap->graph, view),
              all_subcores(*snap->graph, vec));
    for (CoreValue k = 1; k <= summary.max_core; ++k) {
      std::vector<VertexId> map_view, map_vec;
      DynamicGraph sub_view = k_core_subgraph(*snap->graph, view, k, &map_view);
      DynamicGraph sub_vec = k_core_subgraph(*snap->graph, vec, k, &map_vec);
      ASSERT_EQ(sub_view.num_vertices(), sub_vec.num_vertices()) << k;
      ASSERT_EQ(sub_view.num_edges(), sub_vec.num_edges()) << k;
      ASSERT_EQ(map_view, map_vec) << k;
    }
  }
}

}  // namespace
}  // namespace parcore
