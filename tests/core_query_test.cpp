#include <gtest/gtest.h>

#include "decomp/bz.h"
#include "decomp/core_query.h"
#include "gen/generators.h"
#include "test_util.h"

namespace parcore {
namespace {

TEST(CoreQuery, KCoreMembers) {
  // Triangle + tail: cores {2,2,2,1,1}.
  auto g = test::make_graph(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  auto cores = bz_decompose(g).core;
  EXPECT_EQ(k_core_members(cores, 2),
            (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(k_core_members(cores, 1).size(), 5u);
  EXPECT_TRUE(k_core_members(cores, 3).empty());
}

TEST(CoreQuery, Summary) {
  auto g = test::make_graph(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  auto cores = bz_decompose(g).core;
  CoreSummary s = summarize_cores(cores);
  EXPECT_EQ(s.max_core, 2);
  EXPECT_EQ(s.degeneracy_core_size, 3u);
  ASSERT_EQ(s.histogram.size(), 3u);
  EXPECT_EQ(s.histogram[1], 2u);
  EXPECT_EQ(s.histogram[2], 3u);
}

TEST(CoreQuery, SubcoreOfConnectedRegion) {
  // Triangle A with a dangling path (core 1) and a detached triangle B.
  // (A closed A-path-B bridge would put the whole graph in the 2-core.)
  auto g = test::make_graph(8, {{0, 1}, {1, 2}, {0, 2},  // triangle A
                                {2, 3}, {3, 4},          // dangling path
                                {5, 6}, {6, 7}, {5, 7}});  // triangle B
  auto cores = bz_decompose(g).core;
  EXPECT_EQ(subcore_of(g, cores, 0), (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(subcore_of(g, cores, 6), (std::vector<VertexId>{5, 6, 7}));
  // The path vertices form their own 1-subcore.
  EXPECT_EQ(subcore_of(g, cores, 3), (std::vector<VertexId>{3, 4}));
  EXPECT_TRUE(subcore_of(g, cores, 99).empty());
}

TEST(CoreQuery, AllSubcoresPartitionVertices) {
  Rng rng(5);
  auto edges = gen_erdos_renyi(200, 600, rng);
  auto g = DynamicGraph::from_edges(200, edges);
  auto cores = bz_decompose(g).core;
  auto subcores = all_subcores(g, cores);
  std::vector<int> seen(200, 0);
  for (const auto& sc : subcores) {
    ASSERT_FALSE(sc.empty());
    const CoreValue k = cores[sc.front()];
    for (VertexId v : sc) {
      EXPECT_EQ(cores[v], k);
      ++seen[v];
    }
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(CoreQuery, DegeneracyOrderIsMonotoneInCore) {
  Rng rng(6);
  auto g = DynamicGraph::from_edges(300, gen_barabasi_albert(300, 3, rng));
  auto cores = bz_decompose(g).core;
  auto order = degeneracy_order(cores);
  ASSERT_EQ(order.size(), 300u);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LE(cores[order[i - 1]], cores[order[i]]);
}

TEST(CoreQuery, KCoreSubgraphInducesCorrectEdges) {
  auto g = test::make_graph(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  auto cores = bz_decompose(g).core;
  std::vector<VertexId> mapping;
  DynamicGraph sub = k_core_subgraph(g, cores, 2, &mapping);
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 3u);  // the triangle
  EXPECT_EQ(mapping[3], kInvalidVertex);
  EXPECT_NE(mapping[0], kInvalidVertex);
}

TEST(CoreQuery, KCoreSubgraphIsItsOwnKCore) {
  // Property: every vertex of the k-core subgraph has degree >= k there.
  Rng rng(7);
  auto g = DynamicGraph::from_edges(400, gen_rmat(9, 1600, RmatParams{}, rng));
  auto cores = bz_decompose(g).core;
  CoreSummary s = summarize_cores(cores);
  for (CoreValue k = 1; k <= s.max_core; ++k) {
    DynamicGraph sub = k_core_subgraph(g, cores, k);
    for (VertexId v = 0; v < sub.num_vertices(); ++v)
      EXPECT_GE(sub.degree(v), static_cast<std::size_t>(k))
          << "k=" << k << " v=" << v;
  }
}

TEST(CoreQuery, DegeneracyColoringIsProper) {
  Rng rng(8);
  auto g = DynamicGraph::from_edges(300, gen_rmat(9, 1500, RmatParams{}, rng));
  auto d = bz_decompose(g);
  Coloring c = degeneracy_coloring(g, d.core);
  // Proper colouring: no edge joins two same-coloured vertices.
  for (const Edge& e : g.edges())
    EXPECT_NE(c.color[e.u], c.color[e.v]) << e.u << "-" << e.v;
  // Uses at most degeneracy + 1 colours (the core-ordering guarantee).
  EXPECT_LE(c.colors_used, static_cast<std::uint32_t>(d.max_core) + 1);
}

TEST(CoreQuery, DegeneracyColoringOnBipartite) {
  // Even cycle: 2-degenerate but 2-colourable; bound allows 3.
  auto g = DynamicGraph::from_edges(10, gen_cycle(10));
  auto d = bz_decompose(g);
  Coloring c = degeneracy_coloring(g, d.core);
  for (const Edge& e : g.edges()) EXPECT_NE(c.color[e.u], c.color[e.v]);
  EXPECT_LE(c.colors_used, 3u);
}

TEST(CoreQuery, DegeneracyColoringClique) {
  auto g = DynamicGraph::from_edges(7, gen_clique(7));
  auto d = bz_decompose(g);
  Coloring c = degeneracy_coloring(g, d.core);
  EXPECT_EQ(c.colors_used, 7u);  // K7 needs exactly 7
  for (const Edge& e : g.edges()) EXPECT_NE(c.color[e.u], c.color[e.v]);
}

TEST(CoreQuery, EmptyGraph) {
  DynamicGraph g(0);
  std::vector<CoreValue> cores;
  EXPECT_TRUE(k_core_members(cores, 1).empty());
  CoreSummary s = summarize_cores(cores);
  EXPECT_EQ(s.max_core, 0);
  EXPECT_TRUE(all_subcores(g, cores).empty());
}

// ISSUE 5 satellite: summarize_cores({}) used to return
// histogram = {0}, indistinguishable from a 1-vertex core-0 graph.
// Empty input now yields the empty summary — no allocation, empty
// histogram.
TEST(CoreQuery, SummaryOfEmptyInputHasEmptyHistogram) {
  CoreSummary empty = summarize_cores(std::vector<CoreValue>{});
  EXPECT_EQ(empty.max_core, 0);
  EXPECT_EQ(empty.degeneracy_core_size, 0u);
  EXPECT_TRUE(empty.histogram.empty());

  // An actual all-core-0 graph stays distinguishable: one histogram
  // bucket counting every vertex.
  CoreSummary zeros = summarize_cores(std::vector<CoreValue>{0, 0, 0});
  EXPECT_EQ(zeros.max_core, 0);
  EXPECT_EQ(zeros.degeneracy_core_size, 3u);
  ASSERT_EQ(zeros.histogram.size(), 1u);
  EXPECT_EQ(zeros.histogram[0], 3u);
}

// ISSUE 5 satellite: subcore_of / all_subcores indexed cores[] with
// graph-derived ids without checking cores.size() against
// g.num_vertices() — an OOB read whenever a snapshot core vector is
// paired with a newer/older graph. Vertices outside either domain are
// now out of scope, never an OOB access (ASan guards the regression).
TEST(CoreQuery, MismatchedCoreVectorAndGraphSizes) {
  // Graph has 8 vertices; the core vector only knows the first 5
  // (triangle 0-1-2 at core 2, path 2-3-4 at core 1).
  auto g = test::make_graph(8, {{0, 1}, {1, 2}, {0, 2},
                                {2, 3}, {3, 4},
                                {4, 5}, {5, 6}, {6, 7}});
  std::vector<CoreValue> cores{2, 2, 2, 1, 1};

  // Known vertices resolve against the intersection of both domains;
  // vertex 4's walk must not read cores[5].
  EXPECT_EQ(subcore_of(g, cores, 0), (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(subcore_of(g, cores, 3), (std::vector<VertexId>{3, 4}));
  // Vertices beyond the core vector are out of scope.
  EXPECT_TRUE(subcore_of(g, cores, 6).empty());
  EXPECT_TRUE(subcore_of(g, cores, 99).empty());

  auto subcores = all_subcores(g, cores);
  std::size_t covered = 0;
  for (const auto& sc : subcores) {
    for (VertexId v : sc) {
      EXPECT_LT(v, cores.size());
      ++covered;
    }
  }
  EXPECT_EQ(covered, cores.size());  // exactly the known vertices, once

  // The induced-subgraph port obeys the same bound.
  DynamicGraph sub = k_core_subgraph(g, cores, 2);
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 3u);

  // A core vector LONGER than the graph is clipped to the graph.
  std::vector<CoreValue> longer(16, 1);
  auto all = all_subcores(g, longer);
  std::size_t total = 0;
  for (const auto& sc : all) total += sc.size();
  EXPECT_EQ(total, g.num_vertices());
  EXPECT_TRUE(subcore_of(g, longer, 12).empty());
}

}  // namespace
}  // namespace parcore
