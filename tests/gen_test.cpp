#include <gtest/gtest.h>

#include <set>

#include "gen/generators.h"
#include "graph/edge_list.h"
#include "support/types.h"

namespace parcore {
namespace {

void expect_simple(const std::vector<Edge>& edges, std::size_t n) {
  std::set<std::uint64_t> keys;
  for (const Edge& e : edges) {
    EXPECT_NE(e.u, e.v) << "self loop";
    EXPECT_LT(e.u, n);
    EXPECT_LT(e.v, n);
    EXPECT_TRUE(keys.insert(edge_key(e)).second) << "duplicate edge";
  }
}

TEST(Generators, ErdosRenyiExactCountAndSimple) {
  Rng rng(1);
  auto edges = gen_erdos_renyi(500, 2000, rng);
  EXPECT_EQ(edges.size(), 2000u);
  expect_simple(edges, 500);
}

TEST(Generators, ErdosRenyiClampsToCompleteGraph) {
  Rng rng(1);
  auto edges = gen_erdos_renyi(5, 1000, rng);
  EXPECT_EQ(edges.size(), 10u);  // C(5,2)
}

TEST(Generators, BarabasiAlbertDegreesAndSize) {
  Rng rng(2);
  const std::size_t n = 1000, k = 4;
  auto edges = gen_barabasi_albert(n, k, rng);
  expect_simple(edges, n);
  // Every non-seed vertex attaches ~k edges; total ≈ n*k.
  EXPECT_GT(edges.size(), n * k * 9 / 10);
  std::vector<std::size_t> deg(n, 0);
  for (const Edge& e : edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  std::size_t min_deg = deg[0];
  for (std::size_t d : deg) min_deg = std::min(min_deg, d);
  EXPECT_GE(min_deg, 1u);
}

TEST(Generators, BarabasiAlbertSkewsDegrees) {
  Rng rng(3);
  auto edges = gen_barabasi_albert(2000, 4, rng);
  std::vector<std::size_t> deg(2000, 0);
  for (const Edge& e : edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  const std::size_t max_deg = *std::max_element(deg.begin(), deg.end());
  // Preferential attachment produces hubs far above the mean (~8).
  EXPECT_GT(max_deg, 40u);
}

TEST(Generators, RmatBoundsAndSkew) {
  Rng rng(4);
  auto edges = gen_rmat(12, 10000, RmatParams{}, rng);
  expect_simple(edges, std::size_t{1} << 12);
  EXPECT_GT(edges.size(), 9000u);
  std::vector<std::size_t> deg(std::size_t{1} << 12, 0);
  for (const Edge& e : edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  EXPECT_GT(*std::max_element(deg.begin(), deg.end()), 50u);
}

TEST(Generators, GridShape) {
  Rng rng(5);
  auto edges = gen_grid(10, 10, 1.0, 0.0, rng);
  // Full lattice: 2 * 10 * 9 edges.
  EXPECT_EQ(edges.size(), 180u);
  expect_simple(edges, 100);
}

TEST(Generators, GridKeepProbabilityThins) {
  Rng rng(6);
  auto full = gen_grid(50, 50, 1.0, 0.0, rng);
  Rng rng2(6);
  auto thin = gen_grid(50, 50, 0.5, 0.0, rng2);
  EXPECT_LT(thin.size(), full.size() * 6 / 10);
}

TEST(Generators, TemporalTimestampsStrictlyIncrease) {
  Rng rng(7);
  auto stream = gen_temporal_ba(500, 3, rng);
  ASSERT_FALSE(stream.empty());
  for (std::size_t i = 1; i < stream.size(); ++i)
    EXPECT_GT(stream[i].time, stream[i - 1].time);
}

TEST(Generators, TemporalRmatTimestampsStrictlyIncrease) {
  Rng rng(8);
  auto stream = gen_temporal_rmat(10, 2000, RmatParams{}, rng);
  for (std::size_t i = 1; i < stream.size(); ++i)
    EXPECT_GT(stream[i].time, stream[i - 1].time);
}

TEST(Generators, DeterministicForSeed) {
  Rng a(11), b(11);
  auto e1 = gen_erdos_renyi(200, 800, a);
  auto e2 = gen_erdos_renyi(200, 800, b);
  EXPECT_EQ(e1.size(), e2.size());
  for (std::size_t i = 0; i < e1.size(); ++i) EXPECT_EQ(e1[i], e2[i]);
}

TEST(Generators, CliqueCycleStar) {
  EXPECT_EQ(gen_clique(6).size(), 15u);
  EXPECT_EQ(gen_cycle(6).size(), 6u);
  EXPECT_EQ(gen_star(6).size(), 5u);
  EXPECT_TRUE(gen_cycle(2).empty());
}

}  // namespace
}  // namespace parcore
