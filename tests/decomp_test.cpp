#include <gtest/gtest.h>

#include <tuple>

#include "decomp/bz.h"
#include "decomp/park.h"
#include "decomp/verify.h"
#include "gen/generators.h"
#include "test_util.h"

namespace parcore {
namespace {

using test::Family;

TEST(Bz, CliqueCoresAreNMinus1) {
  auto g = DynamicGraph::from_edges(6, gen_clique(6));
  Decomposition d = bz_decompose(g);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(d.core[v], 5);
  EXPECT_EQ(d.max_core, 5);
}

TEST(Bz, CycleCoresAreTwo) {
  auto g = DynamicGraph::from_edges(10, gen_cycle(10));
  Decomposition d = bz_decompose(g);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(d.core[v], 2);
}

TEST(Bz, StarCoresAreOne) {
  auto g = DynamicGraph::from_edges(10, gen_star(10));
  Decomposition d = bz_decompose(g);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(d.core[v], 1);
}

TEST(Bz, IsolatedVerticesAreZero) {
  auto g = test::make_graph(5, {{0, 1}});
  Decomposition d = bz_decompose(g);
  EXPECT_EQ(d.core[0], 1);
  EXPECT_EQ(d.core[2], 0);
  EXPECT_EQ(d.core[3], 0);
}

TEST(Bz, KiteGraph) {
  // Triangle (0,1,2) + pendant chain 2-3, 3-4.
  auto g = test::make_graph(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  Decomposition d = bz_decompose(g);
  EXPECT_EQ(d.core[0], 2);
  EXPECT_EQ(d.core[1], 2);
  EXPECT_EQ(d.core[2], 2);
  EXPECT_EQ(d.core[3], 1);
  EXPECT_EQ(d.core[4], 1);
}

TEST(Bz, PeelOrderHasNonDecreasingCores) {
  Rng rng(5);
  auto g = DynamicGraph::from_edges(400, gen_erdos_renyi(400, 1600, rng));
  Decomposition d = bz_decompose(g);
  ASSERT_EQ(d.peel_order.size(), 400u);
  for (std::size_t i = 1; i < d.peel_order.size(); ++i)
    EXPECT_LE(d.core[d.peel_order[i - 1]], d.core[d.peel_order[i]]);
}

TEST(Bz, PeelOrderIsValidKOrder) {
  Rng rng(6);
  auto g = DynamicGraph::from_edges(300, gen_barabasi_albert(300, 4, rng));
  Decomposition d = bz_decompose(g);
  std::vector<std::size_t> rank(g.num_vertices());
  for (std::size_t i = 0; i < d.peel_order.size(); ++i)
    rank[d.peel_order[i]] = i;
  std::string err;
  EXPECT_TRUE(verify_korder_bound(g, d.core, rank, &err)) << err;
}

TEST(Bz, EmptyGraph) {
  DynamicGraph g(0);
  Decomposition d = bz_decompose(g);
  EXPECT_TRUE(d.core.empty());
  EXPECT_EQ(d.max_core, 0);
}

class BzFamilyTest
    : public ::testing::TestWithParam<std::tuple<Family, std::size_t>> {};

TEST_P(BzFamilyTest, MatchesBruteForce) {
  auto [family, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 31 + 7);
  auto edges = test::family_edges(family, n, rng);
  std::size_t max_v = n;
  for (const Edge& e : edges)
    max_v = std::max<std::size_t>(max_v, std::max(e.u, e.v) + 1);
  auto g = DynamicGraph::from_edges(max_v, edges);
  Decomposition d = bz_decompose(g);
  test::expect_cores_match(g, d.core, family_name(family));
}

TEST_P(BzFamilyTest, PolicyVariantsAgreeOnCores) {
  auto [family, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 13 + 3);
  auto edges = test::family_edges(family, n, rng);
  std::size_t max_v = n;
  for (const Edge& e : edges)
    max_v = std::max<std::size_t>(max_v, std::max(e.u, e.v) + 1);
  auto g = DynamicGraph::from_edges(max_v, edges);
  Decomposition base = bz_decompose(g);
  for (PeelTie policy : {PeelTie::kSmallDegreeFirst,
                         PeelTie::kLargeDegreeFirst, PeelTie::kRandom}) {
    Decomposition d = bz_decompose_with_policy(g, policy);
    EXPECT_EQ(d.core, base.core);
    // Any policy still yields a valid k-order instance.
    std::vector<std::size_t> rank(g.num_vertices());
    for (std::size_t i = 0; i < d.peel_order.size(); ++i)
      rank[d.peel_order[i]] = i;
    std::string err;
    EXPECT_TRUE(verify_korder_bound(g, d.core, rank, &err)) << err;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, BzFamilyTest,
    ::testing::Combine(::testing::Values(Family::kEr, Family::kBa,
                                         Family::kRmat, Family::kClique,
                                         Family::kPath, Family::kStar),
                       ::testing::Values(std::size_t{64}, std::size_t{512})),
    [](const auto& info) {
      return std::string(test::family_name(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param));
    });

class ParkTest
    : public ::testing::TestWithParam<std::tuple<Family, int>> {};

TEST_P(ParkTest, MatchesBz) {
  auto [family, workers] = GetParam();
  Rng rng(17);
  auto edges = test::family_edges(family, 600, rng);
  std::size_t max_v = 600;
  for (const Edge& e : edges)
    max_v = std::max<std::size_t>(max_v, std::max(e.u, e.v) + 1);
  auto g = DynamicGraph::from_edges(max_v, edges);
  ThreadTeam team(workers);
  auto park = park_decompose(g, team, workers);
  Decomposition d = bz_decompose(g);
  EXPECT_EQ(park, d.core);
}

INSTANTIATE_TEST_SUITE_P(
    WorkersByFamily, ParkTest,
    ::testing::Combine(::testing::Values(Family::kEr, Family::kBa,
                                         Family::kRmat),
                       ::testing::Values(1, 4, 8)),
    [](const auto& info) {
      return std::string(test::family_name(std::get<0>(info.param))) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(BruteForce, SelfConsistentOnKnownGraph) {
  auto g = test::make_graph(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  auto cores = brute_force_cores(g);
  EXPECT_EQ(cores, (std::vector<CoreValue>{2, 2, 2, 1, 1}));
}

TEST(VerifyCores, DetectsMismatch) {
  auto g = test::make_graph(3, {{0, 1}, {1, 2}, {0, 2}});
  std::vector<CoreValue> wrong{2, 2, 1};
  std::string err;
  EXPECT_FALSE(verify_cores(g, wrong, &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace parcore
