// Concurrency stress for the parallel OM structure.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "om/order_list.h"
#include "support/rng.h"

namespace parcore {
namespace {

TEST(OmParallel, ConcurrentTailAppends) {
  OrderList list(0, 8);
  constexpr std::size_t kPerThread = 2000;
  constexpr int kThreads = 8;
  auto items = std::make_unique<OmItem[]>(kPerThread * kThreads);
  for (std::size_t i = 0; i < kPerThread * kThreads; ++i)
    items[i].vertex = static_cast<VertexId>(i);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i)
        list.insert_tail(&items[t * kPerThread + i]);
    });
  for (auto& th : threads) th.join();

  EXPECT_EQ(list.size(), kPerThread * kThreads);
  std::string err;
  EXPECT_TRUE(list.validate(&err)) << err;
  // Per-thread insertion order must be preserved in the list.
  auto seq = list.to_vector();
  std::vector<std::size_t> last(kThreads, 0);
  std::vector<bool> seen_any(kThreads, false);
  for (VertexId v : seq) {
    const int t = static_cast<int>(v / kPerThread);
    const std::size_t idx = v % kPerThread;
    if (seen_any[t]) {
      EXPECT_GT(idx, last[t]);
    }
    seen_any[t] = true;
    last[t] = idx;
  }
}

TEST(OmParallel, ConcurrentHeadInserts) {
  OrderList list(0, 8);
  constexpr std::size_t kPerThread = 2000;
  constexpr int kThreads = 4;
  auto items = std::make_unique<OmItem[]>(kPerThread * kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        OmItem* it = &items[t * kPerThread + i];
        it->vertex = static_cast<VertexId>(t * kPerThread + i);
        list.insert_head(it);
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(list.size(), kPerThread * kThreads);
  std::string err;
  EXPECT_TRUE(list.validate(&err)) << err;
}

TEST(OmParallel, ReadersDuringMutations) {
  // Two pinned items bracket churn in the middle; concurrent readers
  // must always order them correctly while relabels run.
  OrderList list(0, 4);
  auto items = std::make_unique<OmItem[]>(2 + 4096);
  OmItem* lo = &items[0];
  OmItem* hi = &items[1];
  lo->vertex = 0;
  hi->vertex = 1;
  list.insert_tail(lo);
  list.insert_tail(hi);

  std::atomic<bool> stop{false};
  std::atomic<long> checks{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r)
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ASSERT_TRUE(OrderList::precedes(lo, hi));
        ASSERT_FALSE(OrderList::precedes(hi, lo));
        checks.fetch_add(1, std::memory_order_relaxed);
      }
    });

  std::thread writer([&] {
    for (std::size_t i = 0; i < 4096; ++i) {
      OmItem* it = &items[2 + i];
      it->vertex = static_cast<VertexId>(2 + i);
      list.insert_after(lo, it);  // hammer one insertion point
    }
    stop = true;
  });
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_GT(checks.load(), 0);
  std::string err;
  EXPECT_TRUE(list.validate(&err)) << err;
}

TEST(OmParallel, ConcurrentInsertAndRemoveDisjoint) {
  OrderList list(0, 8);
  constexpr std::size_t kCount = 4000;
  auto items = std::make_unique<OmItem[]>(2 * kCount);
  for (std::size_t i = 0; i < 2 * kCount; ++i)
    items[i].vertex = static_cast<VertexId>(i);
  for (std::size_t i = 0; i < kCount; ++i) list.insert_tail(&items[i]);

  std::thread remover([&] {
    for (std::size_t i = 0; i < kCount; i += 2) list.remove(&items[i]);
  });
  std::thread inserter([&] {
    for (std::size_t i = 0; i < kCount; ++i)
      list.insert_tail(&items[kCount + i]);
  });
  remover.join();
  inserter.join();
  EXPECT_EQ(list.size(), kCount / 2 + kCount);
  std::string err;
  EXPECT_TRUE(list.validate(&err)) << err;
}

TEST(OmParallel, SnapshotKeysUnderChurn) {
  OrderList list(0, 4);
  auto items = std::make_unique<OmItem[]>(2 + 2048);
  OmItem* lo = &items[0];
  OmItem* hi = &items[1];
  list.insert_tail(lo);
  list.insert_tail(hi);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      OmKey a = list.snapshot_key(lo);
      OmKey b = list.snapshot_key(hi);
      ASSERT_LT(a, b);
    }
  });
  for (std::size_t i = 0; i < 2048; ++i) {
    items[2 + i].vertex = static_cast<VertexId>(2 + i);
    list.insert_after(lo, &items[2 + i]);
  }
  stop = true;
  reader.join();
}

}  // namespace
}  // namespace parcore
