// Differential + stress tests for Parallel-Order edge removal (OurR).
#include <gtest/gtest.h>

#include <tuple>

#include "gen/generators.h"
#include "graph/edge_list.h"
#include "maint/seq_order.h"
#include "parallel/parallel_order.h"
#include "test_util.h"

namespace parcore {
namespace {

using test::Family;

void expect_state_ok(ParallelOrderMaintainer& m, const std::string& ctx) {
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(m.graph(), &err)) << ctx << ": "
                                                           << err;
}

TEST(ParallelRemove, SingleEdgeTriangle) {
  auto g = test::make_graph(3, {{0, 1}, {1, 2}, {0, 2}});
  ThreadTeam team(2);
  ParallelOrderMaintainer m(g, team);
  ASSERT_TRUE(m.remove_edge(0, 2));
  EXPECT_EQ(m.core(0), 1);
  EXPECT_EQ(m.core(1), 1);
  EXPECT_EQ(m.core(2), 1);
  expect_state_ok(m, "triangle");
}

TEST(ParallelRemove, MissingEdgeRejected) {
  auto g = test::make_graph(3, {{0, 1}});
  ThreadTeam team(2);
  ParallelOrderMaintainer m(g, team);
  EXPECT_FALSE(m.remove_edge(1, 2));
  EXPECT_FALSE(m.remove_edge(0, 0));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(ParallelRemove, DuplicateRemovalsInBatchApplyOnce) {
  auto g = test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  ThreadTeam team(4);
  ParallelOrderMaintainer m(g, team);
  std::vector<Edge> batch{{1, 2}, {2, 1}, {1, 2}};
  BatchResult r = m.remove_batch(batch, 4);
  EXPECT_EQ(r.applied, 1u);
  EXPECT_EQ(g.num_edges(), 2u);
  test::expect_cores_match(g, m.cores(), "dups");
}

TEST(ParallelRemove, DrainWholeGraph) {
  Rng rng(17);
  auto edges = gen_erdos_renyi(200, 800, rng);
  auto g = DynamicGraph::from_edges(200, edges);
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team);
  BatchResult r = m.remove_batch(edges, 8);
  EXPECT_EQ(r.applied, edges.size());
  EXPECT_EQ(g.num_edges(), 0u);
  for (VertexId v = 0; v < 200; ++v) EXPECT_EQ(m.core(v), 0);
  expect_state_ok(m, "drained");
}

class ParallelRemoveSweep
    : public ::testing::TestWithParam<std::tuple<Family, int, std::uint64_t>> {
};

TEST_P(ParallelRemoveSweep, BatchMatchesBruteForce) {
  auto [family, workers, seed] = GetParam();
  // Build the FULL graph, then remove the batch.
  test::Workload w = test::make_workload(family, 500, 0.3, seed);
  std::vector<Edge> all = w.base;
  all.insert(all.end(), w.batch.begin(), w.batch.end());
  auto g = DynamicGraph::from_edges(w.n, all);
  ThreadTeam team(workers);
  ParallelOrderMaintainer m(g, team);
  BatchResult r = m.remove_batch(w.batch, workers);
  EXPECT_EQ(r.applied, w.batch.size());
  test::expect_cores_match(g, m.cores(), "parallel remove");
  expect_state_ok(m, "parallel remove");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelRemoveSweep,
    ::testing::Combine(::testing::Values(Family::kEr, Family::kBa,
                                         Family::kRmat, Family::kPath),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1u, 2u)),
    [](const auto& info) {
      return std::string(test::family_name(std::get<0>(info.param))) + "_w" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(ParallelRemove, AgreesWithSequentialOrderMaintainer) {
  test::Workload w = test::make_workload(Family::kRmat, 400, 0.25, 55);
  std::vector<Edge> all = w.base;
  all.insert(all.end(), w.batch.begin(), w.batch.end());
  auto g1 = DynamicGraph::from_edges(w.n, all);
  auto g2 = DynamicGraph::from_edges(w.n, all);
  ThreadTeam team(4);
  ParallelOrderMaintainer par(g1, team);
  SeqOrderMaintainer seq(g2);
  par.remove_batch(w.batch, 4);
  seq.remove_batch(w.batch);
  EXPECT_EQ(par.cores(), seq.cores());
}

TEST(ParallelRemove, CliqueCascadeContention) {
  // Removing spokes of a near-clique triggers overlapping cascades at
  // one level — the deadlock-avoidance stress case.
  auto edges = gen_clique(24);
  auto g = DynamicGraph::from_edges(24, edges);
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team);
  Rng rng(3);
  auto batch = sample_edges(g, 120, rng);
  BatchResult r = m.remove_batch(batch, 8);
  EXPECT_EQ(r.applied, batch.size());
  test::expect_cores_match(g, m.cores(), "clique cascade");
  expect_state_ok(m, "clique cascade");
}

TEST(ParallelRemove, BaUniformCoreCascades) {
  // BA graphs have one core value: every removal works in the same
  // level, stressing the conditional-lock protocol.
  Rng rng(9);
  auto edges = gen_barabasi_albert(500, 4, rng);
  auto g = DynamicGraph::from_edges(500, edges);
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team);
  auto batch = sample_edges(g, 400, rng);
  BatchResult r = m.remove_batch(batch, 8);
  EXPECT_EQ(r.applied, batch.size());
  test::expect_cores_match(g, m.cores(), "ba cascades");
  expect_state_ok(m, "ba cascades");
}

TEST(ParallelRemove, CollectStatsHistogramsCover) {
  test::Workload w = test::make_workload(Family::kBa, 300, 0.2, 13);
  std::vector<Edge> all = w.base;
  all.insert(all.end(), w.batch.begin(), w.batch.end());
  auto g = DynamicGraph::from_edges(w.n, all);
  ThreadTeam team(4);
  ParallelOrderMaintainer::Options opts;
  opts.collect_stats = true;
  ParallelOrderMaintainer m(g, team, opts);
  m.remove_batch(w.batch, 4);
  EXPECT_EQ(m.remove_vstar_histogram().total(), w.batch.size());
}

}  // namespace
}  // namespace parcore
