// Property tests: the OrderList against a std::vector reference model
// under long randomized operation sequences, across group capacities
// (small capacities force constant relabel/split/rebalance activity).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "om/order_list.h"
#include "support/rng.h"

namespace parcore {
namespace {

class OmModelTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(OmModelTest, RandomOpsMatchReferenceModel) {
  auto [capacity, seed] = GetParam();
  Rng rng(seed);
  constexpr std::size_t kMaxItems = 400;
  constexpr int kOps = 4000;

  OrderList list(0, capacity);
  auto items = std::make_unique<OmItem[]>(kMaxItems);
  for (std::size_t i = 0; i < kMaxItems; ++i)
    items[i].vertex = static_cast<VertexId>(i);

  std::vector<VertexId> model;  // reference order
  auto model_pos = [&](VertexId v) {
    return std::find(model.begin(), model.end(), v) - model.begin();
  };

  for (int op = 0; op < kOps; ++op) {
    const std::uint64_t kind = rng.bounded(100);
    if (kind < 35 || model.empty()) {
      // insert an unlinked item somewhere
      std::vector<VertexId> free;
      for (VertexId v = 0; v < kMaxItems; ++v)
        if (!items[v].linked()) free.push_back(v);
      if (free.empty()) continue;
      const VertexId v = free[rng.bounded(free.size())];
      const std::uint64_t where = rng.bounded(3);
      if (where == 0 || model.empty()) {
        list.insert_head(&items[v]);
        model.insert(model.begin(), v);
      } else if (where == 1) {
        list.insert_tail(&items[v]);
        model.push_back(v);
      } else {
        const VertexId after = model[rng.bounded(model.size())];
        list.insert_after(&items[after], &items[v]);
        model.insert(model.begin() + model_pos(after) + 1, v);
      }
    } else if (kind < 55 && !model.empty()) {
      // remove a random linked item
      const std::size_t idx = rng.bounded(model.size());
      const VertexId v = model[idx];
      list.remove(&items[v]);
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (model.size() >= 2) {
      // order query between two random items
      const std::size_t i = rng.bounded(model.size());
      std::size_t j = rng.bounded(model.size());
      if (i == j) continue;
      ASSERT_EQ(OrderList::precedes(&items[model[i]], &items[model[j]]),
                i < j)
          << "op " << op;
    }
    if (op % 500 == 0) {
      std::string err;
      ASSERT_TRUE(list.validate(&err)) << "op " << op << ": " << err;
      ASSERT_EQ(list.to_vector(), model) << "op " << op;
    }
  }
  std::string err;
  ASSERT_TRUE(list.validate(&err)) << err;
  ASSERT_EQ(list.to_vector(), model);
  // Snapshot keys must be strictly increasing along the final order.
  for (std::size_t i = 1; i < model.size(); ++i)
    EXPECT_LT(list.snapshot_key(&items[model[i - 1]]),
              list.snapshot_key(&items[model[i]]));
}

INSTANTIATE_TEST_SUITE_P(
    Capacities, OmModelTest,
    ::testing::Combine(::testing::Values(2u, 4u, 16u, 64u),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      return "cap" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(OmModel, AdversarialSameAnchorChurn) {
  // Insert at one anchor, delete right after it, repeatedly — maximum
  // label pressure at a single point with tiny groups.
  OrderList list(0, 2);
  auto items = std::make_unique<OmItem[]>(64);
  items[0].vertex = 0;
  list.insert_tail(&items[0]);
  Rng rng(9);
  std::vector<VertexId> live;  // items currently after anchor
  for (int round = 0; round < 5000; ++round) {
    if (live.size() < 32 && (live.empty() || rng.chance(0.6))) {
      for (VertexId v = 1; v < 64; ++v) {
        if (!items[v].linked()) {
          items[v].vertex = v;
          list.insert_after(&items[0], &items[v]);
          live.insert(live.begin(), v);
          break;
        }
      }
    } else {
      const std::size_t idx = rng.bounded(live.size());
      list.remove(&items[live[idx]]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  std::string err;
  ASSERT_TRUE(list.validate(&err)) << err;
  std::vector<VertexId> expect{0};
  expect.insert(expect.end(), live.begin(), live.end());
  EXPECT_EQ(list.to_vector(), expect);
}

}  // namespace
}  // namespace parcore
