// Streaming engine: ingest buffer semantics, coalescing correctness,
// multi-producer stress cross-checked against a fresh decomposition,
// and epoch-snapshot consistency under concurrent flushes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_set>

#include "decomp/bz.h"
#include "engine/coalesce.h"
#include "engine/engine.h"
#include "engine/ingest.h"
#include "gen/generators.h"
#include "graph/edge_list.h"
#include "support/histogram.h"
#include "test_util.h"

namespace parcore {
namespace {

using engine::CoalescedBatch;
using engine::IngestQueue;
using engine::StreamingEngine;

GraphUpdate ins(VertexId u, VertexId v) {
  return GraphUpdate{Edge{u, v}, UpdateKind::kInsert};
}
GraphUpdate rem(VertexId u, VertexId v) {
  return GraphUpdate{Edge{u, v}, UpdateKind::kRemove};
}

// ------------------------------------------------------------- ingest

TEST(IngestQueue, DrainReturnsEverythingOnce) {
  IngestQueue q(4);
  for (VertexId i = 0; i < 100; ++i) q.push(ins(i, i + 1));
  EXPECT_EQ(q.approx_size(), 100u);
  std::vector<GraphUpdate> out;
  EXPECT_EQ(q.drain(out), 100u);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(q.approx_size(), 0u);
  out.clear();
  EXPECT_EQ(q.drain(out), 0u);
}

TEST(IngestQueue, SingleProducerOrderPreserved) {
  // One thread maps to one shard, so its updates drain in FIFO order.
  IngestQueue q(8);
  for (VertexId i = 0; i < 1000; ++i) q.push(ins(i, i + 1));
  std::vector<GraphUpdate> out;
  q.drain(out);
  ASSERT_EQ(out.size(), 1000u);
  for (VertexId i = 0; i < 1000; ++i) EXPECT_EQ(out[i].e.u, i);
}

TEST(IngestQueue, ConcurrentPushersLoseNothing) {
  IngestQueue q(8);
  constexpr int kThreads = 8, kPer = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&q, t] {
      for (int i = 0; i < kPer; ++i)
        q.push(ins(static_cast<VertexId>(t), static_cast<VertexId>(i + 100)));
    });
  }
  for (auto& th : threads) th.join();
  std::vector<GraphUpdate> out;
  EXPECT_EQ(q.drain(out), static_cast<std::size_t>(kThreads * kPer));
}

// ----------------------------------------------------------- coalesce

TEST(Coalesce, InsertRemovePairAnnihilates) {
  auto g = test::make_graph(4, {});
  std::vector<GraphUpdate> ops{ins(0, 1), rem(0, 1)};
  CoalescedBatch b = engine::coalesce(ops, g);
  EXPECT_TRUE(b.inserts.empty());
  EXPECT_TRUE(b.removes.empty());
  // [insert, remove] on an absent edge: remove wins, nets to a no-op.
  EXPECT_EQ(b.stats.noops, 1u);
  EXPECT_EQ(b.stats.duplicates, 1u);
}

TEST(Coalesce, LastOpWinsNotPureCancellation) {
  // remove(absent) then insert must still insert — drain order
  // serialises the ops, it does not blindly cancel pairs.
  auto g = test::make_graph(4, {});
  std::vector<GraphUpdate> ops{rem(0, 1), ins(0, 1)};
  CoalescedBatch b = engine::coalesce(ops, g);
  ASSERT_EQ(b.inserts.size(), 1u);
  EXPECT_EQ(b.inserts[0], (Edge{0, 1}));
  EXPECT_TRUE(b.removes.empty());
}

TEST(Coalesce, DuplicatesCollapse) {
  auto g = test::make_graph(4, {});
  std::vector<GraphUpdate> ops{ins(0, 1), ins(1, 0), ins(0, 1)};
  CoalescedBatch b = engine::coalesce(ops, g);
  ASSERT_EQ(b.inserts.size(), 1u);  // orientation-insensitive dedup
  EXPECT_EQ(b.stats.duplicates, 2u);
}

TEST(Coalesce, AnnihilationPairsCounted) {
  auto g = test::make_graph(4, {});
  // insert, remove, insert: the final insert wins; the first two form
  // one annihilated pair.
  std::vector<GraphUpdate> ops{ins(0, 1), rem(0, 1), ins(0, 1)};
  CoalescedBatch b = engine::coalesce(ops, g);
  ASSERT_EQ(b.inserts.size(), 1u);
  EXPECT_EQ(b.stats.annihilated_pairs, 1u);
  EXPECT_EQ(b.stats.duplicates, 0u);
}

TEST(Coalesce, NoopsAgainstGraphFiltered) {
  auto g = test::make_graph(4, {Edge{0, 1}});
  std::vector<GraphUpdate> ops{ins(0, 1), rem(2, 3)};
  CoalescedBatch b = engine::coalesce(ops, g);
  EXPECT_TRUE(b.inserts.empty());   // already present
  EXPECT_TRUE(b.removes.empty());   // already absent
  EXPECT_EQ(b.stats.noops, 2u);
}

TEST(Coalesce, RejectsSelfLoopsAndOutOfRange) {
  auto g = test::make_graph(4, {});
  std::vector<GraphUpdate> ops{ins(2, 2), ins(1, 9), rem(7, 8)};
  CoalescedBatch b = engine::coalesce(ops, g);
  EXPECT_TRUE(b.inserts.empty());
  EXPECT_TRUE(b.removes.empty());
  EXPECT_EQ(b.stats.rejected, 3u);
}

TEST(Coalesce, BatchesDisjointAndAccountingExact) {
  // Random hot-set stream: verify the emitted batches never share an
  // edge, match membership, and that every raw op is accounted for.
  Rng rng(99);
  auto edges = gen_erdos_renyi(200, 600, rng);
  canonicalize_edges(edges);
  const std::size_t half = edges.size() / 2;
  auto g = DynamicGraph::from_edges(
      200, std::span<const Edge>(edges.data(), half));
  auto stream = gen_update_stream(edges, 20000, 0.4, 0.8, rng);
  CoalescedBatch b = engine::coalesce(stream, g);

  std::unordered_set<std::uint64_t> seen;
  for (const Edge& e : b.inserts) {
    EXPECT_TRUE(seen.insert(edge_key(e)).second);
    EXPECT_FALSE(g.has_edge(e.u, e.v));
  }
  for (const Edge& e : b.removes) {
    EXPECT_TRUE(seen.insert(edge_key(e)).second);
    EXPECT_TRUE(g.has_edge(e.u, e.v));
  }
  EXPECT_EQ(b.stats.raw, b.stats.rejected + 2 * b.stats.annihilated_pairs +
                             b.stats.duplicates + b.stats.noops +
                             b.inserts.size() + b.removes.size());
  EXPECT_GT(b.stats.annihilated_pairs, 0u);
  EXPECT_GT(b.stats.duplicates, 0u);
}

// ------------------------------------------------------------- engine

TEST(Engine, ManualFlushMatchesDecomposition) {
  test::Workload w = test::make_workload(test::Family::kRmat, 400, 0.3, 17);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(4);
  StreamingEngine eng(g, team);  // never start()ed: manual mode

  EXPECT_EQ(eng.epoch(), 0u);
  for (const Edge& e : w.batch) eng.submit_insert(e.u, e.v);
  eng.flush_now();
  EXPECT_EQ(eng.epoch(), 1u);
  test::expect_cores_match(g, eng.snapshot()->materialize(),
                           "after insert flush");

  for (const Edge& e : w.batch) eng.submit_remove(e.u, e.v);
  eng.flush_now();
  EXPECT_EQ(eng.epoch(), 2u);
  test::expect_cores_match(g, eng.snapshot()->materialize(),
                           "after remove flush");
}

TEST(Engine, SnapshotKCoreMembership) {
  auto edges = gen_clique(6);  // core 5 everywhere
  auto g = DynamicGraph::from_edges(10, edges);
  ThreadTeam team(2);
  StreamingEngine eng(g, team);
  auto snap = eng.snapshot();
  EXPECT_EQ(snap->kcore_members(5).size(), 6u);
  EXPECT_EQ(snap->kcore_members(6).size(), 0u);
  EXPECT_TRUE(snap->in_kcore(0, 5));
  EXPECT_FALSE(snap->in_kcore(9, 1));  // isolated vertex
}

TEST(Engine, OmCompactionReclaimsGroupsAtQuiescentPoints) {
  test::Workload w = test::make_workload(test::Family::kRmat, 300, 0.4, 23);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(2);
  StreamingEngine::Options opts;
  opts.om_compact_interval = 1;  // compact at every flush
  // Tiny OM groups force constant splits/rebalances, so quarantined
  // groups actually accumulate between flushes.
  opts.maintainer.state.om_group_capacity = 2;
  StreamingEngine eng(g, team, opts);

  for (const Edge& e : w.batch) eng.submit_insert(e.u, e.v);
  eng.flush_now();
  for (const Edge& e : w.batch) eng.submit_remove(e.u, e.v);
  eng.flush_now();
  for (const Edge& e : w.batch) eng.submit_insert(e.u, e.v);
  eng.flush_now();

  const engine::EngineStats stats = eng.stats();
  EXPECT_EQ(stats.om_compactions, 3u);
  EXPECT_GT(stats.om_groups_reclaimed, 0u);
  EXPECT_GT(stats.memory.total_bytes(), 0u);
  test::expect_cores_match(g, eng.snapshot()->materialize(),
                           "after compactions");
}

TEST(Engine, OmCompactionIntervalZeroDisables) {
  auto g = DynamicGraph::from_edges(8, {});
  ThreadTeam team(2);
  StreamingEngine::Options opts;
  opts.om_compact_interval = 0;
  StreamingEngine eng(g, team, opts);
  eng.submit_insert(0, 1);
  eng.flush_now();
  EXPECT_EQ(eng.stats().om_compactions, 0u);
}

TEST(Engine, SnapshotGraphCopiesCompactArena) {
  test::Workload w = test::make_workload(test::Family::kEr, 200, 0.3, 31);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(2);
  StreamingEngine::Options opts;
  opts.snapshot_graph = true;
  StreamingEngine eng(g, team, opts);

  auto epoch0 = eng.snapshot();
  ASSERT_NE(epoch0->graph, nullptr);
  EXPECT_EQ(epoch0->graph->num_edges(), g.num_edges());

  for (const Edge& e : w.batch) eng.submit_insert(e.u, e.v);
  eng.flush_now();
  auto epoch1 = eng.snapshot();
  ASSERT_NE(epoch1->graph, nullptr);
  // The epoch-0 copy is immutable: it still shows the pre-flush state.
  EXPECT_EQ(epoch0->graph->num_edges(), w.base.size());
  EXPECT_EQ(epoch1->graph->num_edges(), g.num_edges());
  // The copy is compact: no free-list residue, no growth slack beyond
  // size-class rounding.
  EXPECT_EQ(epoch1->graph->memory_stats().freelist_bytes, 0u);
}

TEST(Engine, SnapshotGraphOffByDefault) {
  auto g = DynamicGraph::from_edges(4, {});
  ThreadTeam team(1);
  StreamingEngine eng(g, team);
  EXPECT_EQ(eng.snapshot()->graph, nullptr);
}

TEST(Engine, StopFlushesTail) {
  auto g = DynamicGraph::from_edges(8, {});
  ThreadTeam team(2);
  {
    StreamingEngine eng(g, team);
    eng.start();
    eng.submit_insert(0, 1);
    eng.submit_insert(1, 2);
    eng.submit_insert(0, 2);
    eng.stop();
    EXPECT_EQ(eng.core(0), 2);
  }
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Engine, StartStopCycleKeepsFlushing) {
  auto g = DynamicGraph::from_edges(8, {});
  ThreadTeam team(2);
  StreamingEngine::Options opts;
  opts.flush_interval_ms = 0.5;
  StreamingEngine eng(g, team, opts);
  eng.start();
  eng.submit_insert(0, 1);
  eng.stop();
  eng.start();  // the restarted scheduler must be live, not stop-armed
  eng.submit_insert(1, 2);
  eng.submit_insert(0, 2);
  // Interval-driven flushes must apply these without stop()'s help.
  for (int i = 0; i < 2000 && g.num_edges() < 3; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(g.num_edges(), 3u);
  eng.stop();
  EXPECT_EQ(eng.core(0), 2);
}

// The acceptance-criteria stress: >= 4 producers, >= 100k interleaved
// updates against a live engine; the final core numbers must match a
// fresh BZ decomposition of the resulting graph for every vertex.
//
// Producers own disjoint edge universes, so the expected end-state is
// the deterministic per-producer replay even though the cross-producer
// interleaving (and the flush boundaries) are scheduler-dependent.
TEST(Engine, MultiProducerStressMatchesDecomposition) {
  constexpr int kProducers = 4;
  constexpr std::size_t kOpsPerProducer = 25000;  // 100k total

  Rng rng(4242);
  const std::size_t n = 3000;
  auto candidates = gen_erdos_renyi(n, 12000, rng);
  canonicalize_edges(candidates);
  rng.shuffle(candidates);
  // First half of the candidates form the base graph; producers churn
  // over per-producer slices of the whole candidate set.
  const std::size_t base_count = candidates.size() / 2;
  std::vector<Edge> base(candidates.begin(),
                         candidates.begin() +
                             static_cast<std::ptrdiff_t>(base_count));

  std::vector<std::vector<GraphUpdate>> streams;
  const std::size_t slice = candidates.size() / kProducers;
  for (int p = 0; p < kProducers; ++p) {
    std::span<const Edge> universe(candidates.data() + p * slice, slice);
    Rng prng(1000 + static_cast<std::uint64_t>(p));
    streams.push_back(
        gen_update_stream(universe, kOpsPerProducer, 0.45, 0.7, prng));
  }

  auto g = DynamicGraph::from_edges(n, base);
  ThreadTeam team(8);
  StreamingEngine::Options opts;
  opts.flush_threshold = 2048;
  opts.flush_interval_ms = 1.0;
  opts.workers = 4;
  opts.adaptive = true;
  opts.target_flush_ms = 4.0;
  StreamingEngine eng(g, team, opts);
  eng.start();

  // Two waves with an explicit flush between them: guarantees the
  // final state spans >= 2 epochs regardless of scheduler timing (the
  // scheduler typically adds many more).
  for (int wave = 0; wave < 2; ++wave) {
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&eng, &streams, p, wave] {
        const auto& stream = streams[static_cast<std::size_t>(p)];
        const std::size_t half = stream.size() / 2;
        const std::size_t lo = wave == 0 ? 0 : half;
        const std::size_t hi = wave == 0 ? half : stream.size();
        for (std::size_t i = lo; i < hi; ++i) eng.submit(stream[i]);
      });
    }
    for (auto& t : producers) t.join();
    if (wave == 0) eng.flush_now();
  }
  eng.stop();

  // Expected end state: base edges, then each producer's stream
  // replayed sequentially (disjoint universes make the order across
  // producers irrelevant).
  std::unordered_set<std::uint64_t> expect_present;
  for (const Edge& e : base) expect_present.insert(edge_key(e));
  for (const auto& stream : streams) {
    for (const GraphUpdate& u : stream) {
      if (u.kind == UpdateKind::kInsert)
        expect_present.insert(edge_key(u.e));
      else
        expect_present.erase(edge_key(u.e));
    }
  }
  std::vector<Edge> expect_edges;
  expect_edges.reserve(expect_present.size());
  for (std::uint64_t key : expect_present)
    expect_edges.push_back(Edge{static_cast<VertexId>(key >> 32),
                                static_cast<VertexId>(key & 0xffffffffu)});

  // 1. The engine's graph must be exactly the expected edge set.
  ASSERT_EQ(g.num_edges(), expect_present.size());
  for (const Edge& e : expect_edges) ASSERT_TRUE(g.has_edge(e.u, e.v));

  // 2. Engine cores == fresh decomposition, every vertex.
  auto expect_g = DynamicGraph::from_edges(n, expect_edges);
  Decomposition fresh = bz_decompose(expect_g);
  auto snap = eng.snapshot();
  ASSERT_EQ(snap->num_vertices(), n);
  const std::vector<CoreValue> cores = snap->materialize();
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_EQ(cores[v], fresh.core[v]) << "vertex " << v;
    ASSERT_EQ(snap->view.core(v), fresh.core[v]) << "view vertex " << v;
  }

  // 3. The hot-set stream must have exercised the coalescer, and the
  //    accounting must balance: every submitted op drained + bucketed.
  engine::EngineStats st = eng.stats();
  EXPECT_EQ(st.submitted, kProducers * kOpsPerProducer);
  EXPECT_GE(st.epochs, 2u);
  EXPECT_GT(st.coalesce.annihilated_pairs, 0u);
  EXPECT_GT(st.coalesce.duplicates, 0u);
  EXPECT_EQ(st.coalesce.raw, st.submitted);
  EXPECT_EQ(st.coalesce.raw,
            st.coalesce.rejected + 2 * st.coalesce.annihilated_pairs +
                st.coalesce.duplicates + st.coalesce.noops +
                st.applied_inserts + st.applied_removes + st.skipped);
  // The coalescer pre-filters everything the maintainer would skip.
  EXPECT_EQ(st.skipped, 0u);
  EXPECT_EQ(st.flush_us.total(), st.epochs);

  // 4. Invariants of the maintained order structure still hold.
  std::string err;
  ASSERT_TRUE(eng.maintainer().state().check_invariants(g, &err)) << err;
}

// Readers must always observe immutable, epoch-monotonic snapshots
// while flushes are racing.
TEST(Engine, SnapshotConsistencyUnderConcurrentFlushes) {
  Rng rng(7);
  const std::size_t n = 800;
  auto candidates = gen_erdos_renyi(n, 3200, rng);
  canonicalize_edges(candidates);
  auto g = DynamicGraph::from_edges(
      n, std::span<const Edge>(candidates.data(), candidates.size() / 2));
  ThreadTeam team(4);
  StreamingEngine::Options opts;
  opts.flush_threshold = 512;
  opts.flush_interval_ms = 0.5;
  opts.workers = 2;
  StreamingEngine eng(g, team, opts);
  eng.start();

  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::thread reader([&] {
    std::uint64_t last_epoch = 0;
    std::shared_ptr<const engine::EngineSnapshot> held = eng.snapshot();
    const std::vector<CoreValue> held_copy = held->materialize();
    while (!done.load(std::memory_order_relaxed)) {
      auto snap = eng.snapshot();
      if (snap->epoch < last_epoch || snap->num_vertices() != n) {
        failed.store(true);
        return;
      }
      last_epoch = snap->epoch;
    }
    // A held snapshot is immutable: later flushes must never have
    // touched its (page-shared) view.
    if (held->materialize() != held_copy) failed.store(true);
  });

  Rng prng(31);
  auto stream = gen_update_stream(candidates, 60000, 0.5, 0.6, prng);
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = static_cast<std::size_t>(p); i < stream.size();
           i += 2)
        eng.submit(stream[i]);
    });
  }
  for (auto& t : producers) t.join();
  eng.stop();
  done.store(true);
  reader.join();
  EXPECT_FALSE(failed.load());

  // Final snapshot agrees with a fresh decomposition of the end state.
  test::expect_cores_match(g, eng.snapshot()->materialize(), "final snapshot");
}

// ISSUE 5 satellite: publish_snapshot used to run BEFORE the stats
// update, so a reader could observe snapshot epoch e paired with stats
// from epoch e-1. The flush now stamps EngineStats with the epoch it
// describes and swaps the snapshot in last; a reader that grabs
// snapshot() then stats() must always see stats.epochs >= snap->epoch.
TEST(Engine, StatsNeverLagTheSnapshotTheyDescribe) {
  Rng rng(21);
  const std::size_t n = 600;
  auto candidates = gen_erdos_renyi(n, 2400, rng);
  canonicalize_edges(candidates);
  auto g = DynamicGraph::from_edges(
      n, std::span<const Edge>(candidates.data(), candidates.size() / 2));
  ThreadTeam team(4);
  StreamingEngine::Options opts;
  opts.flush_threshold = 256;
  opts.flush_interval_ms = 0.2;
  opts.workers = 2;
  StreamingEngine eng(g, team, opts);
  eng.start();

  std::atomic<bool> done{false};
  std::atomic<bool> torn{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        auto snap = eng.snapshot();            // observe epoch first...
        const engine::EngineStats st = eng.stats();  // ...then its stats
        if (st.epochs < snap->epoch) {
          torn.store(true);
          return;
        }
      }
    });
  }

  Rng prng(77);
  auto stream = gen_update_stream(candidates, 40000, 0.5, 0.6, prng);
  for (const GraphUpdate& u : stream) eng.submit(u);
  eng.stop();
  done.store(true);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(torn.load());
  EXPECT_GE(eng.stats().epochs, eng.snapshot()->epoch);
}

TEST(Engine, AdaptiveThresholdMovesTowardTarget) {
  Rng rng(13);
  const std::size_t n = 500;
  auto candidates = gen_erdos_renyi(n, 2000, rng);
  canonicalize_edges(candidates);
  auto g = DynamicGraph::from_edges(n, {});
  ThreadTeam team(2);
  StreamingEngine::Options opts;
  opts.flush_threshold = 4096;
  opts.adaptive = true;
  opts.target_flush_ms = 1e-6;  // unreachably fast: must shrink
  opts.min_threshold = 16;
  StreamingEngine eng(g, team, opts);
  auto stream = gen_update_stream(candidates, 20000, 0.3, 0.5, rng);
  for (const GraphUpdate& u : stream) eng.submit(u);
  for (int i = 0; i < 6; ++i) eng.flush_now();
  EXPECT_LT(eng.current_flush_threshold(), 4096u);
}

// -------------------------------------------------------- self-healing

TEST(Engine, ReverifierQuarantinesCorruptionAndNextFlushRepairsIt) {
  test::Workload w = test::make_workload(test::Family::kRmat, 300, 0.3, 29);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(4);
  StreamingEngine::Options opts;
  opts.workers = 2;
  StreamingEngine eng(g, team, opts);
  for (const Edge& e : w.batch) eng.submit_insert(e.u, e.v);
  eng.flush_now();
  const std::uint64_t epoch_before = eng.epoch();

  // A clean verify pins the current snapshot as the verified fallback.
  EXPECT_EQ(eng.run_reverify_once(), 0u);
  EXPECT_FALSE(eng.quarantined());
  const std::vector<CoreValue> verified = eng.snapshot()->materialize();

  // Inject silent state corruption (a flipped core value, as a cosmic
  // ray / heisenbug stand-in) and republish it.
  const std::vector<VertexId> victims{0, 1, 2};
  eng.corrupt_cores_for_test(victims, +1);
  {
    auto snap = eng.snapshot();
    for (VertexId v : victims)
      EXPECT_EQ(snap->core(v), verified[v] + 1) << "corruption not visible";
  }

  // The re-verifier detects the mismatch and quarantines queries: the
  // snapshot swings back to the last VERIFIED epoch's values.
  EXPECT_GT(eng.run_reverify_once(), 0u);
  EXPECT_TRUE(eng.quarantined());
  EXPECT_TRUE(eng.stats().quarantined);
  {
    auto snap = eng.snapshot();
    EXPECT_EQ(snap->epoch, epoch_before);
    for (VertexId v : victims)
      EXPECT_EQ(snap->core(v), verified[v]) << "quarantine not serving "
                                               "the verified snapshot";
  }

  // The next flush rebuilds from scratch, repairs the corruption, and
  // lifts the quarantine — within one flush, as promised.
  eng.flush_now();
  EXPECT_FALSE(eng.quarantined());
  const engine::EngineStats stats = eng.stats();
  EXPECT_EQ(stats.repairs, 1u);
  EXPECT_GT(stats.phases.repair_us, 0u);
  test::expect_cores_match(g, eng.snapshot()->materialize(), "post-repair");

  // And the repaired state passes a fresh verify.
  EXPECT_EQ(eng.run_reverify_once(), 0u);
}

TEST(Engine, RepairFlushAppliesPendingSubmitsToo) {
  // Corruption + a pending batch: one flush both repairs and applies.
  test::Workload w = test::make_workload(test::Family::kBa, 200, 0.4, 31);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(2);
  StreamingEngine eng(g, team);
  EXPECT_EQ(eng.run_reverify_once(), 0u);
  eng.corrupt_cores_for_test({3, 4}, +2);
  EXPECT_GT(eng.run_reverify_once(), 0u);

  for (const Edge& e : w.batch) eng.submit_insert(e.u, e.v);
  eng.flush_now();
  EXPECT_FALSE(eng.quarantined());
  EXPECT_EQ(eng.stats().repairs, 1u);
  test::expect_cores_match(g, eng.snapshot()->materialize(),
                           "repair + apply in one flush");
}

TEST(Engine, SchedulerRunsRepairFlushWithoutNewSubmits) {
  // With the background scheduler running, a detected mismatch must be
  // repaired even if no further updates ever arrive: the re-verifier
  // nudges the scheduler, whose next flush runs the rebuild.
  auto edges = gen_clique(8);
  auto g = DynamicGraph::from_edges(12, edges);
  ThreadTeam team(2);
  StreamingEngine eng(g, team);
  eng.start();
  EXPECT_EQ(eng.run_reverify_once(), 0u);
  eng.corrupt_cores_for_test({0}, +3);
  EXPECT_GT(eng.run_reverify_once(), 0u);
  for (int spins = 0; eng.quarantined() && spins < 500; ++spins)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  eng.stop();
  EXPECT_FALSE(eng.quarantined());
  EXPECT_GE(eng.stats().repairs, 1u);
  test::expect_cores_match(g, eng.snapshot()->materialize(),
                           "background repair");
}

TEST(Histogram, PercentileBounds) {
  SizeHistogram h(100);
  for (std::size_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.percentile(0.5), 50u);
  EXPECT_EQ(h.percentile(0.99), 99u);
  EXPECT_EQ(h.percentile(1.0), 100u);
  EXPECT_EQ(h.percentile(0.0), 1u);
  SizeHistogram empty(8);
  EXPECT_EQ(empty.percentile(0.5), 0u);
  SizeHistogram tiny(4);
  tiny.record(1000);  // overflow bucket
  EXPECT_EQ(tiny.percentile(0.5), 1000u);
}

}  // namespace
}  // namespace parcore
