// White-box checks of the k-order sequence dynamics the paper's
// examples (3.1, 3.2, 4.1, 4.2) describe: where candidates, evicted
// vertices and demoted vertices land inside the order lists.
#include <gtest/gtest.h>

#include <algorithm>

#include "maint/seq_order.h"
#include "parallel/parallel_order.h"
#include "test_util.h"

namespace parcore {
namespace {

std::vector<VertexId> level_sequence(CoreState& st, CoreValue k) {
  OrderList* list = st.levels().get(k);
  return list == nullptr ? std::vector<VertexId>{} : list->to_vector();
}

std::size_t position_of(const std::vector<VertexId>& seq, VertexId v) {
  auto it = std::find(seq.begin(), seq.end(), v);
  EXPECT_NE(it, seq.end()) << "vertex " << v << " not in sequence";
  return static_cast<std::size_t>(it - seq.begin());
}

TEST(KOrderSemantics, PromotedCandidatesMoveToHeadOfNextLevel) {
  // Completing a triangle promotes {0,1,2} from O_1 to O_2; they must
  // land at the HEAD of O_2 (Algorithm 2 line 10), before the existing
  // 2-core vertices {3,4,5}.
  auto g = test::make_graph(6, {{0, 1}, {1, 2},             // path (core 1)
                                {3, 4}, {4, 5}, {3, 5}});   // triangle
  SeqOrderMaintainer m(g);
  ASSERT_EQ(m.core(3), 2);
  ASSERT_TRUE(m.insert_edge(0, 2));
  ASSERT_EQ(m.core(0), 2);

  auto o2 = level_sequence(m.state(), 2);
  ASSERT_EQ(o2.size(), 6u);
  // All promoted vertices precede all original O_2 members.
  std::size_t worst_promoted = 0, best_original = o2.size();
  for (VertexId v : {0u, 1u, 2u})
    worst_promoted = std::max(worst_promoted, position_of(o2, v));
  for (VertexId v : {3u, 4u, 5u})
    best_original = std::min(best_original, position_of(o2, v));
  EXPECT_LT(worst_promoted, best_original);
}

TEST(KOrderSemantics, PromotionPreservesRelativeOrderOfCandidates) {
  // Grow a 4-clique out of a path: all four vertices promote together;
  // their relative k-order inside O_K must be preserved in O_{K+1}.
  DynamicGraph g(4);
  SeqOrderMaintainer m(g);
  std::vector<Edge> clique = {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}};
  for (const Edge& e : clique) ASSERT_TRUE(m.insert_edge(e.u, e.v));

  auto before = level_sequence(m.state(), 2);  // current top level
  ASSERT_EQ(before.size(), 4u);
  ASSERT_TRUE(m.insert_edge(2, 3));  // completes K4: all promote to 3
  auto after = level_sequence(m.state(), 3);
  ASSERT_EQ(after.size(), 4u);
  // Same relative order.
  for (std::size_t i = 1; i < before.size(); ++i)
    EXPECT_LT(position_of(after, before[i - 1]),
              position_of(after, before[i]));
}

TEST(KOrderSemantics, RemovalAppendsDemotedAtTail) {
  // v sits in O_1; breaking the triangle demotes {0,1,2} to O_1, where
  // they must be APPENDED (Algorithm 3 line 11) — after v.
  auto g = test::make_graph(4, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  SeqOrderMaintainer m(g);
  ASSERT_EQ(m.core(3), 1);
  ASSERT_TRUE(m.remove_edge(1, 2));
  auto o1 = level_sequence(m.state(), 1);
  ASSERT_EQ(o1.size(), 4u);
  const std::size_t pos_v = position_of(o1, 3);
  for (VertexId demoted : {0u, 1u, 2u})
    EXPECT_GT(position_of(o1, demoted), pos_v);
}

TEST(KOrderSemantics, BackwardEvictionWithoutPromotion) {
  // 4-cycle plus chord: inserting the chord raises the lower endpoint's
  // remaining out-degree above K = 2, but no 3-core exists — the
  // propagation must end with Backward evicting everything, cores
  // unchanged, and the reordered O_2 still a valid k-order.
  auto g = test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  SeqOrderMaintainer m(g);
  for (VertexId v = 0; v < 4; ++v) ASSERT_EQ(m.core(v), 2);
  auto o2_before = level_sequence(m.state(), 2);
  ASSERT_TRUE(m.insert_edge(0, 2));  // chord: Forward then full eviction
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(m.core(v), 2);
  auto o2_after = level_sequence(m.state(), 2);
  EXPECT_EQ(o2_before.size(), o2_after.size());
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(g, &err)) << err;
}

TEST(KOrderSemantics, ParallelPromotionLandsBeforeExistingLevel) {
  // Same head-insertion property must hold for the parallel maintainer
  // with contending workers: promote many triangles concurrently into a
  // level that already has residents.
  std::vector<Edge> base;
  // 20 disjoint paths of 3 (future triangles), plus one resident
  // triangle {60,61,62}.
  for (VertexId t = 0; t < 20; ++t) {
    const VertexId a = t * 3;
    base.push_back(Edge{a, static_cast<VertexId>(a + 1)});
    base.push_back(Edge{static_cast<VertexId>(a + 1),
                        static_cast<VertexId>(a + 2)});
  }
  base.push_back(Edge{60, 61});
  base.push_back(Edge{61, 62});
  base.push_back(Edge{60, 62});
  auto g = DynamicGraph::from_edges(63, base);
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team);

  std::vector<Edge> closers;
  for (VertexId t = 0; t < 20; ++t)
    closers.push_back(Edge{static_cast<VertexId>(t * 3),
                           static_cast<VertexId>(t * 3 + 2)});
  m.insert_batch(closers, 8);
  for (VertexId v = 0; v < 60; ++v) ASSERT_EQ(m.core(v), 2) << v;

  auto o2 = level_sequence(m.state(), 2);
  ASSERT_EQ(o2.size(), 63u);
  // The resident triangle must come after every promoted vertex.
  const std::size_t resident_min =
      std::min({position_of(o2, 60), position_of(o2, 61),
                position_of(o2, 62)});
  for (VertexId v = 0; v < 60; ++v)
    EXPECT_LT(position_of(o2, v), resident_min + 3);
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(g, &err)) << err;
}

TEST(KOrderSemantics, GlobalOrderIsValidAfterLongMixedRun) {
  test::Workload w = test::make_workload(test::Family::kRmat, 300, 0.5, 17);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  SeqOrderMaintainer m(g);
  Rng rng(99);
  auto batch = w.batch;
  std::size_t inserted = 0;
  for (int round = 0; round < 6; ++round) {
    for (std::size_t i = inserted;
         i < std::min(batch.size(), inserted + 40); ++i)
      m.insert_edge(batch[i].u, batch[i].v);
    inserted = std::min(batch.size(), inserted + 40);
    // Remove a random half of what's inserted so far.
    for (std::size_t i = 0; i < inserted; ++i)
      if (rng.chance(0.3)) m.remove_edge(batch[i].u, batch[i].v);
    // Reinsert everything removed.
    for (std::size_t i = 0; i < inserted; ++i)
      if (!g.has_edge(batch[i].u, batch[i].v))
        m.insert_edge(batch[i].u, batch[i].v);
    std::string err;
    ASSERT_TRUE(m.state().check_invariants(g, &err))
        << "round " << round << ": " << err;
  }
}

}  // namespace
}  // namespace parcore
