// Observability substrate tests (ISSUE 6): registry correctness under
// concurrent hammering (run under TSan in CI), flush-trace ring
// wraparound, exporter golden output, and the loopback HTTP pair.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace parcore::obs {
namespace {

// Recording tests need the compile-time switch on and the runtime gate
// open; the gate is restored per-test so suite order never matters.
class ObsRecordingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kCompiledIn) GTEST_SKIP() << "built with PARCORE_OBS=OFF";
    was_enabled_ = enabled();
    set_enabled(true);
  }
  void TearDown() override {
    if (kCompiledIn) set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_ = true;
};

using ObsRegistryTest = ObsRecordingTest;
using ObsExportTest = ObsRecordingTest;

TEST_F(ObsRecordingTest, CounterExactUnderThreads) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hammer_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPer = 200000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPer; ++i) c.inc();
    });
  for (auto& th : pool) th.join();
  // Sharded cells may split the count arbitrarily; the sum is exact.
  EXPECT_EQ(c.value(), kThreads * kPer);
}

TEST_F(ObsRecordingTest, GaugeSetAddAndNegative) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("level");
  g.set(100);
  g.add(-150);
  EXPECT_EQ(g.value(), -50);
}

TEST_F(ObsRecordingTest, HistogramBucketsAndQuantiles) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(3), 7u);

  MetricsRegistry reg;
  Histogram& h = reg.histogram("values");
  for (int i = 0; i < 90; ++i) h.record(1);
  for (int i = 0; i < 10; ++i) h.record(1000);
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 90u + 10u * 1000u);
  EXPECT_NEAR(snap.mean(), 100.9, 1e-9);
  EXPECT_EQ(snap.quantile_upper(0.5), 1u);
  // 1000 has bit_width 10 -> bucket 10, upper bound 2^10 - 1.
  EXPECT_EQ(snap.quantile_upper(0.99), 1023u);
}

TEST_F(ObsRecordingTest, HistogramExactUnderThreads) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("concurrent");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPer = 50000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPer; ++i)
        h.record(static_cast<std::uint64_t>(t));
    });
  for (auto& th : pool) th.join();
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPer);
  EXPECT_EQ(snap.sum, kPer * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST_F(ObsRecordingTest, RuntimeGateDropsRecords) {
  MetricsRegistry reg;
  Counter& c = reg.counter("gated");
  Histogram& h = reg.histogram("gated_h");
  set_enabled(false);
  c.add(7);
  h.record(7);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  set_enabled(true);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST_F(ObsRegistryTest, SameNameSameHandle) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x_total");
  Counter& b = reg.counter("x_total");
  EXPECT_EQ(&a, &b);
  // Kinds are separate namespaces: a gauge named like a counter is a
  // distinct metric.
  Gauge& g = reg.gauge("x_total");
  g.set(3);
  a.inc();
  EXPECT_EQ(a.value(), 1u);
  EXPECT_EQ(g.value(), 3);
}

TEST_F(ObsRegistryTest, CollectPreservesRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("b_total").add(2);
  reg.counter("a_total").add(1);
  reg.gauge("z").set(-5);
  reg.histogram("lat").record(3);

  std::vector<MetricsRegistry::CounterRow> counters;
  std::vector<MetricsRegistry::GaugeRow> gauges;
  std::vector<MetricsRegistry::HistogramRow> histograms;
  reg.collect(counters, gauges, histograms);
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].name, "b_total");  // registration, not sort, order
  EXPECT_EQ(counters[0].value, 2u);
  EXPECT_EQ(counters[1].name, "a_total");
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].value, -5);
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_EQ(histograms[0].snap.count, 1u);
}

// Registration races recording and collection: 8 threads repeatedly
// look up overlapping names, bump them, and interleave collect() calls.
// The assertion is the final exact total; the point is a clean TSan run.
TEST_F(ObsRegistryTest, ConcurrentRegisterRecordCollect) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<std::uint64_t> expected{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&reg, &expected, t] {
      const std::string name = "shared_" + std::to_string(t % 3) + "_total";
      for (int i = 0; i < kIters; ++i) {
        reg.counter(name).inc();
        expected.fetch_add(1, std::memory_order_relaxed);
        if (i % 256 == 0) {
          std::vector<MetricsRegistry::CounterRow> counters;
          std::vector<MetricsRegistry::GaugeRow> gauges;
          std::vector<MetricsRegistry::HistogramRow> histograms;
          reg.collect(counters, gauges, histograms);
          EXPECT_LE(counters.size(), 3u);
        }
      }
    });
  for (auto& th : pool) th.join();
  std::uint64_t total = 0;
  for (int k = 0; k < 3; ++k)
    total += reg.counter("shared_" + std::to_string(k) + "_total").value();
  EXPECT_EQ(total, expected.load());
}

TEST(FlushTraceTest, RingWrapsOldestFirst) {
  FlushTrace trace(4);
  EXPECT_EQ(trace.capacity(), 4u);
  for (std::uint64_t e = 1; e <= 10; ++e) {
    FlushSpan s;
    s.epoch = e;
    trace.record(s);
  }
  EXPECT_EQ(trace.recorded(), 10u);
  const std::vector<FlushSpan> kept = trace.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front().epoch, 7u);
  EXPECT_EQ(kept.back().epoch, 10u);
  for (std::size_t i = 1; i < kept.size(); ++i)
    EXPECT_EQ(kept[i].epoch, kept[i - 1].epoch + 1);
}

TEST(FlushTraceTest, PartiallyFilledKeepsAll) {
  FlushTrace trace(8);
  for (std::uint64_t e = 1; e <= 3; ++e) {
    FlushSpan s;
    s.epoch = e;
    trace.record(s);
  }
  const std::vector<FlushSpan> kept = trace.snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].epoch, 1u);
  EXPECT_EQ(kept[2].epoch, 3u);
}

TEST(FlushTraceTest, ZeroCapacityClampsToOne) {
  FlushTrace trace(0);
  EXPECT_EQ(trace.capacity(), 1u);
  FlushSpan s;
  s.epoch = 42;
  trace.record(s);
  ASSERT_EQ(trace.snapshot().size(), 1u);
  EXPECT_EQ(trace.snapshot()[0].epoch, 42u);
}

// One writer (flush cadence) races snapshot readers; spans must never
// tear (epoch stamped in every field makes a torn copy detectable).
TEST(FlushTraceTest, ConcurrentRecordAndSnapshot) {
  FlushTrace trace(16);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (std::uint64_t e = 1; e <= 20000; ++e) {
      FlushSpan s;
      s.epoch = e;
      s.raw = e;
      s.flush_us = e;
      trace.record(s);
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      for (const FlushSpan& s : trace.snapshot()) {
        EXPECT_EQ(s.raw, s.epoch);
        EXPECT_EQ(s.flush_us, s.epoch);
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(trace.recorded(), 20000u);
}

TEST_F(ObsExportTest, PrometheusTextGolden) {
  MetricsRegistry reg;
  reg.counter("parcore_test_flushes_total").add(3);
  reg.gauge("parcore_test_epoch").set(-2);
  Histogram& h = reg.histogram("parcore_test_batch");
  h.record(1);
  h.record(1);
  h.record(5);

  const std::string text = prometheus_text(reg);
  EXPECT_EQ(text,
            "# TYPE parcore_test_flushes_total counter\n"
            "parcore_test_flushes_total 3\n"
            "# TYPE parcore_test_epoch gauge\n"
            "parcore_test_epoch -2\n"
            "# TYPE parcore_test_batch histogram\n"
            "parcore_test_batch_bucket{le=\"1\"} 2\n"
            "parcore_test_batch_bucket{le=\"7\"} 3\n"
            "parcore_test_batch_bucket{le=\"+Inf\"} 3\n"
            "parcore_test_batch_sum 7\n"
            "parcore_test_batch_count 3\n");
}

TEST_F(ObsExportTest, HumanSummaryGolden) {
  MetricsRegistry reg;
  reg.counter("updates_total").add(10);
  reg.gauge("epoch").set(4);
  Histogram& h = reg.histogram("flush_us");
  for (int i = 0; i < 4; ++i) h.record(100);

  EXPECT_EQ(human_summary(reg),
            "metrics:\n"
            "  updates_total = 10\n"
            "  epoch = 4\n"
            "histograms (count / mean / ~p50 / ~p99):\n"
            "  flush_us = 4 / 100.0 / <=127 / <=127\n");
}

TEST(ObsExportPlain, EmptyRegistryRendersEmpty) {
  MetricsRegistry reg;
  EXPECT_EQ(prometheus_text(reg), "");
  EXPECT_EQ(human_summary(reg), "");
}

TEST(ObsExportPlain, TraceJsonLineGolden) {
  FlushSpan s;
  s.epoch = 7;
  s.raw = 100;
  s.inserts = 60;
  s.removes = 30;
  s.pages_cloned = 5;
  s.repair_us = 3;
  s.drain_us = 10;
  s.coalesce_us = 20;
  s.wal_us = 5;
  s.plan_us = 30;
  s.apply_us = 40;
  s.om_compact_us = 50;
  s.publish_us = 60;
  s.checkpoint_us = 8;
  s.flush_us = 231;
  s.workers = 4;
  s.worker_busy_us = 120;
  s.worker_idle_us = 40;
  s.steal_chunks = 2;
  EXPECT_EQ(trace_json_line(s),
            "{\"epoch\":7,\"raw\":100,\"inserts\":60,\"removes\":30,"
            "\"pages_cloned\":5,\"repair_us\":3,\"drain_us\":10,"
            "\"coalesce_us\":20,\"wal_us\":5,\"plan_us\":30,\"apply_us\":40,"
            "\"om_compact_us\":50,\"publish_us\":60,\"checkpoint_us\":8,"
            "\"flush_us\":231,\"workers\":4,\"worker_busy_us\":120,"
            "\"worker_idle_us\":40,\"steal_chunks\":2}");
}

TEST(ObsHttpTest, ServeAndFetchRoundTrip) {
  MetricsHttpServer server;
  // Port 0: ephemeral bind, so parallel test runs never collide.
  ASSERT_TRUE(server.start(
      0, [] { return std::string("metrics-body\n"); },
      [] { return std::string("summary-body\n"); }));
  ASSERT_TRUE(server.running());
  const int port = server.port();
  ASSERT_GT(port, 0);

  std::string error;
  EXPECT_EQ(http_fetch("127.0.0.1", port, "/metrics", &error), "metrics-body\n")
      << error;
  EXPECT_EQ(http_fetch("localhost", port, "/summary", &error), "summary-body\n")
      << error;
  EXPECT_EQ(http_fetch("127.0.0.1", port, "/", &error), "metrics-body\n")
      << error;
  // Unknown path: served (connection succeeds) but flagged.
  const std::string missing = http_fetch("127.0.0.1", port, "/nope", &error);
  EXPECT_NE(missing.find("unknown path"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  // After stop the fetch must fail cleanly, not hang.
  error.clear();
  EXPECT_EQ(http_fetch("127.0.0.1", port, "/metrics", &error), "");
  EXPECT_FALSE(error.empty());
}

TEST(ObsHttpTest, ConcurrentFetches) {
  MetricsHttpServer server;
  std::atomic<int> calls{0};
  ASSERT_TRUE(server.start(
      0,
      [&calls] {
        calls.fetch_add(1);
        return std::string("ok");
      },
      [] { return std::string(); }));
  const int port = server.port();
  constexpr int kClients = 4;
  std::vector<std::thread> pool;
  std::atomic<int> good{0};
  for (int t = 0; t < kClients; ++t)
    pool.emplace_back([port, &good] {
      for (int i = 0; i < 8; ++i)
        if (http_fetch("127.0.0.1", port, "/metrics") == "ok")
          good.fetch_add(1);
    });
  for (auto& th : pool) th.join();
  // The server is serial but the listen backlog queues clients; every
  // request must eventually be answered.
  EXPECT_EQ(good.load(), kClients * 8);
  EXPECT_EQ(calls.load(), kClients * 8);
  server.stop();
}

TEST(ObsGlobalTest, ProcessRegistryIsSingleton) {
  MetricsRegistry& a = registry();
  MetricsRegistry& b = registry();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace parcore::obs
