#!/usr/bin/env python3
"""Negative-compilation driver for the thread-safety annotation layer.

Every *.cpp in this directory is compiled with
    <clang++> -std=c++20 -fsyntax-only -Wthread-safety -Werror -I <src>

Files named clean_* are CONTROLS: they must compile with zero
diagnostics (a warning there means the annotation layer produces false
positives). Every other TU is a seeded concurrency bug that MUST be
rejected with a thread-safety diagnostic — if one compiles, the
analysis has been silently disabled (e.g. someone stubbed the macros
under clang) and this gate is the only thing that notices.

Usage: check_negative.py <clang++> <src-include-dir> [tu-dir]
Exit:  0 all TUs behave as asserted, 1 otherwise, 2 usage error.
"""

import pathlib
import subprocess
import sys


def compile_tu(cxx: str, src_include: str, tu: pathlib.Path):
    cmd = [
        cxx, "-std=c++20", "-fsyntax-only",
        "-Wthread-safety", "-Werror",
        "-I", src_include, str(tu),
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stderr


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    cxx, src_include = sys.argv[1], sys.argv[2]
    tu_dir = pathlib.Path(sys.argv[3]) if len(sys.argv) > 3 else \
        pathlib.Path(__file__).resolve().parent

    failures = []
    tus = sorted(tu_dir.glob("*.cpp"))
    if not tus:
        print(f"no TUs found in {tu_dir}", file=sys.stderr)
        return 2

    for tu in tus:
        rc, stderr = compile_tu(cxx, src_include, tu)
        is_control = tu.name.startswith("clean_")
        if is_control:
            if rc != 0:
                failures.append(
                    f"{tu.name}: control TU must compile cleanly but "
                    f"failed:\n{stderr}"
                )
            else:
                print(f"  ok (compiles)   {tu.name}")
        else:
            if rc == 0:
                failures.append(
                    f"{tu.name}: seeded bug COMPILED — the thread-safety "
                    "analysis is not rejecting what it must (macros "
                    "stubbed? -Wthread-safety dropped?)"
                )
            elif "thread-safety" not in stderr and "Thread safety" not in stderr:
                failures.append(
                    f"{tu.name}: rejected, but not by the thread-safety "
                    f"analysis — unexpected diagnostic:\n{stderr}"
                )
            else:
                print(f"  ok (rejected)   {tu.name}")

    if failures:
        print("\nthread_safety_negative FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"thread_safety_negative: {len(tus)} TUs behave as asserted")
    return 0


if __name__ == "__main__":
    sys.exit(main())
