// NEGATIVE TU: must FAIL to compile under -Wthread-safety -Werror.
// Calls a PARCORE_REQUIRES function without holding the named lock —
// the contract violation the engine's flush_locked()/durable_io()/
// make_checkpoint() annotations exist to catch at compile time.
#include "sync/annotations.h"
#include "sync/mutex.h"

namespace {

class Engine {
 public:
  void flush_locked() PARCORE_REQUIRES(mu_) { ++epoch_; }
  void oops() { flush_locked(); }  // BUG: mu_ not held

 private:
  parcore::Mutex mu_;
  long epoch_ PARCORE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Engine e;
  e.oops();
  return 0;
}
