// NEGATIVE TU: must FAIL to compile under -Wthread-safety -Werror.
// Acquires the same non-reentrant capability twice — with the project
// Spinlock this is a guaranteed self-deadlock (the second lock() spins
// forever on a flag this thread owns).
#include "sync/annotations.h"
#include "sync/spinlock.h"

namespace {

parcore::Spinlock mu;

void relock() {
  parcore::SpinGuard outer(mu);
  parcore::SpinGuard inner(mu);  // BUG: mu already held
}

}  // namespace

int main() {
  relock();
  return 0;
}
