// NEGATIVE TU: must FAIL to compile under -Wthread-safety -Werror.
// Touches a PARCORE_GUARDED_BY field without holding its capability —
// the exact bug class the annotation sweep exists to make impossible.
// The driver (check_negative.py) asserts clang rejects this file; if it
// ever compiles, the annotation layer has been broken (e.g. the macros
// were stubbed out under clang) and the gate must fail.
#include "sync/annotations.h"
#include "sync/spinlock.h"

namespace {

class Counter {
 public:
  void bump_unguarded() { ++value_; }  // BUG: no lock held

 private:
  parcore::Spinlock mu_;
  long value_ PARCORE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump_unguarded();
  return 0;
}
