// NEGATIVE TU: must FAIL to compile under -Wthread-safety -Werror.
// Acquires a capability and returns without releasing it. Clang flags
// this as "mutex is still held at the end of function" — the leak the
// RAII-guard conversion (SpinGuard/MutexGuard) rules out by shape.
#include "sync/annotations.h"
#include "sync/spinlock.h"

namespace {

parcore::Spinlock mu;
int shared_value PARCORE_GUARDED_BY(mu) = 0;

int read_and_leak() {
  mu.lock();
  return shared_value;  // BUG: returns with mu held
}

}  // namespace

int main() { return read_and_leak(); }
