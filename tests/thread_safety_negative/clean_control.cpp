// CONTROL TU: must COMPILE CLEANLY under -Wthread-safety -Werror.
// Exercises every sanctioned idiom of the locking discipline — if this
// file warns, the annotation layer itself regressed (a false positive
// crept into the macros or the sync primitives), which would force
// NOLINTs across the tree. The driver asserts clang accepts it.
#include "sync/annotations.h"
#include "sync/mutex.h"
#include "sync/spinlock.h"

namespace {

class Everything {
 public:
  // RAII guard, the default idiom.
  void guarded_increment() {
    parcore::SpinGuard g(spin_);
    ++spin_value_;
  }

  // REQUIRES callee invoked under the caller's guard.
  void locked_increment() PARCORE_REQUIRES(mu_) { ++mu_value_; }
  void call_through() {
    parcore::MutexGuard g(mu_);
    locked_increment();
  }

  // Adopt-guard try-lock idiom (sync/mutex.h).
  bool try_increment() {
    if (mu_.try_lock()) {
      parcore::MutexGuard g(mu_, parcore::kAdoptLock);
      ++mu_value_;
      return true;
    }
    return false;
  }

  // Conditional spinlock acquisition via the annotated lock_if shim.
  bool conditional_increment() {
    if (parcore::lock_if(spin_, [] { return true; })) {
      parcore::SpinGuard g(spin_, parcore::kAdoptLock);
      ++spin_value_;
      return true;
    }
    return false;
  }

  // Two-lock ordered acquisition via the annotated lock_pair shim,
  // released through adopting guards.
  void pair_increment(Everything& other) {
    parcore::lock_pair(spin_, other.spin_);
    parcore::SpinGuard a(spin_, parcore::kAdoptLock);
    parcore::SpinGuard b(other.spin_, parcore::kAdoptLock);
    ++spin_value_;
    ++other.spin_value_;
  }

  // CondVar wait with the explicit predicate loop (lambda predicates
  // defeat the analysis; see sync/mutex.h).
  void wait_ready() {
    parcore::MutexGuard g(mu_);
    while (!ready_) cv_.wait(mu_);
  }
  void set_ready() {
    {
      parcore::MutexGuard g(mu_);
      ready_ = true;
    }
    cv_.notify_all();
  }

 private:
  parcore::Spinlock spin_;
  long spin_value_ PARCORE_GUARDED_BY(spin_) = 0;
  parcore::Mutex mu_;
  parcore::CondVar cv_;
  long mu_value_ PARCORE_GUARDED_BY(mu_) = 0;
  bool ready_ PARCORE_GUARDED_BY(mu_) = false;
};

}  // namespace

int main() {
  Everything a, b;
  a.guarded_increment();
  a.call_through();
  a.try_increment();
  a.conditional_increment();
  a.pair_increment(b);
  a.set_ready();
  a.wait_ready();
  return 0;
}
