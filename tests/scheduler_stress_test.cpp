// Scheduling-mode convergence (ISSUE 4): every dispatch mode — dynamic
// counter, static Algorithm-5 split, and the conflict-aware batch plan
// — must drive racing workers to cores identical to a fresh
// bz_decompose on insert, remove, and mixed batches. CI runs this file
// under both TSan and ASan. Plus BatchPlan unit coverage: wave
// vertex-disjointness, edge preservation, overflow capping, presorted
// detection, and execute() dispatch accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "decomp/bz.h"
#include "gen/generators.h"
#include "graph/edge_list.h"
#include "parallel/batch_plan.h"
#include "parallel/parallel_order.h"
#include "test_util.h"

namespace parcore {
namespace {

using test::Family;

constexpr std::array<std::pair<ScheduleMode, const char*>, 3> kModes{{
    {ScheduleMode::kDynamic, "dynamic"},
    {ScheduleMode::kStatic, "static"},
    {ScheduleMode::kPlan, "plan"},
}};

ParallelOrderMaintainer::Options mode_opts(ScheduleMode mode) {
  ParallelOrderMaintainer::Options opts;
  opts.schedule = mode;
  return opts;
}

TEST(SchedulerStress, InsertBatchConvergesUnderAllModes) {
  for (const auto& [mode, name] : kModes) {
    test::Workload w = test::make_workload(Family::kRmat, 600, 0.35, 19);
    auto g = DynamicGraph::from_edges(w.n, w.base);
    ThreadTeam team(8);
    ParallelOrderMaintainer m(g, team, mode_opts(mode));
    BatchResult r = m.insert_batch(w.batch, 8);
    EXPECT_EQ(r.applied, w.batch.size()) << name;
    test::expect_cores_match(g, m.cores(), std::string("insert/") + name);
    std::string err;
    ASSERT_TRUE(m.state().check_invariants(g, &err)) << name << ": " << err;
  }
}

TEST(SchedulerStress, RemoveBatchConvergesUnderAllModes) {
  for (const auto& [mode, name] : kModes) {
    test::Workload w = test::make_workload(Family::kEr, 500, 0.4, 23);
    // Remove from the full graph so the batch edges all exist.
    std::vector<Edge> all = w.base;
    all.insert(all.end(), w.batch.begin(), w.batch.end());
    auto g = DynamicGraph::from_edges(w.n, all);
    ThreadTeam team(8);
    ParallelOrderMaintainer m(g, team, mode_opts(mode));
    BatchResult r = m.remove_batch(w.batch, 8);
    EXPECT_EQ(r.applied, w.batch.size()) << name;
    test::expect_cores_match(g, m.cores(), std::string("remove/") + name);
    std::string err;
    ASSERT_TRUE(m.state().check_invariants(g, &err)) << name << ": " << err;
  }
}

TEST(SchedulerStress, MixedAlternatingBatchesConverge) {
  for (const auto& [mode, name] : kModes) {
    test::Workload w = test::make_workload(Family::kBa, 500, 0.4, 31);
    auto g = DynamicGraph::from_edges(w.n, w.base);
    ThreadTeam team(8);
    ParallelOrderMaintainer m(g, team, mode_opts(mode));
    auto parts = split_batches(w.batch, 6);
    for (std::size_t i = 0; i < parts.size(); ++i) {
      m.insert_batch(parts[i], 8);
      if (i % 2 == 1) m.remove_batch(parts[i - 1], 8);
    }
    test::expect_cores_match(g, m.cores(), std::string("mixed/") + name);
    std::string err;
    ASSERT_TRUE(m.state().check_invariants(g, &err, /*check_cores=*/true))
        << name << ": " << err;
  }
}

TEST(SchedulerStress, HubHeavyBatchWithTinyWaveBudget) {
  // A handful of hubs own most batch edges: the plan's overflow wave
  // (deliberately tiny max_waves) and 1-edge chunks get exercised while
  // racing 8 workers; final cores must still match bz_decompose.
  Rng rng(77);
  std::vector<Edge> base = gen_erdos_renyi(800, 2400, rng);
  canonicalize_edges(base);
  std::set<std::uint64_t> have;
  for (const Edge& e : base) have.insert(edge_key(e));
  std::vector<Edge> batch;
  for (VertexId hub = 0; hub < 8; ++hub) {
    for (int i = 0; i < 60; ++i) {
      const Edge e = canonical(
          Edge{hub, static_cast<VertexId>(8 + rng.bounded(792))});
      if (e.u != e.v && have.insert(edge_key(e)).second) batch.push_back(e);
    }
  }
  for (const auto& [mode, name] : kModes) {
    auto g = DynamicGraph::from_edges(800, base);
    ThreadTeam team(8);
    ParallelOrderMaintainer::Options opts = mode_opts(mode);
    opts.plan.max_waves = 4;   // force most hub edges into overflow
    opts.plan.chunk_edges = 1; // maximal claim traffic
    ParallelOrderMaintainer m(g, team, opts);
    BatchResult ins = m.insert_batch(batch, 8);
    EXPECT_EQ(ins.applied, batch.size()) << name;
    test::expect_cores_match(g, m.cores(), std::string("hub insert/") + name);
    if (mode == ScheduleMode::kPlan) {
      const PlanStats& p = m.last_plan_stats();
      EXPECT_EQ(p.edges, batch.size()) << name;
      if (p.locality_only) {
        // Single hardware thread: the maintainer degraded to the
        // bucket-order plan (wave colouring can't pay serially).
        EXPECT_EQ(p.waves, 1u) << name;
      } else {
        EXPECT_GT(p.overflow_edges, 0u) << name;
        EXPECT_LE(p.waves, 4u) << name;
      }
    }
    BatchResult rem = m.remove_batch(batch, 8);
    EXPECT_EQ(rem.applied, batch.size()) << name;
    test::expect_cores_match(g, m.cores(), std::string("hub remove/") + name);
    std::string err;
    ASSERT_TRUE(m.state().check_invariants(g, &err)) << name << ": " << err;
  }
}

TEST(SchedulerStress, PlanModeRepeatedBatchesReuseScratch) {
  // Steady-state flush shape: many small planned batches through one
  // maintainer (plan + repair buffers must reset correctly per batch).
  test::Workload w = test::make_workload(Family::kRmat, 400, 0.5, 43);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team, mode_opts(ScheduleMode::kPlan));
  auto parts = split_batches(w.batch, 10);
  for (int round = 0; round < 10; ++round) {
    m.insert_batch(parts[static_cast<std::size_t>(round)], 8);
    m.remove_batch(parts[static_cast<std::size_t>(round)], 8);
  }
  test::expect_cores_match(g, m.cores(), "plan steady state");
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(g, &err, /*check_cores=*/true))
      << err;
}

// ---------------------------------------------------------------------------
// BatchPlan unit coverage
// ---------------------------------------------------------------------------

class BatchPlanTest : public ::testing::Test {
 protected:
  void init(std::size_t n, const std::vector<Edge>& edges) {
    graph_ = DynamicGraph::from_edges(n, edges);
    state_.initialize(graph_);
  }

  DynamicGraph graph_{0};
  CoreState state_;
};

std::multiset<std::uint64_t> edge_multiset(std::span<const Edge> edges) {
  std::multiset<std::uint64_t> keys;
  for (const Edge& e : edges) keys.insert(edge_key(e));
  return keys;
}

TEST_F(BatchPlanTest, WavesAreVertexDisjointAndPreserveEdges) {
  Rng rng(5);
  std::vector<Edge> base = gen_erdos_renyi(300, 900, rng);
  canonicalize_edges(base);
  init(300, base);
  std::vector<Edge> batch = gen_erdos_renyi(300, 400, rng);
  canonicalize_edges(batch);

  BatchPlan plan;
  plan.build(batch, state_, PlanOptions{});
  const PlanStats& s = plan.stats();
  EXPECT_EQ(s.edges, batch.size());
  EXPECT_GT(s.buckets, 0u);
  EXPECT_GT(s.waves, 0u);

  std::multiset<std::uint64_t> seen;
  const std::size_t conflict_free =
      plan.num_waves() - (s.overflow_edges > 0 ? 1 : 0);
  for (std::size_t w = 0; w < plan.num_waves(); ++w) {
    std::vector<VertexId> endpoints;
    CoreValue prev_level = -1;
    for (const Edge& e : plan.wave(w)) {
      seen.insert(edge_key(e));
      endpoints.push_back(e.u);
      endpoints.push_back(e.v);
      // Bucketed order survives inside a wave: levels non-decreasing.
      const CoreValue k =
          std::min(state_.core(e.u).load(std::memory_order_relaxed),
                   state_.core(e.v).load(std::memory_order_relaxed));
      EXPECT_GE(k, prev_level) << "wave " << w;
      prev_level = k;
    }
    if (w < conflict_free) {
      std::sort(endpoints.begin(), endpoints.end());
      EXPECT_TRUE(std::adjacent_find(endpoints.begin(), endpoints.end()) ==
                  endpoints.end())
          << "wave " << w << " shares a vertex";
    }
  }
  EXPECT_EQ(seen, edge_multiset(batch));
}

TEST_F(BatchPlanTest, HubEdgesOverflowAtMaxWaves) {
  init(100, gen_cycle(100));
  std::vector<Edge> batch;
  for (VertexId v = 2; v < 60; ++v) batch.push_back(Edge{0, v});  // one hub
  PlanOptions opts;
  opts.max_waves = 8;
  BatchPlan plan;
  plan.build(batch, state_, opts);
  EXPECT_EQ(plan.stats().waves, 8u);
  EXPECT_EQ(plan.stats().overflow_edges, batch.size() - 8);
  EXPECT_EQ(plan.num_waves(), 9u);  // 8 singleton waves + overflow
}

TEST_F(BatchPlanTest, DetectsPresortedInput) {
  Rng rng(9);
  std::vector<Edge> base = gen_barabasi_albert(200, 3, rng);
  canonicalize_edges(base);
  init(200, base);
  std::vector<Edge> batch = gen_erdos_renyi(200, 150, rng);
  canonicalize_edges(batch);

  BatchPlan plan;
  plan.build(batch, state_, PlanOptions{});
  const bool was_presorted = plan.stats().presorted;

  std::stable_sort(batch.begin(), batch.end(), [&](Edge a, Edge b) {
    return plan_sort_key(state_, a) < plan_sort_key(state_, b);
  });
  plan.build(batch, state_, PlanOptions{});
  EXPECT_TRUE(plan.stats().presorted);
  // A random batch over a BA graph is essentially never pre-bucketed.
  EXPECT_FALSE(was_presorted && batch.size() > 20);
}

TEST_F(BatchPlanTest, InvalidEdgesRouteToOverflowWave) {
  init(50, gen_clique(10));
  std::vector<Edge> batch{{1, 1}, {5, 200}, {0, 11}, {3, 12}};
  BatchPlan plan;
  plan.build(batch, state_, PlanOptions{});
  std::size_t total = 0;
  for (std::size_t w = 0; w < plan.num_waves(); ++w)
    total += plan.wave(w).size();
  EXPECT_EQ(total, batch.size());  // invalid edges still dispatched
  // Self-loop and out-of-range land in the trailing overflow wave.
  const auto last = plan.wave(plan.num_waves() - 1);
  EXPECT_TRUE(std::any_of(last.begin(), last.end(),
                          [](Edge e) { return e.u == e.v; }));
}

TEST_F(BatchPlanTest, ExecuteDispatchesEveryEdgeExactlyOnce) {
  Rng rng(13);
  std::vector<Edge> base = gen_erdos_renyi(400, 1200, rng);
  canonicalize_edges(base);
  init(400, base);
  std::vector<Edge> batch = gen_erdos_renyi(400, 500, rng);
  canonicalize_edges(batch);

  PlanOptions opts;
  opts.chunk_edges = 4;
  BatchPlan plan;
  plan.build(batch, state_, opts);

  ThreadTeam team(8);
  std::array<std::vector<std::uint64_t>, 8> per_worker;
  const std::size_t applied = plan.execute(team, 8, [&](int w, const Edge& e) {
    per_worker[static_cast<std::size_t>(w)].push_back(edge_key(e));
    return e.u % 2 == 0;  // arbitrary predicate: applied counting
  });
  std::multiset<std::uint64_t> seen;
  std::size_t expect_applied = 0;
  for (const auto& v : per_worker) seen.insert(v.begin(), v.end());
  for (const Edge& e : batch)
    if (e.u % 2 == 0) ++expect_applied;
  EXPECT_EQ(seen, edge_multiset(batch));
  EXPECT_EQ(applied, expect_applied);
}

TEST_F(BatchPlanTest, LocalityOnlyBuildKeepsBucketOrder) {
  Rng rng(21);
  std::vector<Edge> base = gen_erdos_renyi(300, 900, rng);
  canonicalize_edges(base);
  init(300, base);
  std::vector<Edge> batch = gen_erdos_renyi(300, 250, rng);
  canonicalize_edges(batch);

  BatchPlan plan;
  plan.build(batch, state_, PlanOptions{}, /*locality_only=*/true);
  EXPECT_TRUE(plan.stats().locality_only);
  EXPECT_EQ(plan.num_waves(), 1u);
  EXPECT_EQ(plan.stats().waves, 1u);
  ASSERT_EQ(plan.wave(0).size(), batch.size());
  // The single wave is the full batch bucketed by level (the serial
  // plan skips the within-level OM refinement).
  CoreValue prev = -1;
  for (const Edge& e : plan.wave(0)) {
    const CoreValue k =
        std::min(state_.core(e.u).load(std::memory_order_relaxed),
                 state_.core(e.v).load(std::memory_order_relaxed));
    EXPECT_GE(k, prev);
    prev = k;
  }
  EXPECT_EQ(edge_multiset(plan.wave(0)), edge_multiset(batch));
}

TEST_F(BatchPlanTest, EmptyAndSingleEdgeBatches) {
  init(20, gen_cycle(20));
  BatchPlan plan;
  plan.build({}, state_, PlanOptions{});
  EXPECT_EQ(plan.num_waves(), 0u);
  ThreadTeam team(4);
  EXPECT_EQ(plan.execute(team, 4, [](int, const Edge&) { return true; }), 0u);

  std::vector<Edge> one{{0, 5}};
  plan.build(one, state_, PlanOptions{});
  EXPECT_EQ(plan.num_waves(), 1u);
  EXPECT_EQ(plan.execute(team, 4, [](int, const Edge&) { return true; }), 1u);
}

}  // namespace
}  // namespace parcore
