// Differential suite for the parallel bulk decomposition (DESIGN.md
// §12): exact mode must be bit-identical to BZ (cores) and emit a valid
// k-order, deterministically across worker counts; approx mode must be
// a sound upper bound that converges to exact when uncapped. Plus the
// three consumers: CoreState::initialize_parallel, the maintainer's
// init_workers cold start, and the engine's background re-verifier.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "decomp/bz.h"
#include "decomp/parallel_peel.h"
#include "durability/recovery.h"
#include "engine/engine.h"
#include "gen/generators.h"
#include "maint/core_state.h"
#include "parallel/parallel_order.h"
#include "test_util.h"

namespace parcore {
namespace {

using test::Family;

BulkDecomposition run(const DynamicGraph& g, ThreadTeam& team, int workers,
                      DecomposeMode mode = DecomposeMode::kExact,
                      int max_rounds = 0) {
  DecomposeOptions opts;
  opts.workers = workers;
  opts.mode = mode;
  opts.max_rounds = max_rounds;
  return parallel_decompose(g, team, opts);
}

// Feeds (core, order) through the restore-path validator, which checks
// permutation shape, non-decreasing cores along the order, dout <= core
// and mcd >= core — the properties that make an order a k-order
// instance — then runs the full invariant suite including core
// correctness.
void expect_valid_korder(const DynamicGraph& g, const BulkDecomposition& d,
                         const std::string& context) {
  SavedCoreOrder saved;
  saved.core = d.core;
  saved.order = d.order;
  CoreState state;
  std::string err;
  ASSERT_TRUE(state.initialize_from_order(g, saved, CoreState::Options{},
                                          &err))
      << context << ": " << err;
  EXPECT_TRUE(state.check_invariants(g, &err, /*check_cores=*/true))
      << context << ": " << err;
}

class BulkDecomposeFamily
    : public ::testing::TestWithParam<std::tuple<Family, std::uint64_t>> {};

TEST_P(BulkDecomposeFamily, ExactMatchesBzAcrossWorkers) {
  const auto [family, seed] = GetParam();
  Rng rng(seed);
  const std::size_t n = 600;
  auto g = DynamicGraph::from_edges(n, test::family_edges(family, n, rng));
  const Decomposition expect = bz_decompose(g);

  ThreadTeam team(8);
  const std::string base = std::string("family ") +
                           test::family_name(family) + " seed " +
                           std::to_string(seed);
  BulkDecomposition first;
  for (int workers : {1, 2, 4, 8}) {
    const BulkDecomposition d = run(g, team, workers);
    ASSERT_EQ(d.core.size(), expect.core.size());
    EXPECT_EQ(d.core, expect.core) << base << " workers " << workers;
    EXPECT_EQ(d.max_core, expect.max_core);
    EXPECT_TRUE(d.exact);
    ASSERT_EQ(d.order.size(), n) << base;
    if (workers == 1) {
      first = d;
      expect_valid_korder(g, d, base);
    } else {
      // Determinism: the frontier sequence is fixed by the barrier
      // structure, not the schedule, so the ORDER (not just the cores)
      // is identical for every worker count.
      EXPECT_EQ(d.order, first.order) << base << " workers " << workers;
      EXPECT_EQ(d.rounds, first.rounds) << base << " workers " << workers;
    }
  }
}

TEST_P(BulkDecomposeFamily, ApproxIsSoundAndConverges) {
  const auto [family, seed] = GetParam();
  Rng rng(seed + 17);
  const std::size_t n = 500;
  auto g = DynamicGraph::from_edges(n, test::family_edges(family, n, rng));
  const Decomposition expect = bz_decompose(g);

  ThreadTeam team(4);
  // Capped: every intermediate round is an upper bound on coreness.
  for (int cap : {1, 2, 4}) {
    const BulkDecomposition d =
        run(g, team, 4, DecomposeMode::kApprox, cap);
    ASSERT_EQ(d.core.size(), n);
    EXPECT_TRUE(d.order.empty());
    for (VertexId v = 0; v < static_cast<VertexId>(n); ++v)
      EXPECT_GE(d.core[v], expect.core[v])
          << "cap " << cap << " vertex " << v;
  }
  // Uncapped: the fixpoint IS the coreness, and the run reports exact.
  const BulkDecomposition fix = run(g, team, 4, DecomposeMode::kApprox, 0);
  EXPECT_TRUE(fix.exact);
  EXPECT_EQ(fix.core, expect.core);
  EXPECT_EQ(fix.max_core, expect.max_core);
}

INSTANTIATE_TEST_SUITE_P(
    Families, BulkDecomposeFamily,
    ::testing::Combine(::testing::Values(Family::kEr, Family::kBa,
                                         Family::kRmat, Family::kClique,
                                         Family::kPath, Family::kStar),
                       ::testing::Values(1u, 2u, 3u)));

TEST(BulkDecompose, EmptyAndEdgelessGraphs) {
  ThreadTeam team(4);
  DynamicGraph empty(0);
  const BulkDecomposition d0 = run(empty, team, 4);
  EXPECT_TRUE(d0.core.empty());
  EXPECT_TRUE(d0.order.empty());
  EXPECT_EQ(d0.max_core, 0);

  DynamicGraph isolated(5);  // vertices, no edges
  const BulkDecomposition d1 = run(isolated, team, 4);
  ASSERT_EQ(d1.core.size(), 5u);
  for (CoreValue c : d1.core) EXPECT_EQ(c, 0);
  ASSERT_EQ(d1.order.size(), 5u);
  EXPECT_EQ(d1.max_core, 0);
}

TEST(BulkDecompose, DisconnectedComponentsAndIsolates) {
  // Clique {0..4}, path {10..14}, isolates in between and above.
  std::vector<Edge> edges = gen_clique(5);
  for (VertexId v = 10; v < 14; ++v) edges.push_back(Edge{v, v + 1});
  auto g = DynamicGraph::from_edges(20, edges);
  ThreadTeam team(4);
  const BulkDecomposition d = run(g, team, 4);
  const Decomposition expect = bz_decompose(g);
  EXPECT_EQ(d.core, expect.core);
  expect_valid_korder(g, d, "disconnected");
}

TEST(CoreStateParallelInit, MatchesSequentialInvariants) {
  for (Family family : {Family::kEr, Family::kBa, Family::kRmat}) {
    Rng rng(0xc0de + static_cast<std::uint64_t>(family));
    const std::size_t n = 400;
    auto g = DynamicGraph::from_edges(n, test::family_edges(family, n, rng));
    ThreadTeam team(4);
    CoreState state;
    state.initialize_parallel(g, team, 4, CoreState::Options{});
    std::string err;
    EXPECT_TRUE(state.check_invariants(g, &err, /*check_cores=*/true))
        << test::family_name(family) << ": " << err;
    // Cores agree with the sequential init even though the k-order
    // instance differs.
    CoreState seq;
    seq.initialize(g);
    for (VertexId v = 0; v < static_cast<VertexId>(n); ++v)
      EXPECT_EQ(state.core(v).load(), seq.core(v).load());
  }
}

TEST(MaintainerParallelInit, MaintainsAfterParallelColdStart) {
  test::Workload w = test::make_workload(Family::kEr, 500, 0.15, 0x5eed);
  DynamicGraph g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(4);
  ParallelOrderMaintainer::Options opts;
  opts.init_workers = 4;
  ParallelOrderMaintainer m(g, team, opts);

  m.insert_batch(w.batch, 4);
  {
    DynamicGraph full = DynamicGraph::from_edges(w.n, w.base);
    for (const Edge& e : w.batch) full.insert_edge(e.u, e.v);
    test::expect_cores_match(full, m.cores(), "after insert");
  }
  m.remove_batch(w.batch, 4);
  {
    DynamicGraph base = DynamicGraph::from_edges(w.n, w.base);
    test::expect_cores_match(base, m.cores(), "after remove");
  }
  std::string err;
  EXPECT_TRUE(m.state().check_invariants(g, &err, /*check_cores=*/true))
      << err;
}

TEST(VerifyRecoveredCores, AllAlgosAcceptCorrectCores) {
  Rng rng(0xacce97);
  auto g = DynamicGraph::from_edges(300, test::family_edges(Family::kEr,
                                                            300, rng));
  const std::vector<CoreValue> truth = bz_decompose(g).core;
  ThreadTeam team(4);
  for (auto algo : {durability::VerifyAlgo::kBz,
                    durability::VerifyAlgo::kParallel,
                    durability::VerifyAlgo::kApprox}) {
    const durability::VerifyOutcome out =
        durability::verify_recovered_cores(g, truth, algo, team, 4);
    EXPECT_TRUE(out.passed) << out.algo << ": " << out.first_mismatch;
    EXPECT_EQ(out.mismatches, 0u);
  }
}

TEST(VerifyRecoveredCores, BzAndParallelRejectIdentically) {
  Rng rng(0x12e7ec7);
  auto g = DynamicGraph::from_edges(300, test::family_edges(Family::kBa,
                                                            300, rng));
  std::vector<CoreValue> doctored = bz_decompose(g).core;
  doctored[7] += 1;    // overclaim
  doctored[42] = 0;    // underclaim
  ThreadTeam team(4);
  const durability::VerifyOutcome bz = durability::verify_recovered_cores(
      g, doctored, durability::VerifyAlgo::kBz, team, 4);
  const durability::VerifyOutcome par = durability::verify_recovered_cores(
      g, doctored, durability::VerifyAlgo::kParallel, team, 4);
  EXPECT_FALSE(bz.passed);
  EXPECT_FALSE(par.passed);
  // Same oracle values => same mismatch count, not merely same verdict.
  EXPECT_EQ(bz.mismatches, par.mismatches);
  EXPECT_EQ(bz.mismatches, 2u);
}

TEST(VerifyRecoveredCores, ApproxScreensOverclaimsOnly) {
  Rng rng(0xb0bbd);
  auto g = DynamicGraph::from_edges(300, test::family_edges(Family::kEr,
                                                            300, rng));
  std::vector<CoreValue> doctored = bz_decompose(g).core;
  doctored[3] += 5;  // above even the h-index bound after convergence
  ThreadTeam team(4);
  const durability::VerifyOutcome out = durability::verify_recovered_cores(
      g, doctored, durability::VerifyAlgo::kApprox, team, 4);
  EXPECT_FALSE(out.passed);
  EXPECT_GE(out.mismatches, 1u);
}

TEST(EngineReverify, BackgroundVerifierRunsCleanly) {
  test::Workload w = test::make_workload(Family::kEr, 300, 0.2, 0xabc);
  DynamicGraph g(w.n);
  ThreadTeam team(4);
  engine::StreamingEngine::Options opts;
  opts.reverify_interval_ms = 2.0;
  engine::StreamingEngine eng(g, team, opts);
  eng.start();
  for (const Edge& e : w.base) eng.submit_insert(e.u, e.v);
  for (const Edge& e : w.batch) eng.submit_insert(e.u, e.v);
  // Give the re-verifier a few intervals of runway over the live graph.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  eng.stop();
  const engine::EngineStats stats = eng.stats();
  EXPECT_GE(stats.verify_runs, 1u);
  EXPECT_EQ(stats.verify_mismatches, 0u);
}

}  // namespace
}  // namespace parcore
