// Differential tests for the JE baseline (JEI/JER).
#include <gtest/gtest.h>

#include <tuple>

#include "baseline/je.h"
#include "gen/generators.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace parcore {
namespace {

using test::Family;

TEST(JeGraph, BuildAndQuery) {
  auto g = test::make_graph(4, {{0, 1}, {1, 2}, {2, 3}});
  JeGraph jg;
  jg.build(g);
  EXPECT_EQ(jg.num_edges(), 3u);
  EXPECT_TRUE(jg.has_edge(1, 2));
  EXPECT_FALSE(jg.has_edge(0, 3));
  EXPECT_EQ(jg.live_degree(1), 2u);
}

TEST(JeGraph, AppendAndTombstone) {
  auto g = test::make_graph(4, {{0, 1}});
  JeGraph jg;
  jg.build(g);
  std::vector<Edge> batch{{1, 2}, {2, 3}};
  jg.reserve_for(batch);
  jg.append_edge(1, 2);
  EXPECT_TRUE(jg.has_edge(1, 2));
  EXPECT_EQ(jg.num_edges(), 2u);
  EXPECT_TRUE(jg.tombstone_edge(0, 1));
  EXPECT_FALSE(jg.has_edge(0, 1));
  EXPECT_FALSE(jg.tombstone_edge(0, 1));
  jg.compact();
  EXPECT_EQ(jg.live_degree(0), 0u);
  EXPECT_TRUE(jg.has_edge(1, 2));
}

TEST(JeMaintainer, TriangleInsertRemove) {
  auto g = test::make_graph(3, {{0, 1}, {1, 2}});
  ThreadTeam team(2);
  JeMaintainer m(g, team);
  EXPECT_TRUE(m.insert_edge(0, 2));
  EXPECT_EQ(m.core(0), 2);
  EXPECT_TRUE(m.remove_edge(0, 2));
  EXPECT_EQ(m.core(0), 1);
  EXPECT_EQ(m.core(1), 1);
}

TEST(JeMaintainer, RejectsDuplicatesAndMissing) {
  auto g = test::make_graph(3, {{0, 1}});
  ThreadTeam team(2);
  JeMaintainer m(g, team);
  EXPECT_FALSE(m.insert_edge(0, 1));
  EXPECT_FALSE(m.remove_edge(1, 2));
}

class JeSweep
    : public ::testing::TestWithParam<std::tuple<Family, int, std::uint64_t>> {
};

TEST_P(JeSweep, InsertBatchMatchesBruteForce) {
  auto [family, workers, seed] = GetParam();
  test::Workload w = test::make_workload(family, 400, 0.3, seed);
  auto base = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(workers);
  JeMaintainer m(base, team);
  EXPECT_EQ(m.insert_batch(w.batch, workers), w.batch.size());

  std::vector<Edge> all = w.base;
  all.insert(all.end(), w.batch.begin(), w.batch.end());
  auto final_graph = DynamicGraph::from_edges(w.n, all);
  test::expect_cores_match(final_graph, m.cores(), "JEI");
}

TEST_P(JeSweep, RemoveBatchMatchesBruteForce) {
  auto [family, workers, seed] = GetParam();
  test::Workload w = test::make_workload(family, 400, 0.3, seed);
  std::vector<Edge> all = w.base;
  all.insert(all.end(), w.batch.begin(), w.batch.end());
  auto full = DynamicGraph::from_edges(w.n, all);
  ThreadTeam team(workers);
  JeMaintainer m(full, team);
  EXPECT_EQ(m.remove_batch(w.batch, workers), w.batch.size());

  auto remaining = DynamicGraph::from_edges(w.n, w.base);
  test::expect_cores_match(remaining, m.cores(), "JER");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JeSweep,
    ::testing::Combine(::testing::Values(Family::kEr, Family::kBa,
                                         Family::kRmat),
                       ::testing::Values(1, 4, 8),
                       ::testing::Values(1u, 2u)),
    [](const auto& info) {
      return std::string(test::family_name(std::get<0>(info.param))) + "_w" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

TEST(JeMaintainer, UniformCoreGraphStillCorrect) {
  // The BA pathology: one core value => strictly sequential JE rounds.
  Rng rng(33);
  auto edges = gen_barabasi_albert(400, 4, rng);
  auto g = DynamicGraph::from_edges(400, edges);
  ThreadTeam team(8);
  JeMaintainer m(g, team);
  std::vector<Edge> batch;
  for (int i = 0; batch.size() < 150 && i < 30000; ++i) {
    Edge e{static_cast<VertexId>(rng.bounded(400)),
           static_cast<VertexId>(rng.bounded(400))};
    if (e.u == e.v || g.has_edge(e.u, e.v)) continue;
    bool dup = false;
    for (const Edge& x : batch)
      if (edge_key(x) == edge_key(e)) dup = true;
    if (!dup) batch.push_back(e);
  }
  EXPECT_EQ(m.insert_batch(batch, 8), batch.size());
  DynamicGraph expect = g;  // copy base
  for (const Edge& e : batch) expect.insert_edge(e.u, e.v);
  test::expect_cores_match(expect, m.cores(), "uniform core");
}

TEST(JeMaintainer, SequentialFallbackIsCounted) {
  // max_rounds = 0 exhausts the round budget immediately, so every
  // batch takes the defensive sequential path — and each such batch
  // must bump parcore_je_sequential_fallbacks (the observability hook
  // that makes a silently-degraded baseline visible in benchmarks).
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::Counter& fallbacks =
      obs::registry().counter("parcore_je_sequential_fallbacks");
  const std::uint64_t before = fallbacks.value();

  test::Workload w = test::make_workload(Family::kEr, 200, 0.2, 7);
  auto base = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(4);
  JeMaintainer::Options opts;
  opts.max_rounds = 0;
  JeMaintainer m(base, team, opts);
  m.insert_batch(w.batch, 4);
  EXPECT_GE(fallbacks.value(), before + 1);
  const std::uint64_t after_insert = fallbacks.value();
  m.remove_batch(w.batch, 4);
  EXPECT_GE(fallbacks.value(), after_insert + 1);

  // Correctness is not sacrificed on the fallback path.
  DynamicGraph expect = DynamicGraph::from_edges(w.n, w.base);
  test::expect_cores_match(expect, m.cores(), "fallback path");
  obs::set_enabled(was_enabled);
}

TEST(JeMaintainer, InsertThenRemoveRestoresCores) {
  test::Workload w = test::make_workload(Family::kRmat, 400, 0.25, 21);
  auto base = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(4);
  JeMaintainer m(base, team);
  auto before = m.cores();
  m.insert_batch(w.batch, 4);
  m.remove_batch(w.batch, 4);
  EXPECT_EQ(m.cores(), before);
}

}  // namespace
}  // namespace parcore
