#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/env.h"
#include "support/histogram.h"
#include "support/rng.h"
#include "support/timer.h"
#include "support/types.h"
#include "support/vertex_set.h"

namespace parcore {
namespace {

TEST(Types, CanonicalOrdersEndpoints) {
  EXPECT_EQ(canonical(Edge{5, 3}), (Edge{3, 5}));
  EXPECT_EQ(canonical(Edge{3, 5}), (Edge{3, 5}));
  EXPECT_EQ(edge_key(Edge{5, 3}), edge_key(Edge{3, 5}));
  EXPECT_NE(edge_key(Edge{1, 2}), edge_key(Edge{1, 3}));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i)
    if (a2.next() != c.next()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, BoundedStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.bounded(17), 17u);
}

TEST(Rng, BoundedCoversRange) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RealInUnitInterval) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) {
    double x = r.real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(1);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(VertexSet, InsertContainsErase) {
  VertexSet s;
  EXPECT_TRUE(s.insert(3));
  EXPECT_FALSE(s.insert(3));
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.erase(3));
  EXPECT_FALSE(s.erase(3));
  EXPECT_FALSE(s.contains(3));
  EXPECT_TRUE(s.empty());
}

TEST(VertexSet, IterationInInsertionOrder) {
  VertexSet s;
  for (VertexId v : {9u, 2u, 7u, 5u}) s.insert(v);
  std::vector<VertexId> seen;
  s.for_each([&](VertexId v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<VertexId>{9, 2, 7, 5}));
}

TEST(VertexSet, ErasedSkippedButOrderKept) {
  VertexSet s;
  for (VertexId v : {1u, 2u, 3u, 4u}) s.insert(v);
  s.erase(2);
  s.erase(4);
  std::vector<VertexId> seen;
  s.for_each([&](VertexId v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<VertexId>{1, 3}));
  EXPECT_EQ(s.total_inserted(), 4u);
}

TEST(VertexSet, ReviveKeepsFirstInsertionOrder) {
  VertexSet s;
  s.insert(1);
  s.insert(2);
  s.erase(1);
  EXPECT_TRUE(s.insert(1));  // revive
  std::vector<VertexId> seen;
  s.for_each([&](VertexId v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<VertexId>{1, 2}));
}

TEST(VertexSet, GrowsPastInitialCapacity) {
  VertexSet s(4);
  for (VertexId v = 0; v < 1000; ++v) EXPECT_TRUE(s.insert(v * 7919));
  for (VertexId v = 0; v < 1000; ++v) EXPECT_TRUE(s.contains(v * 7919));
  EXPECT_EQ(s.size(), 1000u);
}

TEST(VertexSet, ClearResets) {
  VertexSet s;
  for (VertexId v = 0; v < 50; ++v) s.insert(v);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(10));
  EXPECT_TRUE(s.insert(10));
}

TEST(Histogram, RecordsAndBuckets) {
  SizeHistogram h;
  for (std::size_t i = 0; i < 10; ++i) h.record(1);
  h.record(0);
  h.record(100);
  EXPECT_EQ(h.total(), 12u);
  EXPECT_EQ(h.count_at(1), 10u);
  EXPECT_EQ(h.count_at(0), 1u);
  EXPECT_EQ(h.max_seen(), 100u);
  EXPECT_NEAR(h.fraction_at_most(10), 11.0 / 12.0, 1e-9);
}

TEST(Histogram, MergeCombines) {
  SizeHistogram a, b;
  a.record(1);
  b.record(1);
  b.record(2);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count_at(1), 2u);
  EXPECT_EQ(a.count_at(2), 1u);
}

TEST(Histogram, OverflowBucket) {
  SizeHistogram h(8);
  h.record(9);
  h.record(100000);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, MergeCarriesOverflowAndMax) {
  SizeHistogram a(8), b(8);
  a.record(3);
  b.record(20);   // overflow in b
  b.record(500);  // overflow + max
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.overflow(), 2u);
  EXPECT_EQ(a.max_seen(), 500u);
  EXPECT_NEAR(a.mean(), (3.0 + 20.0 + 500.0) / 3.0, 1e-9);
  // Merging into a wider histogram must keep the wider exact range.
  SizeHistogram wide(64);
  wide.merge(b);
  EXPECT_EQ(wide.count_at(20), 0u);  // b lost exactness at 20; stays lost
  EXPECT_EQ(wide.overflow(), 2u);
}

TEST(Histogram, PercentileExactRange) {
  SizeHistogram h(100);
  for (std::size_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.percentile(0.0), 1u);
  EXPECT_EQ(h.percentile(0.5), 50u);
  EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(Histogram, PercentileInterpolatesOverflow) {
  // Exact range [0, 10]; 100 overflow samples spread over (10, 1010].
  SizeHistogram h(10);
  for (int i = 0; i < 100; ++i) h.record(static_cast<std::size_t>(1010));
  EXPECT_EQ(h.max_seen(), 1010u);
  const std::size_t p50 = h.percentile(0.5);
  const std::size_t p99 = h.percentile(0.99);
  // Pre-fix behaviour snapped every overflow percentile to max_seen();
  // interpolation must keep them distinct and ordered, reaching
  // max_seen() only at p = 1.
  EXPECT_LT(p50, p99);
  EXPECT_LT(p99, 1010u);
  EXPECT_EQ(h.percentile(1.0), 1010u);
  EXPECT_NEAR(static_cast<double>(p50), 10.0 + 0.5 * 1000.0, 11.0);
  EXPECT_NEAR(static_cast<double>(p99), 10.0 + 0.99 * 1000.0, 11.0);
}

TEST(Histogram, PercentileOverflowBelowBoundIsMax) {
  // merge() can leave overflow_ > 0 while max_seen_ <= max_exact (a
  // narrow histogram merged into a wide one); the interpolation range
  // is then empty and percentile must fall back to max_seen().
  SizeHistogram narrow(4), wide(100);
  narrow.record(50);  // overflow for narrow
  wide.merge(narrow);
  EXPECT_EQ(wide.percentile(0.99), 50u);
}

TEST(RunStats, MeanAndBounds) {
  RunStats s = RunStats::from({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_GT(s.ci95, 0.0);
  EXPECT_EQ(s.count, 3u);
}

TEST(RunStats, EmptyIsZero) {
  RunStats s = RunStats::from({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Env, FallbacksWhenUnset) {
  EXPECT_EQ(env_int("PARCORE_TEST_UNSET_VAR", 42), 42);
  EXPECT_DOUBLE_EQ(env_double("PARCORE_TEST_UNSET_VAR", 1.5), 1.5);
  EXPECT_FALSE(env_flag("PARCORE_TEST_UNSET_VAR"));
  EXPECT_EQ(env_str("PARCORE_TEST_UNSET_VAR", "x"), "x");
}

TEST(Env, ParsesValues) {
  setenv("PARCORE_TEST_SET_VAR", "17", 1);
  EXPECT_EQ(env_int("PARCORE_TEST_SET_VAR", 0), 17);
  setenv("PARCORE_TEST_SET_VAR", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("PARCORE_TEST_SET_VAR", 0.0), 2.5);
  setenv("PARCORE_TEST_SET_VAR", "yes", 1);
  EXPECT_TRUE(env_flag("PARCORE_TEST_SET_VAR"));
  setenv("PARCORE_TEST_SET_VAR", "0", 1);
  EXPECT_FALSE(env_flag("PARCORE_TEST_SET_VAR"));
  unsetenv("PARCORE_TEST_SET_VAR");
}

}  // namespace
}  // namespace parcore
