// Sequential semantics of the Order-Maintenance list.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "om/order_list.h"

namespace parcore {
namespace {

/// Test fixture owning items the way CoreState does.
class OmTest : public ::testing::Test {
 protected:
  void make_items(std::size_t n) {
    items_ = std::make_unique<OmItem[]>(n);
    for (std::size_t i = 0; i < n; ++i)
      items_[i].vertex = static_cast<VertexId>(i);
  }

  OmItem* item(std::size_t i) { return &items_[i]; }

  std::unique_ptr<OmItem[]> items_;
};

TEST_F(OmTest, InsertTailProducesSequence) {
  OrderList list(0);
  make_items(5);
  for (std::size_t i = 0; i < 5; ++i) list.insert_tail(item(i));
  EXPECT_EQ(list.to_vector(), (std::vector<VertexId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(list.size(), 5u);
  std::string err;
  EXPECT_TRUE(list.validate(&err)) << err;
}

TEST_F(OmTest, InsertHeadReversesSequence) {
  OrderList list(0);
  make_items(4);
  for (std::size_t i = 0; i < 4; ++i) list.insert_head(item(i));
  EXPECT_EQ(list.to_vector(), (std::vector<VertexId>{3, 2, 1, 0}));
}

TEST_F(OmTest, InsertAfterPlacesBetween) {
  OrderList list(0);
  make_items(4);
  list.insert_tail(item(0));
  list.insert_tail(item(1));
  list.insert_after(item(0), item(2));
  list.insert_after(item(2), item(3));
  EXPECT_EQ(list.to_vector(), (std::vector<VertexId>{0, 2, 3, 1}));
}

TEST_F(OmTest, PrecedesMatchesSequence) {
  OrderList list(0);
  make_items(6);
  for (std::size_t i = 0; i < 6; ++i) list.insert_tail(item(i));
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      if (i != j) {
        EXPECT_EQ(OrderList::precedes(item(i), item(j)), i < j)
            << i << " vs " << j;
      }
}

TEST_F(OmTest, RemoveUnlinks) {
  OrderList list(0);
  make_items(3);
  for (std::size_t i = 0; i < 3; ++i) list.insert_tail(item(i));
  list.remove(item(1));
  EXPECT_EQ(list.to_vector(), (std::vector<VertexId>{0, 2}));
  EXPECT_FALSE(item(1)->linked());
  EXPECT_EQ(list.size(), 2u);
  std::string err;
  EXPECT_TRUE(list.validate(&err)) << err;
}

TEST_F(OmTest, ReinsertAfterRemove) {
  OrderList list(0);
  make_items(3);
  for (std::size_t i = 0; i < 3; ++i) list.insert_tail(item(i));
  list.remove(item(0));
  list.insert_after(item(2), item(0));
  EXPECT_EQ(list.to_vector(), (std::vector<VertexId>{1, 2, 0}));
}

TEST_F(OmTest, TinyGroupCapacityForcesSplits) {
  OrderList list(0, /*group_capacity=*/2);
  make_items(200);
  for (std::size_t i = 0; i < 200; ++i) list.insert_tail(item(i));
  std::vector<VertexId> expect;
  for (VertexId i = 0; i < 200; ++i) expect.push_back(i);
  EXPECT_EQ(list.to_vector(), expect);
  std::string err;
  EXPECT_TRUE(list.validate(&err)) << err;
  EXPECT_GT(list.relabel_count(), 0u);
}

TEST_F(OmTest, RepeatedInsertAfterSamePointTriggersRelabels) {
  // Inserting always right after the same anchor exhausts label gaps
  // fastest — the classic worst case for list labeling.
  OrderList list(0, 8);
  make_items(1001);
  list.insert_tail(item(0));
  for (std::size_t i = 1; i <= 1000; ++i)
    list.insert_after(item(0), item(i));
  auto seq = list.to_vector();
  ASSERT_EQ(seq.size(), 1001u);
  EXPECT_EQ(seq.front(), 0u);
  // Items appear in reverse insertion order after the anchor.
  for (std::size_t i = 1; i < seq.size(); ++i)
    EXPECT_EQ(seq[i], 1001 - i);
  std::string err;
  EXPECT_TRUE(list.validate(&err)) << err;
  EXPECT_GT(list.relabel_count(), 0u);
}

TEST_F(OmTest, MoveBetweenLists) {
  OrderList a(1), b(2);
  make_items(4);
  a.insert_tail(item(0));
  a.insert_tail(item(1));
  b.insert_tail(item(2));
  // Cross-list precedes falls back to level comparison.
  EXPECT_TRUE(OrderList::precedes(item(0), item(2)));
  EXPECT_FALSE(OrderList::precedes(item(2), item(1)));
  // Move item 1 from a to b's head.
  a.remove(item(1));
  b.insert_head(item(1));
  EXPECT_EQ(a.to_vector(), (std::vector<VertexId>{0}));
  EXPECT_EQ(b.to_vector(), (std::vector<VertexId>{1, 2}));
  EXPECT_TRUE(OrderList::precedes(item(1), item(2)));
}

TEST_F(OmTest, SnapshotKeysOrderConsistently) {
  OrderList list(0);
  make_items(10);
  for (std::size_t i = 0; i < 10; ++i) list.insert_tail(item(i));
  for (std::size_t i = 0; i + 1 < 10; ++i) {
    OmKey a = list.snapshot_key(item(i));
    OmKey b = list.snapshot_key(item(i + 1));
    EXPECT_LT(a, b);
  }
}

TEST_F(OmTest, QuiescentVersionStableWithoutRelabels) {
  OrderList list(0);
  make_items(4);
  std::uint64_t v1 = 0, v2 = 0;
  EXPECT_TRUE(list.quiescent_version(v1));
  list.insert_tail(item(0));  // plain insert: no relabel
  EXPECT_TRUE(list.quiescent_version(v2));
  EXPECT_EQ(v1, v2);
}

TEST_F(OmTest, CompactReclaimsEmptyGroups) {
  OrderList list(0, 4);
  make_items(100);
  for (std::size_t i = 0; i < 100; ++i) list.insert_tail(item(i));
  for (std::size_t i = 10; i < 90; ++i) list.remove(item(i));
  list.compact();
  std::string err;
  EXPECT_TRUE(list.validate(&err)) << err;
  EXPECT_EQ(list.size(), 20u);
}

TEST_F(OmTest, InterleavedInsertRemoveStress) {
  OrderList list(0, 4);
  make_items(500);
  // Build, remove odds, reinsert after evens, verify total order.
  for (std::size_t i = 0; i < 500; ++i) list.insert_tail(item(i));
  for (std::size_t i = 1; i < 500; i += 2) list.remove(item(i));
  for (std::size_t i = 1; i < 500; i += 2)
    list.insert_after(item(i - 1), item(i));
  std::vector<VertexId> expect;
  for (VertexId i = 0; i < 500; ++i) expect.push_back(i);
  EXPECT_EQ(list.to_vector(), expect);
  std::string err;
  EXPECT_TRUE(list.validate(&err)) << err;
}

TEST_F(OmTest, EmptyListValidates) {
  OrderList list(3);
  std::string err;
  EXPECT_TRUE(list.validate(&err)) << err;
  EXPECT_EQ(list.size(), 0u);
  EXPECT_TRUE(list.to_vector().empty());
}

}  // namespace
}  // namespace parcore
