#include <gtest/gtest.h>

#include "decomp/bz.h"
#include "gen/suite.h"

namespace parcore {
namespace {

TEST(Suite, HasSixteenGraphs) {
  auto suite = table2_suite();
  EXPECT_EQ(suite.size(), 16u);
  for (const auto& s : suite) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_GT(s.paper_n, 0u);
    EXPECT_GT(s.paper_m, 0u);
  }
}

TEST(Suite, ScalabilitySubsetNamesMatchPaper) {
  auto subset = scalability_suite();
  ASSERT_EQ(subset.size(), 4u);
  std::set<std::string> names;
  for (const auto& s : subset) names.insert(s.name);
  EXPECT_TRUE(names.contains("livej"));
  EXPECT_TRUE(names.contains("baidu"));
  EXPECT_TRUE(names.contains("dbpedia"));
  EXPECT_TRUE(names.contains("roadNet-CA"));
}

TEST(Suite, BuildsSmallScaleGraphs) {
  for (const auto& spec : table2_suite()) {
    SuiteGraph sg = build_suite_graph(spec, 0.02);
    DynamicGraph g = to_graph(sg);
    EXPECT_GT(g.num_vertices(), 0u) << spec.name;
    EXPECT_GT(g.num_edges(), 0u) << spec.name;
  }
}

TEST(Suite, DeterministicAcrossBuilds) {
  auto spec = table2_suite()[0];
  SuiteGraph a = build_suite_graph(spec, 0.02);
  SuiteGraph b = build_suite_graph(spec, 0.02);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i)
    EXPECT_EQ(a.edges[i], b.edges[i]);
}

TEST(Suite, TemporalGraphsCarryTimestamps) {
  for (const auto& spec : table2_suite()) {
    if (!spec.temporal) continue;
    SuiteGraph sg = build_suite_graph(spec, 0.02);
    EXPECT_FALSE(sg.temporal.empty()) << spec.name;
    for (std::size_t i = 1; i < sg.temporal.size(); ++i)
      EXPECT_GT(sg.temporal[i].time, sg.temporal[i - 1].time) << spec.name;
  }
}

TEST(Suite, BaStandInHasSingleCoreValue) {
  // The property the paper's parallelism argument hinges on.
  for (const auto& spec : table2_suite()) {
    if (spec.name != "BA") continue;
    SuiteGraph sg = build_suite_graph(spec, 0.05);
    DynamicGraph g = to_graph(sg);
    Decomposition d = bz_decompose(g);
    // Nearly all vertices share the max core value.
    std::size_t at_max = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      if (d.core[v] == d.max_core) ++at_max;
    EXPECT_GT(at_max, g.num_vertices() * 9 / 10);
  }
}

TEST(Suite, RoadStandInHasTinyMaxCore) {
  for (const auto& spec : table2_suite()) {
    if (spec.name != "roadNet-CA") continue;
    SuiteGraph sg = build_suite_graph(spec, 0.05);
    DynamicGraph g = to_graph(sg);
    Decomposition d = bz_decompose(g);
    EXPECT_LE(d.max_core, 3);
  }
}

}  // namespace
}  // namespace parcore
