// Behavioural tests for the benchmark harness: the evaluation protocol
// itself must be sound (batch disjoint from base, temporal contiguity,
// round-trip restoration) or every measured number is meaningless.
#include <gtest/gtest.h>

#include <set>

#include "graph/edge_list.h"
#include "harness.h"
#include "test_util.h"

namespace parcore::bench {
namespace {

TEST(BenchHarness, WorkerSweepIsPowersOfTwo) {
  EXPECT_EQ(worker_sweep(16), (std::vector<int>{1, 2, 4, 8, 16}));
  EXPECT_EQ(worker_sweep(1), (std::vector<int>{1}));
  EXPECT_EQ(worker_sweep(5), (std::vector<int>{1, 2, 4}));
}

TEST(BenchHarness, PreparedWorkloadPartitionsEdges) {
  SuiteSpec spec = table2_suite()[0];  // livej stand-in
  PreparedWorkload w = prepare_workload(spec, 0.02, 300);
  EXPECT_FALSE(w.batch.empty());
  EXPECT_FALSE(w.base_edges.empty());
  // Batch and base are disjoint and together cover the full graph.
  std::set<std::uint64_t> base_keys;
  for (const Edge& e : w.base_edges) base_keys.insert(edge_key(e));
  for (const Edge& e : w.batch)
    EXPECT_FALSE(base_keys.contains(edge_key(e)));
}

TEST(BenchHarness, BatchFactorShrinksPathologicalBatches) {
  SuiteSpec ba;
  for (const SuiteSpec& s : table2_suite())
    if (s.name == "BA") ba = s;
  PreparedWorkload w = prepare_workload(ba, 0.02, 1000);
  EXPECT_LE(w.batch.size(), 250u);  // batch_factor 0.25
}

TEST(BenchHarness, TemporalBatchIsSuffixOfStream) {
  SuiteSpec temporal;
  for (const SuiteSpec& s : table2_suite())
    if (s.temporal) temporal = s;
  ASSERT_TRUE(temporal.temporal);
  PreparedWorkload w = prepare_workload(temporal, 0.02, 200);
  // The batch must be the most recent contiguous range: rebuilding the
  // suite graph and taking its tail (after dedup) must match.
  SuiteGraph sg = build_suite_graph(temporal, 0.02);
  std::vector<Edge> all;
  for (const TimestampedEdge& te : sg.temporal) all.push_back(te.e);
  canonicalize_edges(all);
  ASSERT_GE(all.size(), w.batch.size());
  for (std::size_t i = 0; i < w.batch.size(); ++i)
    EXPECT_EQ(w.batch[i], all[all.size() - w.batch.size() + i]);
}

TEST(BenchHarness, InsertRemoveRoundTripRestoresBase) {
  // The timing protocol reuses one maintainer across repetitions; that
  // is only valid if removing the inserted batch restores the base
  // graph's cores exactly.
  SuiteSpec spec = table2_suite()[2];  // wikitalk stand-in
  PreparedWorkload w = prepare_workload(spec, 0.02, 200);
  DynamicGraph g = base_graph(w);
  ThreadTeam team(4);
  ParallelOrderMaintainer m(g, team);
  auto before = m.cores();
  m.insert_batch(w.batch, 4);
  m.remove_batch(w.batch, 4);
  EXPECT_EQ(m.cores(), before);
  EXPECT_EQ(g.num_edges(), w.base_edges.size());
}

TEST(BenchHarness, TimersProducepositiveStats) {
  SuiteSpec spec = table2_suite()[2];
  PreparedWorkload w = prepare_workload(spec, 0.02, 100);
  ThreadTeam team(4);
  AlgoTimes ours = time_parallel_order(w, team, 4, 2);
  EXPECT_EQ(ours.insert_ms.count, 2u);
  EXPECT_GE(ours.insert_ms.mean, 0.0);
  AlgoTimes je = time_je(w, team, 4, 1);
  EXPECT_EQ(je.remove_ms.count, 1u);
}

TEST(BenchHarness, EnvDefaults) {
  unsetenv("PARCORE_BENCH_FAST");
  unsetenv("PARCORE_BENCH_SCALE");
  unsetenv("PARCORE_BENCH_BATCH");
  BenchEnv env = bench_env();
  EXPECT_DOUBLE_EQ(env.scale, 0.2);
  EXPECT_EQ(env.batch, 5000u);
  setenv("PARCORE_BENCH_FAST", "1", 1);
  BenchEnv fast = bench_env();
  EXPECT_LT(fast.scale, env.scale);
  unsetenv("PARCORE_BENCH_FAST");
}

}  // namespace
}  // namespace parcore::bench
