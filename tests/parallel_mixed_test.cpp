// Mixed insert/remove phases: round trips, sliding windows, long
// alternating stress runs.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/edge_list.h"
#include "parallel/parallel_order.h"
#include "test_util.h"

namespace parcore {
namespace {

using test::Family;

TEST(ParallelMixed, InsertThenRemoveRestoresCores) {
  test::Workload w = test::make_workload(Family::kRmat, 600, 0.3, 71);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team);
  auto before = m.cores();
  m.insert_batch(w.batch, 8);
  m.remove_batch(w.batch, 8);
  EXPECT_EQ(m.cores(), before);
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(g, &err)) << err;
}

TEST(ParallelMixed, AlternatingBatchesStayCorrect) {
  test::Workload w = test::make_workload(Family::kEr, 500, 0.4, 41);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team);
  auto parts = split_batches(w.batch, 6);
  // Insert two chunks, remove one, repeat — cores checked each phase.
  std::vector<std::vector<Edge>> inserted;
  std::size_t next_insert = 0;
  for (int round = 0; round < 3; ++round) {
    for (int j = 0; j < 2 && next_insert < parts.size(); ++j) {
      m.insert_batch(parts[next_insert], 8);
      inserted.push_back(parts[next_insert]);
      ++next_insert;
      test::expect_cores_match(g, m.cores(), "insert round");
    }
    if (!inserted.empty()) {
      m.remove_batch(inserted.back(), 8);
      inserted.pop_back();
      test::expect_cores_match(g, m.cores(), "remove round");
    }
    std::string err;
    ASSERT_TRUE(m.state().check_invariants(g, &err)) << err;
  }
}

TEST(ParallelMixed, SlidingWindowOverTemporalStream) {
  // The motivating workload: a temporal stream maintained over a
  // sliding window — every step inserts the newest edges and removes
  // the oldest (both phases in one step).
  Rng rng(2024);
  auto stream = gen_temporal_ba(700, 3, rng);
  std::vector<Edge> edges;
  for (const auto& te : stream) edges.push_back(te.e);

  const std::size_t window = edges.size() / 2;
  const std::size_t step = window / 8;
  auto g = DynamicGraph::from_edges(
      700, std::span<const Edge>(edges.data(), window));
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team);

  std::size_t lo = 0, hi = window;
  for (int i = 0; i < 4 && hi + step <= edges.size(); ++i) {
    m.insert_batch(std::span<const Edge>(edges.data() + hi, step), 8);
    m.remove_batch(std::span<const Edge>(edges.data() + lo, step), 8);
    lo += step;
    hi += step;
    test::expect_cores_match(g, m.cores(),
                             "window step " + std::to_string(i));
  }
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(g, &err)) << err;
}

TEST(ParallelMixed, RebuildResetsState) {
  test::Workload w = test::make_workload(Family::kBa, 300, 0.3, 8);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(4);
  ParallelOrderMaintainer m(g, team);
  m.insert_batch(w.batch, 4);
  m.rebuild();  // recompute from the mutated graph
  test::expect_cores_match(g, m.cores(), "after rebuild");
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(g, &err)) << err;
}

TEST(ParallelMixed, ManyWorkersOversubscribed) {
  // More workers than cores on small graphs: exercises fairness paths.
  test::Workload w = test::make_workload(Family::kRmat, 300, 0.4, 12);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(16);
  ParallelOrderMaintainer m(g, team);
  m.insert_batch(w.batch, 16);
  test::expect_cores_match(g, m.cores(), "oversubscribed insert");
  m.remove_batch(w.batch, 16);
  test::expect_cores_match(g, m.cores(), "oversubscribed remove");
}

TEST(ParallelMixed, GridFamilyUnderHighWorkerCounts) {
  // Road-network-like structure: tiny max core, huge flat level lists —
  // every worker operates in the same two order lists.
  Rng rng(55);
  auto edges = gen_grid(40, 40, 0.95, 0.08, rng);
  canonicalize_edges(edges);
  rng.shuffle(edges);
  const std::size_t cut = edges.size() / 4;
  std::vector<Edge> batch(edges.begin(), edges.begin() + cut);
  std::vector<Edge> base(edges.begin() + cut, edges.end());
  auto g = DynamicGraph::from_edges(1600, base);
  ThreadTeam team(16);
  ParallelOrderMaintainer m(g, team);
  for (int round = 0; round < 3; ++round) {
    m.insert_batch(batch, 16);
    test::expect_cores_match(g, m.cores(), "grid insert");
    m.remove_batch(batch, 16);
    test::expect_cores_match(g, m.cores(), "grid remove");
  }
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(g, &err, /*check_cores=*/true))
      << err;
}

TEST(ParallelMixed, TinyOmGroupsUnderContention) {
  // Group capacity 2 maximises relabel/split frequency, stressing the
  // seq-lock versioning paths of the priority queue during real batches.
  test::Workload w = test::make_workload(Family::kBa, 400, 0.4, 66);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(8);
  ParallelOrderMaintainer::Options opts;
  opts.state.om_group_capacity = 2;
  ParallelOrderMaintainer m(g, team, opts);
  m.insert_batch(w.batch, 8);
  test::expect_cores_match(g, m.cores(), "tiny groups insert");
  m.remove_batch(w.batch, 8);
  test::expect_cores_match(g, m.cores(), "tiny groups remove");
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(g, &err)) << err;
}

TEST(ParallelMixed, StressLoopWithPeriodicValidation) {
  test::Workload w = test::make_workload(Family::kEr, 400, 0.5, 90);
  auto g = DynamicGraph::from_edges(w.n, w.base);
  ThreadTeam team(8);
  ParallelOrderMaintainer m(g, team);
  auto parts = split_batches(w.batch, 10);
  for (int iter = 0; iter < 10; ++iter) {
    m.insert_batch(parts[static_cast<std::size_t>(iter)], 8);
    m.remove_batch(parts[static_cast<std::size_t>(iter)], 8);
  }
  test::expect_cores_match(g, m.cores(), "stress loop");
  std::string err;
  ASSERT_TRUE(m.state().check_invariants(g, &err, /*check_cores=*/true))
      << err;
}

}  // namespace
}  // namespace parcore
