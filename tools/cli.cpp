#include "cli.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "decomp/bz.h"
#include "decomp/core_query.h"
#include "decomp/parallel_peel.h"
#include "decomp/park.h"
#include "durability/recovery.h"
#include "engine/engine.h"
#include "gen/generators.h"
#include "gen/stream_adapter.h"
#include "graph/edge_list.h"
#include "harness.h"
#include "io/graph_reader.h"
#include "io/io_error.h"
#include "io/pcg.h"
#include "io/temporal_stream.h"
#include "maint/seq_order.h"
#include "maint/traversal.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/env.h"
#include "support/timer.h"

#ifdef PARCORE_HAVE_ZLIB
#include <zlib.h>
#endif

namespace parcore::cli {

namespace {

using bench::Table;
using bench::fmt;

// SIGINT/SIGTERM request a graceful serve shutdown: producers poll the
// flag and stop submitting, the engine drains + takes its shutdown
// checkpoint, and the closing report still prints. sig_atomic_t is the
// only type a handler may portably write.
volatile std::sig_atomic_t g_interrupted = 0;

void handle_stop_signal(int) { g_interrupted = 1; }

/// A bad option value (vs. a runtime failure): caught by the dispatcher
/// and reported with the command's usage text, exit code 2.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

constexpr const char* kGlobalUsage = R"(parcore_cli - core maintenance over real datasets

usage: parcore_cli <command> [options]

commands:
  decompose   static core decomposition of a dataset (BZ or ParK)
  maintain    sliding-window batch maintenance (parallel/seq/traversal/je)
  serve       drive the streaming engine from a temporal update file
  bench       engine-throughput benchmark on a dataset (emits BENCH_*.json)
  recover     rebuild state from a serve run's checkpoint + WAL directory
  stats       degree distribution + adjacency memory footprint of a dataset
  convert     transcode a dataset (e.g. edge list -> .pcg binary cache)
  help        print this text (or 'help <command>' for one command)

Input formats (spec: docs/FORMATS.md): SNAP-style edge lists,
MatrixMarket .mtx, and the .pcg binary cache; .gz variants of the text
formats when built with zlib (-DPARCORE_WITH_ZLIB=ON).

Environment knobs (full table: docs/CONFIG.md): PARCORE_ENGINE_* for
the streaming engine's flush policy, PARCORE_WAL_* for durability,
PARCORE_BENCH_* for benchmark scale and output.
)";

// ------------------------------------------------------------ arg parsing

/// Minimal "--name value" / "--flag" parser over a declared option set.
class Args {
 public:
  /// `flags` take no value; everything else in `known` does.
  Args(const std::vector<std::string>& args, std::size_t start,
       std::set<std::string> known, std::set<std::string> flags)
      : known_(std::move(known)), flags_(std::move(flags)) {
    for (std::size_t i = start; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (a == "--help" || a == "-h") {
        help_ = true;
        continue;
      }
      if (a.rfind("--", 0) != 0) {
        error_ = "unexpected positional argument '" + a + "'";
        return;
      }
      const std::string name = a.substr(2);
      if (flags_.count(name) != 0) {
        values_[name] = "1";
        continue;
      }
      if (known_.count(name) == 0) {
        error_ = "unknown option --" + name;
        return;
      }
      if (i + 1 >= args.size()) {
        error_ = "option --" + name + " needs a value";
        return;
      }
      values_[name] = args[++i];
    }
  }

  bool help() const { return help_; }
  const std::string& error() const { return error_; }

  bool has(const std::string& name) const { return values_.count(name) != 0; }

  std::string get(const std::string& name, const std::string& def = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }

  /// Strict: the whole value must be a decimal integer, or the command
  /// fails with a usage error rather than running on a silent default.
  long get_int(const std::string& name, long def) const {
    auto it = values_.find(name);
    if (it == values_.end()) return def;
    const std::string& s = it->second;
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE)
      throw UsageError("option --" + name + " expects an integer, got '" + s +
                       "'");
    return v;
  }

  /// get_int restricted to values >= 1 (thread counts, sizes).
  long get_positive(const std::string& name, long def) const {
    const long v = get_int(name, def);
    if (v < 1)
      throw UsageError("option --" + name + " must be positive, got " +
                       std::to_string(v));
    return v;
  }

 private:
  std::set<std::string> known_;
  std::set<std::string> flags_;
  std::map<std::string, std::string> values_;
  std::string error_;
  bool help_ = false;
};

int usage_error(const char* usage, const std::string& message) {
  std::fprintf(stderr, "parcore_cli: %s\n\n%s", message.c_str(), usage);
  return 2;
}

// ------------------------------------------------------------ shared bits

void print_load_summary(const std::string& path, const io::GraphData& data,
                        double ms) {
  std::printf("loaded %s: n=%zu m=%zu (%.1f ms, %.1f MB parsed", path.c_str(),
              data.num_vertices, data.edges.size(), ms,
              static_cast<double>(data.stats.memory_footprint_bytes) / 1e6);
  if (data.stats.self_loops > 0 || data.stats.duplicates > 0)
    std::printf("; dropped %zu self-loops, %zu duplicates",
                data.stats.self_loops, data.stats.duplicates);
  std::printf(")\n");
}

/// The one operator-facing metrics renderer (docs/OBSERVABILITY.md):
/// serve's closing report, serve's /summary HTTP endpoint and
/// `stats --live` all print the global registry through this exporter,
/// so the three surfaces can never drift apart.
void print_metrics_summary(std::FILE* out) {
  const std::string s = obs::human_summary(obs::registry());
  if (!s.empty()) std::fputs(s.c_str(), out);
}

bool cores_match(const std::vector<CoreValue>& got,
                 const std::vector<CoreValue>& want) {
  if (got.size() != want.size()) return false;
  return std::equal(got.begin(), got.end(), want.begin());
}

/// Edge sequence in arrival order: temporal files by timestamp, static
/// ones in file order.
std::vector<Edge> arrival_order_edges(io::GraphData& data) {
  if (data.has_timestamps)
    std::stable_sort(data.edges.begin(), data.edges.end(),
                     [](const TimestampedEdge& a, const TimestampedEdge& b) {
                       return a.time < b.time;
                     });
  return io::static_edges(data);
}

// -------------------------------------------------------------- decompose

constexpr const char* kDecomposeUsage =
    R"(usage: parcore_cli decompose --input FILE [options]

Static core decomposition with a load/decompose time breakdown.

  --input FILE   dataset (edge list / .mtx / .pcg; docs/FORMATS.md)
  --algo NAME    bz (sequential, default), park (parallel, cores only),
                 parallel (parallel exact peel, also derives a k-order)
                 or approx (h-index iteration; --max-rounds caps it to
                 a fast upper bound, 0 iterates to the exact fixpoint)
  --workers N    worker threads for park/parallel/approx (default 8,
                 or PARCORE_DECOMPOSE_WORKERS when set)
  --max-rounds N approx round cap (default 0 = run to fixpoint)
  --top K        print the K highest-coreness vertices (original ids)
  --histogram    print the core-value distribution
)";

int cmd_decompose(const Args& args) {
  const std::string input = args.get("input");
  if (input.empty()) return usage_error(kDecomposeUsage, "--input is required");
  const std::string algo = args.get("algo", "bz");
  if (algo != "bz" && algo != "park" && algo != "parallel" &&
      algo != "approx")
    return usage_error(kDecomposeUsage, "unknown --algo '" + algo + "'");

  WallTimer load_timer;
  io::GraphData data = io::read_graph(input);
  const double load_ms = load_timer.elapsed_ms();
  print_load_summary(input, data, load_ms);

  DynamicGraph g = io::to_dynamic_graph(data);
  const int workers = static_cast<int>(args.get_positive(
      "workers", std::max(env_int("PARCORE_DECOMPOSE_WORKERS", 8), 1L)));
  WallTimer decomp_timer;
  std::vector<CoreValue> cores;
  std::string note;
  if (algo == "park") {
    ThreadTeam team(workers);
    cores = park_decompose(g, team, workers);
  } else if (algo == "parallel" || algo == "approx") {
    ThreadTeam team(workers);
    DecomposeOptions dopts;
    dopts.workers = workers;
    dopts.mode =
        algo == "approx" ? DecomposeMode::kApprox : DecomposeMode::kExact;
    dopts.max_rounds = static_cast<int>(args.get_int("max-rounds", 0));
    const BulkDecomposition bd = parallel_decompose(g, team, dopts);
    cores = bd.core;
    note = " (" + std::to_string(workers) + " workers, " +
           std::to_string(bd.rounds) + " rounds" +
           (bd.exact ? "" : ", capped: upper bound only") + ")";
  } else {
    cores = bz_decompose(g).core;
  }
  const double decomp_ms = decomp_timer.elapsed_ms();

  CoreSummary summary = summarize_cores(cores);
  std::printf("%s decomposition: %.1f ms%s\n", algo.c_str(), decomp_ms,
              note.c_str());
  std::printf("max core = %d, degeneracy core size = %zu, avg degree = %.2f\n",
              summary.max_core, summary.degeneracy_core_size,
              g.average_degree());

  if (args.has("histogram")) {
    Table t({"core", "vertices"});
    for (std::size_t k = 0; k < summary.histogram.size(); ++k)
      if (summary.histogram[k] > 0)
        t.add_row({std::to_string(k), std::to_string(summary.histogram[k])});
    t.print();
  }

  const long top = args.get_int("top", 0);
  if (top > 0) {
    std::vector<VertexId> order(cores.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](VertexId a, VertexId b) { return cores[a] > cores[b]; });
    Table t({"vertex", "core"});
    for (long i = 0; i < top && i < static_cast<long>(order.size()); ++i) {
      const VertexId v = order[static_cast<std::size_t>(i)];
      const std::uint64_t shown =
          v < data.original_ids.size() ? data.original_ids[v] : v;
      t.add_row({std::to_string(shown), std::to_string(cores[v])});
    }
    t.print();
  }
  return 0;
}

// ---------------------------------------------------------------- convert

constexpr const char* kConvertUsage =
    R"(usage: parcore_cli convert --input FILE --output FILE

Transcodes a dataset. Output ending in .pcg writes the binary cache
(parse once, load fast); .gz writes a gzipped edge list (zlib builds
only); any other output writes a plain edge list. Self-loops and
duplicate edges are dropped and ids compacted to [0, n).
)";

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::string(suffix).size();
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

void write_gz_edge_list(const std::string& path, const io::GraphData& data) {
#ifdef PARCORE_HAVE_ZLIB
  gzFile f = gzopen(path.c_str(), "wb");
  if (f == nullptr) throw io::IoError(path, 0, "cannot open for writing");
  for (const TimestampedEdge& te : data.edges) {
    const int n =
        data.has_timestamps
            ? gzprintf(f, "%u %u %llu\n", te.e.u, te.e.v,
                       static_cast<unsigned long long>(te.time))
            : gzprintf(f, "%u %u\n", te.e.u, te.e.v);
    if (n <= 0) {
      gzclose(f);
      throw io::IoError(path, 0, "write failed");
    }
  }
  if (gzclose(f) != Z_OK) throw io::IoError(path, 0, "write failed");
#else
  throw io::IoError(path, 0,
                    "gzip output requires a zlib build "
                    "(-DPARCORE_WITH_ZLIB=ON)");
#endif
}

int cmd_convert(const Args& args) {
  const std::string input = args.get("input");
  const std::string output = args.get("output");
  if (input.empty() || output.empty())
    return usage_error(kConvertUsage, "--input and --output are required");
  if (ends_with(output, ".pcg.gz"))
    return usage_error(kConvertUsage,
                       ".pcg caches cannot be gzipped (the binary loader "
                       "reads plain files only)");

  WallTimer load_timer;
  io::GraphData data = io::read_graph(input);
  print_load_summary(input, data, load_timer.elapsed_ms());

  WallTimer write_timer;
  if (io::detect_format(output) == io::GraphFormat::kPcg) {
    io::save_pcg(output, data);
  } else if (ends_with(output, ".gz")) {
    write_gz_edge_list(output, data);
  } else {
    EdgeListData out;
    out.num_vertices = data.num_vertices;
    out.edges = data.edges;
    out.has_timestamps = data.has_timestamps;
    save_edge_list(output, out);
  }
  std::printf("wrote %s: %zu edges (%.1f ms)\n", output.c_str(),
              data.edges.size(), write_timer.elapsed_ms());
  return 0;
}

// ---------------------------------------------------------------- maintain

constexpr const char* kMaintainUsage =
    R"(usage: parcore_cli maintain --input FILE [options]

Sliding-window batch maintenance: replay the dataset in arrival order
(temporal files by timestamp), inserting a batch per step and removing
the batch that slides out of the window once it is full.

  --input FILE   dataset (edge list / .mtx / .pcg)
  --algo NAME    parallel (default), seq, traversal, or je
  --window N     live-edge window (default: half the dataset)
  --batch B      edges per step (default 1000)
  --workers W    parallel/je workers per batch (default 8)
  --plan         conflict-aware wave scheduling (parallel algo only;
                 DESIGN.md §9)
  --steps S      stop after S steps (default: until exhausted)
  --verify       recompute cores from scratch at the end and compare
)";

int cmd_maintain(const Args& args) {
  const std::string input = args.get("input");
  if (input.empty()) return usage_error(kMaintainUsage, "--input is required");
  const std::string algo = args.get("algo", "parallel");
  if (algo != "parallel" && algo != "seq" && algo != "traversal" &&
      algo != "je")
    return usage_error(kMaintainUsage, "unknown --algo '" + algo + "'");

  WallTimer load_timer;
  io::GraphData data = io::read_graph(input);
  print_load_summary(input, data, load_timer.elapsed_ms());
  const std::vector<Edge> stream = arrival_order_edges(data);
  if (stream.empty()) {
    std::fprintf(stderr, "parcore_cli: %s has no edges\n", input.c_str());
    return 1;
  }

  const std::size_t window = static_cast<std::size_t>(args.get_positive(
      "window", static_cast<long>(std::max<std::size_t>(1, stream.size() / 2))));
  const std::size_t batch =
      static_cast<std::size_t>(args.get_positive("batch", 1000));
  const int workers = static_cast<int>(args.get_positive("workers", 8));
  const long max_steps = args.has("steps") ? args.get_positive("steps", 1) : -1;

  // The window starts as the first min(window, m) edges.
  const std::size_t base_len = std::min(window, stream.size());
  std::deque<Edge> live(stream.begin(),
                        stream.begin() + static_cast<std::ptrdiff_t>(base_len));
  DynamicGraph g = DynamicGraph::from_edges(
      data.num_vertices, std::vector<Edge>(live.begin(), live.end()));

  if (args.has("plan") && algo != "parallel")
    throw UsageError("--plan requires --algo parallel");

  // Only the selected maintainer is constructed: each constructor runs a
  // full decomposition, and the non-JE ones take over `g`.
  ThreadTeam team(std::max(workers, 1));
  ParallelOrderMaintainer::Options par_opts;
  if (args.has("plan")) par_opts.schedule = ScheduleMode::kPlan;
  std::unique_ptr<ParallelOrderMaintainer> par;
  std::unique_ptr<SeqOrderMaintainer> seq;
  std::unique_ptr<TraversalMaintainer> trav;
  std::unique_ptr<JeMaintainer> je;
  if (algo == "parallel")
    par = std::make_unique<ParallelOrderMaintainer>(g, team, par_opts);
  else if (algo == "seq") seq = std::make_unique<SeqOrderMaintainer>(g);
  else if (algo == "traversal") trav = std::make_unique<TraversalMaintainer>(g);
  else je = std::make_unique<JeMaintainer>(g, team);

  auto insert = [&](std::span<const Edge> edges) {
    if (par) par->insert_batch(edges, workers);
    else if (seq) seq->insert_batch(edges);
    else if (trav) trav->insert_batch(edges);
    else je->insert_batch(edges, workers);
  };
  auto remove = [&](std::span<const Edge> edges) {
    if (par) par->remove_batch(edges, workers);
    else if (seq) seq->remove_batch(edges);
    else if (trav) trav->remove_batch(edges);
    else je->remove_batch(edges, workers);
  };
  auto cores = [&]() -> std::vector<CoreValue> {
    std::vector<CoreValue> out(data.num_vertices);
    for (VertexId v = 0; v < out.size(); ++v)
      out[v] = par    ? par->core(v)
               : seq  ? seq->core(v)
               : trav ? trav->core(v)
                      : je->core(v);
    return out;
  };

  std::vector<double> insert_ms, remove_ms;
  std::size_t pos = base_len, steps = 0;
  while (pos < stream.size() &&
         (max_steps < 0 || steps < static_cast<std::size_t>(max_steps))) {
    const std::size_t len = std::min(batch, stream.size() - pos);
    std::span<const Edge> in(stream.data() + pos, len);

    WallTimer t;
    insert(in);
    insert_ms.push_back(t.elapsed_ms());
    for (const Edge& e : in) live.push_back(e);
    pos += len;

    if (live.size() > window) {
      std::vector<Edge> out;
      while (live.size() > window) {
        out.push_back(live.front());
        live.pop_front();
      }
      t.reset();
      remove(out);
      remove_ms.push_back(t.elapsed_ms());
    }
    ++steps;
  }

  const RunStats ins = RunStats::from(insert_ms);
  const RunStats rem = RunStats::from(remove_ms);
  std::printf(
      "%s: %zu steps (batch %zu, window %zu, %d workers)\n"
      "  insert per batch: mean %.2f ms (max %.2f), %zu batches\n"
      "  remove per batch: mean %.2f ms (max %.2f), %zu batches\n",
      algo.c_str(), steps, batch, window, workers, ins.mean, ins.max,
      ins.count, rem.mean, rem.max, rem.count);

  if (args.has("verify")) {
    DynamicGraph fresh = DynamicGraph::from_edges(
        data.num_vertices, std::vector<Edge>(live.begin(), live.end()));
    const Decomposition expect = bz_decompose(fresh);
    if (!cores_match(cores(), expect.core)) {
      std::fprintf(stderr, "FAILED: maintained cores diverge from a fresh "
                           "decomposition\n");
      return 1;
    }
    std::printf("verified: maintained cores match a fresh decomposition\n");
  }
  return 0;
}

// ------------------------------------------------------------------ stats

constexpr const char* kStatsUsage =
    R"(usage: parcore_cli stats --input FILE
       parcore_cli stats --live PORT

Loads a dataset, materialises the slab-backed adjacency structure, and
prints the degree distribution (power-of-two buckets) plus the memory
footprint breakdown from DynamicGraph::memory_stats() — arena bytes,
slab slack, and the fraction of vertices stored inline.

  --input FILE   dataset (edge list / .mtx / .pcg; docs/FORMATS.md)
  --live PORT    instead of loading a dataset, fetch and print the live
                 metrics summary of a `serve --metrics-port PORT` run on
                 this machine (the /summary endpoint; the same renderer
                 serve's own closing report uses)
)";

int cmd_stats(const Args& args) {
  if (args.has("live")) {
    const long port = args.get_positive("live", 0);
    if (port > 65535) throw UsageError("--live expects a port in [1, 65535]");
    std::string error;
    const std::string body = obs::http_fetch(
        "127.0.0.1", static_cast<int>(port), "/summary", &error);
    if (body.empty() && !error.empty()) {
      std::fprintf(stderr, "parcore_cli: stats --live %ld: %s\n", port,
                   error.c_str());
      return 1;
    }
    std::fputs(body.c_str(), stdout);
    return 0;
  }
  const std::string input = args.get("input");
  if (input.empty()) return usage_error(kStatsUsage, "--input is required");

  WallTimer load_timer;
  io::GraphData data = io::read_graph(input);
  print_load_summary(input, data, load_timer.elapsed_ms());

  WallTimer build_timer;
  DynamicGraph g = io::to_dynamic_graph(data);
  const double build_ms = build_timer.elapsed_ms();

  std::printf("built adjacency in %.1f ms: n=%zu m=%zu, max degree %zu, "
              "avg degree %.2f\n",
              build_ms, g.num_vertices(), g.num_edges(), g.max_degree(),
              g.average_degree());

  // Degree distribution in power-of-two buckets (0, 1, 2, 3-4, 5-8, ...).
  std::vector<std::size_t> buckets;
  auto bucket_of = [](std::size_t d) -> std::size_t {
    if (d <= 2) return d;  // 0, 1, 2 get exact buckets
    std::size_t b = 3, hi = 4;
    while (d > hi) {
      hi *= 2;
      ++b;
    }
    return b;
  };
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::size_t b = bucket_of(g.degree(v));
    if (b >= buckets.size()) buckets.resize(b + 1, 0);
    ++buckets[b];
  }
  Table dist({"degree", "vertices"});
  std::size_t lo = 3, hi = 4;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    std::string label;
    if (b <= 2) {
      label = std::to_string(b);
    } else {
      label = std::to_string(lo) + "-" + std::to_string(hi);
      lo = hi + 1;
      hi *= 2;
    }
    if (buckets[b] > 0) dist.add_row({label, std::to_string(buckets[b])});
  }
  dist.print();

  const GraphMemoryStats mem = g.memory_stats();
  Table t({"memory", "bytes", "detail"});
  t.add_row({"vertex headers", std::to_string(mem.header_bytes),
             "32 B x " + std::to_string(mem.num_vertices)});
  t.add_row({"arena reserved", std::to_string(mem.arena_reserved_bytes),
             std::to_string(mem.chunk_count) + " chunks"});
  t.add_row({"slabs in use", std::to_string(mem.slab_used_bytes),
             "capacity " + std::to_string(mem.slab_capacity_bytes)});
  t.add_row({"free lists", std::to_string(mem.freelist_bytes), ""});
  t.add_row({"total", std::to_string(mem.total_bytes()),
             fmt(static_cast<double>(mem.total_bytes()) / 1e6, 1) + " MB"});
  t.print();
  std::printf("inline vertices: %zu (%.1f%%), arena slack %.1f%%\n",
              mem.inline_vertices, 100.0 * mem.inline_fraction(),
              100.0 * mem.slack_fraction());
  return 0;
}

// ------------------------------------------------------------------ serve

constexpr const char* kServeUsage =
    R"(usage: parcore_cli serve --input FILE [options]

Drives the streaming engine from a temporal update file ("[+|-] u v [t]"
lines; a plain edge list is an insert-only stream). Ops are partitioned
across producer threads by edge, so the final graph is deterministic and
is checked against a fresh bz_decompose unless --no-verify.

  --input FILE    temporal update stream (docs/FORMATS.md)
  --producers N   concurrent producer threads (default 4)
  --readers N     concurrent query threads hammering epoch snapshots
                  (point reads + periodic core summaries) while the
                  producers run (default 0)
  --workers W     maintainer workers per flush (default: engine default)
  --plan          conflict-aware wave scheduling per flush; prints the
                  per-flush plan stats (buckets, waves, steals)
  --repeat R      replay the stream R times (default 1; load amplifier)
  --no-verify     skip the final bz_decompose comparison
  --metrics-port P  serve live metrics over HTTP on 127.0.0.1:P while
                  the run is in flight (0 picks an ephemeral port):
                  /metrics is Prometheus text exposition, /summary the
                  human-readable summary (`stats --live P` fetches it)
  --trace-out FILE  stream one JSON line per flush (the FlushSpan
                  schema: per-phase timings, worker busy/idle/steals;
                  docs/OBSERVABILITY.md)
  --checkpoint-dir DIR  enable durability (docs/DURABILITY.md): write
                  epoch checkpoints + an op WAL into DIR. The directory
                  must not already hold checkpoints; `parcore_cli
                  recover --dir DIR` rebuilds the state after a crash
  --checkpoint-interval N  flushes between periodic checkpoints
                  (default 64; 0 = only the initial/shutdown ones)
  --reverify MS   background re-verifier: every MS milliseconds a spare
                  thread recomputes the full decomposition (parallel
                  exact peel) on a consistent graph copy and diffs it
                  against the live snapshot; mismatches quarantine
                  queries to the last verified epoch until the next
                  flush repairs the state (docs/ROBUSTNESS.md); counted
                  in parcore_verify_mismatches_total (0 = off;
                  PARCORE_SERVE_REVERIFY_MS sets the same knob)
  --ingest-cap N  bound the ingest buffer at N pending updates
                  (admission control, docs/ROBUSTNESS.md; 0 = unbounded,
                  the default; PARCORE_ENGINE_INGEST_CAP sets the same)
  --overload POLICY  what producers hitting the cap get: `block` (wait
                  for a drain; default), `shed` (reject, counted in
                  parcore_admission_shed_total), `degrade` (compact the
                  producer's shard to last-op-per-edge and admit);
                  PARCORE_ENGINE_OVERLOAD sets the same knob

SIGINT/SIGTERM stop the run gracefully: producers stop submitting, the
engine drains, takes its shutdown checkpoint when durability is dirty,
and the closing report still prints (exit 0; the final bz_decompose
verification is skipped because the op stream was cut short).

Engine flush policy comes from PARCORE_ENGINE_* (docs/CONFIG.md);
PARCORE_WAL_* sets the same durability knobs environment-wide;
PARCORE_ENGINE_SNAPSHOT_PAGE sizes the copy-on-write snapshot pages;
PARCORE_OBS gates metrics recording, PARCORE_OBS_REPORT_MS enables the
periodic stderr reporter.
)";

int cmd_serve(const Args& args) {
  const std::string input = args.get("input");
  if (input.empty()) return usage_error(kServeUsage, "--input is required");
  const int producers = static_cast<int>(args.get_positive("producers", 4));
  const long readers = args.has("readers")
                           ? args.get_positive("readers", 1)
                           : 0;
  const long repeat = args.get_positive("repeat", 1);

  WallTimer load_timer;
  io::TemporalStream stream = io::read_temporal_stream(input);
  std::printf("loaded %s: n=%zu, %zu ops (%.1f ms)\n", input.c_str(),
              stream.num_vertices, stream.ops.size(),
              load_timer.elapsed_ms());
  if (stream.ops.empty()) {
    std::fprintf(stderr, "parcore_cli: %s has no update ops\n", input.c_str());
    return 1;
  }

  std::vector<GraphUpdate> ops;
  ops.reserve(stream.ops.size() * static_cast<std::size_t>(repeat));
  for (long r = 0; r < repeat; ++r)
    for (const io::TimedUpdate& op : stream.ops) ops.push_back(op.u);

  engine::StreamingEngine::Options opts = engine::options_from_env();
  if (args.has("workers"))
    opts.workers = static_cast<int>(args.get_positive("workers", opts.workers));
  if (args.has("plan")) opts.maintainer.schedule = ScheduleMode::kPlan;
  if (args.has("checkpoint-dir"))
    opts.durability.dir = args.get("checkpoint-dir");
  if (args.has("checkpoint-interval")) {
    const long iv = args.get_int("checkpoint-interval", 64);
    if (iv < 0)
      throw UsageError("--checkpoint-interval must be >= 0");
    opts.durability.checkpoint_interval = static_cast<std::size_t>(iv);
    if (opts.durability.dir.empty())
      throw UsageError("--checkpoint-interval requires --checkpoint-dir");
  }
  if (args.has("reverify")) {
    const long ms = args.get_int("reverify", 0);
    if (ms < 0) throw UsageError("--reverify must be >= 0");
    opts.reverify_interval_ms = static_cast<double>(ms);
  }
  if (args.has("ingest-cap")) {
    const long cap = args.get_int("ingest-cap", 0);
    if (cap < 0) throw UsageError("--ingest-cap must be >= 0");
    opts.ingest_cap = static_cast<std::size_t>(cap);
  }
  if (args.has("overload")) {
    const std::string policy = args.get("overload");
    if (policy == "block") {
      opts.overload = engine::OverloadPolicy::kBlock;
    } else if (policy == "shed") {
      opts.overload = engine::OverloadPolicy::kShed;
    } else if (policy == "degrade") {
      opts.overload = engine::OverloadPolicy::kDegrade;
    } else {
      throw UsageError("--overload must be block, shed or degrade");
    }
  }

  // --trace-out: every flush span as one JSON line. The stream must
  // outlive the engine (the sink runs under the flush lock until stop).
  std::ofstream trace_file;
  const std::string trace_out = args.get("trace-out");
  if (!trace_out.empty()) {
    trace_file.open(trace_out, std::ios::trunc);
    if (!trace_file) {
      std::fprintf(stderr, "parcore_cli: cannot open --trace-out %s\n",
                   trace_out.c_str());
      return 1;
    }
    opts.span_sink = [&trace_file](const obs::FlushSpan& s) {
      trace_file << obs::trace_json_line(s) << '\n';
    };
  }

  // --metrics-port: live HTTP exposition while the run is in flight.
  obs::MetricsHttpServer http;
  if (args.has("metrics-port")) {
    const long port = args.get_int("metrics-port", 0);
    if (port < 0 || port > 65535)
      throw UsageError("--metrics-port must be in [0, 65535]");
    if (!http.start(
            static_cast<int>(port),
            [] { return obs::prometheus_text(obs::registry()); },
            [] { return obs::human_summary(obs::registry()); })) {
      std::fprintf(stderr, "parcore_cli: cannot bind metrics port %ld\n",
                   port);
      return 1;
    }
    std::printf("metrics: http://127.0.0.1:%d/metrics (and /summary)\n",
                http.port());
  }

  DynamicGraph g(stream.num_vertices);
  ThreadTeam team(std::max(opts.workers, producers));
  engine::StreamingEngine eng(g, team, opts);
  eng.start();

  const std::vector<std::vector<GraphUpdate>> streams =
      partition_updates_by_edge(ops, static_cast<std::size_t>(producers));

  WallTimer timer;
  // Reader threads run the full query surface against live epoch
  // snapshots: wait-free point reads off the paged CoreView, plus a
  // periodic core summary (histogram scan) — they never block a flush.
  std::atomic<bool> stop_readers{false};
  std::atomic<std::uint64_t> point_reads{0};
  std::atomic<std::uint64_t> summaries{0};
  std::vector<std::thread> reader_threads;
  for (long r = 0; r < readers; ++r)
    reader_threads.emplace_back([&eng, &stop_readers, &point_reads,
                                 &summaries, r] {
      Rng rng(0x5eed + static_cast<std::uint64_t>(r));
      std::uint64_t reads = 0, sums = 0;
      while (!stop_readers.load(std::memory_order_relaxed)) {
        auto snap = eng.snapshot();
        const std::size_t n = snap->num_vertices();
        if (n == 0) continue;
        for (int i = 0; i < 1024; ++i) {
          volatile CoreValue c =
              snap->core(static_cast<VertexId>(rng.bounded(n)));
          (void)c;
        }
        reads += 1024;
        if (++sums % 64 == 0) (void)summarize_cores(snap->view);
      }
      point_reads.fetch_add(reads, std::memory_order_relaxed);
      summaries.fetch_add(sums / 64, std::memory_order_relaxed);
    });

  // Graceful shutdown: on SIGINT/SIGTERM the producers stop submitting
  // at their next op, the engine drains what was admitted and takes its
  // shutdown checkpoint, and the report below still prints.
  g_interrupted = 0;
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  std::vector<std::thread> threads;
  threads.reserve(streams.size());
  std::atomic<std::uint64_t> submitted{0};
  for (const auto& s : streams)
    threads.emplace_back([&eng, &s, &submitted] {
      std::uint64_t mine = 0;
      for (const GraphUpdate& u : s) {
        if (g_interrupted != 0) break;
        eng.submit(u);
        ++mine;
      }
      submitted.fetch_add(mine, std::memory_order_relaxed);
    });
  for (auto& t : threads) t.join();
  eng.stop();
  stop_readers.store(true);
  for (auto& t : reader_threads) t.join();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  const bool interrupted = g_interrupted != 0;
  const double sec = timer.elapsed_ms() / 1000.0;

  if (interrupted)
    std::printf("interrupted: stopped after %llu of %zu ops; engine "
                "drained and shut down cleanly\n",
                static_cast<unsigned long long>(submitted.load()),
                ops.size());

  const engine::EngineStats stats = eng.stats();
  auto snap = eng.snapshot();
  std::printf(
      "served %zu ops with %d producers in %.2f s (%.1f kups)\n"
      "  epochs %llu, applied +%llu/-%llu, coalesced: %llu pairs, "
      "%llu dups, %llu noops, %llu rejected\n"
      "  flush p50 %.2f ms, p99 %.2f ms; final epoch %llu, max core %d\n",
      ops.size(), producers, sec,
      sec > 0 ? static_cast<double>(ops.size()) / sec / 1000.0 : 0.0,
      static_cast<unsigned long long>(stats.epochs),
      static_cast<unsigned long long>(stats.applied_inserts),
      static_cast<unsigned long long>(stats.applied_removes),
      static_cast<unsigned long long>(stats.coalesce.annihilated_pairs),
      static_cast<unsigned long long>(stats.coalesce.duplicates),
      static_cast<unsigned long long>(stats.coalesce.noops),
      static_cast<unsigned long long>(stats.coalesce.rejected),
      static_cast<double>(stats.flush_us.percentile(0.5)) / 1000.0,
      static_cast<double>(stats.flush_us.percentile(0.99)) / 1000.0,
      static_cast<unsigned long long>(snap->epoch), snap->max_core);
  std::printf(
      "  snapshot publish p50 %.0f us, p99 %.0f us; %llu pages cloned "
      "(page %zu cores)\n",
      static_cast<double>(stats.publish_us.percentile(0.5)),
      static_cast<double>(stats.publish_us.percentile(0.99)),
      static_cast<unsigned long long>(stats.snapshot_pages_cloned),
      snap->view.page_size());
  if (readers > 0)
    std::printf(
        "  readers: %ld threads, %llu point reads (%.0f k/s), "
        "%llu summaries\n",
        readers, static_cast<unsigned long long>(point_reads.load()),
        sec > 0 ? static_cast<double>(point_reads.load()) / sec / 1000.0
                : 0.0,
        static_cast<unsigned long long>(summaries.load()));
  // Per-phase pipeline decomposition, summed over every flush — the
  // same partition each --trace-out span carries per flush.
  {
    const engine::EngineStats::PhaseTotals& ph = stats.phases;
    const double total_ms =
        static_cast<double>(ph.repair_us + ph.drain_us + ph.coalesce_us +
                            ph.wal_us + ph.plan_us + ph.apply_us +
                            ph.om_compact_us + ph.publish_us +
                            ph.checkpoint_us) /
        1000.0;
    std::printf(
        "  phases (ms, all flushes): repair %.1f, drain %.1f, "
        "coalesce %.1f, wal %.1f, "
        "plan %.1f, apply %.1f, om-compact %.1f, publish %.1f, "
        "checkpoint %.1f (sum %.1f)\n"
        "  workers: busy %.1f ms, idle %.1f ms (%.0f%% utilised)\n",
        static_cast<double>(ph.repair_us) / 1000.0,
        static_cast<double>(ph.drain_us) / 1000.0,
        static_cast<double>(ph.coalesce_us) / 1000.0,
        static_cast<double>(ph.wal_us) / 1000.0,
        static_cast<double>(ph.plan_us) / 1000.0,
        static_cast<double>(ph.apply_us) / 1000.0,
        static_cast<double>(ph.om_compact_us) / 1000.0,
        static_cast<double>(ph.publish_us) / 1000.0,
        static_cast<double>(ph.checkpoint_us) / 1000.0, total_ms,
        static_cast<double>(ph.worker_busy_us) / 1000.0,
        static_cast<double>(ph.worker_idle_us) / 1000.0,
        ph.worker_busy_us + ph.worker_idle_us > 0
            ? 100.0 * static_cast<double>(ph.worker_busy_us) /
                  static_cast<double>(ph.worker_busy_us + ph.worker_idle_us)
            : 0.0);
  }
  if (!trace_out.empty())
    std::printf("  trace: %llu spans -> %s (ring retains last %zu)\n",
                static_cast<unsigned long long>(eng.trace().recorded()),
                trace_out.c_str(), eng.trace().capacity());
  if (opts.ingest_cap > 0)
    std::printf(
        "  admission (cap %zu, %s): %llu shed, %llu block waits "
        "(%.1f ms blocked), %llu compacted away; overloaded %s "
        "(%llu overload flushes)\n",
        opts.ingest_cap,
        opts.overload == engine::OverloadPolicy::kBlock     ? "block"
        : opts.overload == engine::OverloadPolicy::kShed    ? "shed"
                                                            : "degrade",
        static_cast<unsigned long long>(stats.admission.shed),
        static_cast<unsigned long long>(stats.admission.block_waits),
        static_cast<double>(stats.admission.blocked_us) / 1000.0,
        static_cast<unsigned long long>(stats.admission.compacted),
        stats.overloaded ? "yes" : "no",
        static_cast<unsigned long long>(stats.overload_flushes));
  if (!opts.durability.dir.empty())
    std::printf(
        "  durability: %llu checkpoints, %llu WAL frames (%llu bytes, "
        "%llu fsyncs) -> %s\n",
        static_cast<unsigned long long>(stats.durability.checkpoints),
        static_cast<unsigned long long>(stats.durability.wal_frames),
        static_cast<unsigned long long>(stats.durability.wal_bytes),
        static_cast<unsigned long long>(stats.durability.wal_fsyncs),
        opts.durability.dir.c_str());
  if (!opts.durability.dir.empty() &&
      (stats.durability_retries > 0 || stats.durability_degraded ||
       stats.durability_rearms > 0))
    std::printf(
        "  durable-I/O faults: %llu retried writes, %llu re-arms%s\n",
        static_cast<unsigned long long>(stats.durability_retries),
        static_cast<unsigned long long>(stats.durability_rearms),
        stats.durability_degraded
            ? " -- DEGRADED to memory-only (durability lost; see "
              "docs/ROBUSTNESS.md)"
            : "");
  if (opts.reverify_interval_ms > 0.0)
    std::printf("  re-verify: %llu full decompositions, %llu mismatched "
                "cores, %llu self-healing repairs\n",
                static_cast<unsigned long long>(stats.verify_runs),
                static_cast<unsigned long long>(stats.verify_mismatches),
                static_cast<unsigned long long>(stats.repairs));
  // Arena footprint, OM reclamation, plan/steal counters and the rest
  // of the registry all render through the shared summary exporter —
  // the same bytes serve's /summary endpoint and `stats --live` return.
  print_metrics_summary(stdout);

  if (interrupted) {
    // The producers were cut short mid-stream, so the full-stream
    // replay below would not describe the graph the engine built.
    std::printf("interrupted: skipping final bz_decompose verification "
                "(op stream was cut short); state was drained and "
                "checkpointed\n");
    return 0;
  }
  if (stats.admission.shed > 0 && !args.has("no-verify")) {
    std::printf("shed %llu ops under overload: skipping final "
                "bz_decompose verification (the accepted subset is "
                "load-dependent; tests/ingest_test.cpp covers its "
                "differential correctness)\n",
                static_cast<unsigned long long>(stats.admission.shed));
    return 0;
  }
  if (!args.has("no-verify")) {
    // Per-edge op order is preserved inside one producer stream, so the
    // final edge set is schedule-independent: compare against a fresh
    // decomposition of the sequential replay.
    std::vector<io::TimedUpdate> replay;
    replay.reserve(ops.size());
    for (const GraphUpdate& u : ops)
      replay.push_back(io::TimedUpdate{u, 0});
    DynamicGraph fresh = DynamicGraph::from_edges(
        stream.num_vertices, io::replay_final_edges(replay));
    const Decomposition expect = bz_decompose(fresh);
    if (fresh.num_edges() != g.num_edges() ||
        !cores_match(snap->materialize(), expect.core)) {
      std::fprintf(stderr, "FAILED: served cores diverge from bz_decompose "
                           "of the replayed final graph\n");
      return 1;
    }
    std::printf("verified: served cores match bz_decompose of the final "
                "graph (%zu edges)\n",
                fresh.num_edges());
  }
  return 0;
}

// ---------------------------------------------------------------- recover

constexpr const char* kRecoverUsage =
    R"(usage: parcore_cli recover --dir DIR [options]

Crash recovery (docs/DURABILITY.md): loads the newest valid checkpoint
from a `serve --checkpoint-dir` directory, replays the WAL tail through
the normal maintain path, and differentially verifies the recovered
core numbers against a fresh decomposition of the replayed graph.

  --dir DIR      checkpoint + WAL directory written by serve
  --workers W    maintainer workers for the WAL replay, also used by the
                 parallel verify oracles (default 4)
  --verify MODE  verify oracle: parallel (exact peel, default), bz
                 (sequential), approx (capped h-index upper-bound
                 screen), or off. PARCORE_DECOMPOSE_MODE sets the
                 default; --no-verify is shorthand for --verify off
  --no-verify    skip the cross-check entirely

Exits 0 when recovery succeeds (and, unless the verify is off, the
recovered cores match the oracle); 1 on unrecoverable corruption or a
failed verification.
)";

int cmd_recover(const Args& args) {
  const std::string dir = args.get("dir");
  if (dir.empty()) return usage_error(kRecoverUsage, "--dir is required");

  durability::RecoveryOptions ropts;
  ropts.dir = dir;
  ropts.workers = static_cast<int>(args.get_positive("workers", 4));
  ropts.verify = !args.has("no-verify");
  const std::string verify_mode =
      args.get("verify", env_str("PARCORE_DECOMPOSE_MODE", "parallel"));
  if (verify_mode == "off")
    ropts.verify = false;
  else if (verify_mode == "bz")
    ropts.verify_algo = durability::VerifyAlgo::kBz;
  else if (verify_mode == "parallel")
    ropts.verify_algo = durability::VerifyAlgo::kParallel;
  else if (verify_mode == "approx")
    ropts.verify_algo = durability::VerifyAlgo::kApprox;
  else
    return usage_error(kRecoverUsage,
                       "unknown --verify mode '" + verify_mode + "'");

  WallTimer timer;
  DynamicGraph g;
  ThreadTeam team(std::max(ropts.workers, 1));
  durability::RecoveryResult res;
  auto maintainer = durability::recover(ropts, g, team, &res);
  const double ms = timer.elapsed_ms();

  std::printf(
      "recovered %s in %.1f ms\n"
      "  checkpoint epoch %llu (%zu damaged generation%s skipped), "
      "replayed %zu WAL frame%s (%zu ops)%s\n"
      "  state: n=%zu m=%zu, max core %d, final epoch %llu\n",
      dir.c_str(), ms, static_cast<unsigned long long>(res.checkpoint_epoch),
      res.checkpoints_skipped, res.checkpoints_skipped == 1 ? "" : "s",
      res.frames_replayed, res.frames_replayed == 1 ? "" : "s",
      res.edges_replayed,
      res.torn_tail ? ", torn tail discarded" : "",
      res.num_vertices, res.num_edges, res.max_core,
      static_cast<unsigned long long>(res.final_epoch));
  if (res.verified)
    std::printf("verified: recovered cores match a fresh %s decomposition "
                "of the replayed graph%s (%.1f ms)\n",
                res.verify_algo,
                res.verify_exact ? "" : " (upper-bound screen only)",
                res.verify_ms);
  else
    std::printf("verification skipped (--verify off)\n");
  return 0;
}

// ------------------------------------------------------------------ bench

constexpr const char* kBenchUsage =
    R"(usage: parcore_cli bench --input FILE [options]

Engine-throughput benchmark over a file-loaded graph, emitting the same
BENCH_*.json schema as bench_engine_throughput (rows of policy x
producers x workers cells).

  --input FILE   dataset (edge list / .mtx / .pcg)
  --name NAME    output BENCH_<NAME>.json (default "engine_file")
  --ops N        total updates to stream (default 200000; FAST 20000)
  --plan         conflict-aware wave scheduling in every measured cell

Honours PARCORE_BENCH_FAST / _MAX_WORKERS / _JSON_DIR (docs/CONFIG.md).
)";

int cmd_bench(const Args& args) {
  const std::string input = args.get("input");
  if (input.empty()) return usage_error(kBenchUsage, "--input is required");
  const bench::BenchEnv env = bench::bench_env();
  const std::string name = args.get("name", "engine_file");
  const std::size_t ops_total = static_cast<std::size_t>(
      args.get_positive("ops", env.fast ? 20000 : 200000));

  WallTimer load_timer;
  io::GraphData data = io::read_graph(input);
  print_load_summary(input, data, load_timer.elapsed_ms());
  std::vector<Edge> all = io::static_edges(data);
  if (all.size() < 4) {
    std::fprintf(stderr, "parcore_cli: %s is too small to bench\n",
                 input.c_str());
    return 1;
  }
  const std::vector<Edge> base(
      all.begin(), all.begin() + static_cast<std::ptrdiff_t>(all.size() / 2));

  struct Policy {
    const char* name;
    std::size_t threshold;
    bool adaptive;
  };
  const std::vector<Policy> policies{{"fixed-2k", 2048, false},
                                     {"adaptive", 4096, true}};
  const std::vector<int> producer_counts{1, 4};
  const std::vector<int> worker_counts =
      bench::worker_sweep(std::min(env.max_workers, 8));

  ThreadTeam team(env.max_workers);
  bench::Json rows = bench::Json::array();
  Table table({"policy", "producers", "workers", "kups", "epochs",
               "p50 flush ms", "p99 flush ms"});

  for (const Policy& policy : policies) {
    for (int producers : producer_counts) {
      const std::vector<std::vector<GraphUpdate>> streams =
          bench::producer_update_streams(all, producers, ops_total);
      for (int workers : worker_counts) {
        engine::StreamingEngine::Options opts;
        opts.workers = workers;
        opts.flush_threshold = policy.threshold;
        opts.adaptive = policy.adaptive;
        opts.flush_interval_ms = 2.0;
        if (args.has("plan"))
          opts.maintainer.schedule = ScheduleMode::kPlan;
        const bench::EngineCellResult r = bench::run_engine_cell(
            data.num_vertices, base, streams, team, opts);
        table.add_row(
            {policy.name, std::to_string(producers), std::to_string(workers),
             fmt(r.updates_per_sec / 1000.0, 1),
             std::to_string(r.stats.epochs),
             fmt(static_cast<double>(r.stats.flush_us.percentile(0.5)) / 1000.0,
                 2),
             fmt(static_cast<double>(r.stats.flush_us.percentile(0.99)) /
                     1000.0,
                 2)});
        rows.push(bench::engine_cell_json(policy.name, producers, workers, r));
      }
    }
  }
  table.print();

  bench::Json payload = bench::Json::object()
                            .set("bench", "engine_throughput")
                            .set("graph", input)
                            .set("n", std::uint64_t{data.num_vertices})
                            .set("base_edges", std::uint64_t{base.size()})
                            .set("ops_total", std::uint64_t{ops_total})
                            .set("scale", 1.0)
                            .set("plan", args.has("plan"))
                            .set("rows", rows);
  if (bench::write_bench_json(name, payload).empty()) return 1;
  return 0;
}

}  // namespace

int cli_main(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return cli_main(args);
}

int cli_main(const std::vector<std::string>& args) {
  struct Command {
    const char* name;
    const char* usage;
    std::set<std::string> options;
    std::set<std::string> flags;
    int (*run)(const Args&);
  };
  static const std::vector<Command> commands{
      {"decompose", kDecomposeUsage,
       {"input", "algo", "workers", "max-rounds", "top"}, {"histogram"},
       cmd_decompose},
      {"convert", kConvertUsage, {"input", "output"}, {}, cmd_convert},
      {"maintain", kMaintainUsage,
       {"input", "algo", "window", "batch", "workers", "steps"},
       {"verify", "plan"}, cmd_maintain},
      {"serve", kServeUsage,
       {"input", "producers", "readers", "workers", "repeat", "metrics-port",
        "trace-out", "checkpoint-dir", "checkpoint-interval", "reverify",
        "ingest-cap", "overload"},
       {"no-verify", "plan"}, cmd_serve},
      {"recover", kRecoverUsage, {"dir", "workers", "verify"}, {"no-verify"},
       cmd_recover},
      {"bench", kBenchUsage, {"input", "name", "ops"}, {"plan"}, cmd_bench},
      {"stats", kStatsUsage, {"input", "live"}, {}, cmd_stats},
  };

  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    std::fputs(kGlobalUsage, args.empty() ? stderr : stdout);
    return args.empty() ? 2 : 0;
  }
  if (args[0] == "help") {
    // Strict like every subcommand: `help` alone prints the global
    // text, `help <command>` that command's usage; anything else is a
    // usage error (exit 2), never silently ignored.
    if (args.size() == 1) {
      std::fputs(kGlobalUsage, stdout);
      return 0;
    }
    if (args.size() == 2) {
      for (const Command& c : commands) {
        if (args[1] == c.name) {
          std::fputs(c.usage, stdout);
          return 0;
        }
      }
      return usage_error(kGlobalUsage, "unknown command '" + args[1] + "'");
    }
    return usage_error(kGlobalUsage, "help takes at most one command name");
  }
  const std::string& cmd = args[0];

  for (const Command& c : commands) {
    if (cmd != c.name) continue;
    Args parsed(args, 1, c.options, c.flags);
    if (parsed.help()) {
      std::fputs(c.usage, stdout);
      return 0;
    }
    if (!parsed.error().empty()) return usage_error(c.usage, parsed.error());
    try {
      return c.run(parsed);
    } catch (const UsageError& e) {
      return usage_error(c.usage, e.what());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "parcore_cli: %s\n", e.what());
      return 1;
    }
  }
  return usage_error(kGlobalUsage, "unknown command '" + cmd + "'");
}

}  // namespace parcore::cli
