// Thin entry point for parcore_cli; all commands live in tools/cli.cpp.
#include "cli.h"

int main(int argc, char** argv) { return parcore::cli::cli_main(argc, argv); }
