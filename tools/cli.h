// parcore_cli — the unified dataset driver (DESIGN.md §7). One binary
// replaces the per-bench ad-hoc setup code with subcommands over the
// src/io readers:
//
//   decompose   static core decomposition of a dataset (BZ or ParK)
//   maintain    sliding-window batch maintenance (parallel/seq/JE/...)
//   serve       drive the StreamingEngine from a temporal update file
//   bench       engine-throughput benchmark emitting BENCH_*.json
//   convert     transcode datasets (e.g. edge list -> .pcg cache)
//
// The implementation lives in a library (cli.cpp) so tests can smoke
// the full CLI surface in-process; tools/parcore_cli.cpp is the thin
// main(). Exit codes: 0 ok, 1 runtime/verification failure, 2 usage.
#pragma once

#include <string>
#include <vector>

namespace parcore::cli {

int cli_main(int argc, const char* const* argv);

/// Convenience overload for tests: args exclude the program name.
int cli_main(const std::vector<std::string>& args);

}  // namespace parcore::cli
