#!/usr/bin/env python3
"""Schema validation for the BENCH_*.json trajectory files.

Usage: validate_bench_json.py FILE...

Each file must parse as JSON, carry the shared envelope (bench name and
a non-empty rows array), and every row must provide the per-bench
required numeric fields. CI runs this over the perf-smoke outputs so a
schema drift (renamed field, truncated write, NaN) fails the build
instead of silently corrupting the perf trajectory.
"""

import json
import math
import sys

# bench name -> fields every row must carry, with JSON number values.
ROW_FIELDS = {
    "engine_throughput": [
        "policy", "producers", "workers", "seconds", "updates_per_sec",
        "epochs", "p50_flush_ms", "p99_flush_ms", "applied_inserts",
        "applied_removes", "plan_batches", "plan_waves", "plan_steals",
        # Per-phase pipeline decomposition (us, summed over the cell's
        # flushes; EngineStats::PhaseTotals).
        "drain_us", "coalesce_us", "plan_us", "apply_us", "om_compact_us",
        "publish_us", "worker_busy_us", "worker_idle_us",
    ],
    "scheduler": [
        "workload", "mode", "workers", "insert_ms", "remove_ms", "cycle_ms",
        "plan_buckets", "plan_waves", "plan_overflow_edges", "plan_steals",
    ],
    "storage": [],  # storage rows are heterogeneous; envelope-only check
    "query_serving": [
        "mode", "batch", "epochs", "publish_us_mean", "publish_us_p50",
        "publish_us_p99", "pages_cloned", "read_mqps",
    ],
    "bulk_decompose": [
        "workload", "algo", "workers", "decompose_ms", "max_core", "rounds",
    ],
    "durability": [
        "mode", "producers", "workers", "seconds", "updates_per_sec",
        "epochs", "p99_flush_ms",
        # Where the overhead lives: the wal/checkpoint slices of the
        # flush window plus the WAL's physical write totals.
        "wal_us", "checkpoint_us", "wal_frames", "wal_bytes", "wal_fsyncs",
        "checkpoints",
    ],
    "overload": [
        "mode", "cap", "producers", "workers", "seconds",
        "updates_per_sec", "epochs", "p99_flush_ms",
        # What each admission policy actually did to the stream.
        "shed", "block_waits", "blocked_us", "compacted",
        "overload_flushes",
    ],
}

# Optional off/on overhead cell pairs (bench_engine_throughput emits
# obs_overhead, bench_durability emits wal_overhead, bench_overload
# emits admission_overhead; the CLI's file-driven variants emit none).
# Same field triple for all.
OVERHEAD_OBJECTS = ("obs_overhead", "wal_overhead", "admission_overhead")

STRING_FIELDS = {"policy", "workload", "mode", "algo"}


def fail(path, message):
    print(f"{path}: FAILED - {message}", file=sys.stderr)
    return 1


def validate(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON ({e})")

    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        return fail(path, "missing 'bench' name")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        return fail(path, "missing or empty 'rows'")

    for name in OVERHEAD_OBJECTS:
        overhead = doc.get(name)
        if overhead is None:
            continue
        if not isinstance(overhead, dict):
            return fail(path, f"'{name}' is not an object")
        for field in ("off_updates_per_sec", "on_updates_per_sec",
                      "overhead_pct"):
            value = overhead.get(field)
            if not isinstance(value, (int, float)) or (
                    isinstance(value, float) and not math.isfinite(value)):
                return fail(path, f"{name} field '{field}' not a "
                                  f"finite number (got {value!r})")

    required = ROW_FIELDS.get(bench, [])
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            return fail(path, f"row {i} is not an object")
        for field in required:
            if field not in row:
                return fail(path, f"row {i} lacks '{field}'")
            value = row[field]
            if field in STRING_FIELDS:
                if not isinstance(value, str) or not value:
                    return fail(path, f"row {i} field '{field}' not a string")
            elif not isinstance(value, (int, float)) or (
                    isinstance(value, float) and not math.isfinite(value)):
                return fail(path, f"row {i} field '{field}' not a finite "
                                  f"number (got {value!r})")
    print(f"{path}: ok ({bench}, {len(rows)} rows)")
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    return max(validate(p) for p in argv[1:])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
