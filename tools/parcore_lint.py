#!/usr/bin/env python3
"""parcore project lint: mechanical concurrency/config rules that the
compiler cannot express but the codebase depends on.

Rules (each maps to a section of docs/STATIC_ANALYSIS.md):

  bare-lock   No bare .lock()/.unlock() calls outside src/sync/ — lock
              acquisition goes through the RAII guards (SpinGuard,
              MutexGuard) so Clang's thread-safety analysis can track
              it. .try_lock() is allowed: it is the entry point of the
              adopt-guard idiom (sync/mutex.h). Files implementing
              hand-over-hand walks over dynamically chosen locks are
              allowlisted (they carry PARCORE_NO_THREAD_SAFETY_ANALYSIS
              and their own documented discipline instead).

  alignas     Thread-sharded state structs (the project's per-thread
              Cell/Shard/Cursor/... types) must be declared
              `struct alignas(64) Name` — without the padding,
              neighbouring shards false-share a cache line and the
              whole point of sharding evaporates.

  getenv      Raw getenv() only inside src/support/env.cpp (the typed
              accessors) and src/durability/{crash,faults}.cpp (the
              injection shims, which must stay dependency-free).
              Everything else goes through env_int/env_flag/env_str/
              env_present so defaults and parsing live in one place.

  env-doc     Every "PARCORE_*" environment-variable string literal in
              the tree must be documented in docs/CONFIG.md.

Exit status: 0 clean, 1 violations (printed one per line as
path:line: [rule] message), 2 usage/internal error.

  --self-test  seeds one violation of each rule into a temp tree and
               asserts the linter flags it (and that a clean file
               passes); exits 0 iff every rule fires. CI runs this
               before the real lint so a silently broken rule cannot
               green-wash the tree.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent

# Directories scanned for C++ rules. tests/ and bench/ are out of
# scope on purpose: they exercise the raw primitives (sync_test locks
# and unlocks deliberately; the lock-ablation bench measures bare
# spinlocks) and use fake PARCORE_TEST_* env names.
CXX_DIRS = ["src", "tools"]
CXX_SUFFIXES = {".cpp", ".h", ".hpp", ".cc"}

# bare-lock: files whose documented locking discipline cannot be
# expressed as balanced RAII scopes (hand-over-hand group walks,
# per-vertex lock arrays). Each carries NO_THREAD_SAFETY_ANALYSIS on
# exactly the functions doing unbalanced lock ops — see
# docs/STATIC_ANALYSIS.md "Exemptions".
BARE_LOCK_ALLOWLIST = {
    "src/om/order_list.cpp",
    "src/parallel/parallel_order.cpp",
    "src/parallel/korder_heap.cpp",
}

# Thread-sharded struct names that must be alignas(64). Project
# convention: these names are reserved for per-thread/per-shard slots
# (obs counter cells, ingest/slab shards). Other padded types exist
# (WorkerCtx, plan Cursor) but are not counter arrays; keep the list
# tight so single-instance stats structs (durability Totals) don't
# trip it.
SHARDED_STRUCT_NAMES = ("Shard", "Cell")

# getenv: the typed accessor implementation plus the two injection
# shims (kept free of support/ dependencies so they can be linked into
# crash-test children without dragging in more of the tree).
GETENV_ALLOWLIST = {
    "src/support/env.cpp",
    "src/durability/crash.cpp",
    "src/durability/faults.cpp",
}

CONFIG_MD = "docs/CONFIG.md"

BARE_LOCK_RE = re.compile(r"(?:\.|->)\s*(?:un)?lock\s*\(\s*\)")
TRY_LOCK_RE = re.compile(r"\.\s*try_lock\s*\(")
STRUCT_RE = re.compile(
    r"\bstruct\s+(?:alignas\s*\(\s*(\d+)\s*\)\s+)?(%s)\b(?!\s*[;*&])"
    % "|".join(SHARDED_STRUCT_NAMES)
)
GETENV_RE = re.compile(r"(?:\bstd\s*::\s*|::)?\bgetenv\s*\(")
ENV_VAR_RE = re.compile(r'"(PARCORE_[A-Z0-9_]+)"')


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string/char literals except
    PARCORE_* env literals, preserving line structure for line numbers."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(text[i:j])  # keep literals: env-doc rule reads them
            i = j
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(" " * (j - i))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def cxx_files(root: pathlib.Path):
    for d in CXX_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in CXX_SUFFIXES and p.is_file():
                yield p


def lint(root: pathlib.Path) -> list[str]:
    errors: list[str] = []
    documented: set[str] = set()
    config_md = root / CONFIG_MD
    if config_md.is_file():
        documented = set(
            re.findall(r"PARCORE_[A-Z0-9_]+", config_md.read_text())
        )

    for path in cxx_files(root):
        rel = path.relative_to(root).as_posix()
        text = strip_comments(path.read_text(errors="replace"))
        lines = text.splitlines()

        # bare-lock ------------------------------------------------------
        if not rel.startswith("src/sync/") and rel not in BARE_LOCK_ALLOWLIST:
            for ln, line in enumerate(lines, 1):
                if BARE_LOCK_RE.search(line):
                    errors.append(
                        f"{rel}:{ln}: [bare-lock] bare .lock()/.unlock() — "
                        "use SpinGuard/MutexGuard (or try_lock + adopt "
                        "guard); see docs/STATIC_ANALYSIS.md"
                    )

        # alignas --------------------------------------------------------
        for ln, line in enumerate(lines, 1):
            m = STRUCT_RE.search(line)
            if m and m.group(1) != "64":
                errors.append(
                    f"{rel}:{ln}: [alignas] thread-sharded struct "
                    f"'{m.group(2)}' must be declared 'struct alignas(64) "
                    f"{m.group(2)}' (false-sharing padding)"
                )

        # getenv ---------------------------------------------------------
        if rel not in GETENV_ALLOWLIST:
            for ln, line in enumerate(lines, 1):
                if GETENV_RE.search(line):
                    errors.append(
                        f"{rel}:{ln}: [getenv] raw getenv() — use the "
                        "support/env.h accessors (env_int/env_flag/"
                        "env_str/env_present)"
                    )

        # env-doc --------------------------------------------------------
        for ln, line in enumerate(lines, 1):
            for var in ENV_VAR_RE.findall(line):
                if var not in documented:
                    errors.append(
                        f"{rel}:{ln}: [env-doc] env var '{var}' is not "
                        f"documented in {CONFIG_MD}"
                    )

    return errors


# --------------------------------------------------------------- self-test

SEEDED = {
    "bare-lock": "void f(parcore::Spinlock& s) { s.lock(); s.unlock(); }\n",
    "alignas": "struct Shard { int x; };\n",
    "getenv": '#include <cstdlib>\nconst char* v = std::getenv("HOME");\n',
    "env-doc": 'const char* k = "PARCORE_TOTALLY_UNDOCUMENTED_VAR";\n',
}

CLEAN = (
    "struct alignas(64) Shard { int x; };\n"
    "void g(parcore::Spinlock& s) {\n"
    "  parcore::SpinGuard guard(s);\n"
    "  if (s.try_lock()) { }\n"  # try_lock is sanctioned (adopt idiom)
    "}\n"
    "// s.lock();  (commented code must not trip the rule)\n"
    'const char* k = "PARCORE_SELFTEST_DOCUMENTED";\n'
)


def self_test() -> int:
    failures = []
    with tempfile.TemporaryDirectory(prefix="parcore_lint_") as tmp:
        root = pathlib.Path(tmp)
        (root / "docs").mkdir()
        (root / "docs" / "CONFIG.md").write_text("`PARCORE_SELFTEST_DOCUMENTED`\n")
        srcdir = root / "src" / "seeded"
        srcdir.mkdir(parents=True)

        # Each seeded violation must be flagged with the right rule tag.
        for rule, code in SEEDED.items():
            f = srcdir / f"{rule.replace('-', '_')}.cpp"
            f.write_text(code)
            errs = lint(root)
            if not any(f"[{rule}]" in e for e in errs):
                failures.append(f"rule '{rule}' did NOT fire on seeded violation")
            f.unlink()

        # A clean file must pass every rule.
        clean = srcdir / "clean.cpp"
        clean.write_text(CLEAN)
        errs = lint(root)
        if errs:
            failures.append("clean file flagged: " + "; ".join(errs))

    if failures:
        print("parcore_lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("parcore_lint self-test: all rules fire, clean tree passes")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=pathlib.Path, default=REPO,
                    help="repository root to lint (default: repo)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify each rule fires on a seeded violation")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    errors = lint(args.root)
    for e in errors:
        print(e)
    if errors:
        print(f"parcore_lint: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("parcore_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
