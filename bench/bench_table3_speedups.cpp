// Table 3: speedups. Columns 2-5: each algorithm's 16-worker speedup
// over its own 1-worker run. Columns 6-9: Our vs JE at 1 worker and at
// 16 workers. Paper headline: OurI up to 289x over JEI at 16 workers
// (on BA); OurR up to ~10x over JER.
#include <cstdio>

#include "harness.h"

using namespace parcore;
using namespace parcore::bench;

int main() {
  const BenchEnv env = bench_env();
  ThreadTeam team(env.max_workers);
  const int hi = env.max_workers;

  std::printf("== Table 3: speedups (1 worker vs %d workers) ==\n", hi);
  std::printf("(scale %.2f, batch ~%zu, reps %d)\n\n", env.scale, env.batch,
              env.reps);

  Table table({"graph", "OurI 1v16", "OurR 1v16", "JEI 1v16", "JER 1v16",
               "OurI/JEI @1", "OurR/JER @1", "OurI/JEI @16",
               "OurR/JER @16"});

  double best_insert_ratio = 0.0, best_remove_ratio = 0.0;
  // Sweeps the Table-2 stand-ins, or PARCORE_BENCH_INPUT when set.
  for (const PreparedWorkload& w :
       suite_or_file_workloads(table2_suite(), env)) {
    AlgoTimes ours1 = time_parallel_order(w, team, 1, env.reps);
    AlgoTimes oursN = time_parallel_order(w, team, hi, env.reps);
    AlgoTimes je1 = time_je(w, team, 1, env.reps);
    AlgoTimes jeN = time_je(w, team, hi, env.reps);

    auto ratio = [](double a, double b) { return b > 0 ? a / b : 0.0; };
    const double our_i_self = ratio(ours1.insert_ms.mean, oursN.insert_ms.mean);
    const double our_r_self = ratio(ours1.remove_ms.mean, oursN.remove_ms.mean);
    const double je_i_self = ratio(je1.insert_ms.mean, jeN.insert_ms.mean);
    const double je_r_self = ratio(je1.remove_ms.mean, jeN.remove_ms.mean);
    const double i_vs_1 = ratio(je1.insert_ms.mean, ours1.insert_ms.mean);
    const double r_vs_1 = ratio(je1.remove_ms.mean, ours1.remove_ms.mean);
    const double i_vs_n = ratio(jeN.insert_ms.mean, oursN.insert_ms.mean);
    const double r_vs_n = ratio(jeN.remove_ms.mean, oursN.remove_ms.mean);
    best_insert_ratio = std::max(best_insert_ratio, i_vs_n);
    best_remove_ratio = std::max(best_remove_ratio, r_vs_n);

    table.add_row({w.spec.name, fmt(our_i_self), fmt(our_r_self),
                   fmt(je_i_self), fmt(je_r_self), fmt(i_vs_1), fmt(r_vs_1),
                   fmt(i_vs_n), fmt(r_vs_n)});
    std::fflush(stdout);
  }
  table.print();
  std::printf(
      "\nBest OurI/JEI speedup at %d workers: %.1fx (paper: up to 289x on "
      "BA)\nBest OurR/JER speedup at %d workers: %.1fx (paper: up to "
      "10.6x)\n",
      hi, best_insert_ratio, hi, best_remove_ratio);
  return 0;
}
