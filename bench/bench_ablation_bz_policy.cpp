// Ablation: initialisation/decomposition choices — the classic O(m+n)
// array BZ vs the heap variant under the three tie policies of §3.3.1
// ("small degree first" is the paper's pick), and ParK parallel
// decomposition across worker counts.
#include <cstdio>

#include "decomp/bz.h"
#include "decomp/park.h"
#include "harness.h"

using namespace parcore;
using namespace parcore::bench;

int main() {
  const BenchEnv env = bench_env();
  ThreadTeam team(env.max_workers);

  std::printf("== Ablation: static decomposition (init path) ==\n");
  std::printf("(scale %.2f; times in ms)\n\n", env.scale);

  Table table({"graph", "BZ array", "heap small", "heap large",
               "heap random", "ParK w=1", "ParK w=4",
               "ParK w=" + std::to_string(env.max_workers)});
  for (const SuiteSpec& spec : scalability_suite()) {
    SuiteGraph sg = build_suite_graph(spec, env.scale);
    DynamicGraph g = to_graph(sg);

    WallTimer t;
    auto d = bz_decompose(g);
    const double bz_ms = t.elapsed_ms();

    auto time_policy = [&](PeelTie policy) {
      WallTimer tp;
      auto dp = bz_decompose_with_policy(g, policy);
      const double ms = tp.elapsed_ms();
      if (dp.core != d.core) std::printf("POLICY MISMATCH on %s!\n",
                                         spec.name.c_str());
      return ms;
    };
    const double small_ms = time_policy(PeelTie::kSmallDegreeFirst);
    const double large_ms = time_policy(PeelTie::kLargeDegreeFirst);
    const double random_ms = time_policy(PeelTie::kRandom);

    auto time_park = [&](int workers) {
      WallTimer tp;
      auto cores = park_decompose(g, team, workers);
      const double ms = tp.elapsed_ms();
      if (cores != d.core)
        std::printf("PARK MISMATCH on %s!\n", spec.name.c_str());
      return ms;
    };
    const double park1 = time_park(1);
    const double park4 = time_park(4);
    const double parkN = time_park(env.max_workers);

    table.add_row({spec.name, fmt(bz_ms), fmt(small_ms), fmt(large_ms),
                   fmt(random_ms), fmt(park1), fmt(park4), fmt(parkN)});
    std::fflush(stdout);
  }
  table.print();
  std::printf(
      "\nAll variants must produce identical core numbers; only the\n"
      "k-order instance differs. The array BZ is the default init.\n");
  return 0;
}
