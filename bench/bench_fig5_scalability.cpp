// Figure 5: running-time ratio at 16 workers as the batch grows from
// 1x to 10x of the base size, over the four scalability graphs. A flat
// ratio near the batch multiplier = linear scaling in batch size; the
// paper reports OurI/OurR slightly super-linear ratios vs JE's
// amortised preprocessing.
#include <cstdio>

#include "harness.h"

using namespace parcore;
using namespace parcore::bench;

int main() {
  const BenchEnv env = bench_env();
  ThreadTeam team(env.max_workers);
  const int workers = env.max_workers;
  const std::vector<std::size_t> multipliers{1, 2, 4, 7, 10};

  std::printf("== Figure 5: time ratio vs batch size (16 workers) ==\n");
  std::printf("(scale %.2f, base batch ~%zu; ratio is time(k x)/time(1x))\n\n",
              env.scale, env.batch);

  for (const SuiteSpec& spec : scalability_suite()) {
    std::vector<std::string> headers{"algorithm"};
    for (std::size_t m : multipliers)
      headers.push_back(std::to_string(m) + "x");
    Table table(headers);
    std::vector<std::string> oi{"OurI"}, orr{"OurR"}, ji{"JEI"}, jr{"JER"};

    double oi1 = 0, or1 = 0, ji1 = 0, jr1 = 0;
    std::size_t shown_n = 0;
    for (std::size_t m : multipliers) {
      PreparedWorkload w =
          prepare_workload(spec, env.scale, env.batch * m);
      shown_n = w.n;
      AlgoTimes ours = time_parallel_order(w, team, workers, env.reps);
      AlgoTimes je = time_je(w, team, workers, env.reps);
      if (m == 1) {
        oi1 = ours.insert_ms.mean;
        or1 = ours.remove_ms.mean;
        ji1 = je.insert_ms.mean;
        jr1 = je.remove_ms.mean;
      }
      auto ratio = [](double t, double base) {
        return base > 0 ? t / base : 0.0;
      };
      oi.push_back(fmt(ratio(ours.insert_ms.mean, oi1), 2));
      orr.push_back(fmt(ratio(ours.remove_ms.mean, or1), 2));
      ji.push_back(fmt(ratio(je.insert_ms.mean, ji1), 2));
      jr.push_back(fmt(ratio(je.remove_ms.mean, jr1), 2));
    }
    std::printf("-- %s (n=%zu) --\n", spec.name.c_str(), shown_n);
    table.add_row(oi);
    table.add_row(orr);
    table.add_row(ji);
    table.add_row(jr);
    table.print();
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
