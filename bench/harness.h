// Shared benchmark harness: environment knobs, workload preparation
// (the paper's remove-then-reinsert protocol), algorithm timers and a
// fixed-width table printer.
//
// Environment variables (full table: docs/CONFIG.md):
//   PARCORE_BENCH_SCALE    graph scale factor (default 0.2; paper ~1.0
//                          would be the full stand-in sizes)
//   PARCORE_BENCH_BATCH    base batch size (default 5000)
//   PARCORE_BENCH_REPS     repetitions per measurement (default 1;
//                          paper uses 50)
//   PARCORE_BENCH_MAX_WORKERS  top of the worker sweep (default 16)
//   PARCORE_BENCH_FAST     set to 1 for a quick smoke run
//   PARCORE_BENCH_JSON_DIR directory for machine-readable BENCH_*.json
//                          result files (default: current directory)
//   PARCORE_BENCH_INPUT    dataset file (any src/io format); benches
//                          that honour it measure this graph instead of
//                          the synthetic suite
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "baseline/je.h"
#include "engine/engine.h"
#include "gen/suite.h"
#include "graph/dynamic_graph.h"
#include "parallel/parallel_order.h"
#include "support/timer.h"
#include "sync/thread_team.h"

namespace parcore::bench {

struct BenchEnv {
  double scale = 0.2;
  std::size_t batch = 5000;
  int reps = 1;
  int max_workers = 16;
  bool fast = false;
  std::string input;  // PARCORE_BENCH_INPUT dataset path ("" = synthetic)
};

BenchEnv bench_env();

/// Worker sweep 1,2,4,...,max (paper Fig. 4 uses 1..64; we default 16).
std::vector<int> worker_sweep(int max_workers);

/// A suite graph prepared for the evaluation protocol: `base` is the
/// graph with the batch removed; inserting `batch` then removing it
/// returns to `base` (so repetitions and algorithms see identical work).
struct PreparedWorkload {
  SuiteSpec spec;
  std::size_t n = 0;
  std::vector<Edge> base_edges;
  std::vector<Edge> batch;
};

PreparedWorkload prepare_workload(const SuiteSpec& spec, double scale,
                                  std::size_t batch_size);

/// Same protocol over a real dataset loaded through the io/ reader
/// (SNAP / MatrixMarket / .pcg, optionally gzipped): temporal files use
/// the paper's contiguous-time-range batch, static ones the uniform
/// sample. The stand-in SuiteSpec carries the file's own statistics.
PreparedWorkload prepare_workload_from_file(const std::string& path,
                                            std::size_t batch_size);

/// What a suite-sweeping bench should measure: one workload per spec,
/// or just the PARCORE_BENCH_INPUT dataset when the env names one.
std::vector<PreparedWorkload> suite_or_file_workloads(
    const std::vector<SuiteSpec>& specs, const BenchEnv& env);

DynamicGraph base_graph(const PreparedWorkload& w);

struct AlgoTimes {
  RunStats insert_ms;
  RunStats remove_ms;
};

/// Times OurI/OurR on the prepared workload.
AlgoTimes time_parallel_order(const PreparedWorkload& w, ThreadTeam& team,
                              int workers, int reps);

/// Times JEI/JER on the prepared workload.
AlgoTimes time_je(const PreparedWorkload& w, ThreadTeam& team, int workers,
                  int reps);

/// One streaming-engine measurement cell, shared by
/// bench_engine_throughput and `parcore_cli bench`: builds a fresh
/// engine over `base`, replays the per-producer streams concurrently
/// (stop() drains the tail inside the measured window), and reports
/// end-to-end throughput plus the engine's own stats.
struct EngineCellResult {
  double seconds = 0.0;
  double updates_per_sec = 0.0;
  engine::EngineStats stats;
};

EngineCellResult run_engine_cell(
    std::size_t n, const std::vector<Edge>& base,
    const std::vector<std::vector<GraphUpdate>>& streams, ThreadTeam& team,
    const engine::StreamingEngine::Options& opts);

/// The engine benches' producer workload (also shared with
/// `parcore_cli bench`): producer p draws ops_total/producers updates
/// from its own contiguous slice of the edge pool — disjoint universes
/// keep the end state deterministic — with a fixed seed and
/// hot/remove-fraction mix, so every surface measures identical work.
std::vector<std::vector<GraphUpdate>> producer_update_streams(
    const std::vector<Edge>& pool, int producers, std::size_t ops_total);

/// Minimal JSON value/emitter for the BENCH_* trajectory files. Only
/// what the benches need: objects (insertion-ordered), arrays, numbers,
/// strings, bools. Integral numbers print without a decimal point so
/// counters stay exact.
class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(double v) : kind_(Kind::kDouble), num_(v) {}
  // Counters are stored signed so negative ints (deltas, error codes)
  // round-trip; bench counters never approach INT64_MAX.
  Json(std::uint64_t v) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}
  Json(std::string v) : kind_(Kind::kString), str_(std::move(v)) {}
  Json(const char* v) : Json(std::string(v)) {}

  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }

  /// Sets a key on an object (keeps first-set order); returns *this.
  Json& set(const std::string& key, Json value);
  /// Appends to an array; returns *this.
  Json& push(Json value);

  std::string dump(int indent = 0) const;

 private:
  enum class Kind { kNull, kDouble, kInt, kBool, kString, kObject, kArray };
  explicit Json(Kind k) : kind_(k) {}
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool bool_ = false;
  std::string str_;
  std::vector<std::pair<std::string, Json>> members_;  // object
  std::vector<Json> items_;                            // array
};

/// Writes `payload` to "<PARCORE_BENCH_JSON_DIR>/BENCH_<name>.json"
/// (pretty-printed) and prints the path. Returns the path written.
std::string write_bench_json(const std::string& name, const Json& payload);

/// The BENCH_engine.json row for one engine cell — one schema shared by
/// bench_engine_throughput and `parcore_cli bench`.
Json engine_cell_json(const std::string& policy, int producers, int workers,
                      const EngineCellResult& r);

/// Minimal fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os = std::cout) const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double value, int precision = 1);

}  // namespace parcore::bench
