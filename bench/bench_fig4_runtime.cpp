// Figure 4: running time of OurI / OurR / JEI / JER by worker count,
// per graph (the Table-2 stand-ins, or the PARCORE_BENCH_INPUT dataset
// when set). The paper's headline: order-based parallel maintenance
// beats the join-edge-set Traversal baseline everywhere, most
// dramatically where core values are uniform (BA, ER, roadNet).
#include <cstdio>

#include "harness.h"

using namespace parcore;
using namespace parcore::bench;

int main() {
  const BenchEnv env = bench_env();
  ThreadTeam team(env.max_workers);
  const std::vector<int> sweep = worker_sweep(env.max_workers);

  std::printf("== Figure 4: running time (ms) vs workers ==\n");
  std::printf("(scale %.2f, batch ~%zu, reps %d)\n\n", env.scale, env.batch,
              env.reps);

  for (const PreparedWorkload& w :
       suite_or_file_workloads(table2_suite(), env)) {
    std::printf("-- %s (n=%zu, batch=%zu) --\n", w.spec.name.c_str(), w.n,
                w.batch.size());
    std::vector<std::string> headers{"algorithm"};
    for (int workers : sweep)
      headers.push_back("w=" + std::to_string(workers));
    Table table(headers);

    std::vector<std::string> oi{"OurI"}, orr{"OurR"}, ji{"JEI"}, jr{"JER"};
    for (int workers : sweep) {
      AlgoTimes ours = time_parallel_order(w, team, workers, env.reps);
      AlgoTimes je = time_je(w, team, workers, env.reps);
      oi.push_back(fmt(ours.insert_ms.mean));
      orr.push_back(fmt(ours.remove_ms.mean));
      ji.push_back(fmt(je.insert_ms.mean));
      jr.push_back(fmt(je.remove_ms.mean));
    }
    table.add_row(oi);
    table.add_row(orr);
    table.add_row(ji);
    table.add_row(jr);
    table.print();
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "Paper shape: OurI/OurR below JEI/JER and scaling with workers;\n"
      "JEI/JER flat (no speedup) on uniform-core graphs (BA, ER, road).\n");
  return 0;
}
