// Micro benchmarks (google-benchmark) for the remaining substrates:
// decomposition, graph mutation, vertex sets and the k-order heap.
#include <benchmark/benchmark.h>

#include "decomp/bz.h"
#include "decomp/park.h"
#include "decomp/verify.h"
#include "gen/generators.h"
#include "maint/core_state.h"
#include "parallel/korder_heap.h"
#include "support/vertex_set.h"
#include "sync/thread_team.h"

namespace {

using namespace parcore;

const DynamicGraph& bench_graph() {
  static DynamicGraph g = [] {
    Rng rng(42);
    return DynamicGraph::from_edges(1 << 15,
                                    gen_rmat(15, 200000, RmatParams{}, rng));
  }();
  return g;
}

void BM_BzDecompose(benchmark::State& state) {
  const DynamicGraph& g = bench_graph();
  for (auto _ : state) benchmark::DoNotOptimize(bz_decompose(g).max_core);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_BzDecompose);

void BM_BzHeapPolicy(benchmark::State& state) {
  const DynamicGraph& g = bench_graph();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        bz_decompose_with_policy(g, PeelTie::kSmallDegreeFirst).max_core);
}
BENCHMARK(BM_BzHeapPolicy);

void BM_ParkDecompose(benchmark::State& state) {
  const DynamicGraph& g = bench_graph();
  static ThreadTeam team(16);
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(park_decompose(g, team, workers).size());
}
BENCHMARK(BM_ParkDecompose)->Arg(1)->Arg(4)->Arg(16);

void BM_GraphInsertRemove(benchmark::State& state) {
  DynamicGraph g(1000);
  Rng rng(7);
  for (auto _ : state) {
    VertexId u = static_cast<VertexId>(rng.bounded(1000));
    VertexId v = static_cast<VertexId>(rng.bounded(1000));
    if (g.insert_edge(u, v)) g.remove_edge(u, v);
  }
}
BENCHMARK(BM_GraphInsertRemove);

void BM_VertexSetInsertContains(benchmark::State& state) {
  VertexSet set;
  Rng rng(11);
  for (auto _ : state) {
    VertexId v = static_cast<VertexId>(rng.bounded(256));
    set.insert(v);
    benchmark::DoNotOptimize(set.contains(v ^ 1));
    if (set.size() > 128) set.clear();
  }
}
BENCHMARK(BM_VertexSetInsertContains);

void BM_KOrderHeapCycle(benchmark::State& state) {
  // Path graph: one long O_1 list; enqueue/dequeue a window of vertices.
  static DynamicGraph g = [] {
    std::vector<Edge> edges;
    for (VertexId v = 0; v + 1 < 10000; ++v)
      edges.push_back(Edge{v, static_cast<VertexId>(v + 1)});
    return DynamicGraph::from_edges(10000, edges);
  }();
  static CoreState& cs = []() -> CoreState& {
    static CoreState s;
    s.initialize(g);
    return s;
  }();
  OrderList* list = cs.levels().get(1);
  KOrderHeap heap;
  Rng rng(3);
  for (auto _ : state) {
    heap.reset(list, &cs);
    for (int i = 0; i < 16; ++i)
      heap.enqueue(static_cast<VertexId>(rng.bounded(10000)));
    for (;;) {
      VertexId v = heap.dequeue(1);
      if (v == kInvalidVertex) break;
      cs.lock(v).unlock();
    }
  }
}
BENCHMARK(BM_KOrderHeapCycle);

void BM_BruteForceOracle(benchmark::State& state) {
  // Oracle cost context: why tests use it only on small graphs.
  Rng rng(5);
  DynamicGraph g =
      DynamicGraph::from_edges(2000, gen_erdos_renyi(2000, 8000, rng));
  for (auto _ : state)
    benchmark::DoNotOptimize(brute_force_cores(g).size());
}
BENCHMARK(BM_BruteForceOracle);

}  // namespace
