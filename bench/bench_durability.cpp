// Durability overhead: the engine cell from bench_engine_throughput
// measured with the checkpoint+WAL pipeline off and on
// (docs/DURABILITY.md). Three modes per worker count:
//
//   wal-off      durability disabled (the baseline)
//   wal-on       WAL + periodic checkpoints, group fsync per flush
//   wal-nofsync  same, PARCORE_WAL_FSYNC=0 semantics (format-level
//                crash consistency only)
//
// plus a `wal_overhead` cell pair — wal-off vs wal-on on one
// representative configuration, alternated best-of-3 so machine drift
// hits both sides equally — backing the <= 10% durability-overhead
// guard in CI. Emits BENCH_durability.json; rows also carry the WAL
// frame/byte/fsync totals and the wal/checkpoint slices of the flush
// window, so the trajectory shows WHERE the overhead lives, not just
// how big it is.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "harness.h"
#include "io/graph_reader.h"

using namespace parcore;
using namespace parcore::bench;

namespace {

struct Mode {
  const char* name;
  bool durable;
  bool fsync;
};

/// A fresh, empty durability directory (the engine refuses to start
/// over an existing history).
std::string fresh_wal_dir() {
  static int counter = 0;
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("parcore-bench-wal-" + std::to_string(++counter)))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

EngineCellResult run_mode_cell(
    const Mode& mode, std::size_t n, const std::vector<Edge>& base,
    const std::vector<std::vector<GraphUpdate>>& streams, ThreadTeam& team,
    engine::StreamingEngine::Options opts) {
  std::string dir;
  if (mode.durable) {
    dir = fresh_wal_dir();
    opts.durability.dir = dir;
    opts.durability.checkpoint_interval = 64;
    opts.durability.fsync = mode.fsync;
  }
  EngineCellResult r = run_engine_cell(n, base, streams, team, opts);
  if (!dir.empty()) std::filesystem::remove_all(dir);
  return r;
}

}  // namespace

int main() {
  const BenchEnv env = bench_env();
  const std::size_t ops_total = env.fast ? 50000 : 400000;

  std::string graph_name;
  std::size_t num_vertices = 0;
  std::vector<Edge> all;
  if (!env.input.empty()) {
    io::GraphData data = io::read_graph(env.input);
    graph_name = env.input;
    num_vertices = data.num_vertices;
    all = io::static_edges(data);
  } else {
    SuiteSpec spec = scalability_suite().front();
    SuiteGraph sg = build_suite_graph(spec, env.scale);
    graph_name = spec.name;
    num_vertices = sg.num_vertices;
    all = sg.edges;
    for (const auto& te : sg.temporal) all.push_back(te.e);
    canonicalize_edges(all);
  }
  std::vector<Edge> base(all.begin(),
                         all.begin() + static_cast<std::ptrdiff_t>(
                                           all.size() / 2));

  const int producers = 2;
  const std::vector<int> worker_counts =
      worker_sweep(std::min(env.max_workers, 4));
  const std::vector<Mode> modes{
      {"wal-off", false, false},
      {"wal-on", true, true},
      {"wal-nofsync", true, false},
  };

  ThreadTeam team(env.max_workers);
  const std::vector<std::vector<GraphUpdate>> streams =
      producer_update_streams(all, producers, ops_total);

  std::printf("== durability overhead: %s (n=%zu, base m=%zu, %zu ops) ==\n\n",
              graph_name.c_str(), num_vertices, base.size(), ops_total);

  Json rows = Json::array();
  Table table({"mode", "workers", "kups", "epochs", "p99 flush ms",
               "wal frames", "wal MB", "fsyncs", "ckpts"});

  for (const Mode& mode : modes) {
    for (int workers : worker_counts) {
      engine::StreamingEngine::Options opts;
      opts.workers = workers;
      opts.flush_threshold = 2048;
      opts.flush_interval_ms = 2.0;
      EngineCellResult r =
          run_mode_cell(mode, num_vertices, base, streams, team, opts);
      const auto& d = r.stats.durability;
      const double p99_ms =
          static_cast<double>(r.stats.flush_us.percentile(0.99)) / 1000.0;
      table.add_row({mode.name, std::to_string(workers),
                     fmt(r.updates_per_sec / 1000.0, 1),
                     std::to_string(r.stats.epochs), fmt(p99_ms, 2),
                     std::to_string(d.wal_frames),
                     fmt(static_cast<double>(d.wal_bytes) / 1e6, 2),
                     std::to_string(d.wal_fsyncs),
                     std::to_string(d.checkpoints)});
      rows.push(Json::object()
                    .set("mode", mode.name)
                    .set("producers", producers)
                    .set("workers", workers)
                    .set("seconds", r.seconds)
                    .set("updates_per_sec", r.updates_per_sec)
                    .set("epochs", r.stats.epochs)
                    .set("p99_flush_ms", p99_ms)
                    .set("wal_us", r.stats.phases.wal_us)
                    .set("checkpoint_us", r.stats.phases.checkpoint_us)
                    .set("wal_frames", d.wal_frames)
                    .set("wal_bytes", d.wal_bytes)
                    .set("wal_fsyncs", d.wal_fsyncs)
                    .set("checkpoints", d.checkpoints));
    }
  }
  table.print();

  // The overhead pair CI gates on: one configuration, durability off vs
  // on (fsync included — the honest price), alternated best-of-3. The
  // pair keeps a floor on its op count even under PARCORE_BENCH_FAST:
  // the fixed initial/final checkpoint cost must amortize over the run
  // (at 50k ops it reads as ~20% "overhead"; at 400k the steady-state
  // WAL price dominates, which is what the gate is about).
  const std::size_t pair_ops = std::max<std::size_t>(ops_total, 400000);
  const std::vector<std::vector<GraphUpdate>> pair_streams =
      producer_update_streams(all, producers, pair_ops);
  double best_off = 0.0, best_on = 0.0;
  {
    engine::StreamingEngine::Options opts;
    opts.workers = std::min(env.max_workers, 4);
    opts.flush_threshold = 2048;
    opts.flush_interval_ms = 2.0;
    for (int rep = 0; rep < 3; ++rep) {
      best_off = std::max(
          best_off, run_mode_cell(modes[0], num_vertices, base,
                                  pair_streams, team, opts)
                        .updates_per_sec);
      best_on = std::max(
          best_on, run_mode_cell(modes[1], num_vertices, base,
                                 pair_streams, team, opts)
                       .updates_per_sec);
    }
  }
  const double overhead_pct =
      best_off > 0.0 ? 100.0 * (best_off - best_on) / best_off : 0.0;
  std::printf("\nwal overhead: off %.1f kups, on %.1f kups (%.2f%%)\n",
              best_off / 1000.0, best_on / 1000.0, overhead_pct);

  Json payload = Json::object()
                     .set("bench", "durability")
                     .set("graph", graph_name)
                     .set("n", std::uint64_t{num_vertices})
                     .set("base_edges", std::uint64_t{base.size()})
                     .set("ops_total", std::uint64_t{ops_total})
                     .set("scale", env.scale)
                     .set("wal_overhead",
                          Json::object()
                              .set("off_updates_per_sec", best_off)
                              .set("on_updates_per_sec", best_on)
                              .set("overhead_pct", overhead_pct))
                     .set("rows", rows);
  write_bench_json("durability", payload);
  return 0;
}
