// Streaming engine throughput: sustained updates/sec as a function of
// producer count x maintainer workers x batch policy, over a skewed
// (R-MAT) suite graph — or a real dataset when PARCORE_BENCH_INPUT
// names a file (loaded through src/io; see docs/FORMATS.md). Each cell
// runs the full pipeline — concurrent submit, coalesce, batched
// maintain, snapshot publish — and reports end-to-end throughput plus
// p50/p99 flush latency.
//
// Emits BENCH_engine.json (see harness.h: PARCORE_BENCH_JSON_DIR) so
// the perf trajectory is machine-readable across PRs. The measurement
// cell and JSON row schema live in the harness (run_engine_cell /
// engine_cell_json), shared with `parcore_cli bench`.
// The payload also carries an `obs_overhead` cell pair: one
// representative configuration measured with metrics recording
// disabled then enabled (obs::set_enabled, best of 3 each,
// alternating), backing the <= 2% observability-overhead guard in CI.
#include <algorithm>
#include <cstdio>

#include "graph/edge_list.h"
#include "harness.h"
#include "io/graph_reader.h"
#include "obs/metrics.h"

using namespace parcore;
using namespace parcore::bench;

namespace {

struct Policy {
  const char* name;
  std::size_t threshold;
  bool adaptive;
};

}  // namespace

int main() {
  const BenchEnv env = bench_env();
  const std::size_t ops_total = env.fast ? 50000 : 400000;

  // Default workload: skewed power-law stand-in, the shape where
  // coalescing pays (hot edges are resubmitted and cancelled
  // constantly). PARCORE_BENCH_INPUT swaps in a real dataset.
  std::string graph_name;
  std::size_t num_vertices = 0;
  std::vector<Edge> all;
  if (!env.input.empty()) {
    io::GraphData data = io::read_graph(env.input);
    graph_name = env.input;
    num_vertices = data.num_vertices;
    all = io::static_edges(data);
  } else {
    SuiteSpec spec = scalability_suite().front();
    SuiteGraph sg = build_suite_graph(spec, env.scale);
    graph_name = spec.name;
    num_vertices = sg.num_vertices;
    all = sg.edges;
    for (const auto& te : sg.temporal) all.push_back(te.e);
    canonicalize_edges(all);
  }
  std::vector<Edge> base(all.begin(),
                         all.begin() + static_cast<std::ptrdiff_t>(
                                           all.size() / 2));

  const std::vector<int> producer_counts{1, 2, 4};
  std::vector<int> worker_counts = worker_sweep(std::min(env.max_workers, 8));
  const std::vector<Policy> policies{
      {"fixed-2k", 2048, false},
      {"fixed-16k", 16384, false},
      {"adaptive", 4096, true},
  };

  ThreadTeam team(env.max_workers);

  std::printf("== engine throughput: %s (n=%zu, base m=%zu, %zu ops) ==\n\n",
              graph_name.c_str(), num_vertices, base.size(), ops_total);

  Json rows = Json::array();
  Table table({"policy", "producers", "workers", "kups", "epochs",
               "p50 flush ms", "p99 flush ms", "coalesced"});

  for (const Policy& policy : policies) {
    for (int producers : producer_counts) {
      const std::vector<std::vector<GraphUpdate>> streams =
          producer_update_streams(all, producers, ops_total);
      for (int workers : worker_counts) {
        engine::StreamingEngine::Options opts;
        opts.workers = workers;
        opts.flush_threshold = policy.threshold;
        opts.adaptive = policy.adaptive;
        opts.flush_interval_ms = 2.0;
        EngineCellResult r =
            run_engine_cell(num_vertices, base, streams, team, opts);
        const double p50_ms =
            static_cast<double>(r.stats.flush_us.percentile(0.5)) / 1000.0;
        const double p99_ms =
            static_cast<double>(r.stats.flush_us.percentile(0.99)) / 1000.0;
        const std::uint64_t coalesced =
            2 * r.stats.coalesce.annihilated_pairs +
            r.stats.coalesce.duplicates + r.stats.coalesce.noops;
        table.add_row({policy.name, std::to_string(producers),
                       std::to_string(workers),
                       fmt(r.updates_per_sec / 1000.0, 1),
                       std::to_string(r.stats.epochs), fmt(p50_ms, 2),
                       fmt(p99_ms, 2), std::to_string(coalesced)});
        rows.push(engine_cell_json(policy.name, producers, workers, r));
      }
    }
  }
  table.print();

  // Observability overhead: same cell, recording off vs on, alternated
  // so machine drift hits both sides equally; best-of-3 damps scheduler
  // noise. The runtime gate (not a rebuild) is the comparison the CI
  // guard needs: one binary, two states.
  const bool obs_was_enabled = obs::enabled();
  double best_off = 0.0, best_on = 0.0;
  {
    const std::vector<std::vector<GraphUpdate>> streams =
        producer_update_streams(all, 2, ops_total);
    engine::StreamingEngine::Options opts;
    opts.workers = std::min(env.max_workers, 4);
    opts.flush_threshold = 2048;
    opts.flush_interval_ms = 2.0;
    for (int rep = 0; rep < 3; ++rep) {
      obs::set_enabled(false);
      best_off = std::max(
          best_off,
          run_engine_cell(num_vertices, base, streams, team, opts)
              .updates_per_sec);
      obs::set_enabled(true);
      best_on = std::max(
          best_on,
          run_engine_cell(num_vertices, base, streams, team, opts)
              .updates_per_sec);
    }
  }
  obs::set_enabled(obs_was_enabled);
  const double overhead_pct =
      best_off > 0.0 ? 100.0 * (best_off - best_on) / best_off : 0.0;
  std::printf("\nobs overhead: off %.1f kups, on %.1f kups (%.2f%%)\n",
              best_off / 1000.0, best_on / 1000.0, overhead_pct);

  Json payload = Json::object()
                     .set("bench", "engine_throughput")
                     .set("graph", graph_name)
                     .set("n", std::uint64_t{num_vertices})
                     .set("base_edges", std::uint64_t{base.size()})
                     .set("ops_total", std::uint64_t{ops_total})
                     .set("scale", env.scale)
                     .set("obs_overhead",
                          Json::object()
                              .set("off_updates_per_sec", best_off)
                              .set("on_updates_per_sec", best_on)
                              .set("overhead_pct", overhead_pct))
                     .set("rows", rows);
  write_bench_json("engine", payload);
  return 0;
}
