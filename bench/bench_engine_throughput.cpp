// Streaming engine throughput: sustained updates/sec as a function of
// producer count x maintainer workers x batch policy, over a skewed
// (R-MAT) suite graph. Each cell runs the full pipeline — concurrent
// submit, coalesce, batched maintain, snapshot publish — and reports
// end-to-end throughput plus p50/p99 flush latency.
//
// Emits BENCH_engine.json (see harness.h: PARCORE_BENCH_JSON_DIR) so
// the perf trajectory is machine-readable across PRs.
#include <cstdio>
#include <thread>

#include "engine/engine.h"
#include "graph/edge_list.h"
#include "harness.h"

using namespace parcore;
using namespace parcore::bench;

namespace {

struct Policy {
  const char* name;
  std::size_t threshold;
  bool adaptive;
};

struct CellResult {
  double seconds = 0.0;
  double updates_per_sec = 0.0;
  engine::EngineStats stats;
};

CellResult run_cell(const SuiteGraph& sg, const std::vector<Edge>& base,
                    const std::vector<std::vector<GraphUpdate>>& streams,
                    ThreadTeam& team, int workers, const Policy& policy) {
  DynamicGraph g = DynamicGraph::from_edges(sg.num_vertices, base);
  engine::StreamingEngine::Options opts;
  opts.workers = workers;
  opts.flush_threshold = policy.threshold;
  opts.adaptive = policy.adaptive;
  opts.flush_interval_ms = 2.0;
  engine::StreamingEngine eng(g, team, opts);
  eng.start();

  std::size_t total_ops = 0;
  for (const auto& s : streams) total_ops += s.size();

  WallTimer timer;
  std::vector<std::thread> producers;
  producers.reserve(streams.size());
  for (const auto& stream : streams) {
    producers.emplace_back([&eng, &stream] {
      for (const GraphUpdate& u : stream) eng.submit(u);
    });
  }
  for (auto& t : producers) t.join();
  eng.stop();  // drains the tail; included in the measured time
  const double sec = timer.elapsed_ms() / 1000.0;

  CellResult r;
  r.seconds = sec;
  r.updates_per_sec = sec > 0 ? static_cast<double>(total_ops) / sec : 0.0;
  r.stats = eng.stats();
  return r;
}

}  // namespace

int main() {
  const BenchEnv env = bench_env();
  const std::size_t ops_total = env.fast ? 50000 : 400000;

  // Skewed power-law stand-in: the workload shape where coalescing
  // pays (hot edges are resubmitted and cancelled constantly).
  SuiteSpec spec = scalability_suite().front();
  SuiteGraph sg = build_suite_graph(spec, env.scale);
  std::vector<Edge> all = sg.edges;
  if (!sg.temporal.empty())
    for (const auto& te : sg.temporal) all.push_back(te.e);
  canonicalize_edges(all);
  std::vector<Edge> base(all.begin(),
                         all.begin() + static_cast<std::ptrdiff_t>(
                                           all.size() / 2));

  const std::vector<int> producer_counts{1, 2, 4};
  std::vector<int> worker_counts = worker_sweep(std::min(env.max_workers, 8));
  const std::vector<Policy> policies{
      {"fixed-2k", 2048, false},
      {"fixed-16k", 16384, false},
      {"adaptive", 4096, true},
  };

  ThreadTeam team(env.max_workers);

  std::printf("== engine throughput: %s (n=%zu, base m=%zu, %zu ops) ==\n\n",
              spec.name.c_str(), sg.num_vertices, base.size(), ops_total);

  Json rows = Json::array();
  Table table({"policy", "producers", "workers", "kups", "epochs",
               "p50 flush ms", "p99 flush ms", "coalesced"});

  for (const Policy& policy : policies) {
    for (int producers : producer_counts) {
      // Disjoint per-producer universes (slices of the edge pool) keep
      // the end state deterministic; reuse one stream set per
      // producer-count so policies see identical work.
      std::vector<std::vector<GraphUpdate>> streams;
      const std::size_t slice =
          all.size() / static_cast<std::size_t>(producers);
      const std::size_t per =
          ops_total / static_cast<std::size_t>(producers);
      for (int p = 0; p < producers; ++p) {
        Rng rng(0xbe7c4 + static_cast<std::uint64_t>(p));
        std::span<const Edge> universe(
            all.data() + static_cast<std::size_t>(p) * slice, slice);
        streams.push_back(gen_update_stream(universe, per, 0.45, 0.6, rng));
      }
      for (int workers : worker_counts) {
        CellResult r = run_cell(sg, base, streams, team, workers, policy);
        const double p50_ms =
            static_cast<double>(r.stats.flush_us.percentile(0.5)) / 1000.0;
        const double p99_ms =
            static_cast<double>(r.stats.flush_us.percentile(0.99)) / 1000.0;
        const std::uint64_t coalesced =
            2 * r.stats.coalesce.annihilated_pairs +
            r.stats.coalesce.duplicates + r.stats.coalesce.noops;
        table.add_row({policy.name, std::to_string(producers),
                       std::to_string(workers),
                       fmt(r.updates_per_sec / 1000.0, 1),
                       std::to_string(r.stats.epochs), fmt(p50_ms, 2),
                       fmt(p99_ms, 2), std::to_string(coalesced)});
        rows.push(Json::object()
                      .set("policy", policy.name)
                      .set("producers", producers)
                      .set("workers", workers)
                      .set("ops", std::uint64_t{r.stats.submitted})
                      .set("seconds", r.seconds)
                      .set("updates_per_sec", r.updates_per_sec)
                      .set("epochs", r.stats.epochs)
                      .set("p50_flush_ms", p50_ms)
                      .set("p99_flush_ms", p99_ms)
                      .set("applied_inserts", r.stats.applied_inserts)
                      .set("applied_removes", r.stats.applied_removes)
                      .set("annihilated_pairs",
                           std::uint64_t{r.stats.coalesce.annihilated_pairs})
                      .set("duplicates",
                           std::uint64_t{r.stats.coalesce.duplicates})
                      .set("noops", std::uint64_t{r.stats.coalesce.noops}));
      }
    }
  }
  table.print();

  Json payload = Json::object()
                     .set("bench", "engine_throughput")
                     .set("graph", spec.name)
                     .set("n", std::uint64_t{sg.num_vertices})
                     .set("base_edges", std::uint64_t{base.size()})
                     .set("ops_total", std::uint64_t{ops_total})
                     .set("scale", env.scale)
                     .set("rows", rows);
  write_bench_json("engine", payload);
  return 0;
}
