// BENCH_storage: old-vs-new adjacency layout (ISSUE 3 acceptance).
//
// "old" is the seed's vector<vector<VertexId>> layout, reproduced here
// verbatim as LegacyGraph so the comparison survives the refactor that
// removed it from the library; "new" is the slab-backed DynamicGraph.
// For each workload we measure, on both layouts:
//   build_ms        bulk from_edges construction
//   insert_kups     single-edge inserts of the prepared batch
//   remove_kups     single-edge removes of the same batch
//   resident_bytes  structure-accounted bytes after the churn (vector
//                   capacities / arena reservation; excludes malloc
//                   metadata, i.e. biased toward the old layout)
//   heap_delta_bytes allocator-accounted in-use growth (mallinfo2,
//                   includes per-allocation overhead — the real cost of
//                   one heap block per vertex; 0 on non-glibc)
//
// Workloads: three generator-suite families (rmat / er / grid stand-ins
// from the scalability suite), plus PARCORE_BENCH_INPUT when set.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "gen/suite.h"
#include "graph/edge_list.h"
#include "harness.h"
#include "support/timer.h"

namespace parcore::bench {
namespace {

/// The pre-refactor layout, kept for the measurement baseline only.
class LegacyGraph {
 public:
  explicit LegacyGraph(std::size_t n) : adj_(n) {}

  LegacyGraph(LegacyGraph&& other) noexcept
      : adj_(std::move(other.adj_)), num_edges_(other.num_edges()) {
    other.num_edges_.store(0, std::memory_order_relaxed);
  }

  static LegacyGraph from_edges(std::size_t n, const std::vector<Edge>& edges) {
    LegacyGraph g(n);
    for (const Edge& e : edges) {
      if (e.u == e.v || e.u >= n || e.v >= n) continue;
      g.adj_[e.u].push_back(e.v);
      g.adj_[e.v].push_back(e.u);
    }
    std::size_t degree_sum = 0;
    for (auto& list : g.adj_) {
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
      degree_sum += list.size();
    }
    g.num_edges_.store(degree_sum / 2, std::memory_order_relaxed);
    return g;
  }

  bool has_edge(VertexId u, VertexId v) const {
    const auto& list = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
    const VertexId needle = adj_[u].size() <= adj_[v].size() ? v : u;
    return std::find(list.begin(), list.end(), needle) != list.end();
  }

  bool insert_edge(VertexId u, VertexId v) {
    if (u == v || has_edge(u, v)) return false;
    adj_[u].push_back(v);
    adj_[v].push_back(u);
    num_edges_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  bool remove_edge(VertexId u, VertexId v) {
    if (!erase_from(adj_[u], v)) return false;
    erase_from(adj_[v], u);
    num_edges_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  std::size_t num_edges() const {
    return num_edges_.load(std::memory_order_relaxed);
  }

  std::size_t resident_bytes() const {
    std::size_t bytes = adj_.capacity() * sizeof(std::vector<VertexId>);
    for (const auto& list : adj_)
      bytes += list.capacity() * sizeof(VertexId);
    return bytes;
  }

 private:
  static bool erase_from(std::vector<VertexId>& list, VertexId x) {
    auto it = std::find(list.begin(), list.end(), x);
    if (it == list.end()) return false;
    *it = list.back();
    list.pop_back();
    return true;
  }

  std::vector<std::vector<VertexId>> adj_;
  // The seed's counter was atomic (shared across maintainer workers);
  // the replica keeps it so per-op costs stay comparable.
  std::atomic<std::size_t> num_edges_{0};
};

std::size_t current_heap_bytes() {
#if defined(__GLIBC__)
  const struct mallinfo2 mi = mallinfo2();
  return static_cast<std::size_t>(mi.uordblks) +
         static_cast<std::size_t>(mi.hblkhd);
#else
  return 0;
#endif
}

struct Measurement {
  double build_ms = 0.0;
  double insert_kups = 0.0;
  double remove_kups = 0.0;
  std::size_t resident_bytes = 0;
  std::size_t heap_delta_bytes = 0;
};

template <typename Build, typename Churn, typename Resident>
Measurement measure(const PreparedWorkload& w, int reps, Build&& build,
                    Churn&& churn, Resident&& resident) {
  Measurement m;
  const std::size_t heap_before = current_heap_bytes();
  WallTimer t;
  auto g = build();
  m.build_ms = t.elapsed_ms();

  // One untimed warm-up round so both layouts measure steady state
  // (capacity in place, pages faulted in), not first-touch costs.
  churn(g);

  // Insert the batch, then remove it, `reps` times: the graph returns to
  // base each round, so every repetition measures identical work.
  double ins_ms = 0.0, rem_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto [i_ms, r_ms] = churn(g);
    ins_ms += i_ms;
    rem_ms += r_ms;
  }
  const double ops = static_cast<double>(w.batch.size()) * reps;
  m.insert_kups = ins_ms > 0 ? ops / ins_ms : 0.0;  // ops/ms == kops/s
  m.remove_kups = rem_ms > 0 ? ops / rem_ms : 0.0;
  m.resident_bytes = resident(g);
  const std::size_t heap_after = current_heap_bytes();
  m.heap_delta_bytes = heap_after > heap_before ? heap_after - heap_before : 0;
  return m;
}

Json row_json(const std::string& workload, const char* layout,
              const Measurement& m) {
  return Json::object()
      .set("workload", workload)
      .set("layout", layout)
      .set("build_ms", m.build_ms)
      .set("insert_kups", m.insert_kups)
      .set("remove_kups", m.remove_kups)
      .set("resident_bytes", std::uint64_t{m.resident_bytes})
      .set("heap_delta_bytes", std::uint64_t{m.heap_delta_bytes});
}

}  // namespace
}  // namespace parcore::bench

int main() {
  using namespace parcore;
  using namespace parcore::bench;

  const BenchEnv env = bench_env();
  // Three structural families (power-law, uniform, road) so the layout
  // comparison covers skewed, flat, and low-degree regimes.
  std::vector<SuiteSpec> specs = scalability_suite();
  if (specs.size() > 3) specs.resize(3);
  std::vector<PreparedWorkload> workloads = suite_or_file_workloads(specs, env);
  if (!env.input.empty())
    std::printf("measuring PARCORE_BENCH_INPUT dataset %s\n",
                env.input.c_str());

  const int reps = std::max(1, env.reps);
  Table table({"workload", "layout", "build ms", "ins kups", "rem kups",
               "resident MB", "heap MB", "inline %"});
  Json rows = Json::array();

  for (const PreparedWorkload& w : workloads) {
    const Measurement legacy = measure(
        w, reps,
        [&] { return LegacyGraph::from_edges(w.n, w.base_edges); },
        [&](LegacyGraph& g) {
          WallTimer t;
          for (const Edge& e : w.batch) g.insert_edge(e.u, e.v);
          const double i = t.elapsed_ms();
          t.reset();
          for (const Edge& e : w.batch) g.remove_edge(e.u, e.v);
          return std::pair<double, double>(i, t.elapsed_ms());
        },
        [](const LegacyGraph& g) { return g.resident_bytes(); });

    double inline_pct = 0.0;
    const Measurement slab = measure(
        w, reps,
        [&] { return DynamicGraph::from_edges(w.n, w.base_edges); },
        [&](DynamicGraph& g) {
          WallTimer t;
          for (const Edge& e : w.batch) g.insert_edge(e.u, e.v);
          const double i = t.elapsed_ms();
          t.reset();
          for (const Edge& e : w.batch) g.remove_edge(e.u, e.v);
          return std::pair<double, double>(i, t.elapsed_ms());
        },
        [&](const DynamicGraph& g) {
          const GraphMemoryStats m = g.memory_stats();
          inline_pct = 100.0 * m.inline_fraction();
          return m.total_bytes();
        });

    table.add_row({w.spec.name, "old", fmt(legacy.build_ms, 1),
                   fmt(legacy.insert_kups, 1), fmt(legacy.remove_kups, 1),
                   fmt(static_cast<double>(legacy.resident_bytes) / 1e6, 2),
                   fmt(static_cast<double>(legacy.heap_delta_bytes) / 1e6, 2),
                   "-"});
    table.add_row({w.spec.name, "new", fmt(slab.build_ms, 1),
                   fmt(slab.insert_kups, 1), fmt(slab.remove_kups, 1),
                   fmt(static_cast<double>(slab.resident_bytes) / 1e6, 2),
                   fmt(static_cast<double>(slab.heap_delta_bytes) / 1e6, 2),
                   fmt(inline_pct, 1)});
    rows.push(row_json(w.spec.name, "old", legacy));
    rows.push(row_json(w.spec.name, "new", slab)
                  .set("inline_fraction", inline_pct / 100.0));
  }
  table.print();

  Json payload = Json::object()
                     .set("bench", "storage")
                     .set("scale", env.scale)
                     .set("reps", reps)
                     .set("batch", std::uint64_t{env.batch})
                     .set("input", env.input.empty() ? Json("synthetic")
                                                     : Json(env.input))
                     .set("rows", rows);
  if (write_bench_json("storage", payload).empty()) return 1;
  return 0;
}
