// Figure 1: distribution of |V+| (insertion) and |V*| (removal) sizes
// over the whole graph suite. The paper reports that >97% of operations
// touch at most 10 vertices — the reason the lock-based parallelisation
// scales.
#include <cstdio>

#include "harness.h"
#include "support/histogram.h"

using namespace parcore;
using namespace parcore::bench;

int main() {
  const BenchEnv env = bench_env();
  ThreadTeam team(env.max_workers);
  const int workers = env.max_workers;

  std::printf("== Figure 1: sizes of V+ / V* per edge operation ==\n");
  std::printf("(scale %.2f, batch ~%zu edges per graph, %d workers)\n\n",
              env.scale, env.batch, workers);

  SizeHistogram all_vplus, all_vstar;
  Table table({"graph", "ops", "mean|V+|", "%<=10 (V+)", "max|V+|",
               "mean|V*|", "%<=10 (V*)", "max|V*|"});

  for (const SuiteSpec& spec : table2_suite()) {
    PreparedWorkload w = prepare_workload(spec, env.scale, env.batch);
    DynamicGraph g = base_graph(w);
    ParallelOrderMaintainer::Options opts;
    opts.collect_stats = true;
    ParallelOrderMaintainer m(g, team, opts);
    m.insert_batch(w.batch, workers);
    m.remove_batch(w.batch, workers);

    SizeHistogram vplus = m.insert_vplus_histogram();
    SizeHistogram vstar = m.remove_vstar_histogram();
    all_vplus.merge(vplus);
    all_vstar.merge(vstar);
    table.add_row({spec.name, std::to_string(vplus.total()),
                   fmt(vplus.mean(), 2),
                   fmt(100.0 * vplus.fraction_at_most(10), 1),
                   std::to_string(vplus.max_seen()), fmt(vstar.mean(), 2),
                   fmt(100.0 * vstar.fraction_at_most(10), 1),
                   std::to_string(vstar.max_seen())});
  }
  table.print();

  std::printf("\nAggregate V+ size buckets (insert):\n%s",
              all_vplus.bucket_report().c_str());
  std::printf("\nAggregate V* size buckets (remove):\n%s",
              all_vstar.bucket_report().c_str());
  std::printf(
      "\nPaper: more than 97%% of insertions and removals have sizes in "
      "[0, 10].\nMeasured: %.1f%% (V+), %.1f%% (V*).\n",
      100.0 * all_vplus.fraction_at_most(10),
      100.0 * all_vstar.fraction_at_most(10));
  return 0;
}
