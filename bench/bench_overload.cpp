// Overload admission control: the engine cell from
// bench_engine_throughput measured with a bounded ingest queue across
// the three overload policies (docs/ROBUSTNESS.md), at a cap tight
// enough that producers actually hit it:
//
//   block    producer backpressure (bounded waits on drain)
//   shed     newest-op rejection; offered vs accepted throughput split
//   degrade  per-shard last-op-wins compaction, then admit
//
// plus an `admission_overhead` cell pair — cap off vs a cap high
// enough to never fire (the pure cost of the admission check on the
// submit hot path), alternated best-of-3 so machine drift hits both
// sides equally — backing the <= 2% admission-overhead guard in CI.
// Emits BENCH_overload.json; rows carry the admission counters so the
// trajectory shows how much each policy shed/blocked/compacted, not
// just the throughput it reached.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "graph/edge_list.h"
#include "harness.h"
#include "io/graph_reader.h"

using namespace parcore;
using namespace parcore::bench;

namespace {

struct Mode {
  const char* name;
  engine::OverloadPolicy policy;
};

}  // namespace

int main() {
  const BenchEnv env = bench_env();
  const std::size_t ops_total = env.fast ? 50000 : 400000;

  std::string graph_name;
  std::size_t num_vertices = 0;
  std::vector<Edge> all;
  if (!env.input.empty()) {
    io::GraphData data = io::read_graph(env.input);
    graph_name = env.input;
    num_vertices = data.num_vertices;
    all = io::static_edges(data);
  } else {
    SuiteSpec spec = scalability_suite().front();
    SuiteGraph sg = build_suite_graph(spec, env.scale);
    graph_name = spec.name;
    num_vertices = sg.num_vertices;
    all = sg.edges;
    for (const auto& te : sg.temporal) all.push_back(te.e);
    canonicalize_edges(all);
  }
  std::vector<Edge> base(all.begin(),
                         all.begin() + static_cast<std::ptrdiff_t>(
                                           all.size() / 2));

  const int producers = 4;
  const int workers = std::min(env.max_workers, 4);
  // Tight enough that 4 producers outrun the flush pipeline and the
  // policies actually engage; the unbounded row is the reference.
  const std::vector<std::size_t> caps{1024, 4096};
  const std::vector<Mode> modes{
      {"block", engine::OverloadPolicy::kBlock},
      {"shed", engine::OverloadPolicy::kShed},
      {"degrade", engine::OverloadPolicy::kDegrade},
  };

  ThreadTeam team(std::max(env.max_workers, producers));
  const std::vector<std::vector<GraphUpdate>> streams =
      producer_update_streams(all, producers, ops_total);

  std::printf(
      "== overload admission: %s (n=%zu, base m=%zu, %zu ops) ==\n\n",
      graph_name.c_str(), num_vertices, base.size(), ops_total);

  Json rows = Json::array();
  Table table({"mode", "cap", "kups", "epochs", "p99 flush ms", "shed",
               "blocked ms", "compacted", "ovl flushes"});

  auto run_cell = [&](const char* name, engine::OverloadPolicy policy,
                      std::size_t cap) {
    engine::StreamingEngine::Options opts;
    opts.workers = workers;
    opts.flush_threshold = 2048;
    opts.flush_interval_ms = 2.0;
    opts.ingest_cap = cap;
    opts.overload = policy;
    EngineCellResult r = run_engine_cell(num_vertices, base, streams, team,
                                         opts);
    const auto& adm = r.stats.admission;
    const double p99_ms =
        static_cast<double>(r.stats.flush_us.percentile(0.99)) / 1000.0;
    table.add_row({name, std::to_string(cap),
                   fmt(r.updates_per_sec / 1000.0, 1),
                   std::to_string(r.stats.epochs), fmt(p99_ms, 2),
                   std::to_string(adm.shed),
                   fmt(static_cast<double>(adm.blocked_us) / 1000.0, 1),
                   std::to_string(adm.compacted),
                   std::to_string(r.stats.overload_flushes)});
    rows.push(Json::object()
                  .set("mode", name)
                  .set("cap", std::uint64_t{cap})
                  .set("producers", producers)
                  .set("workers", workers)
                  .set("seconds", r.seconds)
                  .set("updates_per_sec", r.updates_per_sec)
                  .set("epochs", r.stats.epochs)
                  .set("p99_flush_ms", p99_ms)
                  .set("shed", adm.shed)
                  .set("block_waits", adm.block_waits)
                  .set("blocked_us", adm.blocked_us)
                  .set("compacted", adm.compacted)
                  .set("overload_flushes", r.stats.overload_flushes));
    return r;
  };

  run_cell("unbounded", engine::OverloadPolicy::kBlock, 0);
  for (const Mode& mode : modes)
    for (std::size_t cap : caps) run_cell(mode.name, mode.policy, cap);
  table.print();

  // The overhead pair CI gates on: cap off (no admission checks at
  // all) vs a cap that never fires (1<<30 — unreachable by
  // construction, so the pair isolates the admission check's hot-path
  // price from any actual throttling).
  //
  // Estimator: one producer submits to a live engine in 1024-op
  // blocks; a cell's score is the MINIMUM ns/submit over all blocks,
  // and each side takes the minimum over 5 alternated cells. Peak
  // submit cost is the right statistic here: every block runs the same
  // instruction stream, so the fastest block is the one that dodged
  // flush drains, cross-core interference, and frequency dips —
  // exactly the non-admission noise a wall-clock mean drags in. Two
  // earlier designs measured contended multi-producer throughput
  // (whole-engine, then queue-only) and both swung +-10% run-to-run on
  // shared hardware, flaking a <=2% gate around a true cost of one
  // register compare (~0.3%).
  const std::size_t pair_ops = std::max<std::size_t>(ops_total, 2000000);
  const std::vector<GraphUpdate> pair_stream =
      producer_update_streams(all, 1, pair_ops).front();
  constexpr std::size_t kPairBlock = 1024;
  auto submit_cell_min_ns = [&](std::size_t cap) {
    DynamicGraph g = DynamicGraph::from_edges(num_vertices, base);
    engine::StreamingEngine::Options opts;
    opts.workers = workers;
    opts.flush_threshold = 2048;
    opts.flush_interval_ms = 2.0;
    opts.ingest_cap = cap;
    engine::StreamingEngine eng(g, team, opts);
    eng.start();
    double best = 1e18;
    for (std::size_t b = 0; b + kPairBlock <= pair_stream.size();
         b += kPairBlock) {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = b; i < b + kPairBlock; ++i)
        eng.submit(pair_stream[i]);
      const double dt = std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      best = std::min(best, dt);
    }
    eng.stop();
    return best / static_cast<double>(kPairBlock);
  };
  submit_cell_min_ns(0);  // warm-up: page in the stream, settle the team
  double off_ns = 1e18, on_ns = 1e18;
  for (int rep = 0; rep < 5; ++rep) {
    off_ns = std::min(off_ns, submit_cell_min_ns(0));
    on_ns = std::min(on_ns, submit_cell_min_ns(std::size_t{1} << 30));
  }
  // Reported as peak submit rates so the JSON keeps rate semantics.
  const double best_off = 1e9 / off_ns;
  const double best_on = 1e9 / on_ns;
  const double overhead_pct = 100.0 * (on_ns - off_ns) / off_ns;
  std::printf(
      "\nadmission overhead (peak submit path, 1 producer): "
      "off %.2f ns/op, on %.2f ns/op (%.2f%%)\n",
      off_ns, on_ns, overhead_pct);


  Json payload = Json::object()
                     .set("bench", "overload")
                     .set("graph", graph_name)
                     .set("n", std::uint64_t{num_vertices})
                     .set("base_edges", std::uint64_t{base.size()})
                     .set("ops_total", std::uint64_t{ops_total})
                     .set("scale", env.scale)
                     .set("admission_overhead",
                          Json::object()
                              .set("off_updates_per_sec", best_off)
                              .set("on_updates_per_sec", best_on)
                              .set("overhead_pct", overhead_pct))
                     .set("rows", rows);
  write_bench_json("overload", payload);
  return 0;
}
