// Ablation (google-benchmark): Order-Maintenance structure — group
// capacity sensitivity, the lock-free Order under churn, and snapshot
// costs that bound the priority queue's refresh path (§5).
#include <benchmark/benchmark.h>

#include <memory>
#include <thread>

#include "om/order_list.h"

namespace {

using parcore::OmItem;
using parcore::OrderList;

void BM_OmInsertTail(benchmark::State& state) {
  const auto capacity = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    OrderList list(0, capacity);
    auto items = std::make_unique<OmItem[]>(10000);
    state.ResumeTiming();
    for (std::size_t i = 0; i < 10000; ++i) list.insert_tail(&items[i]);
    benchmark::DoNotOptimize(list.size());
  }
}
BENCHMARK(BM_OmInsertTail)->Arg(8)->Arg(64)->Arg(512);

void BM_OmInsertSamePoint(benchmark::State& state) {
  // Worst case: all inserts after one anchor — maximum relabel pressure.
  const auto capacity = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    OrderList list(0, capacity);
    auto items = std::make_unique<OmItem[]>(10001);
    list.insert_tail(&items[0]);
    state.ResumeTiming();
    for (std::size_t i = 1; i <= 10000; ++i)
      list.insert_after(&items[0], &items[i]);
    benchmark::DoNotOptimize(list.relabel_count());
  }
}
BENCHMARK(BM_OmInsertSamePoint)->Arg(8)->Arg(64)->Arg(512);

void BM_OmOrderQuery(benchmark::State& state) {
  OrderList list(0);
  auto items = std::make_unique<OmItem[]>(4096);
  for (std::size_t i = 0; i < 4096; ++i) list.insert_tail(&items[i]);
  std::size_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        OrderList::precedes(&items[i % 4096], &items[(i * 7) % 4096]));
    ++i;
  }
}
BENCHMARK(BM_OmOrderQuery);

void BM_OmOrderQueryUnderChurn(benchmark::State& state) {
  // Lock-free Order readers while a writer hammers one insertion point.
  static OrderList list(0, 32);
  static auto pinned = std::make_unique<OmItem[]>(2);
  static bool init = [] {
    list.insert_tail(&pinned[0]);
    list.insert_tail(&pinned[1]);
    return true;
  }();
  (void)init;

  if (state.thread_index() == 0) {
    // writer thread: churn between the pinned items
    auto churn = std::make_unique<OmItem[]>(100000);
    std::size_t next = 0;
    for (auto _ : state) {
      if (next < 100000) list.insert_after(&pinned[0], &churn[next++]);
      benchmark::DoNotOptimize(next);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(next));
  } else {
    for (auto _ : state)
      benchmark::DoNotOptimize(OrderList::precedes(&pinned[0], &pinned[1]));
  }
}
BENCHMARK(BM_OmOrderQueryUnderChurn)->Threads(4)->UseRealTime();

void BM_OmSnapshotKey(benchmark::State& state) {
  OrderList list(0);
  auto items = std::make_unique<OmItem[]>(1024);
  for (std::size_t i = 0; i < 1024; ++i) list.insert_tail(&items[i]);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.snapshot_key(&items[i % 1024]));
    ++i;
  }
}
BENCHMARK(BM_OmSnapshotKey);

void BM_OmRemoveReinsert(benchmark::State& state) {
  OrderList list(0);
  auto items = std::make_unique<OmItem[]>(1024);
  for (std::size_t i = 0; i < 1024; ++i) list.insert_tail(&items[i]);
  std::size_t i = 1;
  for (auto _ : state) {
    OmItem* it = &items[i % 1023 + 1];
    list.remove(it);
    list.insert_after(&items[0], it);
    ++i;
  }
}
BENCHMARK(BM_OmRemoveReinsert);

}  // namespace
