// Figure 6: stability across disjoint batches (paper: 50 groups of
// 100k edges; here scaled). Order-based algorithms should show tightly
// bounded times across groups; Traversal-based insertion (JEI) shows
// larger fluctuations because |V+|/|V*| varies widely per edge.
#include <cmath>
#include <cstdio>

#include "graph/edge_list.h"
#include "harness.h"
#include "support/rng.h"

using namespace parcore;
using namespace parcore::bench;

namespace {

struct Series {
  std::vector<double> samples;

  void add(double v) { samples.push_back(v); }
  double mean() const { return RunStats::from(samples).mean; }
  double cv() const {  // coefficient of variation, %
    RunStats s = RunStats::from(samples);
    return s.mean > 0 ? 100.0 * s.stdev / s.mean : 0.0;
  }
  double spread() const {  // max/min
    RunStats s = RunStats::from(samples);
    return s.min > 0 ? s.max / s.min : 0.0;
  }
};

}  // namespace

int main() {
  const BenchEnv env = bench_env();
  ThreadTeam team(env.max_workers);
  const int workers = env.max_workers;
  const std::size_t groups = env.fast ? 4 : 10;  // paper: 50

  std::printf("== Figure 6: stability over %zu disjoint batches ==\n", groups);
  std::printf("(scale %.2f, batch ~%zu, %d workers; cv%% = stddev/mean)\n\n",
              env.scale, env.batch, workers);

  Table table({"graph", "OurI cv%", "OurR cv%", "JEI cv%", "JER cv%",
               "OurI max/min", "JEI max/min"});

  for (const SuiteSpec& spec : scalability_suite()) {
    // One big prepared pool split into disjoint groups.
    PreparedWorkload pool =
        prepare_workload(spec, env.scale, env.batch * groups);
    auto parts = split_batches(pool.batch, groups);

    Series oi, orr, ji, jr;
    {
      DynamicGraph g = DynamicGraph::from_edges(pool.n, pool.base_edges);
      ParallelOrderMaintainer m(g, team);
      for (const auto& part : parts) {
        WallTimer t;
        m.insert_batch(part, workers);
        oi.add(t.elapsed_ms());
        t.reset();
        m.remove_batch(part, workers);
        orr.add(t.elapsed_ms());
      }
    }
    {
      DynamicGraph g = DynamicGraph::from_edges(pool.n, pool.base_edges);
      JeMaintainer m(g, team);
      for (const auto& part : parts) {
        WallTimer t;
        m.insert_batch(part, workers);
        ji.add(t.elapsed_ms());
        t.reset();
        m.remove_batch(part, workers);
        jr.add(t.elapsed_ms());
      }
    }
    table.add_row({spec.name, fmt(oi.cv()), fmt(orr.cv()), fmt(ji.cv()),
                   fmt(jr.cv()), fmt(oi.spread(), 2), fmt(ji.spread(), 2)});
    std::fflush(stdout);
  }
  table.print();
  std::printf(
      "\nPaper shape: OurI/OurR/JER well-bounded; JEI fluctuates more "
      "(Traversal's |V+|/|V*| varies).\n");
  return 0;
}
