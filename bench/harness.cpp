#include "harness.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <thread>

#include "graph/edge_list.h"
#include "io/graph_reader.h"
#include "support/env.h"
#include "support/rng.h"

namespace parcore::bench {

BenchEnv bench_env() {
  BenchEnv env;
  env.fast = env_flag("PARCORE_BENCH_FAST");
  env.scale = env_double("PARCORE_BENCH_SCALE", env.fast ? 0.04 : 0.2);
  env.batch = static_cast<std::size_t>(
      env_int("PARCORE_BENCH_BATCH", env.fast ? 1000 : 5000));
  env.reps = static_cast<int>(env_int("PARCORE_BENCH_REPS", 1));
  env.max_workers = static_cast<int>(env_int("PARCORE_BENCH_MAX_WORKERS", 16));
  env.input = env_str("PARCORE_BENCH_INPUT", "");
  return env;
}

std::vector<int> worker_sweep(int max_workers) {
  std::vector<int> sweep;
  for (int w = 1; w <= max_workers; w *= 2) sweep.push_back(w);
  if (sweep.empty()) sweep.push_back(1);
  return sweep;
}

PreparedWorkload prepare_workload(const SuiteSpec& spec, double scale,
                                  std::size_t batch_size) {
  PreparedWorkload w;
  w.spec = spec;
  batch_size = static_cast<std::size_t>(
      std::max(1.0, static_cast<double>(batch_size) * spec.batch_factor));

  SuiteGraph sg = build_suite_graph(spec, scale);
  w.n = sg.num_vertices;

  if (!sg.temporal.empty()) {
    // Temporal protocol (paper §6.2): the batch is a contiguous time
    // range — the most recent edges of the stream.
    std::vector<Edge> all;
    all.reserve(sg.temporal.size());
    for (const TimestampedEdge& te : sg.temporal) all.push_back(te.e);
    canonicalize_edges(all);
    batch_size = std::min(batch_size, all.size() / 2);
    w.batch.assign(all.end() - static_cast<std::ptrdiff_t>(batch_size),
                   all.end());
    w.base_edges.assign(all.begin(),
                        all.end() - static_cast<std::ptrdiff_t>(batch_size));
  } else {
    // Static protocol: sample the batch uniformly from the graph's
    // edges; the base graph is the remainder.
    std::vector<Edge> all = sg.edges;
    canonicalize_edges(all);
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (char c : spec.name) h = h * 131 + static_cast<unsigned>(c);
    Rng rng(h);
    rng.shuffle(all);
    batch_size = std::min(batch_size, all.size() / 2);
    w.batch.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(
                                                  batch_size));
    w.base_edges.assign(all.begin() + static_cast<std::ptrdiff_t>(batch_size),
                        all.end());
  }
  return w;
}

PreparedWorkload prepare_workload_from_file(const std::string& path,
                                            std::size_t batch_size) {
  io::GraphData data = io::read_graph(path);  // filtered + compacted

  PreparedWorkload w;
  w.spec.name = path.substr(path.find_last_of('/') + 1);
  w.spec.temporal = data.has_timestamps;
  w.n = data.num_vertices;

  std::vector<Edge> all = io::static_edges(data);
  batch_size = std::min(batch_size, all.size() / 2);
  if (data.has_timestamps) {
    // Temporal protocol: the batch is the most recent time range.
    std::stable_sort(data.edges.begin(), data.edges.end(),
                     [](const TimestampedEdge& a, const TimestampedEdge& b) {
                       return a.time < b.time;
                     });
    all.clear();
    for (const TimestampedEdge& te : data.edges) all.push_back(te.e);
  } else {
    // Static protocol: uniform sample, seeded from the file name so a
    // dataset always yields the same split.
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (char c : w.spec.name) h = h * 131 + static_cast<unsigned>(c);
    Rng rng(h);
    rng.shuffle(all);
  }
  w.batch.assign(all.end() - static_cast<std::ptrdiff_t>(batch_size),
                 all.end());
  w.base_edges.assign(all.begin(),
                      all.end() - static_cast<std::ptrdiff_t>(batch_size));
  return w;
}

std::vector<PreparedWorkload> suite_or_file_workloads(
    const std::vector<SuiteSpec>& specs, const BenchEnv& env) {
  std::vector<PreparedWorkload> out;
  if (!env.input.empty()) {
    out.push_back(prepare_workload_from_file(env.input, env.batch));
    return out;
  }
  out.reserve(specs.size());
  for (const SuiteSpec& spec : specs)
    out.push_back(prepare_workload(spec, env.scale, env.batch));
  return out;
}

DynamicGraph base_graph(const PreparedWorkload& w) {
  return DynamicGraph::from_edges(w.n, w.base_edges);
}

AlgoTimes time_parallel_order(const PreparedWorkload& w, ThreadTeam& team,
                              int workers, int reps) {
  DynamicGraph g = base_graph(w);
  ParallelOrderMaintainer m(g, team);
  std::vector<double> ins, rem;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    m.insert_batch(w.batch, workers);
    ins.push_back(t.elapsed_ms());
    t.reset();
    m.remove_batch(w.batch, workers);
    rem.push_back(t.elapsed_ms());
  }
  return AlgoTimes{RunStats::from(ins), RunStats::from(rem)};
}

EngineCellResult run_engine_cell(
    std::size_t n, const std::vector<Edge>& base,
    const std::vector<std::vector<GraphUpdate>>& streams, ThreadTeam& team,
    const engine::StreamingEngine::Options& opts) {
  DynamicGraph g = DynamicGraph::from_edges(n, base);
  engine::StreamingEngine eng(g, team, opts);
  eng.start();

  std::size_t total_ops = 0;
  for (const auto& s : streams) total_ops += s.size();

  WallTimer timer;
  std::vector<std::thread> producers;
  producers.reserve(streams.size());
  for (const auto& stream : streams) {
    producers.emplace_back([&eng, &stream] {
      for (const GraphUpdate& u : stream) eng.submit(u);
    });
  }
  for (auto& t : producers) t.join();
  eng.stop();  // drains the tail; included in the measured time
  const double sec = timer.elapsed_ms() / 1000.0;

  EngineCellResult r;
  r.seconds = sec;
  r.updates_per_sec = sec > 0 ? static_cast<double>(total_ops) / sec : 0.0;
  r.stats = eng.stats();
  return r;
}

std::vector<std::vector<GraphUpdate>> producer_update_streams(
    const std::vector<Edge>& pool, int producers, std::size_t ops_total) {
  std::vector<std::vector<GraphUpdate>> streams;
  streams.reserve(static_cast<std::size_t>(producers));
  const std::size_t slice = pool.size() / static_cast<std::size_t>(producers);
  const std::size_t per = ops_total / static_cast<std::size_t>(producers);
  for (int p = 0; p < producers; ++p) {
    Rng rng(0xbe7c4 + static_cast<std::uint64_t>(p));
    std::span<const Edge> universe(
        pool.data() + static_cast<std::size_t>(p) * slice, slice);
    streams.push_back(gen_update_stream(universe, per, 0.45, 0.6, rng));
  }
  return streams;
}

AlgoTimes time_je(const PreparedWorkload& w, ThreadTeam& team, int workers,
                  int reps) {
  DynamicGraph g = base_graph(w);
  JeMaintainer m(g, team);
  std::vector<double> ins, rem;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    m.insert_batch(w.batch, workers);
    ins.push_back(t.elapsed_ms());
    t.reset();
    m.remove_batch(w.batch, workers);
    rem.push_back(t.elapsed_ms());
  }
  return AlgoTimes{RunStats::from(ins), RunStats::from(rem)};
}

Json& Json::set(const std::string& key, Json value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  items_.push_back(std::move(value));
  return *this;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kDouble: {
      std::ostringstream os;
      os << std::setprecision(12) << num_;
      out += os.str();
      break;
    }
    case Kind::kString: append_escaped(out, str_); break;
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        append_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

std::string write_bench_json(const std::string& name, const Json& payload) {
  const std::string dir = env_str("PARCORE_BENCH_JSON_DIR", ".");
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::ofstream f(path);
  f << payload.dump(2) << "\n";
  f.close();
  if (!f) {
    std::fprintf(stderr, "FAILED to write %s (bad PARCORE_BENCH_JSON_DIR?)\n",
                 path.c_str());
    return "";
  }
  std::printf("wrote %s\n", path.c_str());
  return path;
}

Json engine_cell_json(const std::string& policy, int producers, int workers,
                      const EngineCellResult& r) {
  const double p50_ms =
      static_cast<double>(r.stats.flush_us.percentile(0.5)) / 1000.0;
  const double p99_ms =
      static_cast<double>(r.stats.flush_us.percentile(0.99)) / 1000.0;
  return Json::object()
      .set("policy", policy)
      .set("producers", producers)
      .set("workers", workers)
      .set("ops", std::uint64_t{r.stats.submitted})
      .set("seconds", r.seconds)
      .set("updates_per_sec", r.updates_per_sec)
      .set("epochs", r.stats.epochs)
      .set("p50_flush_ms", p50_ms)
      .set("p99_flush_ms", p99_ms)
      .set("applied_inserts", r.stats.applied_inserts)
      .set("applied_removes", r.stats.applied_removes)
      .set("annihilated_pairs", std::uint64_t{r.stats.coalesce.annihilated_pairs})
      .set("duplicates", std::uint64_t{r.stats.coalesce.duplicates})
      .set("noops", std::uint64_t{r.stats.coalesce.noops})
      .set("plan_batches", r.stats.plan.batches)
      .set("plan_waves", r.stats.plan.waves)
      .set("plan_steals", r.stats.plan.steals)
      // Per-phase pipeline decomposition (EngineStats::PhaseTotals,
      // microseconds summed over every flush of the cell). The six
      // phases partition each flush window, so their sum tracks the
      // cell's total flush time.
      .set("drain_us", r.stats.phases.drain_us)
      .set("coalesce_us", r.stats.phases.coalesce_us)
      .set("plan_us", r.stats.phases.plan_us)
      .set("apply_us", r.stats.phases.apply_us)
      .set("om_compact_us", r.stats.phases.om_compact_us)
      .set("publish_us", r.stats.phases.publish_us)
      .set("worker_busy_us", r.stats.phases.worker_busy_us)
      .set("worker_idle_us", r.stats.phases.worker_idle_us);
}

Table::Table(std::vector<std::string> headers) {
  rows_.push_back(std::move(headers));
}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  ";
    for (std::size_t i = 0; i < rows_[r].size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
         << rows_[r][i];
    }
    os << "\n";
    if (r == 0) {
      os << "  ";
      for (std::size_t i = 0; i < widths.size(); ++i)
        os << std::string(widths[i], '-') << "  ";
      os << "\n";
    }
  }
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace parcore::bench
