// Table 2: the evaluation graph suite. Prints the generated stand-ins'
// statistics next to the statistics the paper reports for the original
// SNAP/KONECT graphs (see DESIGN.md §4 for the substitution rationale).
#include <cstdio>

#include "decomp/bz.h"
#include "harness.h"

using namespace parcore;
using namespace parcore::bench;

int main() {
  const BenchEnv env = bench_env();
  std::printf("== Table 2: tested graphs (stand-ins at scale %.2f) ==\n\n",
              env.scale);

  Table table({"graph", "n", "m", "AvgDeg", "Max k", "paper n", "paper m",
               "paper AvgDeg", "paper Max k"});
  for (const SuiteSpec& spec : table2_suite()) {
    SuiteGraph sg = build_suite_graph(spec, env.scale);
    DynamicGraph g = to_graph(sg);
    Decomposition d = bz_decompose(g);
    table.add_row({spec.name, std::to_string(g.num_vertices()),
                   std::to_string(g.num_edges()),
                   fmt(g.average_degree(), 2), std::to_string(d.max_core),
                   std::to_string(spec.paper_n), std::to_string(spec.paper_m),
                   fmt(spec.paper_avgdeg, 2), std::to_string(spec.paper_maxk)});
  }
  table.print();
  std::printf(
      "\nStand-ins preserve family shape (degree skew, core distribution),\n"
      "not absolute size; see DESIGN.md section 4.\n");
  return 0;
}
