// Query-serving benchmark (ISSUE 5): publication cost of an epoch
// snapshot — the full O(n) core-vector copy the engine used to make vs
// the paged copy-on-write index (query/versioned_cores.h) — measured
// as a mixed read/write workload: reader threads hammer the latest
// published epoch with wait-free point reads while the writer applies
// small maintainer batches and publishes after every batch.
//
// The claim under test is the ISSUE's acceptance criterion: per-epoch
// publish time must scale with the batch (pages actually dirtied), not
// with n. On the default ≥1M-vertex graph the full copy pays ~n every
// epoch regardless of batch size; the paged publish tracks the batch.
// Each paged cell ends with a differential check (materialized view ==
// maintainer cores) so the speedup is only reported at equal
// correctness.
//
// Emits BENCH_query.json (schema validated by
// tools/validate_bench_json.py; committed baseline in bench/baselines/).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "decomp/core_query.h"
#include "gen/generators.h"
#include "graph/edge_list.h"
#include "harness.h"
#include "query/versioned_cores.h"
#include "sync/spinlock.h"

using namespace parcore;
using namespace parcore::bench;

namespace {

constexpr int kReaders = 2;

struct CellResult {
  double publish_us_mean = 0.0;
  double publish_us_p50 = 0.0;
  double publish_us_p99 = 0.0;
  double pages_cloned_mean = 0.0;  // full mode: every page, every epoch
  double read_mqps = 0.0;
  std::size_t epochs = 0;
};

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// One measurement cell: `epochs` remove-then-reinsert rounds of
/// `batch` edges, publishing after every maintainer call, with
/// kReaders threads doing random point reads against the latest
/// published epoch for the whole duration. `paged` selects the
/// publication mechanism; the reader path matches it.
CellResult run_cell(ParallelOrderMaintainer& maint,
                    query::VersionedCoreIndex& index, std::size_t n,
                    std::span<const Edge> batch, int workers,
                    std::size_t epochs, bool paged) {
  // Latest-epoch slot, swapped under a spinlock exactly like the
  // engine's snapshot pointer (held for the copy only).
  Spinlock slot_mu;
  query::CoreView latest_view;
  std::shared_ptr<const std::vector<CoreValue>> latest_full;
  if (paged) {
    // Untimed resync: cells must not inherit staleness from each other.
    index.rebuild(n, [&](VertexId v) { return maint.core(v); });
    latest_view = index.current();
  } else {
    latest_full = std::make_shared<const std::vector<CoreValue>>(
        maint.cores());
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(0xabc + static_cast<std::uint64_t>(r));
      std::uint64_t local = 0;
      volatile CoreValue sink = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        slot_mu.lock();
        query::CoreView view = latest_view;
        std::shared_ptr<const std::vector<CoreValue>> full = latest_full;
        slot_mu.unlock();
        for (int i = 0; i < 1024; ++i) {
          const auto v = static_cast<VertexId>(rng.bounded(n));
          sink = paged ? view.core(v) : (*full)[v];
        }
        local += 1024;
      }
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }

  CellResult cell;
  std::vector<double> publish_us;
  std::uint64_t pages = 0;
  WallTimer cell_timer;
  auto publish = [&] {
    WallTimer t;
    if (paged) {
      query::CoreView view = index.publish(
          maint.last_changed(), [&](VertexId v) { return maint.core(v); });
      slot_mu.lock();
      latest_view = std::move(view);
      slot_mu.unlock();
      pages += index.last_pages_cloned();
    } else {
      auto full =
          std::make_shared<const std::vector<CoreValue>>(maint.cores());
      slot_mu.lock();
      latest_full = std::move(full);
      slot_mu.unlock();
      // What the full copy re-wrote, in page units for comparability.
      pages += (n + index.page_size() - 1) / index.page_size();
    }
    publish_us.push_back(t.elapsed_ms() * 1000.0);
    ++cell.epochs;
  };

  for (std::size_t e = 0; e < epochs; ++e) {
    maint.remove_batch(batch, workers);
    publish();
    maint.insert_batch(batch, workers);
    publish();
  }
  const double cell_sec = cell_timer.elapsed_ms() / 1000.0;
  stop.store(true);
  for (auto& t : readers) t.join();

  if (paged) {
    // Equal-correctness gate: the paged epochs only count if the final
    // view is bit-identical to the maintainer's ground truth.
    const std::vector<CoreValue> truth = maint.cores();
    if (index.current().materialize() != truth) {
      std::fprintf(stderr,
                   "FAILED: paged view diverged from maintainer cores\n");
      std::exit(1);
    }
  }

  cell.publish_us_mean = 0.0;
  for (double us : publish_us) cell.publish_us_mean += us;
  cell.publish_us_mean /= static_cast<double>(publish_us.size());
  cell.publish_us_p50 = percentile(publish_us, 0.5);
  cell.publish_us_p99 = percentile(publish_us, 0.99);
  cell.pages_cloned_mean =
      static_cast<double>(pages) / static_cast<double>(cell.epochs);
  cell.read_mqps = cell_sec > 0
                       ? static_cast<double>(reads.load()) / cell_sec / 1e6
                       : 0.0;
  return cell;
}

}  // namespace

int main() {
  const BenchEnv env = bench_env();
  // Acceptance scale: >= 1M vertices by default so the O(n) full copy
  // is unmistakable; FAST shrinks for the CI smoke.
  const std::size_t n = env.fast ? (std::size_t{1} << 17)
                                 : (std::size_t{1} << 20);
  const std::size_t m = 2 * n;
  const std::size_t epochs = env.fast ? 4 : 8;
  const int workers = std::min(env.max_workers, 4);

  Rng rng(4242);
  std::vector<Edge> edges = gen_erdos_renyi(n, m, rng);
  canonicalize_edges(edges);
  rng.shuffle(edges);  // batch slices are uniform samples of the graph
  DynamicGraph g = DynamicGraph::from_edges(n, edges);
  ThreadTeam team(std::max(workers, kReaders + 1));
  ParallelOrderMaintainer maint(g, team);
  query::VersionedCoreIndex index;  // engine-default 4096-core pages

  std::printf("== query serving: ER n=%zu m=%zu, %zu epochs/cell, "
              "%d readers, page %zu ==\n\n",
              n, m, epochs, kReaders, index.page_size());

  const std::vector<std::size_t> batch_sizes{16, 256, 4096};
  Json rows = Json::array();
  Table table({"mode", "batch", "epochs", "publish mean us", "p50 us",
               "p99 us", "pages/epoch", "read Mq/s"});
  for (std::size_t batch : batch_sizes) {
    std::span<const Edge> slice(edges.data(), std::min(batch, edges.size()));
    for (bool paged : {false, true}) {
      const CellResult cell =
          run_cell(maint, index, n, slice, workers, epochs, paged);
      const char* mode = paged ? "paged" : "full-copy";
      table.add_row({mode, std::to_string(batch),
                     std::to_string(cell.epochs),
                     fmt(cell.publish_us_mean, 1),
                     fmt(cell.publish_us_p50, 1), fmt(cell.publish_us_p99, 1),
                     fmt(cell.pages_cloned_mean, 1),
                     fmt(cell.read_mqps, 2)});
      rows.push(Json::object()
                    .set("mode", mode)
                    .set("batch", std::uint64_t{batch})
                    .set("epochs", std::uint64_t{cell.epochs})
                    .set("publish_us_mean", cell.publish_us_mean)
                    .set("publish_us_p50", cell.publish_us_p50)
                    .set("publish_us_p99", cell.publish_us_p99)
                    .set("pages_cloned", cell.pages_cloned_mean)
                    .set("read_mqps", cell.read_mqps));
    }
  }
  table.print();

  Json payload = Json::object()
                     .set("bench", "query_serving")
                     .set("graph", "er-uniform")
                     .set("n", std::uint64_t{n})
                     .set("m", std::uint64_t{m})
                     .set("page_size", std::uint64_t{index.page_size()})
                     .set("readers", kReaders)
                     .set("workers", workers)
                     .set("rows", rows);
  if (write_bench_json("query", payload).empty()) return 1;
  return 0;
}
