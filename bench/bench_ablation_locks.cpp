// Ablation (google-benchmark): lock primitives under contention. The
// paper notes OpenMP locks carry high overhead and uses CAS busy-wait
// locks instead (§3.5); this compares CAS spin, ticket, and std::mutex,
// plus the conditional-lock and pair-lock idioms.
#include <benchmark/benchmark.h>

#include <mutex>

#include "sync/spinlock.h"

namespace {

using parcore::Spinlock;
using parcore::TicketLock;

Spinlock g_spin;
TicketLock g_ticket;
std::mutex g_mutex;
long g_counter = 0;

void BM_SpinlockContended(benchmark::State& state) {
  for (auto _ : state) {
    g_spin.lock();
    benchmark::DoNotOptimize(++g_counter);
    g_spin.unlock();
  }
}
BENCHMARK(BM_SpinlockContended)->Threads(1)->Threads(4)->Threads(16);

void BM_TicketLockContended(benchmark::State& state) {
  for (auto _ : state) {
    g_ticket.lock();
    benchmark::DoNotOptimize(++g_counter);
    g_ticket.unlock();
  }
}
BENCHMARK(BM_TicketLockContended)->Threads(1)->Threads(4)->Threads(16);

void BM_StdMutexContended(benchmark::State& state) {
  for (auto _ : state) {
    g_mutex.lock();
    benchmark::DoNotOptimize(++g_counter);
    g_mutex.unlock();
  }
}
BENCHMARK(BM_StdMutexContended)->Threads(1)->Threads(4)->Threads(16);

void BM_ConditionalLock(benchmark::State& state) {
  Spinlock lock;
  int core = 5;
  for (auto _ : state) {
    if (parcore::lock_if(lock, [&] { return core == 5; })) {
      benchmark::DoNotOptimize(core);
      lock.unlock();
    }
  }
}
BENCHMARK(BM_ConditionalLock);

void BM_PairLock(benchmark::State& state) {
  static Spinlock a, b;
  for (auto _ : state) {
    parcore::lock_pair(a, b);
    benchmark::DoNotOptimize(&a);
    b.unlock();
    a.unlock();
  }
}
BENCHMARK(BM_PairLock)->Threads(1)->Threads(8);

}  // namespace
