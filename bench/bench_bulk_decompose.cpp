// Bulk decomposition bench (ISSUE 8): sequential BZ vs the parallel
// exact peel vs capped h-index approximation, on the two shapes that
// bracket the cold-start cost model:
//
//   er  — large Erdős–Rényi graph; shallow core hierarchy, so the exact
//         peel runs few frontier rounds and the win is pure scan/decrement
//         parallelism. This is the headline cell: the committed baseline
//         must show parallel-exact beating BZ at >= 4 workers here.
//   hub — Barabási–Albert preferential attachment; skewed degrees, a
//         near-uniform core plateau, and hub-heavy decrement contention —
//         the adversarial shape for atomic peeling.
//
// Protocol: per (workload, algo, workers) cell the reps are INTERLEAVED
// across algos (bz, parallel, approx, bz, ...) so machine-load drift
// hits every algo equally; medians drive the speedup summary. Emits
// BENCH_bulk_decompose.json with summary keys
// `<workload>_parallel_speedup_w<N>` (bz_median / parallel_median) that
// the CI perf gate checks.
//
// Honours PARCORE_BENCH_SCALE / _REPS / _FAST / _JSON_DIR.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "decomp/bz.h"
#include "decomp/parallel_peel.h"
#include "gen/generators.h"
#include "graph/dynamic_graph.h"
#include "harness.h"

using namespace parcore;
using namespace parcore::bench;

namespace {

struct DecompWorkload {
  std::string name;
  std::size_t n = 0;
  DynamicGraph g;
};

struct Cell {
  std::string algo;        // "bz" | "parallel" | "approx"
  int workers = 1;         // 1 for bz
  std::vector<double> ms;  // one sample per rep
  CoreValue max_core = 0;
  std::uint64_t rounds = 0;  // frontier sub-rounds / h-index rounds
};

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

}  // namespace

int main() {
  const BenchEnv env = bench_env();
  // Sized so the adjacency outgrows LLC even in FAST mode — in-cache
  // graphs flatter BZ (its pos/vert/bin side arrays stop costing) and
  // are not the regime the engine cold start and recovery verify run
  // in. FAST trims reps and the hub cell more than the headline ER one.
  const double scale = env.fast ? 0.6 : env.scale * 5.0;
  const auto er_n = static_cast<std::size_t>(200000 * scale) + 1000;
  const std::size_t er_m = er_n * 10;
  const auto ba_n = static_cast<std::size_t>(120000 * scale) + 1000;
  const std::size_t ba_k = 12;
  const int reps = env.fast ? 3 : (env.reps > 1 ? env.reps : 5);
  const std::vector<int> worker_counts{1, 2, 4, 8};
  // Approx cap: enough rounds to converge on these families (measured
  // fixpoint is < 32 on both), so `exact` lands true and the cell is
  // comparable; the capped-bound regime is covered by the unit tests.
  const int approx_cap = 64;

  std::vector<DecompWorkload> workloads;
  {
    Rng rng(0x5eedb01);
    DecompWorkload er;
    er.name = "er";
    er.n = er_n;
    er.g = DynamicGraph::from_edges(er_n, gen_erdos_renyi(er_n, er_m, rng));
    workloads.push_back(std::move(er));
    DecompWorkload hub;
    hub.name = "hub";
    hub.n = ba_n;
    hub.g = DynamicGraph::from_edges(ba_n,
                                     gen_barabasi_albert(ba_n, ba_k, rng));
    workloads.push_back(std::move(hub));
  }

  ThreadTeam team(8);
  std::printf("== bulk decomposition: bz vs parallel exact vs approx "
              "(er n=%zu m=%zu, hub n=%zu k=%zu, %d reps) ==\n\n",
              er_n, workloads[0].g.num_edges(), ba_n, ba_k, reps);

  Json rows = Json::array();
  Json summary = Json::object();
  Table table({"workload", "algo", "workers", "decompose ms", "max core",
               "rounds", "speedup vs bz"});

  for (const DecompWorkload& w : workloads) {
    // One cell list per workload: bz + parallel/approx per worker count.
    std::vector<Cell> cells;
    cells.push_back(Cell{"bz", 1, {}, 0, 0});
    for (int workers : worker_counts)
      cells.push_back(Cell{"parallel", workers, {}, 0, 0});
    for (int workers : worker_counts)
      cells.push_back(Cell{"approx", workers, {}, 0, 0});

    for (int rep = 0; rep < reps; ++rep) {
      for (Cell& c : cells) {
        WallTimer t;
        if (c.algo == "bz") {
          const Decomposition d = bz_decompose(w.g);
          c.ms.push_back(t.elapsed_ms());
          c.max_core = d.max_core;
          c.rounds = 0;
        } else {
          DecomposeOptions opts;
          opts.workers = c.workers;
          opts.mode = c.algo == "approx" ? DecomposeMode::kApprox
                                         : DecomposeMode::kExact;
          opts.max_rounds = c.algo == "approx" ? approx_cap : 0;
          const BulkDecomposition bd = parallel_decompose(w.g, team, opts);
          c.ms.push_back(t.elapsed_ms());
          c.max_core = bd.max_core;
          c.rounds = bd.rounds;
        }
      }
    }

    const double bz_median = median_of(cells[0].ms);
    for (const Cell& c : cells) {
      const double med = median_of(c.ms);
      const double speedup = bz_median / std::max(med, 1e-9);
      table.add_row({w.name, c.algo, std::to_string(c.workers), fmt(med, 2),
                     std::to_string(c.max_core),
                     std::to_string(std::uint64_t{c.rounds}),
                     c.algo == "bz" ? "-" : fmt(speedup, 2)});
      rows.push(Json::object()
                    .set("workload", w.name)
                    .set("algo", c.algo)
                    .set("workers", c.workers)
                    .set("decompose_ms", med)
                    .set("max_core", static_cast<int>(c.max_core))
                    .set("rounds", std::uint64_t{c.rounds}));
      if (c.algo == "parallel")
        summary.set(w.name + "_parallel_speedup_w" + std::to_string(c.workers),
                    speedup);
      if (c.algo == "approx")
        summary.set(w.name + "_approx_speedup_w" + std::to_string(c.workers),
                    speedup);
    }
    std::fflush(stdout);
  }
  table.print();

  Json payload = Json::object()
                     .set("bench", "bulk_decompose")
                     .set("er_n", std::uint64_t{er_n})
                     .set("er_edges", std::uint64_t{workloads[0].g.num_edges()})
                     .set("hub_n", std::uint64_t{ba_n})
                     .set("hub_edges",
                          std::uint64_t{workloads[1].g.num_edges()})
                     .set("reps", reps)
                     .set("scale", scale)
                     .set("rows", rows)
                     .set("summary", summary);
  write_bench_json("bulk_decompose", payload);
  return 0;
}
